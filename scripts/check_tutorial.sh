#!/bin/sh
# Execute every command of the transcript-bearing docs, in order, from
# the repo root — the docs' `$ `-prefixed console lines are the test
# vector.  A command that fails (non-zero exit) fails the check, so
# the walkthroughs (TUTORIAL.md), the per-subcommand reference
# (CLI.md) and the cache guide (CACHING.md) cannot drift from the
# actual CLI.
set -eu
cd "$(dirname "$0")/.."

DOCS="docs/TUTORIAL.md docs/CLI.md docs/CACHING.md"

tmp=$(mktemp)
trap 'rm -f "$tmp"' EXIT

for doc in $DOCS; do
  [ -f "$doc" ] || { echo "check_tutorial: $doc missing"; exit 1; }

  # Extract '$ '-prefixed lines from fenced blocks into a script.
  sed -n 's/^\$ //p' "$doc" > "$tmp"

  n=$(wc -l < "$tmp")
  [ "$n" -gt 0 ] || { echo "check_tutorial: no commands found in $doc"; exit 1; }
  echo "check_tutorial: running $n commands from $doc"

  lineno=0
  while IFS= read -r cmd; do
    lineno=$((lineno + 1))
    echo "check_tutorial [$doc $lineno/$n]: $cmd"
    if ! sh -c "$cmd" >/dev/null 2>&1; then
      echo "check_tutorial: FAILED: $cmd" >&2
      exit 1
    fi
  done < "$tmp"
done

echo "check_tutorial: PASS"
