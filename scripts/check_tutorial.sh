#!/bin/sh
# Execute every command of docs/TUTORIAL.md, in order, from the repo
# root — the tutorial's `$ `-prefixed console lines are the test
# vector.  A command that fails (non-zero exit) fails the check, so
# the walkthrough cannot drift from the actual CLI.
set -eu
cd "$(dirname "$0")/.."

TUTORIAL=docs/TUTORIAL.md
[ -f "$TUTORIAL" ] || { echo "check_tutorial: $TUTORIAL missing"; exit 1; }

# Extract '$ '-prefixed lines from fenced blocks into a script.
tmp=$(mktemp)
trap 'rm -f "$tmp"' EXIT
sed -n 's/^\$ //p' "$TUTORIAL" > "$tmp"

n=$(wc -l < "$tmp")
[ "$n" -gt 0 ] || { echo "check_tutorial: no commands found"; exit 1; }
echo "check_tutorial: running $n tutorial commands"

lineno=0
while IFS= read -r cmd; do
  lineno=$((lineno + 1))
  echo "check_tutorial [$lineno/$n]: $cmd"
  if ! sh -c "$cmd" >/dev/null 2>&1; then
    echo "check_tutorial: FAILED: $cmd" >&2
    exit 1
  fi
done < "$tmp"

echo "check_tutorial: PASS"
