#!/bin/sh
# Docs link checker: every relative markdown link target in README.md
# and docs/*.md must exist on disk.  External links (http/https/
# mailto) and pure in-page anchors (#…) are skipped; a `file#anchor`
# link is checked for the file part.  Dead links fail the check, so a
# rename or deletion cannot silently orphan the documentation.
set -eu
cd "$(dirname "$0")/.."

fail=0
checked=0

for doc in README.md docs/*.md; do
  [ -f "$doc" ] || continue
  dir=$(dirname "$doc")
  # Pull out the (target) of every [text](target) link, one per line.
  targets=$(grep -o '](\([^)]*\))' "$doc" 2>/dev/null \
              | sed 's/^](//; s/)$//') || true
  for target in $targets; do
    case "$target" in
      http://*|https://*|mailto:*|'#'*|'') continue ;;
    esac
    path=${target%%#*}            # strip any #anchor suffix
    [ -n "$path" ] || continue
    checked=$((checked + 1))
    # Relative to the containing file, as markdown renderers resolve it.
    if [ ! -e "$dir/$path" ] && [ ! -e "$path" ]; then
      echo "check_links: dead link in $doc -> $target" >&2
      fail=1
    fi
  done
done

[ "$checked" -gt 0 ] || { echo "check_links: no relative links found"; exit 1; }
if [ "$fail" -ne 0 ]; then
  echo "check_links: FAILED" >&2
  exit 1
fi
echo "check_links: PASS ($checked relative links)"
