#!/bin/sh
# Repo check — the single tier-1 entry point:
#   1. full build (libs, tests, benches, examples);
#   2. the deterministic test suites (unit + conformance);
#   3. the conformance gate: differential quantization oracle,
#      metamorphic workload invariants, golden traces, and the bench
#      regression guard (wall-clock, so deliberately NOT part of
#      `dune runtest`).
set -eu
cd "$(dirname "$0")/.."
dune build @all
dune runtest
dune exec bin/fxrefine.exe -- check
