#!/bin/sh
# Repo check — the single tier-1 entry point:
#   1. full build (libs, tests, benches, examples);
#   2. the deterministic test suites (unit + conformance);
#   3. API docs (odoc), when the toolchain has odoc installed;
#   4. the conformance gate: differential quantization oracle,
#      metamorphic workload invariants, golden traces, the parallel
#      sweep determinism gate (jobs=1 vs jobs=N byte-identical), the
#      trace-determinism gate (sweep counters JSON byte-identical for
#      any --jobs; counting sink observer-neutral), and the bench
#      regression guard (wall-clock, so deliberately NOT part of
#      `dune runtest`);
#   5. the tutorial walkthrough (docs/TUTORIAL.md), re-executed
#      command by command so the documentation cannot rot.
set -eu
cd "$(dirname "$0")/.."
dune build @all
dune runtest
if command -v odoc >/dev/null 2>&1; then
  dune build @doc
else
  echo "check.sh: odoc not installed, skipping 'dune build @doc'"
fi
dune exec bin/fxrefine.exe -- check
sh scripts/check_tutorial.sh
