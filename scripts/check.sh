#!/bin/sh
# Repo check — the single tier-1 entry point:
#   1. full build (libs, tests, benches, examples);
#   2. the deterministic test suites (unit + conformance);
#   3. API docs (odoc), when the toolchain has odoc installed;
#   4. the conformance gate: differential quantization oracle,
#      metamorphic workload invariants, golden traces, the parallel
#      sweep determinism gate (jobs=1 vs jobs=N byte-identical), the
#      trace-determinism gate (sweep counters JSON byte-identical for
#      any --jobs; counting sink observer-neutral), the fault-injection
#      gate (--faults: schedule replay, faulted-sweep quarantine
#      determinism, collect-policy degradation), the compiled-executor
#      gate (--compiled: flat-schedule executor byte-identical to the
#      interpreter on every workload graph, batched and under fault
#      replay; sweep metric parity; BENCH_compile.json throughput
#      guard), the verification-oracle gate (--verify: prove/refute
#      no-overflow and no-limit-cycle on every workload flowgraph,
#      range-analysis soundness cross-check, counterexample stimuli
#      pinned as golden files and replayed through both executors;
#      BENCH_verify.json throughput guard), the cache/daemon gate
#      (--serve: no-cache vs cold vs warm vs warm-parallel sweep
#      reports byte-identical, warm hit coverage, daemon round-trip
#      byte-equal to the local report), the synchronizer gate (--sync:
#      the closed ML-TED loop locks on drifting-tau 4-PAM, stays
#      within 2 dB MER after the §6.1 refinement with the saturating
#      integrator and error()-overruled NCO phase visible in the
#      decisions, sweeps jobs-independently; BENCH_sync.json
#      throughput guard), the chaos gate (--chaos: forked sweeps and
#      daemons SIGKILLed at seeded points mid-wave and mid-job, then
#      resumed from the wave/intent journals and required
#      byte-identical to an undisturbed reference; full CRC scrub of
#      a deliberately corrupted cache), and the bench regression
#      guard (wall-clock, so deliberately NOT part of `dune
#      runtest`);
#   5. the transcript-bearing docs (docs/TUTORIAL.md, docs/CLI.md,
#      docs/CACHING.md), re-executed command by command, plus a dead
#      relative-link check over README.md and docs/*.md, so the
#      documentation cannot rot.
#
# Long-running steps are wrapped in `timeout` where available, so a
# hung worker domain or a wedged simulation fails the check instead of
# blocking it forever.
set -eu
cd "$(dirname "$0")/.."

# timeout(1) is coreutils; degrade to no wrapper where it is missing.
if command -v timeout >/dev/null 2>&1; then
  with_timeout() { timeout "$@"; }
else
  with_timeout() { shift; "$@"; }
fi

# The chaos gate forks daemons and sweeps and SIGKILLs them; if the
# gate itself is killed (timeout, ^C), its scratch dirs can be left
# with live orphan children.  Each scratch dir records the pids it
# forked in a `pids` file — kill them and remove the dirs on exit,
# along with any orphaned doc-transcript daemon sockets.
cleanup_chaos() {
  for d in "${TMPDIR:-/tmp}"/fxchaos-*; do
    [ -d "$d" ] || continue
    if [ -f "$d/pids" ]; then
      while IFS= read -r pid; do
        kill -KILL "$pid" 2>/dev/null || true
      done < "$d/pids"
    fi
    rm -rf "$d"
  done
  rm -f /tmp/fxterm.sock /tmp/fxcli.sock
}
trap cleanup_chaos EXIT INT TERM

with_timeout 600 dune build @all
with_timeout 600 dune runtest
if command -v odoc >/dev/null 2>&1; then
  dune build @doc
else
  echo "check.sh: odoc not installed, skipping 'dune build @doc'"
fi
with_timeout 900 dune exec bin/fxrefine.exe -- check --faults
with_timeout 900 dune exec bin/fxrefine.exe -- check --compiled
with_timeout 900 dune exec bin/fxrefine.exe -- check --verify
with_timeout 900 dune exec bin/fxrefine.exe -- check --serve
with_timeout 900 dune exec bin/fxrefine.exe -- check --sync
# Hard timeout: the chaos gate SIGKILLs its own children, but a hung
# resume or a daemon that never drains must fail the check, not hang it.
with_timeout 900 dune exec bin/fxrefine.exe -- check --chaos --no-bench --per-combo 1
with_timeout 60 sh scripts/check_links.sh
with_timeout 600 sh scripts/check_tutorial.sh
