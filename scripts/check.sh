#!/bin/sh
# Repo check: full build (libs, tests, benches, examples) + test suite.
set -eu
cd "$(dirname "$0")/.."
dune build @all
dune runtest
