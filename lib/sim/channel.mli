(** Communication channels — the paper's [get]/[put] primitives: FIFOs
    of samples between processors, optionally backed by a stimulus
    generator (source) or recording every write (sink). *)

type t

(** Raised by {!get} on an unproduced, unbacked channel.  A [Printexc]
    printer is registered, so an uncaught raise names the channel. *)
exception Empty of string

(** [record:true] keeps every consumed sample for scoring. *)
val create : ?record:bool -> string -> t

(** Source channel: [get] returns [f 0], [f 1], … *)
val of_fun : string -> (int -> float) -> t

(** The backing generator of a source channel, if any. *)
val producer : t -> (int -> float) option

(** Replace (or install) the backing generator.  The fault layer wraps
    the original producer through this to corrupt or starve stimuli
    (see {!Fault.Inject}). *)
val set_producer : t -> (int -> float) option -> unit

(** The channel's declared name. *)
val name : t -> string

(** Consume the next sample (pulls from the producer if the FIFO is
    empty); raises {!Empty} on an unbacked empty channel. *)
val get : t -> float

(** Append one sample to the queue. *)
val put : t -> float -> unit

(** Samples currently queued. *)
val length : t -> int

(** No samples queued. *)
val is_empty : t -> bool

(** All recorded samples in emission order (needs [~record:true]). *)
val recorded : t -> float list

(** Drop queued samples, recorded history, and producer position. *)
val clear : t -> unit
