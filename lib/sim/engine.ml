(** Clock-true execution of processor behaviours (§2).

    A design is a set of processors, each a step function executed once
    per clock cycle; after all processors of a cycle have run, the clock
    commits the registered signals ([Env.tick]).  This mirrors the
    paper's "simulation engine performs processor execution and their
    communication".

    The single-processor case — both paper examples — is just
    {!run}. *)

type processor = { name : string; step : int -> unit }

let processor name step = { name; step }

type t = { env : Env.t; mutable processors : processor list }

let create env = { env; processors = [] }

let add t p = t.processors <- t.processors @ [ p ]

let env t = t.env

(** Execute [cycles] clock cycles: every processor's [step t] in
    registration order, then one clock tick. *)
let run_processors t ~cycles =
  for cycle = 0 to cycles - 1 do
    List.iter (fun p -> p.step cycle) t.processors;
    Env.tick t.env
  done

(** [run env ~cycles step] — single-processor shorthand: [step cycle]
    then a clock tick, [cycles] times. *)
let run env ~cycles step =
  for cycle = 0 to cycles - 1 do
    step cycle;
    Env.tick env
  done

(** [run_until env step] — run until [step] returns [false] or [~max]
    cycles have executed.  Both exits return the same quantity: the
    number of executed-and-committed cycles (every [step] call is
    followed by its clock tick, including the final one), so callers
    can rely on [result = ticks] whichever way the loop stopped. *)
let run_until ?(max = 1_000_000) env step =
  let committed = ref 0 in
  let continue_ = ref true in
  while !continue_ && !committed < max do
    continue_ := step !committed;
    Env.tick env;
    incr committed
  done;
  !committed
