(** Simulation environment: the signal registry and the clock.

    An [Env.t] plays the role of the paper's simulation engine (§2): it
    owns every signal object of a design, the deterministic noise source
    used by [error()] overruling, the clock that commits registered
    signals, and the design-wide overflow policy.

    The full mutable state of a signal lives here (type {!entry});
    {!Signal} provides the user-facing operations over entries.  Keeping
    the state in the registry module avoids a dependency cycle and lets
    the refinement flow iterate over "all signals of the design" — the
    unit the paper's tables are reports over.

    The registry is engineered for the simulation hot path: entries live
    in a dense array in declaration order with a hash index by name
    (O(1) {!find}, duplicate declarations rejected at {!register} time),
    every typed entry caches a compiled quantizer (see
    {!Fixpt.Quantize.compile}) so assignment never re-derives code
    bounds or the step, and staged register writes are tracked in a
    dirty list so {!tick} touches only the signals actually written this
    cycle. *)

type kind =
  | Comb  (** the paper's [sig]: assignment takes effect immediately *)
  | Registered
      (** the paper's [reg]: assignment is staged and committed by the
          next clock tick; reads see the pre-tick value *)

(** What simulation does when an [Error]-mode type overflows (§2.1: "The
    latter produces an error message during simulation in case of
    overflow"). *)
type overflow_policy =
  | Count  (** record silently; reports show the count *)
  | Warn  (** log a warning (first few per signal) and record *)
  | Raise  (** abort simulation with {!Overflow} *)
  | Collect
      (** degraded-mode {!Raise}: record a structured {!fault_record}
          and keep simulating — the crash becomes a diagnostic *)

exception Overflow of { signal : string; value : float; time : int }

let () =
  Printexc.register_printer (function
    | Overflow { signal; value; time } ->
        Some
          (Printf.sprintf "Sim.Env.Overflow: signal %S value %g at cycle %d"
             signal value time)
    | _ -> None)

(** One collected overflow under the {!Collect} policy: which signal
    received which out-of-range raw value at which cycle. *)
type fault_record = { f_signal : string; f_value : float; f_time : int }

(** The simulation values of one signal: current committed fixed/float
    pair plus the staged pair of registered signals.  A dedicated
    all-float record (flat representation), so the per-sample stores of
    {!Signal.assign}/{!stage}/{!tick} mutate fields without boxing. *)
type vals = {
  mutable fx : float;
  mutable fl : float;
  mutable next_fx : float;
  mutable next_fl : float;
}

(** Per-entry cache of everything the assignment cast needs from the
    declared type: the compiled quantizer plus the representable range
    as an interval (for saturating clamp of propagated ranges).  Rebuilt
    whenever the dtype changes — never per sample. *)
type quantizer = {
  q : Fixpt.Quantize.compiled;
  type_iv : Interval.t;  (** representable range of the dtype *)
}

type entry = {
  env : t;  (** owning environment (for clocking, RNG, overflow policy) *)
  name : string;
  id : int;
  kind : kind;
  mutable dtype : Fixpt.Dtype.t option;  (** [None] = floating-point *)
  mutable quant : quantizer option;
      (** compiled form of [dtype]; kept in sync by {!set_entry_dtype} *)
  v : vals;  (** committed and staged simulation values *)
  mutable staged : bool;
  mutable in_dirty : bool;  (** already on the env's dirty list *)
  (* monitoring state *)
  range_stat : Stats.Running.t;  (** observed ideal values (stat-based) *)
  mutable range_prop : Interval.t;  (** accumulated propagated range *)
  mutable explicit_range : Interval.t option;  (** [range()] annotation *)
  mutable error_inject : float option;
      (** [error(h)] annotation: produced error overruled by U(−h, h) *)
  err : Stats.Err_stats.t;
  mutable grid_lsb : int option;
      (** finest LSB position needed to represent the assigned ideal
          values exactly ([None] until a nonzero value is seen) *)
  mutable n_assign : int;
  mutable n_access : int;
  mutable n_overflow : int;
  mutable last_overflow : float option;  (** raw value of last overflow *)
}

and t = {
  mutable entries : entry array;  (** declaration order, dense prefix *)
  mutable n_entries : int;
  by_name : (string, entry) Hashtbl.t;
  mutable dirty : entry array;  (** entries with a staged write *)
  mutable n_dirty : int;
  mutable time : int;
  seed : int;  (** creation seed — [reset] rewinds [rng] to it *)
  rng : Stats.Rng.t;
  mutable policy : overflow_policy;
  mutable warned : int;  (** warnings already emitted under [Warn] *)
  mutable reset_hooks : (unit -> unit) list;
      (** newest first; run after every [reset] in registration order:
          the "constructor initialization" of the paper's listings
          (coefficient loading etc.) that every fresh simulation
          re-executes *)
  mutable sink : Trace.Sink.t;
      (** observability sink; {!Trace.Sink.null} (the default) keeps the
          hot path down to one physical-equality guard per assignment *)
  mutable collected : fault_record list;
      (** overflows recorded under {!Collect}, newest first *)
  mutable injector : (entry -> float -> float) option;
      (** post-quantization value transform applied by {!Signal.assign}
          — the fault-injection hook ([lib/fault]); [None] (the
          default) keeps the hot path down to one match per assignment *)
}

let src = Logs.Src.create "fixrefine.sim" ~doc:"fixed-point simulation engine"

module Log = (val Logs.src_log src)

let create ?(seed = 0x51CA5) ?(policy = Count) () =
  {
    entries = [||];
    n_entries = 0;
    by_name = Hashtbl.create 64;
    dirty = [||];
    n_dirty = 0;
    time = 0;
    seed;
    rng = Stats.Rng.create ~seed;
    policy;
    warned = 0;
    reset_hooks = [];
    sink = Trace.Sink.null;
    collected = [];
    injector = None;
  }

(** Register an initialization action re-run after every {!reset}
    (and immediately, if [now], the default). *)
let at_reset ?(now = true) t f =
  (* prepend (O(1)); [reset] replays in registration order *)
  t.reset_hooks <- f :: t.reset_hooks;
  if now then f ()

let time t = t.time
let rng t = t.rng
let set_policy t p = t.policy <- p

(** Attach an observability sink.  Registration events are replayed for
    every signal already in the registry, so the sink's id→name map is
    complete whatever the attachment order.  One sink per environment;
    fan out with {!Trace.Sink.tee}. *)
let set_sink t s =
  t.sink <- s;
  if not (Trace.Sink.is_null s) then
    for i = 0 to t.n_entries - 1 do
      let e = t.entries.(i) in
      s.Trace.Sink.on_register ~id:e.id ~name:e.name
    done

let clear_sink t = t.sink <- Trace.Sink.null
let sink t = t.sink

(** Arm the fault-injection hook: [f entry fx'] maps every
    post-quantization value before it is stored or staged.  One injector
    per environment (the fault layer composes schedules itself); [f]
    must be deterministic in [(entry, time)] for replayability. *)
let set_injector t f = t.injector <- Some f

let clear_injector t = t.injector <- None
let injector t = t.injector

(** Faults collected under the {!Collect} policy, in chronological
    order. *)
let collected_faults t = List.rev t.collected

let collected_count t = List.length t.collected

let compile_dtype = function
  | None -> None
  | Some dt ->
      let lo, hi = Fixpt.Dtype.range dt in
      Some
        { q = Fixpt.Quantize.of_dtype dt; type_iv = Interval.make lo hi }

(** Retype an entry, rebuilding its compiled quantizer (the refinement
    flow rewrites types between iterations). *)
let set_entry_dtype e dtype =
  e.dtype <- dtype;
  e.quant <- compile_dtype dtype

let register t ~name ~kind ~dtype =
  if Hashtbl.mem t.by_name name then
    invalid_arg (Printf.sprintf "Env.register: duplicate signal name %S" name);
  let e =
    {
      env = t;
      name;
      id = t.n_entries;
      kind;
      dtype;
      quant = compile_dtype dtype;
      v = { fx = 0.0; fl = 0.0; next_fx = 0.0; next_fl = 0.0 };
      staged = false;
      in_dirty = false;
      range_stat = Stats.Running.create ();
      range_prop = Interval.empty;
      explicit_range = None;
      error_inject = None;
      err = Stats.Err_stats.create ();
      grid_lsb = None;
      n_assign = 0;
      n_access = 0;
      n_overflow = 0;
      last_overflow = None;
    }
  in
  let cap = Array.length t.entries in
  if t.n_entries = cap then begin
    let grown = Array.make (max 16 (2 * cap)) e in
    Array.blit t.entries 0 grown 0 cap;
    t.entries <- grown
  end;
  t.entries.(t.n_entries) <- e;
  t.n_entries <- t.n_entries + 1;
  Hashtbl.add t.by_name name e;
  if t.sink != Trace.Sink.null then
    t.sink.Trace.Sink.on_register ~id:e.id ~name:e.name;
  e

(** Signals in declaration order — the order the paper's tables use. *)
let signals t = Array.to_list (Array.sub t.entries 0 t.n_entries)

let find t name = Hashtbl.find_opt t.by_name name

let find_exn t name =
  match find t name with
  | Some e -> e
  | None -> invalid_arg (Printf.sprintf "Env.find_exn: no signal %S" name)

let record_overflow t e raw =
  e.n_overflow <- e.n_overflow + 1;
  e.last_overflow <- Some raw;
  match t.policy with
  | Count -> ()
  | Warn ->
      if t.warned < 20 then begin
        t.warned <- t.warned + 1;
        Log.warn (fun m ->
            m "overflow on %s at t=%d: %g exceeds %s" e.name t.time raw
              (match e.dtype with
              | Some dt -> Fixpt.Dtype.to_string dt
              | None -> "<float>"))
      end
  | Raise -> raise (Overflow { signal = e.name; value = raw; time = t.time })
  | Collect ->
      t.collected <-
        { f_signal = e.name; f_value = raw; f_time = t.time } :: t.collected;
      if t.sink != Trace.Sink.null then
        t.sink.Trace.Sink.on_fault ~id:e.id ~time:t.time ~kind:"collect"

(** Stage a register write for the next {!tick}, tracking the entry on
    the environment's dirty list (first write this cycle only). *)
let stage t e ~fx ~fl =
  e.v.next_fx <- fx;
  e.v.next_fl <- fl;
  e.staged <- true;
  if not e.in_dirty then begin
    e.in_dirty <- true;
    let cap = Array.length t.dirty in
    if t.n_dirty = cap then begin
      let grown = Array.make (max 16 (2 * cap)) e in
      Array.blit t.dirty 0 grown 0 cap;
      t.dirty <- grown
    end;
    t.dirty.(t.n_dirty) <- e;
    t.n_dirty <- t.n_dirty + 1
  end

(** Commit all staged register writes — one clock tick.  Only entries on
    the dirty list (written since the previous tick) are touched;
    registered signals without a staged write hold their value. *)
let tick t =
  for i = 0 to t.n_dirty - 1 do
    let e = t.dirty.(i) in
    if e.staged then begin
      e.v.fx <- e.v.next_fx;
      e.v.fl <- e.v.next_fl;
      e.staged <- false
    end;
    e.in_dirty <- false
  done;
  t.n_dirty <- 0;
  t.time <- t.time + 1

(** Reset dynamic state (values, staging, time) but keep declarations and
    annotations; [keep_monitors:false] (default) also clears the
    monitoring statistics.  Used between refinement iterations.

    The environment RNG is rewound to the creation seed ([reseed:true],
    the default) so back-to-back runs consume identical noise streams —
    iteration 2 of the refinement flow sees the same stimuli as
    iteration 1.  Pass [~reseed:false] to keep the continuing stream
    (e.g. Monte-Carlo sweeps that want fresh noise per run). *)
let reset ?(keep_monitors = false) ?(reseed = true) t =
  for i = 0 to t.n_entries - 1 do
    let e = t.entries.(i) in
    e.v.fx <- 0.0;
    e.v.fl <- 0.0;
    e.v.next_fx <- 0.0;
    e.v.next_fl <- 0.0;
    e.staged <- false;
    e.in_dirty <- false;
    if not keep_monitors then begin
      Stats.Running.reset e.range_stat;
      e.range_prop <- Interval.empty;
      Stats.Err_stats.reset e.err;
      e.grid_lsb <- None;
      e.n_assign <- 0;
      e.n_access <- 0;
      e.n_overflow <- 0;
      e.last_overflow <- None
    end
  done;
  t.n_dirty <- 0;
  t.time <- 0;
  t.warned <- 0;
  t.collected <- [];
  if reseed then Stats.Rng.reseed t.rng ~seed:t.seed;
  (* reseed precedes the hooks: a hook's [Signal.init] may consume the
     RNG through an [error()] injection *)
  List.iter (fun f -> f ()) (List.rev t.reset_hooks)

(* --- snapshot / restore ------------------------------------------------ *)

(** Per-entry slice of a {!snapshot}: the refinement-relevant
    configuration of one signal (declared type and annotations), keyed
    by name for shape validation at restore time. *)
type entry_snapshot = {
  s_name : string;
  s_dtype : Fixpt.Dtype.t option;
  s_range : Interval.t option;
  s_error : float option;
}

type snapshot = {
  s_entries : entry_snapshot array;  (** declaration order *)
  s_policy : overflow_policy;
}

let snapshot t =
  {
    s_entries =
      Array.init t.n_entries (fun i ->
          let e = t.entries.(i) in
          {
            s_name = e.name;
            s_dtype = e.dtype;
            s_range = e.explicit_range;
            s_error = e.error_inject;
          });
    s_policy = t.policy;
  }

let restore_into s t =
  if Array.length s.s_entries <> t.n_entries then
    invalid_arg
      (Printf.sprintf
         "Env.restore_into: snapshot has %d signals, environment has %d"
         (Array.length s.s_entries) t.n_entries);
  Array.iteri
    (fun i es ->
      let e = t.entries.(i) in
      if not (String.equal e.name es.s_name) then
        invalid_arg
          (Printf.sprintf
             "Env.restore_into: signal %d is %S in the snapshot but %S in \
              the environment"
             i es.s_name e.name);
      (* the compiled quantizer is rebuilt only on an actual type change *)
      if e.dtype != es.s_dtype then set_entry_dtype e es.s_dtype;
      e.explicit_range <- es.s_range;
      e.error_inject <- es.s_error)
    s.s_entries;
  t.policy <- s.s_policy;
  reset t
