(** Overloaded operators on simulation values (§2.2, §4, Fig. 2).

    Each arithmetic operator performs three simultaneous computations:
    the fixed-point arithmetic (on [fx]; quantization happens only at
    assignment), the floating-point reference (on [fl]) and the range
    propagation (interval arithmetic on [iv]) — exactly the paper's
    operator-overloading strategy.  When a {!Record} session is active
    a fourth effect runs: the operator adds itself to the signal
    flowgraph being extracted (§4.1 "Analytical").

    Relational operators evaluate on the {e fixed-point} values: "the
    floating-point simulation is steered by fixed-point control
    decisions" (§4.2), so both executions take the same paths and the
    error statistics stay meaningful.

    Intended to be locally opened:
    {[
      let open Sim.Ops in
      c <-- (!!a *: !!b) +: cst 0.5
    ]} *)

type v = Value.t

let cst = Value.const

(* The recording check is inlined (rather than going through
   [Record.map_node] with a closure) so the common not-recording case
   allocates nothing beyond the result value. *)
let lift2 op_kind ff fi (a : v) (b : v) : v =
  let r =
    {
      Value.fx = ff (Value.fx a) (Value.fx b);
      fl = ff (Value.fl a) (Value.fl b);
      iv = fi (Value.iv a) (Value.iv b);
      node = Value.no_node;
    }
  in
  match Record.active () with
  | None -> r
  | Some t -> Value.with_node r (Record.op t op_kind [ a; b ])

let lift1 op_kind ff fi (a : v) : v =
  let r =
    {
      Value.fx = ff (Value.fx a);
      fl = ff (Value.fl a);
      iv = fi (Value.iv a);
      node = Value.no_node;
    }
  in
  match Record.active () with
  | None -> r
  | Some t -> Value.with_node r (Record.op t op_kind [ a ])

let ( +: ) = lift2 Sfg.Node.Add ( +. ) Interval.add
let ( -: ) = lift2 Sfg.Node.Sub ( -. ) Interval.sub
let ( *: ) = lift2 Sfg.Node.Mul ( *. ) Interval.mul
let ( /: ) = lift2 Sfg.Node.Div ( /. ) Interval.div
let ( ~-: ) = lift1 Sfg.Node.Neg (fun x -> -.x) Interval.neg
let abs = lift1 Sfg.Node.Abs Float.abs Interval.abs
let min_ = lift2 Sfg.Node.Min Float.min Interval.min_
let max_ = lift2 Sfg.Node.Max Float.max Interval.max_

(** Multiply by the constant [2^k] — a hardware shift; exact in all three
    components. *)
let shift_left (a : v) k : v =
  let s = Float.ldexp 1.0 k in
  lift1 (Sfg.Node.Shift k) (fun x -> x *. s) (fun i -> Interval.shift_left i k) a

let shift_right a k = shift_left a (-k)

(* --- control: fixed-point steered ------------------------------------ *)

let ( <: ) (a : v) (b : v) = Value.fx a < Value.fx b
let ( >: ) (a : v) (b : v) = Value.fx a > Value.fx b
let ( <=: ) (a : v) (b : v) = Value.fx a <= Value.fx b
let ( >=: ) (a : v) (b : v) = Value.fx a >= Value.fx b
let ( =: ) (a : v) (b : v) = Value.fx a = Value.fx b
let ( <>: ) (a : v) (b : v) = Value.fx a <> Value.fx b

(** Two-way select steered by a fixed-point decision.  The propagated
    range is the join of both branches (the static analysis cannot know
    which branch runs).  Recorded as a [Select] whose condition is the
    frozen decision — sound for range purposes (both branches join). *)
let select cond (a : v) (b : v) : v =
  let chosen = if cond then a else b in
  let r =
    {
      Value.fx = Value.fx chosen;
      fl = Value.fl chosen;
      iv = Interval.join (Value.iv a) (Value.iv b);
      node = Value.no_node;
    }
  in
  match Record.active () with
  | None -> r
  | Some t ->
      Value.with_node r
        (Record.op t Sfg.Node.Select
           [ cst (if cond then 1.0 else 0.0); a; b ])

(** Sign slicer: ±1 decision on the fixed-point value (the PAM slicer of
    the motivational example).  Recorded with the data value itself as
    the select condition, so the extracted graph keeps the dependence. *)
let sign (a : v) : v =
  let decision = if Value.fx a >= 0.0 then 1.0 else -1.0 in
  let r =
    {
      Value.fx = decision;
      fl = decision;
      iv = Interval.make (-1.0) 1.0;
      node = Value.no_node;
    }
  in
  match Record.active () with
  | None -> r
  | Some t ->
      Value.with_node r
        (Record.op t Sfg.Node.Select [ a; cst 1.0; cst (-1.0) ])

(** Ablation variant of {!sign}: each execution follows its {e own}
    decision (fixed on [fx], float on [fl]).  This is exactly what the
    paper argues against in §4.2 — when the two decisions disagree the
    difference error jumps by a full decision distance and the error
    statistics lose their meaning.  The benches quantify that. *)
let sign_unsteered (a : v) : v =
  {
    Value.fx = (if Value.fx a >= 0.0 then 1.0 else -1.0);
    fl = (if Value.fl a >= 0.0 then 1.0 else -1.0);
    iv = Interval.make (-1.0) 1.0;
    node = Value.no_node;
  }

(* --- signal access ---------------------------------------------------- *)

(** Read a signal. *)
let ( !! ) = Signal.value

(** Explicit cast of an intermediate value through a type (§2.2's [cast]
    operator): quantizes [fx], leaves the float reference untouched, and
    clamps the range if the type saturates. *)
let cast_scratch = Fixpt.Quantize.create_scratch ()

let cast dt (a : v) : v =
  let c = Fixpt.Quantize.of_dtype dt in
  let fx = Fixpt.Quantize.exec_into c (Value.fx a) cast_scratch in
  let iv =
    if c.Fixpt.Quantize.saturating then
      Interval.clamp
        ~into:
          (Interval.make c.Fixpt.Quantize.min_v c.Fixpt.Quantize.max_v)
        (Value.iv a)
    else Value.iv a
  in
  let r = { Value.fx; fl = Value.fl a; iv; node = Value.no_node } in
  match Record.active () with
  | None -> r
  | Some t -> Value.with_node r (Record.op t (Sfg.Node.Quantize dt) [ a ])

(** Assignment (the paper's overloaded [=]). *)
let ( <-- ) = Signal.assign
