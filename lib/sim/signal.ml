(** Signal objects — the paper's [sig] and [reg] (§2.1, §2.3).

    A signal is declared either floating-point ([create env name]) or
    fixed-point ([create env name ~dtype]).  Arithmetic happens on
    {!Value.t} triples via {!Ops}; this module implements the two
    monitored end points:

    - {!value} (reading): counts the access and yields the triple
      [(fx, fl, propagated range)];
    - {!assign} (writing): performs the quantization cast of §2.2 and
      feeds all three monitors — statistic range, propagated range, and
      consumed/produced error statistics (§4).

    The two refinement annotations are {!range} (seed/override for range
    propagation; also the explosion-breaker for feedback signals) and
    {!error} (overrule the produced error of a diverging feedback signal
    with uniform noise, §4.2). *)

type t = Env.entry

let name (t : t) = t.Env.name
let dtype (t : t) = t.Env.dtype
let kind (t : t) = t.Env.kind

(** Declare a combinational signal ([sig]).  Floating-point unless
    [~dtype] is given. *)
let create env ?dtype name : t = Env.register env ~name ~kind:Env.Comb ~dtype

(** Declare a registered signal ([reg]): writes are committed by
    [Env.tick]. *)
let create_reg env ?dtype name : t =
  Env.register env ~name ~kind:Env.Registered ~dtype

(** Retype a signal (the refinement flow rewrites types between
    iterations).  Recompiles the cached quantizer. *)
let set_dtype (t : t) dt = Env.set_entry_dtype t (Some dt)

let clear_dtype (t : t) = Env.set_entry_dtype t None

(** [range t lo hi] — explicit range annotation.  Reads propagate exactly
    [[lo, hi]] regardless of what assignments accumulated; this is the
    §4.1 remedy for feedback-driven MSB explosion. *)
let range (t : t) lo hi = t.Env.explicit_range <- Some (Interval.make lo hi)

let clear_range (t : t) = t.Env.explicit_range <- None

(** [error t h] — overrule the produced difference error with a uniform
    random variable in [[-h, h]] (σ = h/√3): breaks float/fixed
    divergence on sensitive feedback signals (§4.2). *)
let error (t : t) h =
  if h < 0.0 then invalid_arg "Signal.error: negative half-width";
  t.Env.error_inject <- Some h

let clear_error (t : t) = t.Env.error_inject <- None

(* The interval a read propagates (see DESIGN.md §"quasi-analytical"):
   explicit annotation wins; otherwise the accumulated propagated range,
   defaulting to the declared type's range and then to the current value;
   a saturating type clamps the result (hardware saturation bounds the
   signal). *)
let read_interval (t : t) =
  let base =
    match t.Env.explicit_range with
    | Some r -> r
    | None ->
        let accumulated =
          if Interval.is_empty t.Env.range_prop then (
            match t.Env.quant with
            | Some qz -> qz.Env.type_iv
            | None -> Interval.of_point t.Env.v.Env.fl)
          else t.Env.range_prop
        in
        (* a register read must cover the value it currently holds: the
           initial contents (and a same-cycle staged write's staleness)
           are not in the assignment-accumulated range — the exact
           analogue of the analytical Delay transfer joining its init *)
        (match t.Env.kind with
        | Env.Registered ->
            Interval.observe (Interval.observe accumulated t.Env.v.Env.fx) t.Env.v.Env.fl
        | Env.Comb -> accumulated)
  in
  match t.Env.quant with
  | Some qz when qz.Env.q.Fixpt.Quantize.saturating ->
      Interval.clamp ~into:qz.Env.type_iv base
  | _ -> base

(* Recording (§4.1 "Analytical", see {!Record}): the graph node a read
   of this signal refers to, creating delay/const placeholders on first
   use.  Reads of a [range()]-annotated signal go through a Saturate
   node, mirroring {!read_interval}. *)
let record_read (r : Record.t) (t : t) =
  match Hashtbl.find_opt r.Record.drivers t.Env.id with
  | Some n -> n
  | None ->
      let g = r.Record.graph in
      let base =
        match t.Env.kind with
        | Env.Registered ->
            let d = Sfg.Graph.delay g t.Env.name in
            Hashtbl.replace r.Record.delays t.Env.id d;
            d
        | Env.Comb ->
            (* read before any recorded assignment: a constant loaded at
               initialization (coefficients) *)
            Sfg.Graph.const g ~name:t.Env.name t.Env.v.Env.fx
      in
      let wrapped =
        match t.Env.explicit_range with
        | Some rr ->
            Sfg.Graph.fresh g
              ~name:(t.Env.name ^ ".range")
              ~op:(Sfg.Node.Saturate rr) ~inputs:[ base ]
        | None -> base
      in
      Hashtbl.replace r.Record.drivers t.Env.id wrapped;
      wrapped

(** Read the signal as a simulation value (counts as an access). *)
let value (t : t) : Value.t =
  t.Env.n_access <- t.Env.n_access + 1;
  let base =
    { Value.fx = t.Env.v.Env.fx; fl = t.Env.v.Env.fl; iv = read_interval t;
      node = Value.no_node }
  in
  match Record.active () with
  | None -> base
  | Some r -> Value.with_node base (record_read r t)

(** Current fixed-point value without monitoring (for probes/tests). *)
let peek_fx (t : t) = t.Env.v.Env.fx

let peek_fl (t : t) = t.Env.v.Env.fl

(* Finest LSB position (exponent of the lowest set mantissa bit) needed
   to represent [v] exactly; [max_int] for 0/non-finite (sentinel, so the
   per-assignment hot path allocates no option).  Works directly on the
   IEEE 754 bit pattern: a normal [v] is [(2^52 lor frac) * 2^(e-1075)],
   a subnormal is [frac * 2^-1074]; the mantissa fits a native [int], so
   stripping its trailing zero bits is a few untagged shifts. *)
let lsb_exponent v =
  if v = 0.0 || not (Float.is_finite v) then max_int
  else begin
    let bits = Int64.bits_of_float v in
    let biased = Int64.to_int (Int64.shift_right_logical bits 52) land 0x7FF in
    let frac = Int64.to_int bits land 0xF_FFFF_FFFF_FFFF in
    let m = if biased = 0 then frac else frac lor 0x10_0000_0000_0000 in
    let e = if biased = 0 then -1074 else biased - 1075 in
    let rec strip m tz = if m land 1 = 0 then strip (m lsr 1) (tz + 1) else tz in
    e + strip m 0
  end

(* Update the range monitors with the incoming ideal value and interval. *)
let monitor_range (t : t) (v : Value.t) =
  Stats.Running.add t.Env.range_stat v.Value.fx;
  (let p = lsb_exponent v.Value.fx in
   if p <> max_int then
     match t.Env.grid_lsb with
     | Some q when q <= p -> ()  (* already at least as fine: no update *)
     | _ -> t.Env.grid_lsb <- Some p);
  let incoming =
    match t.Env.quant with
    | Some qz when qz.Env.q.Fixpt.Quantize.saturating ->
        Interval.clamp ~into:qz.Env.type_iv v.Value.iv
    | _ -> v.Value.iv
  in
  t.Env.range_prop <- Interval.join t.Env.range_prop incoming

(* Quantize the incoming fixed value through the signal's compiled
   quantizer, recording overflow events.  Uses the allocation-free
   [exec_into] with a module-private scratch (simulation is
   single-domain; nothing re-enters between the cast and the reads). *)
let qscratch = Fixpt.Quantize.create_scratch ()

let quantize_in (t : t) fx_in =
  match t.Env.quant with
  | None -> fx_in
  | Some qz ->
      let q = qz.Env.q in
      let fx = Fixpt.Quantize.exec_into q fx_in qscratch in
      if qscratch.Fixpt.Quantize.flag <> 0.0 then begin
        let raw = qscratch.Fixpt.Quantize.raw in
        (* the sink sees the event before the policy may abort the run *)
        (let snk = Env.sink t.Env.env in
         if snk != Trace.Sink.null then
           snk.Trace.Sink.on_overflow ~id:t.Env.id ~time:(Env.time t.Env.env)
             ~raw ~saturating:q.Fixpt.Quantize.saturating);
        if q.Fixpt.Quantize.error_mode then Env.record_overflow t.Env.env t raw
        else begin
          t.Env.n_overflow <- t.Env.n_overflow + 1;
          t.Env.last_overflow <- Some raw
        end
      end;
      fx

(* Recording: an assignment extends the graph with the signal's
   quantization/saturation pipeline and names the result — comb signals
   get an Alias node, registered signals a Delay (closing feedback). *)
let record_assign (r : Record.t) (t : t) (v : Value.t) =
  let g = r.Record.graph in
  let src =
    if Value.node v >= 0 then Value.node v
    else
      (* external data entering the design through this signal; its
         declared range is the annotation, the type range, or — lacking
         both — the incoming value itself (a literal constant) *)
      let declared =
        match t.Env.explicit_range with
        | Some r -> r
        | None -> (
            match t.Env.dtype with
            | Some dt ->
                let lo, hi = Fixpt.Dtype.range dt in
                Interval.make lo hi
            | None -> Value.iv v)
      in
      Sfg.Graph.fresh g
        ~name:(t.Env.name ^ "_in")
        ~op:(Sfg.Node.Input declared) ~inputs:[]
  in
  let src =
    match t.Env.dtype with
    | Some dt -> Sfg.Graph.quantize g ~name:(t.Env.name ^ "_q") dt src
    | None -> src
  in
  let src =
    match t.Env.explicit_range with
    | Some rr ->
        Sfg.Graph.fresh g
          ~name:(t.Env.name ^ "_sat")
          ~op:(Sfg.Node.Saturate rr) ~inputs:[ src ]
    | None -> src
  in
  match t.Env.kind with
  | Env.Comb ->
      let a = Sfg.Graph.alias g ~name:t.Env.name src in
      Hashtbl.replace r.Record.drivers t.Env.id a
  | Env.Registered -> (
      match Hashtbl.find_opt r.Record.delays t.Env.id with
      | Some d -> (
          try Sfg.Graph.connect_delay g d src
          with Invalid_argument _ ->
            (* already connected (second write this cycle): keep first *)
            ())
      | None ->
          let d = Sfg.Graph.delay_of g t.Env.name src in
          Hashtbl.replace r.Record.delays t.Env.id d;
          Hashtbl.replace r.Record.drivers t.Env.id d)

(** Assign a value to the signal (the paper's overloaded [=]): performs
    the quantization cast, runs all monitors, and — for registered
    signals — stages the result until the next [Env.tick]. *)
let assign (t : t) (v : Value.t) =
  t.Env.n_assign <- t.Env.n_assign + 1;
  (match Record.active () with
  | Some r -> record_assign r t v
  | None -> ());
  monitor_range t v;
  let fx' = quantize_in t v.Value.fx in
  (* fault-injection hook: disabled injection costs exactly this match —
     the transform (SEU bitflips, forced overflow, …) runs only when a
     plan armed the environment (see Fault.Inject) *)
  let fx' =
    match Env.injector t.Env.env with None -> fx' | Some f -> f t fx'
  in
  let fl' =
    match t.Env.error_inject with
    | Some h -> fx' +. Stats.Rng.uniform_sym (Env.rng t.Env.env) h
    | None -> v.Value.fl
  in
  Stats.Err_stats.record t.Env.err
    ~consumed:(v.Value.fl -. v.Value.fx)
    ~produced:(fl' -. fx');
  (* disabled tracing costs exactly this pointer compare: argument
     computation (and any allocation) happens only behind the guard *)
  (let snk = Env.sink t.Env.env in
   if snk != Trace.Sink.null then
     let quantized, rounded =
       match t.Env.quant with
       | Some qz -> (true, qz.Env.q.Fixpt.Quantize.round_nearest)
       | None -> (false, false)
     in
     snk.Trace.Sink.on_assign ~id:t.Env.id ~time:(Env.time t.Env.env)
       ~err:(fl' -. fx') ~quantized ~rounded);
  match t.Env.kind with
  | Env.Comb ->
      t.Env.v.Env.fx <- fx';
      t.Env.v.Env.fl <- fl'
  | Env.Registered -> Env.stage t.Env.env t ~fx:fx' ~fl:fl'

(** Force both simulation values directly (initialization — e.g. loading
    filter coefficients or setting a register's reset value before the
    run).  Monitors record the assignment; registered signals commit
    immediately (initial register contents, no clock involved). *)
let init (t : t) c =
  assign t (Value.const c);
  match t.Env.kind with
  | Env.Comb -> ()
  | Env.Registered ->
      t.Env.v.Env.fx <- t.Env.v.Env.next_fx;
      t.Env.v.Env.fl <- t.Env.v.Env.next_fl;
      t.Env.staged <- false

(* --- report accessors ------------------------------------------------ *)

let accesses (t : t) = t.Env.n_access
let assignments (t : t) = t.Env.n_assign
let overflows (t : t) = t.Env.n_overflow
let stat_range (t : t) = Stats.Running.range t.Env.range_stat
let prop_range (t : t) = Interval.bounds t.Env.range_prop
let explicit_range (t : t) = t.Env.explicit_range
let error_injected (t : t) = t.Env.error_inject
let err_stats (t : t) = t.Env.err
let range_stats (t : t) = t.Env.range_stat

(** Finest LSB position needed to represent every assigned value exactly
    ([None] if only zeros were assigned).  The exact-signal escape hatch
    of the LSB rules: a slicer output carrying ±1 needs LSB 0, whatever
    its error statistics say. *)
let grid_lsb (t : t) = t.Env.grid_lsb

(** The propagated range exploded (infinite or astronomically wide):
    the §4.1 failure mode requiring [range] or a saturating type. *)
let exploded (t : t) = Interval.is_exploded t.Env.range_prop

let pp ppf (t : t) =
  Format.fprintf ppf "%s%s" t.Env.name
    (match t.Env.dtype with
    | Some dt -> Fixpt.Dtype.to_string dt
    | None -> "<float>")
