(** Value-change-dump (VCD, IEEE 1364) trace writer: dumps the
    fixed-point values of selected signals as [real] variables, for any
    waveform viewer. *)

type t

(** Fresh empty trace. *)
val create : unit -> t

(** Register a signal to trace; must precede {!start}. *)
val probe : t -> Signal.t -> unit

(** Emit the header.  [date] is an identification string (no wall-clock
    reads: output is reproducible). *)
val start : ?date:string -> t -> unit

(** Record the current probe values at [time] (monotonically increasing;
    stale times are ignored). *)
val sample : t -> time:int -> unit

(** The VCD file text accumulated so far. *)
val contents : t -> string

(** Write {!contents} to a path. *)
val write_file : t -> string -> unit
