(** Clock-true execution of processor behaviours (§2): every processor's
    step function runs once per cycle, then the clock commits the
    registered signals. *)

type processor

(** A named per-cycle behaviour ([cycle index -> unit]). *)
val processor : string -> (int -> unit) -> processor

type t

(** An engine clocking the given environment. *)
val create : Env.t -> t

(** Register a processor; execution follows registration order. *)
val add : t -> processor -> unit

(** The environment the engine clocks. *)
val env : t -> Env.t

(** [cycles] rounds of: every processor in registration order, then one
    clock tick. *)
val run_processors : t -> cycles:int -> unit

(** Single-processor shorthand: [step cycle] then a tick, [cycles]
    times. *)
val run : Env.t -> cycles:int -> (int -> unit) -> unit

(** Run until [step] returns [false] (tick after each step); [max]
    bounds runaway loops (default one million cycles).

    Returns the number of executed-and-committed cycles, with the same
    meaning on {e both} exits: every call to [step] — including the one
    that returned [false] — is followed by its [Env.tick], and each
    such step+tick pair counts once.  So a loop stopped by the bound
    returns exactly [max], and a loop whose [step] first returns
    [false] at cycle [c] returns [c + 1]. *)
val run_until : ?max:int -> Env.t -> (int -> bool) -> int
