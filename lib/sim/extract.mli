(** One-call automatic flowgraph extraction (§4.1 "Analytical"):
    execute exactly one clock cycle of [step] under a {!Record} session
    and return the design's complete dataflow graph — registered signals
    as delays (feedback closed), declared types as quantizers, [range()]
    annotations as saturations.

    Limitations (shared with any trace-based extraction): OCaml-level
    [if]s contribute only the taken branch ({!Ops.select} / {!Ops.sign}
    record both); loops are unrolled as executed.  Registers read but
    not written during the recorded cycle are sealed as hold
    registers. *)

(** [graph env ~step ()] — extract; [outputs] marks signals as graph
    outputs.  The recorded cycle is an ordinary simulated cycle (it also
    lands in the monitors) and includes the [Env.tick].

    Raises [Invalid_argument] when an [outputs] entry names a signal
    that was never assigned during the recorded cycle (a typo'd name,
    or a strobed branch that did not fire this cycle) — a silently
    dropped output would hand the downstream analyses the wrong
    node. *)
val graph :
  Env.t -> ?outputs:string list -> step:(unit -> unit) -> unit -> Sfg.Graph.t

(** Extract and run the analytical range fixpoint. *)
val analyze :
  Env.t ->
  ?outputs:string list ->
  step:(unit -> unit) ->
  unit ->
  Sfg.Graph.t * Sfg.Range_analysis.result
