(** Simulation environment: the signal registry and the clock (§2).

    Owns every signal object of a design, the deterministic noise source
    used by [error()] overruling, the clock that commits registered
    signals, and the design-wide overflow policy.

    The full mutable state of a signal is the {!entry} record — exposed
    because {!Signal} (the user-facing operations) lives in a sibling
    module; treat it as the library-internal state contract and use
    {!Signal}'s accessors from application code.

    The registry is engineered for the simulation hot path: entries live
    in a dense array in declaration order with a hash index by name
    (O(1) {!find}, duplicate names rejected at {!register} time), every
    typed entry caches a compiled quantizer ({!Fixpt.Quantize.compiled})
    so assignment never re-derives code bounds or the step, and staged
    register writes are tracked in a dirty list so {!tick} touches only
    the signals actually written this cycle. *)

type kind =
  | Comb  (** the paper's [sig]: assignment takes effect immediately *)
  | Registered  (** the paper's [reg]: staged until the next clock tick *)

(** What simulation does when an [Error]-mode type overflows (§2.1). *)
type overflow_policy =
  | Count  (** record silently; reports show the count *)
  | Warn  (** log a warning (first few) and record *)
  | Raise  (** abort simulation with {!Overflow} *)
  | Collect
      (** degraded-mode {!Raise}: record a structured {!fault_record}
          and keep simulating — the crash becomes a diagnostic,
          retrievable via {!collected_faults} *)

(** Raised by an [Error]-mode overflow under {!Raise}.  A [Printexc]
    printer is registered, so an uncaught raise prints the signal name,
    offending value and cycle instead of the opaque constructor. *)
exception Overflow of { signal : string; value : float; time : int }

(** One collected overflow under the {!Collect} policy. *)
type fault_record = { f_signal : string; f_value : float; f_time : int }

type t

(** The simulation values of one signal: committed fixed/float pair plus
    the staged pair of registered signals — an all-float record (flat
    representation) so per-sample stores mutate without boxing. *)
type vals = {
  mutable fx : float;
  mutable fl : float;
  mutable next_fx : float;
  mutable next_fl : float;
}

(** Per-entry cache of everything the assignment cast needs from the
    declared type; rebuilt on retype, never per sample. *)
type quantizer = {
  q : Fixpt.Quantize.compiled;
  type_iv : Interval.t;  (** representable range of the dtype *)
}

type entry = {
  env : t;  (** owning environment *)
  name : string;
  id : int;
  kind : kind;
  mutable dtype : Fixpt.Dtype.t option;  (** [None] = floating-point *)
  mutable quant : quantizer option;
      (** compiled form of [dtype]; kept in sync by {!set_entry_dtype} *)
  v : vals;  (** committed and staged simulation values *)
  mutable staged : bool;
  mutable in_dirty : bool;  (** already on the env's dirty list *)
  range_stat : Stats.Running.t;  (** observed ideal values *)
  mutable range_prop : Interval.t;  (** accumulated propagated range *)
  mutable explicit_range : Interval.t option;  (** [range()] annotation *)
  mutable error_inject : float option;  (** [error(h)] annotation *)
  err : Stats.Err_stats.t;
  mutable grid_lsb : int option;
      (** finest LSB position needed to represent the assigned ideal
          values exactly *)
  mutable n_assign : int;
  mutable n_access : int;
  mutable n_overflow : int;
  mutable last_overflow : float option;
}

(** Fresh environment; [seed] fixes the error-mode RNG. *)
val create : ?seed:int -> ?policy:overflow_policy -> unit -> t

(** Current cycle number. *)
val time : t -> int

(** The environment's RNG (error-mode draws, stimuli). *)
val rng : t -> Stats.Rng.t

(** Change what [Error]-mode overflows do. *)
val set_policy : t -> overflow_policy -> unit

(** Attach an observability sink (see {!Trace.Sink}).  Registration
    events replay for every signal already in the registry, so the
    sink's id→name map is complete whatever the attachment order.  One
    sink per environment; fan out with {!Trace.Sink.tee}. *)
val set_sink : t -> Trace.Sink.t -> unit

(** Detach — back to {!Trace.Sink.null} (one pointer compare per
    assignment, no allocation). *)
val clear_sink : t -> unit

(** The currently attached sink ({!Trace.Sink.null} when disabled). *)
val sink : t -> Trace.Sink.t

(** Arm the fault-injection hook: [f entry fx'] maps every
    post-quantization value before it is stored or staged (see
    {!Fault.Inject}).  One injector per environment — the fault layer
    composes schedules itself.  [f] must be deterministic in
    [(entry, time)] for replayability, and is expected to emit its own
    [on_fault] sink events / overflow records. *)
val set_injector : t -> (entry -> float -> float) -> unit

(** Disarm the fault-injection hook (back to one [match] per
    assignment, no transform). *)
val clear_injector : t -> unit

(** The armed injector, if any. *)
val injector : t -> (entry -> float -> float) option

(** Faults recorded under the {!Collect} policy, chronological.
    Cleared by {!reset}. *)
val collected_faults : t -> fault_record list

(** Number of collected faults (length of {!collected_faults}). *)
val collected_count : t -> int

(** Declare a signal (use {!Signal.create} / {!Signal.create_reg}).
    Raises [Invalid_argument] if the name is already registered. *)
val register : t -> name:string -> kind:kind -> dtype:Fixpt.Dtype.t option -> entry

(** Retype an entry, rebuilding its compiled quantizer (the refinement
    flow rewrites types between iterations). *)
val set_entry_dtype : entry -> Fixpt.Dtype.t option -> unit

(** Signals in declaration order — the order the paper's tables use. *)
val signals : t -> entry list

(** Look a signal up by name. *)
val find : t -> string -> entry option

(** Raises [Invalid_argument] for an unknown name. *)
val find_exn : t -> string -> entry

(** Apply the overflow policy to an [Error]-mode overflow event. *)
val record_overflow : t -> entry -> float -> unit

(** Stage a register write for the next {!tick}, tracking the entry on
    the environment's dirty list. *)
val stage : t -> entry -> fx:float -> fl:float -> unit

(** Commit all staged register writes — one clock tick.  Only entries
    written since the previous tick are touched; registers without a
    staged write hold their value. *)
val tick : t -> unit

(** Register an initialization action re-run after every {!reset} (and
    immediately, unless [now:false]) — the "constructor initialization"
    of the paper's listings (coefficient loading etc.). *)
val at_reset : ?now:bool -> t -> (unit -> unit) -> unit

(** Reset dynamic state (values, staging, time), keep declarations and
    annotations; clears the monitors too unless [keep_monitors].  Used
    between refinement iterations.

    The environment RNG is rewound to the creation seed ([reseed:true],
    the default) so back-to-back runs consume identical noise streams;
    pass [~reseed:false] to keep the continuing stream. *)
val reset : ?keep_monitors:bool -> ?reseed:bool -> t -> unit

(** Frozen copy of an environment's refinement-relevant configuration:
    every signal's declared dtype, [range()]/[error()] annotations, and
    the overflow policy — {e not} the dynamic simulation state.  Cheap
    to take (one small record per signal) and cheap to reapply, so a
    design instantiated once can be returned to a pristine baseline
    between candidate evaluations of a wordlength sweep without
    re-registering anything. *)
type snapshot

(** Capture the current configuration of every registered signal. *)
val snapshot : t -> snapshot

(** Reapply a snapshot to an environment with the {e same} signal
    registry (same names, same declaration order — e.g. the environment
    the snapshot was taken from, or another instance built by the same
    design constructor), then {!reset} it (monitors cleared, RNG
    rewound, reset hooks replayed).  Compiled quantizers are rebuilt
    only for entries whose dtype actually changed.

    Raises [Invalid_argument] when the registry shape does not match. *)
val restore_into : snapshot -> t -> unit

(** Log source for the simulation engine. *)
val src : Logs.src
