(** Signal arrays — the paper's [sigarray] and [regarray] (§2.3):
    independently monitored signals sharing a base name (elements report
    as [name[i]]) and, optionally, a common dtype. *)

type t

(** Array of combinational signals ([sigarray]). *)
val create : Env.t -> ?dtype:Fixpt.Dtype.t -> string -> int -> t

(** Array of registered signals ([regarray]). *)
val create_reg : Env.t -> ?dtype:Fixpt.Dtype.t -> string -> int -> t

(** The array's base name (elements are [base[i]]). *)
val base_name : t -> string

(** Element count. *)
val length : t -> int

(** Raises [Invalid_argument] out of bounds. *)
val get : t -> int -> Signal.t

(** Index syntax: [arr.%(i)]. *)
val ( .%() ) : t -> int -> Signal.t

(** Apply to every element in index order. *)
val iter : (Signal.t -> unit) -> t -> unit

(** {!iter} with the index. *)
val iteri : (int -> Signal.t -> unit) -> t -> unit

(** Elements in index order. *)
val to_list : t -> Signal.t list

(** Apply a dtype to every element. *)
val set_dtype : t -> Fixpt.Dtype.t -> unit

(** Annotate every element with the same explicit range. *)
val range : t -> float -> float -> unit

(** Initialize elements from a float array (coefficient loading);
    raises [Invalid_argument] on a length mismatch. *)
val init_values : t -> float array -> unit
