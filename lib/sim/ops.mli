(** Overloaded operators on simulation values (§2.2, §4, Fig. 2).

    Each arithmetic operator runs the fixed-point computation, the float
    reference and the range propagation at once — and, during a
    {!Record} session, adds itself to the flowgraph being extracted.
    Relational operators evaluate on the {e fixed-point} values (§4.2:
    control is steered by fixed-point decisions).

    Intended to be locally opened:
    {[
      let open Sim.Ops in
      c <-- (!!a *: !!b) +: cst 0.5
    ]} *)

type v = Value.t

(** A design-time constant ({!Value.const}). *)
val cst : float -> v

(** Dual addition with range propagation. *)
val ( +: ) : v -> v -> v

(** Dual subtraction with range propagation. *)
val ( -: ) : v -> v -> v

(** Dual multiplication with range propagation. *)
val ( *: ) : v -> v -> v

(** Dual division; a divisor range straddling zero propagates {!Interval.entire}. *)
val ( /: ) : v -> v -> v

(** Dual negation. *)
val ( ~-: ) : v -> v

(** Dual absolute value. *)
val abs : v -> v

(** Dual minimum. *)
val min_ : v -> v -> v

(** Dual maximum. *)
val max_ : v -> v -> v

(** Multiply by [2^k] — a hardware shift; exact in all components. *)
val shift_left : v -> int -> v

(** Multiply by [2^-k]; see {!shift_left}. *)
val shift_right : v -> int -> v

(** Fixed-point-steered comparisons. *)
val ( <: ) : v -> v -> bool

(** See {!(<:)}. *)
val ( >: ) : v -> v -> bool

(** See {!(<:)}. *)
val ( <=: ) : v -> v -> bool

(** See {!(<:)}. *)
val ( >=: ) : v -> v -> bool

(** See {!(<:)}. *)
val ( =: ) : v -> v -> bool

(** See {!(<:)}. *)
val ( <>: ) : v -> v -> bool

(** Two-way select steered by a fixed-point decision; the propagated
    range joins both branches. *)
val select : bool -> v -> v -> v

(** Sign slicer: ±1 decision on the fixed-point value; the float
    execution follows the same decision (§4.2). *)
val sign : v -> v

(** Ablation variant: each execution follows its own decision — the
    §4.2 anti-pattern, quantified by the benches. *)
val sign_unsteered : v -> v

(** Read a signal ({!Signal.value}). *)
val ( !! ) : Signal.t -> v

(** Explicit intermediate cast (§2.2): quantizes [fx], leaves [fl]
    untouched, clamps the range if the type saturates. *)
val cast : Fixpt.Dtype.t -> v -> v

(** Assignment (the paper's overloaded [=]). *)
val ( <-- ) : Signal.t -> v -> unit
