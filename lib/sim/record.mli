(** Recording sessions for automatic signal-flowgraph extraction (§4.1
    "Analytical") — see {!Extract} for the one-call API.

    While a session is active, the overloaded operators ({!Ops}) and the
    signal read/write paths ({!Signal}) add nodes to [graph]; the
    [drivers]/[delays] tables map signal ids to the nodes currently
    representing them. *)

type t = {
  graph : Sfg.Graph.t;
  drivers : (int, int) Hashtbl.t;  (** signal id → driving node *)
  delays : (int, int) Hashtbl.t;  (** signal id → delay node (registers) *)
  mutable fresh : int;
}

(** The recorder currently capturing, if any.  The session is
    domain-local: at most one per domain, and parallel sweep workers
    can extract concurrently without cross-recording each other's
    graphs. *)
val active : unit -> t option

(** Begin a session (replacing any active one). *)
val start : unit -> t

(** Stop capturing (no-op when idle). *)
val stop : unit -> unit

(** Fresh synthetic node name ["base~k"]. *)
val synth_name : t -> string -> string

(** Node for an operand value: its provenance if present, else a
    [Const] of its fixed value. *)
val operand : t -> Value.t -> int

(** Record a primitive operation over already-recorded operands. *)
val op : t -> Sfg.Node.op -> Value.t list -> int

(** Apply [f] to tag a value only when a session is active. *)
val map_node : (t -> int) -> Value.t -> Value.t
