(** Communication channels — the paper's [get]/[put] primitives.

    Processors communicate through directed sample streams.  A channel is
    a FIFO of floats; a {e source} channel can instead be backed by a
    generator function (the stimulus), and a {e sink} channel records
    what was written for later analysis (SQNR measurement against a
    reference run). *)

type t = {
  name : string;
  queue : float Queue.t;
  mutable producer : (int -> float) option;
  mutable produced : int;  (** samples pulled from the producer *)
  mutable history : float list;  (** reversed log of every [put] *)
  mutable record : bool;
}

let create ?(record = false) name =
  { name; queue = Queue.create (); producer = None; produced = 0;
    history = []; record }

(** [of_fun name f] — a source channel: [get] returns [f 0], [f 1], …
    Deterministic stimulus generators plug in here. *)
let of_fun name f =
  let t = create name in
  t.producer <- Some f;
  t

let name t = t.name

exception Empty of string

let () =
  Printexc.register_printer (function
    | Empty name ->
        Some
          (Printf.sprintf
             "Sim.Channel.Empty: channel %S read while empty and unbacked"
             name)
    | _ -> None)

(** The backing generator of a source channel, if any. *)
let producer t = t.producer

(** Replace (or install) the backing generator.  The fault layer wraps
    the original producer through this to corrupt or starve stimuli. *)
let set_producer t f = t.producer <- f

(** [get t] — consume the next sample; pulls from the producer if the
    FIFO is empty.  Raises [Empty] on an unproduced, unbacked channel. *)
let get t =
  if not (Queue.is_empty t.queue) then Queue.pop t.queue
  else
    match t.producer with
    | Some f ->
        let v = f t.produced in
        t.produced <- t.produced + 1;
        v
    | None -> raise (Empty t.name)

(** [put t v] — emit a sample into the channel. *)
let put t v =
  Queue.push v t.queue;
  if t.record then t.history <- v :: t.history

let length t = Queue.length t.queue
let is_empty t = Queue.is_empty t.queue

(** All recorded samples in emission order (requires [~record:true]). *)
let recorded t = List.rev t.history

let clear t =
  Queue.clear t.queue;
  t.history <- [];
  t.produced <- 0
