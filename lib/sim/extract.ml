(** One-call automatic flowgraph extraction (§4.1 "Analytical").

    [graph env ~step ()] executes exactly one clock cycle of [step]
    under a {!Record} session and returns the extracted
    {!Sfg.Graph.t}: the design's full dataflow, with registered signals
    as delays (feedback closed), declared types as quantizers, and
    [range()] annotations as saturations.

    Call it on a design that has already simulated a few cycles, so
    register values and coefficient constants are realistic; the extra
    recorded cycle also lands in the monitors (harmless — it is one more
    ordinary simulated cycle).

    Registered signals that are read but not written during the recorded
    cycle (a branch not taken this cycle — e.g. the non-strobed path of
    an NCO) are sealed as hold registers. *)

let graph env ?(outputs = []) ~step () =
  let r = Record.start () in
  Fun.protect ~finally:Record.stop (fun () ->
      step ();
      Env.tick env);
  List.iter
    (fun d -> Sfg.Graph.seal_delay r.Record.graph d)
    (Sfg.Graph.pending_ids r.Record.graph);
  List.iter
    (fun name ->
      let s = Env.find_exn env name in
      match Hashtbl.find_opt r.Record.drivers s.Env.id with
      | Some node -> Sfg.Graph.mark_output r.Record.graph name node
      | None ->
          (* silently dropping the output used to hand the analyses a
             graph whose "output" was whatever node happened to share a
             prefix — a typo'd name then optimizes the wrong node *)
          invalid_arg
            (Printf.sprintf
               "Extract.graph: output %S was never assigned during the \
                recorded cycle (typo, or a branch not taken this cycle?)"
               name))
    outputs;
  r.Record.graph

(** Extract and immediately analyze: the ranges of the §4.1 analytical
    technique, from nothing but the executable description. *)
let analyze env ?outputs ~step () =
  let g = graph env ?outputs ~step () in
  let ranges = Sfg.Range_analysis.run g in
  (g, ranges)
