(** Automatic signal-flowgraph extraction from a simulation step.

    The paper's third MSB technique (§4.1 "Analytical") builds a signal
    flowgraph out of the source description and analyzes the dataflow
    statically.  In the original C++ environment that required a parser;
    here the overloaded operators themselves do it: during a recording
    session every operation additionally creates an {!Sfg.Node} whose
    inputs are the provenance ids carried on the operand {!Value}s, and
    every signal assignment names (and, for typed/annotated signals,
    quantizes or saturates) the expression node.  Executing one clock
    cycle of the design's step function under {!session} therefore
    yields the complete flowgraph — ready for {!Sfg.Range_analysis},
    {!Sfg.Noise_analysis}, {!Sfg.Wordlength} or {!Vhdl.Of_sfg}.

    Semantics and limitations (all shared with any trace-based
    extraction):
    - the recorded structure is the {e executed} one: OCaml-level [if]s
      contribute only the taken branch ({!Ops.select} and {!Ops.sign}
      record both); loops are unrolled as executed;
    - registered signals become [Delay] nodes, so feedback loops close
      correctly even though the recording is a single forward pass;
    - a combinational signal read before any recorded assignment is
      represented by its current value as a [Const] (coefficients) —
      or by its declared range as an [Input] if it was assigned external
      data during the recorded step. *)

type t = {
  graph : Sfg.Graph.t;
  (* signal id -> node currently driving the signal *)
  drivers : (int, int) Hashtbl.t;
  (* signal id -> delay node (registered signals) *)
  delays : (int, int) Hashtbl.t;
  mutable fresh : int;  (** counter for synthetic op-node names *)
}

(* Domain-local: parallel sweep workers each extract (and therefore
   record) inside their own domain — a shared ref would cross-record
   their graphs into each other. *)
let current : t option Domain.DLS.key = Domain.DLS.new_key (fun () -> None)

let active () = Domain.DLS.get current

let start () =
  let t =
    {
      graph = Sfg.Graph.create ();
      drivers = Hashtbl.create 64;
      delays = Hashtbl.create 16;
      fresh = 0;
    }
  in
  Domain.DLS.set current (Some t);
  t

let stop () = Domain.DLS.set current None

let synth_name t base =
  t.fresh <- t.fresh + 1;
  Printf.sprintf "%s~%d" base t.fresh

(** Node for an operand value: its provenance if it has one, otherwise a
    constant of its fixed value (literals and detached externals). *)
let operand t (v : Value.t) =
  if Value.node v >= 0 then Value.node v
  else
    Sfg.Graph.const t.graph ~name:(synth_name t "lit") (Value.fx v)

(** Record a primitive operation over already-recorded operands. *)
let op t op_kind (args : Value.t list) =
  let inputs = List.map (operand t) args in
  Sfg.Graph.fresh t.graph
    ~name:(synth_name t (Sfg.Node.op_name op_kind))
    ~op:op_kind ~inputs

(* Is this session currently mid-recording?  Exposed for the operator
   layer: [map_node] runs [f] only when recording. *)
let map_node f v =
  match Domain.DLS.get current with
  | None -> v
  | Some t -> Value.with_node v (f t)
