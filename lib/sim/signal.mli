(** Signal objects — the paper's [sig] and [reg] (§2.1, §2.3).

    Reading ({!value}) yields the monitored [(fx, fl, range)] triple;
    writing ({!assign}, usually via {!Ops.(<--)}) performs the §2.2
    quantization cast and feeds all monitors.  {!range} and {!error} are
    the two refinement annotations (explosion- and divergence-breakers,
    §4.1/§4.2). *)

type t = Env.entry

(** The declared signal name. *)
val name : t -> string

(** Current type; [None] = floating-point. *)
val dtype : t -> Fixpt.Dtype.t option

(** Combinational, registered, or constant. *)
val kind : t -> Env.kind

(** Combinational signal ([sig]); floating-point unless [~dtype]. *)
val create : Env.t -> ?dtype:Fixpt.Dtype.t -> string -> t

(** Registered signal ([reg]): writes commit at [Env.tick]. *)
val create_reg : Env.t -> ?dtype:Fixpt.Dtype.t -> string -> t

(** Retype (the refinement flow's commit step). *)
val set_dtype : t -> Fixpt.Dtype.t -> unit

(** Back to floating-point. *)
val clear_dtype : t -> unit

(** Explicit range annotation: reads propagate exactly [[lo, hi]] —
    the §4.1 remedy for feedback-driven MSB explosion. *)
val range : t -> float -> float -> unit

(** Drop the {!range} annotation. *)
val clear_range : t -> unit

(** Overrule the produced error with U(−h, h) (σ = h/√3): breaks
    float/fixed divergence on sensitive feedback signals (§4.2). *)
val error : t -> float -> unit

(** Drop the {!error} annotation. *)
val clear_error : t -> unit

(** Read as a simulation value (counts as an access). *)
val value : t -> Value.t

(** Current values without monitoring (probes/tests). *)
val peek_fx : t -> float

(** See {!peek_fx}. *)
val peek_fl : t -> float

(** Assign (the paper's overloaded [=]): quantization cast, all
    monitors, staging for registered signals. *)
val assign : t -> Value.t -> unit

(** Initialize with a design-time constant (coefficient loading);
    counts as an assignment. *)
val init : t -> float -> unit

(* report accessors *)

val accesses : t -> int

(** Writes since reset. *)
val assignments : t -> int

(** Overflow events since reset. *)
val overflows : t -> int

(** Observed (simulated) value range. *)
val stat_range : t -> (float * float) option

(** Quasi-analytically propagated range. *)
val prop_range : t -> (float * float) option

(** The {!range} annotation, if any. *)
val explicit_range : t -> Interval.t option

(** The {!error} annotation's half-width, if any. *)
val error_injected : t -> float option

(** Consumed/produced quantization-error monitors. *)
val err_stats : t -> Stats.Err_stats.t

(** The value monitor behind {!stat_range}. *)
val range_stats : t -> Stats.Running.t

(** Finest LSB position needed to represent every assigned value exactly
    ([None] if only zeros) — the exact-signal escape hatch of the LSB
    rules. *)
val grid_lsb : t -> int option

(** The propagated range exploded (§4.1's failure mode). *)
val exploded : t -> bool

(** One report line: name, type, ranges, error stats. *)
val pp : Format.formatter -> t -> unit
