(** Simulation values — the central trick of the design environment
    (§4, Fig. 2): every expression carries the fixed-point value [fx]
    (quantization happens on assignment), the float reference [fl]
    (error monitoring), and the propagated range [iv] (quasi-analytical
    MSB estimation).  A fourth, normally dormant component, [node],
    carries graph provenance during {!Record} sessions. *)

type t = { fx : float; fl : float; iv : Interval.t; node : int }

(** Sentinel [node] value (-1): no provenance. *)
val no_node : int

(** A constant known at design time: all components agree. *)
val const : float -> t

(** An external stimulus sample (alias of {!const}). *)
val of_float : float -> t

(** Override the propagated-range component. *)
val with_range : t -> Interval.t -> t

(** Attach graph provenance (recording sessions). *)
val with_node : t -> int -> t

(** The fixed-point execution's value. *)
val fx : t -> float

(** The float reference execution's value. *)
val fl : t -> float

(** The propagated range. *)
val iv : t -> Interval.t

(** Graph provenance, {!no_node} outside recording. *)
val node : t -> int

(** Consumed error ε_c = [fl - fx] (§4.2). *)
val error : t -> float

(** {!const}[ 0.] *)
val zero : t

(** {!const}[ 1.] *)
val one : t

(** Both executions finite (explosion guard). *)
val is_finite : t -> bool

(** Prints [(fx, fl, iv)]. *)
val pp : Format.formatter -> t -> unit
