(** The event-sink interface of the observability layer.

    A sink is a flat record of callbacks invoked by the simulation hot
    path ({!Sim.Signal.assign} and its quantization cast).  The disabled
    state is the unique value {!null}: instrumentation guards every
    emission with one physical-equality test and computes event
    arguments only when a real sink is attached, so disabled tracing
    costs one pointer compare per assignment and zero allocation.

    Callbacks must not raise — an observer never changes simulation
    outcomes. *)

type t = {
  sink_name : string;  (** diagnostic label ("null", "counters", …) *)
  on_register : id:int -> name:string -> unit;
      (** a signal entered the registry; replayed for pre-existing
          signals when a sink is attached late *)
  on_assign : id:int -> time:int -> err:float -> quantized:bool -> rounded:bool -> unit;
      (** one assignment: cycle index, produced error ε_p = [fl' - fx'],
          whether a dtype cast ran, whether it rounds to nearest *)
  on_overflow : id:int -> time:int -> raw:float -> saturating:bool -> unit;
      (** the cast overflowed on [raw]; [saturating] tells clamp from
          wrap-around *)
  on_fault : id:int -> time:int -> kind:string -> unit;
      (** a fault was injected into, or collected from, the signal by
          the resilience layer ([lib/fault]); [kind] is a short stable
          tag of the fault class ("bitflip", "stim-nan",
          "force-overflow", "collect", …) *)
}

(** The disabled sink — a single toplevel value, compared physically.
    Never rebuild an equivalent record and expect it to read as
    disabled. *)
val null : t

(** [is_null t] — physical comparison against {!null}. *)
val is_null : t -> bool

(** Fan one event stream out to two sinks ([a] first). *)
val tee : t -> t -> t
