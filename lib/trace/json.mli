(** Canonical JSON literal rendering shared by every exporter (and by
    {!Sweep.Report}): one byte-stable formatting rule so determinism
    gates can compare rendered output as strings. *)

(** Shortest exact decimal that round-trips ([%.15g], falling back to
    [%.17g]); nan/±inf render as the quoted strings ["nan"], ["inf"],
    ["-inf"]. *)
val float_lit : float -> string

(** [float_lit], with [None] as [null]. *)
val float_opt : float option -> string

(** Quoted/escaped string literal. *)
val string_lit : string -> string

(** [true]/[false]. *)
val bool_lit : bool -> string
