(** The counting sink: per-signal event counters.

    Answers the questions the end-of-run reports cannot: how many
    assignments a signal saw, how its quantizations split between
    round-to-nearest and floor, how often it wrapped versus saturated,
    and the largest produced error |ε_p| together with the cycle it
    occurred in (the "when did it first go wrong" watermark).

    All state is flat mutable ints/floats — recording an event allocates
    nothing beyond the boxed float arguments of the callback itself.

    {!merge} combines counters from disjoint runs (sweep candidates,
    worker domains) commutatively and associatively: counts add, the
    error watermark takes the larger |ε| and, on an exact tie, the
    smaller cycle index.  Folding per-candidate counters in candidate-id
    order therefore renders byte-identically for any worker count —
    the discipline {!Sweep.Report} already applies to its monitor
    aggregates, extended here to event counts and enforced by the
    oracle's trace gate. *)

type sig_counters = {
  cs_name : string;
  mutable assigns : int;  (** every {!Sim.Signal.assign} *)
  mutable quantized : int;  (** assignments that ran a dtype cast *)
  mutable rounds : int;  (** casts with round-to-nearest *)
  mutable floors : int;  (** casts with floor (truncation) *)
  mutable wraps : int;  (** overflow events resolved by wrap-around *)
  mutable sats : int;  (** overflow events resolved by saturation *)
  mutable faults : int;  (** injected / collected fault events *)
  mutable err_max : float;  (** max |ε_p| watermark *)
  mutable err_max_time : int;  (** cycle index of the watermark; -1 = none *)
}

type t = {
  mutable slots : sig_counters option array;  (** indexed by signal id *)
  mutable n : int;  (** 1 + highest registered id *)
}

let create () = { slots = [||]; n = 0 }

let fresh_slot name =
  {
    cs_name = name;
    assigns = 0;
    quantized = 0;
    rounds = 0;
    floors = 0;
    wraps = 0;
    sats = 0;
    faults = 0;
    err_max = 0.0;
    err_max_time = -1;
  }

let ensure t id =
  let cap = Array.length t.slots in
  if id >= cap then begin
    let grown = Array.make (max 16 (max (id + 1) (2 * cap))) None in
    Array.blit t.slots 0 grown 0 cap;
    t.slots <- grown
  end;
  if id >= t.n then t.n <- id + 1

let on_register t ~id ~name =
  ensure t id;
  match t.slots.(id) with
  | Some _ -> ()  (* re-attach replay: keep accumulated counts *)
  | None -> t.slots.(id) <- Some (fresh_slot name)

let on_assign t ~id ~time ~err ~quantized ~rounded =
  if id < Array.length t.slots then
    match t.slots.(id) with
    | None -> ()
    | Some c ->
        c.assigns <- c.assigns + 1;
        if quantized then begin
          c.quantized <- c.quantized + 1;
          if rounded then c.rounds <- c.rounds + 1
          else c.floors <- c.floors + 1
        end;
        let a = Float.abs err in
        if a > c.err_max then begin
          c.err_max <- a;
          c.err_max_time <- time
        end

let on_overflow t ~id ~time:(_ : int) ~raw:(_ : float) ~saturating =
  if id < Array.length t.slots then
    match t.slots.(id) with
    | None -> ()
    | Some c ->
        if saturating then c.sats <- c.sats + 1 else c.wraps <- c.wraps + 1

let on_fault t ~id ~time:(_ : int) ~kind:(_ : string) =
  if id < Array.length t.slots then
    match t.slots.(id) with
    | None -> ()
    | Some c -> c.faults <- c.faults + 1

let sink t =
  {
    Sink.sink_name = "counters";
    on_register = (fun ~id ~name -> on_register t ~id ~name);
    on_assign =
      (fun ~id ~time ~err ~quantized ~rounded ->
        on_assign t ~id ~time ~err ~quantized ~rounded);
    on_overflow =
      (fun ~id ~time ~raw ~saturating -> on_overflow t ~id ~time ~raw ~saturating);
    on_fault = (fun ~id ~time ~kind -> on_fault t ~id ~time ~kind);
  }

let reset t =
  for i = 0 to t.n - 1 do
    match t.slots.(i) with
    | None -> ()
    | Some c ->
        c.assigns <- 0;
        c.quantized <- 0;
        c.rounds <- 0;
        c.floors <- 0;
        c.wraps <- 0;
        c.sats <- 0;
        c.faults <- 0;
        c.err_max <- 0.0;
        c.err_max_time <- -1
  done

let copy_slot c =
  {
    cs_name = c.cs_name;
    assigns = c.assigns;
    quantized = c.quantized;
    rounds = c.rounds;
    floors = c.floors;
    wraps = c.wraps;
    sats = c.sats;
    faults = c.faults;
    err_max = c.err_max;
    err_max_time = c.err_max_time;
  }

let copy t =
  { n = t.n; slots = Array.map (Option.map copy_slot) t.slots }

(* Merge one slot pair in place into [c] (commutative & associative:
   sums, max watermark, min cycle on an exact watermark tie). *)
let merge_into c (d : sig_counters) =
  c.assigns <- c.assigns + d.assigns;
  c.quantized <- c.quantized + d.quantized;
  c.rounds <- c.rounds + d.rounds;
  c.floors <- c.floors + d.floors;
  c.wraps <- c.wraps + d.wraps;
  c.sats <- c.sats + d.sats;
  c.faults <- c.faults + d.faults;
  if
    d.err_max > c.err_max
    || (d.err_max = c.err_max && d.err_max_time >= 0
        && (c.err_max_time < 0 || d.err_max_time < c.err_max_time))
  then begin
    c.err_max <- d.err_max;
    c.err_max_time <- d.err_max_time
  end

let merge a b =
  let n = max a.n b.n in
  let slot_of t i =
    if i < Array.length t.slots then t.slots.(i) else None
  in
  let r = create () in
  if n > 0 then ensure r (n - 1);
  for i = 0 to n - 1 do
    r.slots.(i) <-
      (match (slot_of a i, slot_of b i) with
      | None, None -> None
      | Some c, None | None, Some c -> Some (copy_slot c)
      | Some ca, Some cb ->
          if not (String.equal ca.cs_name cb.cs_name) then
            invalid_arg
              (Printf.sprintf
                 "Trace.Counters.merge: signal %d is %S on one side, %S on \
                  the other"
                 i ca.cs_name cb.cs_name);
          let c = copy_slot ca in
          merge_into c cb;
          Some c)
  done;
  r

let signals t =
  let acc = ref [] in
  for i = t.n - 1 downto 0 do
    match t.slots.(i) with
    | Some c -> acc := (i, c) :: !acc
    | None -> ()
  done;
  !acc

let total f t =
  List.fold_left (fun acc (_, c) -> acc + f c) 0 (signals t)

let total_assigns = total (fun c -> c.assigns)
let total_overflows = total (fun c -> c.wraps + c.sats)
let total_faults = total (fun c -> c.faults)

(* --- rendering --------------------------------------------------------- *)

let js_signal (id, c) =
  Printf.sprintf
    "    {\"id\": %d, \"signal\": %s, \"assigns\": %d, \"quantized\": %d, \
     \"rounds\": %d, \"floors\": %d, \"wraps\": %d, \"sats\": %d, \
     \"faults\": %d, \"err_max\": %s, \"err_max_time\": %d}"
    id (Json.string_lit c.cs_name) c.assigns c.quantized c.rounds c.floors
    c.wraps c.sats c.faults (Json.float_lit c.err_max) c.err_max_time

(** Flat counters JSON.  [meta] key/value pairs (values already rendered
    as JSON literals) lead the object; signals follow in id order, then
    the totals — everything canonical, so the trace gate compares the
    string. *)
let to_json ?(meta = []) t =
  let b = Buffer.create 1024 in
  Buffer.add_string b "{\n";
  List.iter
    (fun (k, v) ->
      Buffer.add_string b (Printf.sprintf "  %s: %s,\n" (Json.string_lit k) v))
    meta;
  Buffer.add_string b "  \"signals\": [\n";
  Buffer.add_string b
    (String.concat ",\n" (List.map js_signal (signals t)));
  Buffer.add_string b "\n  ],\n";
  Buffer.add_string b
    (Printf.sprintf
       "  \"totals\": {\"assigns\": %d, \"overflows\": %d, \"faults\": %d}\n"
       (total_assigns t) (total_overflows t) (total_faults t));
  Buffer.add_string b "}\n";
  Buffer.contents b

let pp ppf t =
  Format.fprintf ppf "%-14s %9s %9s %7s %7s %6s %6s %6s %12s %8s@." "signal"
    "assigns" "quant" "round" "floor" "wrap" "sat" "fault" "max|eps|" "at";
  List.iter
    (fun (_, c) ->
      Format.fprintf ppf "%-14s %9d %9d %7d %7d %6d %6d %6d %12.4g %8s@."
        c.cs_name c.assigns c.quantized c.rounds c.floors c.wraps c.sats
        c.faults c.err_max
        (if c.err_max_time < 0 then "-" else string_of_int c.err_max_time))
    (signals t);
  Format.fprintf ppf "total: %d assigns, %d overflows, %d faults@."
    (total_assigns t) (total_overflows t) (total_faults t)
