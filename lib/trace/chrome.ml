(** Chrome [trace_event] exporter — load the output in
    [chrome://tracing] or {{:https://ui.perfetto.dev}Perfetto}.

    Two timelines share the file, kept apart by pid:

    - pid 1 "host (wall clock)": the {!Spans} — refinement phases and
      per-candidate sweep evaluations as complete ("X") events, one tid
      lane per worker domain, timestamps rebased to the earliest span;
    - pid 2 "simulation (cycle time)": retained {!Ring} events as
      instant ("i") events whose "microsecond" timestamp is the {e cycle
      index} — deterministic simulated time, so two traces of the same
      run line up event-for-event.

    The format is the stable subset of the Trace Event Format: an object
    with a [traceEvents] array plus metadata ("M") records naming the
    processes. *)

let us_of_cycles t = float_of_int t

let buf_add_event b ~first ~name ~cat ~ph ~ts ?dur ~pid ~tid ?scope
    ?(args = []) () =
  if not !first then Buffer.add_string b ",\n";
  first := false;
  Buffer.add_string b
    (Printf.sprintf
       "  {\"name\": %s, \"cat\": %s, \"ph\": \"%s\", \"ts\": %s, "
       (Json.string_lit name) (Json.string_lit cat) ph (Json.float_lit ts));
  (match dur with
  | Some d -> Buffer.add_string b (Printf.sprintf "\"dur\": %s, " (Json.float_lit d))
  | None -> ());
  (match scope with
  | Some s -> Buffer.add_string b (Printf.sprintf "\"s\": \"%s\", " s)
  | None -> ());
  Buffer.add_string b (Printf.sprintf "\"pid\": %d, \"tid\": %d" pid tid);
  if args <> [] then
    Buffer.add_string b
      (Printf.sprintf ", \"args\": {%s}"
         (String.concat ", "
            (List.map
               (fun (k, v) -> Printf.sprintf "%s: %s" (Json.string_lit k) v)
               args)));
  Buffer.add_string b "}"

let process_meta b ~first ~pid ~name =
  buf_add_event b ~first ~name:"process_name" ~cat:"__metadata" ~ph:"M"
    ~ts:0.0 ~pid ~tid:0
    ~args:[ ("name", Json.string_lit name) ]
    ()

let ring_event b ~first ring ev =
  match ev with
  | Ring.Assign { id; time; err; quantized; rounded } ->
      buf_add_event b ~first
        ~name:(Printf.sprintf "assign %s" (Ring.name_of ring id))
        ~cat:"sim" ~ph:"i" ~ts:(us_of_cycles time) ~pid:2 ~tid:0 ~scope:"t"
        ~args:
          [
            ("err", Json.float_lit err);
            ("quantized", Json.bool_lit quantized);
            ("rounded", Json.bool_lit rounded);
          ]
        ()
  | Ring.Overflow { id; time; raw; saturating } ->
      buf_add_event b ~first
        ~name:(Printf.sprintf "overflow %s" (Ring.name_of ring id))
        ~cat:"sim" ~ph:"i" ~ts:(us_of_cycles time) ~pid:2 ~tid:0 ~scope:"t"
        ~args:
          [
            ("raw", Json.float_lit raw);
            ("saturating", Json.bool_lit saturating);
          ]
        ()
  | Ring.Fault { id; time; kind } ->
      buf_add_event b ~first
        ~name:(Printf.sprintf "fault %s" (Ring.name_of ring id))
        ~cat:"fault" ~ph:"i" ~ts:(us_of_cycles time) ~pid:2 ~tid:0 ~scope:"t"
        ~args:[ ("kind", Json.string_lit kind) ]
        ()

let to_json ?(spans = []) ?ring () =
  let b = Buffer.create 4096 in
  let first = ref true in
  Buffer.add_string b "{\"traceEvents\": [\n";
  process_meta b ~first ~pid:1 ~name:"host (wall clock)";
  if ring <> None then
    process_meta b ~first ~pid:2 ~name:"simulation (cycle time)";
  let origin =
    List.fold_left (fun m (s : Spans.span) -> Float.min m s.Spans.t0)
      Float.infinity spans
  in
  List.iter
    (fun (s : Spans.span) ->
      buf_add_event b ~first ~name:s.Spans.name ~cat:s.Spans.cat ~ph:"X"
        ~ts:((s.Spans.t0 -. origin) *. 1e6)
        ~dur:((s.Spans.t1 -. s.Spans.t0) *. 1e6)
        ~pid:1 ~tid:s.Spans.tid ~args:s.Spans.args ())
    spans;
  (match ring with
  | Some r -> List.iter (fun ev -> ring_event b ~first r ev) (Ring.events r)
  | None -> ());
  Buffer.add_string b "\n],\n";
  Buffer.add_string b
    (Printf.sprintf "\"displayTimeUnit\": \"ms\", \"dropped_events\": %d}\n"
       (match ring with Some r -> Ring.dropped r | None -> 0));
  Buffer.contents b

let write_file ~path ?spans ?ring () =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_json ?spans ?ring ()))
