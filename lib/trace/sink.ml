(** The event-sink interface of the observability layer.

    A sink is a flat record of callbacks the simulation hot path invokes
    at its monitored end points.  The contract with the hot path is:

    - {!null} is the disabled state.  The instrumentation site guards
      every emission with a single physical-equality test
      ([sink != Sink.null]) and computes the event arguments only inside
      the guarded branch, so a design with tracing disabled pays one
      pointer compare per assignment and allocates nothing — the
      property the [BENCH_sim.json] guard and the null-sink smoke test
      hold it to.
    - Callbacks must not raise: an observer never changes simulation
      outcomes.  (The oracle's trace gate additionally checks that
      attaching a counting sink leaves the rendered sweep report
      byte-identical.)
    - [on_register] replays when a sink is attached to an environment
      that already has signals, so a sink always knows the id→name map
      regardless of attachment order.

    Event vocabulary (the paper's §4 monitors, per event instead of per
    run): every {!Sim.Signal.assign} emits [on_assign] with the produced
    difference error ε_p; every quantizer overflow additionally emits
    [on_overflow], distinguishing saturation from wrap-around; every
    injected or degraded-and-collected fault (the resilience layer of
    [lib/fault]) emits [on_fault] with a short machine-stable kind tag
    ("bitflip", "stim-nan", "force-overflow", "collect", …). *)

type t = {
  sink_name : string;  (** diagnostic label ("null", "counters", …) *)
  on_register : id:int -> name:string -> unit;
      (** a signal entered the registry (or was replayed at attach) *)
  on_assign : id:int -> time:int -> err:float -> quantized:bool -> rounded:bool -> unit;
      (** one assignment: cycle index, produced error [fl' - fx'],
          whether a dtype cast ran and whether it round-to-nearests *)
  on_overflow : id:int -> time:int -> raw:float -> saturating:bool -> unit;
      (** the cast overflowed on [raw]; [saturating] tells clamp from
          wrap-around *)
  on_fault : id:int -> time:int -> kind:string -> unit;
      (** a fault was injected into, or collected from, the signal;
          [kind] is a short stable tag of the fault class *)
}

let nop2 ~id:(_ : int) ~name:(_ : string) = ()

let nop_assign ~id:(_ : int) ~time:(_ : int) ~err:(_ : float)
    ~quantized:(_ : bool) ~rounded:(_ : bool) =
  ()

let nop_overflow ~id:(_ : int) ~time:(_ : int) ~raw:(_ : float)
    ~saturating:(_ : bool) =
  ()

let nop_fault ~id:(_ : int) ~time:(_ : int) ~kind:(_ : string) = ()

(** The disabled sink.  A single toplevel value: instrumentation sites
    compare against it {e physically}, so never rebuild an equivalent
    record and expect it to read as disabled. *)
let null =
  {
    sink_name = "null";
    on_register = nop2;
    on_assign = nop_assign;
    on_overflow = nop_overflow;
    on_fault = nop_fault;
  }

let is_null t = t == null

(** Fan one event stream out to two sinks ([a] first). *)
let tee a b =
  {
    sink_name = a.sink_name ^ "+" ^ b.sink_name;
    on_register =
      (fun ~id ~name ->
        a.on_register ~id ~name;
        b.on_register ~id ~name);
    on_assign =
      (fun ~id ~time ~err ~quantized ~rounded ->
        a.on_assign ~id ~time ~err ~quantized ~rounded;
        b.on_assign ~id ~time ~err ~quantized ~rounded);
    on_overflow =
      (fun ~id ~time ~raw ~saturating ->
        a.on_overflow ~id ~time ~raw ~saturating;
        b.on_overflow ~id ~time ~raw ~saturating);
    on_fault =
      (fun ~id ~time ~kind ->
        a.on_fault ~id ~time ~kind;
        b.on_fault ~id ~time ~kind);
  }
