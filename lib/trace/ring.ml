(** The ring-buffer sink: the last [capacity] raw events.

    Where {!Counters} aggregates, the ring answers "what happened right
    before the interesting moment": it retains a bounded window of
    individual assignment/overflow events (flight-recorder style) with a
    running total of how many were dropped.  The Chrome exporter renders
    retained events as instants on the cycle-index timeline. *)

type event =
  | Assign of {
      id : int;
      time : int;  (** cycle index *)
      err : float;  (** produced error ε_p *)
      quantized : bool;
      rounded : bool;
    }
  | Overflow of {
      id : int;
      time : int;
      raw : float;  (** the out-of-range pre-cast value *)
      saturating : bool;
    }
  | Fault of {
      id : int;
      time : int;
      kind : string;  (** stable fault-class tag ("bitflip", …) *)
    }

type t = {
  buf : event option array;
  mutable total : int;  (** events ever pushed *)
  mutable names : string array;  (** id → signal name *)
  mutable n_names : int;
}

let default_capacity = 4096

let create ?(capacity = default_capacity) () =
  if capacity < 1 then invalid_arg "Trace.Ring.create: capacity < 1";
  { buf = Array.make capacity None; total = 0; names = [||]; n_names = 0 }

let capacity t = Array.length t.buf

let on_register t ~id ~name =
  let cap = Array.length t.names in
  if id >= cap then begin
    let grown = Array.make (max 16 (max (id + 1) (2 * cap))) "" in
    Array.blit t.names 0 grown 0 cap;
    t.names <- grown
  end;
  t.names.(id) <- name;
  if id >= t.n_names then t.n_names <- id + 1

let push t ev =
  t.buf.(t.total mod Array.length t.buf) <- Some ev;
  t.total <- t.total + 1

let sink t =
  {
    Sink.sink_name = "ring";
    on_register = (fun ~id ~name -> on_register t ~id ~name);
    on_assign =
      (fun ~id ~time ~err ~quantized ~rounded ->
        push t (Assign { id; time; err; quantized; rounded }));
    on_overflow =
      (fun ~id ~time ~raw ~saturating ->
        push t (Overflow { id; time; raw; saturating }));
    on_fault = (fun ~id ~time ~kind -> push t (Fault { id; time; kind }));
  }

let name_of t id = if id < t.n_names then t.names.(id) else string_of_int id

let dropped t = max 0 (t.total - Array.length t.buf)

let length t = min t.total (Array.length t.buf)

(** Retained events, oldest first. *)
let events t =
  let cap = Array.length t.buf in
  let n = length t in
  let first = t.total - n in
  List.init n (fun i ->
      match t.buf.((first + i) mod cap) with
      | Some e -> e
      | None -> assert false)
