(** Wall-clock spans: coarse-grained phase/candidate timing.

    Spans cover the places where wall-clock actually matters — the
    refinement flow's phase boundaries and the sweep pool's per-candidate
    evaluations (labelled with the worker-domain id, so a Chrome trace
    shows the pool's occupancy per lane).  They are collected in one
    process-global, mutex-protected buffer because worker domains must
    be able to record concurrently.

    Recording is gated on a global enable flag (an [Atomic]); when
    disabled — the default — instrumented code skips both the clock
    reads and the record, so spans cost nothing in normal runs.  Spans
    carry wall-clock timestamps and are therefore {e not} part of any
    determinism contract: exporters keep them out of the canonical
    counter output. *)

type span = {
  name : string;
  cat : string;  (** Chrome category ("refine", "sweep", …) *)
  tid : int;  (** lane: worker-domain index, 0 for the main flow *)
  t0 : float;  (** seconds (Unix epoch) *)
  t1 : float;
  args : (string * string) list;
      (** extra fields, values pre-rendered as JSON literals *)
}

let enabled_flag = Atomic.make false
let set_enabled b = Atomic.set enabled_flag b
let enabled () = Atomic.get enabled_flag

let now = Unix.gettimeofday

let lock = Mutex.create ()
let collected : span list ref = ref []

(** Record one finished span (no-op while disabled). *)
let record ?(tid = 0) ?(args = []) ~cat ~name ~t0 ~t1 () =
  if enabled () then begin
    Mutex.lock lock;
    collected := { name; cat; tid; t0; t1; args } :: !collected;
    Mutex.unlock lock
  end

(** Take every collected span (oldest first) and clear the buffer. *)
let drain () =
  Mutex.lock lock;
  let s = !collected in
  collected := [];
  Mutex.unlock lock;
  List.rev s

let reset () = ignore (drain () : span list)
