(** The ring-buffer sink: flight recorder over the last [capacity] raw
    assignment/overflow events, with a count of older drops. *)

type event =
  | Assign of {
      id : int;
      time : int;  (** cycle index *)
      err : float;  (** produced error ε_p *)
      quantized : bool;
      rounded : bool;
    }
  | Overflow of {
      id : int;
      time : int;
      raw : float;  (** the out-of-range pre-cast value *)
      saturating : bool;
    }
  | Fault of {
      id : int;
      time : int;
      kind : string;  (** stable fault-class tag ("bitflip", …) *)
    }

type t

(** Fresh ring ([capacity] defaults to 4096 events).  Raises
    [Invalid_argument] on a capacity below 1. *)
val create : ?capacity:int -> unit -> t

val capacity : t -> int

(** The {!Sink.t} feeding [t]. *)
val sink : t -> Sink.t

(** Signal name for an id seen via [on_register] (the id as a string
    otherwise). *)
val name_of : t -> int -> string

(** Events pushed out of the window so far. *)
val dropped : t -> int

(** Retained event count (≤ capacity). *)
val length : t -> int

(** Retained events, oldest first. *)
val events : t -> event list
