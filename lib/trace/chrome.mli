(** Chrome [trace_event] exporter — output loads in [chrome://tracing]
    or Perfetto.  Spans render as complete ("X") events on a wall-clock
    process (pid 1, one tid lane per worker domain, rebased to the
    earliest span); ring events render as instants ("i") on a
    simulated-time process (pid 2) whose timestamps are cycle indices. *)

(** Render the trace JSON. *)
val to_json : ?spans:Spans.span list -> ?ring:Ring.t -> unit -> string

(** [to_json] straight to a file. *)
val write_file : path:string -> ?spans:Spans.span list -> ?ring:Ring.t -> unit -> unit
