(** Wall-clock spans: coarse-grained phase/candidate timing, collected
    in a process-global mutex-protected buffer (worker domains record
    concurrently).  Gated on a global enable flag — disabled (the
    default), instrumented code skips both clock reads and recording.

    Spans carry wall-clock time and are {e not} part of any determinism
    contract; exporters keep them out of canonical counter output. *)

type span = {
  name : string;
  cat : string;  (** Chrome category ("refine", "sweep", …) *)
  tid : int;  (** lane: worker-domain index, 0 for the main flow *)
  t0 : float;  (** seconds (Unix epoch) *)
  t1 : float;
  args : (string * string) list;
      (** extra fields, values pre-rendered as JSON literals *)
}

(** Turn span collection on/off (process-global). *)
val set_enabled : bool -> unit

(** Current state of the enable flag — instrumentation sites check this
    before reading the clock. *)
val enabled : unit -> bool

(** Wall clock (seconds, Unix epoch). *)
val now : unit -> float

(** Record one finished span (no-op while disabled). *)
val record :
  ?tid:int ->
  ?args:(string * string) list ->
  cat:string ->
  name:string ->
  t0:float ->
  t1:float ->
  unit ->
  unit

(** Take every collected span (oldest first) and clear the buffer. *)
val drain : unit -> span list

(** Clear without reading. *)
val reset : unit -> unit
