(** Canonical JSON literal rendering shared by every exporter.

    One float formatting rule for the whole observability surface (and
    re-used by {!Sweep.Report}): shortest exact decimal that round-trips
    back to the same IEEE value, so two renderings of the same data are
    byte-identical — the property the determinism gates compare for.
    JSON has no non-finite numbers; they surface as quoted strings. *)

let float_lit v =
  if Float.is_nan v then "\"nan\""
  else if v = Float.infinity then "\"inf\""
  else if v = Float.neg_infinity then "\"-inf\""
  else
    let s = Printf.sprintf "%.15g" v in
    if float_of_string s = v then s else Printf.sprintf "%.17g" v

let float_opt = function None -> "null" | Some v -> float_lit v

(* OCaml's %S escaping is a JSON-compatible subset for the ASCII signal
   names and keys this library emits. *)
let string_lit s = Printf.sprintf "%S" s

let bool_lit b = if b then "true" else "false"
