(** The counting sink: per-signal event counters (assignments,
    round-vs-floor quantizations, wrap/saturation overflow events, and
    the max |ε_p| watermark with its cycle index).

    {!merge} is commutative and associative (sums; larger watermark;
    smaller cycle on an exact watermark tie), so per-candidate counters
    folded in candidate-id order render byte-identically for any worker
    count — the determinism contract the oracle's trace gate enforces
    on {!to_json} output. *)

type sig_counters = {
  cs_name : string;
  mutable assigns : int;  (** every {!Sim.Signal.assign} *)
  mutable quantized : int;  (** assignments that ran a dtype cast *)
  mutable rounds : int;  (** casts with round-to-nearest *)
  mutable floors : int;  (** casts with floor (truncation) *)
  mutable wraps : int;  (** overflow events resolved by wrap-around *)
  mutable sats : int;  (** overflow events resolved by saturation *)
  mutable faults : int;  (** injected / collected fault events *)
  mutable err_max : float;  (** max |ε_p| watermark *)
  mutable err_max_time : int;  (** cycle index of the watermark; -1 = none *)
}

type t

(** Fresh, empty counter set. *)
val create : unit -> t

(** The {!Sink.t} feeding [t].  Attach with {!Sim.Env.set_sink}. *)
val sink : t -> Sink.t

(** Zero every counter, keeping the registered signal layout. *)
val reset : t -> unit

(** Deep copy (snapshot of a mutable accumulator). *)
val copy : t -> t

(** Combine counters from two disjoint event streams.  Commutative and
    associative.  Raises [Invalid_argument] when both sides registered
    the same id under different names (different designs). *)
val merge : t -> t -> t

(** Registered signals in id order. *)
val signals : t -> (int * sig_counters) list

(** Σ assigns over all signals. *)
val total_assigns : t -> int

(** Σ wrap + saturation events over all signals. *)
val total_overflows : t -> int

(** Σ injected / collected fault events over all signals. *)
val total_faults : t -> int

(** Flat counters JSON with the canonical {!Json} formatting; [meta]
    key/value pairs (values pre-rendered as JSON literals) lead the
    object.  Byte-stable — determinism gates compare the string. *)
val to_json : ?meta:(string * string) list -> t -> string

(** Human-readable per-signal table. *)
val pp : Format.formatter -> t -> unit
