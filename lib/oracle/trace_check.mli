(** Trace-determinism gate: per sweep strategy, (1) counters JSON at
    [jobs=1] vs [jobs=N] must be byte-identical, and (2) attaching the
    counting sink must leave the ordinary sweep report byte-identical
    (observer neutrality).  Wired into [fxrefine check]. *)

type result = {
  strategy : string;
  jobs : int;  (** the parallel side's worker count *)
  candidates : int;
  counters_identical : bool;
      (** counters JSON at jobs=1 vs jobs=N byte-equal *)
  observer_neutral : bool;
      (** report JSON with vs without counters byte-equal *)
}

type report = { results : result list }

(** The gate's strategy list (grid, bisect, pareto). *)
val strategies : string list

(** Parallel worker count used when [?jobs] is not given: the
    recommended domain count clamped to [\[2, 4\]]. *)
val default_jobs : unit -> int

(** Run the gate ([jobs] below 2 is raised to 2 — comparing jobs=1
    against itself would prove nothing). *)
val run : ?jobs:int -> unit -> report

val passed : report -> bool
val pp_report : Format.formatter -> report -> unit
