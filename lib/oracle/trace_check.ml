(** Trace-determinism gate — the oracle for the observability layer.

    Two contracts are held here, per sweep strategy:

    - {e counter determinism}: a sweep run with [~counters:true] renders
      {!Sweep.Report.counters_json} byte-identically at [jobs=1] and
      [jobs=N] — event counting rides the same commutative-merge,
      fold-in-id-order discipline as the monitor aggregates, and any
      scheduling leak (shared counter state, wave-order dependence,
      non-commutative watermark ties) breaks the string equality;
    - {e observer neutrality}: attaching the counting sink must not
      change simulation outcomes — the ordinary report of a counted
      sequential sweep is compared byte-for-byte against the uncounted
      one. *)

type result = {
  strategy : string;
  jobs : int;  (** the parallel side's worker count *)
  candidates : int;
  counters_identical : bool;
      (** counters JSON at jobs=1 vs jobs=N byte-equal *)
  observer_neutral : bool;
      (** report JSON with vs without counters byte-equal *)
}

type report = { results : result list }

(* Same scale as the sweep gate: multi-candidate waves, fast. *)
let sweep ~jobs ~counters ~strategy =
  let workload = Sweep.Workload.fir ~n:128 () in
  let specs = workload.Sweep.Workload.specs in
  let seeds = [ 0; 1 ] in
  let generator =
    match strategy with
    | "grid" -> Sweep.Generator.grid ~specs ~f_min:4 ~f_max:7 ~seeds
    | "bisect" ->
        Sweep.Generator.bisect ~specs ~f_min:2 ~f_max:10 ~target_db:30.0
          ~seeds
    | "pareto" ->
        Sweep.Generator.pareto ~coarse:3 ~specs ~f_min:2 ~f_max:10 ~seeds ()
    | s -> invalid_arg ("Trace_check.sweep: unknown strategy " ^ s)
  in
  Sweep.Pool.run ~jobs ~counters ~workload ~generator ()

let strategies = [ "grid"; "bisect"; "pareto" ]

let default_jobs () = max 2 (min 4 (Domain.recommended_domain_count ()))

let run ?jobs () =
  let jobs = match jobs with Some j -> max 2 j | None -> default_jobs () in
  let results =
    List.map
      (fun strategy ->
        let sequential = sweep ~jobs:1 ~counters:true ~strategy in
        let parallel = sweep ~jobs ~counters:true ~strategy in
        let plain = sweep ~jobs:1 ~counters:false ~strategy in
        {
          strategy;
          jobs;
          candidates = List.length sequential.Sweep.Report.entries;
          counters_identical =
            String.equal
              (Sweep.Report.counters_json sequential)
              (Sweep.Report.counters_json parallel);
          observer_neutral =
            String.equal
              (Sweep.Report.to_json sequential)
              (Sweep.Report.to_json plain);
        })
      strategies
  in
  { results }

let passed t =
  List.for_all (fun r -> r.counters_identical && r.observer_neutral) t.results

let pp_report ppf t =
  Format.fprintf ppf "trace determinism:@.";
  List.iter
    (fun r ->
      Format.fprintf ppf
        "  %-8s %3d candidates, counters jobs 1 vs %d: %s; observer: %s@."
        r.strategy r.candidates r.jobs
        (if r.counters_identical then "identical" else "DIVERGED")
        (if r.observer_neutral then "neutral" else "PERTURBED"))
    t.results
