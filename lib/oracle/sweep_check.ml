(** Sweep-determinism gate — the oracle for the parallel exploration
    engine.

    The sweep pool's contract is scheduling independence: the same
    workload, strategy and seeds must render a byte-identical report
    whatever the worker-domain count.  This gate runs a small FIR sweep
    once at [jobs=1] (the sequential reference) and once at [jobs=N],
    and compares the canonical JSON renderings as strings — any
    divergence (evaluation order leaking into ids, non-commutative
    monitor merging, shared mutable state between worker instances)
    fails it. *)

type result = {
  strategy : string;
  jobs : int;  (** the parallel side's worker count *)
  candidates : int;  (** evaluated by each side *)
  identical : bool;  (** sequential and parallel JSON byte-equal *)
}

type report = { results : result list }

(* Small but not trivial: 2 stimulus seeds × a few fractional positions
   exercise multi-candidate waves; 128 cycles keeps the gate fast. *)
let sweep ~jobs ~strategy =
  let workload = Sweep.Workload.fir ~n:128 () in
  let specs = workload.Sweep.Workload.specs in
  let seeds = [ 0; 1 ] in
  let generator =
    match strategy with
    | "grid" -> Sweep.Generator.grid ~specs ~f_min:4 ~f_max:7 ~seeds
    | "bisect" ->
        Sweep.Generator.bisect ~specs ~f_min:2 ~f_max:10 ~target_db:30.0
          ~seeds
    | "pareto" ->
        Sweep.Generator.pareto ~coarse:3 ~specs ~f_min:2 ~f_max:10 ~seeds ()
    | s -> invalid_arg ("Sweep_check.sweep: unknown strategy " ^ s)
  in
  Sweep.Pool.run ~jobs ~workload ~generator ()

let strategies = [ "grid"; "bisect"; "pareto" ]

let default_jobs () = max 2 (min 4 (Domain.recommended_domain_count ()))

let run ?jobs () =
  let jobs = match jobs with Some j -> max 2 j | None -> default_jobs () in
  let results =
    List.map
      (fun strategy ->
        let sequential = sweep ~jobs:1 ~strategy in
        let parallel = sweep ~jobs ~strategy in
        {
          strategy;
          jobs;
          candidates = List.length sequential.Sweep.Report.entries;
          identical =
            Sweep.Report.to_json sequential = Sweep.Report.to_json parallel;
        })
      strategies
  in
  { results }

let passed t = List.for_all (fun r -> r.identical) t.results

let pp_report ppf t =
  Format.fprintf ppf "sweep determinism:@.";
  List.iter
    (fun r ->
      Format.fprintf ppf "  %-8s %3d candidates, jobs 1 vs %d: %s@."
        r.strategy r.candidates r.jobs
        (if r.identical then "identical" else "DIVERGED"))
    t.results
