(* Executable specification of the quantization cast.  Slow and plain
   on purpose: every branch is written out per mode, nothing is cached,
   and the integer wrap is Euclidean remainder rather than the
   implementation's shift-based sign extension — so the two code bases
   share as little structure as the shared semantics allow. *)

let int64_exact = 4.0e18

let code_bounds (fmt : Fixpt.Qformat.t) =
  let n = Fixpt.Qformat.n fmt in
  match Fixpt.Qformat.sign fmt with
  | Fixpt.Sign_mode.Tc ->
      (* lo = -2^(n-1) via an arithmetic shift of -1 (well-defined for
         n = 64 thanks to int64 wraparound); hi = -lo - 1 = lognot lo *)
      let lo = Int64.shift_left Int64.minus_one (n - 1) in
      (lo, Int64.lognot lo)
  | Fixpt.Sign_mode.Us ->
      if n > 63 then
        invalid_arg "Quantize_spec.code_bounds: unsigned wordlength > 63";
      (0L, Int64.sub (Int64.shift_left 1L n) 1L)

let wrap_code (fmt : Fixpt.Qformat.t) code =
  let n = Fixpt.Qformat.n fmt in
  if n > 62 then
    invalid_arg "Quantize_spec.wrap_code: exact grid is n <= 62 only";
  let span = Int64.shift_left 1L n in
  (* Euclidean remainder: r in [0, 2^n) congruent to code *)
  let r = Int64.rem code span in
  let r = if Int64.compare r 0L < 0 then Int64.add r span else r in
  match Fixpt.Qformat.sign fmt with
  | Fixpt.Sign_mode.Us -> r
  | Fixpt.Sign_mode.Tc ->
      let _, hi = code_bounds fmt in
      if Int64.compare r hi > 0 then Int64.sub r span else r

let quantize (dt : Fixpt.Dtype.t) v : Fixpt.Quantize.outcome =
  if Float.is_nan v then invalid_arg "Quantize_spec.quantize: nan";
  let v =
    if v = Float.infinity then Float.max_float
    else if v = Float.neg_infinity then -.Float.max_float
    else v
  in
  let fmt = Fixpt.Dtype.fmt dt in
  let step = Fixpt.Qformat.step fmt in
  (* LSB phase: scale onto the integer grid and round per mode *)
  let scaled = v /. step in
  let rounded =
    match Fixpt.Dtype.round dt with
    | Fixpt.Round_mode.Round -> Float.round scaled
    | Fixpt.Round_mode.Floor -> Float.floor scaled
  in
  let rounding_error = (rounded *. step) -. v in
  (* MSB phase: clamp/wrap the grid code into the format's window *)
  let n = Fixpt.Qformat.n fmt in
  let lo, hi = code_bounds fmt in
  let value, direction =
    if n <= 62 && Float.abs rounded <= int64_exact then begin
      (* exact integer grid *)
      let code = Int64.of_float rounded in
      if Int64.compare code lo >= 0 && Int64.compare code hi <= 0 then
        (Int64.to_float code *. step, None)
      else
        let dir = if Int64.compare code hi > 0 then `Above else `Below in
        let code' =
          match Fixpt.Dtype.overflow dt with
          | Fixpt.Overflow_mode.Saturate -> (
              match dir with `Above -> hi | `Below -> lo)
          | Fixpt.Overflow_mode.Wrap | Fixpt.Overflow_mode.Error ->
              wrap_code fmt code
        in
        (Int64.to_float code' *. step, Some dir)
    end
    else begin
      (* float fallback: range-explosion magnitudes and n > 62 *)
      let flo = Int64.to_float lo and fhi = Int64.to_float hi in
      if rounded >= flo && rounded <= fhi then (rounded *. step, None)
      else
        let dir = if rounded > fhi then `Above else `Below in
        let code' =
          match Fixpt.Dtype.overflow dt with
          | Fixpt.Overflow_mode.Saturate -> (
              match dir with `Above -> fhi | `Below -> flo)
          | Fixpt.Overflow_mode.Wrap | Fixpt.Overflow_mode.Error ->
              let span = fhi -. flo +. 1.0 in
              let off = Float.rem (rounded -. flo) span in
              let off = if off < 0.0 then off +. span else off in
              flo +. Float.round off
        in
        (code' *. step, Some dir)
    end
  in
  {
    Fixpt.Quantize.value;
    rounding_error;
    overflow =
      Option.map
        (fun direction -> { Fixpt.Quantize.raw = rounded *. step; direction })
        direction;
  }

let cast dt v = (quantize dt v).Fixpt.Quantize.value
