(* Differential oracle: Fixpt.Quantize vs the executable spec, over
   seeded random cases.  Comparison is bit-exact (hex-float renderings
   are used in mismatch reports so a disagreement is unambiguous). *)

type case = { dtype : Fixpt.Dtype.t; value : float }
type mismatch = { case : case; field : string; spec : string; impl : string }

type report = {
  seed : int;
  per_combo : int;
  total_cases : int;
  mismatches : mismatch list;
  mismatch_count : int;
}

let max_reported = 20
let fixed_default_seed = 421731

let default_seed () =
  match Sys.getenv_opt "FXREFINE_QCHECK_SEED" with
  | Some s -> ( match int_of_string_opt (String.trim s) with
    | Some i -> i
    | None -> fixed_default_seed)
  | None -> fixed_default_seed

let combos =
  List.concat_map
    (fun sign ->
      List.concat_map
        (fun overflow ->
          List.map
            (fun round -> (sign, overflow, round))
            [ Fixpt.Round_mode.Round; Fixpt.Round_mode.Floor ])
        [
          Fixpt.Overflow_mode.Wrap;
          Fixpt.Overflow_mode.Saturate;
          Fixpt.Overflow_mode.Error;
        ])
    [ Fixpt.Sign_mode.Tc; Fixpt.Sign_mode.Us ]

(* The wordlengths the hot path special-cases: single bit, the last
   exact-int64-grid width, and the two float-fallback-only widths. *)
let boundary_n = [| 1; 62; 63; 64 |]

let gen_n rng (sign : Fixpt.Sign_mode.t) i =
  let n =
    if i mod 2 = 0 then boundary_n.(i / 2 mod Array.length boundary_n)
    else 1 + Stats.Rng.int rng 64
  in
  (* unsigned 64-bit codes do not exist in int64: documented limit *)
  match sign with Fixpt.Sign_mode.Us -> min n 63 | Fixpt.Sign_mode.Tc -> n

let gen_value rng (dt : Fixpt.Dtype.t) i =
  let step = Fixpt.Dtype.step dt in
  let min_v, max_v = Fixpt.Dtype.range dt in
  match i mod 7 with
  | 0 ->
      (* plain in/near-range magnitudes *)
      Stats.Rng.uniform rng ~lo:(4.0 *. min_v -. step) ~hi:(4.0 *. max_v +. step)
  | 1 ->
      (* exact grid points *)
      let code = Stats.Rng.int rng 2_000_001 - 1_000_000 in
      Float.of_int code *. step
  | 2 ->
      (* half-step ties (the Round/Floor disagreement points) *)
      let code = Stats.Rng.int rng 2_000_001 - 1_000_000 in
      (Float.of_int code +. 0.5) *. step
  | 3 ->
      (* range-explosion magnitudes: float fallback *)
      let mag = 10.0 ** Float.of_int (19 + Stats.Rng.int rng 14) in
      if Stats.Rng.bool rng then mag else -.mag
  | 4 ->
      (* straddle the int64-exact window boundary *)
      let r = Stats.Rng.uniform rng ~lo:0.5 ~hi:1.5 in
      let s = if Stats.Rng.bool rng then 1.0 else -1.0 in
      s *. r *. Quantize_spec.int64_exact *. step
  | 5 ->
      (* format boundaries *)
      [| min_v; max_v; min_v -. step; max_v +. step;
         min_v +. (step /. 2.0); max_v -. (step /. 2.0) |].(Stats.Rng.int rng 6)
  | _ ->
      [| 0.0; step /. 2.0; -.(step /. 2.0); 1.0; -1.0;
         Float.infinity; Float.neg_infinity |].(Stats.Rng.int rng 7)

let hex = Printf.sprintf "%h"

let fields_of (o : Fixpt.Quantize.outcome) =
  [
    ("value", hex o.Fixpt.Quantize.value);
    ("rounding_error", hex o.Fixpt.Quantize.rounding_error);
    ( "overflow",
      match o.Fixpt.Quantize.overflow with
      | None -> "none"
      | Some ev ->
          Printf.sprintf "%s raw=%s"
            (match ev.Fixpt.Quantize.direction with
            | `Above -> "above"
            | `Below -> "below")
            (hex ev.Fixpt.Quantize.raw) );
  ]

let compare_case acc case =
  let spec = Quantize_spec.quantize case.dtype case.value in
  let impl = Fixpt.Quantize.quantize case.dtype case.value in
  List.fold_left2
    (fun acc (field, s) (_, i) ->
      if String.equal s i then acc
      else { case; field; spec = s; impl = i } :: acc)
    acc (fields_of spec) (fields_of impl)

let run ?seed ?(per_combo = 1000) () =
  let seed = match seed with Some s -> s | None -> default_seed () in
  let total = ref 0 in
  let mismatches = ref [] in
  let count = ref 0 in
  List.iteri
    (fun ci (sign, overflow, round) ->
      let rng = Stats.Rng.create ~seed:(seed + (1_000_003 * ci)) in
      for i = 0 to per_combo - 1 do
        let n = gen_n rng sign i in
        let f = -16 + Stats.Rng.int rng (n + 32) in
        let dtype = Fixpt.Dtype.make "t" ~n ~f ~sign ~overflow ~round () in
        let value = gen_value rng dtype i in
        if Float.is_nan value then ()
        else begin
          incr total;
          let before = List.length !mismatches in
          let found = compare_case [] { dtype; value } in
          count := !count + List.length found;
          if before < max_reported then
            mismatches :=
              !mismatches
              @ List.filteri (fun k _ -> before + k < max_reported) found
        end
      done)
    combos;
  {
    seed;
    per_combo;
    total_cases = !total;
    mismatches = !mismatches;
    mismatch_count = !count;
  }

let passed r = r.mismatch_count = 0

let pp_mismatch ppf m =
  Format.fprintf ppf "%s  value=%s (%h): spec %s=%s, impl %s"
    (Fixpt.Dtype.to_string m.case.dtype)
    (hex m.case.value) m.case.value m.field m.spec m.impl

let pp_report ppf r =
  Format.fprintf ppf
    "differential: %d cases (%d per mode combination, %d combinations), seed \
     %d: %d mismatch(es)"
    r.total_cases r.per_combo (List.length combos) r.seed r.mismatch_count;
  List.iter (fun m -> Format.fprintf ppf "@.  %a" pp_mismatch m) r.mismatches
