(** Fault-injection gate — the oracle for the resilience layer.

    The fault layer's contract has two halves.  {e Determinism}: a
    fault schedule is a pure hash of [(seed, plan)], so the same plan
    replays the identical fault set anywhere — including inside the
    parallel sweep, where faulted candidates must land in the same
    quarantine list whatever the worker count.  {e Degradation}: a
    faulted run under the [Collect] policy finishes and hands back what
    it saw instead of aborting.

    Four checks:
    - {e plan-roundtrip}: the canonical gate plan survives
      [to_json |> of_json] structurally intact;
    - {e schedule-replay}: two independent renderings of the
      assignment-site schedule are equal and non-empty;
    - {e faulted-sweep}: a FIR sweep under a crash-mode plan
      ([Force_raise] + forced overflows) quarantines at least one
      candidate, still evaluates others, and renders byte-identical
      JSON at [jobs=1] and [jobs=N];
    - {e collect-degrade}: the same design under [Force_collect]
      completes a full run and reports the collected fault records. *)

type result = {
  name : string;
  detail : string;  (** human-readable evidence line *)
  ok : bool;
}

type report = { results : result list }

(* The canonical gate plan.  Rates are tuned against the 128-cycle FIR
   workload so that forced overflows crash {e some but not all}
   candidates under Force_raise — the gate needs both a non-empty
   quarantine and a non-empty evaluated set to prove the report is
   partial rather than empty or unscathed. *)
let plan () =
  Fault.Plan.make ~seed:42 ~bitflip_rate:0.002 ~force_overflow_rate:0.0001
    ~on_overflow:Fault.Plan.Force_raise ()

let collect_plan () =
  Fault.Plan.make ~seed:42 ~force_overflow_rate:0.002
    ~on_overflow:Fault.Plan.Force_collect ()

let check_roundtrip () =
  let p = plan () in
  match Fault.Plan.of_json (Fault.Plan.to_json p) with
  | Ok p' ->
      {
        name = "plan-roundtrip";
        detail = Printf.sprintf "%d bytes" (String.length (Fault.Plan.to_json p));
        ok = p' = p;
      }
  | Error e ->
      { name = "plan-roundtrip"; detail = "parse error: " ^ e; ok = false }

let check_schedule () =
  let p = plan () in
  let signals = [ "x"; "v1"; "v2"; "v3"; "v4"; "v5"; "out" ] in
  let s1 = Fault.Plan.schedule p ~signals ~cycles:128 () in
  let s2 = Fault.Plan.schedule p ~signals ~cycles:128 () in
  {
    name = "schedule-replay";
    detail = Printf.sprintf "%d events" (List.length s1);
    ok = s1 = s2 && s1 <> [];
  }

let faulted_sweep ~jobs =
  let workload = Fault.Inject.workload (plan ()) (Sweep.Workload.fir ~n:128 ()) in
  let specs = workload.Sweep.Workload.specs in
  (* Fault coordinates are keyed by the stimulus seed, so a crash-mode
     plan fails whole seed classes: 4 seeds at this rate leave one
     class quarantined and three evaluated — a genuinely partial
     report. *)
  let generator =
    Sweep.Generator.grid ~specs ~f_min:4 ~f_max:7 ~seeds:[ 0; 1; 2; 3 ]
  in
  Sweep.Pool.run ~jobs ~workload ~generator ()

let check_sweep ~jobs =
  let sequential = faulted_sweep ~jobs:1 in
  let parallel = faulted_sweep ~jobs in
  let quarantined = List.length sequential.Sweep.Report.failures in
  let evaluated = List.length sequential.Sweep.Report.entries in
  let identical =
    Sweep.Report.to_json sequential = Sweep.Report.to_json parallel
  in
  {
    name = "faulted-sweep";
    detail =
      Printf.sprintf "%d evaluated, %d quarantined, jobs 1 vs %d: %s"
        evaluated quarantined jobs
        (if identical then "identical" else "DIVERGED");
    ok = identical && quarantined > 0 && evaluated > 0;
  }

let check_collect () =
  let workload = Sweep.Workload.fir ~n:128 () in
  let inst = workload.Sweep.Workload.make_instance () in
  let env = inst.Sweep.Workload.env in
  Fault.Inject.arm_env (collect_plan ()) env;
  inst.Sweep.Workload.design.Refine.Flow.reset ();
  inst.Sweep.Workload.design.Refine.Flow.run ();
  let n = Sim.Env.collected_count env in
  {
    name = "collect-degrade";
    detail = Printf.sprintf "%d faults collected, run completed" n;
    ok = n > 0;
  }

let default_jobs () = max 2 (min 4 (Domain.recommended_domain_count ()))

let run ?jobs () =
  let jobs = match jobs with Some j -> max 2 j | None -> default_jobs () in
  {
    results =
      [
        check_roundtrip ();
        check_schedule ();
        check_sweep ~jobs;
        check_collect ();
      ];
  }

let passed t = List.for_all (fun r -> r.ok) t.results

let pp_report ppf t =
  Format.fprintf ppf "fault injection:@.";
  List.iter
    (fun r ->
      Format.fprintf ppf "  %-16s %-52s %s@." r.name r.detail
        (if r.ok then "ok" else "FAIL"))
    t.results
