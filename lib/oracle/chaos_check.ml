(** Chaos gate — crash-safety under real [SIGKILL]s.

    The crash-safety contract has three legs, and this gate enforces
    each with actual kills, not simulations:

    {ol
    {- {b Sweep checkpoint/resume}: a checkpointed bisect sweep is
       forked and self-SIGKILLed at a seeded evaluation index mid-run;
       the parent then resumes from the surviving wave journal and the
       final report must be byte-identical to a never-killed run —
       crossing [jobs] between the killed writer and the resumer, so
       the journal is also shown to be parallelism-independent.  The
       killed run's cache directory must pass a full CRC scrub with
       zero corrupt entries (atomic writes leave no torn files).}
    {- {b Daemon supervision}: a journaled daemon is forked, handed a
       sweep job (fire-and-forget), SIGKILLed once its write-ahead
       intent is on disk, and restarted over the same directories.  The
       restarted daemon must drain every pending intent (re-run, not
       quarantined), answer a fresh identical job with the
       byte-identical report, then exit cleanly on a [SIGTERM] drain,
       removing its socket.}
    {- {b Cache scrub}: a populated cache directory is corrupted at
       seeded offsets (truncations and byte flips); {!Serve.Cache.scrub}
       must detect {e every} damaged entry, every subsequent lookup of
       a damaged key must be a clean miss, and undamaged entries must
       still read back verbatim.}}

    All child pids are appended to [<scratch>/pids] so [scripts/check.sh]
    can reap orphans if the gate itself is killed. *)

(* --- seeded randomness (no global [Random] state) ------------------------- *)

(* splitmix64: the kill points, delays and corruption offsets must be
   reproducible from the gate seed alone. *)
let splitmix st =
  let z = Int64.add !st 0x9E3779B97F4A7C15L in
  st := z;
  let z =
    Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L
  in
  let z =
    Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL
  in
  Int64.logxor z (Int64.shift_right_logical z 31)

let rand_below st bound =
  if bound <= 0 then invalid_arg "Chaos_check.rand_below";
  Int64.to_int
    (Int64.rem (Int64.shift_right_logical (splitmix st) 1) (Int64.of_int bound))

(* --- report types --------------------------------------------------------- *)

type sweep_leg = {
  child_jobs : int;  (** parallelism of the killed run *)
  resume_jobs : int;  (** parallelism of the resuming run *)
  kill_after : int;  (** 1-based evaluation index the kill fired at *)
  killed : bool;  (** the child really died of [SIGKILL] *)
  waves_journaled : int;  (** wave files surviving the kill *)
  replayed_waves : int;  (** waves the resume skipped *)
  replayed_candidates : int;
  torn_entries : int;  (** corrupt cache entries after the kill — must be 0 *)
  identical : bool;  (** resumed report byte-equal to the uninterrupted one *)
}

type daemon_leg = {
  intent_seen : bool;  (** a write-ahead intent appeared before the kill *)
  killed : bool;
  pending_before_restart : int;  (** intents the dead daemon left behind *)
  pending_after : int;  (** intents still pending once recovery settled *)
  quarantined : int;
  recovered_identical : bool;  (** post-recovery resubmit byte-equal *)
  drain_exit_ok : bool;  (** SIGTERM drain exited with status 0 *)
  socket_removed : bool;
}

type scrub_leg = {
  entries : int;
  corrupted : int;
  detected : int;  (** corrupt entries {!Serve.Cache.scrub} healed *)
  undetected : int;  (** corrupted keys a lookup still answered *)
  intact : bool;  (** every undamaged entry still reads back verbatim *)
}

type result = {
  sweeps : sweep_leg list;
  daemon : daemon_leg;
  scrub : scrub_leg;
}

type report = { jobs : int; seed : int; result : result }

let default_jobs () = max 2 (min 4 (Domain.recommended_domain_count ()))

(* --- scratch, pids, process plumbing -------------------------------------- *)

let scratch_counter = ref 0

(* The [fxchaos-] prefix is load-bearing: check.sh's exit trap sweeps
   [$TMPDIR/fxchaos-*] (and kills pids listed inside) if the gate dies. *)
let scratch_dir () =
  incr scratch_counter;
  let d =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "fxchaos-%d-%d" (Unix.getpid ()) !scratch_counter)
  in
  (try Unix.mkdir d 0o700 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
  d

let note_pid ~scratch pid =
  let oc =
    open_out_gen
      [ Open_append; Open_creat ]
      0o644
      (Filename.concat scratch "pids")
  in
  output_string oc (string_of_int pid ^ "\n");
  close_out oc

let rec rm_rf path =
  match Unix.lstat path with
  | { Unix.st_kind = Unix.S_DIR; _ } ->
      Array.iter
        (fun name -> rm_rf (Filename.concat path name))
        (try Sys.readdir path with Sys_error _ -> [||]);
      (try Unix.rmdir path with Unix.Unix_error _ -> ())
  | _ -> ( try Unix.unlink path with Unix.Unix_error _ -> ())
  | exception Unix.Unix_error _ -> ()

let rec wait_pid pid =
  match Unix.waitpid [] pid with
  | _, status -> status
  | exception Unix.Unix_error (Unix.EINTR, _, _) -> wait_pid pid

let count_suffix dir suffix =
  match Sys.readdir dir with
  | arr ->
      Array.fold_left
        (fun n name -> if Filename.check_suffix name suffix then n + 1 else n)
        0 arr
  | exception Sys_error _ -> 0

let poll ~deadline_s f =
  let t0 = Unix.gettimeofday () in
  let rec go () =
    if f () then true
    else if Unix.gettimeofday () -. t0 > deadline_s then false
    else begin
      Unix.sleepf 0.002;
      go ()
    end
  in
  go ()

(* --- leg 1: sweep kill/resume --------------------------------------------- *)

(* Small but multi-wave: bisect evaluates one midpoint per wave under
   every seed, so f in [2, 12] gives ~4 sequential 2-candidate waves —
   room to kill between a journaled wave and an unfinished one. *)
let f_min = 2
let f_max = 12
let target_db = 40.0
let seeds = [ 0; 1 ]

(* Arm the process to SIGKILL itself when evaluation [kill_after]
   (1-based, counted across waves and domains) starts.  [set_seed] is
   the one per-candidate call both the interpreter and the compiled
   evaluation paths make, so the counter sees every evaluation. *)
let killing_workload ~kill_after (w : Sweep.Workload.t) =
  let fired = Atomic.make 0 in
  {
    w with
    Sweep.Workload.make_instance =
      (fun () ->
        let inst = w.Sweep.Workload.make_instance () in
        {
          inst with
          Sweep.Workload.set_seed =
            (fun s ->
              if Atomic.fetch_and_add fired 1 + 1 >= kill_after then begin
                Unix.kill (Unix.getpid ()) Sys.sigkill;
                (* SIGKILL is not synchronous; make sure no further
                   evaluation sneaks in before delivery *)
                Unix.sleepf 60.0
              end;
              inst.Sweep.Workload.set_seed s);
        });
  }

let leg_key =
  Sweep.Checkpoint.sweep_key ~workload:"fir-128" ~strategy:"bisect"
    ~context:(Serve.Codec.context ())
    [
      ("f_min", string_of_int f_min);
      ("f_max", string_of_int f_max);
      ("seeds", string_of_int (List.length seeds));
      ("target_db", Printf.sprintf "%h" target_db);
    ]

(* One checkpointed bisect sweep over [dir].  Returns the canonical
   JSON plus (waves already journaled at start, waves/candidates the
   run replayed). *)
let leg_sweep ?kill_after ~fresh ~dir ~jobs () =
  let workload = Sweep.Workload.fir ~n:128 () in
  let workload =
    match kill_after with
    | None -> workload
    | Some k -> killing_workload ~kill_after:k workload
  in
  let generator =
    Sweep.Generator.bisect ~specs:workload.Sweep.Workload.specs ~f_min ~f_max
      ~target_db ~seeds
  in
  let cache = Serve.Cache.create ~dir:(Filename.concat dir "cache") () in
  let checkpoint =
    Sweep.Checkpoint.create ~resume:(not fresh)
      ~dir:(Filename.concat dir "ckpt") ~key:leg_key ()
  in
  let journaled0 = Sweep.Checkpoint.waves checkpoint in
  let report =
    Sweep.Pool.run ~jobs
      ~cache:(Serve.Codec.eval_cache cache)
      ~checkpoint ~workload ~generator ()
  in
  (Sweep.Report.to_json report, journaled0, Sweep.Checkpoint.replayed checkpoint)

let fork_killed_sweep ~scratch ~dir ~jobs ~kill_after =
  match Unix.fork () with
  | 0 ->
      (* forked child: run until the armed kill fires.  [_exit], never
         [exit] — the parent's buffers and at_exit must not run here. *)
      (try ignore (leg_sweep ~kill_after ~fresh:true ~dir ~jobs ())
       with _ -> Unix._exit 4);
      Unix._exit 3 (* the kill never fired; the leg will read this as failure *)
  | pid ->
      note_pid ~scratch pid;
      wait_pid pid = Unix.WSIGNALED Sys.sigkill

(* --- leg 2: daemon kill/recovery ------------------------------------------ *)

(* The daemon job uses the interpreter-only sync workload with enough
   stimulus seeds per wave (~0.5 s of evaluation) that the SIGKILL
   reliably lands mid-job, with the write-ahead intent still on disk —
   a short job could finish (and [mark_done] its intent) inside the
   seeded pause before the kill. *)
let daemon_seeds = 64

let daemon_params jobs =
  {
    Serve.Protocol.workload = "sync";
    strategy = "bisect";
    f_min;
    f_max;
    seeds = daemon_seeds;
    jobs;
    budget = None;
    target_db;
    timeout_s = Some 300.0;
  }

let daemon_reference () =
  let workload = Sweep.Workload.sync () in
  let generator =
    Sweep.Generator.bisect ~specs:workload.Sweep.Workload.specs ~f_min ~f_max
      ~target_db
      ~seeds:(List.init daemon_seeds Fun.id)
  in
  Sweep.Report.to_json (Sweep.Pool.run ~jobs:1 ~workload ~generator ())

(* Connect without [Client] so nothing ever reads a response: the
   daemon is about to be killed mid-job and would never send one. *)
let raw_connect ~attempts socket =
  let rec go n =
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    match Unix.connect fd (Unix.ADDR_UNIX socket) with
    | () -> fd
    | exception Unix.Unix_error ((Unix.ENOENT | Unix.ECONNREFUSED), _, _)
      when n < attempts ->
        (try Unix.close fd with Unix.Unix_error _ -> ());
        Unix.sleepf 0.02;
        go (n + 1)
    | exception exn ->
        (try Unix.close fd with Unix.Unix_error _ -> ());
        raise exn
  in
  go 1

let daemon_leg ~scratch st =
  let reference = daemon_reference () in
  let fork_daemon ~cache_dir ~journal_dir ~socket () =
    match Unix.fork () with
    | 0 ->
        (try
           Serve.Daemon.run ~cache_dir ~journal_dir ~max_conns:8 ~socket ()
         with _ -> Unix._exit 4);
        Unix._exit 0
    | pid ->
        note_pid ~scratch pid;
        pid
  in
  (* generation 1: admit a job, kill the daemon mid-flight.  The kill
     races against the job completing and [mark_done]-ing its intent;
     the job is sized to make that overwhelmingly unlikely, but under
     pathological scheduling it can still lose — retry on fresh
     directories (a warm cache would only shrink the next job). *)
  let rec gen1 attempt =
    let ddir = Filename.concat scratch (Printf.sprintf "daemon-%d" attempt) in
    (try Unix.mkdir ddir 0o700 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
    let socket = Filename.concat ddir "chaos.sock" in
    let journal_dir = Filename.concat ddir "journal" in
    let cache_dir = Filename.concat ddir "dcache" in
    let pid1 = fork_daemon ~cache_dir ~journal_dir ~socket () in
    let line =
      Serve.Protocol.request_to_line
        (Serve.Protocol.Sweep { id = "chaos"; params = daemon_params 2 })
      ^ "\n"
    in
    let fd = raw_connect ~attempts:250 socket in
    ignore (Unix.write_substring fd line 0 (String.length line));
    let intent_seen =
      poll ~deadline_s:30.0 (fun () -> count_suffix journal_dir ".intent" > 0)
    in
    (* a seeded pause varies where inside the job the kill lands *)
    Unix.sleepf (0.002 +. (0.003 *. float_of_int (rand_below st 16)));
    Unix.kill pid1 Sys.sigkill;
    let killed = wait_pid pid1 = Unix.WSIGNALED Sys.sigkill in
    (try Unix.close fd with Unix.Unix_error _ -> ());
    let pending_before_restart = count_suffix journal_dir ".intent" in
    if intent_seen && killed && pending_before_restart >= 1 then
      (socket, journal_dir, cache_dir, intent_seen, killed,
       pending_before_restart)
    else if attempt < 3 then gen1 (attempt + 1)
    else
      (socket, journal_dir, cache_dir, intent_seen, killed,
       pending_before_restart)
  in
  let socket, journal_dir, cache_dir, intent_seen, killed,
      pending_before_restart =
    gen1 1
  in
  (* generation 2: same directories; recovery must settle every intent *)
  let pid2 = fork_daemon ~cache_dir ~journal_dir ~socket () in
  let drained =
    poll ~deadline_s:240.0 (fun () -> count_suffix journal_dir ".intent" = 0)
  in
  let pending_after =
    if drained then 0 else count_suffix journal_dir ".intent"
  in
  let quarantined = count_suffix journal_dir ".quarantined" in
  (* the recovered job's result is observable: a fresh identical submit
     replays its checkpoint and must return the reference bytes *)
  let recovered_identical =
    match Serve.Client.connect_retry ~attempts:100 socket with
    | exception _ -> false
    | c ->
        Fun.protect
          ~finally:(fun () -> Serve.Client.close c)
          (fun () ->
            match
              Serve.Client.request c
                (Serve.Protocol.Sweep { id = "v"; params = daemon_params 1 })
            with
            | Serve.Protocol.Report { id = "v"; report; _ } ->
                String.equal report reference
            | _ -> false
            | exception _ -> false)
  in
  Unix.kill pid2 Sys.sigterm;
  let drain_exit_ok = wait_pid pid2 = Unix.WEXITED 0 in
  let socket_removed = not (Sys.file_exists socket) in
  {
    intent_seen;
    killed;
    pending_before_restart;
    pending_after;
    quarantined;
    recovered_identical;
    drain_exit_ok;
    socket_removed;
  }

(* --- leg 3: seeded cache corruption + scrub -------------------------------- *)

let scrub_entries = 24
let scrub_corrupted = 8

let scrub_leg ~scratch st =
  let dir = Filename.concat scratch "scrub" in
  let cache = Serve.Cache.create ~dir () in
  let key i = Digest.to_hex (Digest.string (Printf.sprintf "chaos-scrub-%d" i)) in
  (* newline-free printable payloads of varied length: a flipped header
     newline must not find a second one inside the payload *)
  let payload i =
    Printf.sprintf "metrics-%d-%s" i
      (String.init
         (8 + (i * 7 mod 64))
         (fun j -> Char.chr (33 + ((i * 13) + (j * 7)) mod 94)))
  in
  for i = 0 to scrub_entries - 1 do
    Serve.Cache.insert cache (key i) (payload i)
  done;
  (* damage AFTER the cache loaded: scrub's job is decay behind a live
     cache's back, not load-time validation *)
  let victims =
    let rec pick acc =
      if List.length acc = scrub_corrupted then acc
      else
        let i = rand_below st scrub_entries in
        if List.mem i acc then pick acc else pick (i :: acc)
    in
    List.sort compare (pick [])
  in
  List.iter
    (fun i ->
      let path = Filename.concat dir (key i ^ ".entry") in
      let raw =
        let ic = open_in_bin path in
        Fun.protect
          ~finally:(fun () -> close_in ic)
          (fun () -> really_input_string ic (in_channel_length ic))
      in
      let damaged =
        if i mod 2 = 0 then
          (* truncation — possibly to zero bytes *)
          String.sub raw 0 (rand_below st (String.length raw))
        else begin
          (* single byte-flip at a seeded offset (header or payload);
             xor with a nonzero value always changes the byte *)
          let b = Bytes.of_string raw in
          let off = rand_below st (Bytes.length b) in
          let x = 1 + rand_below st 255 in
          Bytes.set b off (Char.chr (Char.code (Bytes.get b off) lxor x));
          Bytes.to_string b
        end
      in
      let oc = open_out_bin path in
      output_string oc damaged;
      close_out oc)
    victims;
  let s = Serve.Cache.scrub cache in
  let undetected =
    List.fold_left
      (fun n i ->
        match Serve.Cache.lookup cache (key i) with
        | Some _ -> n + 1 (* damaged data served — the one forbidden outcome *)
        | None -> n)
      0 victims
  in
  let intact =
    List.for_all
      (fun i ->
        List.mem i victims
        ||
        match Serve.Cache.lookup cache (key i) with
        | Some p -> String.equal p (payload i)
        | None -> false)
      (List.init scrub_entries Fun.id)
  in
  {
    entries = scrub_entries;
    corrupted = scrub_corrupted;
    detected = s.Serve.Cache.healed;
    undetected;
    intact;
  }

(* --- the gate -------------------------------------------------------------- *)

let run ?jobs ?(seed = 0) () =
  let jobs = match jobs with Some j -> max 2 j | None -> default_jobs () in
  let st = ref (Int64.of_int ((seed * 2_147_483_629) + 0x5EED1)) in
  let scratch = scratch_dir () in
  Fun.protect ~finally:(fun () -> rm_rf scratch) @@ fun () ->
  (* uninterrupted reference: jobs=1, no checkpoint, no cache — and no
     domains spawned, so every fork below happens from a process that
     has never been multi-threaded *)
  let reference, _, _ =
    leg_sweep ~fresh:true
      ~dir:(Filename.concat scratch "ref")
      ~jobs:1 ()
  in
  (* fork-and-kill every child first (sweep legs, then the daemon
     generations); only after the last fork do the resumes spawn
     worker domains in this process *)
  let plans = [ (1, 1); (1, jobs); (jobs, 1); (jobs, jobs) ] in
  let killed_legs =
    List.mapi
      (fun i (child_jobs, resume_jobs) ->
        let dir = Filename.concat scratch (Printf.sprintf "leg%d" i) in
        (try Unix.mkdir dir 0o700
         with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
        (* late enough that at least one 2-candidate wave is journaled,
           early enough that a ~4-wave bisect is still running *)
        let kill_after = 3 + rand_below st 4 in
        let killed =
          fork_killed_sweep ~scratch ~dir ~jobs:child_jobs ~kill_after
        in
        (child_jobs, resume_jobs, dir, kill_after, killed))
      plans
  in
  let daemon = daemon_leg ~scratch st in
  let sweeps =
    List.map
      (fun (child_jobs, resume_jobs, dir, kill_after, killed) ->
        (* the killed run's cache must hold only whole entries: count
           load-time rejects plus a full scrub over the survivors *)
        let torn_entries =
          let c = Serve.Cache.create ~dir:(Filename.concat dir "cache") () in
          let loaded = (Serve.Cache.stats c).Serve.Cache.corrupt in
          loaded + (Serve.Cache.scrub c).Serve.Cache.healed
        in
        let json, waves_journaled, (replayed_waves, replayed_candidates) =
          leg_sweep ~fresh:false ~dir ~jobs:resume_jobs ()
        in
        {
          child_jobs;
          resume_jobs;
          kill_after;
          killed;
          waves_journaled;
          replayed_waves;
          replayed_candidates;
          torn_entries;
          identical = String.equal json reference;
        })
      killed_legs
  in
  let scrub = scrub_leg ~scratch st in
  { jobs; seed; result = { sweeps; daemon; scrub } }

let sweep_leg_passed (l : sweep_leg) =
  l.killed && l.waves_journaled >= 1 && l.replayed_waves >= 1
  && l.torn_entries = 0 && l.identical

let daemon_passed (d : daemon_leg) =
  d.intent_seen && d.killed
  && d.pending_before_restart >= 1
  && d.pending_after = 0 && d.quarantined = 0 && d.recovered_identical
  && d.drain_exit_ok && d.socket_removed

let scrub_passed (s : scrub_leg) =
  s.detected = s.corrupted && s.undetected = 0 && s.intact

let passed t =
  List.for_all sweep_leg_passed t.result.sweeps
  && daemon_passed t.result.daemon
  && scrub_passed t.result.scrub

let pp_report ppf t =
  let r = t.result in
  let verdict b = if b then "ok" else "FAILED" in
  Format.fprintf ppf "chaos gate (seed %d, jobs %d):@." t.seed t.jobs;
  Format.fprintf ppf "  sweep SIGKILL + resume:@.";
  List.iter
    (fun l ->
      Format.fprintf ppf
        "    killed at eval %d (jobs %d) → resumed (jobs %d): %s (%d wave(s) \
         journaled, %d replayed, %d torn cache entr%s)@."
        l.kill_after l.child_jobs l.resume_jobs
        (verdict (sweep_leg_passed l))
        l.waves_journaled l.replayed_waves l.torn_entries
        (if l.torn_entries = 1 then "y" else "ies"))
    r.sweeps;
  let d = r.daemon in
  Format.fprintf ppf "  daemon SIGKILL + restart:@.";
  Format.fprintf ppf "    intent journaled before kill: %s@."
    (verdict (d.intent_seen && d.killed && d.pending_before_restart >= 1));
  Format.fprintf ppf
    "    recovery settled every job:    %s (%d pending, %d quarantined)@."
    (verdict (d.pending_after = 0 && d.quarantined = 0))
    d.pending_after d.quarantined;
  Format.fprintf ppf "    recovered report byte-equal:   %s@."
    (verdict d.recovered_identical);
  Format.fprintf ppf "    SIGTERM drain + socket gone:   %s@."
    (verdict (d.drain_exit_ok && d.socket_removed));
  let s = r.scrub in
  Format.fprintf ppf
    "  cache scrub: %s (%d/%d corrupted entries detected, %d served \
     corrupt, clean entries %s)@."
    (verdict (scrub_passed s))
    s.detected s.corrupted s.undetected
    (if s.intact then "intact" else "DAMAGED")
