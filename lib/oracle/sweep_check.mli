(** Sweep-determinism gate — oracle for the parallel exploration
    engine.

    Runs a small FIR sweep per strategy at [jobs=1] and [jobs=N] and
    compares the canonical JSON reports byte-for-byte; any scheduling
    dependence (order-sensitive merging, shared worker state) fails
    the gate.  Wired into [fxrefine check --jobs]. *)

type result = {
  strategy : string;
  jobs : int;  (** the parallel side's worker count *)
  candidates : int;  (** evaluated by each side *)
  identical : bool;  (** sequential and parallel JSON byte-equal *)
}

type report = { results : result list }

(** The strategies the gate exercises: grid, bisect, pareto. *)
val strategies : string list

(** [max 2 (min 4 (Domain.recommended_domain_count ()))] — always ≥ 2
    so the parallel code path is exercised even on one core. *)
val default_jobs : unit -> int

(** Run the gate; [jobs] below 2 is clamped to 2. *)
val run : ?jobs:int -> unit -> report

val passed : report -> bool
val pp_report : Format.formatter -> report -> unit
