(** Metamorphic cross-checks over the standard workloads
    ({!Workloads}): relations the three monitor layers and the
    analytical range analysis must satisfy with respect to each other,
    checked after one full deterministic run of each design.

    Per workload:
    - no overflow events (the workloads are sized to be overflow-free;
      wrap events would void the bracketing relations);
    - bracketing: every signal's statistic min/max lies inside its
      simulation-propagated interval, within the workload's quantization
      tolerance;
    - analytical bracketing (workloads with an SFG twin): statistic and
      propagated ranges lie inside the analytical interval of the
      same-named graph node (nodes the analysis reports as exploded are
      skipped — explosion is the diagnosis, not a bound; a typed
      signal's propagated range is checked against the hull of the
      analytical interval and its declared type range, because the
      quasi-analytical propagation seeds unassigned typed signals from
      the type range);
    - divergence: the observed max |fx − fl| at the probe is below the
      workload's accumulated-lsb-step bound (feed-forward designs);
    - SQNR: the measured probe SQNR agrees with the uniform-noise-model
      prediction (where one exists) and with {!Refine.Flow.sqnr_db}'s
      estimate from the signal's own monitors;
    - quantize idempotence: every typed signal's committed fixed-point
      value is a fixpoint of both the implementation cast and the
      {!Quantize_spec} cast;
    - produced-error soundness: per typed signal,
      max|ε_p| ≤ max|ε_c| + k·step (k = 1/2 for round, 1 for floor);
      untyped signals must have ε_p = ε_c exactly. *)

type failure = {
  workload : string;
  invariant : string;
  subject : string;  (** signal / probe the check was about *)
  detail : string;
}

type report = { workloads : string list; checked : int; failures : failure list }

(** Build, run and check one workload. *)
val run_workload : Workloads.t -> report

(** All five standard workloads. *)
val run_all : unit -> report

val merge : report -> report -> report
val passed : report -> bool
val pp_failure : Format.formatter -> failure -> unit
val pp_report : Format.formatter -> report -> unit
