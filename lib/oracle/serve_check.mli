(** Cache-transparency gate — oracle for the content-addressed
    evaluation cache and the serve daemon.

    Runs one FIR grid sweep four ways (no cache, cold persistent
    cache, warm cache over the same directory, warm cache at
    [jobs=N]) and holds every canonical JSON report to byte equality;
    the warm run must additionally answer {e every} candidate from the
    persisted entries.  A real daemon round trip (ping → sweep → stats
    → shutdown over a Unix socket) must return that same byte-identical
    report.  Wired into [fxrefine check --serve]. *)

type result = {
  candidates : int;  (** evaluated per sweep *)
  cold_transparent : bool;  (** no-cache vs cold-cache JSON byte-equal *)
  warm_identical : bool;  (** cold vs warm JSON byte-equal *)
  jobs_identical : bool;  (** warm [jobs=1] vs warm [jobs=N] byte-equal *)
  warm_hits : int;  (** cache hits observed by the warm run *)
  warm_hit_all : bool;  (** warm run answered every candidate from cache *)
  daemon_identical : bool;  (** daemon-returned report byte-equal *)
  daemon_ok : bool;  (** ping/stats/shutdown round trip succeeded *)
}

type report = { jobs : int; result : result }

(** [max 2 (min 4 (Domain.recommended_domain_count ()))] — the
    parallel side always exercises ≥ 2 domains. *)
val default_jobs : unit -> int

(** Run the gate ([jobs] below 2 is clamped to 2); uses a scratch
    directory under the system temp dir for the cache and the daemon
    socket. *)
val run : ?jobs:int -> unit -> report

val passed : report -> bool
val pp_report : Format.formatter -> report -> unit
