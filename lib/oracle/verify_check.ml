(** Verification-oracle gate: verdicts, determinism, range-analysis
    soundness cross-check and counterexample golden files over the
    conformance workloads and the pinned biquads. *)

type result = { name : string; detail : string; ok : bool }
type report = { results : result list }

let max_bits = 10
let depth = 48
let max_states = 4096

let properties = [ Verify.Engine.No_overflow; Verify.Engine.No_limit_cycle ]

(* The verified targets: each entry rebuilds its graph from scratch, so
   a second call re-extracts deterministically (fixed seeds). *)
let targets () =
  List.map
    (fun (w : Workloads.t) ->
      ( w.Workloads.name,
        fun () ->
          let b = w.Workloads.build () in
          match b.Workloads.extract_graph with
          | Some f -> f ()
          | None -> (
              match b.Workloads.graph with
              | Some g -> g
              | None ->
                  failwith ("verify_check: no flowgraph for " ^ w.Workloads.name)
              ) ))
    Workloads.all
  @ Verify.Designs.all

let verify_target prop mk =
  Verify.Engine.verify ~max_bits ~depth ~max_states prop (mk ())

(* A refuted quantizer where the range analysis claims the input fits
   the type is a soundness bug in the ranges — the exact cross-check
   ROADMAP item 3 asks for. *)
let cross_check_ranges g node =
  let ns = Array.of_list (Sfg.Graph.nodes g) in
  let id = ref (-1) in
  Array.iteri
    (fun i (nd : Sfg.Node.t) -> if nd.Sfg.Node.name = node then id := i)
    ns;
  if !id < 0 then Error (Printf.sprintf "refuted node %s not in graph" node)
  else
    match ns.(!id).Sfg.Node.op with
    | Sfg.Node.Quantize dt ->
        let src = List.hd ns.(!id).Sfg.Node.inputs in
        let res = Sfg.Range_analysis.run g in
        let _, rng = res.Sfg.Range_analysis.ranges.(src) in
        let lo, hi = Fixpt.Dtype.range dt in
        let representable = Interval.make lo hi in
        let analysis_safe =
          match rng with
          | Interval.Empty -> true
          | Interval.Range _ -> Interval.subset rng representable
        in
        if analysis_safe then
          Error
            (Printf.sprintf
               "SOUNDNESS BUG: range analysis claims %s (input range %s fits \
                %s) but verification found a concrete overflow"
               node (Interval.to_string rng)
               (Fixpt.Dtype.to_string dt))
        else
          Ok
            (Printf.sprintf "consistent: analysis range %s exceeds %s"
               (Interval.to_string rng)
               (Fixpt.Dtype.to_string dt))
    | _ -> Error (Printf.sprintf "refuted node %s is not a quantizer" node)

let read_file path =
  if Sys.file_exists path then
    Some (In_channel.with_open_bin path In_channel.input_all)
  else None

let write_file path text =
  Out_channel.with_open_bin path (fun oc -> Out_channel.output_string oc text)

let run ?(update = false) ?dir () =
  let dir = match dir with Some d -> d | None -> Golden.default_dir () in
  (if update && not (Sys.file_exists dir) then
     try Sys.mkdir dir 0o755 with Sys_error _ -> ());
  let results = ref [] in
  let push name detail ok = results := { name; detail; ok } :: !results in
  List.iter
    (fun (wname, mk) ->
      List.iter
        (fun prop ->
          let pname = Verify.Engine.property_name prop in
          let rname = Printf.sprintf "verify/%s/%s" wname pname in
          match verify_target prop mk with
          | exception e -> push rname (Printexc.to_string e) false
          | r ->
              push rname (Format.asprintf "%a" Verify.Engine.pp_report r) true;
              (* byte-identical verdicts on a rebuilt graph *)
              (match verify_target prop mk with
              | exception e ->
                  push (rname ^ "/deterministic") (Printexc.to_string e) false
              | r2 ->
                  let j1 = Verify.Engine.report_to_json r
                  and j2 = Verify.Engine.report_to_json r2 in
                  if j1 = j2 then
                    push (rname ^ "/deterministic")
                      (Printf.sprintf "verdict JSON byte-identical (%d bytes)"
                         (String.length j1))
                      true
                  else
                    push (rname ^ "/deterministic")
                      "verdict JSON differs between runs" false);
              (match r.Verify.Engine.verdict with
              | Verify.Engine.Refuted ce ->
                  (match ce.Verify.Engine.violation with
                  | Verify.Engine.Overflow { node; _ } -> (
                      match cross_check_ranges (mk ()) node with
                      | Ok detail -> push (rname ^ "/ranges") detail true
                      | Error detail -> push (rname ^ "/ranges") detail false)
                  | Verify.Engine.Limit_cycle _ -> ());
                  (* the counterexample becomes a permanent conformance
                     input: golden stimulus file + replay from the file *)
                  let file =
                    Filename.concat dir
                      (Printf.sprintf "verify_%s_%s.stim" wname pname)
                  in
                  let text = Verify.Stim.to_string ~property:prop ce in
                  (if update then begin
                     let existed = Sys.file_exists file in
                     write_file file text;
                     push (rname ^ "/stimulus")
                       (Printf.sprintf "%s %s"
                          (if existed then "updated" else "created")
                          file)
                       true
                   end
                   else
                     match read_file file with
                     | None ->
                         push (rname ^ "/stimulus")
                           (Printf.sprintf
                              "golden stimulus %s missing (run with \
                               --update-golden)"
                              file)
                           false
                     | Some old when old = text ->
                         push (rname ^ "/stimulus")
                           (Printf.sprintf "matches %s" file) true
                     | Some _ ->
                         push (rname ^ "/stimulus")
                           (Printf.sprintf "differs from %s" file) false);
                  (match Verify.Stim.of_string text with
                  | Error e ->
                      push (rname ^ "/replay")
                        ("stimulus did not parse back: " ^ e)
                        false
                  | Ok (_, ce') -> (
                      match Verify.Engine.confirm (mk ()) ce' with
                      | Ok () ->
                          push (rname ^ "/replay")
                            (Printf.sprintf
                               "violation reproduced from serialized \
                                stimulus (%d steps), interpreter = compiled"
                               ce'.Verify.Engine.steps)
                            true
                      | Error e ->
                          push (rname ^ "/replay")
                            ("replay failed: " ^ e) false))
              | Verify.Engine.Proved | Verify.Engine.Bounded_out _ -> ()))
        properties)
    (targets ());
  { results = List.rev !results }

let passed r = List.for_all (fun x -> x.ok) r.results

let pp_report ppf r =
  List.iter
    (fun x ->
      Format.fprintf ppf "  [%s] %-42s %s@."
        (if x.ok then "ok" else "XX")
        x.name x.detail)
    r.results
