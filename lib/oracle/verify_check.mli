(** Verification-oracle gate — wires {!Verify.Engine} into the
    conformance machinery ([fxrefine check --verify]).

    Over the six conformance workloads' extracted flowgraphs plus the
    two pinned biquad exemplars ({!Verify.Designs}), for both
    properties (no-overflow, no-limit-cycle):

    - every target must produce a verdict (a raised exception fails);
    - verdicts must be {e deterministic}: verifying a freshly rebuilt
      graph renders a byte-identical JSON report;
    - every [Refuted] no-overflow verdict is cross-checked against
      {!Sfg.Range_analysis}: if the analysis claims the refuted
      quantizer's input range fits its type, the ranges are unsound and
      the gate fails loudly;
    - every counterexample is serialized as a hex-float stimulus file
      ([verify_<workload>_<property>.stim]) under the golden directory
      — compared byte-exact in check mode, (re)written in update mode —
      and then {e replayed from its serialized form} through both the
      interpreter and the compiled executor ({!Verify.Engine.confirm}),
      so refuted cases are permanent, reproducible regression inputs. *)

type result = { name : string; detail : string; ok : bool }
type report = { results : result list }

(** Search budgets the gate verifies under (small enough to keep the
    gate fast, large enough to close the biquad state spaces). *)
val max_bits : int

val depth : int
val max_states : int

(** [run ?update ?dir ()] — [update] (re)writes the golden stimulus
    files; [dir] defaults to {!Golden.default_dir}. *)
val run : ?update:bool -> ?dir:string -> unit -> report

val passed : report -> bool
val pp_report : Format.formatter -> report -> unit
