(** Throughput regression guard: re-measures the two hot-path
    simulation workloads of [bench/main.ml]'s [simbench] (LMS equalizer
    at 4000 symbols, timing recovery at 8000 samples) and compares
    against the committed baselines in [BENCH_sim.json].

    Timing is inherently machine- and load-dependent, so this guard is
    deliberately {e not} part of [dune runtest]; it runs inside
    [fxrefine check] (skippable with [--no-bench]) and fails only on a
    drastic regression — measured throughput below
    [threshold × baseline] (default 0.8×).  Every reported figure is
    the {e median of three} independently timed measurements, since
    load noise only ever slows a run down — a single preempted sample
    must not fail the gate. *)

type entry = {
  bench : string;
  samples_per_run : int;
  baseline : float;  (** the baseline file's [after] samples/sec *)
  measured : float;
  ratio : float;  (** measured / baseline *)
}

type report = {
  threshold : float;
  entries : entry list;
  note : string option;  (** set when the guard was skipped *)
}

val default_baseline_file : string

(** Extract [(name, after)] pairs from the baseline JSON (naive string
    scan; the file is machine-written by [simbench]). *)
val parse_baselines : string -> (string * float) list

(** [run ()] measures both workloads (three timed runs of
    [budget_seconds] of repetitions each, default 0.5, each after one
    warm-up run; the median is scored).  A missing or unparseable
    baseline file yields an empty, passing report with [note] set. *)
val run :
  ?baseline_file:string ->
  ?threshold:float ->
  ?budget_seconds:float ->
  unit ->
  report

val default_compiled_baseline_file : string

(** The compiled-executor throughput rows, shared with [bench/main.ml]'s
    [compilebench]: the extracted lms and timing flowgraphs on the
    flat-schedule executor at batch 1 and 64, as
    [(name, samples_per_run, lane_samples_per_sec)].  Throughput counts
    lane-samples (steps × batch) — the quantity a batched sweep
    consumes. *)
val compiled_rows :
  ?budget_seconds:float -> unit -> (string * int * float) list

(** {!run}, but for the compiled-executor rows against the committed
    [BENCH_compile.json] baselines (its [after] fields).  Same skip
    semantics on a missing/unparseable baseline file. *)
val run_compiled :
  ?baseline_file:string ->
  ?threshold:float ->
  ?budget_seconds:float ->
  unit ->
  report

val default_sync_baseline_file : string

(** Closed-synchronizer throughput rows, shared with [bench/main.ml]'s
    [syncbench]: dual-simulation samples/sec of the ML-TED 4-PAM and
    Gardner 2-PAM loops on the drifting-τ stimulus at 4000 symbols, as
    [(name, samples_per_run, samples_per_sec)]. *)
val sync_rows : ?budget_seconds:float -> unit -> (string * int * float) list

(** {!run}, but for the synchronizer rows against the committed
    [BENCH_sync.json] baselines (its [after] fields).  Same skip
    semantics on a missing/unparseable baseline file. *)
val run_sync :
  ?baseline_file:string ->
  ?threshold:float ->
  ?budget_seconds:float ->
  unit ->
  report

val default_verify_baseline_file : string

(** Verification-engine throughput rows, shared with [bench/main.ml]'s
    [verifybench]: one whole verification run per repetition (graph
    rebuild, compile, state-space search) as
    [(name, transitions_per_run, transitions_per_sec)] — the exhaustive
    biquad no-overflow proof and the bounded lms limit-cycle closure. *)
val verify_rows : ?budget_seconds:float -> unit -> (string * int * float) list

(** {!run}, but for the verification rows against the committed
    [BENCH_verify.json] baselines.  Same skip semantics on a
    missing/unparseable baseline file. *)
val run_verify :
  ?baseline_file:string ->
  ?threshold:float ->
  ?budget_seconds:float ->
  unit ->
  report

val passed : report -> bool
val pp_report : Format.formatter -> report -> unit
