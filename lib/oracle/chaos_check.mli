(** Chaos gate — the oracle for crash safety, enforced with real
    [SIGKILL]s ([fxrefine check --chaos]).

    Three legs: forked checkpointed sweeps are killed at seeded
    evaluation indices and resumed to byte-identical reports (crossing
    [jobs] between killer and resumer); a journaled daemon is killed
    mid-job and its restart must re-run every write-ahead intent and
    answer an identical resubmit with the reference bytes before
    draining cleanly on [SIGTERM]; and a cache directory corrupted at
    seeded offsets must have every damaged entry detected by
    {!Serve.Cache.scrub} — no lookup may ever serve damaged data.

    Children's pids are appended to a [pids] file inside the gate's
    [fxchaos-*] scratch directory so the caller's cleanup trap can
    reap orphans if the gate itself dies. *)

type sweep_leg = {
  child_jobs : int;  (** parallelism of the killed run *)
  resume_jobs : int;  (** parallelism of the resuming run *)
  kill_after : int;  (** 1-based evaluation index the kill fired at *)
  killed : bool;  (** the child really died of [SIGKILL] *)
  waves_journaled : int;  (** wave files surviving the kill *)
  replayed_waves : int;  (** waves the resume skipped *)
  replayed_candidates : int;
  torn_entries : int;  (** corrupt cache entries after the kill — must be 0 *)
  identical : bool;  (** resumed report byte-equal to the uninterrupted one *)
}

type daemon_leg = {
  intent_seen : bool;  (** a write-ahead intent appeared before the kill *)
  killed : bool;
  pending_before_restart : int;  (** intents the dead daemon left behind *)
  pending_after : int;  (** intents still pending once recovery settled *)
  quarantined : int;
  recovered_identical : bool;  (** post-recovery resubmit byte-equal *)
  drain_exit_ok : bool;  (** SIGTERM drain exited with status 0 *)
  socket_removed : bool;
}

type scrub_leg = {
  entries : int;
  corrupted : int;
  detected : int;  (** corrupt entries {!Serve.Cache.scrub} healed *)
  undetected : int;  (** corrupted keys a lookup still answered *)
  intact : bool;  (** every undamaged entry still reads back verbatim *)
}

type result = {
  sweeps : sweep_leg list;
  daemon : daemon_leg;
  scrub : scrub_leg;
}

type report = { jobs : int; seed : int; result : result }

(** Run the gate.  [jobs] (default: derived from the host, at least 2)
    is the parallel leg's worker count; [seed] (default 0) drives every
    kill point, delay and corruption offset.  Forks several children
    and runs two short daemon generations; wall-clock is a few
    seconds.  The caller must be effectively single-threaded (gate
    processes fork). *)
val run : ?jobs:int -> ?seed:int -> unit -> report

val passed : report -> bool
val pp_report : Format.formatter -> report -> unit
