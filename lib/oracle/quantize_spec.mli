(** Executable specification of the quantization cast (§2.2).

    A deliberately slow, obviously-correct reference for
    {!Fixpt.Quantize}: straight-line math per mode combination, no
    compiled-constant cache, no scratch cells, no memo table.  The
    production quantizer must agree with this spec bit-for-bit on every
    input — that agreement is enforced by the differential suite
    ({!Differential}, [test/conformance]) and is the standing gate for
    every future hot-path optimization.

    Semantics (same contract as the implementation):
    - NaN input raises [Invalid_argument];
    - infinities are treated as [±max_float] (they saturate, or wrap to
      an unspecified in-range code, and report an overflow event);
    - LSB rounding first ([Round] = nearest, ties away from zero;
      [Floor] = towards −∞), then MSB overflow handling;
    - grid codes within the int64-exact window ([|code| ≤ 4·10^18]) of
      formats up to 62 bits use exact integer arithmetic; wider formats
      and range-explosion magnitudes use float modular arithmetic with
      the same wrap/saturate behaviour. *)

(** Largest float magnitude trusted to round-trip through [int64]
    (shared constant of the spec and the implementation). *)
val int64_exact : float

(** Integer code range of a format: [[-2^(n-1), 2^(n-1)-1]] for two's
    complement (any [n ≤ 64]), [[0, 2^n-1]] for unsigned ([n ≤ 63];
    larger unsigned formats have no int64 code and raise
    [Invalid_argument]). *)
val code_bounds : Fixpt.Qformat.t -> int64 * int64

(** Two's-complement / modular reduction of an out-of-range code into
    the format's code window, via Euclidean remainder (the
    implementation uses shift-based sign extension; the agreement of
    the two is part of what the differential suite checks).  Exact-grid
    formats only ([n ≤ 62]). *)
val wrap_code : Fixpt.Qformat.t -> int64 -> int64

(** [quantize dt v] — the reference cast; field-for-field comparable
    with [Fixpt.Quantize.quantize dt v]. *)
val quantize : Fixpt.Dtype.t -> float -> Fixpt.Quantize.outcome

(** Just the representable value. *)
val cast : Fixpt.Dtype.t -> float -> float
