(** Compiled-executor gate — the differential oracle for {!Compile}.

    The flat-schedule executor earns its speed only if it is
    {e indistinguishable} from the reference interpreter.  This gate
    runs compiled-vs-interpreted byte-equality (every node, every step,
    every lane) over the flowgraphs of the conformance workloads (all six) —
    both the freshly {e extracted} graph and, where a block has one, the
    hand-written {e analytic} twin — at batch sizes 1, 4 and 64, with
    and without a deterministic fault plan replayed into both executors.
    A final check asserts that the sweep's compiled candidate evaluation
    ({!Refine.Eval.evaluate_compiled}) reproduces the clock-true
    interpreter's metrics bit-for-bit on the FIR sweep workload.

    Wired into [fxrefine check --compiled]. *)

type result = {
  name : string;
  detail : string;  (** human-readable evidence line *)
  ok : bool;
}

type report = { results : result list }

(** Steps each equality run simulates (per lane). *)
val steps : int

(** Run the gate over every conformance workload. *)
val run : unit -> report

val passed : report -> bool
val pp_report : Format.formatter -> report -> unit
