(** Fault-injection gate — oracle for the resilience layer.

    Checks that fault schedules replay exactly ([(seed, plan)] pure),
    that a faulted FIR sweep quarantines deterministically and renders
    byte-identical partial reports at [jobs=1] vs [jobs=N], and that
    the [Collect] overflow policy degrades gracefully (run completes,
    faults recorded).  Wired into [fxrefine check --faults]. *)

type result = {
  name : string;
  detail : string;  (** human-readable evidence line *)
  ok : bool;
}

type report = { results : result list }

(** The canonical crash-mode gate plan (seed 42, bitflips + forced
    overflows under {!Fault.Plan.Force_raise}). *)
val plan : unit -> Fault.Plan.t

(** [max 2 (min 4 (Domain.recommended_domain_count ()))] — always ≥ 2
    so the parallel quarantine path is exercised even on one core. *)
val default_jobs : unit -> int

(** Run the gate; [jobs] below 2 is clamped to 2. *)
val run : ?jobs:int -> unit -> report

val passed : report -> bool
val pp_report : Format.formatter -> report -> unit
