(** The standard conformance workloads: the six example designs the
    metamorphic invariants and golden traces run over — FIR, LMS
    equalizer, CORDIC rotator, PAM timing recovery, the closed ML-TED
    M-PAM symbol synchronizer, and the DDC front end.  Each build is fully deterministic (fixed seeds, fixed
    stimulus sizes) and fresh (its own [Sim.Env.t]), so a workload can
    be rebuilt and re-run bit-identically. *)

type built = {
  env : Sim.Env.t;
  workload : string;
  probe : string;  (** the performance/divergence probe signal *)
  run : unit -> unit;  (** one full monitored stimulus set *)
  graph : Sfg.Graph.t option;
      (** hand-written analytical twin, when the block library has one *)
  extract_graph : (unit -> Sfg.Graph.t) option;
      (** record one cycle of the design's own step body and return the
          extracted flowgraph ({!Sim.Extract.graph}) — the graphs
          {!Compile_check} runs compiled-vs-interpreted equality over.
          Calling it advances the design by one cycle (extraction is one
          more ordinary simulated cycle). *)
  divergence_bound : float option;
      (** sound bound on [|fx - fl|] at the probe, from the accumulated
          lsb steps of the quantization points on the path (feed-forward
          workloads only; feedback loops have no closed-form bound) *)
  max_divergence : unit -> float;  (** observed max [|fx - fl|] at probe *)
  sqnr : Stats.Sqnr.t;  (** accumulated (fl, fx) pairs at the probe *)
  predicted_sqnr_db : (unit -> float) option;
      (** quasi-analytical SQNR prediction from the uniform noise model
          of each quantization point (call after [run]) *)
  sqnr_tolerance_db : float;
  stat_tolerance : float;
      (** bracketing slack: comb-signal quantization can push committed
          values past the pre-quantization propagated bound by a few
          steps, amplified by downstream gain *)
  design : Refine.Flow.design option;
      (** refinement-flow view (golden refine reports); resets the
          divergence/SQNR trackers too *)
  vcd : unit -> string;
      (** VCD trace of the probe signals over the first sampled cycles
          of the last [run] *)
}

type t = { name : string; build : unit -> built }

(** [fir; lms; cordic; timing; sync; ddc]. *)
val all : t list

val find : string -> t option
