(* The six standard conformance workloads.  Everything here is
   deterministic: fixed environment seeds, fixed stimulus generator
   seeds, fixed sample counts — so a build+run is bit-reproducible and
   its trace can be snapshotted as a golden file. *)

type built = {
  env : Sim.Env.t;
  workload : string;
  probe : string;
  run : unit -> unit;
  graph : Sfg.Graph.t option;
  extract_graph : (unit -> Sfg.Graph.t) option;
  divergence_bound : float option;
  max_divergence : unit -> float;
  sqnr : Stats.Sqnr.t;
  predicted_sqnr_db : (unit -> float) option;
  sqnr_tolerance_db : float;
  stat_tolerance : float;
  design : Refine.Flow.design option;
  vcd : unit -> string;
}

type t = { name : string; build : unit -> built }

(* How many leading cycles each run samples into its VCD trace. *)
let vcd_cycles = 64

(* Per-probe trackers shared by every workload: SQNR of fixed vs float
   at the probe, the worst observed divergence, and the VCD text of the
   last run. *)
type tracker = {
  tk_sqnr : Stats.Sqnr.t;
  tk_div : float ref;
  tk_vcd : string ref;
}

let tracker () =
  { tk_sqnr = Stats.Sqnr.create (); tk_div = ref 0.0; tk_vcd = ref "" }

let reset_tracker tk =
  Stats.Sqnr.reset tk.tk_sqnr;
  tk.tk_div := 0.0

let observe tk probe =
  let fx = Sim.Signal.peek_fx probe and fl = Sim.Signal.peek_fl probe in
  Stats.Sqnr.add tk.tk_sqnr ~reference:fl ~actual:fx;
  let d = Float.abs (fl -. fx) in
  if d > !(tk.tk_div) then tk.tk_div := d

(* Run [body sample] with a fresh VCD capturing [signals]; [sample t]
   records the probes at time [t] for the first {!vcd_cycles} cycles. *)
let with_vcd tk ~name ~signals body =
  let vcd = Sim.Vcd.create () in
  List.iter (Sim.Vcd.probe vcd) signals;
  Sim.Vcd.start ~date:("fxrefine conformance: " ^ name) vcd;
  body (fun time -> if time < vcd_cycles then Sim.Vcd.sample vcd ~time);
  tk.tk_vcd := Sim.Vcd.contents vcd

(* Worst-case error amplification of a CORDIC x/y chain:
   prod (1 + 2^-i) over the iterations. *)
let cordic_amplification iters =
  let a = ref 1.0 in
  for i = 0 to iters - 1 do
    a := !a *. (1.0 +. (2.0 ** Float.of_int (-i)))
  done;
  !a

(* --- FIR: loop-free, fully analysable ---------------------------------- *)

let fir_coefs = [| 0.25; 0.5; 0.25 |]

let build_fir () =
  let name = "fir" in
  let n_samples = 600 in
  let rng = Stats.Rng.create ~seed:701 in
  let stimulus =
    Array.init n_samples (fun _ -> Stats.Rng.uniform rng ~lo:(-1.5) ~hi:1.5)
  in
  let env = Sim.Env.create ~seed:7 () in
  let sat = Fixpt.Overflow_mode.Saturate in
  let x_dtype = Fixpt.Dtype.make "T_in" ~n:8 ~f:6 ~overflow:sat () in
  let acc_dtype = Fixpt.Dtype.make "T_acc" ~n:14 ~f:10 ~overflow:sat () in
  let x = Sim.Signal.create env ~dtype:x_dtype "x" in
  Sim.Signal.range x (-1.5) 1.5;
  let fir =
    Dsp.Fir.create env ~delay_dtype:x_dtype ~acc_dtype ~coefs:fir_coefs ()
  in
  let probe = "v[3]" in
  let probe_sig = Sim.Env.find_exn env probe in
  let tk = tracker () in
  let run () =
    with_vcd tk ~name ~signals:[ x; probe_sig ] (fun sample ->
        Sim.Engine.run env ~cycles:n_samples (fun cycle ->
            let open Sim.Ops in
            x <-- Sim.Value.of_float stimulus.(cycle);
            ignore (Dsp.Fir.step fir !!x);
            observe tk probe_sig;
            sample cycle))
  in
  let graph =
    let g = Sfg.Graph.create () in
    ignore (Dsp.Fir.to_sfg g ~coefs:fir_coefs ~input_range:(-1.5, 1.5));
    g
  in
  let qx = Fixpt.Dtype.step x_dtype and qacc = Fixpt.Dtype.step acc_dtype in
  let gain = Dsp.Fir.worst_case_gain fir_coefs in
  (* input quantization through every tap, plus one accumulator cast per
     chain stage (the products land on the accumulator grid here, so the
     acc terms are pure margin) *)
  let bound = (gain *. qx /. 2.0) +. (3.0 *. qacc /. 2.0) in
  let predicted_sqnr_db () =
    let n = Stats.Sqnr.count tk.tk_sqnr in
    if n = 0 then Float.neg_infinity
    else
      let p_sig = Stats.Sqnr.signal_energy tk.tk_sqnr /. Float.of_int n in
      let p_noise =
        Array.fold_left
          (fun acc c -> acc +. (c *. c *. qx *. qx /. 12.0))
          (3.0 *. qacc *. qacc /. 12.0)
          fir_coefs
      in
      10.0 *. Float.log10 (p_sig /. p_noise)
  in
  let design =
    {
      Refine.Flow.env;
      reset =
        (fun () ->
          Sim.Env.reset env;
          reset_tracker tk);
      run;
    }
  in
  let extract_graph () =
    Sim.Extract.graph env
      ~step:(fun () ->
        let open Sim.Ops in
        x <-- Sim.Value.of_float stimulus.(0);
        ignore (Dsp.Fir.step fir !!x))
      ()
  in
  {
    env;
    workload = name;
    probe;
    run;
    graph = Some graph;
    extract_graph = Some extract_graph;
    divergence_bound = Some bound;
    max_divergence = (fun () -> !(tk.tk_div));
    sqnr = tk.tk_sqnr;
    predicted_sqnr_db = Some predicted_sqnr_db;
    sqnr_tolerance_db = 6.0;
    stat_tolerance = 0.05;
    design = Some design;
    vcd = (fun () -> !(tk.tk_vcd));
  }

(* --- LMS equalizer: the motivational example --------------------------- *)

(* Snap [v] up to the next multiple of [grid] (explicit range endpoints
   stay representable, so quantization cannot push a committed value
   outside the annotation). *)
let snap_up grid v = Float.of_int (int_of_float (ceil (v /. grid))) *. grid

let build_lms () =
  let name = "lms" in
  let n_symbols = 1200 in
  let rng = Stats.Rng.create ~seed:2024 in
  let stimulus, _sent =
    Dsp.Channel_model.isi_awgn ~noise_sigma:0.02 ~rng ~n_symbols ()
  in
  let peak = Dsp.Channel_model.peak stimulus ~n:n_symbols in
  let r = Float.max 1.5 (snap_up 0.03125 (peak +. 0.03125)) in
  let env = Sim.Env.create ~seed:11 () in
  let input = Sim.Channel.of_fun "rx" stimulus in
  let output = Sim.Channel.create "decisions" in
  let x_dtype =
    Fixpt.Dtype.make "T_input" ~n:7 ~f:5
      ~overflow:Fixpt.Overflow_mode.Saturate ()
  in
  let eq = Dsp.Lms_equalizer.create env ~x_dtype ~input ~output () in
  Sim.Signal.range (Dsp.Lms_equalizer.x eq) (-.r) r;
  let probe = "w" in
  let probe_sig = Sim.Env.find_exn env probe in
  let tk = tracker () in
  let vcd_signals =
    [
      Dsp.Lms_equalizer.x eq;
      probe_sig;
      Dsp.Lms_equalizer.b eq;
      Dsp.Lms_equalizer.y eq;
    ]
  in
  let run () =
    with_vcd tk ~name ~signals:vcd_signals (fun sample ->
        Sim.Engine.run env ~cycles:n_symbols (fun cycle ->
            Dsp.Lms_equalizer.step eq;
            observe tk probe_sig;
            sample cycle))
  in
  (* no [b_range]: the analytical twin must explode on the adaptation
     loop (b, w, ...), exactly as the paper's first iteration reports;
     the bounded feed-forward part (x, d, c, v) stays comparable *)
  let graph = Dsp.Lms_equalizer.to_sfg ~input_range:(-.r, r) () in
  let design =
    {
      Refine.Flow.env;
      reset =
        (fun () ->
          Sim.Env.reset env;
          Sim.Channel.clear input;
          Sim.Channel.clear output;
          reset_tracker tk);
      run;
    }
  in
  let extract_graph () =
    Sim.Extract.graph env ~step:(fun () -> Dsp.Lms_equalizer.step eq) ()
  in
  {
    env;
    workload = name;
    probe;
    run;
    graph = Some graph;
    extract_graph = Some extract_graph;
    divergence_bound = None (* decision-feedback loop: no closed form *);
    max_divergence = (fun () -> !(tk.tk_div));
    sqnr = tk.tk_sqnr;
    predicted_sqnr_db = None;
    sqnr_tolerance_db = 0.0;
    stat_tolerance = 0.25;
    design = Some design;
    vcd = (fun () -> !(tk.tk_vcd));
  }

(* --- CORDIC rotator: deep feed-forward --------------------------------- *)

let build_cordic () =
  let name = "cordic" in
  let iters = 10 in
  let n_rotations = 400 in
  let rng = Stats.Rng.create ~seed:3101 in
  let stimulus =
    Array.init n_rotations (fun _ ->
        let x = Stats.Rng.uniform rng ~lo:(-0.55) ~hi:0.55 in
        let y = Stats.Rng.uniform rng ~lo:(-0.55) ~hi:0.55 in
        let z = Stats.Rng.uniform rng ~lo:(-1.2) ~hi:1.2 in
        (x, y, z))
  in
  let env = Sim.Env.create ~seed:31 () in
  let cor = Dsp.Cordic.create env ~iters () in
  let dtype =
    Fixpt.Dtype.make "T_stage" ~n:12 ~f:10
      ~overflow:Fixpt.Overflow_mode.Saturate ()
  in
  List.iter (fun s -> Sim.Signal.set_dtype s dtype) (Dsp.Cordic.signals cor);
  let x_out, _, _ = Dsp.Cordic.stage_signals cor iters in
  let x_in, _, z_in = Dsp.Cordic.stage_signals cor 0 in
  let probe = Sim.Signal.name x_out in
  let tk = tracker () in
  let run () =
    with_vcd tk ~name ~signals:[ x_in; z_in; x_out ] (fun sample ->
        Sim.Engine.run env ~cycles:n_rotations (fun cycle ->
            let x, y, z = stimulus.(cycle) in
            ignore
              (Dsp.Cordic.rotate cor ~x:(Sim.Value.of_float x)
                 ~y:(Sim.Value.of_float y) ~z:(Sim.Value.of_float z));
            observe tk x_out;
            sample cycle))
  in
  let step = Fixpt.Dtype.step dtype in
  (* every stage casts x and y once (≤ step/2 each) and the per-stage
     amplification is (1 + 2^-i); decisions are fixed-point-steered, so
     the float reference follows the same rotation directions *)
  let bound =
    cordic_amplification iters *. Float.of_int (iters + 1) *. step /. 2.0
    *. 1.5
  in
  let extract_graph () =
    Sim.Extract.graph env
      ~step:(fun () ->
        let x, y, z = stimulus.(0) in
        ignore
          (Dsp.Cordic.rotate cor ~x:(Sim.Value.of_float x)
             ~y:(Sim.Value.of_float y) ~z:(Sim.Value.of_float z)))
      ()
  in
  {
    env;
    workload = name;
    probe;
    run;
    graph = None;
    extract_graph = Some extract_graph;
    divergence_bound = Some bound;
    max_divergence = (fun () -> !(tk.tk_div));
    sqnr = tk.tk_sqnr;
    predicted_sqnr_db = None;
    sqnr_tolerance_db = 0.0;
    stat_tolerance = 0.1;
    design = None;
    vcd = (fun () -> !(tk.tk_vcd));
  }

(* --- PAM timing recovery: the feedback-heavy complex example ----------- *)

let build_timing () =
  let name = "timing" in
  let n_symbols = 700 in
  let rng = Stats.Rng.create ~seed:99 in
  let stimulus, _sent, n_samples =
    Dsp.Channel_model.timing_offset_pam ~rng ~n_symbols ~tau:0.3
      ~noise_sigma:0.01 ()
  in
  let peak = Dsp.Channel_model.peak stimulus ~n:n_samples in
  let r = Float.max 1.6 (snap_up 0.00390625 (peak +. 0.00390625)) in
  let env = Sim.Env.create ~seed:5 () in
  let input = Sim.Channel.of_fun "rx" stimulus in
  let output = Sim.Channel.create "symbols" in
  let x_dtype =
    Fixpt.Dtype.make "T_input" ~n:10 ~f:8
      ~overflow:Fixpt.Overflow_mode.Saturate ()
  in
  let tr = Dsp.Timing_recovery.create env ~x_dtype ~input ~output () in
  Sim.Signal.range (Dsp.Timing_recovery.input_signal tr) (-.r) r;
  (* the paper's knowledge-based saturation choices (§6.1) *)
  Sim.Signal.range (Dsp.Nco.mu (Dsp.Timing_recovery.nco tr)) 0.0 1.0;
  Sim.Signal.range (Sim.Env.find_exn env "lf_lferr") (-0.25) 0.25;
  Sim.Signal.range (Sim.Env.find_exn env "ted_err") (-4.0) 4.0;
  Sim.Signal.range (Sim.Env.find_exn env "ip_out") (-2.0) 2.0;
  Sim.Signal.range (Sim.Env.find_exn env "out") (-2.0) 2.0;
  let probe = "out" in
  let probe_sig = Sim.Env.find_exn env probe in
  let tk = tracker () in
  let run () =
    with_vcd tk ~name
      ~signals:[ Dsp.Timing_recovery.input_signal tr; probe_sig ]
      (fun sample ->
        Sim.Engine.run env ~cycles:n_samples (fun cycle ->
            Dsp.Timing_recovery.step tr;
            observe tk probe_sig;
            sample cycle))
  in
  let design =
    {
      Refine.Flow.env;
      reset =
        (fun () ->
          Sim.Env.reset env;
          Sim.Channel.clear input;
          Sim.Channel.clear output;
          reset_tracker tk);
      run;
    }
  in
  let extract_graph () =
    Sim.Extract.graph env ~step:(fun () -> Dsp.Timing_recovery.step tr) ()
  in
  {
    env;
    workload = name;
    probe;
    run;
    graph = None;
    extract_graph = Some extract_graph;
    divergence_bound = None (* two nested feedback loops *);
    max_divergence = (fun () -> !(tk.tk_div));
    sqnr = tk.tk_sqnr;
    predicted_sqnr_db = None;
    sqnr_tolerance_db = 0.0;
    stat_tolerance = 0.25;
    design = Some design;
    vcd = (fun () -> !(tk.tk_vcd));
  }

(* --- Closed ML-TED synchronizer: drifting-tau M-PAM, decision-directed - *)

let build_sync () =
  let name = "sync" in
  let n_symbols = 700 in
  let rng = Stats.Rng.create ~seed:463 in
  let stimulus, _sent, n_samples =
    Dsp.Channel_model.drifting_tau_pam ~rng ~n_symbols ~m:4 ~tau0:0.3
      ~tau_drift:1e-4 ~phase:0.05 ~noise_sigma:0.01 ()
  in
  let peak = Dsp.Channel_model.peak stimulus ~n:n_samples in
  let r = Float.max 1.6 (snap_up 0.00390625 (peak +. 0.00390625)) in
  let env = Sim.Env.create ~seed:17 () in
  let input = Sim.Channel.of_fun "rx" stimulus in
  let output = Sim.Channel.create "symbols" in
  let x_dtype =
    Fixpt.Dtype.make "T_input" ~n:10 ~f:8
      ~overflow:Fixpt.Overflow_mode.Saturate ()
  in
  let sy =
    Dsp.Synchronizer.create env ~ted:Dsp.Synchronizer.Ml ~m:4 ~x_dtype
      ~input ~output ()
  in
  Sim.Signal.range (Dsp.Synchronizer.input_signal sy) (-.r) r;
  (* knowledge-based saturation choices, same §6.1 reasoning as the
     Gardner loop, plus the ML-TED's own signals: the derivative
     matched filter swings harder than the interpolant, and the
     decision is on the constellation by construction *)
  Sim.Signal.range (Dsp.Nco.mu (Dsp.Synchronizer.nco sy)) 0.0 1.0;
  Sim.Signal.range (Sim.Env.find_exn env "lf_lferr") (-0.25) 0.25;
  Sim.Signal.range (Sim.Env.find_exn env "mlted_err") (-4.0) 4.0;
  Sim.Signal.range (Sim.Env.find_exn env "ip_out") (-2.0) 2.0;
  Sim.Signal.range (Sim.Env.find_exn env "ip_dout") (-4.0) 4.0;
  Sim.Signal.range (Sim.Env.find_exn env "out") (-2.0) 2.0;
  let probe = "out" in
  let probe_sig = Sim.Env.find_exn env probe in
  let tk = tracker () in
  let run () =
    with_vcd tk ~name
      ~signals:[ Dsp.Synchronizer.input_signal sy; probe_sig ]
      (fun sample ->
        Sim.Engine.run env ~cycles:n_samples (fun cycle ->
            Dsp.Synchronizer.step sy;
            observe tk probe_sig;
            sample cycle))
  in
  let design =
    {
      Refine.Flow.env;
      reset =
        (fun () ->
          Sim.Env.reset env;
          Sim.Channel.clear input;
          Sim.Channel.clear output;
          reset_tracker tk);
      run;
    }
  in
  let extract_graph () =
    Sim.Extract.graph env ~step:(fun () -> Dsp.Synchronizer.step sy) ()
  in
  {
    env;
    workload = name;
    probe;
    run;
    graph = None;
    extract_graph = Some extract_graph;
    divergence_bound = None (* nested feedback loops, like timing *);
    max_divergence = (fun () -> !(tk.tk_div));
    sqnr = tk.tk_sqnr;
    predicted_sqnr_db = None;
    sqnr_tolerance_db = 0.0;
    stat_tolerance = 0.25;
    design = Some design;
    vcd = (fun () -> !(tk.tk_vcd));
  }

(* --- DDC: NCO + CORDIC mixer + CIC decimators -------------------------- *)

let build_ddc () =
  let name = "ddc" in
  let n_samples = 1200 in
  let rate = 8 and order = 2 in
  let rng = Stats.Rng.create ~seed:1301 in
  let stimulus =
    Array.init n_samples (fun _ -> Stats.Rng.uniform rng ~lo:(-0.9) ~hi:0.9)
  in
  let env = Sim.Env.create ~seed:13 () in
  let x_dtype =
    Fixpt.Dtype.make "T_if" ~n:10 ~f:8 ~overflow:Fixpt.Overflow_mode.Saturate
      ()
  in
  let x = Sim.Signal.create env ~dtype:x_dtype "x" in
  Sim.Signal.range x (-1.0) 1.0;
  let ddc = Dsp.Ddc.create env ~fcw:0.21 ~rate ~order () in
  let i_out, q_out = Dsp.Ddc.outputs ddc in
  let probe = Sim.Signal.name i_out in
  let tk = tracker () in
  let run () =
    with_vcd tk ~name
      ~signals:[ Dsp.Ddc.phase ddc; i_out; q_out ]
      (fun sample ->
        Sim.Engine.run env ~cycles:n_samples (fun cycle ->
            let open Sim.Ops in
            x <-- Sim.Value.of_float stimulus.(cycle);
            (match Dsp.Ddc.step ddc !!x with
            | Some _ -> observe tk i_out
            | None -> ());
            sample cycle))
  in
  let qx = Fixpt.Dtype.step x_dtype in
  (* the only cast is the input: its ≤ qx/2 error is scaled by 1/K,
     amplified by the CORDIC chain, then summed by the CIC whose l1
     gain is rate^order (all-positive impulse response) *)
  let bound =
    qx /. 2.0
    /. Dsp.Cordic.gain Dsp.Ddc.cordic_iters
    *. cordic_amplification Dsp.Ddc.cordic_iters
    *. (Float.of_int rate ** Float.of_int order)
    *. 1.25
  in
  let extract_graph () =
    Sim.Extract.graph env
      ~step:(fun () ->
        let open Sim.Ops in
        x <-- Sim.Value.of_float stimulus.(0);
        ignore (Dsp.Ddc.step ddc !!x))
      ()
  in
  {
    env;
    workload = name;
    probe;
    run;
    graph = None;
    extract_graph = Some extract_graph;
    divergence_bound = Some bound;
    max_divergence = (fun () -> !(tk.tk_div));
    sqnr = tk.tk_sqnr;
    predicted_sqnr_db = None;
    sqnr_tolerance_db = 0.0;
    stat_tolerance = 0.75;
    design = None;
    vcd = (fun () -> !(tk.tk_vcd));
  }

let all =
  [
    { name = "fir"; build = build_fir };
    { name = "lms"; build = build_lms };
    { name = "cordic"; build = build_cordic };
    { name = "timing"; build = build_timing };
    { name = "sync"; build = build_sync };
    { name = "ddc"; build = build_ddc };
  ]

let find name = List.find_opt (fun w -> String.equal w.name name) all
