(* Golden traces: deterministic textual snapshots of workload monitor
   state and refinement outcomes, compared byte-for-byte. *)

type outcome = Match | Created | Updated | Missing | Differ of string
type entry = { file : string; outcome : outcome }
type result = { dir : string; entries : entry list }

let default_dir () =
  match Sys.getenv_opt "FXREFINE_GOLDEN_DIR" with
  | Some d -> d
  | None ->
      if Sys.file_exists "test/conformance/golden" then
        "test/conformance/golden"
      else "golden"

let hex = Printf.sprintf "%h"

let pair_str = function
  | None -> "-"
  | Some (lo, hi) -> Printf.sprintf "[%h, %h]" lo hi

(* --- monitor-state trace ----------------------------------------------- *)

let signal_line buf s =
  let err = Sim.Signal.err_stats s in
  Buffer.add_string buf
    (Printf.sprintf
       "signal %-12s %-24s assigns=%-6d overflows=%-3d stat=%s prop=%s \
        err_consumed_max=%s err_produced_max=%s\n"
       (Sim.Signal.name s)
       (match Sim.Signal.dtype s with
       | Some dt -> Fixpt.Dtype.to_string dt
       | None -> "<float>")
       (Sim.Signal.assignments s)
       (Sim.Signal.overflows s)
       (pair_str (Sim.Signal.stat_range s))
       (pair_str (Sim.Signal.prop_range s))
       (hex (Stats.Running.max_abs (Stats.Err_stats.consumed err)))
       (hex (Stats.Running.max_abs (Stats.Err_stats.produced err))))

let trace_of_built (b : Workloads.built) =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf
    (Printf.sprintf "fxrefine golden trace: workload %s\n" b.Workloads.workload);
  Buffer.add_string buf (Printf.sprintf "probe %s\n" b.Workloads.probe);
  let sqnr = b.Workloads.sqnr in
  Buffer.add_string buf
    (Printf.sprintf "sqnr samples=%d db=%s\n" (Stats.Sqnr.count sqnr)
       (hex (Stats.Sqnr.db sqnr)));
  Buffer.add_string buf
    (Printf.sprintf "max_divergence %s\n" (hex (b.Workloads.max_divergence ())));
  Buffer.add_string buf
    (Printf.sprintf "vcd_md5 %s\n"
       (Digest.to_hex (Digest.string (b.Workloads.vcd ()))));
  List.iter (fun s -> signal_line buf s) (Sim.Env.signals b.Workloads.env);
  Buffer.contents buf

(* --- refinement report ------------------------------------------------- *)

let refine_report (w : Workloads.t) =
  let b = w.Workloads.build () in
  match b.Workloads.design with
  | None -> None
  | Some design ->
      let r =
        Refine.Flow.refine ~sqnr_signal:b.Workloads.probe design
      in
      let buf = Buffer.create 4096 in
      let ppf = Format.formatter_of_buffer buf in
      Format.fprintf ppf "fxrefine golden refine report: workload %s@."
        w.Workloads.name;
      Format.fprintf ppf
        "iterations msb=%d lsb=%d simulation_runs=%d@."
        r.Refine.Flow.msb_iterations r.Refine.Flow.lsb_iterations
        r.Refine.Flow.simulation_runs;
      List.iter
        (fun it -> Format.fprintf ppf "%a@." Refine.Flow.pp_iteration it)
        r.Refine.Flow.iterations;
      (match r.Refine.Flow.sqnr_before_db with
      | Some v -> Format.fprintf ppf "sqnr_before_db %s@." (hex v)
      | None -> ());
      (match r.Refine.Flow.sqnr_after_db with
      | Some v -> Format.fprintf ppf "sqnr_after_db %s@." (hex v)
      | None -> ());
      List.iter
        (fun (name, dt) ->
          Format.fprintf ppf "type %-12s %s@." name (Fixpt.Dtype.to_string dt))
        r.Refine.Flow.types;
      Format.fprintf ppf "%s@."
        (Refine.Report.summary design.Refine.Flow.env r.Refine.Flow.msb_decisions
           r.Refine.Flow.lsb_decisions);
      Format.pp_print_flush ppf ();
      Some (Buffer.contents buf)

(* --- VHDL golden files -------------------------------------------------- *)

(* A small 3-tap FIR flowgraph; coefficients and ranges are exact binary
   fractions so the emitted text is libm-independent. *)
let vhdl_fir_graph () =
  let g = Sfg.Graph.create () in
  let _, y =
    Dsp.Fir.to_sfg g ~coefs:[| 0.25; 0.5; 0.25 |] ~input_range:(-1.0, 1.0)
  in
  Sfg.Graph.mark_output g "y" y;
  g

let vhdl_formats = Vhdl.Of_sfg.uniform_formats ~n:12 ~f:8

let vhdl_wrap () =
  Vhdl.Emit.entity
    (Vhdl.Of_sfg.entity ~name:"fir_wrap" ~formats:vhdl_formats
       (vhdl_fir_graph ()))

(* Saturation on the accumulator chain (v[_]) — the nodes the MSB rules
   would mark in a real refinement. *)
let vhdl_sat () =
  Vhdl.Emit.entity
    (Vhdl.Of_sfg.entity
       ~saturating:(fun n -> String.length n > 0 && n.[0] = 'v')
       ~name:"fir_sat" ~formats:vhdl_formats (vhdl_fir_graph ()))

(* Self-checking testbench: the same filter as a monitored Sim block,
   driven with a deterministic stimulus; the captured bit-true codes
   become the testbench's golden vectors. *)
let vhdl_testbench () =
  let env = Sim.Env.create () in
  let dt =
    Fixpt.Dtype.make "T_tb" ~n:10 ~f:8
      ~overflow:Fixpt.Overflow_mode.Saturate ()
  in
  let x = Sim.Signal.create env ~dtype:dt "x" in
  Sim.Signal.range x (-1.0) 1.0;
  let fir =
    Dsp.Fir.create env ~coef_dtype:dt ~delay_dtype:dt ~acc_dtype:dt
      ~coefs:[| 0.25; 0.5; 0.25 |] ()
  in
  let out = Sim.Signal.create env ~dtype:dt "out" in
  let rng = Stats.Rng.create ~seed:97 in
  let step () =
    let open Sim.Ops in
    x <-- Sim.Value.of_float (Stats.Rng.uniform rng ~lo:(-0.9) ~hi:0.9);
    out <-- Dsp.Fir.step fir !!x;
    Sim.Env.tick env
  in
  let fmt = Fixpt.Dtype.fmt dt in
  let vectors =
    Vhdl.Testbench.capture
      ~formats:(fun _ -> fmt)
      ~inputs:[ ("x", fun () -> Sim.Signal.peek_fx x) ]
      ~outputs:[ ("y", fun () -> Sim.Signal.peek_fx out) ]
      16
      (fun _ -> step ())
  in
  let formats = Vhdl.Of_sfg.uniform_formats ~n:10 ~f:8 in
  let dut = Vhdl.Of_sfg.entity ~name:"fir_dut" ~formats (vhdl_fir_graph ()) in
  Vhdl.Testbench.emit ~latency:1 ~dut ~formats vectors

(* The synchronizer's refined feedback slice — ML-TED error into the PI
   loop filter, the saturating-integrator outcome of the §6.1 flow —
   extracted as a flowgraph.  Gains are exact binary fractions
   (kp = 1/64, ki = 1/2048) and the sliced decision folds to an exact
   constant, so the emitted text is platform-stable (no divider, no
   libm). *)
let vhdl_sync_loop () =
  let env = Sim.Env.create () in
  let dec = Sim.Signal.create env "dec" in
  Sim.Signal.range dec (-1.0) 1.0;
  let ydot = Sim.Signal.create env "ydot" in
  Sim.Signal.range ydot (-4.0) 4.0;
  let ml = Dsp.Ml_ted.create env () in
  let lf = Dsp.Loop_filter.create env ~kp:0.015625 ~ki:0.00048828125 () in
  let step () =
    let open Sim.Ops in
    dec <-- Sim.Value.of_float 1.0;
    ydot <-- Sim.Value.of_float 0.5;
    let e = Dsp.Ml_ted.detect ml ~y:!!dec ~ydot:!!ydot in
    ignore (Dsp.Loop_filter.step lf e)
  in
  let g = Sim.Extract.graph env ~outputs:[ "lf_lferr" ] ~step () in
  Vhdl.Emit.entity
    (Vhdl.Of_sfg.entity
       ~saturating:(fun n -> String.equal n "lf_integ")
       ~name:"sync_loop" ~formats:vhdl_formats g)

let vhdl_cases () =
  [
    ("fir_wrap.vhd", vhdl_wrap ());
    ("fir_sat.vhd", vhdl_sat ());
    ("fir_tb.vhd", vhdl_testbench ());
    ("sync_loop.vhd", vhdl_sync_loop ());
  ]

(* --- file plumbing ------------------------------------------------------ *)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let write_file path contents =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc contents)

let rec ensure_dir dir =
  if dir = "" || dir = "." || dir = "/" || Sys.file_exists dir then ()
  else begin
    ensure_dir (Filename.dirname dir);
    try Sys.mkdir dir 0o755 with Sys_error _ -> ()
  end

(* first differing line, for a readable mismatch message *)
let first_diff expected actual =
  let e = String.split_on_char '\n' expected
  and a = String.split_on_char '\n' actual in
  let rec go i = function
    | [], [] -> "contents differ"
    | x :: _, [] ->
        Printf.sprintf "line %d: golden has %S, trace ends" i x
    | [], y :: _ ->
        Printf.sprintf "line %d: golden ends, trace has %S" i y
    | x :: xs, y :: ys ->
        if String.equal x y then go (i + 1) (xs, ys)
        else Printf.sprintf "line %d: golden %S vs trace %S" i x y
  in
  go 1 (e, a)

let compare_one ~update ~dir file contents =
  let path = Filename.concat dir file in
  let outcome =
    if update then begin
      ensure_dir dir;
      if not (Sys.file_exists path) then begin
        write_file path contents;
        Created
      end
      else if String.equal (read_file path) contents then Match
      else begin
        write_file path contents;
        Updated
      end
    end
    else if not (Sys.file_exists path) then Missing
    else
      let expected = read_file path in
      if String.equal expected contents then Match
      else Differ (first_diff expected contents)
  in
  { file; outcome }

(* --- driver ------------------------------------------------------------ *)

let check ?(update = false) ?dir () =
  let dir = match dir with Some d -> d | None -> default_dir () in
  let entries =
    List.concat_map
      (fun (w : Workloads.t) ->
        let b = w.Workloads.build () in
        b.Workloads.run ();
        let trace =
          compare_one ~update ~dir
            (w.Workloads.name ^ ".trace")
            (trace_of_built b)
        in
        match refine_report w with
        | None -> [ trace ]
        | Some report ->
            [
              trace;
              compare_one ~update ~dir (w.Workloads.name ^ ".refine") report;
            ])
      Workloads.all
  in
  let vhdl_entries =
    List.map
      (fun (file, contents) -> compare_one ~update ~dir file contents)
      (vhdl_cases ())
  in
  { dir; entries = entries @ vhdl_entries }

let passed r =
  List.for_all
    (fun e ->
      match e.outcome with
      | Match | Created | Updated -> true
      | Missing | Differ _ -> false)
    r.entries

let outcome_str = function
  | Match -> "match"
  | Created -> "created"
  | Updated -> "updated"
  | Missing -> "MISSING"
  | Differ d -> "DIFFER: " ^ d

let pp_result ppf r =
  Format.fprintf ppf "golden traces in %s:" r.dir;
  List.iter
    (fun e -> Format.fprintf ppf "@.  %-16s %s" e.file (outcome_str e.outcome))
    r.entries
