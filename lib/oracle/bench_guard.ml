(* Bench regression guard: the simbench workloads re-measured against
   the committed BENCH_sim.json baselines. *)

type entry = {
  bench : string;
  samples_per_run : int;
  baseline : float;
  measured : float;
  ratio : float;
}

type report = { threshold : float; entries : entry list; note : string option }

let default_baseline_file = "BENCH_sim.json"

(* --- baseline parsing (no JSON dependency) ------------------------------ *)

(* Scan for ["name": "<w>"] followed by ["after": <float>]; the file is
   machine-written by bench/main.ml's simbench with exactly this shape. *)
let parse_baselines text =
  let find_from pat i =
    let n = String.length text and m = String.length pat in
    let rec go i =
      if i + m > n then None
      else if String.sub text i m = pat then Some (i + m)
      else go (i + 1)
    in
    go i
  in
  let number_at i =
    let n = String.length text in
    let rec skip i = if i < n && text.[i] = ' ' then skip (i + 1) else i in
    let i = skip i in
    let rec stop j =
      if
        j < n
        && (match text.[j] with
           | '0' .. '9' | '.' | '-' | '+' | 'e' | 'E' -> true
           | _ -> false)
      then stop (j + 1)
      else j
    in
    let j = stop i in
    if j = i then None else float_of_string_opt (String.sub text i (j - i))
  in
  let rec entries i acc =
    match find_from "\"name\": \"" i with
    | None -> List.rev acc
    | Some i -> (
        match String.index_from_opt text i '"' with
        | None -> List.rev acc
        | Some q -> (
            let name = String.sub text i (q - i) in
            match find_from "\"after\":" q with
            | None -> List.rev acc
            | Some j -> (
                match number_at j with
                | None -> entries j acc
                | Some v -> entries j ((name, v) :: acc))))
  in
  entries 0 []

(* --- the measured workloads (mirrors of bench/scenarios.ml) ------------- *)

let equalizer_design () =
  let n = 4000 in
  let env = Sim.Env.create ~seed:11 () in
  let rng = Stats.Rng.create ~seed:2024 in
  let stimulus, _ =
    Dsp.Channel_model.isi_awgn ~noise_sigma:0.02 ~rng ~n_symbols:n ()
  in
  let input = Sim.Channel.of_fun "rx" stimulus in
  let output = Sim.Channel.create "decisions" in
  let x_dtype = Fixpt.Dtype.make "T_input" ~n:7 ~f:5 () in
  let eq = Dsp.Lms_equalizer.create env ~x_dtype ~input ~output () in
  Sim.Signal.range (Dsp.Lms_equalizer.x eq) (-1.5) 1.5;
  ( {
      Refine.Flow.env;
      reset =
        (fun () ->
          Sim.Env.reset env;
          Sim.Channel.clear input;
          Sim.Channel.clear output);
      run = (fun () -> Dsp.Lms_equalizer.run eq ~cycles:n);
    },
    n )

let timing_design () =
  let n_symbols = 4000 in
  let env = Sim.Env.create ~seed:5 () in
  let rng = Stats.Rng.create ~seed:99 in
  let stimulus, _, n_samples =
    Dsp.Channel_model.timing_offset_pam ~rng ~n_symbols ~tau:0.3
      ~noise_sigma:0.01 ()
  in
  let input = Sim.Channel.of_fun "rx" stimulus in
  let output = Sim.Channel.create "symbols" in
  let x_dtype =
    Fixpt.Dtype.make "T_input" ~n:10 ~f:8
      ~overflow:Fixpt.Overflow_mode.Saturate ()
  in
  let tr = Dsp.Timing_recovery.create env ~x_dtype ~input ~output () in
  Sim.Signal.range (Dsp.Timing_recovery.input_signal tr) (-1.6) 1.6;
  Sim.Signal.range (Dsp.Nco.mu (Dsp.Timing_recovery.nco tr)) 0.0 1.0;
  Sim.Signal.range (Sim.Env.find_exn env "lf_lferr") (-0.25) 0.25;
  Sim.Signal.range (Sim.Env.find_exn env "ted_err") (-4.0) 4.0;
  Sim.Signal.range (Sim.Env.find_exn env "ip_out") (-2.0) 2.0;
  Sim.Signal.range (Sim.Env.find_exn env "out") (-2.0) 2.0;
  ( {
      Refine.Flow.env;
      reset =
        (fun () ->
          Sim.Env.reset env;
          Sim.Channel.clear input;
          Sim.Channel.clear output);
      run = (fun () -> Dsp.Timing_recovery.run tr ~samples:n_samples);
    },
    n_samples )

(* The closed synchronizer loop (mirrors bench/main.ml's syncbench
   rows): the drifting-tau M-PAM stimulus of the sync conformance
   workload at bench length. *)
let sync_design ~ted ~m () =
  let n_symbols = 4000 and sps = 2 in
  let env = Sim.Env.create ~seed:17 () in
  let rng = Stats.Rng.create ~seed:463 in
  let stimulus, _sent, n_samples =
    Dsp.Channel_model.drifting_tau_pam ~rng ~n_symbols ~sps ~m ~tau0:0.3
      ~tau_drift:1e-4 ~phase:0.05 ~noise_sigma:0.01 ()
  in
  let input = Sim.Channel.of_fun "rx" stimulus in
  let output = Sim.Channel.create "symbols" in
  let x_dtype =
    Fixpt.Dtype.make "T_input" ~n:10 ~f:8
      ~overflow:Fixpt.Overflow_mode.Saturate ()
  in
  let sy = Dsp.Synchronizer.create env ~ted ~m ~sps ~x_dtype ~input ~output () in
  Sim.Signal.range (Dsp.Synchronizer.input_signal sy) (-1.6) 1.6;
  ( {
      Refine.Flow.env;
      reset =
        (fun () ->
          Sim.Env.reset env;
          Sim.Channel.clear input;
          Sim.Channel.clear output);
      run = (fun () -> Dsp.Synchronizer.run sy ~samples:n_samples);
    },
    n_samples )

(* Deflake: wall-clock throughput on a shared machine is noisy in one
   direction only (preemption can slow a run down, never speed it up),
   so every guard scores the median of three independently timed
   measurements against the threshold instead of trusting a single
   sample. *)
let median3 f =
  match List.sort compare [ f (); f (); f () ] with
  | [ _; m; _ ] -> m
  | _ -> assert false

(* Same protocol as simbench: one warm-up run, then whole-run
   repetitions for the time budget. *)
let measure ~budget (design : Refine.Flow.design) ~samples_per_run =
  design.Refine.Flow.reset ();
  design.Refine.Flow.run ();
  let reps = ref 0 in
  let t0 = Sys.time () in
  let elapsed () = Sys.time () -. t0 in
  while elapsed () < budget || !reps = 0 do
    design.Refine.Flow.reset ();
    design.Refine.Flow.run ();
    incr reps
  done;
  Float.of_int (!reps * samples_per_run) /. elapsed ()

let run ?(baseline_file = default_baseline_file) ?(threshold = 0.8)
    ?(budget_seconds = 0.5) () =
  if not (Sys.file_exists baseline_file) then
    {
      threshold;
      entries = [];
      note = Some (Printf.sprintf "baseline %s not found: skipped" baseline_file);
    }
  else
    let baselines =
      try parse_baselines (In_channel.with_open_bin baseline_file In_channel.input_all)
      with Sys_error e ->
        ignore e;
        []
    in
    if baselines = [] then
      {
        threshold;
        entries = [];
        note =
          Some (Printf.sprintf "no baselines parsed from %s: skipped" baseline_file);
      }
    else
      let one bench build =
        match List.assoc_opt bench baselines with
        | None -> None
        | Some baseline ->
            let design, samples_per_run = build () in
            let measured =
              median3 (fun () ->
                  measure ~budget:budget_seconds design ~samples_per_run)
            in
            Some
              {
                bench;
                samples_per_run;
                baseline;
                measured;
                ratio = measured /. baseline;
              }
      in
      let entries =
        List.filter_map
          (fun (bench, build) -> one bench build)
          [
            ("lms-equalizer", equalizer_design);
            ("timing-recovery", timing_design);
          ]
      in
      { threshold; entries; note = None }

(* --- synchronizer throughput (BENCH_sync.json) -------------------------- *)

let default_sync_baseline_file = "BENCH_sync.json"

(* The rows syncbench writes and this guard re-measures: dual-simulation
   samples/sec of the closed loop, per detector. *)
let sync_rows ?(budget_seconds = 0.5) () =
  List.map
    (fun (name, ted, m) ->
      let design, samples_per_run = sync_design ~ted ~m () in
      ( name,
        samples_per_run,
        median3 (fun () ->
            measure ~budget:budget_seconds design ~samples_per_run) ))
    [
      ("sync-ml-pam4", Dsp.Synchronizer.Ml, 4);
      ("sync-gardner-pam2", Dsp.Synchronizer.Gardner, 2);
    ]

let run_sync ?(baseline_file = default_sync_baseline_file) ?(threshold = 0.8)
    ?(budget_seconds = 0.5) () =
  if not (Sys.file_exists baseline_file) then
    {
      threshold;
      entries = [];
      note =
        Some (Printf.sprintf "baseline %s not found: skipped" baseline_file);
    }
  else
    let baselines =
      try
        parse_baselines
          (In_channel.with_open_bin baseline_file In_channel.input_all)
      with Sys_error _ -> []
    in
    if baselines = [] then
      {
        threshold;
        entries = [];
        note =
          Some
            (Printf.sprintf "no baselines parsed from %s: skipped"
               baseline_file);
      }
    else
      let entries =
        List.filter_map
          (fun (bench, samples_per_run, measured) ->
            match List.assoc_opt bench baselines with
            | None -> None
            | Some baseline ->
                Some
                  {
                    bench;
                    samples_per_run;
                    baseline;
                    measured;
                    ratio = measured /. baseline;
                  })
          (sync_rows ~budget_seconds ())
      in
      { threshold; entries; note = None }

(* --- compiled-executor throughput (BENCH_compile.json) ------------------ *)

let default_compiled_baseline_file = "BENCH_compile.json"

(* The graphs the compiled rows run: the extracted flowgraphs of the
   lms and timing conformance workloads — the same extraction the
   sweep's compiled candidate path uses. *)
let scenario_graph name =
  match Workloads.find name with
  | None -> failwith ("Bench_guard: unknown workload " ^ name)
  | Some w -> (
      let b = w.Workloads.build () in
      match b.Workloads.extract_graph with
      | Some f -> f ()
      | None -> failwith ("Bench_guard: workload has no extractor: " ^ name))

(* simbench's protocol on the flat-schedule executor: one warm-up run,
   then whole-run repetitions for the budget.  Throughput counts
   lane-samples (steps x batch): the quantity a batched sweep consumes. *)
let measure_compiled ~budget prog ~steps =
  let buf = Array.init 8192 (fun i -> Float.sin (Float.of_int i) *. 0.75) in
  let inputs _name ~lane step =
    Array.unsafe_get buf ((lane + (step * 31)) land 8191)
  in
  Compile.run prog ~steps ~inputs;
  let reps = ref 0 in
  let t0 = Sys.time () in
  let elapsed () = Sys.time () -. t0 in
  while elapsed () < budget || !reps = 0 do
    Compile.run prog ~steps ~inputs;
    incr reps
  done;
  Float.of_int (!reps * steps * Compile.batch prog) /. elapsed ()

let compiled_rows ?(budget_seconds = 0.5) () =
  let lms = scenario_graph "lms" and timing = scenario_graph "timing" in
  List.map
    (fun (name, g, batch, steps) ->
      let prog = Compile.compile ~batch g in
      ( name,
        steps,
        median3 (fun () -> measure_compiled ~budget:budget_seconds prog ~steps)
      ))
    [
      ("lms-compiled-b1", lms, 1, 4000);
      ("lms-compiled-b64", lms, 64, 4000);
      ("timing-compiled-b1", timing, 1, 8000);
      ("timing-compiled-b64", timing, 64, 8000);
    ]

let run_compiled ?(baseline_file = default_compiled_baseline_file)
    ?(threshold = 0.8) ?(budget_seconds = 0.5) () =
  if not (Sys.file_exists baseline_file) then
    {
      threshold;
      entries = [];
      note =
        Some (Printf.sprintf "baseline %s not found: skipped" baseline_file);
    }
  else
    let baselines =
      try
        parse_baselines
          (In_channel.with_open_bin baseline_file In_channel.input_all)
      with Sys_error _ -> []
    in
    if baselines = [] then
      {
        threshold;
        entries = [];
        note =
          Some
            (Printf.sprintf "no baselines parsed from %s: skipped"
               baseline_file);
      }
    else
      let entries =
        List.filter_map
          (fun (bench, samples_per_run, measured) ->
            match List.assoc_opt bench baselines with
            | None -> None
            | Some baseline ->
                Some
                  {
                    bench;
                    samples_per_run;
                    baseline;
                    measured;
                    ratio = measured /. baseline;
                  })
          (compiled_rows ~budget_seconds ())
      in
      { threshold; entries; note = None }

(* --- verification-engine throughput (BENCH_verify.json) ---------------- *)

let default_verify_baseline_file = "BENCH_verify.json"

(* The measured unit is one whole verification run (graph rebuild,
   compile, search) — the wall-clock a `check --verify` caller pays —
   and throughput counts executed transitions/sec, the verifier's
   analogue of samples/sec. *)
let verify_scenarios () =
  let lms = scenario_graph "lms" in
  [
    ( "verify-biquad-proof",
      fun () ->
        Verify.Engine.verify ~max_bits:10 ~depth:48 ~max_states:4096
          Verify.Engine.No_overflow
          (Verify.Designs.biquad_repaired ()) );
    ( "verify-lms-closure",
      fun () ->
        Verify.Engine.verify ~max_bits:10 ~depth:48 ~max_states:4096
          Verify.Engine.No_limit_cycle lms );
  ]

let measure_verify ~budget once =
  let r = once () in
  let per = r.Verify.Engine.stats.Verify.Engine.transitions in
  let reps = ref 0 in
  let t0 = Sys.time () in
  let elapsed () = Sys.time () -. t0 in
  while elapsed () < budget || !reps = 0 do
    ignore (once ());
    incr reps
  done;
  (per, Float.of_int (!reps * per) /. elapsed ())

let verify_rows ?(budget_seconds = 0.5) () =
  List.map
    (fun (name, once) ->
      let per = ref 0 in
      let rate =
        median3 (fun () ->
            let p, r = measure_verify ~budget:budget_seconds once in
            per := p;
            r)
      in
      (name, !per, rate))
    (verify_scenarios ())

let run_verify ?(baseline_file = default_verify_baseline_file)
    ?(threshold = 0.8) ?(budget_seconds = 0.5) () =
  if not (Sys.file_exists baseline_file) then
    {
      threshold;
      entries = [];
      note =
        Some (Printf.sprintf "baseline %s not found: skipped" baseline_file);
    }
  else
    let baselines =
      try
        parse_baselines
          (In_channel.with_open_bin baseline_file In_channel.input_all)
      with Sys_error _ -> []
    in
    if baselines = [] then
      {
        threshold;
        entries = [];
        note =
          Some
            (Printf.sprintf "no baselines parsed from %s: skipped"
               baseline_file);
      }
    else
      let entries =
        List.filter_map
          (fun (bench, samples_per_run, measured) ->
            match List.assoc_opt bench baselines with
            | None -> None
            | Some baseline ->
                Some
                  {
                    bench;
                    samples_per_run;
                    baseline;
                    measured;
                    ratio = measured /. baseline;
                  })
          (verify_rows ~budget_seconds ())
      in
      { threshold; entries; note = None }

let passed r = List.for_all (fun e -> e.ratio >= r.threshold) r.entries

let pp_report ppf r =
  (match r.note with
  | Some n -> Format.fprintf ppf "bench guard: %s" n
  | None ->
      Format.fprintf ppf "bench guard (fail below %.2fx baseline):" r.threshold);
  List.iter
    (fun e ->
      Format.fprintf ppf "@.  %-18s %9.0f samples/sec vs baseline %9.0f (%.2fx)%s"
        e.bench e.measured e.baseline e.ratio
        (if e.ratio >= r.threshold then "" else "  REGRESSION"))
    r.entries
