(* Metamorphic invariants over the standard workloads: relations that
   must hold between the statistic monitor, the propagated ranges, the
   analytical ranges, the error monitor and the SQNR estimators. *)

type failure = {
  workload : string;
  invariant : string;
  subject : string;
  detail : string;
}

type report = { workloads : string list; checked : int; failures : failure list }

let empty = { workloads = []; checked = 0; failures = [] }

let merge a b =
  {
    workloads = a.workloads @ b.workloads;
    checked = a.checked + b.checked;
    failures = a.failures @ b.failures;
  }

(* mutable accumulator for one workload's checks *)
type ctx = {
  wname : string;
  mutable n : int;
  mutable fails : failure list;
}

let check ctx ~invariant ~subject ok detail =
  ctx.n <- ctx.n + 1;
  if not ok then
    ctx.fails <-
      { workload = ctx.wname; invariant; subject; detail = detail () }
      :: ctx.fails

let pair_subset ~tol (slo, shi) (plo, phi) =
  slo >= plo -. tol && shi <= phi +. tol

let pp_pair ppf (lo, hi) = Format.fprintf ppf "[%h, %h]" lo hi

let str f = Format.asprintf "%a" f ()

(* --- the per-signal invariants ----------------------------------------- *)

let check_overflows ctx s =
  check ctx ~invariant:"no-overflow" ~subject:(Sim.Signal.name s)
    (Sim.Signal.overflows s = 0)
    (fun () -> Printf.sprintf "%d overflow event(s)" (Sim.Signal.overflows s))

let check_stat_in_prop ctx ~tol s =
  match Sim.Signal.stat_range s with
  | None -> ()
  | Some stat ->
      let name = Sim.Signal.name s in
      (match Sim.Signal.prop_range s with
      | None ->
          check ctx ~invariant:"stat-in-prop" ~subject:name false (fun () ->
              "statistic range exists but propagated range is empty")
      | Some prop ->
          check ctx ~invariant:"stat-in-prop" ~subject:name
            (pair_subset ~tol stat prop)
            (fun () ->
              str (fun ppf () ->
                  Format.fprintf ppf "stat %a not within prop %a (tol %h)"
                    pp_pair stat pp_pair prop tol)))

let check_against_analytical ctx ~tol (ana : Sfg.Range_analysis.result) s =
  let name = Sim.Signal.name s in
  match Sfg.Range_analysis.range_of ana name with
  | None -> () (* no same-named graph node *)
  | Some _ when List.mem name ana.Sfg.Range_analysis.exploded -> ()
  | Some iv when Interval.is_exploded iv || Interval.is_empty iv -> ()
  | Some iv ->
      let alo = Interval.lo iv and ahi = Interval.hi iv in
      (* the propagated range seeds not-yet-assigned typed signals from
         their declared type range (a sound prior the graph does not
         have), so a typed signal's propagation is only bounded by the
         hull of the two *)
      let allowed =
        match Sim.Signal.dtype s with
        | Some dt ->
            let lo, hi = Fixpt.Dtype.range dt in
            Interval.join iv (Interval.make lo hi)
        | None -> iv
      in
      let plo = Interval.lo allowed and phi = Interval.hi allowed in
      (match Sim.Signal.stat_range s with
      | None -> ()
      | Some stat ->
          check ctx ~invariant:"stat-in-analytical" ~subject:name
            (pair_subset ~tol stat (alo, ahi))
            (fun () ->
              str (fun ppf () ->
                  Format.fprintf ppf
                    "stat %a not within analytical %a (tol %h)" pp_pair stat
                    pp_pair (alo, ahi) tol)));
      (match Sim.Signal.prop_range s with
      | None -> ()
      | Some prop ->
          check ctx ~invariant:"prop-in-analytical" ~subject:name
            (pair_subset ~tol prop (plo, phi))
            (fun () ->
              str (fun ppf () ->
                  Format.fprintf ppf
                    "prop %a not within analytical+type %a (tol %h)" pp_pair
                    prop pp_pair (plo, phi) tol)))

let check_idempotence ctx s =
  match Sim.Signal.dtype s with
  | None -> ()
  | Some dt ->
      let name = Sim.Signal.name s in
      let fx = Sim.Signal.peek_fx s in
      if Float.is_nan fx then ()
      else begin
        let impl = (Fixpt.Quantize.quantize dt fx).Fixpt.Quantize.value in
        check ctx ~invariant:"quantize-idempotent" ~subject:name (impl = fx)
          (fun () ->
            Printf.sprintf "impl cast moved committed value %h to %h" fx impl);
        let spec = Quantize_spec.cast dt fx in
        check ctx ~invariant:"spec-cast-idempotent" ~subject:name (spec = fx)
          (fun () ->
            Printf.sprintf "spec cast moved committed value %h to %h" fx spec)
      end

let check_produced_error ctx s =
  let name = Sim.Signal.name s in
  let err = Sim.Signal.err_stats s in
  if Stats.Err_stats.count err = 0 then ()
  else
    let maxc = Stats.Running.max_abs (Stats.Err_stats.consumed err) in
    let maxp = Stats.Running.max_abs (Stats.Err_stats.produced err) in
    match Sim.Signal.dtype s with
    | None ->
        (* no cast, no error() overruling: produced ≡ consumed *)
        if Sim.Signal.error_injected s = None then
          check ctx ~invariant:"produced-eq-consumed" ~subject:name
            (maxp = maxc)
            (fun () -> Printf.sprintf "max|ep|=%h but max|ec|=%h" maxp maxc)
    | Some dt ->
        let k =
          match Fixpt.Dtype.round dt with
          | Fixpt.Round_mode.Round -> 0.5
          | Fixpt.Round_mode.Floor -> 1.0
        in
        let bound = maxc +. (k *. Fixpt.Dtype.step dt) in
        check ctx ~invariant:"produced-error-bound" ~subject:name
          (maxp <= bound)
          (fun () ->
            Printf.sprintf "max|ep|=%h exceeds max|ec| + k*step = %h" maxp
              bound)

(* --- the probe-level invariants ---------------------------------------- *)

let check_divergence ctx (b : Workloads.built) =
  match b.Workloads.divergence_bound with
  | None -> ()
  | Some bound ->
      let d = b.Workloads.max_divergence () in
      check ctx ~invariant:"divergence-bound" ~subject:b.Workloads.probe
        (d <= bound)
        (fun () -> Printf.sprintf "max |fx - fl| = %h exceeds bound %h" d bound)

let check_sqnr_prediction ctx (b : Workloads.built) =
  match b.Workloads.predicted_sqnr_db with
  | None -> ()
  | Some predict ->
      if Stats.Sqnr.count b.Workloads.sqnr = 0 then ()
      else
        let measured = Stats.Sqnr.db b.Workloads.sqnr in
        let predicted = predict () in
        if Float.is_finite measured && Float.is_finite predicted then
          check ctx ~invariant:"sqnr-prediction" ~subject:b.Workloads.probe
            (Float.abs (measured -. predicted)
            <= b.Workloads.sqnr_tolerance_db)
            (fun () ->
              Printf.sprintf
                "measured %.2f dB vs predicted %.2f dB (tolerance %.1f dB)"
                measured predicted b.Workloads.sqnr_tolerance_db)

(* The flow's per-signal SQNR estimate (value statistics vs produced
   error statistics) must agree with the directly measured probe SQNR —
   both are gathered over the very same run. *)
let check_sqnr_flow ctx (b : Workloads.built) =
  match b.Workloads.design with
  | None -> ()
  | Some _ -> (
      let probe = Sim.Env.find_exn b.Workloads.env b.Workloads.probe in
      match Refine.Flow.sqnr_db probe with
      | None -> ()
      | Some flow_db ->
          if Stats.Sqnr.count b.Workloads.sqnr = 0 then ()
          else
            let measured = Stats.Sqnr.db b.Workloads.sqnr in
            if Float.is_finite measured && Float.is_finite flow_db then
              check ctx ~invariant:"sqnr-flow-consistency"
                ~subject:b.Workloads.probe
                (Float.abs (measured -. flow_db) <= 3.0)
                (fun () ->
                  Printf.sprintf
                    "probe SQNR %.2f dB vs Flow.sqnr_db %.2f dB (tolerance \
                     3.0 dB)"
                    measured flow_db))

(* --- driver ------------------------------------------------------------ *)

let check_built (w : Workloads.t) (b : Workloads.built) =
  let ctx = { wname = w.Workloads.name; n = 0; fails = [] } in
  let signals = Sim.Env.signals b.Workloads.env in
  let tol = b.Workloads.stat_tolerance in
  List.iter
    (fun s ->
      check_overflows ctx s;
      check_stat_in_prop ctx ~tol s;
      check_idempotence ctx s;
      check_produced_error ctx s)
    signals;
  (match b.Workloads.graph with
  | None -> ()
  | Some g ->
      let ana = Sfg.Range_analysis.run g in
      List.iter (fun s -> check_against_analytical ctx ~tol ana s) signals);
  check_divergence ctx b;
  check_sqnr_prediction ctx b;
  check_sqnr_flow ctx b;
  {
    workloads = [ w.Workloads.name ];
    checked = ctx.n;
    failures = List.rev ctx.fails;
  }

let run_workload (w : Workloads.t) =
  let b = w.Workloads.build () in
  b.Workloads.run ();
  check_built w b

let run_all () =
  List.fold_left (fun acc w -> merge acc (run_workload w)) empty Workloads.all

let passed r = r.failures = []

let pp_failure ppf f =
  Format.fprintf ppf "%s/%s (%s): %s" f.workload f.invariant f.subject f.detail

let pp_report ppf r =
  Format.fprintf ppf
    "metamorphic: %d invariant checks over [%s]: %d failure(s)" r.checked
    (String.concat "; " r.workloads)
    (List.length r.failures);
  List.iter (fun f -> Format.fprintf ppf "@.  %a" pp_failure f) r.failures
