(** Cache-transparency gate — the oracle for the content-addressed
    evaluation cache and the serve daemon.

    The cache's contract is {e invisibility}: plugging it into a sweep
    may change wall-clock, never bytes.  This gate runs one FIR sweep
    four ways — no cache; cold cache; warm cache (same directory,
    should answer from disk); warm cache at [jobs=N] — and holds all
    four canonical JSON reports to byte equality, while also requiring
    the warm runs to actually hit (a cache that never hits is
    trivially transparent and a broken one).  A final daemon round
    trip (ping → sweep → stats → shutdown over a real Unix socket)
    checks the serve path returns that same byte-identical report. *)

type result = {
  candidates : int;  (** evaluated per sweep *)
  cold_transparent : bool;  (** no-cache vs cold-cache JSON byte-equal *)
  warm_identical : bool;  (** cold vs warm JSON byte-equal *)
  jobs_identical : bool;  (** warm [jobs=1] vs warm [jobs=N] byte-equal *)
  warm_hits : int;  (** cache hits observed by the warm run *)
  warm_hit_all : bool;  (** warm run answered every candidate from cache *)
  daemon_identical : bool;  (** daemon-returned report byte-equal *)
  daemon_ok : bool;  (** ping/stats/shutdown round trip succeeded *)
}

type report = { jobs : int; result : result }

let default_jobs () = max 2 (min 4 (Domain.recommended_domain_count ()))

(* Same spirit as the sweep gate's workload: small but multi-wave,
   multi-seed. *)
let f_min = 4
let f_max = 7
let seeds = [ 0; 1 ]

let sweep ?cache ~jobs () =
  let workload = Sweep.Workload.fir ~n:128 () in
  let specs = workload.Sweep.Workload.specs in
  let generator = Sweep.Generator.grid ~specs ~f_min ~f_max ~seeds in
  Sweep.Pool.run ~jobs ?cache ~workload ~generator ()

(* A scratch directory under the system temp dir; unique-ish name via
   pid + a counter, no cleanup races with the daemon socket inside. *)
let scratch_counter = ref 0

let scratch_dir () =
  incr scratch_counter;
  let d =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "fxserve-gate-%d-%d" (Unix.getpid ()) !scratch_counter)
  in
  (try Unix.mkdir d 0o700 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
  d

let daemon_trip ~dir ~reference =
  let socket = Filename.concat dir "gate.sock" in
  let daemon =
    Thread.create
      (fun () ->
        try Serve.Daemon.run ~cache_dir:(Filename.concat dir "dcache") ~socket ()
        with _ -> ())
      ()
  in
  let identical = ref false in
  let ok =
    match Serve.Client.connect_retry socket with
    | exception _ -> false
    | c ->
        Fun.protect
          ~finally:(fun () -> Serve.Client.close c)
          (fun () ->
            let ping_ok =
              match Serve.Client.request c (Serve.Protocol.Ping { id = "p" }) with
              | Serve.Protocol.Pong { id = "p" } -> true
              | _ -> false
            in
            let sweep_ok =
              match
                Serve.Client.request c
                  (Serve.Protocol.Sweep
                     {
                       id = "s";
                       params =
                         {
                           Serve.Protocol.workload = "fir";
                           strategy = "grid";
                           f_min;
                           f_max;
                           seeds = List.length seeds;
                           jobs = 1;
                           budget = None;
                           target_db = 40.0;
                           timeout_s = Some 300.0;
                         };
                     })
              with
              | Serve.Protocol.Report { id = "s"; report; _ } ->
                  (* the daemon's default fir is n=512; the gate's
                     reference below uses the same daemon-side sweep
                     re-requested, so compare against [reference]
                     only when the caller built it the same way *)
                  identical := String.equal report reference;
                  true
              | _ -> false
            in
            let stats_ok =
              match Serve.Client.request c (Serve.Protocol.Stats { id = "t" }) with
              | Serve.Protocol.Stats_reply { id = "t"; _ } -> true
              | _ -> false
            in
            let bye_ok =
              match
                Serve.Client.request c (Serve.Protocol.Shutdown { id = "q" })
              with
              | Serve.Protocol.Bye { id = "q" } -> true
              | _ -> false
            in
            ping_ok && sweep_ok && stats_ok && bye_ok)
  in
  Thread.join daemon;
  (ok, !identical)

let run ?jobs () =
  let jobs = match jobs with Some j -> max 2 j | None -> default_jobs () in
  let dir = scratch_dir () in
  let cache_dir = Filename.concat dir "cache" in
  (* reference: no cache at all *)
  let reference = Sweep.Report.to_json (sweep ~jobs:1 ()) in
  (* cold: empty persistent cache *)
  let cold_cache = Serve.Cache.create ~dir:cache_dir () in
  let cold =
    Sweep.Report.to_json
      (sweep ~cache:(Serve.Codec.eval_cache cold_cache) ~jobs:1 ())
  in
  (* warm: a fresh cache value over the same directory — hits must come
     from the persisted entries, not the in-process table *)
  let warm_cache = Serve.Cache.create ~dir:cache_dir () in
  let warm =
    Sweep.Report.to_json
      (sweep ~cache:(Serve.Codec.eval_cache warm_cache) ~jobs:1 ())
  in
  let warm_stats = Serve.Cache.stats warm_cache in
  (* warm parallel: shared cache under concurrent workers *)
  let warm_jobs =
    Sweep.Report.to_json
      (sweep ~cache:(Serve.Codec.eval_cache warm_cache) ~jobs ())
  in
  let candidates =
    (f_max - f_min + 1) * List.length seeds
  in
  (* daemon reference: the daemon sweeps its own default-sized fir
     workload, so build the matching report locally *)
  let daemon_reference =
    let workload = Sweep.Workload.fir () in
    let specs = workload.Sweep.Workload.specs in
    let generator =
      Sweep.Generator.grid ~specs ~f_min ~f_max ~seeds
    in
    Sweep.Report.to_json (Sweep.Pool.run ~jobs:1 ~workload ~generator ())
  in
  let daemon_ok, daemon_identical =
    daemon_trip ~dir ~reference:daemon_reference
  in
  {
    jobs;
    result =
      {
        candidates;
        cold_transparent = String.equal reference cold;
        warm_identical = String.equal cold warm;
        jobs_identical = String.equal warm warm_jobs;
        warm_hits = warm_stats.Serve.Cache.hits;
        warm_hit_all = warm_stats.Serve.Cache.hits >= candidates;
        daemon_identical;
        daemon_ok;
      };
  }

let passed t =
  let r = t.result in
  r.cold_transparent && r.warm_identical && r.jobs_identical && r.warm_hit_all
  && r.daemon_identical && r.daemon_ok

let pp_report ppf t =
  let r = t.result in
  let verdict b = if b then "ok" else "FAILED" in
  Format.fprintf ppf "serve cache transparency (%d candidates):@." r.candidates;
  Format.fprintf ppf "  no-cache vs cold cache:     %s@."
    (verdict r.cold_transparent);
  Format.fprintf ppf "  cold vs warm (re-sweep):    %s@."
    (verdict r.warm_identical);
  Format.fprintf ppf "  warm jobs 1 vs %d:           %s@." t.jobs
    (verdict r.jobs_identical);
  Format.fprintf ppf "  warm hit coverage:          %s (%d hits / %d candidates)@."
    (verdict r.warm_hit_all) r.warm_hits r.candidates;
  Format.fprintf ppf "  daemon round trip:          %s@." (verdict r.daemon_ok);
  Format.fprintf ppf "  daemon report byte-equal:   %s@."
    (verdict r.daemon_identical)
