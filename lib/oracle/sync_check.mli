(** Synchronizer gate: the closed ML-TED timing loop must lock in float,
    stay within 2 dB MER after §6.1 refinement with the saturating
    integrator and the [error()]-overruled NCO phase visible in the
    decisions, and sweep deterministically across worker counts. *)

type outcome = {
  float_mer_db : float;
  refined_mer_db : float;
  mer_delta_db : float;
  float_rate_err : float;
  refined_rate_err : float;
  sqnr_after_db : float option;
  integrator_dtype : string;
  integrator_saturating : bool;
  integrator_case_b : bool;
  nco_phase_overruled : bool;
}

type sweep_result = { jobs : int; candidates : int; identical : bool }
type report = { outcome : outcome; sweep : sweep_result }

(** Build, lock, refine, re-lock and sweep the synchronizer workload.
    [jobs] (default [min 4 (recommended_domain_count)], at least 2) is
    the parallel side of the determinism comparison. *)
val run : ?jobs:int -> unit -> report

val passed : report -> bool
val pp_report : Format.formatter -> report -> unit
