(** Synchronizer gate — the closed ML-TED timing loop as an oracle.

    The other gates check mechanisms (golden bytes, sweep determinism,
    fault quarantine); this one checks the {e outcome} the paper's §6.1
    flow promises on the flagship feedback workload:

    - the float loop {e locks} on drifting-τ 4-PAM (recovered symbol
      rate within 1% of 1/sps, MER well above the decision threshold);
    - the refined fixed-point loop still locks, with MER within 2 dB of
      float — wordlengths were chosen per signal, not globally;
    - the two knowledge-based annotations of §6.1 are visible in the
      decisions: the loop-filter integrator is a §5.1 case (b) signal
      refined with saturation, and the NCO phase — the "D signal inside
      of NCO" whose error monitoring is meaningless under
      decision-steered feedback — carries the [error()] overrule
      ({!Refine.Decision.Overruled});
    - the synchronizer sweep workload renders a byte-identical
      {!Sweep.Report} at [jobs=1] and [jobs=N] (the data-dependent
      strobe/hold control flow must not leak scheduling). *)

type outcome = {
  float_mer_db : float;  (** float loop, best-lag MER after transient *)
  refined_mer_db : float;  (** same stimulus, refined fixed-point types *)
  mer_delta_db : float;  (** float − refined *)
  float_rate_err : float;  (** |strobe rate / (1/sps) − 1|, float run *)
  refined_rate_err : float;
  sqnr_after_db : float option;
  integrator_dtype : string;  (** decided type of [lf_integ] *)
  integrator_saturating : bool;  (** §5.1 case (b) remedy applied *)
  integrator_case_b : bool;  (** MSB decision was [Prop_pessimistic] *)
  nco_phase_overruled : bool;  (** §6.1 [error()] visible on [nco_eta] *)
}

type sweep_result = {
  jobs : int;
  candidates : int;
  identical : bool;  (** jobs=1 and jobs=N reports byte-equal *)
}

type report = { outcome : outcome; sweep : sweep_result }

(* Mirrors {!Workloads.build_sync} (same stimulus, ranges and input
   type) but records the output channel and keeps the synchronizer
   handle, which the conformance workload does not expose. *)
let build ~n_symbols () =
  let env = Sim.Env.create ~seed:17 () in
  let rng = Stats.Rng.create ~seed:463 in
  let stimulus, sent, n_samples =
    Dsp.Channel_model.drifting_tau_pam ~rng ~n_symbols ~m:4 ~tau0:0.3
      ~tau_drift:1e-4 ~phase:0.05 ~noise_sigma:0.01 ()
  in
  let input = Sim.Channel.of_fun "rx" stimulus in
  let output = Sim.Channel.create ~record:true "symbols" in
  let x_dtype =
    Fixpt.Dtype.make "T_input" ~n:10 ~f:8 ~overflow:Fixpt.Overflow_mode.Saturate
      ()
  in
  let sy =
    Dsp.Synchronizer.create env ~ted:Dsp.Synchronizer.Ml ~m:4 ~x_dtype ~input
      ~output ()
  in
  Sim.Signal.range (Dsp.Synchronizer.input_signal sy) (-1.6) 1.6;
  Sim.Signal.range (Dsp.Nco.mu (Dsp.Synchronizer.nco sy)) 0.0 1.0;
  Sim.Signal.range (Sim.Env.find_exn env "lf_lferr") (-0.25) 0.25;
  Sim.Signal.range (Sim.Env.find_exn env "mlted_err") (-4.0) 4.0;
  Sim.Signal.range (Sim.Env.find_exn env "ip_out") (-2.0) 2.0;
  Sim.Signal.range (Sim.Env.find_exn env "ip_dout") (-4.0) 4.0;
  Sim.Signal.range (Sim.Env.find_exn env "out") (-2.0) 2.0;
  let design =
    {
      Refine.Flow.env;
      reset =
        (fun () ->
          Sim.Env.reset env;
          Sim.Channel.clear input;
          Sim.Channel.clear output);
      run = (fun () -> Dsp.Synchronizer.run sy ~samples:n_samples);
    }
  in
  (design, sy, sent, output)

let mer_of ~sent ~output =
  let received = Array.of_list (Sim.Channel.recorded output) in
  fst (Dsp.Pam.best_mer ~skip:300 ~sent ~received ())

let refine_outcome () =
  let design, sy, sent, output = build ~n_symbols:700 () in
  design.Refine.Flow.reset ();
  design.Refine.Flow.run ();
  let float_mer_db = mer_of ~sent ~output in
  let float_rate_err = Dsp.Synchronizer.strobe_rate_error sy in
  (* §6.1: the NCO phase register's float/fixed error monitoring is
     meaningless under decision-steered feedback — the designer overrules
     it with [error()] before refinement instead of waiting for the
     divergence detector (the loop is self-correcting, so the spurious
     monitor reading may stay formally bounded while still being
     noise).  The annotation survives {!Sim.Env.reset}. *)
  let auto_error_lsb = -8 in
  let h = Refine.Lsb_rules.error_halfwidth_of_lsb auto_error_lsb in
  Sim.Signal.error (Dsp.Nco.phase (Dsp.Synchronizer.nco sy)) h;
  let config =
    {
      Refine.Flow.default_config with
      Refine.Flow.auto_error_lsb;
      error_overrides = [ ("nco_eta", h) ];
    }
  in
  let result = Refine.Flow.refine ~config ~sqnr_signal:"out" design in
  design.Refine.Flow.reset ();
  design.Refine.Flow.run ();
  let refined_mer_db = mer_of ~sent ~output in
  let refined_rate_err = Dsp.Synchronizer.strobe_rate_error sy in
  let integ_dt = List.assoc_opt "lf_integ" result.Refine.Flow.types in
  let integrator_case_b =
    List.exists
      (fun (d : Refine.Decision.msb) ->
        String.equal d.Refine.Decision.signal "lf_integ"
        && d.Refine.Decision.case = Refine.Decision.Prop_pessimistic)
      result.Refine.Flow.msb_decisions
  in
  let nco_phase_overruled =
    List.exists
      (fun (d : Refine.Decision.lsb) ->
        String.equal d.Refine.Decision.signal "nco_eta"
        && d.Refine.Decision.origin = Refine.Decision.Overruled)
      result.Refine.Flow.lsb_decisions
  in
  {
    float_mer_db;
    refined_mer_db;
    mer_delta_db = float_mer_db -. refined_mer_db;
    float_rate_err;
    refined_rate_err;
    sqnr_after_db = result.Refine.Flow.sqnr_after_db;
    integrator_dtype =
      (match integ_dt with
      | Some dt -> Fixpt.Dtype.to_string dt
      | None -> "<undecided>");
    integrator_saturating =
      (match integ_dt with
      | Some dt -> Fixpt.Overflow_mode.is_saturating (Fixpt.Dtype.overflow dt)
      | None -> false);
    integrator_case_b;
    nco_phase_overruled;
  }

(* Same shape as {!Sweep_check.sweep}: small grid, two stimulus seeds,
   sequential vs parallel report byte-equality.  The synchronizer
   workload has no compiled fast path (data-dependent control flow), so
   this also pins the interpreter-only pool path. *)
let sweep_determinism ~jobs =
  (* generators are stateful wave protocols — build a fresh
     workload/generator pair per side *)
  let sweep ~jobs =
    let workload = Sweep.Workload.sync ~n_symbols:48 () in
    let specs = workload.Sweep.Workload.specs in
    let generator =
      Sweep.Generator.grid ~specs ~f_min:6 ~f_max:8 ~seeds:[ 0; 1 ]
    in
    Sweep.Pool.run ~jobs ~workload ~generator ()
  in
  let sequential = sweep ~jobs:1 in
  let parallel = sweep ~jobs in
  {
    jobs;
    candidates = List.length sequential.Sweep.Report.entries;
    identical = Sweep.Report.to_json sequential = Sweep.Report.to_json parallel;
  }

let default_jobs () = max 2 (min 4 (Domain.recommended_domain_count ()))

let run ?jobs () =
  let jobs = match jobs with Some j -> max 2 j | None -> default_jobs () in
  { outcome = refine_outcome (); sweep = sweep_determinism ~jobs }

(* Lock thresholds: rate within 1% of 1/sps and refined MER within 2 dB
   of float (ISSUE acceptance); the 15 dB floor is far above a 4-PAM
   slicing threshold yet far below the ~24 dB a locked loop reaches —
   it only rejects a loop that never locked. *)
let passed t =
  t.outcome.float_mer_db >= 15.0
  && t.outcome.float_rate_err <= 0.01
  && t.outcome.refined_rate_err <= 0.01
  && t.outcome.mer_delta_db <= 2.0
  && t.outcome.integrator_saturating && t.outcome.integrator_case_b
  && t.outcome.nco_phase_overruled && t.sweep.identical

let pp_report ppf t =
  let o = t.outcome in
  Format.fprintf ppf "synchronizer (ML-TED, 4-PAM, drifting tau):@.";
  Format.fprintf ppf "  float    mer=%.2f dB rate_err=%.4f@." o.float_mer_db
    o.float_rate_err;
  Format.fprintf ppf "  refined  mer=%.2f dB rate_err=%.4f (delta %.2f dB%s)@."
    o.refined_mer_db o.refined_rate_err o.mer_delta_db
    (match o.sqnr_after_db with
    | Some v -> Printf.sprintf ", sqnr %.1f dB" v
    | None -> "");
  Format.fprintf ppf "  lf_integ %s case_b=%b saturating=%b@."
    o.integrator_dtype o.integrator_case_b o.integrator_saturating;
  Format.fprintf ppf "  nco_eta  error() overrule observed=%b@."
    o.nco_phase_overruled;
  Format.fprintf ppf "  sweep    %d candidates, jobs 1 vs %d: %s@."
    t.sweep.candidates t.sweep.jobs
    (if t.sweep.identical then "identical" else "DIVERGED")
