(** Golden-trace conformance: byte-exact snapshots of per-signal
    monitor state, VCD digests and refinement reports for the standard
    workloads, compared against committed files under
    [test/conformance/golden/].

    Values are rendered as hex floats ([%h]) so a match is bit-exact and
    a mismatch is unambiguous.  The traces depend on the platform's libm
    for the workloads whose stimuli use transcendental functions (lms,
    timing, ddc, cordic angles) — regenerate with [--update-golden] when
    moving to a different libm (see EXPERIMENTS.md). *)

type outcome =
  | Match
  | Created  (** update mode: file did not exist, written *)
  | Updated  (** update mode: file differed, rewritten *)
  | Missing  (** check mode: golden file absent *)
  | Differ of string  (** check mode: first difference *)

type entry = { file : string; outcome : outcome }
type result = { dir : string; entries : entry list }

(** [FXREFINE_GOLDEN_DIR], else [test/conformance/golden] when present
    (repo root), else [golden] (the dune test sandbox layout). *)
val default_dir : unit -> string

(** Render the monitor-state trace of a built (and already run)
    workload. *)
val trace_of_built : Workloads.built -> string

(** Build a fresh instance of the workload and run the full refinement
    flow on it; render iterations, decisions and SQNR as a report.
    [None] for workloads without a {!Refine.Flow.design}. *)
val refine_report : Workloads.t -> string option

(** The VHDL golden files — [(file, contents)] for the emitted 3-tap FIR
    entity in wrap and saturate modes and its self-checking testbench.
    Exact-binary-fraction coefficients and stimulus keep the text
    libm-independent. *)
val vhdl_cases : unit -> (string * string) list

(** Compare (or, with [update:true], rewrite) every golden file —
    workload traces, refinement reports and the VHDL cases. *)
val check : ?update:bool -> ?dir:string -> unit -> result

val passed : result -> bool
val pp_result : Format.formatter -> result -> unit
