(** Differential testing of {!Fixpt.Quantize} against the executable
    spec {!Quantize_spec}: seeded random (value, dtype) cases for every
    sign × overflow × round mode combination, with the wordlength
    boundaries n ∈ {1, 62, 63, 64} forced into every batch.

    Deterministic by construction (all randomness comes from one
    {!Stats.Rng} seed), so a CI failure replays locally from the
    printed seed. *)

type case = { dtype : Fixpt.Dtype.t; value : float }

type mismatch = {
  case : case;
  field : string;  (** which outcome field disagreed *)
  spec : string;  (** spec-side rendering (hex floats: exact) *)
  impl : string;
}

type report = {
  seed : int;
  per_combo : int;
  total_cases : int;
  mismatches : mismatch list;  (** capped at {!max_reported} *)
  mismatch_count : int;
}

val max_reported : int

(** Every sign × overflow × round combination (12). *)
val combos :
  (Fixpt.Sign_mode.t * Fixpt.Overflow_mode.t * Fixpt.Round_mode.t) list

(** Default seed: [FXREFINE_QCHECK_SEED] from the environment, else a
    fixed constant — the same convention the qcheck suites use. *)
val default_seed : unit -> int

(** [run ~seed ~per_combo ()] — at least [per_combo] random cases per
    mode combination (default 1000). *)
val run : ?seed:int -> ?per_combo:int -> unit -> report

val passed : report -> bool
val pp_mismatch : Format.formatter -> mismatch -> unit
val pp_report : Format.formatter -> report -> unit
