(** Compiled-executor gate: byte-equality between {!Compile} and
    {!Sfg.Graph.simulate} over the conformance workloads' flowgraphs,
    plus metric equality of the sweep's compiled candidate evaluation.

    All stimulus and fault decisions are drawn from a fixed
    {!Fault.Plan}, pure in [(name, lane, step)] — the runs replay
    bit-identically anywhere, and the {e same} decisions reach both
    executors. *)

type result = { name : string; detail : string; ok : bool }
type report = { results : result list }

let steps = 48
let batches = [ 1; 4; 64 ]
let bits = Int64.bits_of_float

(* --- deterministic stimulus into each input's declared interval -------- *)

(* Per (input, lane, step) samples spread over the input node's declared
   interval; an unusable interval (non-finite, degenerate, or absurdly
   wide) falls back to [-1, 1]. *)
let stimulus plan g =
  let ranges = Hashtbl.create 8 in
  List.iter
    (fun (n : Sfg.Node.t) ->
      match n.Sfg.Node.op with
      | Sfg.Node.Input iv ->
          let lo = Interval.lo iv and hi = Interval.hi iv in
          let lo, hi =
            if
              Float.is_finite lo && Float.is_finite hi
              && hi -. lo > 0.0
              && hi -. lo <= 1e6
            then (lo, hi)
            else (-1.0, 1.0)
          in
          Hashtbl.replace ranges n.Sfg.Node.name (lo, hi)
      | _ -> ())
    (Sfg.Graph.nodes g);
  fun name lane step ->
    let lo, hi =
      match Hashtbl.find_opt ranges name with
      | Some r -> r
      | None -> (-1.0, 1.0)
    in
    let u =
      Fault.Plan.draw plan ~stream:"stim"
        ~key:(Printf.sprintf "%d:%s" lane name)
        ~index:step
    in
    lo +. (u *. (hi -. lo))

(* The fault function both executors replay: grid-preserving SEU
   bitflips at quantization points, sign flips at inputs. *)
let fault_fn plan g =
  let dt_of = Hashtbl.create 8 in
  List.iter
    (fun (n : Sfg.Node.t) ->
      match n.Sfg.Node.op with
      | Sfg.Node.Quantize dt -> Hashtbl.replace dt_of n.Sfg.Node.name dt
      | _ -> ())
    (Sfg.Graph.nodes g);
  fun lane ~name ~step v ->
    let key = Printf.sprintf "%d:%s" lane name in
    match Hashtbl.find_opt dt_of name with
    | Some dt ->
        if Fault.Plan.fires plan ~stream:"seu" ~key ~index:step ~rate:0.1
        then
          let n = Fixpt.Dtype.n dt in
          let u = Fault.Plan.draw plan ~stream:"bit" ~key ~index:step in
          let bit = min (n - 1) (int_of_float (u *. Float.of_int n)) in
          Fault.Inject.flip_bit dt ~bit v
        else v
    | None ->
        if Fault.Plan.fires plan ~stream:"neg" ~key ~index:step ~rate:0.05
        then -.v
        else v

(* --- byte equality over every node, step, lane ------------------------- *)

(* Interpreter lanes are computed once for the widest batch and shared
   by every batch size: the batching contract says lane [l] of any
   compiled run equals the single-lane reference fed lane [l]'s
   stimulus. *)
let mismatches ?fault ~stim g =
  let maxb = List.fold_left max 1 batches in
  let interp =
    Array.init maxb (fun lane ->
        Sfg.Graph.simulate
          ?inject:(Option.map (fun f -> f lane) fault)
          g ~steps
          ~inputs:(fun name step -> stim name lane step))
  in
  let inject_c =
    Option.map
      (fun f ~name ~lane ~step v -> f lane ~name ~step v)
      fault
  in
  let mism = ref 0 in
  List.iter
    (fun b ->
      let prog = Compile.compile ~batch:b g in
      let ct =
        Compile.traces ?inject:inject_c prog ~steps
          ~inputs:(fun name ~lane step -> stim name lane step)
      in
      for lane = 0 to b - 1 do
        List.iter2
          (fun (_, per_lane) (_, itr) ->
            Array.iteri
              (fun s iv ->
                if bits per_lane.(lane).(s) <> bits iv then incr mism)
              itr)
          ct interp.(lane)
      done)
    batches;
  !mism

let check_graph ~workload ~source g =
  let nodes = Sfg.Graph.node_count g in
  let mk ~faulted =
    let name =
      Printf.sprintf "compile/%s/%s%s" workload source
        (if faulted then "/faulted" else "")
    in
    let plan = Fault.Plan.make ~seed:97 () in
    let stim = stimulus plan g in
    match
      if faulted then mismatches ~fault:(fault_fn plan g) ~stim g
      else mismatches ~stim g
    with
    | 0 ->
        {
          name;
          detail =
            Printf.sprintf
              "%d nodes bit-identical over B in {1,4,64} x %d steps" nodes
              steps;
          ok = true;
        }
    | n ->
        {
          name;
          detail = Printf.sprintf "%d mismatched node samples" n;
          ok = false;
        }
    | exception e ->
        { name; detail = Printexc.to_string e; ok = false }
  in
  [ mk ~faulted:false; mk ~faulted:true ]

let check_workload (w : Workloads.t) =
  match w.Workloads.build () with
  | b ->
      let graphs =
        (match b.Workloads.extract_graph with
        | Some f -> (
            match f () with
            | g -> [ ("extracted", Ok g) ]
            | exception e -> [ ("extracted", Error e) ])
        | None -> [])
        @
        match b.Workloads.graph with
        | Some g -> [ ("analytic", Ok g) ]
        | None -> []
      in
      List.concat_map
        (fun (source, g) ->
          match g with
          | Ok g -> check_graph ~workload:w.Workloads.name ~source g
          | Error e ->
              [
                {
                  name =
                    Printf.sprintf "compile/%s/%s" w.Workloads.name source;
                  detail = "extraction failed: " ^ Printexc.to_string e;
                  ok = false;
                };
              ])
        graphs
  | exception e ->
      [
        {
          name = Printf.sprintf "compile/%s" w.Workloads.name;
          detail = "build failed: " ^ Printexc.to_string e;
          ok = false;
        };
      ]

(* --- sweep metric parity ----------------------------------------------- *)

let stats_diff what a b =
  if Stats.Running.count a <> Stats.Running.count b then
    Some (what ^ " count")
  else if bits (Stats.Running.mean a) <> bits (Stats.Running.mean b) then
    Some (what ^ " mean")
  else if bits (Stats.Running.variance a) <> bits (Stats.Running.variance b)
  then Some (what ^ " variance")
  else if bits (Stats.Running.min_value a) <> bits (Stats.Running.min_value b)
  then Some (what ^ " min")
  else if bits (Stats.Running.max_value a) <> bits (Stats.Running.max_value b)
  then Some (what ^ " max")
  else None

let metrics_diff (a : Refine.Eval.metrics) (b : Refine.Eval.metrics) =
  if a.Refine.Eval.total_bits <> b.Refine.Eval.total_bits then
    Some "total_bits"
  else if a.Refine.Eval.overflow_count <> b.Refine.Eval.overflow_count then
    Some "overflow_count"
  else if
    bits a.Refine.Eval.probe_err_max <> bits b.Refine.Eval.probe_err_max
  then Some "probe_err_max"
  else
    match (a.Refine.Eval.sqnr_db, b.Refine.Eval.sqnr_db) with
    | Some x, Some y when bits x <> bits y -> Some "sqnr_db"
    | Some _, None | None, Some _ -> Some "sqnr_db presence"
    | _ -> (
        match (a.Refine.Eval.probe_values, b.Refine.Eval.probe_values) with
        | Some x, Some y -> (
            match stats_diff "probe_values" x y with
            | Some d -> Some d
            | None -> (
                match (a.Refine.Eval.probe_err, b.Refine.Eval.probe_err) with
                | Some ex, Some ey -> (
                    match
                      stats_diff "produced"
                        (Stats.Err_stats.produced ex)
                        (Stats.Err_stats.produced ey)
                    with
                    | Some d -> Some d
                    | None ->
                        stats_diff "consumed"
                          (Stats.Err_stats.consumed ex)
                          (Stats.Err_stats.consumed ey))
                | _ -> Some "probe_err presence"))
        | _ -> Some "probe_values presence")

let check_sweep_metrics () =
  let name = "compile/sweep-fir/metrics" in
  match
    let w =
      match Sweep.Workload.find "fir" with
      | Some w -> w
      | None -> failwith "fir sweep workload missing"
    in
    let inst = w.Sweep.Workload.make_instance () in
    let ce =
      match inst.Sweep.Workload.compiled with
      | Some ce -> ce
      | None -> failwith "fir sweep workload lost its compiled path"
    in
    let diffs = ref [] in
    let candidates =
      [ (0, 6); (1, 9); (2, 12) ]
      |> List.map (fun (seed, f) ->
             Sweep.Candidate.of_uniform ~id:seed
               ~specs:w.Sweep.Workload.specs ~f ~stim_seed:seed)
    in
    List.iter
      (fun (c : Sweep.Candidate.t) ->
        let assigns = Sweep.Candidate.to_dtypes c in
        let probe = w.Sweep.Workload.probe in
        let seed = c.Sweep.Candidate.stim_seed in
        Sim.Env.restore_into inst.Sweep.Workload.baseline
          inst.Sweep.Workload.env;
        inst.Sweep.Workload.set_seed seed;
        let mi =
          Refine.Eval.evaluate ~assigns ~probe inst.Sweep.Workload.design
        in
        Sim.Env.restore_into inst.Sweep.Workload.baseline
          inst.Sweep.Workload.env;
        inst.Sweep.Workload.set_seed seed;
        let mc =
          Refine.Eval.evaluate_compiled ~assigns ~probe ~seed ce
            inst.Sweep.Workload.design
        in
        match metrics_diff mi mc with
        | Some d ->
            diffs := Printf.sprintf "seed %d: %s" seed d :: !diffs
        | None -> ())
      candidates;
    !diffs
  with
  | [] ->
      {
        name;
        detail =
          "evaluate_compiled metrics bit-identical to evaluate over 3 \
           candidates";
        ok = true;
      }
  | diffs -> { name; detail = String.concat "; " diffs; ok = false }
  | exception e -> { name; detail = Printexc.to_string e; ok = false }

(* --- the gate ----------------------------------------------------------- *)

let run () =
  {
    results =
      List.concat_map check_workload Workloads.all
      @ [ check_sweep_metrics () ];
  }

let passed r = List.for_all (fun x -> x.ok) r.results

let pp_report ppf r =
  Format.fprintf ppf "compiled-executor gate:@,";
  List.iter
    (fun x ->
      Format.fprintf ppf "  [%s] %-32s %s@,"
        (if x.ok then "ok" else "FAIL")
        x.name x.detail)
    r.results;
  let bad = List.filter (fun x -> not x.ok) r.results in
  if bad = [] then
    Format.fprintf ppf "  all %d checks passed@," (List.length r.results)
  else Format.fprintf ppf "  %d checks FAILED@," (List.length bad)
