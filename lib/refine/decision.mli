(** Decision records produced by the refinement rules.  The MSB and LSB
    sides are decided independently (the paper's central design point);
    {!to_dtype} fuses them into a concrete type. *)

(** Which §5.1 comparison case produced the MSB decision. *)
type msb_case =
  | Agree  (** (a) F(stat) = F(prop): safe, non-saturated *)
  | Prop_pessimistic
      (** (b) F(prop) ≫ F(stat) or exploded: accumulator-like —
          saturation (or [range()]) at the statistic MSB *)
  | Trade_off  (** (c) moderately above: propagation MSB or saturate *)

val msb_case_to_string : msb_case -> string

type msb = {
  signal : string;
  msb_pos : int;  (** decided MSB weight *)
  mode : Fixpt.Overflow_mode.t;
  case : msb_case;
  stat_msb : int option;  (** F of the observed range *)
  prop_msb : int option;  (** F of the propagated range; [None]: exploded *)
  guard : (float * float) option;
      (** saturated signals: observed boundaries the hardware saturation
          must cover (§5.1's guard range) *)
}

(** Why the LSB position landed where it did. *)
type lsb_origin =
  | Sigma_rule  (** [2^p ≤ k_LSB·σ(ε)] — the §5.2 rule *)
  | Exact_grid  (** no error observed; position from the value grid *)
  | Overruled  (** an [error()] annotation fixed the error model *)
  | Already_typed  (** designer type: reported and checked, not derived *)
  | No_information

(** Report keyword for the LSB decision's origin. *)
val lsb_origin_to_string : lsb_origin -> string

type lsb = {
  signal : string;
  lsb_pos : int option;
  round : Fixpt.Round_mode.t;
  origin : lsb_origin;
  sigma : float;  (** σ of the produced error the rule used *)
  mean : float;
  max_abs : float;
  diverged : bool;  (** error monitoring was unstable on this signal *)
  loss : Stats.Err_stats.loss;  (** consumed-vs-produced verdict *)
}

(** Fuse the two sides into a type; [None] when either side lacks a
    finite position or they are inconsistent. *)
val to_dtype :
  ?sign:Fixpt.Sign_mode.t -> msb:msb -> lsb:lsb -> unit -> Fixpt.Dtype.t option

(** One MSB-table row. *)
val pp_msb : Format.formatter -> msb -> unit

(** One LSB-table row. *)
val pp_lsb : Format.formatter -> lsb -> unit
