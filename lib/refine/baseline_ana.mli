(** Pure analytical wordlength derivation — the comparison baseline
    after Willems et al.'s interpolative approach (paper reference [3]):
    static analysis over a signal-flow graph, no simulation, worst-case
    conservative. *)

type result = {
  wordlength : Sfg.Wordlength.result;
  range_iterations : int;
  exploded : string list;
}

(** Run the pure SFG analyses and collect per-node choices. *)
val analyze :
  ?widen_after:int -> Sfg.Graph.t -> output:string -> sigma_budget:float ->
  result

(** Chosen MSB position per signal ([None]: unbounded). *)
val msb_positions : result -> (string * int option) list

(** Average MSB overestimation (bits/signal) against reference positions
    (e.g. the hybrid flow's), over signals present in both. *)
val overhead_bits : result -> reference:(string * int) list -> float option

(** Summed wordlength, when every signal is bounded. *)
val total_bits : result -> int option
