(** One-shot candidate evaluation — the inner step of every wordlength
    search, factored out of {!Flow}: apply a per-signal dtype
    assignment, reset, run one stimulus set, read the monitors back.
    This is the entry point the parallel sweep engine drives, once per
    candidate point, on a private design instance. *)

(** The monitor read-back of one evaluation. *)
type metrics = {
  sqnr_db : float option;
      (** {!Flow.sqnr_db} at the probe ([None]: no samples) *)
  total_bits : int;  (** Σ n over all signals with a declared dtype *)
  overflow_count : int;  (** Σ overflow events over all signals *)
  probe_err_max : float;
      (** max |ε_p| at the probe; [0.] without a probe *)
  probe_values : Stats.Running.t option;
      (** copy of the probe's value monitor (mergeable) *)
  probe_err : Stats.Err_stats.t option;
      (** copy of the probe's error monitor (mergeable) *)
  counters : Trace.Counters.t option;
      (** event counters over this evaluation's run (only when requested
          with [~counters:true]; mergeable) *)
}

(** Σ n over the environment's typed signals. *)
val total_bits : Sim.Env.t -> int

(** Σ overflow events over the environment's signals. *)
val overflow_count : Sim.Env.t -> int

(** Retype exactly the named signals.  Raises [Invalid_argument] on an
    unknown name — a sweep candidate names its signals explicitly, so a
    miss is a generator bug, not a partial type definition. *)
val apply_assigns : Sim.Env.t -> (string * Fixpt.Dtype.t) list -> unit

(** [evaluate ~assigns ~probe design] applies [assigns], resets, runs
    once, and gathers {!metrics} (probe resolution as {!Flow.sqnr_db_at}:
    unknown probe raises).  [on_run] is invoked after the simulation —
    callers that count monitored runs (e.g. {!Flow.refine}-style
    drivers) hook their counter here.

    [counters:true] attaches a fresh {!Trace.Counters} sink for exactly
    this evaluation's run (reset-hook initialization included, like the
    env monitors) and returns it in [metrics.counters]; a sink the
    caller had attached is restored afterwards. *)
val evaluate :
  ?assigns:(string * Fixpt.Dtype.t) list ->
  ?probe:string ->
  ?on_run:(unit -> unit) ->
  ?counters:bool ->
  Flow.design ->
  metrics

(** What a workload must provide for its candidates to be evaluated on
    the compiled executor instead of the clock-true simulator. *)
type compiled_eval = {
  extract : unit -> Sfg.Graph.t;
      (** record one cycle of the (just reset, freshly retyped) design
          and return its closed flowgraph — called once per evaluation
          so the candidate's quantizers are fused into the program *)
  cycles : int;  (** stimulus length of one run *)
  stimulus : seed:int -> string -> int -> float;
      (** [stimulus ~seed name step] — the {e same} sample the design's
          own [reset]/[run] pair would feed input node [name] at
          [step] under stimulus seed [seed]; must be pure in all three
          (partial application per seed may precompute) *)
}

(** The hook a content-addressed evaluation cache plugs into
    {!evaluate_compiled}.  The record decouples this library from the
    cache's storage ({!Serve.Cache} provides the standard store): the
    evaluator only computes keys and calls [lookup]/[insert].  A hook
    that raises is degraded to a miss (lookup) or a no-op (insert) — a
    broken cache must never fail an evaluation. *)
type cache = {
  context : string;
      (** caller-pinned disambiguator folded into every key: evaluator
          version, fault plan, … — bump it to invalidate en masse *)
  lookup : string -> metrics option;
      (** [lookup key] — the previously inserted metrics, if any *)
  insert : string -> metrics -> unit;
      (** [insert key m] — record a freshly computed result *)
}

(** [cache_key ~design ~assigns ~probe ~seed ~cycles ~context] — the
    content address of one compiled evaluation: an MD5 hex digest over
    canonical JSON assembling the extracted graph's
    {!Sfg.Graph.canonical_json} ([design]), the explicit assignment
    list, the probe, the stimulus seed, the run length, and the
    caller's [context] string.  Deterministic across processes and
    runs — equal inputs give equal keys, and any bit-level difference
    in a numeric parameter changes the graph JSON and hence the key. *)
val cache_key :
  design:string ->
  assigns:(string * Fixpt.Dtype.t) list ->
  probe:string option ->
  seed:int ->
  cycles:int ->
  context:string ->
  string

(** [evaluate_compiled ~assigns ~probe ~seed ce design] — {!evaluate},
    but on the flat-schedule executor: apply [assigns], reset, extract
    the candidate's graph, {!Compile.compile} it (dual-lattice), run
    [ce.cycles] ticks of [ce.stimulus ~seed], and rebuild {!metrics}
    from the program's probe chain and fused overflow counters.

    For a design/probe whose recorded pipeline matches the clock-true
    monitors (no error injection at the probe, saturation annotations
    that never clamp on the run's stimulus), the metrics are
    bit-identical to {!evaluate}'s — the property the sweep determinism
    gate and [test_compile] rely on.

    Falls back to {!evaluate} (interpreted) when the extractor cannot
    close the design, compilation fails, or the probe cannot be located
    in the extracted graph.  [metrics.counters] is always [None]: a
    counter-attached evaluation observes env events the compiled run
    does not generate, so the pool routes [~counters:true] requests to
    the interpreter.

    [?cache] short-circuits the compile-and-run on a content-address
    hit (see {!cache}); misses are inserted after computing.  The
    interpreter fallback is never cached — its inputs are not captured
    by the key. *)
val evaluate_compiled :
  ?assigns:(string * Fixpt.Dtype.t) list ->
  ?probe:string ->
  ?cache:cache ->
  seed:int ->
  compiled_eval ->
  Flow.design ->
  metrics
