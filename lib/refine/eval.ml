(** One-shot candidate evaluation — the inner step of every wordlength
    search, factored out of {!Flow} so sweep engines (and the
    literature baselines) can re-simulate a design under many type
    assignments without re-running the whole refinement loop.

    A "candidate" is a set of per-signal dtype assignments; evaluating
    it means: apply the types, reset the design, run one full stimulus
    set, and read the monitors back as a flat {!metrics} record.  The
    evaluation is deterministic: the same design state and the same
    assignment always yield the same metrics (the simulation RNG is
    rewound by the design's [reset]). *)

(** The monitor read-back of one evaluation.  All fields come from the
    design's own per-signal monitors after a single run. *)
type metrics = {
  sqnr_db : float option;
      (** {!Flow.sqnr_db} at the probe; [None] when the probe recorded
          no samples, [Some infinity] when it is noise-free *)
  total_bits : int;  (** Σ n over all signals with a declared dtype *)
  overflow_count : int;  (** Σ overflow events over all signals *)
  probe_err_max : float;
      (** max |ε_p| at the probe; [0.] without a probe *)
  probe_values : Stats.Running.t option;
      (** copy of the probe's value monitor (mergeable) *)
  probe_err : Stats.Err_stats.t option;
      (** copy of the probe's error monitor (mergeable) *)
  counters : Trace.Counters.t option;
      (** event counters over this evaluation's run (only when requested
          with [~counters:true]; mergeable) *)
}

let total_bits env =
  List.fold_left
    (fun acc s ->
      match Sim.Signal.dtype s with
      | Some dt -> acc + Fixpt.Dtype.n dt
      | None -> acc)
    0 (Sim.Env.signals env)

let overflow_count env =
  List.fold_left
    (fun acc s -> acc + Sim.Signal.overflows s)
    0 (Sim.Env.signals env)

(** Apply per-signal dtype assignments.  Unlike {!Flow.apply_types}
    (which merges derived types into a designer's partial definition),
    a sweep candidate names exactly the signals it retypes, so an
    unknown signal name is a bug in the candidate generator and raises
    [Invalid_argument]. *)
let apply_assigns env assigns =
  List.iter
    (fun (name, dt) -> Sim.Signal.set_dtype (Sim.Env.find_exn env name) dt)
    assigns

let evaluate ?(assigns = []) ?probe ?on_run ?(counters = false)
    (design : Flow.design) =
  apply_assigns design.Flow.env assigns;
  (* a requested counter set observes exactly this evaluation — reset
     hooks (initialization assigns) included, like the env monitors; it
     is detached before the monitors are read back, and any sink the
     caller attached is restored *)
  let prev_sink =
    if counters then Some (Sim.Env.sink design.Flow.env) else None
  in
  let ctr =
    if counters then begin
      let c = Trace.Counters.create () in
      Sim.Env.set_sink design.Flow.env (Trace.Counters.sink c);
      Some c
    end
    else None
  in
  design.Flow.reset ();
  design.Flow.run ();
  (match prev_sink with
  | Some s -> Sim.Env.set_sink design.Flow.env s
  | None -> ());
  (match on_run with Some f -> f () | None -> ());
  let env = design.Flow.env in
  let probe_entry = Option.map (Sim.Env.find_exn env) probe in
  {
    sqnr_db = Option.bind probe_entry Flow.sqnr_db;
    total_bits = total_bits env;
    overflow_count = overflow_count env;
    probe_err_max =
      (match probe_entry with
      | Some e ->
          Stats.Running.max_abs
            (Stats.Err_stats.produced (Sim.Signal.err_stats e))
      | None -> 0.0);
    probe_values =
      Option.map
        (fun e -> Stats.Running.copy (Sim.Signal.range_stats e))
        probe_entry;
    probe_err =
      Option.map
        (fun e -> Stats.Err_stats.copy (Sim.Signal.err_stats e))
        probe_entry;
    counters = ctr;
  }
