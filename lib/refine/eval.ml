(** One-shot candidate evaluation — the inner step of every wordlength
    search, factored out of {!Flow} so sweep engines (and the
    literature baselines) can re-simulate a design under many type
    assignments without re-running the whole refinement loop.

    A "candidate" is a set of per-signal dtype assignments; evaluating
    it means: apply the types, reset the design, run one full stimulus
    set, and read the monitors back as a flat {!metrics} record.  The
    evaluation is deterministic: the same design state and the same
    assignment always yield the same metrics (the simulation RNG is
    rewound by the design's [reset]). *)

(** The monitor read-back of one evaluation.  All fields come from the
    design's own per-signal monitors after a single run. *)
type metrics = {
  sqnr_db : float option;
      (** {!Flow.sqnr_db} at the probe; [None] when the probe recorded
          no samples, [Some infinity] when it is noise-free *)
  total_bits : int;  (** Σ n over all signals with a declared dtype *)
  overflow_count : int;  (** Σ overflow events over all signals *)
  probe_err_max : float;
      (** max |ε_p| at the probe; [0.] without a probe *)
  probe_values : Stats.Running.t option;
      (** copy of the probe's value monitor (mergeable) *)
  probe_err : Stats.Err_stats.t option;
      (** copy of the probe's error monitor (mergeable) *)
  counters : Trace.Counters.t option;
      (** event counters over this evaluation's run (only when requested
          with [~counters:true]; mergeable) *)
}

let total_bits env =
  List.fold_left
    (fun acc s ->
      match Sim.Signal.dtype s with
      | Some dt -> acc + Fixpt.Dtype.n dt
      | None -> acc)
    0 (Sim.Env.signals env)

let overflow_count env =
  List.fold_left
    (fun acc s -> acc + Sim.Signal.overflows s)
    0 (Sim.Env.signals env)

(** Apply per-signal dtype assignments.  Unlike {!Flow.apply_types}
    (which merges derived types into a designer's partial definition),
    a sweep candidate names exactly the signals it retypes, so an
    unknown signal name is a bug in the candidate generator and raises
    [Invalid_argument]. *)
let apply_assigns env assigns =
  List.iter
    (fun (name, dt) -> Sim.Signal.set_dtype (Sim.Env.find_exn env name) dt)
    assigns

let evaluate ?(assigns = []) ?probe ?on_run ?(counters = false)
    (design : Flow.design) =
  apply_assigns design.Flow.env assigns;
  (* a requested counter set observes exactly this evaluation — reset
     hooks (initialization assigns) included, like the env monitors; it
     is detached before the monitors are read back, and any sink the
     caller attached is restored *)
  let prev_sink =
    if counters then Some (Sim.Env.sink design.Flow.env) else None
  in
  let ctr =
    if counters then begin
      let c = Trace.Counters.create () in
      Sim.Env.set_sink design.Flow.env (Trace.Counters.sink c);
      Some c
    end
    else None
  in
  design.Flow.reset ();
  design.Flow.run ();
  (match prev_sink with
  | Some s -> Sim.Env.set_sink design.Flow.env s
  | None -> ());
  (match on_run with Some f -> f () | None -> ());
  let env = design.Flow.env in
  let probe_entry = Option.map (Sim.Env.find_exn env) probe in
  {
    sqnr_db = Option.bind probe_entry Flow.sqnr_db;
    total_bits = total_bits env;
    overflow_count = overflow_count env;
    probe_err_max =
      (match probe_entry with
      | Some e ->
          Stats.Running.max_abs
            (Stats.Err_stats.produced (Sim.Signal.err_stats e))
      | None -> 0.0);
    probe_values =
      Option.map
        (fun e -> Stats.Running.copy (Sim.Signal.range_stats e))
        probe_entry;
    probe_err =
      Option.map
        (fun e -> Stats.Err_stats.copy (Sim.Signal.err_stats e))
        probe_entry;
    counters = ctr;
  }

(* --- compiled evaluation ----------------------------------------------- *)

type compiled_eval = {
  extract : unit -> Sfg.Graph.t;
  cycles : int;
  stimulus : seed:int -> string -> int -> float;
}

(* --- the evaluation cache hook ----------------------------------------- *)

type cache = {
  context : string;
  lookup : string -> metrics option;
  insert : string -> metrics -> unit;
}

(* The key source is itself canonical JSON over the canonical-JSON
   pieces: the extracted graph (quantizers fused, so the candidate's
   types are structurally part of it), the explicit assignment list
   (guards against two candidates whose graphs coincide but whose env
   assignment sets differ, e.g. signals outside the extracted cone),
   the probe, the stimulus seed and run length, and the caller-pinned
   context (evaluator version, fault plan).  MD5 over that string is
   the content address. *)
let cache_key ~design ~assigns ~probe ~seed ~cycles ~context =
  let b = Buffer.create (String.length design + 256) in
  Buffer.add_string b "{\"design\": ";
  Buffer.add_string b design;
  Buffer.add_string b ", \"assigns\": [";
  List.iteri
    (fun i (name, dt) ->
      if i > 0 then Buffer.add_string b ", ";
      Buffer.add_string b
        (Printf.sprintf "{\"signal\": %S, \"dtype\": %S}" name
           (Fixpt.Dtype.to_string dt)))
    assigns;
  Buffer.add_string b
    (Printf.sprintf "], \"probe\": %s, \"seed\": %d, \"cycles\": %d, \
                     \"context\": %S}"
       (match probe with Some p -> Printf.sprintf "%S" p | None -> "null")
       seed cycles context);
  Digest.to_hex (Digest.string (Buffer.contents b))

(* Internal: any condition that sends the evaluation back to the
   clock-true interpreter. *)
exception Fallback

(* Locate the probe's monitor points in the extracted graph.  The
   recorded assignment pipeline is [expr → name_q (Quantize, if typed)
   → name_sat (Saturate, if annotated) → name (Alias/Delay)]; the env
   monitors observe the {e incoming} expression value ([pre], the range
   monitor and the consumed error) and the {e post-cast} value ([post],
   the produced error) — the saturation annotation never clamps at
   assignment time, so it is peeled. *)
let probe_monitors g prog probe =
  match Compile.find prog probe with
  | None -> None
  | Some pid -> (
      let nd = Sfg.Graph.node g pid in
      match (nd.Sfg.Node.op, nd.Sfg.Node.inputs) with
      | (Sfg.Node.Alias | Sfg.Node.Delay _), [ src ] -> (
          let src =
            let s = Sfg.Graph.node g src in
            match (s.Sfg.Node.op, s.Sfg.Node.inputs) with
            | Sfg.Node.Saturate _, [ inner ]
              when String.equal s.Sfg.Node.name (probe ^ "_sat") ->
                inner
            | _ -> src
          in
          let post = Sfg.Graph.node g src in
          match (post.Sfg.Node.op, post.Sfg.Node.inputs) with
          | Sfg.Node.Quantize _, [ pre ]
            when String.equal post.Sfg.Node.name (probe ^ "_q") ->
              Some (pre, src)
          | _ -> Some (src, src))
      | _ -> None)

let evaluate_compiled ?(assigns = []) ?probe ?cache ~seed (ce : compiled_eval)
    (design : Flow.design) =
  try
    apply_assigns design.Flow.env assigns;
    design.Flow.reset ();
    let g = ce.extract () in
    (* cache consult: the key needs only the extracted graph (cheap, one
       recorded cycle), not the compile or the run — those are what a
       hit skips.  A cache that raises degrades to a miss/no-insert;
       it must never fail an evaluation. *)
    let key =
      match cache with
      | None -> None
      | Some c ->
          Some
            (cache_key
               ~design:(Sfg.Graph.canonical_json g)
               ~assigns ~probe ~seed ~cycles:ce.cycles ~context:c.context)
    in
    let hit =
      match (cache, key) with
      | Some c, Some k -> ( try c.lookup k with _ -> None)
      | _ -> None
    in
    match hit with
    | Some m -> m
    | None ->
    let prog = Compile.compile ~dual:true g in
    let pm =
      match probe with
      | None -> None
      | Some p -> (
          match probe_monitors g prog p with
          | Some pm -> Some pm
          | None -> raise Fallback)
    in
    let vals = Stats.Running.create () in
    let errs = Stats.Err_stats.create () in
    let stim = ce.stimulus ~seed in
    let inputs name = fun ~lane:_ step -> stim name step in
    let on_step =
      Option.map
        (fun (pre, post) _step ->
          let fxpre = Compile.value prog ~id:pre ~lane:0 in
          let flpre = Compile.value_ref prog ~id:pre ~lane:0 in
          let fxpost = Compile.value prog ~id:post ~lane:0 in
          Stats.Running.add vals fxpre;
          Stats.Err_stats.record errs ~consumed:(flpre -. fxpre)
            ~produced:(flpre -. fxpost))
        pm
    in
    Compile.run ?on_step prog ~steps:ce.cycles ~inputs;
    let env = design.Flow.env in
    let produced = Stats.Err_stats.produced errs in
    let m =
      {
        sqnr_db =
          (match pm with
          | None -> None
          | Some _ -> Flow.sqnr_db_of ~values:vals ~errors:produced);
        total_bits = total_bits env;
        overflow_count = Compile.overflow_count prog;
        probe_err_max =
          (match pm with
          | None -> 0.0
          | Some _ -> Stats.Running.max_abs produced);
        probe_values = (match pm with None -> None | Some _ -> Some vals);
        probe_err = (match pm with None -> None | Some _ -> Some errs);
        counters = None;
      }
    in
    (match (cache, key) with
    | Some c, Some k -> ( try c.insert k m with _ -> ())
    | _ -> ());
    m
  with Compile.Cannot_compile _ | Invalid_argument _ | Not_found | Fallback
  ->
    (* interpreter fallback is never cached: its key would need the
       un-extractable design itself *)
    evaluate ~assigns ?probe design
