(** LSB-side refinement rules (§5.2): place fractional bits with the
    σ-rule [2^p ≤ k_LSB·σ(ε_p)], decide round vs floor, detect
    float/fixed divergence on sensitive feedback signals (to be broken
    with [error()]), and check already-quantized signals' consumed vs
    produced precision. *)

type config = {
  k_lsb : float;  (** the σ-rule constant, optimal in [1, 4] *)
  divergence_ratio : float;
      (** diverged when m̂(ε_p) exceeds this fraction of the signal's own
          magnitude *)
  floor_bias_ratio : float;
      (** recommend floor only if q/2 ≤ this · k·σ *)
  min_lsb : int;  (** floor on positions *)
  exact_grid_floor : int;
      (** coarsest-allowed position for exact-grid constants (how finely
          to quantize coefficients is a transfer-function choice) *)
}

(** The paper's constants: [k_lsb = 1.0], divergence at 1%. *)
val default_config : config

(** Largest [p] with [2^p ≤ k·σ]; [None] for σ ≤ 0. *)
val sigma_rule : k_lsb:float -> float -> int option

(** Error monitoring diverged on this signal (§4.2). *)
val diverged : ?config:config -> Sim.Signal.t -> bool

(** LSB position for one signal from its monitors. *)
val decide : ?config:config -> Sim.Signal.t -> Decision.lsb

(** {!decide} over every eligible signal. *)
val decide_all : ?config:config -> Sim.Env.t -> Decision.lsb list

(** Diverged, not-yet-overruled signals — candidates for [error()]. *)
val diverged_signals : ?config:config -> Sim.Env.t -> Sim.Signal.t list

(** Overruled signals showing precision {e gain} across the assignment
    (injected error model under-estimates the loop error). *)
val instability_suspects : Sim.Env.t -> Sim.Signal.t list

(** Half-step of LSB position [p] — the [error()] half-width modelling
    quantization at [p] (paper: LSB −5 ↔ [error(0.0156)]). *)
val error_halfwidth_of_lsb : int -> float
