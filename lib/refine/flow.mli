(** The refinement design flow (§5, Fig. 4): drives the whole
    floating-point → fixed-point loop on a simulatable design — MSB
    phase (iterating on range explosions, auto-applying [range()]), LSB
    phase (iterating on divergences, auto-applying [error()] to the
    feedback roots), type synthesis, and a verification run. *)

type design = {
  env : Sim.Env.t;
  reset : unit -> unit;
      (** restart stimuli and clear dynamic state so [run] can repeat;
          must call [Sim.Env.reset] (annotations and dtypes survive) *)
  run : unit -> unit;  (** simulate one full stimulus set *)
}

type action =
  | Range_annotated of string * float * float
  | Error_annotated of string * float

type iteration = {
  index : int;
  phase : [ `Msb | `Lsb ];
  exploded : string list;
  diverged : string list;
  actions : action list;
}

type config = {
  msb : Msb_rules.config;
  lsb : Lsb_rules.config;
  max_iterations : int;
  range_guard : float;
      (** widening factor on the observed range when auto-annotating an
          exploded feedback signal *)
  error_overrides : (string * float) list;
      (** designer-chosen [error()] half-widths per signal *)
  auto_error_lsb : int;
      (** LSB position of automatic [error()] overruling (paper: tie it
          to the input precision) *)
}

(** The paper's settings: §4/§5 rule defaults, 8 iterations max. *)
val default_config : config

type result = {
  msb_decisions : Decision.msb list;
  lsb_decisions : Decision.lsb list;
  iterations : iteration list;
  msb_iterations : int;
  lsb_iterations : int;
  simulation_runs : int;
  sqnr_before_db : float option;
      (** at the probe, with only the partial (input) types *)
  sqnr_after_db : float option;  (** after all signals quantized *)
  types : (string * Fixpt.Dtype.t) list;  (** derived signal types *)
}

(** SQNR estimate at a monitored signal from its own value/error
    statistics (valid because both are gathered over the same run).

    Contract: [None] means the signal has recorded {e no samples yet}
    (nothing was assigned to it since the last reset) — never "unknown
    signal".  A noise-free probe yields [Some infinity]. *)
val sqnr_db : Sim.Signal.t -> float option

(** [sqnr_db_at env name] resolves [name] and applies {!sqnr_db}.

    Raises [Invalid_argument] when [name] is not a registered signal —
    a misspelt probe fails loudly instead of dissolving into the same
    [None] as "no samples yet".  This is also the lookup {!refine} uses
    for its [sqnr_signal] probe. *)
val sqnr_db_at : Sim.Env.t -> string -> float option

(** The formula under {!sqnr_db}, over explicit monitors: signal power
    from [values] (variance + mean², the second raw moment), noise
    power likewise from [errors].  Exposed so the compiled evaluation
    path ({!Eval.evaluate_compiled}) computes bit-identical SQNR from
    its own probe accumulators. *)
val sqnr_db_of :
  values:Stats.Running.t -> errors:Stats.Running.t -> float option

(** Apply derived types; pre-existing designer types are preserved
    unless [overwrite]. *)
val apply_types :
  ?overwrite:bool -> Sim.Env.t -> (string * Fixpt.Dtype.t) list -> unit

(** Run the complete flow.  [sqnr_signal] names the performance probe;
    an unknown name raises [Invalid_argument] (see {!sqnr_db_at}). *)
val refine : ?config:config -> ?sqnr_signal:string -> design -> result

(** Renders the annotation as source text, e.g. [b.range(-0.2, 0.2)]. *)
val pp_action : Format.formatter -> action -> unit

(** One flow-iteration summary line. *)
val pp_iteration : Format.formatter -> iteration -> unit
