(** Table-formatted refinement reports, in the layout of the paper's
    Tables 1 (MSB analysis) and 2 (LSB analysis). *)

type msb_row

(** Render one signal's MSB decision as a table row. *)
val msb_row : Sim.Signal.t -> Decision.msb -> msb_row

(** The paper's Table-1-style MSB table. *)
val pp_msb_table : Format.formatter -> msb_row list -> unit

type lsb_row

(** Render one signal's LSB decision as a table row. *)
val lsb_row : Sim.Signal.t -> Decision.lsb -> lsb_row

(** The paper's Table-2-style LSB table. *)
val pp_lsb_table : Format.formatter -> lsb_row list -> unit

(** Decide and render every signal's MSB row. *)
val msb_table : ?config:Msb_rules.config -> Sim.Env.t -> msb_row list

(** Decide and render every signal's LSB row. *)
val lsb_table : ?config:Lsb_rules.config -> Sim.Env.t -> lsb_row list

(** {!msb_table} to stdout. *)
val print_msb : ?config:Msb_rules.config -> Sim.Env.t -> unit

(** {!lsb_table} to stdout. *)
val print_lsb : ?config:Lsb_rules.config -> Sim.Env.t -> unit

(** One-line summary: signal/saturated/exploded counts, total bits. *)
val summary : Sim.Env.t -> Decision.msb list -> Decision.lsb list -> string
