(** The refinement design flow (§5, Fig. 4).

    Drives the whole floating-point → fixed-point loop on a simulatable
    design:

    {v
      input stimuli + partial type definition
        │
        ▼
      simulation (range + error monitoring)  ◀────────────┐
        │                                                 │
        ├─ MSB explosion for signal x ──▶ x.range(lo,hi) ─┤
        ├─ LSB divergence for signal x ──▶ x.error(h) ────┘
        ▼
      MSB & LSB analysis ──▶ fixed-point types ──▶ performance check
    v}

    The MSB and LSB sides iterate independently; on both paper examples
    the MSB side settles in two iterations and the LSB side in one plus
    possibly an [error()] overruling pass — the convergence claim this
    library's benches reproduce. *)

type design = {
  env : Sim.Env.t;
  reset : unit -> unit;
      (** restart stimuli and clear dynamic state so [run] can repeat;
          must call [Sim.Env.reset] (annotations and dtypes survive) *)
  run : unit -> unit;  (** simulate one full stimulus set *)
}

type action =
  | Range_annotated of string * float * float
      (** applied [range(lo, hi)] to break an MSB explosion *)
  | Error_annotated of string * float
      (** applied [error(h)] to break an LSB divergence *)

type iteration = {
  index : int;
  phase : [ `Msb | `Lsb ];
  exploded : string list;
  diverged : string list;
  actions : action list;
}

type config = {
  msb : Msb_rules.config;
  lsb : Lsb_rules.config;
  max_iterations : int;
  range_guard : float;
      (** widening factor on the observed range when the flow has to
          auto-annotate an exploded feedback signal *)
  error_overrides : (string * float) list;
      (** designer-chosen [error()] half-widths per signal name *)
  auto_error_lsb : int;
      (** LSB position used for automatic [error()] overruling when no
          override is given (paper: tie it to the input precision) *)
}

let default_config =
  {
    msb = Msb_rules.default_config;
    lsb = Lsb_rules.default_config;
    max_iterations = 8;
    range_guard = 1.5;
    error_overrides = [];
    auto_error_lsb = -10;
  }

type result = {
  msb_decisions : Decision.msb list;
  lsb_decisions : Decision.lsb list;
  iterations : iteration list;
  msb_iterations : int;
  lsb_iterations : int;
  simulation_runs : int;  (** total monitored simulations executed *)
  sqnr_before_db : float option;
      (** SQNR at the probe with only the partial (input) types *)
  sqnr_after_db : float option;  (** SQNR after all signals quantized *)
  types : (string * Fixpt.Dtype.t) list;  (** derived signal types *)
}

let src = Logs.Src.create "fixrefine.flow" ~doc:"refinement design flow"

module Log = (val Logs.src_log src)

(** SQNR estimate at a monitored signal, from its own statistics: signal
    power from the value monitor, noise power from the produced-error
    monitor (valid because both are gathered over the same run).
    [None] means "no samples recorded yet", never "no such signal" —
    name resolution is {!sqnr_db_at}'s job. *)
let sqnr_db_of ~values ~errors =
  if Stats.Running.count values = 0 then None
  else
    let p_signal =
      Stats.Running.variance values +. (Stats.Running.mean values ** 2.0)
    in
    let p_noise =
      Stats.Running.variance errors +. (Stats.Running.mean errors ** 2.0)
    in
    if p_noise <= 0.0 then Some Float.infinity
    else Some (10.0 *. Float.log10 (p_signal /. p_noise))

let sqnr_db (s : Sim.Signal.t) =
  sqnr_db_of
    ~values:(Sim.Signal.range_stats s)
    ~errors:(Stats.Err_stats.produced (Sim.Signal.err_stats s))

(** Name-resolving variant.  A misspelt probe used to dissolve into a
    silent [None] (indistinguishable from "signal never assigned"); now
    an unknown name raises [Invalid_argument] via {!Sim.Env.find_exn}
    and [None] is reserved for "no samples yet". *)
let sqnr_db_at env name = sqnr_db (Sim.Env.find_exn env name)

(* One monitored simulation.  When span collection is on, each run is a
   wall-clock span labelled by its role in the flow ("baseline",
   "msb run 2", "verify", …); disabled, the clock is never read. *)
let simulate ?(label = "sim") design runs =
  let spanned = Trace.Spans.enabled () in
  let t0 = if spanned then Trace.Spans.now () else 0.0 in
  design.reset ();
  design.run ();
  incr runs;
  if spanned then
    Trace.Spans.record ~cat:"refine" ~name:label ~t0 ~t1:(Trace.Spans.now ())
      ()

(* Phase boundary: wrap [f] in a span named after the phase. *)
let phase_span name args f =
  if Trace.Spans.enabled () then begin
    let t0 = Trace.Spans.now () in
    let r = f () in
    Trace.Spans.record ~cat:"refine" ~name ~args:(args r)
      ~t0 ~t1:(Trace.Spans.now ()) ();
    r
  end
  else f ()

(* --- MSB phase --------------------------------------------------------- *)

(* Feedback sources among exploded signals: annotate registered signals
   first; combinational explosions are consequences and usually resolve
   once their source is bounded. *)
let explosion_sources env =
  let exploded = Msb_rules.exploded_signals env in
  let regs =
    List.filter (fun s -> Sim.Signal.kind s = Sim.Env.Registered) exploded
  in
  let unannotated =
    List.filter (fun s -> Sim.Signal.explicit_range s = None)
  in
  match unannotated regs with [] -> unannotated exploded | rs -> rs

let auto_range config s =
  match Sim.Signal.stat_range s with
  | Some (lo, hi) when lo < hi || lo <> 0.0 ->
      let m = Float.max (Float.abs lo) (Float.abs hi) in
      let m = if m = 0.0 then 1.0 else m *. config.range_guard in
      (-.m, m)
  | _ -> (-1.0, 1.0)

let run_msb_phase config design runs iterations =
  let env = design.env in
  let rec loop i =
    (* the flow's first monitored run doubles as the baseline *)
    simulate
      ~label:(if i = 1 then "baseline" else Printf.sprintf "msb run %d" i)
      design runs;
    let exploded = List.map Sim.Signal.name (Msb_rules.exploded_signals env) in
    let sources = explosion_sources env in
    if sources = [] || i >= config.max_iterations then begin
      iterations :=
        { index = i; phase = `Msb; exploded; diverged = []; actions = [] }
        :: !iterations;
      i
    end
    else begin
      let actions =
        List.map
          (fun s ->
            let lo, hi = auto_range config s in
            Sim.Signal.range s lo hi;
            Log.info (fun m ->
                m "MSB explosion on %s: applying range(%g, %g)"
                  (Sim.Signal.name s) lo hi);
            Range_annotated (Sim.Signal.name s, lo, hi))
          sources
      in
      iterations :=
        { index = i; phase = `Msb; exploded; diverged = []; actions }
        :: !iterations;
      loop (i + 1)
    end
  in
  loop 1

(* --- LSB phase --------------------------------------------------------- *)

let error_halfwidth config s =
  match List.assoc_opt (Sim.Signal.name s) config.error_overrides with
  | Some h -> h
  | None -> Lsb_rules.error_halfwidth_of_lsb config.auto_error_lsb

(* Roots of an error-monitoring divergence: the feedback states.  §5.2:
   "feedback signals should be identified and set to explicit LSB
   behaviour through applying the error method if they cause the
   floating-point/fixed-point divergence" — so overrule every diverged
   registered signal (combinational divergence is a downstream symptom
   and resolves once its sources are anchored).  When no register is
   involved, fall back to the single worst combinational signal. *)
let divergence_roots diverged =
  let err s =
    Stats.Running.max_abs (Stats.Err_stats.produced (Sim.Signal.err_stats s))
  in
  match
    List.filter (fun s -> Sim.Signal.kind s = Sim.Env.Registered) diverged
  with
  | _ :: _ as regs -> regs
  | [] -> (
      match
        List.fold_left
          (fun best s ->
            match best with
            | None -> Some s
            | Some b -> if err s > err b then Some s else best)
          None diverged
      with
      | Some s -> [ s ]
      | None -> [])

let run_lsb_phase config design runs iterations =
  let env = design.env in
  (* the first analysis pass reuses the MSB phase's final run: range and
     error monitoring happen in the same simulation (§4) *)
  let rec loop i ~need_run =
    if need_run then
      simulate ~label:(Printf.sprintf "lsb run %d" i) design runs;
    let diverged = Lsb_rules.diverged_signals ~config:config.lsb env in
    let names = List.map Sim.Signal.name diverged in
    if diverged = [] || i >= config.max_iterations then begin
      iterations :=
        { index = i; phase = `Lsb; exploded = []; diverged = names;
          actions = [] }
        :: !iterations;
      i
    end
    else begin
      let actions =
        List.map
          (fun s ->
            let h = error_halfwidth config s in
            Sim.Signal.error s h;
            Log.info (fun m ->
                m "LSB divergence on %s: applying error(%g)"
                  (Sim.Signal.name s) h);
            Error_annotated (Sim.Signal.name s, h))
          (divergence_roots diverged)
      in
      iterations :=
        { index = i; phase = `Lsb; exploded = []; diverged = names; actions }
        :: !iterations;
      loop (i + 1) ~need_run:true
    end
  in
  loop 1 ~need_run:false

(* --- type synthesis ---------------------------------------------------- *)

let derive_types (msbs : Decision.msb list) (lsbs : Decision.lsb list) =
  List.filter_map
    (fun (m : Decision.msb) ->
      match
        List.find_opt
          (fun (l : Decision.lsb) ->
            String.equal l.Decision.signal m.Decision.signal)
          lsbs
      with
      | None -> None
      | Some l -> (
          match Decision.to_dtype ~msb:m ~lsb:l () with
          | Some dt -> Some (m.Decision.signal, dt)
          | None -> None))
    msbs

(** Apply derived types to the design's signals.  Pre-existing types
    (the designer's partial definition) are preserved unless
    [overwrite] is set. *)
let apply_types ?(overwrite = false) env types =
  List.iter
    (fun s ->
      match List.assoc_opt (Sim.Signal.name s) types with
      | Some dt when overwrite || Sim.Signal.dtype s = None ->
          Sim.Signal.set_dtype s dt
      | _ -> ())
    (Sim.Env.signals env)

(* --- the full flow ----------------------------------------------------- *)

(** Run the complete refinement flow on [design].

    [sqnr_signal] names the performance probe (the paper measures the
    equalized sample).  Phases: MSB refinement (iterating on explosions),
    LSB refinement (iterating on divergences), type synthesis, and a
    verification run with every signal quantized. *)
let refine ?(config = default_config) ?sqnr_signal design =
  let runs = ref 0 in
  let iterations = ref [] in
  let env = design.env in
  let iter_args n = [ ("iterations", string_of_int n) ] in
  (* Phase 1: MSB *)
  let msb_iterations =
    phase_span "msb-phase" iter_args (fun () ->
        run_msb_phase config design runs iterations)
  in
  let msb_decisions = Msb_rules.decide_all ~config:config.msb env in
  (* Phase 2: LSB (error statistics come from the same monitored runs;
     re-run only to resolve divergences) *)
  let lsb_iterations =
    phase_span "lsb-phase" iter_args (fun () ->
        run_lsb_phase config design runs iterations)
  in
  let lsb_decisions = Lsb_rules.decide_all ~config:config.lsb env in
  let sqnr_before = Option.bind sqnr_signal (sqnr_db_at env) in
  (* Phase 3: type synthesis + verification *)
  let types = derive_types msb_decisions lsb_decisions in
  apply_types env types;
  (* error() annotations stay on for verification: without them the
     float reference of a sensitive loop re-diverges and the check is
     meaningless (§4.2); the end-to-end quality check (SER, lock) is the
     caller's, on the design outputs *)
  simulate ~label:"verify" design runs;
  let sqnr_after = Option.bind sqnr_signal (sqnr_db_at env) in
  {
    msb_decisions;
    lsb_decisions;
    iterations = List.rev !iterations;
    msb_iterations;
    lsb_iterations;
    simulation_runs = !runs;
    sqnr_before_db = sqnr_before;
    sqnr_after_db = sqnr_after;
    types;
  }

let pp_action ppf = function
  | Range_annotated (n, lo, hi) ->
      Format.fprintf ppf "%s.range(%g, %g)" n lo hi
  | Error_annotated (n, h) -> Format.fprintf ppf "%s.error(%g)" n h

let pp_iteration ppf it =
  Format.fprintf ppf "[%s %d]" (match it.phase with `Msb -> "MSB" | `Lsb -> "LSB")
    it.index;
  if it.exploded <> [] then
    Format.fprintf ppf " exploded: %s" (String.concat ", " it.exploded);
  if it.diverged <> [] then
    Format.fprintf ppf " diverged: %s" (String.concat ", " it.diverged);
  if it.actions = [] then Format.fprintf ppf " (converged)"
  else
    Format.fprintf ppf " actions: %a"
      (Format.pp_print_list ~pp_sep:(fun p () -> Format.fprintf p "; ")
         pp_action)
      it.actions
