(** MSB-side refinement rules (§5.1): compare [F(stat)] with [F(prop)]
    per signal and decide position + overflow mode (cases (a)/(b)/(c)).
    A [range()]-annotated signal is decided saturated at the
    annotation's MSB (a designer assertion, not a guarantee — Table 1's
    "(st)" rows). *)

type config = {
  saturation_gap : int;
      (** bits of [F(prop) − F(stat)] at which case (b) is declared
          (explosion always is) *)
  guard_bits : int;  (** margin on F(stat) when saturating *)
  prefer_saturation_on_tradeoff : bool;  (** case (c) designer choice *)
}

(** The paper's constants: [k_msb = 1.0] sigma guard. *)
val default_config : config

(** [F] of a range pair ([None]: absent or unbounded). *)
val msb_of_range : (float * float) option -> int option

(** MSB position and overflow mode for one signal. *)
val decide : ?config:config -> Sim.Signal.t -> Decision.msb

(** {!decide} over every eligible signal. *)
val decide_all : ?config:config -> Sim.Env.t -> Decision.msb list

(** Signals whose propagated range exploded this run — candidates for a
    [range()] annotation before the next iteration (Fig. 4). *)
val exploded_signals : Sim.Env.t -> Sim.Signal.t list

(** Mean of [max 0 (prop − stat)] over decisions with both estimates —
    the §6.1 "0.22 bits per signal" metric. *)
val overhead_bits_per_signal : Decision.msb list -> float
