(** Closed-interval arithmetic over floats.

    This is the numeric substrate of both range-propagation techniques in
    the paper (§4.1): the *quasi-analytical* method (ranges flow through
    the overloaded operators during simulation) and the *analytical*
    method (the same propagation applied to a signal flow graph).

    Intervals are closed: [{lo; hi}] represents [[lo, hi]], [lo <= hi].
    Infinite endpoints are allowed — they are precisely what "MSB
    explosion" on a feedback loop looks like, and {!is_exploded} is how
    the refinement flow detects it.  The empty interval is represented by
    a dedicated constructor so that monitoring can start from "nothing
    observed yet" and [join] observations in. *)

type t =
  | Empty
  | Range of { lo : float; hi : float }

let empty = Empty

let make lo hi =
  if Float.is_nan lo || Float.is_nan hi then invalid_arg "Interval.make: nan";
  if lo > hi then
    invalid_arg (Printf.sprintf "Interval.make: lo (%g) > hi (%g)" lo hi);
  Range { lo; hi }

let of_point v = make v v
let entire = Range { lo = Float.neg_infinity; hi = Float.infinity }

let is_empty = function Empty -> true | Range _ -> false

let lo = function Empty -> invalid_arg "Interval.lo: empty" | Range r -> r.lo
let hi = function Empty -> invalid_arg "Interval.hi: empty" | Range r -> r.hi

let bounds = function
  | Empty -> None
  | Range r -> Some (r.lo, r.hi)

let equal a b =
  match (a, b) with
  | Empty, Empty -> true
  | Range a, Range b -> a.lo = b.lo && a.hi = b.hi
  | (Empty | Range _), _ -> false

let mem v = function
  | Empty -> false
  | Range r -> r.lo <= v && v <= r.hi

let subset a b =
  match (a, b) with
  | Empty, _ -> true
  | Range _, Empty -> false
  | Range a, Range b -> b.lo <= a.lo && a.hi <= b.hi

let width = function
  | Empty -> 0.0
  | Range r -> r.hi -. r.lo

(** Largest absolute value contained in the interval. *)
let mag = function
  | Empty -> 0.0
  | Range r -> Float.max (Float.abs r.lo) (Float.abs r.hi)

(** Union hull — used by the statistic and propagation monitors to
    accumulate observed/derived ranges over assignments
    ([c.min = MIN(c.min, a.min)] in the paper's table). *)
let join a b =
  match (a, b) with
  | Empty, x | x, Empty -> x
  | Range ra, Range rb ->
      (* one side already covers the other: reuse that block — monitors
         join every assignment and converge fast, so the steady state of
         the simulation hot path allocates nothing here *)
      if rb.lo >= ra.lo && rb.hi <= ra.hi then a
      else if ra.lo >= rb.lo && ra.hi <= rb.hi then b
      else Range { lo = Float.min ra.lo rb.lo; hi = Float.max ra.hi rb.hi }

let meet a b =
  match (a, b) with
  | Empty, _ | _, Empty -> Empty
  | Range a, Range b ->
      let lo = Float.max a.lo b.lo and hi = Float.min a.hi b.hi in
      if lo > hi then Empty else Range { lo; hi }

let add a b =
  match (a, b) with
  | Empty, _ | _, Empty -> Empty
  | Range a, Range b -> Range { lo = a.lo +. b.lo; hi = a.hi +. b.hi }

let neg = function
  | Empty -> Empty
  | Range r -> Range { lo = -.r.hi; hi = -.r.lo }

let sub a b = add a (neg b)

(* inf * 0 = nan under IEEE; for interval endpoints the correct
   convention is 0 (the zero endpoint wins). *)
let endpoint_mul x y =
  let p = x *. y in
  if Float.is_nan p then 0.0 else p

let mul a b =
  match (a, b) with
  | Empty, _ | _, Empty -> Empty
  | Range a, Range b ->
      let p1 = endpoint_mul a.lo b.lo
      and p2 = endpoint_mul a.lo b.hi
      and p3 = endpoint_mul a.hi b.lo
      and p4 = endpoint_mul a.hi b.hi in
      Range
        {
          lo = Float.min (Float.min p1 p2) (Float.min p3 p4);
          hi = Float.max (Float.max p1 p2) (Float.max p3 p4);
        }

(** Interval division.  If the divisor straddles zero the quotient is
    unbounded: we return {!entire} (the sound answer, and exactly the
    explosion signal the MSB analysis wants to see). *)
let div a b =
  match (a, b) with
  | Empty, _ | _, Empty -> Empty
  | Range _, Range bz when bz.lo <= 0.0 && bz.hi >= 0.0 -> entire
  | Range a, Range b ->
      let q1 = a.lo /. b.lo
      and q2 = a.lo /. b.hi
      and q3 = a.hi /. b.lo
      and q4 = a.hi /. b.hi in
      Range
        {
          lo = Float.min (Float.min q1 q2) (Float.min q3 q4);
          hi = Float.max (Float.max q1 q2) (Float.max q3 q4);
        }

let abs = function
  | Empty -> Empty
  | Range r ->
      if r.lo >= 0.0 then Range r
      else if r.hi <= 0.0 then Range { lo = -.r.hi; hi = -.r.lo }
      else Range { lo = 0.0; hi = Float.max (-.r.lo) r.hi }

let min_ a b =
  match (a, b) with
  | Empty, _ | _, Empty -> Empty
  | Range a, Range b ->
      Range { lo = Float.min a.lo b.lo; hi = Float.min a.hi b.hi }

let max_ a b =
  match (a, b) with
  | Empty, _ | _, Empty -> Empty
  | Range a, Range b ->
      Range { lo = Float.max a.lo b.lo; hi = Float.max a.hi b.hi }

(** Multiplication by a scalar. *)
let scale k = function
  | Empty -> Empty
  | Range r ->
      let a = endpoint_mul k r.lo and b = endpoint_mul k r.hi in
      Range { lo = Float.min a b; hi = Float.max a b }

(** [shift_left i k] multiplies by [2^k] ([k] may be negative).
    [ldexp] is the exact (and cheap) power of two. *)
let shift_left i k = scale (Float.ldexp 1.0 k) i

(** Clamp into another interval — the effect of a saturating assignment
    on a propagated range: saturation is what breaks feedback explosions
    (§4.1). *)
let clamp ~into:limits v =
  match (v, limits) with
  | Empty, _ -> Empty
  | _, Empty -> Empty
  | Range r, Range l ->
      (* already inside: reuse the block (hot-path common case) *)
      if r.lo >= l.lo && r.hi <= l.hi then v
      else
        let lo = Float.min (Float.max r.lo l.lo) l.hi
        and hi = Float.max (Float.min r.hi l.hi) l.lo in
        Range { lo; hi }

(** Widening: if [b] escapes [a] on a side, that side jumps to infinity.
    Standard abstract-interpretation device used by the analytical
    fixpoint ({!Sfg.Range_analysis}) to force termination on feedback
    loops — escaping to infinity is then reported as MSB explosion. *)
let widen a b =
  match (a, b) with
  | Empty, x -> x
  | x, Empty -> x
  | Range a, Range b ->
      Range
        {
          lo = (if b.lo < a.lo then Float.neg_infinity else a.lo);
          hi = (if b.hi > a.hi then Float.infinity else a.hi);
        }

(** Capped widening: like {!widen}, but an escaping side lands on the
    corresponding bound of [within] instead of infinity.  The degraded
    fallback of the analytical fixpoint: when a feedback range keeps
    growing, cap it at the declared ([range()]) bound and report the
    node as degraded rather than propagating an exploded interval
    through the rest of the graph. *)
let widen_within ~within a b =
  match within with
  | Empty -> widen a b
  | Range w -> (
      match (a, b) with
      | Empty, x -> x
      | x, Empty -> x
      | Range a, Range b ->
          Range
            {
              lo = (if b.lo < a.lo then Float.min a.lo w.lo else a.lo);
              hi = (if b.hi > a.hi then Float.max a.hi w.hi else a.hi);
            })

(** An interval with an infinite endpoint, or wider than [threshold]
    (default [2^64]), counts as exploded for MSB purposes. *)
let is_exploded ?(threshold = 1.8446744073709552e19) = function
  | Empty -> false
  | Range r ->
      Float.abs r.lo = Float.infinity
      || Float.abs r.hi = Float.infinity
      || Float.max (Float.abs r.lo) (Float.abs r.hi) > threshold

(** Grow by one observed value (statistic-based monitoring step). *)
let observe t v =
  if Float.is_nan v then t
  else
    match t with
    | Empty -> Range { lo = v; hi = v }
    | Range r ->
        (* already contained: reuse the block (hot-path common case) *)
        if r.lo <= v && v <= r.hi then t
        else Range { lo = Float.min r.lo v; hi = Float.max r.hi v }

let to_string = function
  | Empty -> "[]"
  | Range r -> Printf.sprintf "[%g, %g]" r.lo r.hi

let pp ppf t = Format.pp_print_string ppf (to_string t)
