(** Closed-interval arithmetic over floats — the numeric substrate of
    both range-propagation techniques in the paper (§4.1): the
    quasi-analytical method (ranges flowing through the overloaded
    operators during simulation) and the analytical method (the same
    propagation on a signal-flow graph).

    Infinite endpoints are allowed — they are what "MSB explosion" on a
    feedback loop looks like ({!is_exploded} detects it).  The empty
    interval represents "nothing observed yet". *)

type t = Empty | Range of { lo : float; hi : float }

val empty : t

(** Raises [Invalid_argument] on NaN or [lo > hi]. *)
val make : float -> float -> t

val of_point : float -> t

(** [[-∞, +∞]]. *)
val entire : t

val is_empty : t -> bool

(** Raise [Invalid_argument] on {!empty}. *)
val lo : t -> float

val hi : t -> float
val bounds : t -> (float * float) option
val equal : t -> t -> bool
val mem : float -> t -> bool
val subset : t -> t -> bool
val width : t -> float

(** Largest absolute value contained. *)
val mag : t -> float

(** Union hull — how monitors accumulate ranges over assignments. *)
val join : t -> t -> t

val meet : t -> t -> t
val add : t -> t -> t
val neg : t -> t
val sub : t -> t -> t
val mul : t -> t -> t

(** Sound division; a divisor straddling zero yields {!entire}. *)
val div : t -> t -> t

val abs : t -> t
val min_ : t -> t -> t
val max_ : t -> t -> t

(** Multiplication by a scalar. *)
val scale : float -> t -> t

(** Multiply by [2^k] ([k] may be negative). *)
val shift_left : t -> int -> t

(** Clamp into [into] — the effect of saturation on a propagated range;
    what breaks feedback explosions (§4.1). *)
val clamp : into:t -> t -> t

(** Widening: a side that escapes jumps to infinity.  Forces termination
    of the analytical fixpoint on feedback loops. *)
val widen : t -> t -> t

(** Capped widening: an escaping side lands on the corresponding bound
    of [within] (never tighter than the current bound) instead of
    infinity — the degraded "range exploded, capped to declared bound"
    fallback of {!Sfg.Range_analysis}.  Falls back to {!widen} when
    [within] is {!empty}. *)
val widen_within : within:t -> t -> t -> t

(** Infinite endpoint or wider than [threshold] (default [2^64]):
    counts as an MSB explosion. *)
val is_exploded : ?threshold:float -> t -> bool

(** Grow by one observed value (statistic monitoring; NaN ignored). *)
val observe : t -> float -> t

val to_string : t -> string
val pp : Format.formatter -> t -> unit
