(** Executing a {!Plan}: arming environments, channels and sweep
    workloads with deterministic fault injection.

    Three attachment points, mirroring where real silicon gets hurt:

    - {e assignment site} ({!arm_env} / {!injector}): the
      {!Sim.Env.set_injector} hook transforms post-quantization values —
      SEU bitflips on the stored code, forced overflow events;
    - {e stimulus} ({!wrap_channel}): the channel's producer is wrapped
      to corrupt samples (NaN / ±∞ / denormal / extreme) or starve the
      stream;
    - {e sweep} ({!workload}): a {!Sweep.Workload.t} is wrapped so each
      candidate evaluation runs under the plan, keyed by the candidate's
      stimulus seed — the fault set per candidate is a pure function of
      [(plan, candidate)], independent of [--jobs].

    Every injected fault emits an [on_fault] sink event with a stable
    kind tag, so {!Trace.Counters} tallies faults per signal. *)

(* --- SEU bitflip -------------------------------------------------------- *)

(** [flip_bit dt ~bit v] — flip bit [bit] (0 = LSB) of [v]'s [n]-bit
    integer code under [dt] and re-wrap into the code window: the
    single-event-upset model for a fixed-point register of the ASIC
    target.  Identity for wordlengths beyond the exact int64 grid.
    Raises [Invalid_argument] when [bit] is outside [0, n). *)
let flip_bit dt ~bit v =
  let q = Fixpt.Quantize.of_dtype dt in
  if bit < 0 || bit >= Fixpt.Dtype.n dt then
    invalid_arg "Fault.Inject.flip_bit: bit out of range";
  if not q.Fixpt.Quantize.int64_path then v
  else
    let m = Int64.of_float (Float.round (v /. q.Fixpt.Quantize.step)) in
    let m = Int64.logxor m (Int64.shift_left 1L bit) in
    let m = Fixpt.Quantize.wrap_code (Fixpt.Dtype.fmt dt) m in
    Int64.to_float m *. q.Fixpt.Quantize.step

let apply_bitflip plan ~tag (e : Sim.Env.entry) fx =
  match e.Sim.Env.quant with
  | None -> fx  (* SEUs model fixed-point registers; floats are exempt *)
  | Some qz ->
      let q = qz.Sim.Env.q in
      if not q.Fixpt.Quantize.int64_path then fx
      else begin
        let dt = q.Fixpt.Quantize.cdt in
        let n = Fixpt.Dtype.n dt in
        let env = e.Sim.Env.env in
        let time = Sim.Env.time env in
        let key = e.Sim.Env.name ^ "/" ^ tag in
        let u = Plan.draw plan ~stream:"bitflip-bit" ~key ~index:time in
        let bit = min (n - 1) (int_of_float (u *. float_of_int n)) in
        (let snk = Sim.Env.sink env in
         if snk != Trace.Sink.null then
           snk.Trace.Sink.on_fault ~id:e.Sim.Env.id ~time ~kind:"bitflip");
        flip_bit dt ~bit fx
      end

(* --- forced overflow ---------------------------------------------------- *)

(* Pretend the quantizer overflowed: emit the fault event, push the
   out-of-range raw value through the policy (count / warn / raise /
   collect), and hand back the saturation bound — what the hardware
   would hold after the event. *)
let apply_force_overflow plan ~tag (e : Sim.Env.entry) fx =
  let env = e.Sim.Env.env in
  let time = Sim.Env.time env in
  let key = e.Sim.Env.name ^ "/" ^ tag in
  let above =
    Plan.draw plan ~stream:"force-overflow-dir" ~key ~index:time < 0.5
  in
  let raw, held =
    match e.Sim.Env.quant with
    | Some qz ->
        let q = qz.Sim.Env.q in
        if above then
          ((2.0 *. Float.abs q.Fixpt.Quantize.max_v) +. 1.0,
           q.Fixpt.Quantize.max_v)
        else
          (-.((2.0 *. Float.abs q.Fixpt.Quantize.min_v) +. 1.0),
           q.Fixpt.Quantize.min_v)
    | None ->
        let m = plan.Plan.extreme_mag in
        if above then (m, m) else (-.m, -.m)
  in
  ignore fx;
  (let snk = Sim.Env.sink env in
   if snk != Trace.Sink.null then
     snk.Trace.Sink.on_fault ~id:e.Sim.Env.id ~time ~kind:"force-overflow");
  (* the policy decides what a forced overflow does: Count/Warn keep
     going, Raise aborts, Collect records a fault_record *)
  Sim.Env.record_overflow env e raw;
  held

(* --- the injector hook -------------------------------------------------- *)

(** The {!Sim.Env.set_injector} closure for a plan under discriminator
    [tag] ("" standalone; the candidate stimulus seed in a sweep).
    Pure in [(entry, time)] — replayable anywhere. *)
let injector plan ~tag =
  fun (e : Sim.Env.entry) fx ->
    let time = Sim.Env.time e.Sim.Env.env in
    match Plan.assign_faults plan ~tag ~signal:e.Sim.Env.name ~time with
    | [] -> fx
    | kinds ->
        List.fold_left
          (fun fx kind ->
            match kind with
            | "bitflip" -> apply_bitflip plan ~tag e fx
            | "force-overflow" -> apply_force_overflow plan ~tag e fx
            | _ -> fx)
          fx kinds

let apply_policy plan env =
  match plan.Plan.on_overflow with
  | Plan.Keep -> ()
  | Plan.Force_raise -> Sim.Env.set_policy env Sim.Env.Raise
  | Plan.Force_collect -> Sim.Env.set_policy env Sim.Env.Collect

(** Arm an environment: apply the plan's overflow-policy override and
    install the assignment-site injector. *)
let arm_env plan ?(tag = "") env =
  apply_policy plan env;
  Sim.Env.set_injector env (injector plan ~tag)

(** Disarm the assignment-site injector (the policy override, if any,
    stays — reset it with {!Sim.Env.set_policy}). *)
let disarm_env env = Sim.Env.clear_injector env

(* --- stimulus corruption ------------------------------------------------ *)

(** Wrap a source channel's producer under the plan: samples are
    corrupted per the stimulus rates, and — when [starve_after] is set —
    the stream dries up after that many samples.  [strict] starvation
    raises {!Sim.Channel.Empty} (the crash path); the default degrades
    to silence (0.0).  Raises [Invalid_argument] on a channel with no
    producer. *)
let wrap_channel plan ?(tag = "") ?(strict = false) ch =
  match Sim.Channel.producer ch with
  | None -> invalid_arg "Fault.Inject.wrap_channel: channel has no producer"
  | Some f ->
      let name = Sim.Channel.name ch in
      let key = name ^ "/" ^ tag in
      Sim.Channel.set_producer ch
        (Some
           (fun i ->
             let starved =
               match plan.Plan.starve_after with
               | Some n -> i >= n && Plan.is_target plan name
               | None -> false
             in
             if starved then
               if strict then raise (Sim.Channel.Empty name) else 0.0
             else
               let v = f i in
               match Plan.stimulus_fault plan ~tag ~channel:name ~index:i with
               | None -> v
               | Some `Nan -> Float.nan
               | Some `Inf ->
                   if Plan.draw plan ~stream:"stim-inf-sign" ~key ~index:i
                      < 0.5
                   then Float.infinity
                   else Float.neg_infinity
               | Some `Denormal ->
                   (* a genuine IEEE denormal: half the smallest normal *)
                   Float.min_float *. 0.5
               | Some `Extreme ->
                   if Plan.draw plan ~stream:"stim-extreme-sign" ~key ~index:i
                      < 0.5
                   then plan.Plan.extreme_mag
                   else -.plan.Plan.extreme_mag))

(* --- sweep workloads ---------------------------------------------------- *)

(** Wrap a sweep workload so every candidate evaluation runs under the
    plan.  Instances get the plan's policy override baked into their
    baseline snapshot (so each restore reapplies it), and the injector
    is armed only around [design.run], keyed by the candidate's
    stimulus seed — initialization replays (baseline restores, reset
    hooks) are injection-free, so the fault set of a candidate is a
    pure function of [(plan, candidate)] and never of which worker ran
    what before it. *)
let workload plan (w : Sweep.Workload.t) =
  {
    w with
    Sweep.Workload.make_instance =
      (fun () ->
        let inst = w.Sweep.Workload.make_instance () in
        let env = inst.Sweep.Workload.env in
        apply_policy plan env;
        let baseline = Sim.Env.snapshot env in
        let cur_tag = ref "" in
        let orig_run = inst.Sweep.Workload.design.Refine.Flow.run in
        let design =
          {
            inst.Sweep.Workload.design with
            Refine.Flow.run =
              (fun () ->
                Sim.Env.set_injector env (injector plan ~tag:!cur_tag);
                Fun.protect
                  ~finally:(fun () -> Sim.Env.clear_injector env)
                  orig_run);
          }
        in
        {
          inst with
          Sweep.Workload.design;
          baseline;
          set_seed =
            (fun s ->
              cur_tag := string_of_int s;
              inst.Sweep.Workload.set_seed s);
          (* the injector arms around [design.run] only: the compiled
             path skips that closure entirely, so a faulted workload
             must stay on the clock-true interpreter *)
          compiled = None;
        });
  }
