(** Executing a {!Plan}: arming environments, channels and sweep
    workloads with deterministic fault injection.

    Every injected fault emits an [on_fault] sink event (kinds
    ["bitflip"], ["force-overflow"]; plus ["collect"] from the
    environment when the policy is {!Sim.Env.Collect}), so
    {!Trace.Counters} tallies faults per signal. *)

(** [flip_bit dt ~bit v] — flip bit [bit] (0 = LSB) of [v]'s integer
    code under [dt] and re-wrap into the code window: the
    single-event-upset model for a fixed-point register.  Identity for
    wordlengths beyond the exact int64 grid.  Raises
    [Invalid_argument] when [bit] is outside [0, n). *)
val flip_bit : Fixpt.Dtype.t -> bit:int -> float -> float

(** The {!Sim.Env.set_injector} closure for a plan under discriminator
    [tag] ("" standalone; the candidate stimulus seed in a sweep).
    Pure in [(entry, time)] — replayable anywhere. *)
val injector : Plan.t -> tag:string -> Sim.Env.entry -> float -> float

(** Arm an environment: apply the plan's overflow-policy override and
    install the assignment-site injector ([tag] defaults to ""). *)
val arm_env : Plan.t -> ?tag:string -> Sim.Env.t -> unit

(** Disarm the assignment-site injector (the policy override, if any,
    stays — reset it with {!Sim.Env.set_policy}). *)
val disarm_env : Sim.Env.t -> unit

(** Wrap a source channel's producer under the plan: samples are
    corrupted per the stimulus rates and — when [starve_after] is set —
    the stream dries up after that many samples.  [strict] starvation
    raises {!Sim.Channel.Empty} (the crash path); the default degrades
    to silence (0.0).  Raises [Invalid_argument] on a channel with no
    producer. *)
val wrap_channel : Plan.t -> ?tag:string -> ?strict:bool -> Sim.Channel.t -> unit

(** Wrap a sweep workload so every candidate evaluation runs under the
    plan.  The policy override is baked into each instance's baseline
    snapshot, and the injector is armed only around [design.run],
    keyed by the candidate's stimulus seed — so the fault set of a
    candidate is a pure function of [(plan, candidate)] and the sweep
    report stays byte-identical for any [--jobs]. *)
val workload : Plan.t -> Sweep.Workload.t -> Sweep.Workload.t
