(** Seeded, deterministic fault schedules.

    A plan describes which fault classes to inject, at which rates,
    into which signals.  Whether a particular fault fires is a {e pure
    hash} of [(plan seed, stream tag, key, index)] — not the state of
    an advancing RNG — so the schedule is independent of evaluation
    order, worker count and scheduling: the same [(seed, plan)] replays
    the identical fault set anywhere.  That property is what lets the
    sweep quarantine the same candidates at any [--jobs] and the
    oracle's fault gate compare whole runs byte-for-byte. *)

(** What {!Inject.arm_env} does to an armed environment's overflow
    policy. *)
type policy_override =
  | Keep  (** leave the design's own policy in place *)
  | Force_raise  (** {!Sim.Env.Raise}: faults crash the run *)
  | Force_collect
      (** {!Sim.Env.Collect}: faults are recorded and the run keeps
          going (graceful degradation) *)

type t = {
  seed : int;  (** schedule seed — everything replays from it *)
  nan_rate : float;  (** stimulus sample → NaN *)
  inf_rate : float;  (** stimulus sample → ±∞ *)
  denormal_rate : float;  (** stimulus sample → an IEEE denormal *)
  extreme_rate : float;  (** stimulus sample → ±[extreme_mag] *)
  extreme_mag : float;  (** magnitude of an extreme sample *)
  bitflip_rate : float;  (** post-quantization SEU per assignment *)
  force_overflow_rate : float;  (** forced overflow event per assignment *)
  starve_after : int option;  (** channel produces only this many samples *)
  targets : string list;  (** signal names to inject into; [] = all *)
  on_overflow : policy_override;
}

(** Build a plan; every rate defaults to 0 (inject nothing).  Rates
    must lie in [[0, 1]]; [extreme_mag] (default 1e30) must be finite
    positive; [starve_after] must be non-negative.  Raises
    [Invalid_argument] otherwise. *)
val make :
  ?seed:int ->
  ?nan_rate:float ->
  ?inf_rate:float ->
  ?denormal_rate:float ->
  ?extreme_rate:float ->
  ?extreme_mag:float ->
  ?bitflip_rate:float ->
  ?force_overflow_rate:float ->
  ?starve_after:int ->
  ?targets:string list ->
  ?on_overflow:policy_override ->
  unit ->
  t

(** The plan that injects nothing. *)
val none : t

(** Is [name] subject to injection under this plan?  ([targets = []]
    means every signal is.) *)
val is_target : t -> string -> bool

(** Uniform float in [[0, 1)] — a pure function of the plan seed and
    the [(stream, key, index)] coordinate. *)
val draw : t -> stream:string -> key:string -> index:int -> float

(** Does the fault of class [stream] fire at this coordinate, given
    [rate]?  Pure; scheduling-independent. *)
val fires : t -> stream:string -> key:string -> index:int -> rate:float -> bool

(** The assignment-site fault kinds firing for [signal] at cycle
    [time] under discriminator [tag] (e.g. the candidate stimulus seed;
    "" standalone).  Kinds are the stable [on_fault] vocabulary:
    ["bitflip"], ["force-overflow"]. *)
val assign_faults : t -> tag:string -> signal:string -> time:int -> string list

(** The stimulus fault class (if any) for sample [index] of channel
    [channel]; first match in the order NaN, ∞, denormal, extreme. *)
val stimulus_fault :
  t ->
  tag:string ->
  channel:string ->
  index:int ->
  [ `Nan | `Inf | `Denormal | `Extreme ] option

(** Render the assignment-site schedule over an explicit
    [signals × cycles] grid as [(time, signal, kind)] triples — the
    replayable artifact the fault gate compares across runs. *)
val schedule :
  t -> ?tag:string -> signals:string list -> cycles:int -> unit ->
  (int * string * string) list

val policy_override_to_string : policy_override -> string
val policy_override_of_string : string -> (policy_override, string) result

(** Canonical flat JSON (fixed key order, {!Trace.Json} formatting);
    byte-stable and round-trippable through {!of_json}. *)
val to_json : t -> string

(** Parse a plan from flat JSON.  Missing keys take the {!make}
    defaults; unknown keys, malformed values and out-of-range rates are
    [Error]. *)
val of_json : string -> (t, string) result

val pp : Format.formatter -> t -> unit
