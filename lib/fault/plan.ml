(** Seeded, deterministic fault schedules.

    A plan is a pure description: which fault classes to inject, at
    which rates, into which signals.  Whether a particular fault fires
    is a {e pure hash} of [(plan seed, stream tag, key, index)] — never
    the state of an RNG that other code advances — so the schedule is
    independent of evaluation order, worker count, and scheduling.  The
    same [(seed, plan)] replays the identical fault set anywhere, which
    is what lets the oracle's fault gate compare runs byte-for-byte and
    a sweep quarantine the {e same} candidates at any [--jobs].

    The hash is the SplitMix64 finalizer over an FNV-1a digest of the
    stream/key strings — the same mixer as {!Stats.Rng}, reused as a
    stateless function. *)

(** What the fault layer does to the overflow policy of an armed
    environment (see {!Inject.arm_env}). *)
type policy_override =
  | Keep  (** leave the design's own policy in place *)
  | Force_raise  (** {!Sim.Env.Raise}: faults crash the run *)
  | Force_collect
      (** {!Sim.Env.Collect}: faults are recorded and the run
          continues (graceful degradation) *)

type t = {
  seed : int;  (** schedule seed — everything replays from it *)
  nan_rate : float;  (** stimulus sample → NaN *)
  inf_rate : float;  (** stimulus sample → ±∞ *)
  denormal_rate : float;  (** stimulus sample → an IEEE denormal *)
  extreme_rate : float;  (** stimulus sample → ±[extreme_mag] *)
  extreme_mag : float;  (** magnitude of an extreme sample *)
  bitflip_rate : float;  (** post-quantization SEU per assignment *)
  force_overflow_rate : float;  (** forced overflow event per assignment *)
  starve_after : int option;  (** channel produces only this many samples *)
  targets : string list;  (** signal names to inject into; [] = all *)
  on_overflow : policy_override;
}

let make ?(seed = 0) ?(nan_rate = 0.0) ?(inf_rate = 0.0)
    ?(denormal_rate = 0.0) ?(extreme_rate = 0.0) ?(extreme_mag = 1e30)
    ?(bitflip_rate = 0.0) ?(force_overflow_rate = 0.0) ?starve_after
    ?(targets = []) ?(on_overflow = Keep) () =
  let check_rate what r =
    if Float.is_nan r || r < 0.0 || r > 1.0 then
      invalid_arg (Printf.sprintf "Fault.Plan.make: %s not in [0, 1]" what)
  in
  check_rate "nan_rate" nan_rate;
  check_rate "inf_rate" inf_rate;
  check_rate "denormal_rate" denormal_rate;
  check_rate "extreme_rate" extreme_rate;
  check_rate "bitflip_rate" bitflip_rate;
  check_rate "force_overflow_rate" force_overflow_rate;
  if not (Float.is_finite extreme_mag) || extreme_mag <= 0.0 then
    invalid_arg "Fault.Plan.make: extreme_mag must be finite positive";
  (match starve_after with
  | Some n when n < 0 -> invalid_arg "Fault.Plan.make: starve_after < 0"
  | _ -> ());
  {
    seed;
    nan_rate;
    inf_rate;
    denormal_rate;
    extreme_rate;
    extreme_mag;
    bitflip_rate;
    force_overflow_rate;
    starve_after;
    targets;
    on_overflow;
  }

(** A plan that injects nothing (rates 0, no starvation, [Keep]). *)
let none = make ()

let is_target t name = t.targets = [] || List.mem name t.targets

(* --- the pure-hash schedule -------------------------------------------- *)

let fnv1a s =
  let h = ref 0xCBF29CE484222325L in
  String.iter
    (fun c ->
      h := Int64.mul (Int64.logxor !h (Int64.of_int (Char.code c)))
             0x100000001B3L)
    s;
  !h

(* SplitMix64 finalizer (same mixer as Stats.Rng). *)
let mix z =
  let z =
    Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30))
      0xBF58476D1CE4E5B9L
  in
  let z =
    Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27))
      0x94D049BB133111EBL
  in
  Int64.logxor z (Int64.shift_right_logical z 31)

let hash64 t ~stream ~key ~index =
  let z = mix (Int64.add (Int64.of_int t.seed) (fnv1a stream)) in
  let z = mix (Int64.add z (fnv1a key)) in
  mix (Int64.add z (Int64.of_int index))

(** [draw t ~stream ~key ~index] — uniform float in [[0, 1)], a pure
    function of the plan seed and the three coordinates. *)
let draw t ~stream ~key ~index =
  Int64.to_float (Int64.shift_right_logical (hash64 t ~stream ~key ~index) 11)
  *. (1.0 /. 9007199254740992.0)

(** [fires t ~stream ~key ~index ~rate] — does the fault of stream
    [stream] fire at this coordinate?  Pure; scheduling-independent. *)
let fires t ~stream ~key ~index ~rate =
  rate > 0.0 && draw t ~stream ~key ~index < rate

(* Stream tags: one per fault class, so the classes are independent
   coin flips even at the same (key, index). *)
let stream_nan = "stim-nan"
let stream_inf = "stim-inf"
let stream_denormal = "stim-denormal"
let stream_extreme = "stim-extreme"
let stream_bitflip = "bitflip"
let stream_force_overflow = "force-overflow"

(** The assignment-site fault classes firing for signal [key] at cycle
    [index] under tag [tag] (the per-candidate discriminator; "" for a
    standalone run) — short stable kind strings, the vocabulary of
    [on_fault] sink events. *)
let assign_faults t ~tag ~signal ~time =
  if not (is_target t signal) then []
  else begin
    let key = signal ^ "\x00" ^ tag in
    let acc = ref [] in
    if fires t ~stream:stream_force_overflow ~key ~index:time
         ~rate:t.force_overflow_rate
    then acc := "force-overflow" :: !acc;
    if fires t ~stream:stream_bitflip ~key ~index:time ~rate:t.bitflip_rate
    then acc := "bitflip" :: !acc;
    !acc
  end

(** The stimulus fault class (if any) for sample [index] of channel
    [key]: first match in the order NaN, ∞, denormal, extreme. *)
let stimulus_fault t ~tag ~channel ~index =
  if not (is_target t channel) then None
  else
    let key = channel ^ "\x00" ^ tag in
    if fires t ~stream:stream_nan ~key ~index ~rate:t.nan_rate then
      Some `Nan
    else if fires t ~stream:stream_inf ~key ~index ~rate:t.inf_rate then
      Some `Inf
    else if fires t ~stream:stream_denormal ~key ~index ~rate:t.denormal_rate
    then Some `Denormal
    else if fires t ~stream:stream_extreme ~key ~index ~rate:t.extreme_rate
    then Some `Extreme
    else None

(** Render the assignment-site schedule over an explicit grid —
    [(time, signal, kind)] in (time, signal, kind) order.  This is the
    replayable artifact the fault gate compares: it must be identical
    however many times and wherever it is computed. *)
let schedule t ?(tag = "") ~signals ~cycles () =
  List.concat_map
    (fun time ->
      List.concat_map
        (fun signal ->
          List.rev_map
            (fun kind -> (time, signal, kind))
            (assign_faults t ~tag ~signal ~time))
        signals)
    (List.init cycles Fun.id)

(* --- rendering --------------------------------------------------------- *)

let policy_override_to_string = function
  | Keep -> "keep"
  | Force_raise -> "raise"
  | Force_collect -> "collect"

let policy_override_of_string = function
  | "keep" -> Ok Keep
  | "raise" -> Ok Force_raise
  | "collect" -> Ok Force_collect
  | s -> Error (Printf.sprintf "unknown on_overflow %S" s)

(** Canonical flat JSON (fixed key order, {!Trace.Json} float
    formatting) — byte-stable, so plans can be compared as strings and
    round-trip through {!of_json}. *)
let to_json t =
  Printf.sprintf
    "{\"seed\": %d, \"nan_rate\": %s, \"inf_rate\": %s, \"denormal_rate\": \
     %s, \"extreme_rate\": %s, \"extreme_mag\": %s, \"bitflip_rate\": %s, \
     \"force_overflow_rate\": %s, \"starve_after\": %s, \"targets\": [%s], \
     \"on_overflow\": %s}"
    t.seed
    (Trace.Json.float_lit t.nan_rate)
    (Trace.Json.float_lit t.inf_rate)
    (Trace.Json.float_lit t.denormal_rate)
    (Trace.Json.float_lit t.extreme_rate)
    (Trace.Json.float_lit t.extreme_mag)
    (Trace.Json.float_lit t.bitflip_rate)
    (Trace.Json.float_lit t.force_overflow_rate)
    (match t.starve_after with Some n -> string_of_int n | None -> "null")
    (String.concat ", "
       (List.map Trace.Json.string_lit t.targets))
    (Trace.Json.string_lit (policy_override_to_string t.on_overflow))

(* --- a minimal flat-JSON reader ---------------------------------------- *)

(* The plan grammar is one flat object of numbers, null, strings and
   string arrays — small enough to parse by recursive descent without a
   JSON dependency (the container bakes none in). *)

exception Parse of string

let parse_error fmt = Printf.ksprintf (fun s -> raise (Parse s)) fmt

type tok =
  | Tobj_open
  | Tobj_close
  | Tarr_open
  | Tarr_close
  | Tcolon
  | Tcomma
  | Tstring of string
  | Tnumber of float
  | Tnull

let tokenize s =
  let n = String.length s in
  let toks = ref [] in
  let i = ref 0 in
  let push t = toks := t :: !toks in
  while !i < n do
    let c = s.[!i] in
    (match c with
    | ' ' | '\t' | '\n' | '\r' -> incr i
    | '{' -> push Tobj_open; incr i
    | '}' -> push Tobj_close; incr i
    | '[' -> push Tarr_open; incr i
    | ']' -> push Tarr_close; incr i
    | ':' -> push Tcolon; incr i
    | ',' -> push Tcomma; incr i
    | '"' ->
        let b = Buffer.create 16 in
        incr i;
        let rec scan () =
          if !i >= n then parse_error "unterminated string"
          else
            match s.[!i] with
            | '"' -> incr i
            | '\\' ->
                if !i + 1 >= n then parse_error "unterminated escape";
                (match s.[!i + 1] with
                | '"' -> Buffer.add_char b '"'
                | '\\' -> Buffer.add_char b '\\'
                | '/' -> Buffer.add_char b '/'
                | 'n' -> Buffer.add_char b '\n'
                | 't' -> Buffer.add_char b '\t'
                | 'r' -> Buffer.add_char b '\r'
                | e -> parse_error "unsupported escape \\%c" e);
                i := !i + 2;
                scan ()
            | c ->
                Buffer.add_char b c;
                incr i;
                scan ()
        in
        scan ();
        push (Tstring (Buffer.contents b))
    | 'n' when !i + 4 <= n && String.sub s !i 4 = "null" ->
        push Tnull;
        i := !i + 4
    | '-' | '+' | '0' .. '9' ->
        let j = ref !i in
        while
          !j < n
          && (match s.[!j] with
             | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' | 'x' | 'a' .. 'f'
             | 'A' .. 'F' | 'p' | 'P' ->
                 true
             | _ -> false)
        do
          incr j
        done;
        let lit = String.sub s !i (!j - !i) in
        (match float_of_string_opt lit with
        | Some f -> push (Tnumber f)
        | None -> parse_error "bad number %S" lit);
        i := !j
    | c -> parse_error "unexpected character %C" c);
  done;
  List.rev !toks

type jvalue =
  | Jnum of float
  | Jstr of string
  | Jnull
  | Jarr of string list

(* Parse exactly one flat object { "key": scalar-or-string-array, ... }. *)
let parse_flat_object s =
  let toks = tokenize s in
  let expect t rest what =
    match rest with
    | x :: rest when x = t -> rest
    | _ -> parse_error "expected %s" what
  in
  let rec members acc rest =
    match rest with
    | Tobj_close :: rest -> (List.rev acc, rest)
    | Tstring k :: rest -> (
        let rest = expect Tcolon rest "':'" in
        let v, rest =
          match rest with
          | Tnumber f :: rest -> (Jnum f, rest)
          | Tstring v :: rest -> (Jstr v, rest)
          | Tnull :: rest -> (Jnull, rest)
          | Tarr_open :: rest ->
              let rec elems acc rest =
                match rest with
                | Tarr_close :: rest -> (List.rev acc, rest)
                | Tstring v :: Tcomma :: rest -> elems (v :: acc) rest
                | Tstring v :: rest -> elems (v :: acc) rest
                | _ -> parse_error "expected string array element"
              in
              let vs, rest = elems [] rest in
              (Jarr vs, rest)
          | _ -> parse_error "expected value for key %S" k
        in
        match rest with
        | Tcomma :: rest -> members ((k, v) :: acc) rest
        | Tobj_close :: rest -> (List.rev ((k, v) :: acc), rest)
        | _ -> parse_error "expected ',' or '}' after key %S" k)
    | _ -> parse_error "expected member or '}'"
  in
  match toks with
  | Tobj_open :: rest -> (
      match members [] rest with
      | fields, [] -> fields
      | _, _ -> parse_error "trailing tokens after object")
  | _ -> parse_error "expected '{'"

(** Parse a plan from its flat JSON object.  Unknown keys are an error
    (they would silently change the experiment); missing keys take the
    {!make} defaults.  Returns [Error msg] on malformed input. *)
let of_json s =
  match parse_flat_object s with
  | exception Parse msg -> Error (Printf.sprintf "Fault.Plan.of_json: %s" msg)
  | fields -> (
      let p = ref none in
      let num what v =
        match v with
        | Jnum f -> f
        | _ -> parse_error "%s: expected a number" what
      in
      let inum what v =
        let f = num what v in
        if Float.is_integer f then int_of_float f
        else parse_error "%s: expected an integer" what
      in
      try
        List.iter
          (fun (k, v) ->
            match k with
            | "seed" -> p := { !p with seed = inum k v }
            | "nan_rate" -> p := { !p with nan_rate = num k v }
            | "inf_rate" -> p := { !p with inf_rate = num k v }
            | "denormal_rate" -> p := { !p with denormal_rate = num k v }
            | "extreme_rate" -> p := { !p with extreme_rate = num k v }
            | "extreme_mag" -> p := { !p with extreme_mag = num k v }
            | "bitflip_rate" -> p := { !p with bitflip_rate = num k v }
            | "force_overflow_rate" ->
                p := { !p with force_overflow_rate = num k v }
            | "starve_after" -> (
                match v with
                | Jnull -> p := { !p with starve_after = None }
                | v -> p := { !p with starve_after = Some (inum k v) })
            | "targets" -> (
                match v with
                | Jarr vs -> p := { !p with targets = vs }
                | _ -> parse_error "targets: expected a string array")
            | "on_overflow" -> (
                match v with
                | Jstr s -> (
                    match policy_override_of_string s with
                    | Ok o -> p := { !p with on_overflow = o }
                    | Error e -> parse_error "%s" e)
                | _ -> parse_error "on_overflow: expected a string")
            | k -> parse_error "unknown key %S" k)
          fields;
        (* revalidate through make: rates from JSON must obey the same
           bounds as rates from code *)
        let q = !p in
        Ok
          (make ~seed:q.seed ~nan_rate:q.nan_rate ~inf_rate:q.inf_rate
             ~denormal_rate:q.denormal_rate ~extreme_rate:q.extreme_rate
             ~extreme_mag:q.extreme_mag ~bitflip_rate:q.bitflip_rate
             ~force_overflow_rate:q.force_overflow_rate
             ?starve_after:q.starve_after ~targets:q.targets
             ~on_overflow:q.on_overflow ())
      with
      | Parse msg -> Error (Printf.sprintf "Fault.Plan.of_json: %s" msg)
      | Invalid_argument msg -> Error msg)

let pp ppf t =
  let rate name r =
    if r > 0.0 then Format.fprintf ppf "%s %g; " name r
  in
  Format.fprintf ppf "plan(seed %d; " t.seed;
  rate "nan" t.nan_rate;
  rate "inf" t.inf_rate;
  rate "denormal" t.denormal_rate;
  rate "extreme" t.extreme_rate;
  rate "bitflip" t.bitflip_rate;
  rate "force-overflow" t.force_overflow_rate;
  (match t.starve_after with
  | Some n -> Format.fprintf ppf "starve after %d; " n
  | None -> ());
  (match t.targets with
  | [] -> ()
  | ts -> Format.fprintf ppf "targets %s; " (String.concat "," ts));
  Format.fprintf ppf "overflow %s)"
    (policy_override_to_string t.on_overflow)
