(** Flat-schedule compilation of a signal-flow graph — see the
    interface for the design rationale.

    Layout: node [i]'s lane-[l] value lives at [fx.(i * batch + l)]
    (structure-of-arrays).  Delay registers get a separate
    double-buffered block indexed by a dense register number; the
    commit phase writes next-state into the shadow buffer and swaps
    the two, so a register's read in the {e next} step cannot observe a
    partially-committed store regardless of schedule position.

    Constants are materialized once at {!reset} (the interpreter
    re-evaluates [Const] every cycle to the same value, so hoisting is
    observationally identical), which keeps the per-tick instruction
    stream down to the data-dependent operations. *)

exception Cannot_compile of string

let () =
  Printexc.register_printer (function
    | Cannot_compile m -> Some (Printf.sprintf "Compile.Cannot_compile: %s" m)
    | _ -> None)

type inject = name:string -> lane:int -> step:int -> float -> float

(* One fused quantization point: the compiled cast plus its overflow
   tally (events summed over lanes and steps, like the clock-true
   simulator's per-signal [n_overflow]). *)
type quant = {
  qname : string;
  q : Fixpt.Quantize.compiled;
  mutable ovf : int;
}

(* The instruction stream.  [dst]/[a]/[b]/[c] are node slots (scaled by
   [batch] at execution time); [reg] is a dense delay-register number;
   [input] indexes the resolved stimulus closures; [k] indexes
   [quants]. *)
type instr =
  | Iinput of { dst : int; input : int }
  | Iadd of { dst : int; a : int; b : int }
  | Isub of { dst : int; a : int; b : int }
  | Imul of { dst : int; a : int; b : int }
  | Idiv of { dst : int; a : int; b : int }
  | Ineg of { dst : int; a : int }
  | Iabs of { dst : int; a : int }
  | Imin of { dst : int; a : int; b : int }
  | Imax of { dst : int; a : int; b : int }
  | Ishift of { dst : int; a : int; scale : float }
  | Idelay of { dst : int; reg : int }
  | Iquant of { dst : int; a : int; k : int }
  | Isat of { dst : int; a : int; lo : float; hi : float }
  | Isel of { dst : int; c : int; a : int; b : int }
  | Icopy of { dst : int; a : int }

type t = {
  batch : int;
  dual : bool;
  names : string array;  (* node id -> name *)
  program : instr array;
  input_names : string array;  (* input index -> node name *)
  consts : (int * float) array;  (* node slot, value: applied at reset *)
  quants : quant array;
  commits : (int * int) array;  (* register number, source node slot *)
  delay_inits : float array;  (* per register number *)
  fx : float array;  (* node_count * batch *)
  mutable regs : float array;  (* n_regs * batch, current state *)
  mutable regs_nxt : float array;  (* shadow buffer, swapped at commit *)
  fl : float array;  (* float-reference lattice; [||] unless dual *)
  mutable regs_fl : float array;
  mutable regs_fl_nxt : float array;
  scratch : Fixpt.Quantize.scratch;  (* program-private: domain-safe *)
  by_name : (string, int) Hashtbl.t;  (* name -> node id, last wins *)
}

let batch t = t.batch
let node_count t = Array.length t.names
let instr_count t = Array.length t.program
let find t name = Hashtbl.find_opt t.by_name name
let value t ~id ~lane = t.fx.((id * t.batch) + lane)

let value_ref t ~id ~lane =
  if not t.dual then
    invalid_arg "Compile.value_ref: program compiled without ~dual:true";
  t.fl.((id * t.batch) + lane)

let overflows t =
  Array.to_list (Array.map (fun q -> (q.qname, q.ovf)) t.quants)

let overflow_count t = Array.fold_left (fun acc q -> acc + q.ovf) 0 t.quants

(* --- lowering ---------------------------------------------------------- *)

let compile ?(batch = 1) ?(dual = false) (g : Sfg.Graph.t) =
  if batch < 1 then invalid_arg "Compile.compile: batch < 1";
  (match Sfg.Graph.validate g with
  | Ok () -> ()
  | Error m -> raise (Cannot_compile m));
  let spanned = Trace.Spans.enabled () in
  let t0 = if spanned then Trace.Spans.now () else 0.0 in
  let ns = Array.of_list (Sfg.Graph.nodes g) in
  let n = Array.length ns in
  let names = Array.map (fun (nd : Sfg.Node.t) -> nd.Sfg.Node.name) ns in
  let by_name = Hashtbl.create (max 16 n) in
  Array.iteri (fun i name -> Hashtbl.replace by_name name i) names;
  let program = ref [] in
  let inputs = ref [] in
  let n_inputs = ref 0 in
  let consts = ref [] in
  let quants = ref [] in
  let n_quants = ref 0 in
  let commits = ref [] in
  let inits = ref [] in
  let n_regs = ref 0 in
  Array.iteri
    (fun i (nd : Sfg.Node.t) ->
      if nd.Sfg.Node.id <> i then
        raise (Cannot_compile "node ids are not dense in schedule order");
      let arg j =
        let s = List.nth nd.Sfg.Node.inputs j in
        (* the graph builder only references existing nodes, so any
           same-or-forward reference outside a delay is a broken
           schedule, not a user error *)
        (match nd.Sfg.Node.op with
        | Sfg.Node.Delay _ -> ()
        | _ ->
            if s >= i then
              raise
                (Cannot_compile
                   (Printf.sprintf "node %s reads forward reference %d"
                      nd.Sfg.Node.name s)));
        s
      in
      let emit ins = program := ins :: !program in
      match nd.Sfg.Node.op with
      | Sfg.Node.Input _ ->
          let input = !n_inputs in
          incr n_inputs;
          inputs := nd.Sfg.Node.name :: !inputs;
          emit (Iinput { dst = i; input })
      | Sfg.Node.Const c -> consts := (i, c) :: !consts
      | Sfg.Node.Add -> emit (Iadd { dst = i; a = arg 0; b = arg 1 })
      | Sfg.Node.Sub -> emit (Isub { dst = i; a = arg 0; b = arg 1 })
      | Sfg.Node.Mul -> emit (Imul { dst = i; a = arg 0; b = arg 1 })
      | Sfg.Node.Div -> emit (Idiv { dst = i; a = arg 0; b = arg 1 })
      | Sfg.Node.Neg -> emit (Ineg { dst = i; a = arg 0 })
      | Sfg.Node.Abs -> emit (Iabs { dst = i; a = arg 0 })
      | Sfg.Node.Min -> emit (Imin { dst = i; a = arg 0; b = arg 1 })
      | Sfg.Node.Max -> emit (Imax { dst = i; a = arg 0; b = arg 1 })
      | Sfg.Node.Shift k ->
          emit (Ishift { dst = i; a = arg 0; scale = 2.0 ** Float.of_int k })
      | Sfg.Node.Delay init ->
          let reg = !n_regs in
          incr n_regs;
          inits := init :: !inits;
          (* delay inputs may point anywhere, including forward: the
             register breaks the dependence *)
          let src = List.nth nd.Sfg.Node.inputs 0 in
          commits := (reg, src) :: !commits;
          emit (Idelay { dst = i; reg })
      | Sfg.Node.Quantize dt ->
          let k = !n_quants in
          incr n_quants;
          quants :=
            { qname = nd.Sfg.Node.name; q = Fixpt.Quantize.of_dtype dt; ovf = 0 }
            :: !quants;
          emit (Iquant { dst = i; a = arg 0; k })
      | Sfg.Node.Saturate lim ->
          emit
            (Isat
               { dst = i; a = arg 0; lo = Interval.lo lim; hi = Interval.hi lim })
      | Sfg.Node.Select ->
          emit (Isel { dst = i; c = arg 0; a = arg 1; b = arg 2 })
      | Sfg.Node.Alias -> emit (Icopy { dst = i; a = arg 0 }))
    ns;
  let nr = !n_regs in
  let t =
    {
      batch;
      dual;
      names;
      program = Array.of_list (List.rev !program);
      input_names = Array.of_list (List.rev !inputs);
      consts = Array.of_list (List.rev !consts);
      quants = Array.of_list (List.rev !quants);
      commits = Array.of_list (List.rev !commits);
      delay_inits = Array.of_list (List.rev !inits);
      fx = Array.make (Stdlib.max 1 (n * batch)) 0.0;
      regs = Array.make (Stdlib.max 1 (nr * batch)) 0.0;
      regs_nxt = Array.make (Stdlib.max 1 (nr * batch)) 0.0;
      fl = (if dual then Array.make (Stdlib.max 1 (n * batch)) 0.0 else [||]);
      regs_fl =
        (if dual then Array.make (Stdlib.max 1 (nr * batch)) 0.0 else [||]);
      regs_fl_nxt =
        (if dual then Array.make (Stdlib.max 1 (nr * batch)) 0.0 else [||]);
      scratch = Fixpt.Quantize.create_scratch ();
      by_name;
    }
  in
  if spanned then
    Trace.Spans.record ~cat:"compile" ~tid:0 ~name:"compile"
      ~args:
        [
          ("nodes", string_of_int n);
          ("instrs", string_of_int (Array.length t.program));
          ("batch", string_of_int batch);
        ]
      ~t0 ~t1:(Trace.Spans.now ()) ();
  t

let reset t =
  let b = t.batch in
  Array.fill t.fx 0 (Array.length t.fx) 0.0;
  Array.iter
    (fun (slot, v) -> Array.fill t.fx (slot * b) b v)
    t.consts;
  Array.iteri
    (fun reg init -> Array.fill t.regs (reg * b) b init)
    t.delay_inits;
  Array.iter (fun q -> q.ovf <- 0) t.quants;
  if t.dual then begin
    Array.fill t.fl 0 (Array.length t.fl) 0.0;
    Array.iter (fun (slot, v) -> Array.fill t.fl (slot * b) b v) t.consts;
    Array.iteri
      (fun reg init -> Array.fill t.regs_fl (reg * b) b init)
      t.delay_inits
  end

(* --- execution --------------------------------------------------------- *)

(* Fixed-lattice evaluation of one instruction over every lane.  The
   [feeds] closures are the pre-resolved stimulus functions; when
   [dual], the raw (pre-injection) input sample is mirrored into the
   float lattice here so the stimulus closure is sampled once per
   lattice at most. *)
let exec_fx t ~(inject : inject option) ~step feeds ins =
  let b = t.batch in
  let fx = t.fx in
  match ins with
  | Iinput { dst; input } ->
      let o = dst * b in
      let feed : lane:int -> int -> float = Array.unsafe_get feeds input in
      let name = t.input_names.(input) in
      for l = 0 to b - 1 do
        let v = feed ~lane:l step in
        if t.dual then Array.unsafe_set t.fl (o + l) v;
        let v =
          match inject with
          | None -> v
          | Some f -> f ~name ~lane:l ~step v
        in
        Array.unsafe_set fx (o + l) v
      done
  | Iadd { dst; a; b = rb } ->
      let o = dst * b and oa = a * b and ob = rb * b in
      for l = 0 to b - 1 do
        Array.unsafe_set fx (o + l)
          (Array.unsafe_get fx (oa + l) +. Array.unsafe_get fx (ob + l))
      done
  | Isub { dst; a; b = rb } ->
      let o = dst * b and oa = a * b and ob = rb * b in
      for l = 0 to b - 1 do
        Array.unsafe_set fx (o + l)
          (Array.unsafe_get fx (oa + l) -. Array.unsafe_get fx (ob + l))
      done
  | Imul { dst; a; b = rb } ->
      let o = dst * b and oa = a * b and ob = rb * b in
      for l = 0 to b - 1 do
        Array.unsafe_set fx (o + l)
          (Array.unsafe_get fx (oa + l) *. Array.unsafe_get fx (ob + l))
      done
  | Idiv { dst; a; b = rb } ->
      let o = dst * b and oa = a * b and ob = rb * b in
      for l = 0 to b - 1 do
        Array.unsafe_set fx (o + l)
          (Array.unsafe_get fx (oa + l) /. Array.unsafe_get fx (ob + l))
      done
  | Ineg { dst; a } ->
      let o = dst * b and oa = a * b in
      for l = 0 to b - 1 do
        Array.unsafe_set fx (o + l) (-.Array.unsafe_get fx (oa + l))
      done
  | Iabs { dst; a } ->
      let o = dst * b and oa = a * b in
      for l = 0 to b - 1 do
        Array.unsafe_set fx (o + l) (Float.abs (Array.unsafe_get fx (oa + l)))
      done
  | Imin { dst; a; b = rb } ->
      let o = dst * b and oa = a * b and ob = rb * b in
      for l = 0 to b - 1 do
        Array.unsafe_set fx (o + l)
          (Float.min (Array.unsafe_get fx (oa + l))
             (Array.unsafe_get fx (ob + l)))
      done
  | Imax { dst; a; b = rb } ->
      let o = dst * b and oa = a * b and ob = rb * b in
      for l = 0 to b - 1 do
        Array.unsafe_set fx (o + l)
          (Float.max (Array.unsafe_get fx (oa + l))
             (Array.unsafe_get fx (ob + l)))
      done
  | Ishift { dst; a; scale } ->
      let o = dst * b and oa = a * b in
      for l = 0 to b - 1 do
        Array.unsafe_set fx (o + l) (Array.unsafe_get fx (oa + l) *. scale)
      done
  | Idelay { dst; reg } -> Array.blit t.regs (reg * b) fx (dst * b) b
  | Iquant { dst; a; k } ->
      let qq = t.quants.(k) in
      let c = qq.q and s = t.scratch in
      let o = dst * b and oa = a * b in
      (match inject with
      | None ->
          for l = 0 to b - 1 do
            let v =
              Fixpt.Quantize.exec_into c (Array.unsafe_get fx (oa + l)) s
            in
            if s.Fixpt.Quantize.flag <> 0.0 then qq.ovf <- qq.ovf + 1;
            Array.unsafe_set fx (o + l) v
          done
      | Some f ->
          for l = 0 to b - 1 do
            let v =
              Fixpt.Quantize.exec_into c (Array.unsafe_get fx (oa + l)) s
            in
            if s.Fixpt.Quantize.flag <> 0.0 then qq.ovf <- qq.ovf + 1;
            Array.unsafe_set fx (o + l) (f ~name:qq.qname ~lane:l ~step v)
          done)
  | Isat { dst; a; lo; hi } ->
      let o = dst * b and oa = a * b in
      for l = 0 to b - 1 do
        Array.unsafe_set fx (o + l)
          (Float.max lo (Float.min hi (Array.unsafe_get fx (oa + l))))
      done
  | Isel { dst; c; a; b = rb } ->
      let o = dst * b and oc = c * b and oa = a * b and ob = rb * b in
      for l = 0 to b - 1 do
        Array.unsafe_set fx (o + l)
          (if Array.unsafe_get fx (oc + l) >= 0.5 then
             Array.unsafe_get fx (oa + l)
           else Array.unsafe_get fx (ob + l))
      done
  | Icopy { dst; a } -> Array.blit fx (a * b) fx (dst * b) b

(* Float-reference lattice: same arithmetic, [Quantize]/[Saturate] are
   identities, [Select] steered by the {e fixed} lattice's condition
   (§4.2 — decisions follow the implementation).  Inputs were already
   mirrored by [exec_fx]. *)
let exec_fl t ins =
  let b = t.batch in
  let fl = t.fl in
  match ins with
  | Iinput _ -> ()
  | Iadd { dst; a; b = rb } ->
      let o = dst * b and oa = a * b and ob = rb * b in
      for l = 0 to b - 1 do
        Array.unsafe_set fl (o + l)
          (Array.unsafe_get fl (oa + l) +. Array.unsafe_get fl (ob + l))
      done
  | Isub { dst; a; b = rb } ->
      let o = dst * b and oa = a * b and ob = rb * b in
      for l = 0 to b - 1 do
        Array.unsafe_set fl (o + l)
          (Array.unsafe_get fl (oa + l) -. Array.unsafe_get fl (ob + l))
      done
  | Imul { dst; a; b = rb } ->
      let o = dst * b and oa = a * b and ob = rb * b in
      for l = 0 to b - 1 do
        Array.unsafe_set fl (o + l)
          (Array.unsafe_get fl (oa + l) *. Array.unsafe_get fl (ob + l))
      done
  | Idiv { dst; a; b = rb } ->
      let o = dst * b and oa = a * b and ob = rb * b in
      for l = 0 to b - 1 do
        Array.unsafe_set fl (o + l)
          (Array.unsafe_get fl (oa + l) /. Array.unsafe_get fl (ob + l))
      done
  | Ineg { dst; a } ->
      let o = dst * b and oa = a * b in
      for l = 0 to b - 1 do
        Array.unsafe_set fl (o + l) (-.Array.unsafe_get fl (oa + l))
      done
  | Iabs { dst; a } ->
      let o = dst * b and oa = a * b in
      for l = 0 to b - 1 do
        Array.unsafe_set fl (o + l) (Float.abs (Array.unsafe_get fl (oa + l)))
      done
  | Imin { dst; a; b = rb } ->
      let o = dst * b and oa = a * b and ob = rb * b in
      for l = 0 to b - 1 do
        Array.unsafe_set fl (o + l)
          (Float.min (Array.unsafe_get fl (oa + l))
             (Array.unsafe_get fl (ob + l)))
      done
  | Imax { dst; a; b = rb } ->
      let o = dst * b and oa = a * b and ob = rb * b in
      for l = 0 to b - 1 do
        Array.unsafe_set fl (o + l)
          (Float.max (Array.unsafe_get fl (oa + l))
             (Array.unsafe_get fl (ob + l)))
      done
  | Ishift { dst; a; scale } ->
      let o = dst * b and oa = a * b in
      for l = 0 to b - 1 do
        Array.unsafe_set fl (o + l) (Array.unsafe_get fl (oa + l) *. scale)
      done
  | Idelay { dst; reg } -> Array.blit t.regs_fl (reg * b) fl (dst * b) b
  | Iquant { dst; a; k = _ } | Isat { dst; a; lo = _; hi = _ } | Icopy { dst; a }
    ->
      Array.blit fl (a * b) fl (dst * b) b
  | Isel { dst; c; a; b = rb } ->
      let o = dst * b and oc = c * b and oa = a * b and ob = rb * b in
      for l = 0 to b - 1 do
        Array.unsafe_set fl (o + l)
          (if Array.unsafe_get t.fx (oc + l) >= 0.5 then
             Array.unsafe_get fl (oa + l)
           else Array.unsafe_get fl (ob + l))
      done

let commit t =
  let b = t.batch in
  Array.iter
    (fun (reg, src) -> Array.blit t.fx (src * b) t.regs_nxt (reg * b) b)
    t.commits;
  let cur = t.regs in
  t.regs <- t.regs_nxt;
  t.regs_nxt <- cur;
  if t.dual then begin
    Array.iter
      (fun (reg, src) -> Array.blit t.fl (src * b) t.regs_fl_nxt (reg * b) b)
      t.commits;
    let cur = t.regs_fl in
    t.regs_fl <- t.regs_fl_nxt;
    t.regs_fl_nxt <- cur
  end

let run ?inject ?on_step t ~steps ~inputs =
  if steps < 0 then invalid_arg "Compile.run: steps < 0";
  let spanned = Trace.Spans.enabled () in
  let t0 = if spanned then Trace.Spans.now () else 0.0 in
  reset t;
  let feeds = Array.map (fun name -> inputs name) t.input_names in
  let prog = t.program in
  let np = Array.length prog in
  for step = 0 to steps - 1 do
    for i = 0 to np - 1 do
      exec_fx t ~inject ~step feeds (Array.unsafe_get prog i)
    done;
    if t.dual then
      for i = 0 to np - 1 do
        exec_fl t (Array.unsafe_get prog i)
      done;
    commit t;
    match on_step with Some f -> f step | None -> ()
  done;
  if spanned then
    Trace.Spans.record ~cat:"compile" ~tid:0 ~name:"exec"
      ~args:
        [
          ("steps", string_of_int steps);
          ("batch", string_of_int t.batch);
          ("samples", string_of_int (steps * t.batch));
        ]
      ~t0 ~t1:(Trace.Spans.now ()) ();
  ()

(* --- single-step drive ------------------------------------------------- *)

let input_names t = Array.copy t.input_names
let register_count t = Array.length t.delay_inits
let initial_state t = Array.copy t.delay_inits

let read_state t ~lane dst =
  let nr = Array.length t.delay_inits in
  if Array.length dst <> nr then
    invalid_arg "Compile.read_state: destination length <> register_count";
  if lane < 0 || lane >= t.batch then invalid_arg "Compile.read_state: lane";
  let b = t.batch in
  for r = 0 to nr - 1 do
    Array.unsafe_set dst r (Array.unsafe_get t.regs ((r * b) + lane))
  done

let write_state t ~lane src =
  let nr = Array.length t.delay_inits in
  if Array.length src <> nr then
    invalid_arg "Compile.write_state: source length <> register_count";
  if lane < 0 || lane >= t.batch then invalid_arg "Compile.write_state: lane";
  let b = t.batch in
  for r = 0 to nr - 1 do
    Array.unsafe_set t.regs ((r * b) + lane) (Array.unsafe_get src r)
  done

let step_once ?inject t ~step ~inputs =
  let feeds =
    Array.map
      (fun name ->
        let f = inputs name in
        fun ~lane (_ : int) -> f ~lane)
      t.input_names
  in
  let prog = t.program in
  let np = Array.length prog in
  for i = 0 to np - 1 do
    exec_fx t ~inject ~step feeds (Array.unsafe_get prog i)
  done;
  if t.dual then
    for i = 0 to np - 1 do
      exec_fl t (Array.unsafe_get prog i)
    done;
  commit t

let traces ?inject t ~steps ~inputs =
  let n = node_count t in
  let b = t.batch in
  let out =
    Array.init n (fun _ -> Array.init b (fun _ -> Array.make steps 0.0))
  in
  run ?inject t ~steps ~inputs ~on_step:(fun s ->
      for i = 0 to n - 1 do
        let row = Array.unsafe_get out i in
        let base = i * b in
        for l = 0 to b - 1 do
          (Array.unsafe_get row l).(s) <- Array.unsafe_get t.fx (base + l)
        done
      done);
  Array.to_list (Array.mapi (fun i tr -> (t.names.(i), tr)) out)
