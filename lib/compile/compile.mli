(** Flat-schedule compilation of a signal-flow graph.

    {!Sfg.Graph.simulate} walks the node list every cycle, pattern
    matching each operator and allocating an argument list per node —
    fine for an oracle, hopeless for a sweep that re-simulates a design
    thousands of times.  [compile] lowers a closed graph once into a
    flat program over preallocated float arrays:

    - the schedule is the node-id order (construction order, which the
      graph guarantees is topological for everything except delay
      feedback — exactly the dependence a delay breaks);
    - each {!Sfg.Node.Quantize} node is fused at compile time to its
      {!Fixpt.Quantize.compiled} record (via the memoized
      {!Fixpt.Quantize.of_dtype} cache), so the per-sample cast is the
      same allocation-free [exec_into] the clock-true simulator uses;
    - delay registers live in a double-buffered block committed by an
      index (buffer) swap after every tick;
    - there are no per-sample hash or name lookups: names are resolved
      to array slots at compile time.

    {b Batching.} The value store is structure-of-arrays: node [i]'s
    value for lane [l] lives at [i * batch + l], so [batch] independent
    stimulus vectors advance per tick through the same instruction
    stream.  Lanes never interact; compiled execution of lane [l] is
    bit-identical to a [batch = 1] run fed lane [l]'s stimulus (the
    oracle property {!Oracle.Compile_check} enforces).

    {b Fidelity.} Per node and step, the computed value is bit-identical
    to the interpreter's: same operator semantics ({!Sfg.Node.eval_value}),
    same quantizer code, same delay-commit schedule.  The compiled
    executor is checked against {!Sfg.Graph.simulate} by byte-equality,
    with and without fault injection.

    {b Dual lattice.} With [~dual:true] the program also advances the
    float-reference lattice of the clock-true simulator (§4.2): the
    same arithmetic over a parallel value store in which [Quantize] and
    [Saturate] are identities and [Select] is steered by the fixed
    lattice's condition.  That is what candidate evaluation needs to
    reproduce the per-signal consumed/produced error monitors. *)

(** Raised by {!compile} on a graph it cannot lower — unconnected
    feedback delays ({!Sfg.Graph.validate} failure) or a node schedule
    that is not topological. *)
exception Cannot_compile of string

(** A compiled program: the instruction stream plus its value store.
    Mutable (running it advances the store); not domain-shareable —
    each worker owns its own program, like workload instances. *)
type t

(** Fault-injection hook: applied to the value of [Input] and
    [Quantize] nodes (after the cast), per lane and step — the same
    two sites the clock-true simulator's assignment injector covers.
    Must be pure in [(name, lane, step, value)] for replay to be
    deterministic. *)
type inject = name:string -> lane:int -> step:int -> float -> float

(** [compile ?batch ?dual g] lowers [g].  [batch] (default 1) is the
    lane count B; [dual] (default false) enables the float-reference
    lattice.  Raises {!Cannot_compile} on an incomplete graph and
    [Invalid_argument] on [batch < 1].  Records a ["compile"] span when
    {!Trace.Spans} collection is on. *)
val compile : ?batch:int -> ?dual:bool -> Sfg.Graph.t -> t

val batch : t -> int
val node_count : t -> int

(** Number of lowered instructions (constants are hoisted to {!reset},
    so this can be smaller than {!node_count}). *)
val instr_count : t -> int

(** Slot of the {e last} node named [name] (assignment order, like the
    simulator's name resolution). *)
val find : t -> string -> int option

(** [value t ~id ~lane] — node [id]'s fixed-lattice value for [lane],
    as of the last executed step. *)
val value : t -> id:int -> lane:int -> float

(** Float-reference lattice read-back.  Raises [Invalid_argument] on a
    program compiled without [~dual:true]. *)
val value_ref : t -> id:int -> lane:int -> float

(** Overflow events per [Quantize] node, in schedule order, summed over
    lanes and steps since the last {!reset}. *)
val overflows : t -> (string * int) list

(** Total overflow events since the last {!reset}. *)
val overflow_count : t -> int

(** Reinitialize the store: values zeroed, constants re-materialized,
    delay registers back to their init values, overflow counters
    cleared.  {!run} calls this itself. *)
val reset : t -> unit

(** [run ?inject ?on_step t ~steps ~inputs] executes [steps] ticks from
    a fresh {!reset}.  [inputs name ~lane step] feeds each [Input]
    node; it is resolved per input node once (so [inputs name] may
    precompute), and must be pure — the dual lattice and fault replay
    may sample it more than once.  [on_step s] runs after step [s]'s
    delay commit, with the store readable through {!value}/{!value_ref}.
    Records an ["exec"] span when {!Trace.Spans} collection is on.

    NaN reaching a [Quantize] node raises [Invalid_argument] exactly
    like the interpreter's cast. *)
val run :
  ?inject:inject ->
  ?on_step:(int -> unit) ->
  t ->
  steps:int ->
  inputs:(string -> lane:int -> int -> float) ->
  unit

(** {2 Single-step drive}

    The verification engine ({!Verify}) enumerates the register state
    space explicitly: it plants a candidate state in the delay
    registers, advances exactly one tick, and reads the successor
    state back out.  These accessors expose that per-tick semantics
    without disturbing the batched {!run} contract — lane [l] of a
    single step is still bit-identical to a [batch = 1] step fed the
    same state and stimulus. *)

(** Input node names, in stimulus-resolution order (the order [inputs]
    closures are resolved by {!run}). *)
val input_names : t -> string array

(** Number of delay registers (the machine's state dimension). *)
val register_count : t -> int

(** The reset state: every delay register's declared init value, as a
    fresh array of length {!register_count}. *)
val initial_state : t -> float array

(** [read_state t ~lane dst] copies lane [lane]'s current register
    block into [dst] (length must equal {!register_count}). *)
val read_state : t -> lane:int -> float array -> unit

(** [write_state t ~lane src] plants [src] as lane [lane]'s register
    state.  Overwrites whatever {!reset}/{!step_once} left there. *)
val write_state : t -> lane:int -> float array -> unit

(** [step_once ?inject t ~step ~inputs] advances every lane exactly one
    tick from the current register state: executes the full instruction
    stream (both lattices when dual) and commits the delay registers.
    Unlike {!run} it performs {e no} reset — callers own the state via
    {!write_state} — and overflow tallies keep accumulating, so
    {!overflow_count} deltas attribute events to individual steps.
    [inputs name ~lane] feeds each input node for this tick; [step] is
    only forwarded to the [inject] hook.  NaN reaching a [Quantize]
    raises [Invalid_argument] exactly like {!run}. *)
val step_once :
  ?inject:inject ->
  t ->
  step:int ->
  inputs:(string -> lane:int -> float) ->
  unit

(** [traces ?inject t ~steps ~inputs] — {!run}, capturing every node's
    per-lane trace: [(name, per_lane)] in node order with
    [per_lane.(l).(s)] the lane-[l] value at step [s].  Lane [l]'s
    column is byte-comparable to {!Sfg.Graph.simulate} fed the same
    stimulus. *)
val traces :
  ?inject:inject ->
  t ->
  steps:int ->
  inputs:(string -> lane:int -> int -> float) ->
  (string * float array array) list
