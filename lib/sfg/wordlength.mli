(** Analytical wordlength assignment — the pure-analysis baseline
    (paper reference [3], Willems et al.): MSBs from worst-case
    {!Range_analysis} ranges (conservative by construction), LSBs by
    distributing an output noise budget over the quantization points,
    weighted by each point's noise gain to the output. *)

type assignment = {
  name : string;
  msb : int option;  (** [None] — range exploded *)
  lsb : int option;
      (** [None] — node needs no quantization.  Always within the float
          exponent range [[-1074, 1023]]: a vanishing noise budget (huge
          gain) clamps to the subnormal floor rather than overflowing
          the int conversion. *)
}

type result = {
  assignments : assignment list;
  total_bits : int option;
      (** [None] if any signal has no finite format, or if an assignment
          is inverted ([msb < lsb] — no representable width) *)
  exploded : string list;
}

(** Variance gain from a unit noise injection at [src] to [out]. *)
val noise_gain :
  Graph.t -> ranges:Range_analysis.result -> src:string -> out:string -> float

(** Assign every datapath node so accumulated quantization noise at
    [output] stays below [sigma_budget] (standard deviation).  Raises
    [Invalid_argument] on a non-positive budget. *)
val assign :
  ?widen_after:int -> Graph.t -> output:string -> sigma_budget:float -> result

val pp : Format.formatter -> result -> unit
