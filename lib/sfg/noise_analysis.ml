(** Analytical quantization-noise propagation.

    The analytical counterpart of the simulation's error monitoring, and
    the engine behind the interpolative-style baseline ([3] in the
    paper): every [Quantize] node injects noise with the uniform model
    (mean = rounding bias, variance = q²/12); [Input] nodes may carry
    source noise (A/D converter, channel SNR).  Noise moments propagate
    under the standard independence assumptions:

    - add/sub: means add/subtract {e with their signs} (two floor-mode
      biases feeding a subtraction partially cancel, exactly as in
      simulation), magnitude bounds add, variances add;
    - mul: for [z = x·y] with independent errors and signal power bounded
      by the (statically known) ranges: [var(ε_z) ≤ ŷ²·var(ε_x) +
      x̂²·var(ε_y)] where [x̂] is the magnitude bound of [x] — the
      conservative bound a pure analysis must take.  The signed mean
      uses the range {e midpoints} as the signal expectation estimate,
      the magnitude bound uses [x̂] as before;
    - delay: moments pass through one cycle; loops iterate to a fixpoint
      (a loop with noise gain ≥ 1 diverges — detected and reported, the
      analytical mirror of the §4.2 divergence on feedback signals).

    Each node carries three moments of the difference error ε:

    - [mean] — the signed first-order estimate of E[ε].  Signed so
      opposing rounding biases cancel instead of stacking; it is an
      {e estimate}, not a bound, because multiplications substitute the
      range midpoint for the unknown signal expectation;
    - [mag] — the conservative bound on |E[ε]| ([|mean| ≤ mag] by
      construction).  This is the monotone quantity the fixpoint
      iterates on and the one sizing decisions should trust;
    - [var] — the variance, as before.

    A derived LSB position via the paper's σ-rule is in {!Wordlength}. *)

type moments = { mean : float; mag : float; var : float }

let zero_m = { mean = 0.0; mag = 0.0; var = 0.0 }

type result = {
  noise : (string * moments) array;  (** per node, node order *)
  diverged : string list;  (** loop noise did not converge *)
  iterations : int;
}

(* Magnitude bound of a node from a prior range analysis. *)
let mag_of ranges id =
  let _, iv = ranges.(id) in
  Interval.mag iv

(* Signal-expectation estimate: the range midpoint, when the range is
   finite.  None (sign unknown) degrades the signed mean estimate to 0
   at that node — the [mag] bound still covers it. *)
let mid_of ranges id =
  let _, iv = ranges.(id) in
  match Interval.bounds iv with
  | Some (lo, hi) when Float.is_finite lo && Float.is_finite hi ->
      Some (0.5 *. (lo +. hi))
  | _ -> None

(* inf · 0 must read as 0 here: an unbounded signal contributes no noise
   through a noiseless operand *)
let gmul a b = if a = 0.0 || b = 0.0 then 0.0 else a *. b

(* Signed mean through one gain factor known only as an option. *)
let smul factor m =
  match factor with Some f -> gmul f m | None -> 0.0

(* Of two competing errors (min/max/select arms), the one with the
   larger estimated bias wins — keeping its sign. *)
let dominant_mean a b =
  if Float.abs b.mean > Float.abs a.mean then b.mean else a.mean

let transfer ranges (n : Node.t) (args : moments list) ~(input_noise : string -> moments) : moments =
  match (n.Node.op, args) with
  | Node.Input _, [] ->
      (* normalise: user-supplied source noise keeps |mean| ≤ mag *)
      let m = input_noise n.Node.name in
      { m with mag = Float.max m.mag (Float.abs m.mean) }
  | Node.Const _, [] -> zero_m
  | Node.Add, [ a; b ] ->
      { mean = a.mean +. b.mean; mag = a.mag +. b.mag; var = a.var +. b.var }
  | Node.Sub, [ a; b ] ->
      (* signed means subtract — floor biases on both arms cancel *)
      { mean = a.mean -. b.mean; mag = a.mag +. b.mag; var = a.var +. b.var }
  | Node.Mul, [ a; b ] ->
      let ia = List.nth n.Node.inputs 0 and ib = List.nth n.Node.inputs 1 in
      let xa = mag_of ranges ia and xb = mag_of ranges ib in
      {
        mean = smul (mid_of ranges ib) a.mean +. smul (mid_of ranges ia) b.mean;
        mag = gmul xb a.mag +. gmul xa b.mag;
        var = gmul (xb *. xb) a.var +. gmul (xa *. xa) b.var;
      }
  | Node.Div, [ a; b ] ->
      (* bound via 1/y magnitude when the divisor range excludes 0 *)
      let ia = List.nth n.Node.inputs 0 and ib = List.nth n.Node.inputs 1 in
      let _, ivb = ranges.(ib) in
      let inv_mag =
        match Interval.bounds ivb with
        | Some (lo, hi) when lo > 0.0 || hi < 0.0 ->
            1.0 /. Float.min (Float.abs lo) (Float.abs hi)
        | _ -> Float.infinity
      in
      let xa = mag_of ranges ia in
      (* ε_z ≈ ε_x/y − (x/y²)·ε_y at the range midpoints; when either
         midpoint is unavailable the signed estimate degrades to 0 and
         only the bound speaks *)
      let mean =
        match (mid_of ranges ia, mid_of ranges ib) with
        | Some ma, Some mb when mb <> 0.0 && Float.is_finite inv_mag ->
            gmul (1.0 /. mb) a.mean -. gmul (ma /. (mb *. mb)) b.mean
        | _ -> 0.0
      in
      {
        mean;
        mag =
          gmul inv_mag a.mag
          +. gmul (gmul xa (inv_mag *. inv_mag)) b.mag;
        var =
          gmul (inv_mag *. inv_mag) a.var
          +. gmul (gmul (xa *. xa) (inv_mag ** 4.0)) b.var;
      }
  | Node.Neg, [ a ] -> { a with mean = -.a.mean }
  | Node.Abs, [ a ] ->
      (* d|x|/dx = sign(x): the error passes with the input's sign when
         the range pins it down, else the bias direction is unknown *)
      let _, iv = ranges.(List.nth n.Node.inputs 0) in
      let mean =
        match Interval.bounds iv with
        | Some (lo, _) when lo >= 0.0 -> a.mean
        | Some (_, hi) when hi <= 0.0 -> -.a.mean
        | _ -> 0.0
      in
      { a with mean }
  | Node.Min, [ a; b ] | Node.Max, [ a; b ] ->
      (* conservative: whichever operand wins, its error passes *)
      {
        mean = dominant_mean a b;
        mag = Float.max a.mag b.mag;
        var = Float.max a.var b.var;
      }
  | Node.Shift k, [ a ] ->
      let s = 2.0 ** Float.of_int k in
      { mean = a.mean *. s; mag = a.mag *. s; var = a.var *. s *. s }
  | Node.Delay _, [ a ] -> a
  | Node.Quantize dt, [ a ] ->
      let _, bias, qvar = Fixpt.Quantize.noise_model dt in
      {
        mean = a.mean +. bias;
        mag = a.mag +. Float.abs bias;
        var = a.var +. qvar;
      }
  | Node.Saturate _, [ a ] -> a
  | Node.Alias, [ a ] -> a
  | Node.Select, [ _c; a; b ] ->
      {
        mean = dominant_mean a b;
        mag = Float.max a.mag b.mag;
        var = Float.max a.var b.var;
      }
  | op, args ->
      invalid_arg
        (Printf.sprintf "Noise_analysis: %s applied to %d args"
           (Node.op_name (fst (op, args)))
           (List.length args))

let default_max_iter = 64
let divergence_threshold = 1.0e12

(** [run graph ~ranges ?input_noise ()] — [ranges] is a completed
    {!Range_analysis.result} (needed for multiplication bounds);
    [input_noise] gives the source error moments per input node
    (default: noiseless inputs). *)
let run ?(max_iter = default_max_iter)
    ?(input_noise = fun (_ : string) -> zero_m) graph
    ~(ranges : Range_analysis.result) =
  Graph.validate_exn graph;
  let ns = Array.of_list (Graph.nodes graph) in
  let cur = Array.make (Array.length ns) zero_m in
  let changed = ref true in
  let iter = ref 0 in
  let close a b =
    Float.abs (a.mean -. b.mean) <= 1e-15 +. (1e-9 *. Float.abs b.mean)
    && Float.abs (a.mag -. b.mag) <= 1e-15 +. (1e-9 *. Float.abs b.mag)
    && Float.abs (a.var -. b.var) <= 1e-24 +. (1e-9 *. Float.abs b.var)
  in
  while !changed && !iter < max_iter do
    changed := false;
    incr iter;
    Array.iteri
      (fun i (n : Node.t) ->
        let args = List.map (fun j -> cur.(j)) n.Node.inputs in
        let next = transfer ranges.Range_analysis.ranges n args ~input_noise in
        (* the bound moments only grow along the iteration (monotone
           system); the signed mean is NOT clamped — forcing it
           monotone is exactly the bug that turned every floor bias
           positive and broke cancellation — it converges on its own in
           any loop whose bound converges *)
        let next =
          {
            mean = next.mean;
            mag = Float.max next.mag cur.(i).mag;
            var = Float.max next.var cur.(i).var;
          }
        in
        if not (close next cur.(i)) then begin
          cur.(i) <- next;
          changed := true
        end)
      ns
  done;
  let noise = Array.mapi (fun i (n : Node.t) -> (n.Node.name, cur.(i))) ns in
  let diverged =
    Array.to_list ns
    |> List.filter_map (fun (n : Node.t) ->
           let m = cur.(n.Node.id) in
           let bad x =
             (!changed && not (Float.is_finite x))
             || x > divergence_threshold || Float.is_nan x
           in
           if bad m.var || bad m.mag then Some n.Node.name else None)
  in
  { noise; diverged; iterations = !iter }

let moments_of result name =
  Array.to_list result.noise
  |> List.find_opt (fun (n, _) -> String.equal n name)
  |> Option.map snd

let sigma_of result name =
  Option.map (fun m -> sqrt m.var) (moments_of result name)

let pp ppf result =
  Format.fprintf ppf "@[<v>";
  Array.iter
    (fun (name, m) ->
      Format.fprintf ppf "%-12s mu=%.3g |mu|<=%.3g sigma=%.3g@," name m.mean
        m.mag (sqrt m.var))
    result.noise;
  if result.diverged <> [] then
    Format.fprintf ppf "diverged: %s@," (String.concat ", " result.diverged);
  Format.fprintf ppf "@]"
