(** Analytical wordlength assignment — the pure-analysis baseline
    (reference [3] in the paper: Willems et al.'s interpolative
    approach, reconstructed at the level of detail the comparison
    needs).

    Given a graph, an output node and an output noise budget (target
    σ at the output), assign every internal signal:

    - an MSB position from the worst-case {!Range_analysis} ranges
      (conservative by construction — this is exactly the overestimation
      the paper's §1 attributes to analytical methods);
    - an LSB position by distributing the noise budget over the
      quantization points, weighted by each point's {e noise gain} to
      the output (measured by injecting a unit variance at the point and
      propagating it analytically).

    The hybrid flow ({!Refine.Flow}) is benchmarked against this
    assignment in the §"compare" experiment. *)

type assignment = {
  name : string;
  msb : int option;  (** None — range exploded, no finite MSB *)
  lsb : int option;  (** None — node needs no quantization (const/control) *)
}

type result = {
  assignments : assignment list;
  total_bits : int option;  (** None if any signal has no finite format *)
  exploded : string list;
}

(* Noise gain of node [src] to node [out]: propagate a unit variance
   injected at [src] through the moment system. *)
let noise_gain graph ~ranges ~src ~out =
  let inject name =
    if String.equal name src then
      { Noise_analysis.zero_m with Noise_analysis.var = 1.0 }
    else Noise_analysis.zero_m
  in
  (* Injection at arbitrary (non-input) nodes: model by treating the node
     as if it quantized with unit variance — we reuse the input mechanism
     by wrapping the transfer: simplest sound approach is to run the
     moment system with an extra additive unit variance at [src]. *)
  let ns = Array.of_list (Graph.nodes graph) in
  let cur = Array.make (Array.length ns) Noise_analysis.zero_m in
  let changed = ref true in
  let iter = ref 0 in
  while !changed && !iter < 64 do
    changed := false;
    incr iter;
    Array.iteri
      (fun i (n : Node.t) ->
        let args = List.map (fun j -> cur.(j)) n.Node.inputs in
        let next =
          Noise_analysis.transfer ranges.Range_analysis.ranges n args
            ~input_noise:inject
        in
        let next =
          (* non-input injection points get the unit variance added here;
             input nodes already received it through [inject] *)
          match n.Node.op with
          | Node.Input _ -> next
          | _ ->
              if String.equal n.Node.name src then
                { next with Noise_analysis.var = next.Noise_analysis.var +. 1.0 }
              else next
        in
        let next =
          (* only the bound moments are monotone; the signed mean is
             left free (see {!Noise_analysis.run}) — irrelevant here
             anyway, the gain probe reads variances *)
          {
            next with
            Noise_analysis.mag =
              Float.max next.Noise_analysis.mag cur.(i).Noise_analysis.mag;
            var = Float.max next.Noise_analysis.var cur.(i).Noise_analysis.var;
          }
        in
        if
          Float.abs (next.Noise_analysis.var -. cur.(i).Noise_analysis.var)
          > 1e-12 *. (1.0 +. cur.(i).Noise_analysis.var)
        then begin
          cur.(i) <- next;
          changed := true
        end)
      ns
  done;
  match
    Array.to_list ns
    |> List.find_opt (fun (n : Node.t) -> String.equal n.Node.name out)
  with
  | Some n -> cur.(n.Node.id).Noise_analysis.var
  | None -> invalid_arg (Printf.sprintf "Wordlength.noise_gain: no node %s" out)

(* Nodes that carry a datapath value needing a format (not constants-only
   controls). *)
let needs_format (n : Node.t) =
  match n.Node.op with
  | Node.Const _ -> false
  | _ -> true

(** [assign graph ~output ~sigma_budget] — compute the analytical
    wordlength assignment such that the accumulated quantization noise
    at [output] stays below [sigma_budget] (standard deviation). *)
let assign ?(widen_after = Range_analysis.default_widen_after) graph ~output
    ~sigma_budget =
  if sigma_budget <= 0.0 then invalid_arg "Wordlength.assign: budget <= 0";
  let ranges = Range_analysis.run ~widen_after graph in
  let ns = List.filter needs_format (Graph.nodes graph) in
  let q_points = List.filter (fun (n : Node.t) -> not (Node.is_stateful n.Node.op)) ns in
  let nq = max 1 (List.length q_points) in
  let var_budget_each = sigma_budget *. sigma_budget /. Float.of_int nq in
  let assignments =
    List.map
      (fun (n : Node.t) ->
        let name = n.Node.name in
        let msb = Range_analysis.msb_of ranges name in
        let lsb =
          if not (List.exists (fun (q : Node.t) -> q.Node.id = n.Node.id) q_points)
          then None
          else begin
            let gain = noise_gain graph ~ranges ~src:name ~out:output in
            if gain <= 0.0 || not (Float.is_finite gain) then None
            else
              (* q²/12 · gain ≤ budget_each  ⇒  q ≤ sqrt(12·budget/gain) *)
              let q = sqrt (12.0 *. var_budget_each /. gain) in
              (* a huge gain underflows q to 0 and log2 to −∞, whose
                 int conversion is unspecified: clamp to the float
                 exponent range, like [Err_stats.precision_of] *)
              let p = Float.floor (Float.log2 q) in
              Some (Float.to_int (Float.max (-1074.0) (Float.min 1023.0 p)))
          end
        in
        { name; msb; lsb })
      ns
  in
  let exploded = ranges.Range_analysis.exploded in
  let total_bits =
    List.fold_left
      (fun acc a ->
        match (acc, a.msb, a.lsb) with
        (* an inverted format (msb < lsb) has no representable width:
           refuse to total it instead of summing a negative count *)
        | Some _, Some m, Some l when m < l -> None
        | Some total, Some m, Some l -> Some (total + (m - l + 1))
        | Some total, Some _, None -> Some total (* no quantizer here *)
        | _, None, _ -> None
        | None, _, _ -> None)
      (Some 0) assignments
  in
  { assignments; total_bits; exploded }

let pp ppf result =
  Format.fprintf ppf "@[<v>";
  List.iter
    (fun a ->
      Format.fprintf ppf "%-12s msb=%s lsb=%s@," a.name
        (match a.msb with Some m -> string_of_int m | None -> "∞")
        (match a.lsb with Some l -> string_of_int l | None -> "-"))
    result.assignments;
  (match result.total_bits with
  | Some b -> Format.fprintf ppf "total bits: %d@," b
  | None -> Format.fprintf ppf "total bits: unbounded@,");
  Format.fprintf ppf "@]"
