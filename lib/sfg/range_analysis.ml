(** Analytical range propagation over a signal-flow graph (§4.1
    "Analytical").

    Performs a fixpoint iteration of the interval transfer functions.
    Feed-forward graphs converge in one pass (node order is
    topological); feedback loops through delays may grow without bound —
    the {e MSB explosion} of §4.1.  Termination is forced by interval
    widening after [widen_after] rounds: a bound still growing then
    jumps to infinity.  An ascending phase with widening is followed by
    a bounded {e narrowing} phase (intersection with re-evaluated
    transfer results), so bounds that only blew up transiently — e.g. a
    loop clamped by a [Saturate] node downstream of the widened delay —
    are recovered.  Nodes still unbounded after narrowing are reported
    as exploded; the remedies are the paper's: a [Saturate] node
    (explicit [range()]) or a saturating [Quantize] type in the loop.

    Convergence of slowly-contracting loops (e.g. [acc' = 0.5·acc + x])
    is declared at a relative tolerance of 1e-6; the residual
    under-approximation is orders of magnitude below MSB (power-of-two)
    granularity. *)

type result = {
  ranges : (string * Interval.t) array;  (** per node, in node order *)
  exploded : string list;  (** nodes whose range is unbounded *)
  degraded : string list;
      (** nodes whose range exploded but was capped to the declared
          bound (graceful degradation; disjoint from [exploded]) *)
  iterations : int;  (** rounds until fixpoint *)
}

let default_widen_after = 16
let default_max_iter = 64
let narrow_sweeps = 8
let rel_tol = 1e-6

(* approximately-equal intervals: stops asymptotically-contracting loops *)
let approx_equal a b =
  match (a, b) with
  | Interval.Empty, Interval.Empty -> true
  | Interval.Empty, _ | _, Interval.Empty -> false
  | a, b ->
      let close x y =
        x = y
        || Float.is_finite x && Float.is_finite y
           && Float.abs (x -. y)
              <= rel_tol *. (1.0 +. Float.max (Float.abs x) (Float.abs y))
      in
      close (Interval.lo a) (Interval.lo b) && close (Interval.hi a) (Interval.hi b)

(** Run the analysis.  [widen_after] — rounds of exact iteration before
    widening kicks in (more rounds = tighter results on loops that do
    converge, slower detection of explosions).  [declared] — a declared
    ([range()]-style) bound per node name: a node whose range would
    widen to infinity is instead capped at its declared bound and
    reported in [degraded] rather than [exploded] — analysis survives
    the explosion with a sound-but-flagged fallback. *)
let run ?(widen_after = default_widen_after) ?(max_iter = default_max_iter)
    ?(declared : string -> Interval.t option = fun _ -> None) graph =
  Graph.validate_exn graph;
  let ns = Array.of_list (Graph.nodes graph) in
  let cur = Array.make (Array.length ns) Interval.empty in
  let capped = Array.make (Array.length ns) false in
  (* Delays start from their initial value so loops have a seed. *)
  Array.iteri
    (fun i (n : Node.t) ->
      match n.Node.op with
      | Node.Delay init -> cur.(i) <- Interval.of_point init
      | _ -> ())
    ns;
  let changed = ref true in
  let iter = ref 0 in
  while !changed && !iter < max_iter do
    changed := false;
    incr iter;
    Array.iteri
      (fun i (n : Node.t) ->
        let args = List.map (fun j -> cur.(j)) n.Node.inputs in
        let next =
          match n.Node.op with
          | Node.Delay init ->
              (* a delay's range is its init joined with everything its
                 input could have been *)
              Node.eval_range (Node.Delay init) args
          | op -> Node.eval_range op args
        in
        (* monotone accumulation, then widening once past the budget;
           a declared bound turns the infinity jump into a finite cap *)
        let next = Interval.join cur.(i) next in
        let next =
          if !iter > widen_after then (
            match declared n.Node.name with
            | Some within ->
                let w = Interval.widen_within ~within cur.(i) next in
                if not (approx_equal w (Interval.widen cur.(i) next)) then
                  capped.(i) <- true;
                w
            | None -> Interval.widen cur.(i) next)
          else next
        in
        if not (approx_equal next cur.(i)) then begin
          cur.(i) <- next;
          changed := true
        end)
      ns
  done;
  (* narrowing: recover precision lost to widening where a downstream
     clamp actually bounds the loop; meet keeps soundness (cur stays a
     superset of the least fixpoint for monotone transfers) *)
  for _ = 1 to narrow_sweeps do
    Array.iteri
      (fun i (n : Node.t) ->
        let args = List.map (fun j -> cur.(j)) n.Node.inputs in
        let next = Node.eval_range n.Node.op args in
        let narrowed = Interval.meet cur.(i) next in
        if not (Interval.is_empty narrowed) then cur.(i) <- narrowed)
      ns
  done;
  let ranges =
    Array.mapi (fun i (n : Node.t) -> (n.Node.name, cur.(i))) ns
  in
  let exploded =
    Array.to_list ns
    |> List.filter_map (fun (n : Node.t) ->
           if Interval.is_exploded cur.(n.Node.id) then Some n.Node.name
           else None)
  in
  (* a node counts degraded only when the cap actually bounded it; a
     node still unbounded after capping stays an explosion *)
  let degraded =
    Array.to_list ns
    |> List.filter_map (fun (n : Node.t) ->
           if capped.(n.Node.id) && not (Interval.is_exploded cur.(n.Node.id))
           then Some n.Node.name
           else None)
  in
  { ranges; exploded; degraded; iterations = !iter }

let range_of result name =
  Array.to_list result.ranges
  |> List.find_opt (fun (n, _) -> String.equal n name)
  |> Option.map snd

(** Required MSB position per node (None when exploded/unbounded) —
    the paper's [F] applied to the analytical ranges. *)
let msb_of result name =
  match range_of result name with
  | None | Some Interval.Empty -> None
  | Some iv ->
      Fixpt.Qformat.required_msb Fixpt.Sign_mode.Tc ~vmin:(Interval.lo iv)
        ~vmax:(Interval.hi iv)

let pp ppf result =
  Format.fprintf ppf "@[<v>";
  Array.iter
    (fun (name, iv) ->
      Format.fprintf ppf "%-12s %s@," name (Interval.to_string iv))
    result.ranges;
  if result.exploded <> [] then
    Format.fprintf ppf "exploded: %s@,"
      (String.concat ", " result.exploded);
  if result.degraded <> [] then
    Format.fprintf ppf "degraded to declared bound: %s@,"
      (String.concat ", " result.degraded);
  Format.fprintf ppf "@]"
