(** Analytical range propagation over a signal-flow graph (§4.1
    "Analytical"): a fixpoint of the interval transfer functions, with
    widening after [widen_after] rounds to force termination on feedback
    loops and a bounded narrowing phase to recover precision where a
    downstream clamp actually bounds the loop.  Unbounded nodes are
    reported as exploded — the paper's MSB explosion, remedied by a
    [Saturate] node ([range()]) or a saturating type in the loop. *)

type result = {
  ranges : (string * Interval.t) array;  (** per node, node order *)
  exploded : string list;
  degraded : string list;
      (** nodes whose range exploded but was capped to the declared
          bound passed via [?declared] (graceful degradation; disjoint
          from [exploded]) *)
  iterations : int;
}

val default_widen_after : int
val default_max_iter : int

(** [declared] supplies an optional declared ([range()]-style) bound
    per node name: a node whose range would widen to infinity is capped
    there and reported in [degraded] instead of [exploded].  Default:
    no declared bounds (behaviour unchanged). *)
val run :
  ?widen_after:int ->
  ?max_iter:int ->
  ?declared:(string -> Interval.t option) ->
  Graph.t ->
  result

(** First node with that name; [None] if absent. *)
val range_of : result -> string -> Interval.t option

(** Required MSB position per node ([None] when exploded/unbounded). *)
val msb_of : result -> string -> int option

val pp : Format.formatter -> result -> unit
