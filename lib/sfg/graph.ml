(** Signal-flow-graph construction and interpretation.

    A graph is built with the combinator API below ([input], [add],
    [mul], …), each call creating a named node.  Feedback loops are tied
    with {!delay} + {!connect_delay}: declare the delay first (so it can
    be referenced), then connect its input once the loop body exists —
    the textual analogue of drawing the feedback arc last.

    The module also contains a cycle-accurate interpreter ({!simulate}),
    used by tests to check that the static analyses are sound with
    respect to actual execution. *)

type t = {
  mutable nodes : Node.t list;  (** reversed *)
  mutable n : int;
  mutable outputs : (string * int) list;  (** declared outputs, reversed *)
  mutable pending_delays : int list;  (** delays awaiting [connect_delay] *)
}

type id = int

let create () = { nodes = []; n = 0; outputs = []; pending_delays = [] }

let node_count t = t.n

let nodes t = List.rev t.nodes

let node t id =
  match List.find_opt (fun (n : Node.t) -> n.Node.id = id) t.nodes with
  | Some n -> n
  | None -> invalid_arg (Printf.sprintf "Graph.node: no node %d" id)

let fresh t ~name ~op ~inputs =
  if List.length inputs <> Node.arity op then
    invalid_arg
      (Printf.sprintf "Graph: %s expects %d inputs, got %d" (Node.op_name op)
         (Node.arity op) (List.length inputs));
  List.iter (fun i -> ignore (node t i)) inputs;
  let n = { Node.id = t.n; name; op; inputs } in
  t.nodes <- n :: t.nodes;
  t.n <- t.n + 1;
  n.Node.id

(* --- builders --------------------------------------------------------- *)

let input t name ~lo ~hi =
  fresh t ~name ~op:(Node.Input (Interval.make lo hi)) ~inputs:[]

let const t ?name c =
  let name = Option.value name ~default:(Printf.sprintf "c%g" c) in
  fresh t ~name ~op:(Node.Const c) ~inputs:[]

let add t ?(name = "add") a b = fresh t ~name ~op:Node.Add ~inputs:[ a; b ]
let sub t ?(name = "sub") a b = fresh t ~name ~op:Node.Sub ~inputs:[ a; b ]
let mul t ?(name = "mul") a b = fresh t ~name ~op:Node.Mul ~inputs:[ a; b ]
let div t ?(name = "div") a b = fresh t ~name ~op:Node.Div ~inputs:[ a; b ]
let neg t ?(name = "neg") a = fresh t ~name ~op:Node.Neg ~inputs:[ a ]
let abs t ?(name = "abs") a = fresh t ~name ~op:Node.Abs ~inputs:[ a ]
let min_ t ?(name = "min") a b = fresh t ~name ~op:Node.Min ~inputs:[ a; b ]
let max_ t ?(name = "max") a b = fresh t ~name ~op:Node.Max ~inputs:[ a; b ]

let shift t ?(name = "shl") a k =
  fresh t ~name ~op:(Node.Shift k) ~inputs:[ a ]

let quantize t ?(name = "q") dt a =
  fresh t ~name ~op:(Node.Quantize dt) ~inputs:[ a ]

let saturate t ?(name = "sat") a ~lo ~hi =
  fresh t ~name ~op:(Node.Saturate (Interval.make lo hi)) ~inputs:[ a ]

let select t ?(name = "sel") cond a b =
  fresh t ~name ~op:Node.Select ~inputs:[ cond; a; b ]

(** Name an existing expression after the signal it drives. *)
let alias t ~name src = fresh t ~name ~op:Node.Alias ~inputs:[ src ]

(** Declare a unit delay whose input is connected later (feedback). *)
let delay t ?(init = 0.0) name =
  (* arity is 1 but the input is unknown yet: use a placeholder self-loop
     id fixed up by [connect_delay]. *)
  let id = t.n in
  let n = { Node.id; name; op = Node.Delay init; inputs = [ id ] } in
  t.nodes <- n :: t.nodes;
  t.n <- t.n + 1;
  t.pending_delays <- id :: t.pending_delays;
  id

(** [connect_delay t d src] — tie the loop: delay [d] now registers
    [src] each cycle. *)
let connect_delay t d src =
  if not (List.mem d t.pending_delays) then
    invalid_arg "Graph.connect_delay: not a pending delay";
  ignore (node t src);
  t.nodes <-
    List.map
      (fun (n : Node.t) ->
        if n.Node.id = d then { n with Node.inputs = [ src ] } else n)
      t.nodes;
  t.pending_delays <- List.filter (fun x -> x <> d) t.pending_delays

(** A delay already fed by an existing node (feed-forward delay lines). *)
let delay_of t ?(init = 0.0) name src =
  fresh t ~name ~op:(Node.Delay init) ~inputs:[ src ]

let mark_output t name id =
  ignore (node t id);
  t.outputs <- (name, id) :: t.outputs

(** Delay nodes still awaiting {!connect_delay}.  A pending delay is a
    self-loop placeholder, which as-is denotes a register that holds its
    value forever — trace extraction leaves never-written registers in
    exactly that state on purpose. *)
let pending_ids t = t.pending_delays

(** Accept a pending delay's self-loop as final (a hold register). *)
let seal_delay t d =
  if not (List.mem d t.pending_delays) then
    invalid_arg "Graph.seal_delay: not a pending delay";
  t.pending_delays <- List.filter (fun x -> x <> d) t.pending_delays

let outputs t = List.rev t.outputs

(* --- canonical serialization ------------------------------------------- *)

(* Hex-float literals (%h) are exact: two graphs render identically iff
   every numeric parameter is bit-identical, which is exactly the
   property a content-addressed evaluation cache keys on.  Non-finite
   bounds (open input ranges) render through %h too ("inf"/"nan"). *)
let hex_lit v = Printf.sprintf "%h" v

let op_json (op : Node.op) =
  match op with
  | Node.Input iv ->
      Printf.sprintf "{\"op\": \"input\", \"lo\": \"%s\", \"hi\": \"%s\"}"
        (hex_lit (Interval.lo iv))
        (hex_lit (Interval.hi iv))
  | Node.Const c -> Printf.sprintf "{\"op\": \"const\", \"c\": \"%s\"}" (hex_lit c)
  | Node.Add -> "{\"op\": \"add\"}"
  | Node.Sub -> "{\"op\": \"sub\"}"
  | Node.Mul -> "{\"op\": \"mul\"}"
  | Node.Div -> "{\"op\": \"div\"}"
  | Node.Neg -> "{\"op\": \"neg\"}"
  | Node.Abs -> "{\"op\": \"abs\"}"
  | Node.Min -> "{\"op\": \"min\"}"
  | Node.Max -> "{\"op\": \"max\"}"
  | Node.Shift k -> Printf.sprintf "{\"op\": \"shift\", \"k\": %d}" k
  | Node.Delay init ->
      Printf.sprintf "{\"op\": \"delay\", \"init\": \"%s\"}" (hex_lit init)
  | Node.Quantize dt ->
      Printf.sprintf "{\"op\": \"quantize\", \"dtype\": %S}"
        (Fixpt.Dtype.to_string dt)
  | Node.Saturate iv ->
      Printf.sprintf "{\"op\": \"saturate\", \"lo\": \"%s\", \"hi\": \"%s\"}"
        (hex_lit (Interval.lo iv))
        (hex_lit (Interval.hi iv))
  | Node.Select -> "{\"op\": \"select\"}"
  | Node.Alias -> "{\"op\": \"alias\"}"

let canonical_json t =
  let b = Buffer.create 1024 in
  Buffer.add_string b "{\"nodes\": [";
  List.iteri
    (fun i (n : Node.t) ->
      if i > 0 then Buffer.add_string b ", ";
      Buffer.add_string b
        (Printf.sprintf "{\"id\": %d, \"name\": %S, \"node\": %s, \"inputs\": [%s]}"
           n.Node.id n.Node.name (op_json n.Node.op)
           (String.concat ", " (List.map string_of_int n.Node.inputs))))
    (nodes t);
  Buffer.add_string b "], \"outputs\": [";
  List.iteri
    (fun i (name, id) ->
      if i > 0 then Buffer.add_string b ", ";
      Buffer.add_string b (Printf.sprintf "{\"name\": %S, \"id\": %d}" name id))
    (outputs t);
  Buffer.add_string b "]}";
  Buffer.contents b

(** Check the graph is complete (no dangling feedback delays). *)
let validate t =
  match t.pending_delays with
  | [] -> Ok ()
  | ds ->
      Error
        (Printf.sprintf "unconnected delay nodes: %s"
           (String.concat ", "
              (List.map (fun d -> (node t d).Node.name) ds)))

let validate_exn t =
  match validate t with Ok () -> () | Error m -> invalid_arg m

(* --- interpretation --------------------------------------------------- *)

(** [simulate t ~steps ~inputs] runs the graph cycle-accurately.
    [inputs name cycle] supplies each input node's sample.  Returns, for
    every node, the trace of its values as [(name, float array)] in node
    order.  Delays output their initial value at cycle 0.

    [?inject] is the fault hook: applied to the computed value of
    [Input] and [Quantize] nodes (the two assignment-like sites the
    clock-true simulator's injector covers), so a fault plan replays
    identically here and in the compiled executor. *)
let simulate ?inject t ~steps ~inputs =
  validate_exn t;
  let ns = Array.of_list (nodes t) in
  let values = Array.make (Array.length ns) 0.0 in
  let state =
    Array.map
      (fun (n : Node.t) ->
        match n.Node.op with Node.Delay init -> init | _ -> 0.0)
      ns
  in
  let traces = Array.map (fun (n : Node.t) -> (n, Array.make steps 0.0)) ns in
  (* evaluation order: node id order is construction order, which is
     topological for everything except delay feedback arcs — exactly the
     dependence structure a delay breaks. *)
  for step = 0 to steps - 1 do
    Array.iteri
      (fun i (n : Node.t) ->
        let args = List.map (fun j -> values.(j)) n.Node.inputs in
        let v =
          match n.Node.op with
          | Node.Input _ -> inputs n.Node.name step
          | op -> Node.eval_value op args ~state:state.(i)
        in
        let v =
          match inject with
          | None -> v
          | Some f -> (
              match n.Node.op with
              | Node.Input _ | Node.Quantize _ ->
                  f ~name:n.Node.name ~step v
              | _ -> v)
        in
        values.(i) <- v)
      ns;
    (* commit delay registers from their (already evaluated) inputs *)
    Array.iteri
      (fun i (n : Node.t) ->
        match n.Node.op with
        | Node.Delay _ ->
            let src = List.hd n.Node.inputs in
            state.(i) <- values.(src)
        | _ -> ())
      ns;
    Array.iter (fun (n, tr) -> tr.(step) <- values.(n.Node.id)) traces
  done;
  Array.to_list (Array.map (fun (n, tr) -> (n.Node.name, tr)) traces)
