(** Analytical quantization-noise propagation — the static counterpart
    of error monitoring and the engine of the interpolative-style
    baseline (paper reference [3]).  [Quantize] nodes inject uniform-
    model noise; moments propagate under independence assumptions with
    range-based magnitude bounds at multiplications; loops iterate to a
    fixpoint (noise gain ≥ 1 diverges and is reported — the analytical
    mirror of §4.2's divergence). *)

type moments = {
  mean : float;
      (** signed first-order estimate of E[ε] — floor-mode biases carry
          their sign so opposing biases cancel through [Sub]/[Neg];
          multiplications estimate the unknown signal expectation by the
          range midpoint, so this is an estimate, not a bound *)
  mag : float;
      (** conservative bound on |E[ε]| ([|mean| <= mag] by
          construction) — the monotone quantity the fixpoint iterates
          on; sizing decisions should trust this one *)
  var : float;  (** variance of ε *)
}

val zero_m : moments

type result = {
  noise : (string * moments) array;  (** per node, node order *)
  diverged : string list;
  iterations : int;
}

(** Single-node transfer (exposed for {!Wordlength}'s gain probing). *)
val transfer :
  (string * Interval.t) array ->
  Node.t ->
  moments list ->
  input_noise:(string -> moments) ->
  moments

val default_max_iter : int

(** [ranges] — a completed {!Range_analysis.result} (multiplication
    bounds); [input_noise] — source error moments per input node
    (default: noiseless). *)
val run :
  ?max_iter:int ->
  ?input_noise:(string -> moments) ->
  Graph.t ->
  ranges:Range_analysis.result ->
  result

val moments_of : result -> string -> moments option
val sigma_of : result -> string -> float option
val pp : Format.formatter -> result -> unit
