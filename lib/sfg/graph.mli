(** Signal-flow-graph construction and interpretation.

    Build with the combinator API; tie feedback loops with {!delay}
    (declare first) + {!connect_delay} (connect once the loop body
    exists).  {!simulate} interprets the graph cycle-accurately, used to
    check the static analyses against execution. *)

type t
type id = int

val create : unit -> t
val node_count : t -> int

(** Nodes in construction order (topological except delay feedback
    arcs). *)
val nodes : t -> Node.t list

(** Raises [Invalid_argument] for an unknown id. *)
val node : t -> id -> Node.t

(** Low-level node creation (arity-checked); prefer the builders. *)
val fresh : t -> name:string -> op:Node.op -> inputs:id list -> id

val input : t -> string -> lo:float -> hi:float -> id
val const : t -> ?name:string -> float -> id
val add : t -> ?name:string -> id -> id -> id
val sub : t -> ?name:string -> id -> id -> id
val mul : t -> ?name:string -> id -> id -> id
val div : t -> ?name:string -> id -> id -> id
val neg : t -> ?name:string -> id -> id
val abs : t -> ?name:string -> id -> id
val min_ : t -> ?name:string -> id -> id -> id
val max_ : t -> ?name:string -> id -> id -> id
val shift : t -> ?name:string -> id -> int -> id
val quantize : t -> ?name:string -> Fixpt.Dtype.t -> id -> id
val saturate : t -> ?name:string -> id -> lo:float -> hi:float -> id
val select : t -> ?name:string -> id -> id -> id -> id

(** Name an existing expression after the signal it drives. *)
val alias : t -> name:string -> id -> id

(** Declare a unit delay whose input is connected later (feedback). *)
val delay : t -> ?init:float -> string -> id

(** Tie the loop: the delay now registers [src] each cycle. *)
val connect_delay : t -> id -> id -> unit

(** A delay already fed by an existing node (feed-forward lines). *)
val delay_of : t -> ?init:float -> string -> id -> id

val mark_output : t -> string -> id -> unit
val outputs : t -> (string * id) list

(** Canonical, byte-stable JSON of the whole graph — every node (id,
    name, operation with all numeric parameters as {e exact} hex-float
    literals, input ids) in construction order plus the declared
    outputs.  Two graphs render identically iff they are structurally
    identical with bit-identical parameters, which is what makes this
    string the hashing substrate of the content-addressed evaluation
    cache ({!Serve.Cache}). *)
val canonical_json : t -> string

(** Pending (unconnected) delays — self-loop placeholders denoting
    hold registers. *)
val pending_ids : t -> id list

(** Accept a pending delay's self-loop as final (a hold register). *)
val seal_delay : t -> id -> unit

(** [Error] lists unconnected feedback delays. *)
val validate : t -> (unit, string) result

val validate_exn : t -> unit

(** Cycle-accurate interpretation: [inputs name cycle] supplies each
    input node's sample; returns per-node value traces in node order.
    Delays output their initial value at cycle 0.

    [?inject] is the fault hook, applied to the computed value of
    [Input] and [Quantize] nodes only (the assignment-like sites);
    it must be pure in [(name, step, value)] so a fault plan replays
    identically here and in the compiled executor ({!Compile}). *)
val simulate :
  ?inject:(name:string -> step:int -> float -> float) ->
  t ->
  steps:int ->
  inputs:(string -> int -> float) ->
  (string * float array) list
