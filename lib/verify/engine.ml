(** Explicit-state verification over the compiled executor — see the
    interface for the soundness contract.

    The search state is the vector of delay-register values.  For a
    refined design those live on a quantizer grid, so the reachable set
    is finite and breadth-first closure under the full input alphabet
    is a {e proof}.  Transitions execute the real compiled program
    ({!Compile.step_once}) with one lane per alphabet letter: planting
    the same state in every lane and stepping once evaluates every
    admissible input in a single pass, and the program's overflow
    tallies attribute events to the step just taken.  A batch-1 twin
    program pinpoints the exact letter (and quantizer) when the batched
    tally fires, so counterexamples are rebuilt in deterministic
    first-state/first-letter order. *)

type property = No_overflow | No_limit_cycle

type violation =
  | Overflow of { node : string; step : int }
  | Limit_cycle of { start : int; period : int }

type counterexample = {
  steps : int;
  stimulus : (string * float array) list;
  violation : violation;
}

type verdict = Proved | Refuted of counterexample | Bounded_out of string

type stats = {
  letters : int;
  exhaustive : bool;
  states : int;
  transitions : int;
  truncated : bool;
  crashed : bool;
}

type report = { property : property; verdict : verdict; stats : stats }

let property_name = function
  | No_overflow -> "no-overflow"
  | No_limit_cycle -> "no-limit-cycle"

let property_of_string s =
  match String.lowercase_ascii (String.trim s) with
  | "overflow" | "no-overflow" -> Some No_overflow
  | "limit-cycle" | "no-limit-cycle" | "limitcycle" -> Some No_limit_cycle
  | _ -> None

(* --- growable arrays ---------------------------------------------------- *)

module Dyn = struct
  type 'a t = { mutable a : 'a array; mutable n : int; dummy : 'a }

  let create dummy = { a = Array.make 64 dummy; n = 0; dummy }

  let push t x =
    if t.n = Array.length t.a then begin
      let b = Array.make (2 * t.n) t.dummy in
      Array.blit t.a 0 b 0 t.n;
      t.a <- b
    end;
    t.a.(t.n) <- x;
    t.n <- t.n + 1

  let get t i = t.a.(i)
  let len t = t.n
end

(* --- input alphabet ----------------------------------------------------- *)

(* One input node's admissible sample set.  [values] are {e admissible}
   reals (inside the declared interval); when [grid] they are exactly
   one representative per reachable post-quantization value, which is
   behaviour-complete when the quantizer is the input's sole consumer. *)
type ispec = { iname : string; values : float array; grid : bool; zero : float }

let resolve_alias g id =
  let rec go id =
    let nd = Sfg.Graph.node g id in
    match nd.Sfg.Node.op with
    | Sfg.Node.Alias -> go (List.hd nd.Sfg.Node.inputs)
    | _ -> id
  in
  go id

(* The quantizer directly downstream of input [id] (through aliases),
   provided it is the input's only real consumer — the condition under
   which quantizer-grid representatives cover every behaviour. *)
let sole_quantizer g id =
  let dt = ref None and consumers = ref 0 in
  List.iter
    (fun (nd : Sfg.Node.t) ->
      match nd.Sfg.Node.op with
      | Sfg.Node.Alias -> ()
      | op ->
          List.iter
            (fun s ->
              if resolve_alias g s = id then begin
                incr consumers;
                match op with
                | Sfg.Node.Quantize d when !dt = None -> dt := Some d
                | _ -> ()
              end)
            nd.Sfg.Node.inputs)
    (Sfg.Graph.nodes g);
  if !consumers = 1 then !dt else None

let max_grid_per_input = 4096

(* Admissible representatives of the post-quantization image of
   [lo, hi]: the cast is monotone inside the representable range, so
   the image is every grid point between [cast lo] and [cast hi]; each
   representative is the grid point clamped back into the declared
   interval (so extreme letters stay admissible while quantizing to
   their grid value). *)
let grid_values dt ~lo ~hi =
  let min_v = Fixpt.Dtype.min_value dt and max_v = Fixpt.Dtype.max_value dt in
  if lo < min_v || hi > max_v then None
  else
    let step = Fixpt.Dtype.step dt in
    let klo = Fixpt.Quantize.cast dt lo /. step
    and khi = Fixpt.Quantize.cast dt hi /. step in
    let klo = Float.to_int (Float.round klo)
    and khi = Float.to_int (Float.round khi) in
    let count = khi - klo + 1 in
    if count < 1 || count > max_grid_per_input then None
    else
      Some
        (Array.init count (fun i ->
             let v = Float.of_int (klo + i) *. step in
             Float.max lo (Float.min hi v)))

let corner_values dt ~lo ~hi =
  let with_dt f = match dt with Some d -> [ f d ] | None -> [] in
  let candidates =
    [ lo; hi; 0.0; Float.succ lo; Float.pred hi; 0.5 *. lo; 0.5 *. hi ]
    @ with_dt Fixpt.Dtype.min_value
    @ with_dt Fixpt.Dtype.max_value
    @ with_dt Fixpt.Dtype.step
    @ with_dt (fun d -> -.Fixpt.Dtype.step d)
    @ with_dt (fun d -> lo +. Fixpt.Dtype.step d)
    @ with_dt (fun d -> hi -. Fixpt.Dtype.step d)
  in
  let ok v = Float.is_finite v && v >= lo && v <= hi in
  let vs = List.sort_uniq compare (List.filter ok candidates) in
  match vs with [] -> [| lo |] | _ -> Array.of_list vs

let sanitize dt iv =
  let lo, hi =
    match iv with
    | Interval.Range { lo; hi } -> (lo, hi)
    | Interval.Empty -> (nan, nan)
  in
  let dflt f d = match dt with Some x -> f x | None -> d in
  let lo = if Float.is_finite lo then lo else dflt Fixpt.Dtype.min_value (-1.0) in
  let hi = if Float.is_finite hi then hi else dflt Fixpt.Dtype.max_value 1.0 in
  if lo <= hi then (lo, hi) else (hi, lo)

let input_specs g =
  List.filter_map
    (fun (nd : Sfg.Node.t) ->
      match nd.Sfg.Node.op with
      | Sfg.Node.Input iv ->
          let dt = sole_quantizer g nd.Sfg.Node.id in
          let lo, hi = sanitize dt iv in
          let zero = Float.max lo (Float.min hi 0.0) in
          let values, grid =
            match dt with
            | Some d -> (
                match grid_values d ~lo ~hi with
                | Some vs -> (vs, true)
                | None -> (corner_values dt ~lo ~hi, false))
            | None -> (corner_values dt ~lo ~hi, false)
          in
          Some { iname = nd.Sfg.Node.name; values; grid; zero }
      | _ -> None)
    (Sfg.Graph.nodes g)

let max_corner_letters = 256

(* The alphabet: the cross product of per-input sample sets, input 0
   slowest-varying.  Exhaustive iff every input contributed its full
   grid and the product fits in [2^max_bits]; otherwise the per-input
   sets degrade to corners and the product is capped (refute-only). *)
let build_alphabet ~max_bits specs =
  let specs = Array.of_list specs in
  let n = Array.length specs in
  let cap = 1 lsl max_bits in
  let product limit vs =
    Array.fold_left
      (fun acc (v : float array) ->
        if acc > limit then acc else acc * Stdlib.max 1 (Array.length v))
      1 vs
  in
  let grids = Array.map (fun s -> s.values) specs in
  let exhaustive =
    Array.for_all (fun s -> s.grid) specs && product cap grids <= cap
  in
  let sets =
    if exhaustive then grids
    else
      Array.map
        (fun s ->
          if s.grid && Array.length s.values <= 8 then s.values
          else
            let dt = None in
            let lo = s.values.(0)
            and hi = s.values.(Array.length s.values - 1) in
            corner_values dt ~lo ~hi)
        specs
  in
  let limit = if exhaustive then cap else max_corner_letters in
  let total = Stdlib.min (product limit sets) limit in
  let truncated = (not exhaustive) && product limit sets > limit in
  let counters = Array.make n 0 in
  let letters =
    Array.init total (fun _ ->
        let letter = Array.init n (fun i -> sets.(i).(counters.(i))) in
        (* increment the mixed-radix counter, last input fastest *)
        let rec bump i =
          if i >= 0 then begin
            counters.(i) <- counters.(i) + 1;
            if counters.(i) >= Array.length sets.(i) then begin
              counters.(i) <- 0;
              bump (i - 1)
            end
          end
        in
        bump (n - 1);
        letter)
  in
  (specs, letters, exhaustive, truncated)

(* --- reachable-state closure ------------------------------------------- *)

type search = {
  sts : float array Dyn.t;  (* state id -> register vector *)
  parent : (int * int) Dyn.t;  (* state id -> (pred id, letter) *)
  depth : int Dyn.t;
  mutable transitions : int;
  mutable truncated : bool;
  mutable crashed : bool;
  mutable hit : (int * int * string) option;  (* (state, letter, node) *)
}

let key_of nr (st : float array) =
  let b = Bytes.create (nr * 8) in
  for r = 0 to nr - 1 do
    Bytes.set_int64_le b (r * 8) (Int64.bits_of_float st.(r))
  done;
  Bytes.unsafe_to_string b

(* Step the batch-1 twin from [st] under letter [l]: the successor
   state, the first quantizer that overflowed (schedule order), or the
   arithmetic escape. *)
let step1 prog1 ~idx ~letters ~st ~l ~step =
  Compile.write_state prog1 ~lane:0 st;
  let before = Compile.overflows prog1 in
  match
    Compile.step_once prog1 ~step ~inputs:(fun name ->
        let i = idx name in
        fun ~lane:_ -> letters.(l).(i))
  with
  | exception Invalid_argument _ -> `Crash
  | () ->
      let after = Compile.overflows prog1 in
      let node =
        List.find_map
          (fun ((n, c0), (_, c1)) -> if c1 > c0 then Some n else None)
          (List.combine before after)
      in
      let nr = Compile.register_count prog1 in
      let succ = Array.make nr 0.0 in
      Compile.read_state prog1 ~lane:0 succ;
      `Step (succ, node)

let explore ~prog ~prog1 ~idx ~letters ~max_states ~depth_limit
    ~stop_on_overflow =
  let nl = Array.length letters in
  let nr = Compile.register_count prog in
  let s =
    {
      sts = Dyn.create [||];
      parent = Dyn.create (-1, -1);
      depth = Dyn.create 0;
      transitions = 0;
      truncated = false;
      crashed = false;
      hit = None;
    }
  in
  let tbl = Hashtbl.create 1024 in
  let add ~pred ~letter ~d st =
    let k = key_of nr st in
    if not (Hashtbl.mem tbl k) then
      if Dyn.len s.sts >= max_states then s.truncated <- true
      else begin
        Hashtbl.add tbl k (Dyn.len s.sts);
        Dyn.push s.sts st;
        Dyn.push s.parent (pred, letter);
        Dyn.push s.depth d
      end
  in
  add ~pred:(-1) ~letter:(-1) ~d:0 (Compile.initial_state prog);
  let scratch = Array.make nr 0.0 in
  (* per-letter fallback: replay each letter on the twin to attribute
     overflows / salvage successors around a crash *)
  let slow_path sid st d =
    let l = ref 0 in
    while !l < nl && s.hit = None do
      (match step1 prog1 ~idx ~letters ~st ~l:!l ~step:d with
      | `Crash -> s.crashed <- true
      | `Step (succ, node) -> (
          match node with
          | Some n when stop_on_overflow -> s.hit <- Some (sid, !l, n)
          | _ -> add ~pred:sid ~letter:!l ~d:(d + 1) succ));
      incr l
    done
  in
  let cursor = ref 0 in
  while !cursor < Dyn.len s.sts && s.hit = None do
    let sid = !cursor in
    incr cursor;
    let d = Dyn.get s.depth sid in
    if depth_limit < 0 || d < depth_limit then begin
      let st = Dyn.get s.sts sid in
      for lane = 0 to nl - 1 do
        Compile.write_state prog ~lane st
      done;
      let ovf0 = Compile.overflow_count prog in
      s.transitions <- s.transitions + nl;
      match
        Compile.step_once prog ~step:d ~inputs:(fun name ->
            let i = idx name in
            fun ~lane -> letters.(lane).(i))
      with
      | exception Invalid_argument _ ->
          (* NaN escaped somewhere in the batch: redo this state on the
             twin so untainted letters still contribute successors *)
          slow_path sid st d
      | () ->
          let delta = Compile.overflow_count prog - ovf0 in
          if delta > 0 && stop_on_overflow then slow_path sid st d
          else
            for lane = 0 to nl - 1 do
              Compile.read_state prog ~lane scratch;
              add ~pred:sid ~letter:lane ~d:(d + 1) (Array.copy scratch)
            done
    end
    else s.truncated <- true
  done;
  s

(* --- counterexample construction --------------------------------------- *)

let path_letters search sid =
  let rec go acc sid =
    let pred, letter = Dyn.get search.parent sid in
    if pred < 0 then acc else go (letter :: acc) pred
  in
  go [] sid

(* Stimulus arrays: the path's letters, then [tail] extra samples (the
   refuting letter, or the zero-input tail of a limit cycle). *)
let build_stimulus specs letters ~path ~tail =
  let n = Array.length specs in
  let prefix = List.length path in
  let steps = prefix + Array.length tail in
  List.init n (fun i ->
      let arr = Array.make (Stdlib.max 1 steps) 0.0 in
      List.iteri (fun t l -> arr.(t) <- letters.(l).(i)) path;
      Array.iteri
        (fun t (letter : [ `Letter of int | `Zero ]) ->
          arr.(prefix + t) <-
            (match letter with
            | `Letter l -> letters.(l).(i)
            | `Zero -> specs.(i).zero))
        tail;
      (specs.(i).iname, Array.sub arr 0 steps))

(* --- zero-input limit-cycle scan --------------------------------------- *)

type lc_result =
  | Lc_none  (** every scanned state decays within the horizon *)
  | Lc_unknown  (** some walk did not resolve within the horizon *)
  | Lc_found of { sid : int; start : int; period : int }

let scan_limit_cycles ~prog1 ~idx ~letters:_ ~specs ~search ~horizon =
  let nr = Compile.register_count prog1 in
  let n_in = Array.length specs in
  let zero_inputs name =
    let i = idx name in
    fun ~lane:_ -> specs.(i).zero
  in
  ignore n_in;
  let decays : (string, unit) Hashtbl.t = Hashtbl.create 1024 in
  let all_zero st = Array.for_all (fun v -> v = 0.0) st in
  let result = ref Lc_none in
  let sid = ref 0 in
  while !sid < Dyn.len search.sts && (match !result with Lc_found _ -> false | _ -> true) do
    let cur = Array.copy (Dyn.get search.sts !sid) in
    let seen = Hashtbl.create 64 in
    let traj = Dyn.create "" in
    let resolved = ref false in
    while not !resolved do
      let k = key_of nr cur in
      if Hashtbl.mem decays k then begin
        for i = 0 to Dyn.len traj - 1 do
          Hashtbl.replace decays (Dyn.get traj i) ()
        done;
        resolved := true
      end
      else
        match Hashtbl.find_opt seen k with
        | Some j ->
            (* revisit: the cycle is traj[j ..].  All-zero states form
               the decayed fixed point; anything else is a sustained
               zero-input oscillation (period 1 = a DC offset). *)
            let period = Dyn.len traj - j in
            let nonzero = not (all_zero cur) in
            (* a cycle containing any nonzero register state is
               non-decaying: the all-zero state is a fixed point, so a
               cycle through it never leaves it *)
            if nonzero then result := Lc_found { sid = !sid; start = j; period }
            else
              for i = 0 to Dyn.len traj - 1 do
                Hashtbl.replace decays (Dyn.get traj i) ()
              done;
            resolved := true
        | None ->
            if Dyn.len traj >= horizon then begin
              if !result = Lc_none then result := Lc_unknown;
              resolved := true
            end
            else begin
              Hashtbl.add seen k (Dyn.len traj);
              Dyn.push traj k;
              Compile.write_state prog1 ~lane:0 cur;
              search.transitions <- search.transitions + 1;
              match
                Compile.step_once prog1 ~step:(Dyn.len traj) ~inputs:zero_inputs
              with
              | exception Invalid_argument _ ->
                  search.crashed <- true;
                  if !result = Lc_none then result := Lc_unknown;
                  resolved := true
              | () -> Compile.read_state prog1 ~lane:0 cur
            end
    done;
    incr sid
  done;
  !result

(* --- replay / confirmation --------------------------------------------- *)

let bits = Int64.bits_of_float

let confirm g (ce : counterexample) =
  let ( let* ) = Result.bind in
  let steps = ce.steps in
  if steps <= 0 then Error "empty counterexample"
  else
    let stim name =
      match List.assoc_opt name ce.stimulus with
      | Some arr -> fun step -> arr.(step)
      | None -> fun _ -> 0.0
    in
    let* interp =
      match Sfg.Graph.simulate g ~steps ~inputs:stim with
      | tr -> Ok (Array.of_list tr)
      | exception e ->
          Error (Printf.sprintf "interpreter raised %s" (Printexc.to_string e))
    in
    let* comp =
      match
        let prog = Compile.compile ~batch:1 g in
        Compile.traces prog ~steps ~inputs:(fun name ~lane:_ -> stim name)
      with
      | tr -> Ok (Array.of_list tr)
      | exception e ->
          Error (Printf.sprintf "compiled raised %s" (Printexc.to_string e))
    in
    let ns = Array.of_list (Sfg.Graph.nodes g) in
    let* () =
      if Array.length interp <> Array.length comp then
        Error "trace arity mismatch"
      else Ok ()
    in
    let mismatch = ref None in
    Array.iteri
      (fun i (name, (itr : float array)) ->
        let _, ctr = comp.(i) in
        let ctr = ctr.(0) in
        for t = 0 to steps - 1 do
          if !mismatch = None && bits itr.(t) <> bits ctr.(t) then
            mismatch := Some (name, t)
        done)
      interp;
    let* () =
      match !mismatch with
      | Some (name, t) ->
          Error
            (Printf.sprintf "interpreter/compiled diverge at %s step %d" name t)
      | None -> Ok ()
    in
    let tr i = snd interp.(i) in
    match ce.violation with
    | Overflow { node; step } ->
        let id = ref (-1) in
        Array.iteri
          (fun i (nd : Sfg.Node.t) ->
            if nd.Sfg.Node.name = node then id := i)
          ns;
        if !id < 0 then Error (Printf.sprintf "no node named %s" node)
        else if step < 0 || step >= steps then Error "overflow step out of range"
        else begin
          match ns.(!id).Sfg.Node.op with
          | Sfg.Node.Quantize dt ->
              let src = List.hd ns.(!id).Sfg.Node.inputs in
              let v = (tr src).(step) in
              let outcome = Fixpt.Quantize.quantize dt v in
              if outcome.Fixpt.Quantize.overflow <> None then Ok ()
              else
                Error
                  (Printf.sprintf "cast of %h at %s step %d does not overflow"
                     v node step)
          | _ -> Error (Printf.sprintf "%s is not a quantize node" node)
        end
    | Limit_cycle { start; period } ->
        if period <= 0 then Error "non-positive period"
        else if start + (2 * period) > steps then
          Error "stimulus too short to exhibit the cycle"
        else
          let delays = ref [] in
          Array.iteri
            (fun i (nd : Sfg.Node.t) ->
              match nd.Sfg.Node.op with
              | Sfg.Node.Delay _ -> delays := i :: !delays
              | _ -> ())
            ns;
          let delays = List.rev !delays in
          if delays = [] then Error "graph has no registers"
          else
            let recurs =
              List.for_all
                (fun d ->
                  let a = tr d in
                  let ok = ref true in
                  for t = 0 to period - 1 do
                    if bits a.(start + t) <> bits a.(start + period + t) then
                      ok := false
                  done;
                  !ok)
                delays
            in
            let nonzero =
              List.exists
                (fun d ->
                  let a = tr d in
                  let nz = ref false in
                  for t = 0 to period - 1 do
                    if a.(start + t) <> 0.0 then nz := true
                  done;
                  !nz)
                delays
            in
            if not recurs then Error "register state does not recur"
            else if not nonzero then Error "cycle is the zero fixed point"
            else Ok ()

(* --- top-level search --------------------------------------------------- *)

let bounded_reason ~exhaustive ~truncated ~crashed ~extra =
  let r = ref [] in
  if crashed then r := "arithmetic escape (NaN) on an explored path" :: !r;
  if truncated then r := "state/letter budget exceeded" :: !r;
  if not exhaustive then r := "corner stimuli only (input space too large)" :: !r;
  (match extra with Some e -> r := e :: !r | None -> ());
  match !r with [] -> "search bounded" | rs -> String.concat "; " rs

let verify ?(max_bits = 10) ?(depth = 64) ?(max_states = 65536) property g =
  if max_bits < 0 || max_bits > 20 then
    invalid_arg "Verify.verify: max_bits out of [0, 20]";
  if depth < 1 then invalid_arg "Verify.verify: depth < 1";
  if max_states < 1 then invalid_arg "Verify.verify: max_states < 1";
  let specs, letters, exhaustive, alpha_truncated =
    build_alphabet ~max_bits (input_specs g)
  in
  let nl = Array.length letters in
  let prog = Compile.compile ~batch:(Stdlib.max 1 nl) g in
  let prog1 = Compile.compile ~batch:1 g in
  Compile.reset prog;
  Compile.reset prog1;
  let itbl = Hashtbl.create 16 in
  Array.iteri (fun i s -> Hashtbl.replace itbl s.iname i) specs;
  let idx name = try Hashtbl.find itbl name with Not_found -> 0 in
  let depth_limit = if exhaustive then -1 else depth in
  let stop_on_overflow = property = No_overflow in
  let search =
    explore ~prog ~prog1 ~idx ~letters ~max_states ~depth_limit
      ~stop_on_overflow
  in
  if alpha_truncated then search.truncated <- true;
  let mk_stats () =
    {
      letters = nl;
      exhaustive;
      states = Dyn.len search.sts;
      transitions = search.transitions;
      truncated = search.truncated;
      crashed = search.crashed;
    }
  in
  let refute ce =
    match confirm g ce with
    | Ok () -> Refuted ce
    | Error why ->
        (* an unconfirmable counterexample is an engine defect, not a
           verdict: stay sound and report the search as inconclusive *)
        Bounded_out (Printf.sprintf "counterexample failed replay: %s" why)
  in
  let verdict =
    match property with
    | No_overflow -> (
        match search.hit with
        | Some (sid, letter, node) ->
            let path = path_letters search sid in
            let stimulus =
              build_stimulus specs letters ~path ~tail:[| `Letter letter |]
            in
            let step = List.length path in
            refute
              { steps = step + 1; stimulus; violation = Overflow { node; step } }
        | None ->
            if
              exhaustive && (not search.truncated) && not search.crashed
            then Proved
            else
              Bounded_out
                (bounded_reason ~exhaustive ~truncated:search.truncated
                   ~crashed:search.crashed ~extra:None))
    | No_limit_cycle -> (
        let closure_complete =
          exhaustive && (not search.truncated) && not search.crashed
        in
        let horizon =
          if closure_complete then Stdlib.max depth (Dyn.len search.sts + 1)
          else depth
        in
        match
          scan_limit_cycles ~prog1 ~idx ~letters ~specs ~search ~horizon
        with
        | Lc_found { sid; start; period } ->
            let path = path_letters search sid in
            let prefix = List.length path in
            let tail = Array.make (start + (2 * period)) `Zero in
            let stimulus = build_stimulus specs letters ~path ~tail in
            refute
              {
                steps = prefix + start + (2 * period);
                stimulus;
                violation = Limit_cycle { start = prefix + start; period };
              }
        | Lc_none ->
            if closure_complete then Proved
            else
              Bounded_out
                (bounded_reason ~exhaustive ~truncated:search.truncated
                   ~crashed:search.crashed ~extra:None)
        | Lc_unknown ->
            Bounded_out
              (bounded_reason ~exhaustive ~truncated:search.truncated
                 ~crashed:search.crashed
                 ~extra:(Some "zero-input walk exceeded the horizon")))
  in
  { property; verdict; stats = mk_stats () }

(* --- rendering ---------------------------------------------------------- *)

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let violation_to_json b = function
  | Overflow { node; step } ->
      Printf.bprintf b "{\"kind\":\"overflow\",\"node\":\"%s\",\"step\":%d}"
        (json_escape node) step
  | Limit_cycle { start; period } ->
      Printf.bprintf b
        "{\"kind\":\"limit-cycle\",\"start\":%d,\"period\":%d}" start period

let counterexample_to_json b ce =
  Printf.bprintf b "{\"steps\":%d,\"violation\":" ce.steps;
  violation_to_json b ce.violation;
  Buffer.add_string b ",\"stimulus\":{";
  List.iteri
    (fun i (name, arr) ->
      if i > 0 then Buffer.add_char b ',';
      Printf.bprintf b "\"%s\":[" (json_escape name);
      Array.iteri
        (fun j v ->
          if j > 0 then Buffer.add_char b ',';
          Printf.bprintf b "\"%h\"" v)
        arr;
      Buffer.add_char b ']')
    ce.stimulus;
  Buffer.add_string b "}}"

let report_to_json r =
  let b = Buffer.create 256 in
  Printf.bprintf b "{\"property\":\"%s\",\"verdict\":\"%s\""
    (property_name r.property)
    (match r.verdict with
    | Proved -> "proved"
    | Refuted _ -> "refuted"
    | Bounded_out _ -> "bounded-out");
  (match r.verdict with
  | Proved -> ()
  | Refuted ce ->
      Buffer.add_string b ",\"counterexample\":";
      counterexample_to_json b ce
  | Bounded_out why ->
      Printf.bprintf b ",\"reason\":\"%s\"" (json_escape why));
  let s = r.stats in
  Printf.bprintf b
    ",\"stats\":{\"letters\":%d,\"exhaustive\":%b,\"states\":%d,\"transitions\":%d,\"truncated\":%b,\"crashed\":%b}}"
    s.letters s.exhaustive s.states s.transitions s.truncated s.crashed;
  Buffer.contents b

let pp_report ppf r =
  let verdict_str =
    match r.verdict with
    | Proved -> "PROVED"
    | Refuted { violation = Overflow { node; step }; _ } ->
        Printf.sprintf "REFUTED (overflow at %s, step %d)" node step
    | Refuted { violation = Limit_cycle { start; period }; _ } ->
        Printf.sprintf "REFUTED (limit cycle, start %d, period %d)" start
          period
    | Bounded_out why -> Printf.sprintf "BOUNDED OUT (%s)" why
  in
  let s = r.stats in
  Format.fprintf ppf "%s: %s — %d letters%s, %d states, %d transitions%s%s"
    (property_name r.property) verdict_str s.letters
    (if s.exhaustive then " (exhaustive)" else " (corners)")
    s.states s.transitions
    (if s.truncated then ", truncated" else "")
    (if s.crashed then ", crashed" else "")
