(** Counterexample stimulus files — the bridge from a [Refuted] verdict
    into the permanent conformance corpus.

    Plain text, hex-float ([%h]) samples so the round trip is exact and
    the files diff cleanly under [test/conformance/golden/]:

    {v
    # fxrefine verify counterexample v1
    property no-overflow
    violation overflow 3 y
    steps 4
    input x 0x1p+0 -0x1p+0 0x1p+0 0x1p+0
    v}

    Rendering is canonical (input order preserved, one line per input),
    so a re-verified design reproduces the file byte-for-byte. *)

val to_string : property:Engine.property -> Engine.counterexample -> string

(** Inverse of {!to_string}; [Error] names the offending line. *)
val of_string : string -> (Engine.property * Engine.counterexample, string) result

val save : path:string -> property:Engine.property -> Engine.counterexample -> unit
val load : path:string -> (Engine.property * Engine.counterexample, string) result
