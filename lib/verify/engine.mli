(** Sound bit-level verification of closed signal-flow graphs.

    The refinement flow's range estimates (statistic monitoring,
    {!Sfg.Range_analysis}) are fast but unsound: a feedback loop can
    overflow under the declared input range, or sustain a zero-input
    limit cycle, without either estimate noticing — exactly the failure
    modes the SMT-BMC literature verifies exhaustively for fixed-point
    filters (Abreu et al., arXiv:1305.2892; de Mello et al.,
    arXiv:1706.05088).  This engine is the pure-OCaml third leg: it
    bit-blasts small-wordlength state spaces by explicit-state search
    over the {e compiled} executor ({!Compile.step_once}), so every
    transition it explores uses byte-for-byte the semantics the
    simulator and sweep run.

    {b Input alphabet.}  Each [Input] node's admissible values are the
    grid points of the quantizer directly downstream of it (through
    [Alias] links), restricted to the declared interval.  When the total
    input entropy is at most [max_bits], the alphabet is the {e full}
    cross product and search verdicts are exhaustive; otherwise the
    engine falls back to corner-driven stimuli (interval endpoints,
    zero, ±full-scale, ±1 ulp) over a bounded unrolling of [depth]
    cycles — an underapproximation that can refute but never prove.

    {b Soundness.}  [Proved] is returned only when the alphabet was
    exhaustive and the reachable register-state closure completed
    within budget with no arithmetic escape: every reachable state
    under every admissible input has then literally been executed.
    [Refuted] is returned only after the counterexample has been
    replayed through both the graph interpreter and the compiled
    executor (byte-equal) with the violation reproduced.  Everything
    else is [Bounded_out]. *)

(** The two properties of ROADMAP item 3. *)
type property =
  | No_overflow
      (** no [Quantize] node ever wraps/saturates under the declared
          input range *)
  | No_limit_cycle
      (** from every reachable post-stimulus state, the zero-input
          response decays to the all-zero register state within
          [depth] cycles (no non-decaying cycle) *)

type violation =
  | Overflow of { node : string; step : int }
      (** quantizer [node] overflows at cycle [step] of the stimulus *)
  | Limit_cycle of { start : int; period : int }
      (** register state at cycle [start] recurs at [start + period]
          with a nonzero register in between *)

(** A concrete refuting stimulus: per-input sample arrays (all of
    length [steps], in the compiled program's input order) driving the
    graph from reset into the violation. *)
type counterexample = {
  steps : int;
  stimulus : (string * float array) list;
  violation : violation;
}

type verdict =
  | Proved
  | Refuted of counterexample
  | Bounded_out of string  (** why the search was inconclusive *)

(** Search statistics — deterministic counters only (no wall-clock), so
    rendered reports are byte-identical across runs. *)
type stats = {
  letters : int;  (** input alphabet size (cross product) *)
  exhaustive : bool;  (** alphabet covered the whole declared grid *)
  states : int;  (** distinct register states discovered *)
  transitions : int;  (** (state, letter) edges executed *)
  truncated : bool;  (** a state/letter/depth budget was hit *)
  crashed : bool;  (** an explored transition raised (NaN at a cast) *)
}

type report = { property : property; verdict : verdict; stats : stats }

val property_name : property -> string
val property_of_string : string -> property option

(** [verify ?max_bits ?depth ?max_states property g] — run the search.
    [max_bits] (default 10) bounds the exhaustive alphabet at
    [2^max_bits] letters; [depth] (default 64) is the corner-mode
    unrolling bound and the limit-cycle horizon k; [max_states]
    (default 65536) bounds the reachable-state closure.  Raises
    {!Compile.Cannot_compile} on an unclosed graph. *)
val verify :
  ?max_bits:int -> ?depth:int -> ?max_states:int -> property -> Sfg.Graph.t -> report

(** [confirm g ce] replays [ce] through {!Sfg.Graph.simulate} and a
    fresh batch-1 {!Compile} program: checks every node trace
    byte-equal between the two, then re-establishes the violation from
    the traces (recomputing the refuted quantizer's cast for
    [Overflow]; comparing register states bitwise for [Limit_cycle]).
    [Ok ()] on success, [Error reason] naming the first divergence. *)
val confirm : Sfg.Graph.t -> counterexample -> (unit, string) result

(** Canonical JSON rendering of a report — stable key order, hex-float
    ([%h]) numerics, no timing: byte-identical across runs for the same
    graph and budgets. *)
val report_to_json : report -> string

(** Human-readable one-or-few-line rendering. *)
val pp_report : Format.formatter -> report -> unit
