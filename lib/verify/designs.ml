let biquad ~acc_bits () =
  let g = Sfg.Graph.create () in
  let x = Sfg.Graph.input g "x" ~lo:(-1.0) ~hi:1.0 in
  let in_dt = Fixpt.Dtype.make "xq" ~n:3 ~f:1 () in
  let xq = Sfg.Graph.quantize g ~name:"xq" in_dt x in
  let y1 = Sfg.Graph.delay g "y1" in
  let y2 = Sfg.Graph.delay_of g "y2" y1 in
  let a1 = Sfg.Graph.const g ~name:"a1" 1.25 in
  let a2 = Sfg.Graph.const g ~name:"a2" 0.625 in
  let fb =
    Sfg.Graph.sub g ~name:"fb"
      (Sfg.Graph.mul g ~name:"a1y1" a1 y1)
      (Sfg.Graph.mul g ~name:"a2y2" a2 y2)
  in
  let s = Sfg.Graph.add g ~name:"s" xq fb in
  let acc_dt = Fixpt.Dtype.make "acc" ~n:acc_bits ~f:2 () in
  let y = Sfg.Graph.quantize g ~name:"y" acc_dt s in
  Sfg.Graph.connect_delay g y1 y;
  Sfg.Graph.mark_output g "y" y;
  Sfg.Graph.validate_exn g;
  g

let biquad_under () = biquad ~acc_bits:5 ()
let biquad_repaired () = biquad ~acc_bits:6 ()

let all =
  [ ("biquad-under", biquad_under); ("biquad-repaired", biquad_repaired) ]
