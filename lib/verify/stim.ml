let to_string ~property (ce : Engine.counterexample) =
  let b = Buffer.create 256 in
  Buffer.add_string b "# fxrefine verify counterexample v1\n";
  Printf.bprintf b "property %s\n" (Engine.property_name property);
  (match ce.Engine.violation with
  | Engine.Overflow { node; step } ->
      Printf.bprintf b "violation overflow %d %s\n" step node
  | Engine.Limit_cycle { start; period } ->
      Printf.bprintf b "violation limit-cycle %d %d\n" start period);
  Printf.bprintf b "steps %d\n" ce.Engine.steps;
  List.iter
    (fun (name, arr) ->
      Printf.bprintf b "input %s" name;
      Array.iter (fun v -> Printf.bprintf b " %h" v) arr;
      Buffer.add_char b '\n')
    ce.Engine.stimulus;
  Buffer.contents b

let of_string s =
  let ( let* ) = Result.bind in
  let lines =
    String.split_on_char '\n' s
    |> List.map String.trim
    |> List.filter (fun l -> l <> "" && l.[0] <> '#')
  in
  let fields l = String.split_on_char ' ' l |> List.filter (( <> ) "") in
  let property = ref None
  and violation = ref None
  and steps = ref None
  and stimulus = ref [] in
  let* () =
    List.fold_left
      (fun acc line ->
        let* () = acc in
        match fields line with
        | "property" :: [ p ] -> (
            match Engine.property_of_string p with
            | Some p ->
                property := Some p;
                Ok ()
            | None -> Error (Printf.sprintf "unknown property %S" p))
        | "violation" :: "overflow" :: step :: node -> (
            match (int_of_string_opt step, node) with
            | Some step, [ node ] ->
                violation := Some (Engine.Overflow { node; step });
                Ok ()
            | _ -> Error (Printf.sprintf "bad overflow line %S" line))
        | [ "violation"; "limit-cycle"; start; period ] -> (
            match (int_of_string_opt start, int_of_string_opt period) with
            | Some start, Some period ->
                violation := Some (Engine.Limit_cycle { start; period });
                Ok ()
            | _ -> Error (Printf.sprintf "bad limit-cycle line %S" line))
        | [ "steps"; n ] -> (
            match int_of_string_opt n with
            | Some n ->
                steps := Some n;
                Ok ()
            | None -> Error (Printf.sprintf "bad steps line %S" line))
        | "input" :: name :: samples -> (
            match
              List.map
                (fun s ->
                  match float_of_string_opt s with
                  | Some v -> v
                  | None -> raise Exit)
                samples
            with
            | vs ->
                stimulus := (name, Array.of_list vs) :: !stimulus;
                Ok ()
            | exception Exit ->
                Error (Printf.sprintf "bad sample on input line for %s" name))
        | _ -> Error (Printf.sprintf "unrecognized line %S" line))
      (Ok ()) lines
  in
  match (!property, !violation, !steps) with
  | Some property, Some violation, Some steps ->
      let stimulus = List.rev !stimulus in
      if List.exists (fun (_, a) -> Array.length a <> steps) stimulus then
        Error "input line length does not match steps"
      else Ok (property, { Engine.steps; stimulus; violation })
  | None, _, _ -> Error "missing property line"
  | _, None, _ -> Error "missing violation line"
  | _, _, None -> Error "missing steps line"

let save ~path ~property ce =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_string ~property ce))

let load ~path =
  match open_in path with
  | exception Sys_error e -> Error e
  | ic ->
      let n = in_channel_length ic in
      let s = really_input_string ic n in
      close_in ic;
      of_string s
