(** Pinned verification exemplars — small closed graphs with known
    verdicts, used by the regression tests, the conformance gate and
    the documentation recipe.

    The biquad is the classic MSB-provisioning story: a stable 2nd
    order recursion [y = Q_acc(xq + 1.25·y1 − 0.625·y2)] whose
    worst-case gain (Σ|h| ≈ 5.3 over x ∈ [−1, 1]) exceeds the ±4 range
    of a 5-bit/f=2 accumulator but fits the ±8 range of the 6-bit one:
    one MSB flips the no-overflow verdict from Refuted to Proved. *)

(** [biquad ~acc_bits ()] — input [x ∈ [−1, 1]] through a 3-bit/f=1
    quantizer, accumulator quantized to [acc_bits] total bits (f = 2,
    two's complement, wrap, round-off). *)
val biquad : acc_bits:int -> unit -> Sfg.Graph.t

(** [biquad ~acc_bits:5 ()] — under-provisioned: no-overflow is
    refutable. *)
val biquad_under : unit -> Sfg.Graph.t

(** [biquad ~acc_bits:6 ()] — the one-bit MSB repair: no-overflow is
    provable. *)
val biquad_repaired : unit -> Sfg.Graph.t

(** Named exemplars for CLI/gate lookup:
    [("biquad-under", biquad_under); ("biquad-repaired", biquad_repaired)]. *)
val all : (string * (unit -> Sfg.Graph.t)) list
