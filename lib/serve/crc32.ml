(* CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) — pure OCaml,
   table-driven, no external dependency.  Used by {!Cache} to make
   bit-rot inside an entry payload detectable: the length header alone
   catches truncation, the CRC catches same-length corruption. *)

let polynomial = 0xEDB88320l

(* Built eagerly at module init: a [lazy] here would be forced
   concurrently by every Pool worker domain sharing a cache, and
   [Lazy.force] is not domain-safe. *)
let table =
  Array.init 256 (fun n ->
      let c = ref (Int32.of_int n) in
      for _ = 0 to 7 do
        c :=
          if Int32.logand !c 1l <> 0l then
            Int32.logxor polynomial (Int32.shift_right_logical !c 1)
          else Int32.shift_right_logical !c 1
      done;
      !c)

let digest s =
  let t = table in
  let c = ref 0xFFFFFFFFl in
  String.iter
    (fun ch ->
      let idx =
        Int32.to_int
          (Int32.logand
             (Int32.logxor !c (Int32.of_int (Char.code ch)))
             0xFFl)
      in
      c := Int32.logxor t.(idx) (Int32.shift_right_logical !c 8))
    s;
  Int32.logxor !c 0xFFFFFFFFl

let to_hex c = Printf.sprintf "%08lx" c

let of_hex s =
  if
    String.length s = 8
    && String.for_all (function '0' .. '9' | 'a' .. 'f' -> true | _ -> false) s
  then Int32.of_string_opt ("0x" ^ s)
  else None
