(** Synchronous client of the daemon protocol — what [fxrefine submit]
    and the serve gate speak: one request line out, one response line
    back per call. *)

type t

(** The daemon answered with something unparsable, or hung up
    mid-request.  A [Printexc] printer is registered. *)
exception Protocol_error of string

(** Connect to the daemon's Unix-domain socket.  Raises
    [Unix.Unix_error] when nothing listens there. *)
val connect : string -> t

(** {!connect}, retried (default 50 × 0.1 s) while the socket is
    missing or refusing — covers the start-up race against a freshly
    backgrounded daemon.  The last failure's exception escapes. *)
val connect_retry : ?attempts:int -> ?delay_s:float -> string -> t

(** Send one request, block for its response.
    @raise Protocol_error on an unparsable response or early EOF. *)
val request : t -> Protocol.request -> Protocol.response

(** Close the connection (idempotent). *)
val close : t -> unit
