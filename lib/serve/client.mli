(** Synchronous client of the daemon protocol — what [fxrefine submit]
    and the serve gate speak: one request line out, one response line
    back per call. *)

type t

(** The daemon answered with something unparsable, or hung up
    mid-request.  A [Printexc] printer is registered. *)
exception Protocol_error of string

(** Why {!connect_retry} gave up — the two failures call for different
    operator action. *)
type connect_failure =
  | No_socket
      (** the socket path does not exist: the daemon never started (or
          points elsewhere) *)
  | Stale_socket
      (** the path exists but nothing accepts on it: a leftover socket
          file from a daemon that died without cleaning up *)

(** {!connect_retry} exhausted its attempts.  A [Printexc] printer is
    registered. *)
exception
  Connect_failed of {
    socket : string;
    attempts : int;
    failure : connect_failure;
  }

(** Connect to the daemon's Unix-domain socket.  Raises
    [Unix.Unix_error] when nothing listens there. *)
val connect : string -> t

(** {!connect}, retried with capped exponential backoff while the
    socket is missing ([ENOENT]) or refusing ([ECONNREFUSED]) — covers
    the start-up race against a freshly backgrounded daemon and a
    daemon mid-restart.  The delay before attempt [n+1] is
    [min max_delay_s (base_delay_s * 2^(n-1))] (defaults 0.02 s up to
    1.0 s over 50 attempts), scaled by a jitter in [[0.5, 1.0]] drawn
    deterministically from [seed] (default 0) and the attempt index —
    seeded, so tests and reconnect storms are reproducible.

    Exhaustion raises {!Connect_failed} with the {e current} diagnosis:
    {!Stale_socket} when the path exists but nothing listens,
    {!No_socket} when it never appeared.  Other connection errors
    (permissions, …) escape immediately as [Unix.Unix_error].  Raises
    [Invalid_argument] on [attempts < 1]. *)
val connect_retry :
  ?attempts:int ->
  ?base_delay_s:float ->
  ?max_delay_s:float ->
  ?seed:int ->
  string ->
  t

(** Send one request, block for its response.
    @raise Protocol_error on an unparsable response or early EOF. *)
val request : t -> Protocol.request -> Protocol.response

(** Close the connection (idempotent). *)
val close : t -> unit
