(** CRC-32 (IEEE 802.3) — pure OCaml, table-driven.

    {!Cache} stores a checksum of every entry payload in its header so
    that bit-rot (same-length corruption the byte count cannot see) is
    detected on read and healed as a miss instead of served as truth. *)

(** [digest s] — the CRC-32 of the whole string (standard init/final
    xor, reflected polynomial [0xEDB88320]).  ["123456789"] digests to
    [0xcbf43926l]. *)
val digest : string -> int32

(** Fixed-width lowercase rendering, e.g. [to_hex 0xcbf43926l =
    "cbf43926"]. *)
val to_hex : int32 -> string

(** Strict inverse of {!to_hex}: exactly eight lowercase hex digits, or
    [None]. *)
val of_hex : string -> int32 option
