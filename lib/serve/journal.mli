(** Write-ahead job journal — the daemon's crash ledger.

    Before a journaled job starts executing, the daemon records an
    {e intent} (the verbatim request line plus an attempt count) as
    [job-<name>.intent], atomically and durably; the file is removed
    when the job completes with a definite answer.  A daemon that was
    SIGKILLed therefore leaves one intent file per interrupted job, and
    the next daemon's recovery pass re-runs each (bumping [attempts],
    with capped exponential backoff) or — once the retry budget is
    spent, or the record is unparsable — renames it to
    [job-<name>.quarantined] with a [reason] line.  Every journaled job
    ends in exactly one of: completed, re-run, quarantined.  Never
    silently forgotten. *)

(** One journaled job: [name] keys the file, [attempts] counts
    executions admitted so far (including the interrupted ones),
    [line] is the verbatim {!Protocol} request line. *)
type entry = { name : string; attempts : int; line : string }

type t

(** Open (and create if needed) the journal directory. *)
val create : dir:string -> t

val dir : t -> string

(** A journal-unique job name ([<pid>-<seq>]); the pid distinguishes
    daemon generations, so recovered and fresh jobs never collide. *)
val fresh_name : t -> string

(** Durably write (or rewrite, when bumping [attempts]) the intent
    record.  Must happen {e before} the execution it announces — that
    ordering is the write-ahead guarantee.  Raises [Invalid_argument]
    on a name that is not a safe file name ({!fresh_name}'s always
    are). *)
val record_intent : t -> entry -> unit

(** The job completed with a definite answer (report {e or}
    deterministic error): drop its intent. *)
val mark_done : t -> name:string -> unit

(** Give up on the job: persist the record plus [reason] as
    [job-<name>.quarantined] and drop the intent. *)
val quarantine : t -> entry -> reason:string -> unit

(** Interrupted jobs, oldest first.  Unparsable intent files are
    quarantined on the spot (raw bytes preserved) rather than re-run
    blind or deleted. *)
val pending : t -> entry list

(** Names of quarantined jobs. *)
val quarantined : t -> string list
