(** Typed requests/responses of the daemon's job protocol and their
    {!Wire} line codecs.  Every request carries a caller-chosen [id]
    the daemon echoes back, so clients can correlate multiplexed
    jobs. *)

(** Parameters of a sweep job — the [fxrefine sweep] surface by name,
    plus a wall-clock timeout the daemon checks between waves. *)
type sweep_params = {
  workload : string;  (** built-in workload name, e.g. ["fir"] *)
  strategy : string;  (** [grid], [bisect] or [pareto] *)
  f_min : int;
  f_max : int;
  seeds : int;  (** stimulus seeds [0..N-1], like the CLI *)
  jobs : int;  (** worker domains for this job *)
  budget : int option;  (** cap on evaluated candidates *)
  target_db : float;  (** bisect's SQNR target *)
  timeout_s : float option;  (** wall-clock limit, checked between waves *)
}

type request =
  | Ping of { id : string }  (** liveness probe *)
  | Stats of { id : string }  (** cache counter snapshot *)
  | Shutdown of { id : string }  (** stop accepting; daemon exits *)
  | Sweep of { id : string; params : sweep_params }

type response =
  | Pong of { id : string }
  | Stats_reply of { id : string; stats : Cache.stats }
  | Bye of { id : string }  (** shutdown acknowledged *)
  | Report of { id : string; report : string; hits : int; misses : int }
      (** [report] is the canonical sweep JSON ({!Sweep.Report.to_json});
          [hits]/[misses] are the shared cache's counter deltas observed
          across this job (approximate under concurrent jobs) *)
  | Error of { id : string; message : string }
  | Busy of { id : string; active : int; limit : int }
      (** structured backpressure: the daemon is at its [max_conns]
          connection limit and admitted nothing — [active]/[limit] let
          the client report or back off and retry; sent with [id = ""]
          since no request line was read *)

(** One-line renderings (no trailing newline). *)

val request_to_line : request -> string
val response_to_line : response -> string

(** Strict parsers; [None] on malformed lines or unknown [op]s.  A
    request without an [id] field gets [""] (the daemon still
    answers). *)

val request_of_line : string -> request option
val response_of_line : string -> response option
