(** Bit-exact payload codec for cached evaluation results, plus the
    binding of a {!Cache} into the evaluator's {!Refine.Eval.cache}
    hook.

    Floats travel as exact [%h] hex literals and the probe monitors
    through {!Stats.Running.raw} / {!Stats.Err_stats.raw}, so a decoded
    record is bit-indistinguishable from the freshly computed one — the
    property that keeps warm re-sweep reports byte-identical to cold
    ones (the serve gate's contract). *)

(** Payload format version (the [fxmetrics N] header). *)
val version : int

(** Version string folded into every cache key via {!context}.  Bump it
    whenever evaluation semantics or this payload format change: old
    entries stop being addressable — invalidation without deletion. *)
val evaluator_version : string

(** Serialize metrics to the line-based payload.  Raises
    [Invalid_argument] on a counter-carrying record (counters are
    observational per-run state, not cacheable results; the compiled
    evaluation path never produces them). *)
val encode : Refine.Eval.metrics -> string

(** Strictly parse an {!encode}d payload; [None] on any deviation
    (wrong header, malformed field, wrong monitor arity).  The cache
    layer treats [None] as a miss, so damaged or foreign payloads
    degrade performance, never correctness. *)
val decode : string -> Refine.Eval.metrics option

(** The key context for an evaluation under [?plan] fault injection
    (canonical plan JSON appended to {!evaluator_version}); plain
    {!evaluator_version} without. *)
val context : ?plan:Fault.Plan.t -> unit -> string

(** [eval_cache ?plan cache] — bind [cache] into the hook
    {!Refine.Eval.evaluate_compiled} and {!Sweep.Pool.run} accept:
    lookups decode, inserts encode, and the context pins
    {!evaluator_version} (and the fault plan, when sweeping under
    injection) into every key.  Domain-safe, like {!Cache} itself. *)
val eval_cache : ?plan:Fault.Plan.t -> Cache.t -> Refine.Eval.cache
