(** Line-delimited flat-JSON framing for the daemon protocol.

    One message = one line = one flat JSON object (string / integer /
    float / boolean / null values, no nesting).  Writer and parser are
    hand-rolled like the rest of the repo's JSON surface (no JSON
    dependency in the toolchain); the parser is strict — any deviation,
    including trailing garbage, yields [None], which the daemon turns
    into an error response rather than a guess.

    Strings are escaped JSON-conformantly (quote, backslash, newline,
    carriage return, tab, backspace, form feed; [\uXXXX] for remaining
    control bytes), so a whole canonical sweep report (printable ASCII
    + newlines) embeds as a single string field. *)

type value =
  | String of string
  | Int of int
  | Float of float
  | Bool of bool
  | Null

(* --- rendering ---------------------------------------------------------- *)

let escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | '\b' -> Buffer.add_string b "\\b"
      | '\012' -> Buffer.add_string b "\\f"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let render_value = function
  | String s -> Printf.sprintf "\"%s\"" (escape s)
  | Int i -> string_of_int i
  | Float f -> Trace.Json.float_lit f
  | Bool b -> if b then "true" else "false"
  | Null -> "null"

let to_line fields =
  let b = Buffer.create 256 in
  Buffer.add_char b '{';
  List.iteri
    (fun i (k, v) ->
      if i > 0 then Buffer.add_string b ", ";
      Buffer.add_string b (Printf.sprintf "\"%s\": %s" (escape k) (render_value v)))
    fields;
  Buffer.add_char b '}';
  Buffer.contents b

(* --- parsing ------------------------------------------------------------ *)

exception Bad

let parse_exn line =
  let n = String.length line in
  let pos = ref 0 in
  let peek () = if !pos < n then Some line.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while
      !pos < n
      && match line.[!pos] with ' ' | '\t' | '\r' | '\n' -> true | _ -> false
    do
      advance ()
    done
  in
  let expect c =
    if peek () = Some c then advance () else raise Bad
  in
  let hex4 () =
    if !pos + 4 > n then raise Bad;
    let s = String.sub line !pos 4 in
    pos := !pos + 4;
    match int_of_string_opt ("0x" ^ s) with Some v -> v | None -> raise Bad
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 32 in
    let rec go () =
      match peek () with
      | None -> raise Bad
      | Some '"' -> advance ()
      | Some '\\' ->
          advance ();
          (match peek () with
          | Some '"' -> Buffer.add_char b '"'
          | Some '\\' -> Buffer.add_char b '\\'
          | Some '/' -> Buffer.add_char b '/'
          | Some 'n' -> Buffer.add_char b '\n'
          | Some 'r' -> Buffer.add_char b '\r'
          | Some 't' -> Buffer.add_char b '\t'
          | Some 'b' -> Buffer.add_char b '\b'
          | Some 'f' -> Buffer.add_char b '\012'
          | Some 'u' ->
              advance ();
              let v = hex4 () in
              (* flat ASCII protocol: reject code points that would
                 need real UTF-8 encoding *)
              if v > 0xff then raise Bad;
              Buffer.add_char b (Char.chr v);
              pos := !pos - 1 (* compensate the uniform advance below *)
          | _ -> raise Bad);
          advance ();
          go ()
      | Some c ->
          advance ();
          Buffer.add_char b c;
          go ()
    in
    go ();
    Buffer.contents b
  in
  let parse_number () =
    let start = !pos in
    let is_num_char c =
      match c with
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while !pos < n && is_num_char line.[!pos] do
      advance ()
    done;
    let s = String.sub line start (!pos - start) in
    let floaty = String.exists (fun c -> c = '.' || c = 'e' || c = 'E') s in
    if floaty then
      match float_of_string_opt s with Some f -> Float f | None -> raise Bad
    else
      match int_of_string_opt s with Some i -> Int i | None -> raise Bad
  in
  let parse_literal lit v =
    let l = String.length lit in
    if !pos + l <= n && String.equal (String.sub line !pos l) lit then begin
      pos := !pos + l;
      v
    end
    else raise Bad
  in
  let parse_value () =
    match peek () with
    | Some '"' -> String (parse_string ())
    | Some 't' -> parse_literal "true" (Bool true)
    | Some 'f' -> parse_literal "false" (Bool false)
    | Some 'n' -> parse_literal "null" Null
    | Some ('-' | '0' .. '9') -> parse_number ()
    | _ -> raise Bad
  in
  skip_ws ();
  expect '{';
  skip_ws ();
  let fields = ref [] in
  (if peek () = Some '}' then advance ()
   else
     let rec members () =
       skip_ws ();
       let k = parse_string () in
       skip_ws ();
       expect ':';
       skip_ws ();
       let v = parse_value () in
       fields := (k, v) :: !fields;
       skip_ws ();
       match peek () with
       | Some ',' ->
           advance ();
           members ()
       | Some '}' -> advance ()
       | _ -> raise Bad
     in
     members ());
  skip_ws ();
  if !pos <> n then raise Bad;
  List.rev !fields

let of_line line = try Some (parse_exn line) with Bad -> None

(* --- field accessors ---------------------------------------------------- *)

let find fields k = List.assoc_opt k fields

let get_string fields k =
  match find fields k with Some (String s) -> Some s | _ -> None

let get_int fields k =
  match find fields k with Some (Int i) -> Some i | _ -> None

let get_float fields k =
  match find fields k with
  | Some (Float f) -> Some f
  | Some (Int i) -> Some (float_of_int i)
  | _ -> None

let get_bool fields k =
  match find fields k with Some (Bool b) -> Some b | _ -> None
