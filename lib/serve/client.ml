(** Client side of the daemon protocol — what [fxrefine submit] (and
    the serve gate) speak.  Synchronous: one request line out, one
    response line back. *)

type t = { fd : Unix.file_descr; ic : in_channel; oc : out_channel }

exception Protocol_error of string

type connect_failure =
  | No_socket  (** the socket path does not exist (yet) *)
  | Stale_socket
      (** the path exists but nothing is listening — a leftover socket
          file from a daemon that died without cleaning up *)

exception
  Connect_failed of {
    socket : string;
    attempts : int;
    failure : connect_failure;
  }

let () =
  Printexc.register_printer (function
    | Protocol_error m -> Some (Printf.sprintf "Serve.Client.Protocol_error: %s" m)
    | Connect_failed { socket; attempts; failure } ->
        Some
          (Printf.sprintf "Serve.Client.Connect_failed: %s after %d attempts: %s"
             socket attempts
             (match failure with
             | No_socket -> "socket path does not exist (daemon never started?)"
             | Stale_socket ->
                 "socket file exists but nothing is listening (stale socket \
                  from a dead daemon?)"))
    | _ -> None)

let connect socket =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (try Unix.connect fd (Unix.ADDR_UNIX socket)
   with exn ->
     (try Unix.close fd with Unix.Unix_error _ -> ());
     raise exn);
  { fd; ic = Unix.in_channel_of_descr fd; oc = Unix.out_channel_of_descr fd }

(* splitmix64 step — a cheap, seedable, allocation-free hash giving
   each (seed, attempt) pair an independent jitter draw without
   touching the global Random state. *)
let jitter ~seed ~attempt =
  let z = Int64.of_int ((seed * 1_000_003) + attempt) in
  let z = Int64.add z 0x9E3779B97F4A7C15L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  let z = Int64.logxor z (Int64.shift_right_logical z 31) in
  Int64.to_float (Int64.shift_right_logical z 11) /. 9007199254740992.0
(* in [0, 1) *)

(* Retry [connect] until the daemon's listener is up — covers the
   start-up race of a freshly forked/backgrounded daemon and a daemon
   mid-restart.  Delays grow exponentially from [base_delay_s] up to
   [max_delay_s], each scaled by a seeded jitter in [0.5, 1.0] so a
   fleet of clients sharing a seedless default never thunders in
   lockstep.  Exhaustion raises {!Connect_failed}, distinguishing a
   socket path that never appeared from a stale socket file nothing
   listens on (the two failures call for different operator action). *)
let connect_retry ?(attempts = 50) ?(base_delay_s = 0.02)
    ?(max_delay_s = 1.0) ?(seed = 0) socket =
  if attempts < 1 then invalid_arg "Serve.Client.connect_retry: attempts < 1";
  let classify () =
    if Sys.file_exists socket then Stale_socket else No_socket
  in
  let rec go n =
    match connect socket with
    | c -> c
    | exception Unix.Unix_error ((Unix.ENOENT | Unix.ECONNREFUSED), _, _)
      when n >= attempts ->
        raise
          (Connect_failed { socket; attempts = n; failure = classify () })
    | exception Unix.Unix_error ((Unix.ENOENT | Unix.ECONNREFUSED), _, _) ->
        let backoff =
          Float.min max_delay_s
            (base_delay_s *. (2.0 ** float_of_int (n - 1)))
        in
        Unix.sleepf (backoff *. (0.5 +. (0.5 *. jitter ~seed ~attempt:n)));
        go (n + 1)
  in
  go 1

let request t req =
  output_string t.oc (Protocol.request_to_line req);
  output_char t.oc '\n';
  flush t.oc;
  match input_line t.ic with
  | exception End_of_file ->
      raise (Protocol_error "connection closed before response")
  | line -> (
      match Protocol.response_of_line line with
      | Some resp -> resp
      | None -> raise (Protocol_error ("malformed response: " ^ line)))

let close t = try Unix.close t.fd with Unix.Unix_error _ -> ()
