(** Client side of the daemon protocol — what [fxrefine submit] (and
    the serve gate) speak.  Synchronous: one request line out, one
    response line back. *)

type t = { fd : Unix.file_descr; ic : in_channel; oc : out_channel }

exception Protocol_error of string

let () =
  Printexc.register_printer (function
    | Protocol_error m -> Some (Printf.sprintf "Serve.Client.Protocol_error: %s" m)
    | _ -> None)

let connect socket =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (try Unix.connect fd (Unix.ADDR_UNIX socket)
   with exn ->
     (try Unix.close fd with Unix.Unix_error _ -> ());
     raise exn);
  { fd; ic = Unix.in_channel_of_descr fd; oc = Unix.out_channel_of_descr fd }

(* Retry [connect] until the daemon's listener is up — covers the
   start-up race of a freshly forked/backgrounded daemon. *)
let connect_retry ?(attempts = 50) ?(delay_s = 0.1) socket =
  let rec go n =
    match connect socket with
    | c -> c
    | exception Unix.Unix_error ((Unix.ENOENT | Unix.ECONNREFUSED), _, _)
      when n > 1 ->
        Unix.sleepf delay_s;
        go (n - 1)
  in
  go (max 1 attempts)

let request t req =
  output_string t.oc (Protocol.request_to_line req);
  output_char t.oc '\n';
  flush t.oc;
  match input_line t.ic with
  | exception End_of_file ->
      raise (Protocol_error "connection closed before response")
  | line -> (
      match Protocol.response_of_line line with
      | Some resp -> resp
      | None -> raise (Protocol_error ("malformed response: " ^ line)))

let close t = try Unix.close t.fd with Unix.Unix_error _ -> ()
