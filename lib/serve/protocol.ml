(** The daemon's job protocol: typed requests/responses and their
    {!Wire} line codecs.

    A client connection carries a sequence of independent requests;
    every request names an [id] the daemon echoes in its response, so a
    client multiplexing jobs can correlate them.  The sweep job mirrors
    the [fxrefine sweep] surface (workload and strategy by name, the
    grid/bisect parameters, jobs/budget) plus a wall-clock [timeout_s]
    that the daemon checks between waves. *)

type sweep_params = {
  workload : string;
  strategy : string;  (** grid | bisect | pareto *)
  f_min : int;
  f_max : int;
  seeds : int;  (** stimulus seeds 0..N-1, like the CLI *)
  jobs : int;
  budget : int option;
  target_db : float;  (** bisect's SQNR target *)
  timeout_s : float option;
}

type request =
  | Ping of { id : string }
  | Stats of { id : string }
  | Shutdown of { id : string }
  | Sweep of { id : string; params : sweep_params }

type response =
  | Pong of { id : string }
  | Stats_reply of { id : string; stats : Cache.stats }
  | Bye of { id : string }
  | Report of { id : string; report : string; hits : int; misses : int }
  | Error of { id : string; message : string }
  | Busy of { id : string; active : int; limit : int }
      (** structured backpressure: the daemon is at its connection
          limit; retry later (no request was admitted) *)

(* --- rendering ---------------------------------------------------------- *)

let request_to_line = function
  | Ping { id } ->
      Wire.to_line [ ("op", Wire.String "ping"); ("id", Wire.String id) ]
  | Stats { id } ->
      Wire.to_line [ ("op", Wire.String "stats"); ("id", Wire.String id) ]
  | Shutdown { id } ->
      Wire.to_line [ ("op", Wire.String "shutdown"); ("id", Wire.String id) ]
  | Sweep { id; params = p } ->
      Wire.to_line
        ([
           ("op", Wire.String "sweep");
           ("id", Wire.String id);
           ("workload", Wire.String p.workload);
           ("strategy", Wire.String p.strategy);
           ("f_min", Wire.Int p.f_min);
           ("f_max", Wire.Int p.f_max);
           ("seeds", Wire.Int p.seeds);
           ("jobs", Wire.Int p.jobs);
           ("target_db", Wire.Float p.target_db);
         ]
        @ (match p.budget with
          | Some b -> [ ("budget", Wire.Int b) ]
          | None -> [])
        @
        match p.timeout_s with
        | Some t -> [ ("timeout_s", Wire.Float t) ]
        | None -> [])

let response_to_line = function
  | Pong { id } ->
      Wire.to_line [ ("op", Wire.String "pong"); ("id", Wire.String id) ]
  | Stats_reply { id; stats = s } ->
      Wire.to_line
        [
          ("op", Wire.String "stats");
          ("id", Wire.String id);
          ("hits", Wire.Int s.Cache.hits);
          ("misses", Wire.Int s.Cache.misses);
          ("inserts", Wire.Int s.Cache.inserts);
          ("evictions", Wire.Int s.Cache.evictions);
          ("corrupt", Wire.Int s.Cache.corrupt);
          ("entries", Wire.Int s.Cache.entries);
        ]
  | Bye { id } ->
      Wire.to_line [ ("op", Wire.String "bye"); ("id", Wire.String id) ]
  | Report { id; report; hits; misses } ->
      Wire.to_line
        [
          ("op", Wire.String "report");
          ("id", Wire.String id);
          ("hits", Wire.Int hits);
          ("misses", Wire.Int misses);
          ("report", Wire.String report);
        ]
  | Error { id; message } ->
      Wire.to_line
        [
          ("op", Wire.String "error");
          ("id", Wire.String id);
          ("message", Wire.String message);
        ]
  | Busy { id; active; limit } ->
      Wire.to_line
        [
          ("op", Wire.String "busy");
          ("id", Wire.String id);
          ("active", Wire.Int active);
          ("limit", Wire.Int limit);
        ]

(* --- parsing ------------------------------------------------------------ *)

let ( let* ) = Option.bind

let request_of_line line =
  let* fields = Wire.of_line line in
  let* op = Wire.get_string fields "op" in
  let id = Option.value (Wire.get_string fields "id") ~default:"" in
  match op with
  | "ping" -> Some (Ping { id })
  | "stats" -> Some (Stats { id })
  | "shutdown" -> Some (Shutdown { id })
  | "sweep" ->
      let* workload = Wire.get_string fields "workload" in
      let* strategy = Wire.get_string fields "strategy" in
      let* f_min = Wire.get_int fields "f_min" in
      let* f_max = Wire.get_int fields "f_max" in
      let* seeds = Wire.get_int fields "seeds" in
      let jobs = Option.value (Wire.get_int fields "jobs") ~default:1 in
      let budget = Wire.get_int fields "budget" in
      let target_db =
        Option.value (Wire.get_float fields "target_db") ~default:40.0
      in
      let timeout_s = Wire.get_float fields "timeout_s" in
      Some
        (Sweep
           {
             id;
             params =
               {
                 workload;
                 strategy;
                 f_min;
                 f_max;
                 seeds;
                 jobs;
                 budget;
                 target_db;
                 timeout_s;
               };
           })
  | _ -> None

let response_of_line line =
  let* fields = Wire.of_line line in
  let* op = Wire.get_string fields "op" in
  let id = Option.value (Wire.get_string fields "id") ~default:"" in
  match op with
  | "pong" -> Some (Pong { id })
  | "bye" -> Some (Bye { id })
  | "stats" ->
      let* hits = Wire.get_int fields "hits" in
      let* misses = Wire.get_int fields "misses" in
      let* inserts = Wire.get_int fields "inserts" in
      let* evictions = Wire.get_int fields "evictions" in
      let* corrupt = Wire.get_int fields "corrupt" in
      let* entries = Wire.get_int fields "entries" in
      Some
        (Stats_reply
           {
             id;
             stats =
               { Cache.hits; misses; inserts; evictions; corrupt; entries };
           })
  | "report" ->
      let* report = Wire.get_string fields "report" in
      let* hits = Wire.get_int fields "hits" in
      let* misses = Wire.get_int fields "misses" in
      Some (Report { id; report; hits; misses })
  | "error" ->
      let* message = Wire.get_string fields "message" in
      Some (Error { id; message })
  | "busy" ->
      let* active = Wire.get_int fields "active" in
      let* limit = Wire.get_int fields "limit" in
      Some (Busy { id; active; limit })
  | _ -> None
