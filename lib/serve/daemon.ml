(** The [fxrefine serve] daemon: a long-running supervised process
    executing sweep jobs over a Unix-domain socket, all jobs sharing
    one content-addressed {!Cache}.

    Each accepted connection gets its own [Thread] (threads multiplex
    fine with the pool's worker {e domains}; a sweep job spawns domains
    from whichever thread runs it), reading line-delimited
    {!Protocol} requests and answering one response line per request.
    Connections are independent; concurrent sweep jobs interleave
    safely because every shared structure — the cache, the stats, the
    journal — is mutex- or rename-guarded, and a job's report depends
    only on its parameters (the determinism contract), not on
    scheduling.

    Crash safety (with [?journal_dir]): every admitted sweep job is
    written ahead to a {!Journal} intent before it executes and marked
    done once it has a definite answer (report {e or} deterministic
    error).  A daemon that was SIGKILLed therefore leaves one intent
    per interrupted job, and the next daemon's recovery pass re-runs
    each — resuming its {!Sweep.Checkpoint} journal, so completed waves
    replay instead of re-evaluating — with capped exponential backoff
    across daemon generations, quarantining jobs whose retry budget is
    spent.  The chaos gate SIGKILLs a live daemon mid-job to enforce
    this.

    Backpressure: at most [max_conns] concurrent connections; the
    listener's accept backlog is bounded to the same figure, and a
    connection over the limit receives one structured [busy] response
    and is closed — never an unbounded thread pile-up.

    Graceful drain: [SIGTERM] stops accepting, lets every in-flight
    job finish its current wave (checkpointed as always), answers it
    with a [draining] error (the intent survives for the next daemon),
    EOFs idle readers, waits for all connection threads, then exits.

    Degradation mirrors the rest of the engine: a malformed line yields
    an [error] response (the connection stays up), an unknown workload
    or strategy yields an [error] response, a job that raises is caught
    and reported, and a [timeout_s] overrun — checked between waves,
    like the pool's budget — quarantines just that job.  Only
    [shutdown] or [SIGTERM] stops the daemon. *)

(* Raised inside a job's [on_wave] when its deadline passed. *)
exception Timeout

(* Raised inside a job's [on_wave] when the daemon is draining: the
   current wave completed (and was checkpointed), stop cleanly. *)
exception Drained

let build_generator (p : Protocol.sweep_params)
    (workload : Sweep.Workload.t) =
  let specs = workload.Sweep.Workload.specs in
  let seeds = List.init p.Protocol.seeds Fun.id in
  match p.Protocol.strategy with
  | "grid" ->
      Ok
        (Sweep.Generator.grid ~specs ~f_min:p.Protocol.f_min
           ~f_max:p.Protocol.f_max ~seeds)
  | "bisect" ->
      Ok
        (Sweep.Generator.bisect ~specs ~f_min:p.Protocol.f_min
           ~f_max:p.Protocol.f_max ~target_db:p.Protocol.target_db ~seeds)
  | "pareto" ->
      Ok
        (Sweep.Generator.pareto ~specs ~f_min:p.Protocol.f_min
           ~f_max:p.Protocol.f_max ~seeds ())
  | s -> Result.Error (Printf.sprintf "unknown strategy %S (grid|bisect|pareto)" s)

type t = {
  cache : Cache.t;
  journal : Journal.t option;
  checkpoint_dir : string option;  (** sweep-wave journals, under the job journal *)
  listener : Unix.file_descr;
  stopping : bool Atomic.t;  (** a [shutdown] request arrived *)
  draining : bool Atomic.t;  (** SIGTERM arrived *)
  active : int Atomic.t;  (** live connection threads *)
  max_conns : int;
  retries : int;  (** recovery attempts per journaled job, across generations *)
  backoff_s : float;  (** recovery backoff base (doubles per attempt, capped) *)
  conns : (Unix.file_descr, unit) Hashtbl.t;
  conns_mutex : Mutex.t;
  conns_done : Condition.t;
  log : string -> unit;
}

(* The sweep's wave-journal key: everything that determines the report
   byte-for-byte.  [jobs] and [timeout_s] are deliberately excluded —
   they affect scheduling and wall-clock, never results — so a job
   resubmitted with different parallelism still resumes its journal. *)
let checkpoint_of t (p : Protocol.sweep_params) =
  match t.checkpoint_dir with
  | None -> None
  | Some dir ->
      let key =
        Sweep.Checkpoint.sweep_key ~workload:p.Protocol.workload
          ~strategy:p.Protocol.strategy ~context:(Codec.context ())
          [
            ("f_min", string_of_int p.Protocol.f_min);
            ("f_max", string_of_int p.Protocol.f_max);
            ("seeds", string_of_int p.Protocol.seeds);
            ( "budget",
              match p.Protocol.budget with
              | Some b -> string_of_int b
              | None -> "none" );
            ("target_db", Printf.sprintf "%h" p.Protocol.target_db);
          ]
      in
      (* two concurrent identical jobs may share a key: their wave
         files are byte-identical by determinism, and writes are atomic
         renames, so the race is benign *)
      Some (Sweep.Checkpoint.create ~resume:true ~dir ~key ())

let run_sweep_job t ~id (p : Protocol.sweep_params) =
  match Sweep.Workload.find p.Protocol.workload with
  | None ->
      Protocol.Error
        {
          id;
          message = Printf.sprintf "unknown workload %S" p.Protocol.workload;
        }
  | Some workload -> (
      if p.Protocol.f_min > p.Protocol.f_max then
        Protocol.Error { id; message = "f_min > f_max" }
      else if p.Protocol.seeds < 1 then
        Protocol.Error { id; message = "seeds < 1" }
      else if p.Protocol.jobs < 1 then
        Protocol.Error { id; message = "jobs < 1" }
      else
        match build_generator p workload with
        | Result.Error message -> Protocol.Error { id; message }
        | Ok generator -> (
            let deadline =
              Option.map
                (fun t -> Unix.gettimeofday () +. t)
                p.Protocol.timeout_s
            in
            let on_wave _progress =
              (match deadline with
              | Some d when Unix.gettimeofday () > d -> raise Timeout
              | _ -> ());
              if Atomic.get t.draining then raise Drained
            in
            let checkpoint = checkpoint_of t p in
            let s0 = Cache.stats t.cache in
            match
              Sweep.Pool.run ~jobs:p.Protocol.jobs ?budget:p.Protocol.budget
                ~cache:(Codec.eval_cache t.cache) ?checkpoint ~on_wave
                ~workload ~generator ()
            with
            | report ->
                let s1 = Cache.stats t.cache in
                Protocol.Report
                  {
                    id;
                    report = Sweep.Report.to_json report;
                    hits = s1.Cache.hits - s0.Cache.hits;
                    misses = s1.Cache.misses - s0.Cache.misses;
                  }
            | exception Timeout ->
                Protocol.Error
                  { id; message = "timeout: job exceeded its wall-clock budget" }
            | exception Drained ->
                (* escapes to the journaled wrapper: the intent must
                   survive so the next daemon re-runs this job *)
                raise Drained
            | exception exn ->
                Protocol.Error { id; message = Printexc.to_string exn }))

let drained_error id =
  Protocol.Error
    {
      id;
      message =
        "draining: daemon is shutting down; completed waves are \
         checkpointed, resubmit after restart";
    }

(* Write-ahead execution: intent before the job runs, [mark_done] once
   it has a definite answer.  A drain leaves the intent in place. *)
let execute_sweep t ~id p =
  match t.journal with
  | None -> ( try run_sweep_job t ~id p with Drained -> drained_error id)
  | Some j -> (
      let name = Journal.fresh_name j in
      let line = Protocol.request_to_line (Protocol.Sweep { id; params = p }) in
      Journal.record_intent j { Journal.name; attempts = 1; line };
      match run_sweep_job t ~id p with
      | resp ->
          Journal.mark_done j ~name;
          resp
      | exception Drained -> drained_error id)

(* [response, stop?] — [stop = true] only for shutdown. *)
let handle_request t = function
  | Protocol.Ping { id } -> (Protocol.Pong { id }, false)
  | Protocol.Stats { id } ->
      (Protocol.Stats_reply { id; stats = Cache.stats t.cache }, false)
  | Protocol.Shutdown { id } -> (Protocol.Bye { id }, true)
  | Protocol.Sweep { id; params } -> (execute_sweep t ~id params, false)

(* --- recovery ------------------------------------------------------------ *)

(* Re-run every intent the previous daemon left behind.  Attempts
   accumulate in the write-ahead record across daemon generations, so a
   poisoned job that kills the daemon every time it runs is quarantined
   after [retries] total admissions instead of crash-looping forever. *)
let recover_jobs t =
  match t.journal with
  | None -> ()
  | Some j ->
      let entries = Journal.pending j in
      if entries <> [] then
        t.log
          (Printf.sprintf "recovery: %d interrupted job(s) journaled"
             (List.length entries));
      List.iter
        (fun (e : Journal.entry) ->
          if not (Atomic.get t.draining || Atomic.get t.stopping) then
            match Protocol.request_of_line e.Journal.line with
            | Some (Protocol.Sweep { id; params }) -> (
                if e.Journal.attempts >= t.retries then begin
                  Journal.quarantine j e
                    ~reason:
                      (Printf.sprintf "retry budget exhausted (%d attempts)"
                         e.Journal.attempts);
                  t.log
                    (Printf.sprintf "recovery: job %s quarantined (%d attempts)"
                       e.Journal.name e.Journal.attempts)
                end
                else begin
                  (* capped exponential backoff, keyed to how often this
                     job has already been admitted *)
                  Unix.sleepf
                    (Float.min
                       (t.backoff_s *. (2.0 ** float_of_int e.Journal.attempts))
                       2.0);
                  let e = { e with Journal.attempts = e.Journal.attempts + 1 } in
                  Journal.record_intent j e;
                  match run_sweep_job t ~id params with
                  | _resp ->
                      Journal.mark_done j ~name:e.Journal.name;
                      t.log
                        (Printf.sprintf "recovery: job %s re-run to completion"
                           e.Journal.name)
                  | exception Drained -> ()
                end)
            | Some _ | None ->
                Journal.quarantine j e ~reason:"intent is not a sweep request";
                t.log
                  (Printf.sprintf "recovery: job %s quarantined (unparsable)"
                     e.Journal.name))
        entries

(* --- connections --------------------------------------------------------- *)

let handle_connection t fd =
  let ic = Unix.in_channel_of_descr fd in
  let oc = Unix.out_channel_of_descr fd in
  let send resp =
    output_string oc (Protocol.response_to_line resp);
    output_char oc '\n';
    flush oc
  in
  let rec serve_lines () =
    match input_line ic with
    | exception End_of_file -> ()
    | exception Sys_error _ -> ()
    | line ->
        let stop =
          match Protocol.request_of_line line with
          | None ->
              send
                (Protocol.Error { id = ""; message = "malformed request line" });
              false
          | Some req ->
              let resp, stop = handle_request t req in
              send resp;
              stop
        in
        if stop then begin
          t.log "shutdown requested";
          Atomic.set t.stopping true;
          (* unblock the accept loop: [shutdown] on the listening
             socket makes the pending [accept] raise (EINVAL) — unlike
             [close], which on Linux leaves a blocked [accept] blocked
             forever *)
          try Unix.shutdown t.listener Unix.SHUTDOWN_ALL
          with Unix.Unix_error _ -> ()
        end
        else if Atomic.get t.draining then ()
          (* the response above was flushed; stop reading so drain can
             finish instead of blocking on an idle client *)
        else serve_lines ()
  in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    serve_lines

(* One busy line straight onto the raw fd — the connection was never
   admitted, so no thread, no channel, no request read. *)
let reject_busy t fd =
  let line =
    Protocol.response_to_line
      (Protocol.Busy
         { id = ""; active = Atomic.get t.active; limit = t.max_conns })
    ^ "\n"
  in
  (try ignore (Unix.write_substring fd line 0 (String.length line))
   with Unix.Unix_error _ -> ());
  try Unix.close fd with Unix.Unix_error _ -> ()

let spawn_connection t fd =
  Atomic.incr t.active;
  Mutex.lock t.conns_mutex;
  Hashtbl.replace t.conns fd ();
  Mutex.unlock t.conns_mutex;
  ignore
    (Thread.create
       (fun () ->
         Fun.protect
           ~finally:(fun () ->
             Mutex.lock t.conns_mutex;
             Hashtbl.remove t.conns fd;
             Atomic.decr t.active;
             Condition.broadcast t.conns_done;
             Mutex.unlock t.conns_mutex)
           (fun () -> handle_connection t fd))
       ())

(* Drain/shutdown barrier: EOF every idle reader (writes — pending
   responses — still go through), then wait until every connection
   thread has finished.  In-flight jobs complete their current wave
   first (checkpointed), answered with a [draining] error. *)
let await_connections t =
  Mutex.lock t.conns_mutex;
  Hashtbl.iter
    (fun fd () ->
      try Unix.shutdown fd Unix.SHUTDOWN_RECEIVE with Unix.Unix_error _ -> ())
    t.conns;
  while Atomic.get t.active > 0 do
    Condition.wait t.conns_done t.conns_mutex
  done;
  Mutex.unlock t.conns_mutex

let run ?cache_dir ?max_entries ?journal_dir ?(max_conns = 64) ?(retries = 3)
    ?(backoff_s = 0.05) ?(log = fun _ -> ()) ~socket () =
  if max_conns < 1 then invalid_arg "Serve.Daemon.run: max_conns < 1";
  if retries < 1 then invalid_arg "Serve.Daemon.run: retries < 1";
  let cache = Cache.create ?dir:cache_dir ?max_entries () in
  let journal = Option.map (fun dir -> Journal.create ~dir) journal_dir in
  let checkpoint_dir =
    Option.map (fun dir -> Filename.concat dir "checkpoints") journal_dir
  in
  (* a stale socket file from a previous run would make [bind] fail *)
  (match Unix.lstat socket with
  | { Unix.st_kind = Unix.S_SOCK; _ } -> Unix.unlink socket
  | _ -> ()
  | exception Unix.Unix_error (Unix.ENOENT, _, _) -> ());
  let listener = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  let t =
    {
      cache;
      journal;
      checkpoint_dir;
      listener;
      stopping = Atomic.make false;
      draining = Atomic.make false;
      active = Atomic.make 0;
      max_conns;
      retries;
      backoff_s;
      conns = Hashtbl.create 16;
      conns_mutex = Mutex.create ();
      conns_done = Condition.create ();
      log;
    }
  in
  (* SIGTERM = graceful drain.  The handler body runs as ordinary OCaml
     code at a safe point: flag + listener shutdown only, no locks. *)
  let prev_sigterm =
    match
      Sys.signal Sys.sigterm
        (Sys.Signal_handle
           (fun _ ->
             Atomic.set t.draining true;
             try Unix.shutdown t.listener Unix.SHUTDOWN_ALL
             with Unix.Unix_error _ -> ()))
    with
    | h -> Some h
    | exception (Invalid_argument _ | Sys_error _) -> None
  in
  Fun.protect
    ~finally:(fun () ->
      (match prev_sigterm with
      | Some h -> ( try Sys.set_signal Sys.sigterm h with _ -> ())
      | None -> ());
      (try Unix.close listener with Unix.Unix_error _ -> ());
      try Unix.unlink socket with Unix.Unix_error _ | Sys_error _ -> ())
    (fun () ->
      Unix.bind listener (Unix.ADDR_UNIX socket);
      Unix.listen listener (min max_conns 128);
      log (Printf.sprintf "listening on %s" socket);
      (* recovery runs beside the accept loop so a restarted daemon
         serves fresh traffic while it re-runs interrupted jobs *)
      let recovery = Thread.create (fun () -> recover_jobs t) () in
      let rec accept_loop () =
        match Unix.accept t.listener with
        | fd, _addr ->
            if Atomic.get t.stopping || Atomic.get t.draining then (
              try Unix.close fd with Unix.Unix_error _ -> ())
            else if Atomic.get t.active >= t.max_conns then reject_busy t fd
            else spawn_connection t fd;
            accept_loop ()
        | exception Unix.Unix_error _
          when Atomic.get t.stopping || Atomic.get t.draining ->
            ()
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> accept_loop ()
      in
      accept_loop ();
      if Atomic.get t.draining then log "draining: waiting for in-flight jobs";
      await_connections t;
      Thread.join recovery;
      log (if Atomic.get t.draining then "drained" else "stopped"))
