(** The [fxrefine serve] daemon: a long-running process executing sweep
    jobs over a Unix-domain socket, all jobs sharing one
    content-addressed {!Cache}.

    Each accepted connection gets its own [Thread] (threads multiplex
    fine with the pool's worker {e domains}; a sweep job spawns domains
    from whichever thread runs it), reading line-delimited
    {!Protocol} requests and answering one response line per request.
    Connections are independent; concurrent sweep jobs interleave
    safely because every shared structure — the cache, the stats — is
    mutex-guarded, and a job's report depends only on its parameters
    (the determinism contract), not on scheduling.

    Degradation mirrors the rest of the engine: a malformed line yields
    an [error] response (the connection stays up), an unknown workload
    or strategy yields an [error] response, a job that raises is caught
    and reported, and a [timeout_s] overrun — checked between waves,
    like the pool's budget — quarantines just that job.  Only
    [shutdown] (or a signal) stops the daemon. *)

(* Raised inside a job's [on_wave] when its deadline passed. *)
exception Timeout

let build_generator (p : Protocol.sweep_params)
    (workload : Sweep.Workload.t) =
  let specs = workload.Sweep.Workload.specs in
  let seeds = List.init p.Protocol.seeds Fun.id in
  match p.Protocol.strategy with
  | "grid" ->
      Ok
        (Sweep.Generator.grid ~specs ~f_min:p.Protocol.f_min
           ~f_max:p.Protocol.f_max ~seeds)
  | "bisect" ->
      Ok
        (Sweep.Generator.bisect ~specs ~f_min:p.Protocol.f_min
           ~f_max:p.Protocol.f_max ~target_db:p.Protocol.target_db ~seeds)
  | "pareto" ->
      Ok
        (Sweep.Generator.pareto ~specs ~f_min:p.Protocol.f_min
           ~f_max:p.Protocol.f_max ~seeds ())
  | s -> Result.Error (Printf.sprintf "unknown strategy %S (grid|bisect|pareto)" s)

let run_sweep_job cache ~id (p : Protocol.sweep_params) =
  match Sweep.Workload.find p.Protocol.workload with
  | None ->
      Protocol.Error
        {
          id;
          message = Printf.sprintf "unknown workload %S" p.Protocol.workload;
        }
  | Some workload -> (
      if p.Protocol.f_min > p.Protocol.f_max then
        Protocol.Error { id; message = "f_min > f_max" }
      else if p.Protocol.seeds < 1 then
        Protocol.Error { id; message = "seeds < 1" }
      else if p.Protocol.jobs < 1 then
        Protocol.Error { id; message = "jobs < 1" }
      else
        match build_generator p workload with
        | Result.Error message -> Protocol.Error { id; message }
        | Ok generator -> (
            let deadline =
              Option.map
                (fun t -> Unix.gettimeofday () +. t)
                p.Protocol.timeout_s
            in
            let on_wave _progress =
              match deadline with
              | Some d when Unix.gettimeofday () > d -> raise Timeout
              | _ -> ()
            in
            let s0 = Cache.stats cache in
            match
              Sweep.Pool.run ~jobs:p.Protocol.jobs ?budget:p.Protocol.budget
                ~cache:(Codec.eval_cache cache) ~on_wave ~workload ~generator
                ()
            with
            | report ->
                let s1 = Cache.stats cache in
                Protocol.Report
                  {
                    id;
                    report = Sweep.Report.to_json report;
                    hits = s1.Cache.hits - s0.Cache.hits;
                    misses = s1.Cache.misses - s0.Cache.misses;
                  }
            | exception Timeout ->
                Protocol.Error
                  { id; message = "timeout: job exceeded its wall-clock budget" }
            | exception exn ->
                Protocol.Error { id; message = Printexc.to_string exn }))

(* [Some response, stop?] — [stop = true] only for shutdown. *)
let handle_request cache = function
  | Protocol.Ping { id } -> (Protocol.Pong { id }, false)
  | Protocol.Stats { id } ->
      (Protocol.Stats_reply { id; stats = Cache.stats cache }, false)
  | Protocol.Shutdown { id } -> (Protocol.Bye { id }, true)
  | Protocol.Sweep { id; params } -> (run_sweep_job cache ~id params, false)

type t = {
  cache : Cache.t;
  listener : Unix.file_descr;
  stopping : bool Atomic.t;
  log : string -> unit;
}

let handle_connection t fd =
  let ic = Unix.in_channel_of_descr fd in
  let oc = Unix.out_channel_of_descr fd in
  let send resp =
    output_string oc (Protocol.response_to_line resp);
    output_char oc '\n';
    flush oc
  in
  let rec serve_lines () =
    match input_line ic with
    | exception End_of_file -> ()
    | exception Sys_error _ -> ()
    | line ->
        let stop =
          match Protocol.request_of_line line with
          | None ->
              send
                (Protocol.Error { id = ""; message = "malformed request line" });
              false
          | Some req ->
              let resp, stop = handle_request t.cache req in
              send resp;
              stop
        in
        if stop then begin
          t.log "shutdown requested";
          Atomic.set t.stopping true;
          (* unblock the accept loop: [shutdown] on the listening
             socket makes the pending [accept] raise (EINVAL) — unlike
             [close], which on Linux leaves a blocked [accept] blocked
             forever *)
          try Unix.shutdown t.listener Unix.SHUTDOWN_ALL
          with Unix.Unix_error _ -> ()
        end
        else serve_lines ()
  in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    serve_lines

let run ?cache_dir ?max_entries ?(log = fun _ -> ()) ~socket () =
  let cache = Cache.create ?dir:cache_dir ?max_entries () in
  (* a stale socket file from a previous run would make [bind] fail *)
  (match Unix.lstat socket with
  | { Unix.st_kind = Unix.S_SOCK; _ } -> Unix.unlink socket
  | _ -> ()
  | exception Unix.Unix_error (Unix.ENOENT, _, _) -> ());
  let listener = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  let t = { cache; listener; stopping = Atomic.make false; log } in
  Fun.protect
    ~finally:(fun () ->
      (try Unix.close listener with Unix.Unix_error _ -> ());
      try Unix.unlink socket with Unix.Unix_error _ | Sys_error _ -> ())
    (fun () ->
      Unix.bind listener (Unix.ADDR_UNIX socket);
      Unix.listen listener 16;
      log (Printf.sprintf "listening on %s" socket);
      let rec accept_loop () =
        match Unix.accept listener with
        | fd, _addr ->
            ignore (Thread.create (fun () -> handle_connection t fd) ());
            accept_loop ()
        | exception Unix.Unix_error _ when Atomic.get t.stopping -> ()
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> accept_loop ()
      in
      accept_loop ();
      log "stopped")
