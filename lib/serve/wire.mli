(** Line-delimited flat-JSON framing for the daemon protocol: one
    message = one line = one flat JSON object (no nesting).  Writer and
    strict parser are hand-rolled, like the rest of the repo's JSON
    surface — no external JSON dependency. *)

(** A flat field value. *)
type value =
  | String of string
  | Int of int
  | Float of float
  | Bool of bool
  | Null

(** JSON-escape a string body (quote, backslash, newline, carriage
    return, tab, backspace, form feed; [\uXXXX] for remaining control
    bytes) — no surrounding quotes. *)
val escape : string -> string

(** Render an ordered field list as one single-line JSON object. *)
val to_line : (string * value) list -> string

(** Strictly parse one line back into its ordered field list; [None]
    on any malformation, including trailing garbage or non-ASCII
    [\uXXXX] escapes. *)
val of_line : string -> (string * value) list option

(** First value under the key, if any. *)
val find : (string * value) list -> string -> value option

(** Typed accessors; [None] when absent or differently typed
    ({!get_float} also accepts an [Int]). *)

val get_string : (string * value) list -> string -> string option
val get_int : (string * value) list -> string -> int option
val get_float : (string * value) list -> string -> float option
val get_bool : (string * value) list -> string -> bool option
