(** Write-ahead job journal for the daemon — see the .mli for the
    contract.

    One file per in-flight job under the journal directory:

    - [job-<name>.intent] — the write-ahead record, created {e before}
      the job starts executing:
      {v fxintent1 <attempts>\n<request line>\n v}
    - [job-<name>.quarantined] — the same record plus a
      [reason <escaped>] line, renamed into place when recovery gives
      up on the job.

    Every write is atomic and durable (temp + [fsync] + rename +
    directory [fsync]), so a SIGKILL at any instant leaves each job in
    exactly one state: absent (never admitted or already completed),
    intent (must be re-run or quarantined by the next daemon), or
    quarantined.  Nothing is ever silently forgotten. *)

type entry = { name : string; attempts : int; line : string }
type t = { dir : string; counter : int Atomic.t }

let magic = "fxintent1"
let dir t = t.dir

let name_is_safe n =
  n <> ""
  && String.for_all
       (function
         | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '-' | '_' | '.' -> true
         | _ -> false)
       n
  && n.[0] <> '.'

let rec mkdir_p d =
  if not (Sys.file_exists d) then begin
    mkdir_p (Filename.dirname d);
    try Unix.mkdir d 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let fsync_dir d =
  match Unix.openfile d [ Unix.O_RDONLY ] 0 with
  | fd ->
      Fun.protect
        ~finally:(fun () -> Unix.close fd)
        (fun () -> try Unix.fsync fd with Unix.Unix_error _ -> ())
  | exception Unix.Unix_error _ -> ()

let write_atomic path content =
  let tmp = path ^ ".tmp" in
  let fd =
    Unix.openfile tmp [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o644
  in
  Fun.protect
    ~finally:(fun () -> Unix.close fd)
    (fun () ->
      let b = Bytes.unsafe_of_string content in
      let n = Bytes.length b in
      let written = ref 0 in
      while !written < n do
        written := !written + Unix.write fd b !written (n - !written)
      done;
      Unix.fsync fd);
  Sys.rename tmp path;
  fsync_dir (Filename.dirname path)

let create ~dir =
  mkdir_p dir;
  { dir; counter = Atomic.make 0 }

(* Unique within the journal across restarts: the pid distinguishes
   daemon generations, the counter distinguishes jobs within one. *)
let fresh_name t =
  Printf.sprintf "%d-%06d" (Unix.getpid ()) (Atomic.fetch_and_add t.counter 1)

let intent_path t name = Filename.concat t.dir ("job-" ^ name ^ ".intent")

let quarantine_path t name =
  Filename.concat t.dir ("job-" ^ name ^ ".quarantined")

let render e = Printf.sprintf "%s %d\n%s\n" magic e.attempts e.line

let record_intent t e =
  if not (name_is_safe e.name) then
    invalid_arg "Serve.Journal.record_intent: unsafe job name";
  write_atomic (intent_path t e.name) (render e)

let mark_done t ~name =
  (try Sys.remove (intent_path t name) with Sys_error _ -> ());
  fsync_dir t.dir

let quarantine t e ~reason =
  write_atomic (quarantine_path t e.name)
    (render e ^ Printf.sprintf "reason %S\n" reason);
  mark_done t ~name:e.name

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let parse_intent ~name raw =
  match String.split_on_char '\n' raw with
  | [ header; line; "" ] -> (
      match String.split_on_char ' ' header with
      | [ m; attempts ] when String.equal m magic -> (
          match int_of_string_opt attempts with
          | Some attempts when attempts >= 0 -> Some { name; attempts; line }
          | _ -> None)
      | _ -> None)
  | _ -> None

let scan t ~suffix =
  let names =
    match Sys.readdir t.dir with
    | arr ->
        Array.sort compare arr;
        Array.to_list arr
    | exception Sys_error _ -> []
  in
  List.filter_map
    (fun file ->
      match Filename.chop_suffix_opt ~suffix file with
      | Some base
        when String.length base > 4 && String.sub base 0 4 = "job-" ->
          let name = String.sub base 4 (String.length base - 4) in
          if name_is_safe name then Some (name, Filename.concat t.dir file)
          else None
      | _ -> None)
    names

(* Interrupted jobs, oldest first.  A torn or unparsable intent file is
   quarantined on the spot (reason recorded, raw bytes preserved) —
   never deleted, never re-run blind. *)
let pending t =
  List.filter_map
    (fun (name, path) ->
      match parse_intent ~name (read_file path) with
      | Some e -> Some e
      | None | (exception Sys_error _) ->
          let raw = try read_file path with Sys_error _ -> "" in
          quarantine t
            { name; attempts = 0; line = raw }
            ~reason:"unparsable intent record";
          None)
    (scan t ~suffix:".intent")

let quarantined t = List.map fst (scan t ~suffix:".quarantined")
