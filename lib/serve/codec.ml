(** Bit-exact wire format for cached evaluation results, and the glue
    binding a {!Cache} into the evaluator's {!Refine.Eval.cache} hook.

    The determinism contract of the sweep engine extends to the cache:
    a warm re-sweep must render a report {e byte-identical} to the cold
    one, which means a decoded {!Refine.Eval.metrics} must be
    indistinguishable from the freshly computed record — including the
    probe monitors that later merge into the report aggregates.  Two
    choices follow:

    - every float travels as a [%h] hex literal ([0x1.999999999999ap-4]
      style, with [nan]/[infinity] spelled out), which
      [float_of_string] reverses exactly — no shortest-decimal
      round-trip subtleties;
    - the monitors serialize through {!Stats.Running.raw} /
      {!Stats.Err_stats.raw} — the exact internal accumulator fields —
      so merges over rebuilt values reproduce the cold fold bit for
      bit.

    The payload is a fixed sequence of labelled lines
    ([fxmetrics 1] header, then [sqnr]/[bits]/[ovf]/[errmax]/[pv]/[pe]);
    {!decode} is strict and returns [None] on any deviation, which the
    cache layer treats as a miss — a stale or foreign payload can
    degrade performance, never correctness. *)

let version = 1

(* Bump on ANY change to what an evaluation computes (or to this
   format): the string is folded into every cache key, so old entries
   simply stop being addressable — invalidation without deletion. *)
let evaluator_version = "fxeval/1"

let flit = Printf.sprintf "%h"

let floats_line = function
  | None -> "none"
  | Some a -> String.concat " " (Array.to_list (Array.map flit a))

let encode (m : Refine.Eval.metrics) =
  if m.Refine.Eval.counters <> None then
    invalid_arg "Serve.Codec.encode: counter-carrying metrics are not cacheable";
  String.concat "\n"
    [
      Printf.sprintf "fxmetrics %d" version;
      (match m.Refine.Eval.sqnr_db with
      | None -> "sqnr none"
      | Some v -> "sqnr " ^ flit v);
      Printf.sprintf "bits %d" m.Refine.Eval.total_bits;
      Printf.sprintf "ovf %d" m.Refine.Eval.overflow_count;
      "errmax " ^ flit m.Refine.Eval.probe_err_max;
      "pv "
      ^ floats_line (Option.map Stats.Running.raw m.Refine.Eval.probe_values);
      "pe "
      ^ floats_line (Option.map Stats.Err_stats.raw m.Refine.Eval.probe_err);
    ]

(* --- strict decoding ---------------------------------------------------- *)

let ( let* ) = Option.bind

let parse_floats s =
  if String.equal s "none" then Some None
  else
    let parts = String.split_on_char ' ' s in
    let rec go acc = function
      | [] -> Some (Some (Array.of_list (List.rev acc)))
      | p :: rest -> (
          match float_of_string_opt p with
          | Some v -> go (v :: acc) rest
          | None -> None)
    in
    go [] parts

let field ~label line =
  let prefix = label ^ " " in
  let pl = String.length prefix in
  if String.length line > pl && String.equal (String.sub line 0 pl) prefix
  then Some (String.sub line pl (String.length line - pl))
  else None

let decode s =
  match String.split_on_char '\n' s with
  | [ header; sqnr; bits; ovf; errmax; pv; pe ] ->
      let* () =
        if String.equal header (Printf.sprintf "fxmetrics %d" version) then
          Some ()
        else None
      in
      let* sqnr = field ~label:"sqnr" sqnr in
      let* sqnr_db =
        if String.equal sqnr "none" then Some None
        else
          match float_of_string_opt sqnr with
          | Some v -> Some (Some v)
          | None -> None
      in
      let* bits = field ~label:"bits" bits in
      let* total_bits = int_of_string_opt bits in
      let* ovf = field ~label:"ovf" ovf in
      let* overflow_count = int_of_string_opt ovf in
      let* errmax = field ~label:"errmax" errmax in
      let* probe_err_max = float_of_string_opt errmax in
      let* pv = field ~label:"pv" pv in
      let* pv = parse_floats pv in
      let* probe_values =
        match pv with
        | None -> Some None
        | Some a -> (
            match Stats.Running.of_raw a with
            | r -> Some (Some r)
            | exception Invalid_argument _ -> None)
      in
      let* pe = field ~label:"pe" pe in
      let* pe = parse_floats pe in
      let* probe_err =
        match pe with
        | None -> Some None
        | Some a -> (
            match Stats.Err_stats.of_raw a with
            | e -> Some (Some e)
            | exception Invalid_argument _ -> None)
      in
      Some
        {
          Refine.Eval.sqnr_db;
          total_bits;
          overflow_count;
          probe_err_max;
          probe_values;
          probe_err;
          counters = None;
        }
  | _ -> None

(* --- binding into the evaluator hook ------------------------------------ *)

let context ?plan () =
  match plan with
  | None -> evaluator_version
  | Some p -> evaluator_version ^ "+fault:" ^ Fault.Plan.to_json p

let eval_cache ?plan cache =
  {
    Refine.Eval.context = context ?plan ();
    lookup = (fun key -> Option.bind (Cache.lookup cache key) decode);
    insert =
      (fun key m ->
        (* the compiled path never produces counters, but the hook
           stays total: a counter-carrying record is simply not cached *)
        if m.Refine.Eval.counters = None then
          Cache.insert cache key (encode m));
  }
