(** The content-addressed evaluation store — persistent memoization of
    candidate evaluations across sweeps, processes and daemon jobs.

    A cache maps opaque string keys (in practice the MD5 hex digests of
    {!Refine.Eval.cache_key}) to opaque string payloads (in practice
    {!Codec.encode}d metrics).  The store itself imposes no meaning on
    either: it is a durable [(string → string)] table with bounded
    size, crash-tolerant persistence, and domain-safe concurrent
    access.

    {2 Disk layout}

    When created with [?dir], every entry is one file
    [<key>.entry] under that directory, written atomically
    (temporary file + [fsync] + [rename]) with a self-describing
    header:

    {v fxcache2 <payload-bytes> <crc32-hex>\n<payload> v}

    The explicit byte count makes truncation detectable and the CRC-32
    makes {e same-length} corruption (bit-rot, a flipped byte) just as
    visible: a file whose payload disagrees with either — a crashed
    writer, a filled disk, a decayed sector, a hand-edited entry — is
    {e corrupt}; it is deleted, counted in {!stats}, and treated as a
    miss (healed on read, never served as truth).  A later insert under
    the same key simply rewrites it.  {!scrub} runs the same check over
    every entry file eagerly.

    {2 Concurrency}

    All operations take an internal mutex, so one cache value may be
    shared by every worker domain of a {!Sweep.Pool} run and every
    connection thread of a {!Daemon} simultaneously.  The mutex guards
    the in-memory index; disk writes are atomic renames, so even two
    processes sharing a directory cannot interleave a torn entry
    (last-writer-wins on identical keys is harmless — payloads under
    one key are identical by construction). *)

type stats = {
  hits : int;
  misses : int;
  inserts : int;
  evictions : int;
  corrupt : int;
  entries : int;
}

type t = {
  mutex : Mutex.t;
  tbl : (string, string) Hashtbl.t;
  order : string Queue.t;  (** insertion order — FIFO eviction *)
  dir : string option;
  max_entries : int option;
  mutable hits : int;
  mutable misses : int;
  mutable inserts : int;
  mutable evictions : int;
  mutable corrupt : int;
}

let magic = "fxcache2"

(* Keys become file names; anything outside the hex-digest alphabet
   (plus a few safe extras) stays memory-only rather than risking path
   tricks or unportable names. *)
let key_is_file_safe k =
  k <> ""
  && String.for_all
       (function
         | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '-' | '_' | '.' -> true
         | _ -> false)
       k
  && k.[0] <> '.'

let entry_path dir key = Filename.concat dir (key ^ ".entry")

let render_entry payload =
  Printf.sprintf "%s %d %s\n%s" magic (String.length payload)
    (Crc32.to_hex (Crc32.digest payload))
    payload

(* [None] = corrupt (bad magic, unparsable length or checksum, a
   payload whose byte count disagrees with the header, or a payload
   whose CRC-32 does not match — bit-rot).  Pre-CRC [fxcache1] entries
   fail the magic check and are invalidated the same way. *)
let parse_entry raw =
  match String.index_opt raw '\n' with
  | None -> None
  | Some nl -> (
      match String.split_on_char ' ' (String.sub raw 0 nl) with
      | [ m; len; crc ] when String.equal m magic -> (
          match (int_of_string_opt len, Crc32.of_hex crc) with
          | Some n, Some sum when n >= 0 && String.length raw = nl + 1 + n ->
              let payload = String.sub raw (nl + 1) n in
              if Int32.equal (Crc32.digest payload) sum then Some payload
              else None
          | _ -> None)
      | _ -> None)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* Atomic durable publication: write the whole entry beside its final
   name, fsync it, rename, then fsync the directory — a reader (or a
   crash, even a power loss) sees the old entry or the new one, never
   a prefix. *)
let fsync_dir dir =
  match Unix.openfile dir [ Unix.O_RDONLY ] 0 with
  | fd ->
      Fun.protect
        ~finally:(fun () -> Unix.close fd)
        (fun () -> try Unix.fsync fd with Unix.Unix_error _ -> ())
  | exception Unix.Unix_error _ -> ()

let write_atomic path content =
  let tmp = path ^ ".tmp" in
  let fd =
    Unix.openfile tmp [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o644
  in
  Fun.protect
    ~finally:(fun () -> Unix.close fd)
    (fun () ->
      let b = Bytes.unsafe_of_string content in
      let n = Bytes.length b in
      let written = ref 0 in
      while !written < n do
        written := !written + Unix.write fd b !written (n - !written)
      done;
      Unix.fsync fd);
  Sys.rename tmp path;
  fsync_dir (Filename.dirname path)

let rec mkdir_p dir =
  if not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

(* Locked context assumed for everything below this point. *)

let evict_over_limit t =
  match t.max_entries with
  | None -> ()
  | Some limit ->
      while Hashtbl.length t.tbl > limit && not (Queue.is_empty t.order) do
        let victim = Queue.pop t.order in
        if Hashtbl.mem t.tbl victim then begin
          Hashtbl.remove t.tbl victim;
          t.evictions <- t.evictions + 1;
          match t.dir with
          | Some dir -> (
              try Sys.remove (entry_path dir victim) with Sys_error _ -> ())
          | None -> ()
        end
      done

let remove_corrupt t path =
  (try Sys.remove path with Sys_error _ -> ());
  t.corrupt <- t.corrupt + 1

(* Adopt an entry discovered on disk (load scan, or a miss that finds a
   file another process wrote).  Corrupt files are deleted and counted. *)
let adopt_from_disk t dir key =
  let path = entry_path dir key in
  if not (Sys.file_exists path) then None
  else
    match parse_entry (read_file path) with
    | Some payload ->
        if not (Hashtbl.mem t.tbl key) then begin
          Hashtbl.replace t.tbl key payload;
          Queue.push key t.order;
          evict_over_limit t
        end;
        Some payload
    | None | (exception Sys_error _) ->
        remove_corrupt t path;
        None

let load t dir =
  let names =
    match Sys.readdir dir with
    | arr ->
        Array.sort compare arr;
        Array.to_list arr
    | exception Sys_error _ -> []
  in
  List.iter
    (fun name ->
      match Filename.chop_suffix_opt ~suffix:".entry" name with
      | Some key when key_is_file_safe key ->
          ignore (adopt_from_disk t dir key)
      | _ -> ())
    names

let create ?dir ?max_entries () =
  (match max_entries with
  | Some m when m < 1 -> invalid_arg "Serve.Cache.create: max_entries < 1"
  | _ -> ());
  let t =
    {
      mutex = Mutex.create ();
      tbl = Hashtbl.create 256;
      order = Queue.create ();
      dir;
      max_entries;
      hits = 0;
      misses = 0;
      inserts = 0;
      evictions = 0;
      corrupt = 0;
    }
  in
  (match dir with
  | Some d ->
      mkdir_p d;
      load t d
  | None -> ());
  t

let with_lock t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

let lookup t key =
  with_lock t (fun () ->
      match Hashtbl.find_opt t.tbl key with
      | Some payload ->
          t.hits <- t.hits + 1;
          Some payload
      | None -> (
          let disk =
            match t.dir with
            | Some dir when key_is_file_safe key -> adopt_from_disk t dir key
            | _ -> None
          in
          match disk with
          | Some payload ->
              t.hits <- t.hits + 1;
              Some payload
          | None ->
              t.misses <- t.misses + 1;
              None))

let insert t key payload =
  with_lock t (fun () ->
      if not (Hashtbl.mem t.tbl key) then begin
        Hashtbl.replace t.tbl key payload;
        Queue.push key t.order;
        t.inserts <- t.inserts + 1;
        (match t.dir with
        | Some dir when key_is_file_safe key -> (
            try write_atomic (entry_path dir key) (render_entry payload)
            with Sys_error _ | Unix.Unix_error _ -> ())
        | _ -> ());
        evict_over_limit t
      end)

let stats t =
  with_lock t (fun () ->
      {
        hits = t.hits;
        misses = t.misses;
        inserts = t.inserts;
        evictions = t.evictions;
        corrupt = t.corrupt;
        entries = Hashtbl.length t.tbl;
      })

let entry_count t = with_lock t (fun () -> Hashtbl.length t.tbl)

type scrub = { scanned : int; ok : int; healed : int }

(* Full-directory integrity pass: re-read every [*.entry] file from
   disk (deliberately ignoring the in-memory copy — the point is to
   catch decay that happened {e after} load) and verify header + CRC.
   A failing file is deleted, dropped from the memory index, and
   counted both here and in [stats.corrupt], so the next lookup of its
   key is a clean miss. *)
let scrub t =
  with_lock t (fun () ->
      match t.dir with
      | None -> { scanned = 0; ok = 0; healed = 0 }
      | Some dir ->
          let names =
            match Sys.readdir dir with
            | arr ->
                Array.sort compare arr;
                Array.to_list arr
            | exception Sys_error _ -> []
          in
          List.fold_left
            (fun acc name ->
              match Filename.chop_suffix_opt ~suffix:".entry" name with
              | None -> acc
              | Some key -> (
                  let path = Filename.concat dir name in
                  match parse_entry (read_file path) with
                  | Some _ -> { acc with scanned = acc.scanned + 1; ok = acc.ok + 1 }
                  | None | (exception Sys_error _) ->
                      remove_corrupt t path;
                      Hashtbl.remove t.tbl key;
                      { acc with scanned = acc.scanned + 1; healed = acc.healed + 1 }))
            { scanned = 0; ok = 0; healed = 0 }
            names)

let pp_stats ppf s =
  Format.fprintf ppf
    "%d entries, %d hits, %d misses, %d inserts, %d evictions, %d corrupt"
    s.entries s.hits s.misses s.inserts s.evictions s.corrupt
