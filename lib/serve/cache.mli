(** Content-addressed evaluation store: a durable, bounded, domain-safe
    [(string → string)] table memoizing candidate evaluations across
    sweeps, processes and daemon jobs.

    Keys are opaque (in practice {!Refine.Eval.cache_key} digests) and
    payloads are opaque (in practice {!Codec.encode}d metrics).  With
    [?dir], each entry persists as one [<key>.entry] file written
    atomically and durably (temp file + [fsync] + rename) under the
    header [fxcache2 <payload-bytes> <crc32-hex>\n]; the byte count
    makes truncation detectable and the CRC-32 catches same-length
    bit-rot — damaged files are deleted, counted as [corrupt], and
    treated as misses (healed on read, never served as truth; {!scrub}
    applies the same check to every entry eagerly).  All operations are
    mutex-guarded, so one cache serves every {!Sweep.Pool} worker
    domain and every {!Daemon} connection thread concurrently. *)

type t

(** Counter snapshot (monotonic over the value's lifetime, except
    [entries] which is the current table size). *)
type stats = {
  hits : int;  (** lookups answered (memory or disk) *)
  misses : int;  (** lookups answered empty *)
  inserts : int;  (** new keys stored (duplicates are no-ops) *)
  evictions : int;  (** entries dropped by the FIFO bound *)
  corrupt : int;  (** damaged entry files detected and deleted *)
  entries : int;  (** current in-memory index size *)
}

(** [create ?dir ?max_entries ()] — a fresh cache.  [dir] enables
    persistence: the directory is created if missing and every
    well-formed [*.entry] file in it is adopted (corrupt ones are
    deleted and counted).  [max_entries] bounds the table; the
    oldest-inserted entries are evicted first (FIFO), on disk too.
    Raises [Invalid_argument] on [max_entries < 1]. *)
val create : ?dir:string -> ?max_entries:int -> unit -> t

(** [lookup t key] — the stored payload, or [None].  A key absent from
    memory but present (and well-formed) on disk — e.g. written by
    another process sharing [dir] — is adopted and counts as a hit. *)
val lookup : t -> string -> string option

(** [insert t key payload] — store a new entry (and persist it when the
    cache has a directory and the key is a safe file name).  Inserting
    an existing key is a no-op: under content addressing, equal keys
    mean equal payloads. *)
val insert : t -> string -> string -> unit

(** Current counter snapshot. *)
val stats : t -> stats

(** Current in-memory index size (= [(stats t).entries]). *)
val entry_count : t -> int

(** {!scrub} result: [scanned] entry files examined, [ok] verified
    intact, [healed] found damaged — deleted, dropped from the index,
    and counted in [stats.corrupt].  [scanned = ok + healed]. *)
type scrub = { scanned : int; ok : int; healed : int }

(** [scrub t] — eager full-directory integrity pass: re-read every
    [*.entry] file from disk and verify its header and payload CRC-32,
    healing failures as misses.  Catches bit-rot that happened after
    load (lookups served from memory would never re-read the file).
    Memory-only caches scan nothing. *)
val scrub : t -> scrub

(** One-line human rendering of a {!stats} snapshot. *)
val pp_stats : Format.formatter -> stats -> unit
