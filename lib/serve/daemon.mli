(** The [fxrefine serve] daemon: executes sweep jobs over a Unix-domain
    socket, every job sharing one content-addressed {!Cache}.  One
    thread per connection, line-delimited {!Protocol} messages, one
    response per request.  Failures degrade like the rest of the
    engine: malformed lines, unknown workloads/strategies, raised
    exceptions and [timeout_s] overruns each quarantine the single
    request into an [error] response; the daemon itself only stops on a
    [shutdown] request or a [SIGTERM] drain.

    With [?journal_dir] the daemon is {e supervised}: every admitted
    sweep job writes a {!Journal} intent before executing and runs with
    a {!Sweep.Checkpoint} wave journal (under
    [journal_dir/checkpoints]), so a SIGKILLed daemon forgets nothing —
    the next [run] over the same directory re-runs each interrupted job
    (resuming its completed waves, with capped exponential backoff
    accumulated across daemon generations) or quarantines it once its
    retry budget is spent.  The chaos gate enforces this with real
    kills. *)

(** [run ~socket ()] binds the Unix-domain socket at [socket] (a stale
    socket file is unlinked first), serves until a [shutdown] request
    or a [SIGTERM], then removes the socket file and returns.

    [cache_dir]/[max_entries] configure the shared {!Cache}.

    [journal_dir] enables the write-ahead job journal and per-job sweep
    checkpoints described above; without it the daemon is stateless
    across restarts (as before).

    [max_conns] (default 64) bounds concurrent connections {e and} the
    accept backlog; a connection over the limit receives one structured
    [busy] response and is closed — backpressure, not thread pile-up.

    [retries] (default 3) caps how many times a journaled job may be
    admitted in total before recovery quarantines it; [backoff_s]
    (default 0.05) is the recovery backoff base, doubled per recorded
    attempt and capped at 2 s.

    [log] receives one-line lifecycle messages (default: silent).

    [SIGTERM] triggers a graceful drain: stop accepting, let in-flight
    jobs finish their current wave (checkpointed), answer them with a
    [draining] error whose intents survive for the next daemon, wait
    for every connection thread, restore the previous handler, exit.
    The handler is process-global while [run] is live.

    Raises [Invalid_argument] on [max_conns < 1] or [retries < 1].
    Blocking — callers wanting a background daemon run it in their own
    thread or process. *)
val run :
  ?cache_dir:string ->
  ?max_entries:int ->
  ?journal_dir:string ->
  ?max_conns:int ->
  ?retries:int ->
  ?backoff_s:float ->
  ?log:(string -> unit) ->
  socket:string ->
  unit ->
  unit
