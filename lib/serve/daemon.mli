(** The [fxrefine serve] daemon: executes sweep jobs over a Unix-domain
    socket, every job sharing one content-addressed {!Cache}.  One
    thread per connection, line-delimited {!Protocol} messages, one
    response per request.  Failures degrade like the rest of the
    engine: malformed lines, unknown workloads/strategies, raised
    exceptions and [timeout_s] overruns each quarantine the single
    request into an [error] response; the daemon itself only stops on a
    [shutdown] request. *)

(** [run ~socket ()] binds the Unix-domain socket at [socket] (a stale
    socket file is unlinked first), serves until a [shutdown] request,
    then removes the socket file and returns.  [cache_dir]/[max_entries]
    configure the shared {!Cache}; [log] receives one-line lifecycle
    messages (default: silent).  Blocking — callers wanting a
    background daemon run it in their own thread or process. *)
val run :
  ?cache_dir:string ->
  ?max_entries:int ->
  ?log:(string -> unit) ->
  socket:string ->
  unit ->
  unit
