(** Quantization of ideal (float) values through a {!Dtype.t}.

    This is the operation the design environment performs on every signal
    assignment (§2.2): arithmetic runs in floating point, and the result
    is cast through the destination type's quantization scheme — LSB
    rounding first, then MSB overflow handling.

    Quantization is performed on an integer grid held in [int64] whenever
    the scaled value fits (exact semantics); values beyond the [int64]
    range — which occur during range-propagation explosions — fall back
    to a float path with the same wrap/saturate behaviour.

    Because this cast runs once per signal assignment it is the hottest
    operation of the whole simulation engine.  All per-type constants
    (integer code bounds, step, representable range, mode flags) are
    precomputed once into a {!compiled} record; {!exec} then performs a
    cast with no repeated [2.0 ** lsb] evaluation or bound derivation.
    {!quantize} keeps the one-shot API on top of a memo table. *)

type overflow_event = {
  raw : float;  (** value after rounding, before overflow handling *)
  direction : [ `Above | `Below ];
}

type outcome = {
  value : float;  (** the representable result *)
  rounding_error : float;  (** [value_after_rounding - input] *)
  overflow : overflow_event option;
}

(* Integer code range of a format.  Wordlengths up to 64 are well-defined
   for two's complement thanks to int64 wraparound ([1L lsl 63 = min_int],
   so [hi] lands on [max_int] and [lo] on [min_int] exactly); unsigned
   formats are limited to n <= 63 — an unsigned 64-bit code does not fit
   an [int64] (documented limitation). *)
let code_bounds (fmt : Qformat.t) =
  let n = Qformat.n fmt in
  match Qformat.sign fmt with
  | Sign_mode.Tc ->
      let hi = Int64.sub (Int64.shift_left 1L (n - 1)) 1L in
      let lo = Int64.neg (Int64.shift_left 1L (n - 1)) in
      (lo, hi)
  | Sign_mode.Us ->
      let hi = Int64.sub (Int64.shift_left 1L n) 1L in
      (0L, hi)

(* Two's-complement / modular wraparound of an out-of-range code into the
   format's code window.  Implemented with native int64 wraparound —
   sign-extension of the low [n] bits for tc (valid for the full-width
   n = 63 and n = 64 cases, where a [2^n] span does not fit a positive
   int64), masking for unsigned.  n = 64 unsigned cannot be represented
   in int64 codes at all; such codes pass through unchanged (the float
   fallback of [exec] covers those magnitudes anyway). *)
let wrap_code fmt code =
  let n = Qformat.n fmt in
  match Qformat.sign fmt with
  | Sign_mode.Tc ->
      if n >= 64 then code
      else Int64.shift_right (Int64.shift_left code (64 - n)) (64 - n)
  | Sign_mode.Us ->
      if n >= 64 then code
      else Int64.logand code (Int64.sub (Int64.shift_left 1L n) 1L)

(* Largest float magnitude we trust to round-trip through int64. *)
let int64_safe = 4.0e18

(** All per-type constants of the cast, computed once ({!compile}): the
    "compiled quantizer" reused by every {!Sim.Signal.assign}. *)
type compiled = {
  cdt : Dtype.t;
  step : float;  (** [2 ^ lsb_pos] *)
  lo : int64;  (** smallest integer code *)
  hi : int64;  (** largest integer code *)
  flo : float;  (** [Int64.to_float lo] (float fallback bound) *)
  fhi : float;
  min_v : float;  (** representable range, [Dtype.range] *)
  max_v : float;
  round_nearest : bool;  (** Round vs Floor *)
  overflow : Overflow_mode.t;
  saturating : bool;
  error_mode : bool;  (** overflow mode is [Error] *)
  int64_path : bool;  (** wordlength fits the exact int64 grid (n <= 62) *)
}

let compile (dt : Dtype.t) =
  let fmt = Dtype.fmt dt in
  let lo, hi = code_bounds fmt in
  let overflow = Dtype.overflow dt in
  let min_v, max_v = Dtype.range dt in
  {
    cdt = dt;
    step = Qformat.step fmt;
    lo;
    hi;
    flo = Int64.to_float lo;
    fhi = Int64.to_float hi;
    min_v;
    max_v;
    round_nearest = Round_mode.equal (Dtype.round dt) Round_mode.Round;
    overflow;
    saturating = Overflow_mode.is_saturating overflow;
    error_mode = Overflow_mode.equal overflow Overflow_mode.Error;
    int64_path = Qformat.n fmt <= 62;
  }

let dtype_of (c : compiled) = c.cdt

(* Exact path: the rounded scaled value fits the int64 grid. *)
let apply_int64 c rounded_scaled =
  let code = Int64.of_float rounded_scaled in
  let below = Int64.compare code c.lo < 0
  and above = Int64.compare code c.hi > 0 in
  if not (below || above) then (Int64.to_float code *. c.step, None)
  else
    let event =
      {
        raw = rounded_scaled *. c.step;
        direction = (if above then `Above else `Below);
      }
    in
    let code' =
      match c.overflow with
      | Overflow_mode.Saturate -> if above then c.hi else c.lo
      | Overflow_mode.Wrap | Overflow_mode.Error ->
          wrap_code (Dtype.fmt c.cdt) code
    in
    (Int64.to_float code' *. c.step, Some event)

(* Float fallback for astronomically large values (range explosion):
   saturate clamps; wrap reduces modulo the span, which is meaningless at
   this magnitude but keeps simulation total. *)
let apply_float c rounded_scaled =
  let above = rounded_scaled > c.fhi and below = rounded_scaled < c.flo in
  if not (above || below) then (rounded_scaled *. c.step, None)
  else
    let event =
      {
        raw = rounded_scaled *. c.step;
        direction = (if above then `Above else `Below);
      }
    in
    let code' =
      match c.overflow with
      | Overflow_mode.Saturate -> if above then c.fhi else c.flo
      | Overflow_mode.Wrap | Overflow_mode.Error ->
          let span = c.fhi -. c.flo +. 1.0 in
          let off = Float.rem (rounded_scaled -. c.flo) span in
          let off = if off < 0.0 then off +. span else off in
          c.flo +. Float.round off
    in
    (code' *. c.step, Some event)

(** Scratch cell for {!exec_into} results beyond the value itself.
    All-float (flat representation), so the hot path stores into it
    without boxing: [flag] is 0 for no overflow, positive for [`Above],
    negative for [`Below]; [raw] and [rerr] are only meaningful right
    after an [exec_into] call. *)
type scratch = {
  mutable flag : float;
  mutable raw : float;  (** pre-overflow value when [flag <> 0] *)
  mutable rerr : float;  (** rounding error of the last cast *)
}

let create_scratch () = { flag = 0.0; raw = 0.0; rerr = 0.0 }

(** [exec_into c v s] — the per-assignment cast through a compiled
    quantizer, allocation-free: returns the representable value and
    reports the overflow outcome through [s].  Must compute exactly what
    {!apply_int64}/{!apply_float} compute (the agreement is under test).
    NaN input raises [Invalid_argument]; infinities saturate (or wrap to
    an unspecified in-range code) and report an overflow event. *)
let exec_into (c : compiled) v (s : scratch) : float =
  if Float.is_nan v then invalid_arg "Quantize.quantize: nan";
  let v_clamped =
    (* keep the scaled value finite for the float fallback *)
    if v = Float.infinity then Float.max_float
    else if v = Float.neg_infinity then -.Float.max_float
    else v
  in
  let scaled = v_clamped /. c.step in
  let rounded =
    if c.round_nearest then Float.round scaled else Float.floor scaled
  in
  s.rerr <- (rounded *. c.step) -. v_clamped;
  if Float.abs rounded <= int64_safe && c.int64_path then begin
    let code = Int64.of_float rounded in
    let below = Int64.compare code c.lo < 0
    and above = Int64.compare code c.hi > 0 in
    if not (below || above) then begin
      s.flag <- 0.0;
      Int64.to_float code *. c.step
    end
    else begin
      s.flag <- (if above then 1.0 else -1.0);
      s.raw <- rounded *. c.step;
      let code' =
        match c.overflow with
        | Overflow_mode.Saturate -> if above then c.hi else c.lo
        | Overflow_mode.Wrap | Overflow_mode.Error ->
            wrap_code (Dtype.fmt c.cdt) code
      in
      Int64.to_float code' *. c.step
    end
  end
  else begin
    let above = rounded > c.fhi and below = rounded < c.flo in
    if not (above || below) then begin
      s.flag <- 0.0;
      rounded *. c.step
    end
    else begin
      s.flag <- (if above then 1.0 else -1.0);
      s.raw <- rounded *. c.step;
      let code' =
        match c.overflow with
        | Overflow_mode.Saturate -> if above then c.fhi else c.flo
        | Overflow_mode.Wrap | Overflow_mode.Error ->
            let span = c.fhi -. c.flo +. 1.0 in
            let off = Float.rem (rounded -. c.flo) span in
            let off = if off < 0.0 then off +. span else off in
            c.flo +. Float.round off
      in
      code' *. c.step
    end
  end

(* Module-private scratch for the one-shot API; simulation is
   single-domain and [exec_into] never calls back out. *)
let shared_scratch = create_scratch ()

(** [exec c v] — boxed-outcome variant of {!exec_into} (one-shot
    callers and places that want the full record). *)
let exec (c : compiled) v : outcome =
  let s = shared_scratch in
  let value = exec_into c v s in
  {
    value;
    rounding_error = s.rerr;
    overflow =
      (if s.flag = 0.0 then None
       else
         Some
           {
             raw = s.raw;
             direction = (if s.flag > 0.0 then `Above else `Below);
           });
  }

(* Compiled quantizers memoized per dtype, so one-shot callers
   ({!quantize}, {!cast}, the SFG interpreter) share the precomputation
   too.  Dtypes are small immutable records: structural hashing is exact.
   The table is bounded defensively — wordlength searches can synthesize
   thousands of throwaway types.  Guarded by a mutex: sweep worker
   domains retype signals (and compile graphs) concurrently, and an
   unsynchronized Hashtbl resize corrupts under parallel access. *)
let memo : (Dtype.t, compiled) Hashtbl.t = Hashtbl.create 64
let memo_lock = Mutex.create ()

let of_dtype dt =
  Mutex.lock memo_lock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock memo_lock)
    (fun () ->
      match Hashtbl.find_opt memo dt with
      | Some c -> c
      | None ->
          if Hashtbl.length memo > 4096 then Hashtbl.reset memo;
          let c = compile dt in
          Hashtbl.add memo dt c;
          c)

(** [quantize dtype v] casts [v] through [dtype]'s quantization scheme.
    NaN input raises [Invalid_argument]; infinities saturate (or wrap to
    an unspecified in-range code) and report an overflow event. *)
let quantize (dt : Dtype.t) v : outcome = exec (of_dtype dt) v

(** [cast dtype v] — just the representable value (the paper's [cast]
    operator for intermediate results). *)
let cast dt v = (quantize dt v).value

(** [error dt v] — total quantization error [cast dt v -. v]. *)
let error dt v = cast dt v -. v

(** Theoretical error-model parameters for a type (used by the analytical
    noise propagation and by tests): the quantization step [q], the error
    variance [q^2/12] of the uniform model, and the mean bias of the
    rounding mode. *)
let noise_model dt =
  let q = Dtype.step dt in
  let variance = q *. q /. 12.0 in
  let mean = Round_mode.expected_bias (Dtype.round dt) ~step:q in
  (q, mean, variance)
