(** Fixed-point data types — the paper's
    [dtype(name, n, f, vtype, msbspec, lsbspec)] object (§2.1): a
    {!Qformat.t} plus MSB overflow mode and LSB rounding mode, under a
    name used in reports. *)

type t

(** Defaults: two's complement, wrap-around, round-off. *)
val make :
  string ->
  n:int ->
  f:int ->
  ?sign:Sign_mode.t ->
  ?overflow:Overflow_mode.t ->
  ?round:Round_mode.t ->
  unit ->
  t

(** {!make} from an existing {!Qformat.t}. *)
val of_format :
  ?overflow:Overflow_mode.t -> ?round:Round_mode.t -> string -> Qformat.t -> t

(** The report name the dtype was declared under. *)
val name : t -> string

(** The underlying bit layout. *)
val fmt : t -> Qformat.t

(** MSB behaviour ([msbspec]). *)
val overflow : t -> Overflow_mode.t

(** LSB behaviour ([lsbspec]). *)
val round : t -> Round_mode.t

(** Total bits. *)
val n : t -> int

(** Fractional bits. *)
val f : t -> int

(** Two's complement or unsigned. *)
val sign : t -> Sign_mode.t

(** Weight of the most significant magnitude bit. *)
val msb_pos : t -> int

(** Weight of the least significant bit ([-f]). *)
val lsb_pos : t -> int

(** Quantization step [2^lsb_pos]. *)
val step : t -> float

(** Smallest representable value. *)
val min_value : t -> float

(** Largest representable value. *)
val max_value : t -> float

(** Representable range [(min, max)] — what seeds range propagation for
    declared signals (§4.1). *)
val range : t -> float * float

(** Same layout, different MSB behaviour. *)
val with_overflow : t -> Overflow_mode.t -> t

(** Same layout, different LSB behaviour. *)
val with_round : t -> Round_mode.t -> t

(** Same modes and name, different bit layout. *)
val with_fmt : t -> Qformat.t -> t

(** Move the MSB position, keeping LSB and modes. *)
val with_msb : t -> int -> t

(** Move the LSB position, keeping MSB and modes. *)
val with_lsb : t -> int -> t

(** Structural equality, name included. *)
val equal : t -> t -> bool

(** Same representation and behaviour, ignoring the name. *)
val same_behaviour : t -> t -> bool

(** ["name<n,f,sign,msbspec,lsbspec>"]. *)
val to_string : t -> string

(** Prints {!to_string}. *)
val pp : Format.formatter -> t -> unit

(** Parse ["name<n,f[,sign[,msbspec[,lsbspec]]]>"] (name and trailing
    fields optional, defaulting as in {!make}); inverse of
    {!to_string}.  [None] on malformed input. *)
val of_string : string -> t option
