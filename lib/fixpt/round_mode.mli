(** LSB-side rounding behaviour of a fixed-point type — the paper's
    [lsbspec] argument (§2.1).

    Retyping a signal from round to floor shifts the mean error by half
    a quantization step (§5.2); the LSB refinement rules check whether
    that bias is acceptable before recommending floor (which is the
    cheaper hardware). *)

type t =
  | Round  (** round to nearest, ties away from zero (C's [round]) *)
  | Floor  (** truncate towards −∞ (a plain bit-drop in two's complement) *)

val equal : t -> t -> bool

(** The paper's [lsbspec] keyword (["fl"], ["rd"], ["err"]). *)
val to_string : t -> string

(** Parses ["rd"]/["round"], ["fl"]/["floor"]. *)
val of_string : string -> t option

(** Prints {!to_string}. *)
val pp : Format.formatter -> t -> unit

(** Expected mean quantization error at step [step] under the uniform
    input model: [0] for round, [-step/2] for floor. *)
val expected_bias : t -> step:float -> float

(** Hardware-cost ordering: floor is cheaper than round. *)
val is_cheaper_than : t -> t -> bool
