(** Positional bookkeeping for fixed-point formats.

    A format is [n] total bits of which [f] are fractional, with a
    signedness.  Following the paper (§2.1), bit positions are absolute
    weights with respect to the binary point: the LSB position is [-f]
    (step [2^(-f)]) and the MSB position is [n - f - 1] (the sign-bit
    weight for two's complement).  All position/width conversions in the
    library go through this module. *)

type t

(** Structural equality. *)
val equal : t -> t -> bool

(** [make ~n ~f sign] — [n] total bits ([>= 1], or
    [Invalid_argument]), [f] fractional bits (any integer: negative [f]
    scales upward, [f > n] gives a pure fraction). *)
val make : n:int -> f:int -> Sign_mode.t -> t

(** Total bits. *)
val n : t -> int

(** Fractional bits. *)
val f : t -> int

(** Two's complement or unsigned. *)
val sign : t -> Sign_mode.t

(** LSB weight [-f]. *)
val lsb_pos : t -> int

(** MSB weight [n - f - 1]. *)
val msb_pos : t -> int

(** The format spanning bit weights [msb] down to [lsb] inclusive.
    Raises [Invalid_argument] if [msb < lsb]. *)
val of_positions : msb:int -> lsb:int -> Sign_mode.t -> t

(** Quantization step [2^lsb_pos]. *)
val step : t -> float

(** Largest representable value ([2^msb - step] for tc). *)
val max_value : t -> float

(** Smallest representable value ([-2^msb] for tc, [0] for us). *)
val min_value : t -> float

(** Number of representable codes, [2^n], as a float. *)
val cardinal : t -> float

(** Is the float exactly representable (in range, on the grid)? *)
val contains : t -> float -> bool

(** [v] lies exactly on the format's grid and inside its range. *)
val is_exact : t -> float -> bool

(** The paper's [F(vmin, vmax)] (§5.1): minimum MSB position whose range
    covers [[vmin, vmax]] — [-2^m <= v < 2^m] for tc, [0 <= v < 2^(m+1)]
    for us.  Computed exactly (no float logarithms).  [None] for
    infinite bounds; [Invalid_argument] on NaN, an empty range, or a
    negative bound with an unsigned sign. *)
val required_msb : Sign_mode.t -> vmin:float -> vmax:float -> int option

(** Smallest MSB position covering one value (see {!required_msb});
    [min_int] for [0.]. *)
val required_msb_of_value : Sign_mode.t -> float -> int

(** Grow the integer part (keeping the LSB position) until the range
    fits; [None] if the range is unbounded. *)
val widen_for_range : t -> vmin:float -> vmax:float -> t option

(** ["<n,f,sign>"], e.g. ["<7,5,tc>"]. *)
val to_string : t -> string

(** Prints [<n,f,sign>]. *)
val pp : Format.formatter -> t -> unit
