(** MSB-side overflow behaviour of a fixed-point type — the paper's
    [msbspec] argument (§2.1): wrap-around, saturation, or error
    reporting during refinement. *)

type t =
  | Wrap  (** modular two's-complement wrap-around (cheapest hardware) *)
  | Saturate  (** clamp to the representable extremes *)
  | Error
      (** report an overflow event during simulation; the value wraps so
          simulation can continue deterministically *)

val equal : t -> t -> bool

(** The paper's [msbspec] keyword (["wr"], ["sat"], ["err"]). *)
val to_string : t -> string

(** Parses ["wrap"]/["wr"], ["sat"]/["saturate"], ["err"]/["error"]. *)
val of_string : string -> t option

(** Prints {!to_string}. *)
val pp : Format.formatter -> t -> unit

(** [true] only for {!Saturate}.  Saturated signals additionally report
    guard-range boundaries in the refinement reports (§5.1). *)
val is_saturating : t -> bool
