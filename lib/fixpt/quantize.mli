(** Quantization of ideal (float) values through a {!Dtype.t} — the cast
    the design environment performs on every signal assignment (§2.2):
    LSB rounding first, then MSB overflow handling.

    Performed on an exact [int64] integer grid whenever the scaled value
    fits; astronomically large values (range-propagation explosions)
    take a float fallback with the same wrap/saturate behaviour.

    Because this cast runs once per signal assignment it is the hottest
    operation of the simulation engine: all per-type constants are
    precomputed into a {!compiled} record ({!compile} / the memoizing
    {!of_dtype}) and {!exec} performs the cast with no repeated
    [2.0 ** lsb] evaluation or bound derivation. *)

type overflow_event = {
  raw : float;  (** value after rounding, before overflow handling *)
  direction : [ `Above | `Below ];
}

type outcome = {
  value : float;  (** the representable result *)
  rounding_error : float;  (** [value_after_rounding - input] *)
  overflow : overflow_event option;
}

(** Integer code range [(lo, hi)] of a format.  Two's-complement formats
    are exact up to n = 64 (int64 wraparound lands the full-width bounds
    on [Int64.min_int]/[max_int]); unsigned formats are limited to
    n <= 63 — an unsigned 64-bit code does not fit an [int64]. *)
val code_bounds : Qformat.t -> int64 * int64

(** Two's-complement / modular wraparound of an out-of-range code into
    the format's code window (sign-extension of the low [n] bits for tc,
    masking for unsigned) — valid for the full-width n = 63 and n = 64
    tc cases.  n = 64 unsigned passes through unchanged (documented
    limitation; the float fallback covers those magnitudes). *)
val wrap_code : Qformat.t -> int64 -> int64

(** The compiled quantizer: every per-type constant of the cast,
    computed once and reused per assignment. *)
type compiled = private {
  cdt : Dtype.t;
  step : float;  (** [2 ^ lsb_pos] *)
  lo : int64;  (** smallest integer code *)
  hi : int64;  (** largest integer code *)
  flo : float;  (** [Int64.to_float lo] (float-fallback bound) *)
  fhi : float;
  min_v : float;  (** representable range, [Dtype.range] *)
  max_v : float;
  round_nearest : bool;  (** Round vs Floor *)
  overflow : Overflow_mode.t;
  saturating : bool;
  error_mode : bool;  (** overflow mode is [Error] *)
  int64_path : bool;  (** wordlength fits the exact int64 grid (n <= 62) *)
}

(** Build a compiled quantizer (no memoization). *)
val compile : Dtype.t -> compiled

(** Memoized {!compile} — one-shot callers share the precomputation. *)
val of_dtype : Dtype.t -> compiled

(** The dtype a compiled quantizer was built from. *)
val dtype_of : compiled -> Dtype.t

(** Scratch cell for {!exec_into}: all-float (flat representation) so
    the hot path stores results without boxing.  [flag] is 0 for no
    overflow, positive for [`Above], negative for [`Below]; [raw] (the
    pre-overflow value) and [rerr] (the rounding error) are meaningful
    right after an [exec_into] call. *)
type scratch = {
  mutable flag : float;
  mutable raw : float;
  mutable rerr : float;
}

(** Fresh reusable scratch cell for {!quantize_into}. *)
val create_scratch : unit -> scratch

(** Allocation-free per-assignment cast: returns the representable
    value, reports overflow/rounding through the scratch.  Same contract
    as {!exec} otherwise. *)
val exec_into : compiled -> float -> scratch -> float

(** The per-assignment cast.  NaN raises [Invalid_argument]; infinities
    saturate/wrap and report an overflow event. *)
val exec : compiled -> float -> outcome

(** Exact int64-grid overflow handling of a rounded scaled value
    (exposed for the path-agreement tests): returns the representable
    value and the overflow event, if any. *)
val apply_int64 : compiled -> float -> float * overflow_event option

(** Float-fallback overflow handling (same contract as {!apply_int64}). *)
val apply_float : compiled -> float -> float * overflow_event option

(** [quantize dtype v] — one-shot cast: [exec (of_dtype dtype) v]. *)
val quantize : Dtype.t -> float -> outcome

(** Just the representable value (the paper's explicit [cast]). *)
val cast : Dtype.t -> float -> float

(** Total quantization error [cast dt v -. v]. *)
val error : Dtype.t -> float -> float

(** Uniform-model error parameters [(step, mean_bias, variance)]:
    step [q], bias of the rounding mode, variance [q²/12].  Used by the
    analytical noise propagation. *)
val noise_model : Dtype.t -> float * float * float
