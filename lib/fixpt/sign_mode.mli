(** Signedness of a fixed-point representation — the paper's [vtype]
    constructor argument (§2.1). *)

type t =
  | Tc  (** two's complement *)
  | Us  (** unsigned *)

val equal : t -> t -> bool

(** ["tc"] (two's complement) or ["us"] (unsigned). *)
val to_string : t -> string

(** Parses ["tc"] / ["us"]; [None] otherwise. *)
val of_string : string -> t option

(** Prints {!to_string}. *)
val pp : Format.formatter -> t -> unit

(** [true] for two's complement. *)
val is_signed : t -> bool
