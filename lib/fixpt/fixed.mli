(** Bit-true fixed-point values: an [int64] mantissa with an
    interpretation format ([value = mant · 2^lsb_pos fmt]).

    The float-based simulation (quantize-on-assign, §2.2) is exact for
    wordlengths below the double mantissa; this module is the ground
    truth that claim is tested against, and the value representation the
    VHDL back end reasons with.  Arithmetic follows hardware semantics:
    results get the full-precision derived format; {!resize} is the
    explicit rounding/overflow step. *)

type t

(** The value's interpretation format. *)
val fmt : t -> Qformat.t

(** The raw mantissa. *)
val mant : t -> int64

(** Raises [Invalid_argument] if the mantissa does not fit the format. *)
val create : mant:int64 -> fmt:Qformat.t -> t

(** Zero in the given format. *)
val zero : Qformat.t -> t

(** Exact for any format below the double mantissa. *)
val to_float : t -> float

(** Quantize a float through a dtype; returns the bit-true value and the
    quantization outcome. *)
val of_float : Dtype.t -> float -> t * Quantize.outcome

(** Same mantissa and same format. *)
val equal : t -> t -> bool

(** Exact addition in the full-precision derived format (one growth bit,
    finest LSB).  Raises [Invalid_argument] beyond 62 bits. *)
val add : t -> t -> t

(** Exact subtraction; see {!add}. *)
val sub : t -> t -> t

(** Exact negation in the one-growth-bit derived format. *)
val neg : t -> t

(** Exact product: widths add, LSB positions add. *)
val mul : t -> t -> t

(** Re-quantize into a dtype — the hardware register-write step. *)
val resize : Dtype.t -> t -> t * Quantize.outcome

(** Numeric order, across formats. *)
val compare_value : t -> t -> int

(** Two's-complement bit pattern, LSB first. *)
val bits : t -> bool list

(** Inverse of {!bits} (sign-extending for two's complement).  Raises
    [Invalid_argument] on a length mismatch. *)
val of_bits : Qformat.t -> bool list -> t

(** Decimal value plus format, for reports. *)
val to_string : t -> string

(** Prints {!to_string}. *)
val pp : Format.formatter -> t -> unit
