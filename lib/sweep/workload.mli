(** Sweep workloads — self-contained designs a sweep explores.

    A workload is a factory of private simulation {!instance}s (one per
    worker domain), a probe signal, and the {!Candidate.spec} list the
    generators assign wordlengths to.  Each instance carries a baseline
    {!Sim.Env.snapshot} taken at construction; restoring it before
    every candidate makes evaluations start from an identical state —
    the foundation of the sweep's determinism guarantee. *)

type instance = {
  env : Sim.Env.t;
  design : Refine.Flow.design;
  baseline : Sim.Env.snapshot;  (** configuration right after build *)
  set_seed : int -> unit;
      (** stimulus seed for the next [design.reset]/[design.run] *)
  compiled : Refine.Eval.compiled_eval option;
      (** compiled-executor support: when present, the pool evaluates
          candidates with {!Refine.Eval.evaluate_compiled} (identical
          metrics, ~an order of magnitude faster); [None] — or a
          [~counters:true] sweep — keeps the clock-true interpreter.
          The fault wrapper ({!Fault.Inject.workload}) strips it: its
          injector arms around [design.run], which the compiled path
          does not execute. *)
}

type t = {
  name : string;
  probe : string;  (** the signal SQNR/error metrics are read from *)
  specs : Candidate.spec list;  (** the signals the sweep retypes *)
  make_instance : unit -> instance;
      (** fresh private instance sharing no mutable state with others *)
}

(** A 12-signal direct-form FIR ([x], delay line [d[0..4]], accumulator
    chain [v[1..5]], [out]) over [n] cycles (default 512) of seeded
    uniform stimulus; probe [out]. *)
val fir : ?n:int -> unit -> t

(** The closed ML-TED PAM-4 synchronizer over [n_symbols] (default
    160) drifting-tau symbols per candidate; probe [out].  Always
    interpreter-evaluated ([compiled = None]): the loop's strobe/hold
    control flow is data-dependent, so a frozen one-cycle extraction is
    not clock-true for it. *)
val sync : ?n_symbols:int -> unit -> t

(** Every built-in workload (fresh builders, default sizes). *)
val all : unit -> t list

(** Look a built-in workload up by {!t.name}. *)
val find : string -> t option
