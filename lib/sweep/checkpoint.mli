(** Crash-safe wave journal — checkpoint/resume for {!Pool} sweeps.

    A checkpoint records every {e completed} wave of a sweep to its own
    file under [dir/key/], written atomically and durably (temp file +
    [fsync] + rename + directory [fsync]) so a [SIGKILL] — or a power
    cut — at any instant leaves either the old journal or the new one,
    never a torn record.  On resume, {!Pool.run} asks {!lookup} before
    evaluating each wave: a journaled wave whose candidate list matches
    exactly is replayed (its metrics decode bit-identically, via the
    same [%h] + {!Stats.Running.raw} technique as {!Serve.Codec}), so
    the generator's decisions — and therefore the final report — are
    byte-identical to an uninterrupted run at any [jobs].  The chaos
    gate ({!Oracle.Chaos_check}) SIGKILLs real sweeps mid-wave to
    enforce this.

    Quarantined candidates journal too (printed error + attempt count),
    so a resumed partial report keeps its failure list intact.

    Decoding is strict: a damaged or truncated wave file is treated as
    "not journaled" and the wave is simply re-evaluated — corruption
    costs time, never correctness.  Candidate mismatch (the sweep was
    restarted with different parameters under the same key, or the
    journal belongs to an older generator) is likewise a clean miss. *)

(** One wave's worth of evaluated candidates, exactly as {!Pool}
    produced them: [Ok metrics], or [Error (printed_exception,
    attempts)] for a quarantined candidate. *)
type outcome = (Candidate.t * (Refine.Eval.metrics, string * int) result) list

type t

(** [sweep_key ~workload ~strategy ~context params] — stable hex digest
    identifying a sweep configuration; used as the journal subdirectory
    name so unrelated sweeps sharing one [--checkpoint] directory never
    collide.  [context] should name the evaluator version (and fault
    plan, if any); [params] is an ordered association list of the
    remaining knobs (f range, seeds, budget, …). *)
val sweep_key :
  workload:string ->
  strategy:string ->
  context:string ->
  (string * string) list ->
  string

(** [create ~dir ~key ()] — open the journal at [dir/key/], creating
    directories as needed.  With [resume:true] (default [false]) every
    well-formed wave file already present is loaded for replay; without
    it, stale wave files under this key are cleared so the run starts
    fresh.  Raises [Invalid_argument] if [key] is not a safe file
    name (the digests {!sweep_key} produces always are). *)
val create : ?resume:bool -> dir:string -> key:string -> unit -> t

(** The journal's keyed subdirectory ([dir/key]). *)
val dir : t -> string

(** Number of waves currently journaled (loaded + recorded). *)
val waves : t -> int

(** [(waves, candidates)] replayed by {!lookup} so far — what resume
    actually skipped. *)
val replayed : t -> int * int

(** [lookup t ~wave candidates] — the journaled outcomes for [wave], if
    a record exists {e and} its candidate list equals [candidates]
    exactly; [None] means the caller must evaluate (and should
    {!record} the result). *)
val lookup : t -> wave:int -> Candidate.t list -> outcome option

(** [record t ~wave outcomes] — durably journal a completed wave
    (atomic replace of any previous record for [wave]).  Raises
    [Invalid_argument] on counter-carrying metrics, which cannot
    round-trip ({!Pool.run} rejects the combination up front). *)
val record : t -> wave:int -> outcome -> unit
