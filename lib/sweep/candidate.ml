(** Candidate points of a wordlength sweep.

    A candidate is one concrete hypothesis of the refinement search: a
    per-signal [(n, f)] wordlength assignment plus the stimulus seed to
    simulate it under.  Candidates carry a dense [id] in generation
    order — the sweep report and all statistics merges are ordered by
    it, which is what makes a parallel sweep's output independent of
    worker scheduling. *)

(** One signal subject to exploration.  [int_bits] is the non-fractional
    part of the wordlength (sign bit included), fixed by the designer's
    range knowledge; the sweep varies only the fractional part, so
    [n = int_bits + f]. *)
type spec = { signal : string; int_bits : int }

(** One signal's hypothesized wordlength. *)
type assign = { signal : string; n : int; f : int }

type t = {
  id : int;  (** dense generation-order index; the report sort key *)
  assigns : assign list;  (** per-signal wordlengths, spec order *)
  stim_seed : int;  (** stimulus seed this candidate is simulated under *)
  uniform_f : int option;
      (** [Some f] when every assign shares fractional position [f]
          (the uniform generators); lets adaptive strategies recover
          their search coordinate without parsing assigns *)
}

(** Uniform-fractional candidate: every spec gets [n = int_bits + f]. *)
let of_uniform ~id ~specs ~f ~stim_seed =
  {
    id;
    assigns =
      List.map
        (fun (s : spec) -> { signal = s.signal; n = s.int_bits + f; f })
        specs;
    stim_seed;
    uniform_f = Some f;
  }

(* Wordlength exploration wants graceful degradation at the range edge
   (saturate) and unbiased precision measurement (round) — wrap/floor
   artifacts would corrupt the SQNR-vs-bits trade-off being mapped. *)
let dtype_of_assign a =
  Fixpt.Dtype.make a.signal ~n:a.n ~f:a.f
    ~overflow:Fixpt.Overflow_mode.Saturate ~round:Fixpt.Round_mode.Round ()

(** The candidate as a {!Refine.Eval.apply_assigns}-ready list. *)
let to_dtypes t =
  List.map (fun a -> (a.signal, dtype_of_assign a)) t.assigns

(** Σ n over the candidate's assigns (its hardware cost). *)
let total_bits t = List.fold_left (fun acc a -> acc + a.n) 0 t.assigns

let pp ppf t =
  Format.fprintf ppf "#%d seed=%d" t.id t.stim_seed;
  match t.uniform_f with
  | Some f -> Format.fprintf ppf " f=%d (%d signals)" f (List.length t.assigns)
  | None ->
      Format.fprintf ppf " [%s]"
        (String.concat "; "
           (List.map
              (fun a -> Printf.sprintf "%s<%d,%d>" a.signal a.n a.f)
              t.assigns))
