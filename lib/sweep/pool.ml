(** The parallel evaluation pool — wordlength exploration across
    domains (OCaml 5 [Domain], no external dependency).

    The pool runs the generator's wave protocol: each wave's candidates
    are independent, so they are distributed over [jobs] worker domains
    pulling indices from an atomic counter.  Worker [i] owns a private
    workload instance, created lazily inside its first domain and
    reused across waves — domains are joined between waves, so the
    hand-off is race-free by happens-before.

    Determinism: a candidate's metrics are a pure function of
    (baseline snapshot, candidate), results land in a slot indexed by
    wave position, and the report folds them in candidate-id order —
    so the output is byte-identical for any [jobs], which the oracle's
    sweep gate checks. *)

type progress = { wave : int; evaluated : int; total_so_far : int }

(* Restore the baseline, point the stimulus at the candidate's seed,
   and evaluate — the only path by which candidates touch an env.
   [tid] is the worker-domain lane of the optional wall-clock span. *)
let eval_candidate ~counters ~tid (workload : Workload.t)
    (inst : Workload.instance) (c : Candidate.t) =
  let spanned = Trace.Spans.enabled () in
  let t0 = if spanned then Trace.Spans.now () else 0.0 in
  Sim.Env.restore_into inst.baseline inst.env;
  inst.set_seed c.Candidate.stim_seed;
  let metrics =
    Refine.Eval.evaluate ~counters
      ~assigns:(Candidate.to_dtypes c)
      ~probe:workload.Workload.probe inst.Workload.design
  in
  if spanned then
    Trace.Spans.record ~cat:"sweep" ~tid
      ~name:(Printf.sprintf "candidate %d" c.Candidate.id)
      ~args:
        [
          ("seed", string_of_int c.Candidate.stim_seed);
          ("total_bits", string_of_int (Candidate.total_bits c));
        ]
      ~t0 ~t1:(Trace.Spans.now ()) ();
  (c, metrics)

let instance_of (workload : Workload.t) instances i =
  match instances.(i) with
  | Some inst -> inst
  | None ->
      let inst = workload.Workload.make_instance () in
      instances.(i) <- Some inst;
      inst

(* One wave, [nw] domains pulling from a shared atomic cursor; results
   land by wave index so completion order is irrelevant. *)
let eval_wave_parallel workload instances ~jobs ~counters wave_arr =
  let len = Array.length wave_arr in
  let results = Array.make len None in
  let cursor = Atomic.make 0 in
  let worker wi () =
    let inst = instance_of workload instances wi in
    let rec pull () =
      let k = Atomic.fetch_and_add cursor 1 in
      if k < len then begin
        results.(k) <-
          Some (eval_candidate ~counters ~tid:wi workload inst wave_arr.(k));
        pull ()
      end
    in
    pull ()
  in
  let nw = min jobs len in
  let domains = Array.init nw (fun wi -> Domain.spawn (worker wi)) in
  Array.iter Domain.join domains;
  Array.to_list
    (Array.map
       (function
         | Some r -> r
         | None -> assert false (* every slot below [len] was claimed *))
       results)

let eval_wave workload instances ~jobs ~counters wave =
  match wave with
  | [] -> []
  | wave when jobs <= 1 ->
      let inst = instance_of workload instances 0 in
      List.map (eval_candidate ~counters ~tid:0 workload inst) wave
  | wave ->
      eval_wave_parallel workload instances ~jobs ~counters
        (Array.of_list wave)

let run ?(jobs = 1) ?budget ?on_wave ?(counters = false) ~workload ~generator
    () =
  if jobs < 1 then invalid_arg "Sweep.Pool.run: jobs < 1";
  (match budget with
  | Some b when b < 1 -> invalid_arg "Sweep.Pool.run: budget < 1"
  | _ -> ());
  let instances = Array.make jobs None in
  let remaining = ref budget in
  let all = ref [] in
  let wave_no = ref 0 in
  let rec loop prev =
    let wave = Generator.next generator prev in
    (* budget is a candidate count: truncate the wave, never exceed *)
    let wave =
      match !remaining with
      | None -> wave
      | Some r ->
          let take = List.filteri (fun i _ -> i < r) wave in
          remaining := Some (r - List.length take);
          take
    in
    match wave with
    | [] -> ()
    | wave ->
        incr wave_no;
        let results = eval_wave workload instances ~jobs ~counters wave in
        all := List.rev_append results !all;
        (match on_wave with
        | Some f ->
            f
              {
                wave = !wave_no;
                evaluated = List.length results;
                total_so_far = List.length !all;
              }
        | None -> ());
        loop results
  in
  loop [];
  Report.make ~workload:workload.Workload.name
    ~strategy:(Generator.name generator) ~probe:workload.Workload.probe
    ~conclusion:(Generator.conclusion generator)
    !all
