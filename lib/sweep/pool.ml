(** The parallel evaluation pool — wordlength exploration across
    domains (OCaml 5 [Domain], no external dependency).

    The pool runs the generator's wave protocol: each wave's candidates
    are independent, so they are distributed over [jobs] worker domains
    pulling indices from an atomic counter.  Worker [i] owns a private
    workload instance, created lazily inside its first domain and
    reused across waves — domains are joined between waves, so the
    hand-off is race-free by happens-before.

    Determinism: a candidate's metrics are a pure function of
    (baseline snapshot, candidate), results land in a slot indexed by
    wave position, and the report folds them in candidate-id order —
    so the output is byte-identical for any [jobs], which the oracle's
    sweep gate checks. *)

type progress = { wave : int; evaluated : int; total_so_far : int }

(** A worker domain died outside the per-candidate containment (e.g.
    instance construction failed).  Raised only after {e every} domain
    of the wave has been joined, so no domain is left running and no
    result slot is silently unclaimed. *)
exception Worker_failure of { worker : int; candidate : int; exn : exn }

let () =
  Printexc.register_printer (function
    | Worker_failure { worker; candidate; exn } ->
        Some
          (Printf.sprintf
             "Sweep.Pool.Worker_failure: worker %d died on candidate %d: %s"
             worker candidate (Printexc.to_string exn))
    | _ -> None)

(* Restore the baseline, point the stimulus at the candidate's seed,
   and evaluate — the only path by which candidates touch an env.
   [tid] is the worker-domain lane of the optional wall-clock span. *)
let eval_candidate ?cache ~counters ~tid (workload : Workload.t)
    (inst : Workload.instance) (c : Candidate.t) =
  let spanned = Trace.Spans.enabled () in
  let t0 = if spanned then Trace.Spans.now () else 0.0 in
  Sim.Env.restore_into inst.baseline inst.env;
  inst.set_seed c.Candidate.stim_seed;
  let metrics =
    (* compiled fast path when the workload supports it; a counter
       sweep stays interpreted — counters observe env assignment events
       the compiled run does not generate *)
    match inst.Workload.compiled with
    | Some ce when not counters ->
        Refine.Eval.evaluate_compiled
          ~assigns:(Candidate.to_dtypes c)
          ~probe:workload.Workload.probe ?cache ~seed:c.Candidate.stim_seed
          ce inst.Workload.design
    | _ ->
        Refine.Eval.evaluate ~counters
          ~assigns:(Candidate.to_dtypes c)
          ~probe:workload.Workload.probe inst.Workload.design
  in
  if spanned then
    Trace.Spans.record ~cat:"sweep" ~tid
      ~name:(Printf.sprintf "candidate %d" c.Candidate.id)
      ~args:
        [
          ("seed", string_of_int c.Candidate.stim_seed);
          ("total_bits", string_of_int (Candidate.total_bits c));
        ]
      ~t0 ~t1:(Trace.Spans.now ()) ();
  (c, metrics)

let instance_of (workload : Workload.t) instances i =
  match instances.(i) with
  | Some inst -> inst
  | None ->
      let inst = workload.Workload.make_instance () in
      instances.(i) <- Some inst;
      inst

(* Per-candidate containment: one evaluation attempt, retried once on a
   {e fresh} instance (the first failure may have corrupted the
   worker's private env in ways the baseline restore cannot undo — the
   replacement also protects every later candidate on this worker).  A
   persistent failure is quarantined as an [Error] carrying the printed
   exception and the attempt count — a pure function of (baseline,
   candidate), so the quarantine list is identical for any [jobs]. *)
let eval_candidate_contained ?cache ~counters ~tid (workload : Workload.t)
    instances wi (c : Candidate.t) =
  let inst = instance_of workload instances wi in
  match eval_candidate ?cache ~counters ~tid workload inst c with
  | (_, m) -> (c, Ok m)
  | exception _first ->
      let fresh = workload.Workload.make_instance () in
      instances.(wi) <- Some fresh;
      (match eval_candidate ?cache ~counters ~tid workload fresh c with
      | (_, m) -> (c, Ok m)
      | exception exn2 -> (c, Error (Printexc.to_string exn2, 2)))

(* One wave, [nw] domains pulling from a shared atomic cursor; results
   land by wave index so completion order is irrelevant.  A domain that
   dies outside the per-candidate containment parks its exception (and
   the candidate id it was on); every domain is joined before anything
   re-raises — no abandoned domains, no unclaimed slots. *)
let eval_wave_parallel ?cache workload instances ~jobs ~counters wave_arr =
  let len = Array.length wave_arr in
  let results = Array.make len None in
  let cursor = Atomic.make 0 in
  let nw = min jobs len in
  let worker_err = Array.make nw None in
  let worker wi () =
    let rec pull () =
      let k = Atomic.fetch_and_add cursor 1 in
      if k < len then begin
        (try
           results.(k) <-
             Some
               (eval_candidate_contained ?cache ~counters ~tid:wi workload
                  instances wi wave_arr.(k))
         with exn ->
           worker_err.(wi) <- Some (exn, wave_arr.(k).Candidate.id);
           raise Exit);
        pull ()
      end
    in
    try pull () with Exit -> ()
  in
  let domains = Array.init nw (fun wi -> Domain.spawn (worker wi)) in
  (* join ALL domains first: re-raising at the first failed join would
     abandon running domains and leave slots unclaimed *)
  Array.iter Domain.join domains;
  Array.iteri
    (fun wi err ->
      match err with
      | Some (exn, candidate) ->
          raise (Worker_failure { worker = wi; candidate; exn })
      | None -> ())
    worker_err;
  Array.to_list
    (Array.map
       (function
         | Some r -> r
         | None -> assert false (* every slot below [len] was claimed *))
       results)

let eval_wave ?cache workload instances ~jobs ~counters wave =
  match wave with
  | [] -> []
  | wave when jobs <= 1 ->
      List.map
        (eval_candidate_contained ?cache ~counters ~tid:0 workload instances
           0)
        wave
  | wave ->
      eval_wave_parallel ?cache workload instances ~jobs ~counters
        (Array.of_list wave)

let run ?(jobs = 1) ?budget ?cache ?checkpoint ?on_wave ?(counters = false)
    ~workload ~generator () =
  if jobs < 1 then invalid_arg "Sweep.Pool.run: jobs < 1";
  (match budget with
  | Some b when b < 1 -> invalid_arg "Sweep.Pool.run: budget < 1"
  | _ -> ());
  if counters && checkpoint <> None then
    invalid_arg
      "Sweep.Pool.run: counter-carrying sweeps cannot be checkpointed";
  let instances = Array.make jobs None in
  let remaining = ref budget in
  let all = ref [] in
  let failures = ref [] in
  let wave_no = ref 0 in
  let rec loop prev =
    let wave = Generator.next generator prev in
    (* budget is a candidate count: truncate the wave, never exceed *)
    let wave =
      match !remaining with
      | None -> wave
      | Some r ->
          let take = List.filteri (fun i _ -> i < r) wave in
          remaining := Some (r - List.length take);
          take
    in
    match wave with
    | [] -> ()
    | wave ->
        incr wave_no;
        (* a journaled wave replays instead of re-evaluating; a fresh
           one is evaluated then durably journaled before the sweep
           advances — so a kill mid-wave loses at most that wave *)
        let outcomes =
          match checkpoint with
          | None -> eval_wave ?cache workload instances ~jobs ~counters wave
          | Some cp -> (
              match Checkpoint.lookup cp ~wave:!wave_no wave with
              | Some outcomes -> outcomes
              | None ->
                  let outcomes =
                    eval_wave ?cache workload instances ~jobs ~counters wave
                  in
                  Checkpoint.record cp ~wave:!wave_no outcomes;
                  outcomes)
        in
        (* quarantined candidates are kept out of the generator's view
           (it can only score metrics) but still count as evaluated *)
        let results, failed =
          List.partition_map
            (fun (c, r) ->
              match r with
              | Ok m -> Either.Left (c, m)
              | Error (error, attempts) ->
                  Either.Right
                    { Report.candidate = c; error; attempts })
            outcomes
        in
        all := List.rev_append results !all;
        failures := List.rev_append failed !failures;
        (match on_wave with
        | Some f ->
            f
              {
                wave = !wave_no;
                evaluated = List.length outcomes;
                total_so_far =
                  List.length !all + List.length !failures;
              }
        | None -> ());
        loop results
  in
  loop [];
  Report.make ~workload:workload.Workload.name
    ~strategy:(Generator.name generator) ~probe:workload.Workload.probe
    ~conclusion:(Generator.conclusion generator) ~failures:!failures
    !all
