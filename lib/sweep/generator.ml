(** Pluggable candidate generators — the search strategies of the sweep
    engine.

    A generator is a wave protocol: {!next} receives the evaluated
    results of the wave it produced last time (initially [[]]) and
    returns the next batch of candidates, or [[]] when the search is
    finished.  All candidates of one wave are independent, so the pool
    evaluates a whole wave in parallel; adaptive strategies (bisection,
    Pareto refinement) place their data dependency {e between} waves.

    Generators are deterministic: candidate ids are assigned from a
    private counter in generation order, and every decision is a pure
    function of the (deterministic) evaluation results — so the stream
    of candidates is identical however many workers evaluate it. *)

type result = Candidate.t * Refine.Eval.metrics

type t = {
  name : string;  (** strategy name, echoed in the report *)
  next : result list -> Candidate.t list;
      (** feed the previous wave's results, get the next wave; [[]]
          terminates *)
  conclusion : unit -> (string * string) list;
      (** strategy verdict (key/value) once the search is done, e.g.
          the bisection's selected [f] *)
}

let name t = t.name
let next t results = t.next results
let conclusion t = t.conclusion ()

(* Worst (minimum) probe SQNR across a set of results — adaptive
   strategies judge an [f] by its least lucky stimulus seed.  A probe
   with no samples counts as -inf (failure). *)
let worst_sqnr results =
  List.fold_left
    (fun acc ((_ : Candidate.t), (m : Refine.Eval.metrics)) ->
      let s =
        match m.Refine.Eval.sqnr_db with
        | Some s -> s
        | None -> Float.neg_infinity
      in
      Float.min acc s)
    Float.infinity results

(* --- grid ---------------------------------------------------------------- *)

let grid ~specs ~f_min ~f_max ~seeds =
  if f_min > f_max then invalid_arg "Sweep.Generator.grid: f_min > f_max";
  if seeds = [] then invalid_arg "Sweep.Generator.grid: no stimulus seeds";
  let emitted = ref false in
  let next _results =
    if !emitted then []
    else begin
      emitted := true;
      let id = ref (-1) in
      List.concat_map
        (fun f ->
          List.map
            (fun stim_seed ->
              incr id;
              Candidate.of_uniform ~id:!id ~specs ~f ~stim_seed)
            seeds)
        (List.init (f_max - f_min + 1) (fun i -> f_min + i))
    end
  in
  { name = "grid"; next; conclusion = (fun () -> []) }

(* --- bisection on f ------------------------------------------------------ *)

(* Minimal uniform [f] whose worst-seed SQNR meets [target_db],
   assuming SQNR is monotone in f (true for a fixed int_bits budget:
   more fractional bits, less quantization noise).  Each wave evaluates
   one midpoint under every seed. *)
let bisect ~specs ~f_min ~f_max ~target_db ~seeds =
  if f_min > f_max then invalid_arg "Sweep.Generator.bisect: f_min > f_max";
  if seeds = [] then invalid_arg "Sweep.Generator.bisect: no stimulus seeds";
  let lo = ref f_min and hi = ref f_max in
  let id = ref (-1) in
  (* worst SQNR of the smallest feasible f evaluated so far, keyed by f *)
  let verdict = ref None in
  let state = ref `Searching in
  let wave_for f =
    List.map
      (fun stim_seed ->
        incr id;
        Candidate.of_uniform ~id:!id ~specs ~f ~stim_seed)
      seeds
  in
  let last_f results =
    match results with
    | ((c : Candidate.t), _) :: _ -> c.Candidate.uniform_f
    | [] -> None
  in
  let emit_next () =
    if !lo < !hi then wave_for ((!lo + !hi) / 2)
    else begin
      (* converged on [lo]; confirm it once if no midpoint was [lo] *)
      match !verdict with
      | Some (f, _) when f = !lo ->
          state := `Finished;
          []
      | _ ->
          state := `Confirming;
          wave_for !lo
    end
  in
  let next results =
    match !state with
    | `Finished -> []
    | `Confirming ->
        (match (last_f results, results) with
        | Some f, _ :: _ -> verdict := Some (f, worst_sqnr results)
        | _ -> ());
        state := `Finished;
        []
    | `Searching -> (
        match (last_f results, results) with
        | Some f, _ :: _ ->
            let w = worst_sqnr results in
            if w >= target_db then begin
              hi := f;
              verdict := Some (f, w)
            end
            else lo := min (f + 1) !hi;
            emit_next ()
        | _ -> emit_next ())
  in
  let conclusion () =
    [
      ("selected_f", string_of_int !lo);
      ( "meets_target",
        match !verdict with
        | Some (f, w) when f = !lo ->
            if w >= target_db then "true" else "false"
        | _ -> "unknown" );
      ("target_db", Printf.sprintf "%.17g" target_db);
    ]
  in
  { name = "bisect"; next; conclusion }

(* --- Pareto frontier refinement ------------------------------------------ *)

(* [a] dominates [b] when it is no more expensive and no less accurate,
   and strictly better on one axis. *)
let dominates (bits_a, sqnr_a) (bits_b, sqnr_b) =
  bits_a <= bits_b && sqnr_a >= sqnr_b
  && (bits_a < bits_b || sqnr_a > sqnr_b)

let sqnr_of (m : Refine.Eval.metrics) =
  match m.Refine.Eval.sqnr_db with
  | Some s -> s
  | None -> Float.neg_infinity

(** The Pareto-optimal subset of (total-bits, SQNR) points, preserving
    input order.  Shared with {!Report} so the frontier the adaptive
    generator refines and the frontier the report marks agree. *)
let pareto_front results =
  let keyed =
    List.map
      (fun ((c, m) as r) -> (r, (Candidate.total_bits c, sqnr_of m)))
      results
  in
  List.filter_map
    (fun (r, k) ->
      if List.exists (fun (_, k') -> k' <> k && dominates k' k) keyed then
        None
      else Some r)
    keyed

(* Two waves: a coarse uniform-f scan, then the immediate f-neighbours
   of the coarse frontier that the scan skipped.  The report's frontier
   marking then runs over everything evaluated. *)
let pareto ?(coarse = 4) ~specs ~f_min ~f_max ~seeds () =
  if f_min > f_max then invalid_arg "Sweep.Generator.pareto: f_min > f_max";
  if seeds = [] then invalid_arg "Sweep.Generator.pareto: no stimulus seeds";
  if coarse < 2 then invalid_arg "Sweep.Generator.pareto: coarse < 2";
  let id = ref (-1) in
  let phase = ref `Coarse in
  let evaluated_f = ref [] in
  let wave_for fs =
    List.concat_map
      (fun f ->
        evaluated_f := f :: !evaluated_f;
        List.map
          (fun stim_seed ->
            incr id;
            Candidate.of_uniform ~id:!id ~specs ~f ~stim_seed)
          seeds)
      fs
  in
  let next results =
    match !phase with
    | `Coarse ->
        phase := `Refine;
        let span = f_max - f_min in
        let points = min coarse (span + 1) in
        let fs =
          List.sort_uniq compare
            (List.init points (fun i ->
                 f_min + (i * span / max 1 (points - 1))))
        in
        wave_for fs
    | `Refine ->
        phase := `Done;
        let frontier = pareto_front results in
        let want =
          List.concat_map
            (fun ((c : Candidate.t), _) ->
              match c.Candidate.uniform_f with
              | Some f -> [ f - 1; f + 1 ]
              | None -> [])
            frontier
        in
        let fresh =
          List.sort_uniq compare
            (List.filter
               (fun f ->
                 f >= f_min && f <= f_max
                 && not (List.mem f !evaluated_f))
               want)
        in
        wave_for fresh
    | `Done -> []
  in
  { name = "pareto"; next; conclusion = (fun () -> []) }
