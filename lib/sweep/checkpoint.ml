(** Crash-safe wave journal for sweeps — see the .mli for the contract.

    One file per completed wave, [wave-%06d.wv] under [dir/key/],
    written atomically and durably (temp + [fsync] + rename + directory
    [fsync]).  A record stores the wave's candidates and their outcomes
    bit-exactly:

    {v
    fxwave1 <wave> <n-candidates>
    c <id> <stim-seed> <uniform-f|-> <n-assigns>
    a <n> <f> <signal>            (n-assigns lines)
    ok <sqnr|none> <bits> <ovf> <errmax>
    pv <none | raw floats>
    pe <none | raw floats>
        -- or, for a quarantined candidate --
    err <attempts> "<escaped message>"
    end
    v}

    Every float is a [%h] hex literal ([float_of_string] reverses it
    exactly) and the probe monitors travel through {!Stats.Running.raw}
    / {!Stats.Err_stats.raw}, the exact accumulator fields — the same
    technique {!Serve.Codec} uses (re-implemented here because [serve]
    depends on [sweep], not the reverse).  Decoding is strict: any
    deviation invalidates the whole wave file, which resume treats as
    "not journaled" and simply re-evaluates — corruption can cost time,
    never correctness. *)

type outcome = (Candidate.t * (Refine.Eval.metrics, string * int) result) list

type t = {
  dir : string;  (** the keyed subdirectory holding the wave files *)
  journaled : (int, outcome) Hashtbl.t;
  mutable replayed_waves : int;
  mutable replayed_candidates : int;
}

let magic = "fxwave1"
let dir t = t.dir
let waves t = Hashtbl.length t.journaled
let replayed t = (t.replayed_waves, t.replayed_candidates)

let key_is_file_safe k =
  k <> ""
  && String.for_all
       (function
         | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '-' | '_' | '.' -> true
         | _ -> false)
       k
  && k.[0] <> '.'

let sweep_key ~workload ~strategy ~context params =
  let buf = Buffer.create 128 in
  Buffer.add_string buf
    (Printf.sprintf "{\"workload\":%S,\"strategy\":%S,\"context\":%S" workload
       strategy context);
  List.iter
    (fun (k, v) -> Buffer.add_string buf (Printf.sprintf ",%S:%S" k v))
    params;
  Buffer.add_char buf '}';
  Digest.to_hex (Digest.string (Buffer.contents buf))

(* --- durable atomic writes --------------------------------------------- *)

let rec mkdir_p d =
  if not (Sys.file_exists d) then begin
    mkdir_p (Filename.dirname d);
    try Unix.mkdir d 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let fsync_dir d =
  match Unix.openfile d [ Unix.O_RDONLY ] 0 with
  | fd ->
      Fun.protect
        ~finally:(fun () -> Unix.close fd)
        (fun () -> try Unix.fsync fd with Unix.Unix_error _ -> ())
  | exception Unix.Unix_error _ -> ()

let write_atomic path content =
  let tmp = path ^ ".tmp" in
  let fd =
    Unix.openfile tmp [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o644
  in
  Fun.protect
    ~finally:(fun () -> Unix.close fd)
    (fun () ->
      let b = Bytes.unsafe_of_string content in
      let n = Bytes.length b in
      let written = ref 0 in
      while !written < n do
        written := !written + Unix.write fd b !written (n - !written)
      done;
      Unix.fsync fd);
  Sys.rename tmp path;
  fsync_dir (Filename.dirname path)

let wave_file wave = Printf.sprintf "wave-%06d.wv" wave
let wave_path t wave = Filename.concat t.dir (wave_file wave)

(* --- encoding ----------------------------------------------------------- *)

let flit = Printf.sprintf "%h"

let floats_line = function
  | None -> "none"
  | Some a -> String.concat " " (Array.to_list (Array.map flit a))

let render_candidate buf (c : Candidate.t) =
  Buffer.add_string buf
    (Printf.sprintf "c %d %d %s %d\n" c.Candidate.id c.Candidate.stim_seed
       (match c.Candidate.uniform_f with
       | Some f -> string_of_int f
       | None -> "-")
       (List.length c.Candidate.assigns));
  List.iter
    (fun (a : Candidate.assign) ->
      Buffer.add_string buf (Printf.sprintf "a %d %d %s\n" a.n a.f a.signal))
    c.Candidate.assigns

let render_metrics buf (m : Refine.Eval.metrics) =
  if m.Refine.Eval.counters <> None then
    invalid_arg
      "Sweep.Checkpoint: counter-carrying metrics are not journalable";
  Buffer.add_string buf
    (Printf.sprintf "ok %s %d %d %s\n"
       (match m.Refine.Eval.sqnr_db with None -> "none" | Some v -> flit v)
       m.Refine.Eval.total_bits m.Refine.Eval.overflow_count
       (flit m.Refine.Eval.probe_err_max));
  Buffer.add_string buf
    ("pv "
    ^ floats_line (Option.map Stats.Running.raw m.Refine.Eval.probe_values)
    ^ "\n");
  Buffer.add_string buf
    ("pe "
    ^ floats_line (Option.map Stats.Err_stats.raw m.Refine.Eval.probe_err)
    ^ "\n")

let render ~wave (outcomes : outcome) =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (Printf.sprintf "%s %d %d\n" magic wave (List.length outcomes));
  List.iter
    (fun (c, r) ->
      render_candidate buf c;
      match r with
      | Ok m -> render_metrics buf m
      | Error (msg, attempts) ->
          Buffer.add_string buf (Printf.sprintf "err %d %S\n" attempts msg))
    outcomes;
  Buffer.add_string buf "end\n";
  Buffer.contents buf

(* --- strict decoding ---------------------------------------------------- *)

let ( let* ) = Option.bind

let parse_floats s =
  if String.equal s "none" then Some None
  else
    let rec go acc = function
      | [] -> Some (Some (Array.of_list (List.rev acc)))
      | p :: rest -> (
          match float_of_string_opt p with
          | Some v -> go (v :: acc) rest
          | None -> None)
    in
    go [] (String.split_on_char ' ' s)

let field ~label line =
  let prefix = label ^ " " in
  let pl = String.length prefix in
  if String.length line > pl && String.equal (String.sub line 0 pl) prefix
  then Some (String.sub line pl (String.length line - pl))
  else None

let parse_assign line =
  match String.split_on_char ' ' line with
  | "a" :: n :: f :: (_ :: _ as rest) ->
      let* n = int_of_string_opt n in
      let* f = int_of_string_opt f in
      (* the signal name is everything after the third space, so a name
         containing spaces still round-trips *)
      Some { Candidate.signal = String.concat " " rest; n; f }
  | _ -> None

let parse_candidate lines =
  match lines with
  | head :: rest -> (
      match String.split_on_char ' ' head with
      | [ "c"; id; seed; uf; k ] ->
          let* id = int_of_string_opt id in
          let* stim_seed = int_of_string_opt seed in
          let* uniform_f =
            if String.equal uf "-" then Some None
            else
              match int_of_string_opt uf with
              | Some f -> Some (Some f)
              | None -> None
          in
          let* k = int_of_string_opt k in
          let* () = if k >= 0 then Some () else None in
          let rec take acc n ls =
            if n = 0 then Some (List.rev acc, ls)
            else
              match ls with
              | [] -> None
              | l :: ls ->
                  let* a = parse_assign l in
                  take (a :: acc) (n - 1) ls
          in
          let* assigns, rest = take [] k rest in
          Some ({ Candidate.id; assigns; stim_seed; uniform_f }, rest)
      | _ -> None)
  | [] -> None

let parse_metrics lines =
  match lines with
  | ok :: pv :: pe :: rest ->
      let* body = field ~label:"ok" ok in
      let* sqnr_db, total_bits, overflow_count, probe_err_max =
        match String.split_on_char ' ' body with
        | [ sqnr; bits; ovf; errmax ] ->
            let* sqnr_db =
              if String.equal sqnr "none" then Some None
              else
                match float_of_string_opt sqnr with
                | Some v -> Some (Some v)
                | None -> None
            in
            let* bits = int_of_string_opt bits in
            let* ovf = int_of_string_opt ovf in
            let* errmax = float_of_string_opt errmax in
            Some (sqnr_db, bits, ovf, errmax)
        | _ -> None
      in
      let* pv = field ~label:"pv" pv in
      let* pv = parse_floats pv in
      let* probe_values =
        match pv with
        | None -> Some None
        | Some a -> (
            match Stats.Running.of_raw a with
            | r -> Some (Some r)
            | exception Invalid_argument _ -> None)
      in
      let* pe = field ~label:"pe" pe in
      let* pe = parse_floats pe in
      let* probe_err =
        match pe with
        | None -> Some None
        | Some a -> (
            match Stats.Err_stats.of_raw a with
            | e -> Some (Some e)
            | exception Invalid_argument _ -> None)
      in
      Some
        ( {
            Refine.Eval.sqnr_db;
            total_bits;
            overflow_count;
            probe_err_max;
            probe_values;
            probe_err;
            counters = None;
          },
          rest )
  | _ -> None

let parse_error line =
  match
    Scanf.sscanf line "err %d %S%!" (fun attempts msg -> (msg, attempts))
  with
  | r -> Some r
  | exception (Scanf.Scan_failure _ | Failure _ | End_of_file) -> None

(* Whole-file parse; [None] on any deviation (missing [end] marker,
   trailing garbage, count mismatch, unparsable line). *)
let parse_record raw =
  let lines = String.split_on_char '\n' raw in
  match lines with
  | header :: rest -> (
      let* wave, count =
        match String.split_on_char ' ' header with
        | [ m; wave; count ] when String.equal m magic ->
            let* wave = int_of_string_opt wave in
            let* count = int_of_string_opt count in
            if wave >= 1 && count >= 0 then Some (wave, count) else None
        | _ -> None
      in
      let rec go acc n lines =
        if n = 0 then
          match lines with
          | [ "end"; "" ] -> Some (List.rev acc)
          | _ -> None
        else
          let* c, lines = parse_candidate lines in
          match lines with
          | l :: more when String.length l >= 3 && String.sub l 0 3 = "err"
            ->
              let* msg, attempts = parse_error l in
              go ((c, Error (msg, attempts)) :: acc) (n - 1) more
          | lines ->
              let* m, lines = parse_metrics lines in
              go ((c, Ok m) :: acc) (n - 1) lines
      in
      match go [] count rest with
      | Some outcomes -> Some (wave, outcomes)
      | None -> None)
  | [] -> None

(* --- lifecycle ----------------------------------------------------------- *)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let is_wave_file name =
  String.length name > 5
  && String.sub name 0 5 = "wave-"
  && Filename.check_suffix name ".wv"

let load t =
  let names =
    match Sys.readdir t.dir with
    | arr ->
        Array.sort compare arr;
        Array.to_list arr
    | exception Sys_error _ -> []
  in
  List.iter
    (fun name ->
      if is_wave_file name then
        match parse_record (read_file (Filename.concat t.dir name)) with
        | Some (wave, outcomes) -> Hashtbl.replace t.journaled wave outcomes
        | None | (exception Sys_error _) -> ())
    names

let clear_journal dir =
  (match Sys.readdir dir with
  | names ->
      Array.iter
        (fun name ->
          if is_wave_file name || Filename.check_suffix name ".tmp" then
            try Sys.remove (Filename.concat dir name) with Sys_error _ -> ())
        names
  | exception Sys_error _ -> ());
  fsync_dir dir

let create ?(resume = false) ~dir ~key () =
  if not (key_is_file_safe key) then
    invalid_arg "Sweep.Checkpoint.create: key is not a safe file name";
  let sub = Filename.concat dir key in
  mkdir_p sub;
  let t =
    {
      dir = sub;
      journaled = Hashtbl.create 16;
      replayed_waves = 0;
      replayed_candidates = 0;
    }
  in
  if resume then load t else clear_journal sub;
  t

(* --- the Pool-facing pair ------------------------------------------------ *)

let candidates_match journaled (live : Candidate.t list) =
  List.length journaled = List.length live
  && List.for_all2 (fun (c, _) c' -> c = c') journaled live

let lookup t ~wave candidates =
  match Hashtbl.find_opt t.journaled wave with
  | Some outcomes when candidates_match outcomes candidates ->
      t.replayed_waves <- t.replayed_waves + 1;
      t.replayed_candidates <- t.replayed_candidates + List.length outcomes;
      Some outcomes
  | Some _ | None -> None

let record t ~wave (outcomes : outcome) =
  write_atomic (wave_path t wave) (render ~wave outcomes);
  Hashtbl.replace t.journaled wave outcomes
