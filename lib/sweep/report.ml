(** Sweep reports — the deterministic output contract of the engine.

    A report is built from the full evaluated candidate list {e sorted
    by candidate id}, and every aggregate statistic is folded in that
    order with the commutative monitor merges ({!Stats.Running.merge},
    {!Stats.Err_stats.merge}, {!Interval.join}).  Because candidate
    evaluation itself is deterministic, the rendered report — JSON and
    human — is byte-identical whatever worker count or scheduling
    produced the entries.  The oracle's sweep-determinism gate holds
    [to_json] at [jobs=1] and [jobs=N] to exactly that standard.

    Wall-clock timing deliberately does {e not} appear here: callers
    that want it (CLI, bench) print it out-of-band. *)

type entry = {
  candidate : Candidate.t;
  metrics : Refine.Eval.metrics;
  pareto : bool;  (** on the evaluated set's (bits, SQNR) frontier *)
}

(** A quarantined candidate: evaluation failed persistently (it was
    retried on a fresh instance), and the sweep degraded to a partial
    report instead of aborting.  [error] is the printed exception — a
    pure function of (baseline, candidate), so the quarantine list
    renders identically for any worker count. *)
type failure = {
  candidate : Candidate.t;
  error : string;  (** printed exception of the last attempt *)
  attempts : int;  (** evaluation attempts before quarantine *)
}

type t = {
  workload : string;
  strategy : string;
  probe : string;
  entries : entry list;  (** ascending candidate id *)
  conclusion : (string * string) list;  (** the generator's verdict *)
  agg_values : Stats.Running.t;
      (** probe value monitors of every candidate, merged in id order *)
  agg_err : Stats.Err_stats.t;
      (** probe error monitors of every candidate, merged in id order *)
  agg_range : Interval.t;  (** join of observed probe ranges *)
  agg_overflows : int;  (** Σ overflow events across candidates *)
  agg_counters : Trace.Counters.t option;
      (** event counters of every candidate, merged in id order (only
          when the pool ran with [~counters:true]) *)
  failures : failure list;  (** quarantined candidates, ascending id *)
}

(* Total order on candidates for the quarantine list: id first, then
   stimulus seed, then the structural assignment list.  Sorting by id
   alone is only a total order when ids are unique — generators
   renumber per wave, but a driver stitching reports together (or a
   future multi-seed generator) can legitimately present duplicate
   ids, and the determinism contract must not depend on the incoming
   (scheduling-dependent) order of equal keys. *)
let candidate_key (c : Candidate.t) =
  ( c.Candidate.id,
    c.Candidate.stim_seed,
    List.map
      (fun (a : Candidate.assign) ->
        (a.Candidate.signal, a.Candidate.n, a.Candidate.f))
      c.Candidate.assigns )

let make ~workload ~strategy ~probe ~conclusion ?(failures = []) results =
  let failures =
    List.sort
      (fun (a : failure) b ->
        compare (candidate_key a.candidate) (candidate_key b.candidate))
      failures
  in
  let sorted =
    List.sort
      (fun ((a : Candidate.t), _) (b, _) ->
        compare a.Candidate.id b.Candidate.id)
      results
  in
  let front = Generator.pareto_front sorted in
  let on_front (c : Candidate.t) =
    List.exists
      (fun ((c' : Candidate.t), _) -> c'.Candidate.id = c.Candidate.id)
      front
  in
  let entries =
    List.map
      (fun (c, m) -> { candidate = c; metrics = m; pareto = on_front c })
      sorted
  in
  let agg_values, agg_err, agg_range, agg_overflows, agg_counters =
    List.fold_left
      (fun (v, e, r, o, cnt) { metrics = m; _ } ->
        let v =
          match m.Refine.Eval.probe_values with
          | Some pv -> Stats.Running.merge v pv
          | None -> v
        in
        let e =
          match m.Refine.Eval.probe_err with
          | Some pe -> Stats.Err_stats.merge e pe
          | None -> e
        in
        let r =
          match
            Option.bind m.Refine.Eval.probe_values Stats.Running.range
          with
          | Some (lo, hi) -> Interval.join r (Interval.make lo hi)
          | None -> r
        in
        let cnt =
          match (cnt, m.Refine.Eval.counters) with
          | acc, None -> acc
          | None, Some c -> Some (Trace.Counters.copy c)
          | Some acc, Some c -> Some (Trace.Counters.merge acc c)
        in
        (v, e, r, o + m.Refine.Eval.overflow_count, cnt))
      ( Stats.Running.create (),
        Stats.Err_stats.create (),
        Interval.empty,
        0,
        None )
      entries
  in
  {
    workload;
    strategy;
    probe;
    entries;
    conclusion;
    agg_values;
    agg_err;
    agg_range;
    agg_overflows;
    agg_counters;
    failures;
  }

(* --- JSON ---------------------------------------------------------------- *)

(* Shortest-exact float literal: round-trippable and byte-stable, so the
   determinism gate can compare reports as strings.  The rule lives in
   {!Trace.Json} — one canonical formatting across reports, counters
   and trace exports. *)
let js_float = Trace.Json.float_lit
let js_float_opt = Trace.Json.float_opt
let js_string = Trace.Json.string_lit

let js_running r =
  Printf.sprintf
    "{\"count\": %d, \"mean\": %s, \"min\": %s, \"max\": %s, \"sigma\": %s}"
    (Stats.Running.count r)
    (js_float (Stats.Running.mean r))
    (js_float (Stats.Running.min_value r))
    (js_float (Stats.Running.max_value r))
    (js_float (Stats.Running.stddev r))

let js_assign (a : Candidate.assign) =
  Printf.sprintf "{\"signal\": %s, \"n\": %d, \"f\": %d}"
    (js_string a.Candidate.signal) a.Candidate.n a.Candidate.f

let js_entry (e : entry) =
  let c = e.candidate and m = e.metrics in
  Printf.sprintf
    "    {\"id\": %d, \"stim_seed\": %d, \"total_bits\": %d, \"sqnr_db\": \
     %s, \"overflows\": %d, \"err_max\": %s, \"pareto\": %b, \"assigns\": \
     [%s]}"
    c.Candidate.id c.Candidate.stim_seed (Candidate.total_bits c)
    (js_float_opt m.Refine.Eval.sqnr_db)
    m.Refine.Eval.overflow_count
    (js_float m.Refine.Eval.probe_err_max)
    e.pareto
    (String.concat ", " (List.map js_assign c.Candidate.assigns))

let to_json t =
  let b = Buffer.create 4096 in
  Buffer.add_string b "{\n";
  Buffer.add_string b
    (Printf.sprintf "  \"workload\": %s,\n" (js_string t.workload));
  Buffer.add_string b
    (Printf.sprintf "  \"strategy\": %s,\n" (js_string t.strategy));
  Buffer.add_string b (Printf.sprintf "  \"probe\": %s,\n" (js_string t.probe));
  Buffer.add_string b
    (Printf.sprintf "  \"candidates\": %d,\n" (List.length t.entries));
  Buffer.add_string b "  \"entries\": [\n";
  Buffer.add_string b (String.concat ",\n" (List.map js_entry t.entries));
  Buffer.add_string b "\n  ],\n";
  Buffer.add_string b
    (Printf.sprintf "  \"failures\": [%s],\n"
       (String.concat ", "
          (List.map
             (fun (f : failure) ->
               Printf.sprintf
                 "{\"id\": %d, \"stim_seed\": %d, \"attempts\": %d, \
                  \"error\": %s}"
                 f.candidate.Candidate.id f.candidate.Candidate.stim_seed
                 f.attempts (js_string f.error))
             t.failures)));
  Buffer.add_string b
    (Printf.sprintf "  \"aggregate\": {\"probe_values\": %s, \"consumed\": \
                     %s, \"produced\": %s, \"range\": %s, \"overflows\": %d},\n"
       (js_running t.agg_values)
       (js_running (Stats.Err_stats.consumed t.agg_err))
       (js_running (Stats.Err_stats.produced t.agg_err))
       (match Interval.bounds t.agg_range with
       | Some (lo, hi) ->
           Printf.sprintf "[%s, %s]" (js_float lo) (js_float hi)
       | None -> "null")
       t.agg_overflows);
  Buffer.add_string b
    (Printf.sprintf "  \"conclusion\": {%s}\n"
       (String.concat ", "
          (List.map
             (fun (k, v) -> Printf.sprintf "%s: %s" (js_string k) (js_string v))
             t.conclusion)));
  Buffer.add_string b "}\n";
  Buffer.contents b

(** Flat counters JSON for a sweep that ran with [~counters:true]
    ([signals] is empty otherwise).  Leads with the sweep identity —
    but {e not} the job count or any timing — so the rendering is
    byte-identical for any [--jobs], which the oracle's trace gate
    compares for. *)
let counters_json t =
  let meta =
    [
      ("workload", js_string t.workload);
      ("strategy", js_string t.strategy);
      ("probe", js_string t.probe);
      ("candidates", string_of_int (List.length t.entries));
    ]
  in
  let counters =
    match t.agg_counters with
    | Some c -> c
    | None -> Trace.Counters.create ()
  in
  Trace.Counters.to_json ~meta counters

(* --- human --------------------------------------------------------------- *)

let pp ppf t =
  Format.fprintf ppf "sweep: workload %s, strategy %s, probe %s, %d candidates@."
    t.workload t.strategy t.probe (List.length t.entries);
  Format.fprintf ppf "%4s %6s %4s %6s %12s %6s %8s@." "id" "seed" "f"
    "bits" "SQNR(dB)" "ovf" "pareto";
  List.iter
    (fun (e : entry) ->
      let c = e.candidate in
      Format.fprintf ppf "%4d %6d %4s %6d %12s %6d %8s@." c.Candidate.id
        c.Candidate.stim_seed
        (match c.Candidate.uniform_f with
        | Some f -> string_of_int f
        | None -> "-")
        (Candidate.total_bits c)
        (match e.metrics.Refine.Eval.sqnr_db with
        | Some s when s = Float.infinity -> "inf"
        | Some s -> Printf.sprintf "%.2f" s
        | None -> "-")
        e.metrics.Refine.Eval.overflow_count
        (if e.pareto then "*" else ""))
    t.entries;
  if t.failures <> [] then begin
    Format.fprintf ppf "quarantined: %d candidate(s)@."
      (List.length t.failures);
    List.iter
      (fun (f : failure) ->
        Format.fprintf ppf "  id %d (seed %d, %d attempts): %s@."
          f.candidate.Candidate.id f.candidate.Candidate.stim_seed
          f.attempts f.error)
      t.failures
  end;
  Format.fprintf ppf "aggregate: probe %a@." Stats.Running.pp t.agg_values;
  (match Interval.bounds t.agg_range with
  | Some (lo, hi) ->
      Format.fprintf ppf "aggregate: observed range [%g, %g], %d overflows@."
        lo hi t.agg_overflows
  | None -> ());
  List.iter
    (fun (k, v) -> Format.fprintf ppf "conclusion: %s = %s@." k v)
    t.conclusion
