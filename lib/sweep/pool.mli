(** The parallel evaluation pool — wordlength exploration across OCaml 5
    domains.

    Runs a {!Generator.t}'s wave protocol over a {!Workload.t}: each
    wave is distributed over [jobs] worker domains, each owning a
    private workload instance restored to the baseline snapshot before
    every candidate.  The resulting report is byte-identical for any
    [jobs] value — the determinism contract the oracle's sweep gate
    enforces. *)

(** Per-wave progress callback payload. *)
type progress = { wave : int; evaluated : int; total_so_far : int }

(** A worker domain died outside the per-candidate containment (e.g.
    workload instance construction failed).  Raised only after every
    domain of the wave was joined — no abandoned domains, no silently
    unclaimed result slots.  A [Printexc] printer is registered. *)
exception Worker_failure of { worker : int; candidate : int; exn : exn }

(** [run ~workload ~generator ()] sweeps to generator exhaustion.

    [jobs] (default 1) is the worker-domain count; [1] evaluates in the
    calling domain.  [budget] caps the total number of candidates —
    waves are truncated, never reordered, so a budgeted sweep is still
    deterministic.  [on_wave] fires after each wave (progress
    reporting; called in the calling domain).

    [counters:true] gathers {!Trace.Counters} per candidate evaluation
    (returned in each entry's metrics and folded into the report's
    [agg_counters] in candidate-id order, so {!Report.counters_json} is
    byte-identical for any [jobs] — the oracle's trace gate enforces
    it).  When span collection is on ({!Trace.Spans.set_enabled}), each
    evaluation records a wall-clock span on its worker-domain lane.

    [?cache] is a content-addressed evaluation cache hook
    ({!Refine.Eval.cache}), consulted on the compiled fast path only;
    interpreted and counter evaluations bypass it.  The hook must be
    domain-safe — every worker domain calls it concurrently
    ({!Serve.Cache}'s bindings are).  Because a hit returns exactly the
    metrics a fresh computation would produce, the report stays
    byte-identical cold vs warm and for any [jobs] — the serve gate's
    contract.

    [?checkpoint] is a crash-safety journal ({!Checkpoint}): every
    completed wave is durably recorded before the sweep advances, and a
    wave already journaled (same wave number, identical candidate list)
    is replayed instead of re-evaluated.  Because replayed metrics
    decode bit-identically and every report merge is commutative, a
    sweep killed at any instant and resumed produces a report
    byte-identical to the uninterrupted run, at any [jobs] — the chaos
    gate's contract.  Checkpointing composes with [?cache] (replayed
    waves touch neither).  [counters:true] with a checkpoint raises
    [Invalid_argument]: counters cannot round-trip through the journal.

    Graceful degradation: a candidate whose evaluation raises is
    retried once on a {e fresh} instance (which also replaces the
    worker's private instance for later candidates); a persistent
    failure is quarantined into the report's {!Report.failures} instead
    of aborting the sweep, so an injected or real fault yields a
    partial-but-deterministic report — byte-identical for any [jobs],
    quarantine list included.

    Raises [Invalid_argument] on [jobs < 1] or [budget < 1]. *)
val run :
  ?jobs:int ->
  ?budget:int ->
  ?cache:Refine.Eval.cache ->
  ?checkpoint:Checkpoint.t ->
  ?on_wave:(progress -> unit) ->
  ?counters:bool ->
  workload:Workload.t ->
  generator:Generator.t ->
  unit ->
  Report.t
