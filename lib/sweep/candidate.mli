(** Candidate points of a wordlength sweep: a per-signal [(n, f)]
    assignment plus a stimulus seed, carrying a dense generation-order
    [id] that the report (and every statistics merge) is keyed by —
    the anchor of scheduling-independent parallel sweeps. *)

(** One signal subject to exploration; [int_bits] (sign included) is
    fixed by range knowledge, the sweep varies [f], [n = int_bits + f]. *)
type spec = { signal : string; int_bits : int }

(** One signal's hypothesized wordlength. *)
type assign = { signal : string; n : int; f : int }

type t = {
  id : int;  (** dense generation-order index; the report sort key *)
  assigns : assign list;  (** per-signal wordlengths, spec order *)
  stim_seed : int;  (** stimulus seed this candidate is simulated under *)
  uniform_f : int option;
      (** [Some f] when every assign shares fractional position [f] *)
}

(** Uniform-fractional candidate: every spec gets [n = int_bits + f]. *)
val of_uniform : id:int -> specs:spec list -> f:int -> stim_seed:int -> t

(** The saturating/rounding dtype a single assign hypothesizes. *)
val dtype_of_assign : assign -> Fixpt.Dtype.t

(** The candidate as a {!Refine.Eval.apply_assigns}-ready list. *)
val to_dtypes : t -> (string * Fixpt.Dtype.t) list

(** Σ n over the candidate's assigns (its hardware cost). *)
val total_bits : t -> int

(** Compact one-line rendering ([#id seed=... f=...]). *)
val pp : Format.formatter -> t -> unit
