(** Sweep workloads — self-contained designs a sweep explores.

    A workload bundles everything the pool needs to evaluate candidates
    against a design: a factory for fresh simulation instances (each
    worker domain owns a private one), the probe signal to score, and
    the signal specs the generators assign wordlengths to.

    An {!instance} carries a baseline {!Sim.Env.snapshot} taken at
    construction; the pool restores it before every candidate so each
    evaluation starts from the identical untyped state — the foundation
    of the sweep's determinism guarantee. *)

type instance = {
  env : Sim.Env.t;
  design : Refine.Flow.design;
  baseline : Sim.Env.snapshot;  (** configuration right after build *)
  set_seed : int -> unit;
      (** stimulus seed for the next [design.reset]/[design.run] *)
  compiled : Refine.Eval.compiled_eval option;
      (** compiled-executor support ({!Refine.Eval.evaluate_compiled});
          [None] keeps every evaluation on the clock-true interpreter —
          the fault wrapper strips it, since its injector arms around
          [design.run] only *)
}

type t = {
  name : string;
  probe : string;  (** the signal SQNR/error metrics are read from *)
  specs : Candidate.spec list;  (** the signals the sweep retypes *)
  make_instance : unit -> instance;
      (** fresh private instance; must not share mutable state with any
          other instance (each worker domain owns exactly one) *)
}

(* --- the FIR workload ----------------------------------------------------- *)

let fir_coefs = [| 0.1; 0.25; 0.3; 0.25; 0.1 |]

(* int_bits budgets: x ∈ ±1.2 needs 2 bits (sign + one integer bit);
   the accumulator chain peaks at Σ|c|·max|x| = 1.0·1.2 so 3 bits keep
   saturation marginal rather than catastrophic. *)
let fir_specs =
  ({ Candidate.signal = "x"; int_bits = 2 }
   :: List.init 5 (fun i ->
          { Candidate.signal = Printf.sprintf "d[%d]" i; int_bits = 2 }))
  @ List.init 5 (fun i ->
        { Candidate.signal = Printf.sprintf "v[%d]" (i + 1); int_bits = 3 })
  @ [ { Candidate.signal = "out"; int_bits = 3 } ]

let fir ?(n = 512) () =
  let make_instance () =
    let env = Sim.Env.create ~seed:3 () in
    let rng = Stats.Rng.create ~seed:12 in
    (* consumed by [design.reset]: each candidate's stimulus stream is a
       pure function of its stim_seed *)
    let cur_seed = ref 0 in
    let x = Sim.Signal.create env "x" in
    Sim.Signal.range x (-1.2) 1.2;
    let f = Dsp.Fir.create env ~coefs:fir_coefs () in
    let out = Sim.Signal.create env "out" in
    let design =
      {
        Refine.Flow.env;
        reset =
          (fun () ->
            Sim.Env.reset env;
            Stats.Rng.reseed rng ~seed:(12 + (7919 * !cur_seed)));
        run =
          (fun () ->
            Sim.Engine.run env ~cycles:n (fun _ ->
                let open Sim.Ops in
                x <-- Sim.Value.of_float (Stats.Rng.uniform_sym rng 1.0);
                out <-- Dsp.Fir.step f !!x));
      }
    in
    let baseline = Sim.Env.snapshot env in
    let compiled =
      Some
        {
          Refine.Eval.extract =
            (fun () ->
              Sim.Extract.graph env ~outputs:[ "out" ]
                ~step:(fun () ->
                  let open Sim.Ops in
                  x <-- Sim.Value.of_float (Stats.Rng.uniform_sym rng 1.0);
                  out <-- Dsp.Fir.step f !!x)
                ());
          cycles = n;
          stimulus =
            (fun ~seed ->
              (* the same create/reseed protocol as [design.reset], so
                 sample [step] is bit-identical to what the clock-true
                 run would feed [x] *)
              let srng = Stats.Rng.create ~seed:12 in
              Stats.Rng.reseed srng ~seed:(12 + (7919 * seed));
              let buf =
                Array.init n (fun _ -> Stats.Rng.uniform_sym srng 1.0)
              in
              fun name step ->
                if String.equal name "x_in" then buf.(step) else 0.0);
        }
    in
    { env; design; baseline; set_seed = (fun s -> cur_seed := s); compiled }
  in
  { name = "fir"; probe = "out"; specs = fir_specs; make_instance }

(* --- the closed ML-TED synchronizer workload ------------------------------ *)

(* int_bits budgets: the drifting-tau M-PAM stimulus peaks under 2.0;
   the derivative matched filter swings up to ~4x the interpolant; the
   loop-filter signals are small by design and the NCO phase lives in
   [-W, 1). *)
let sync_specs =
  [
    { Candidate.signal = "in"; int_bits = 2 };
    { Candidate.signal = "ip_out"; int_bits = 2 };
    { Candidate.signal = "ip_dout"; int_bits = 3 };
    { Candidate.signal = "mlted_err"; int_bits = 3 };
    { Candidate.signal = "lf_integ"; int_bits = 1 };
    { Candidate.signal = "lf_lferr"; int_bits = 1 };
    { Candidate.signal = "nco_eta"; int_bits = 1 };
    { Candidate.signal = "nco_mu"; int_bits = 1 };
    { Candidate.signal = "out"; int_bits = 2 };
  ]

(* A small drifting-tau PAM-4 acquisition run per candidate.  The
   feedback loop's OCaml-level control flow (strobe/hold, the sliced
   decision) is data-dependent, so a frozen one-cycle extraction is not
   clock-true for it: [compiled] stays [None] and every candidate is
   evaluated on the clock-true interpreter (same reasoning as the
   fault wrapper stripping compiled support). *)
let sync ?(n_symbols = 160) () =
  let sps = 2 and m = 4 in
  let make_instance () =
    let env = Sim.Env.create ~seed:11 () in
    let cur_seed = ref 0 in
    let n_samples = n_symbols * sps in
    let stim = ref (fun (_ : int) -> 0.0) in
    let regen () =
      let rng = Stats.Rng.create ~seed:(31 + (7919 * !cur_seed)) in
      let s, _sent, _n =
        Dsp.Channel_model.drifting_tau_pam ~sps ~m ~tau0:0.3
          ~tau_drift:1e-4 ~phase:0.05 ~noise_sigma:0.01 ~rng ~n_symbols ()
      in
      stim := s
    in
    regen ();
    let input = Sim.Channel.of_fun "rx" (fun n -> !stim n) in
    let output = Sim.Channel.create "symbols" in
    let sy =
      Dsp.Synchronizer.create env ~ted:Dsp.Synchronizer.Ml ~m ~sps ~input
        ~output ()
    in
    Sim.Signal.range (Dsp.Synchronizer.input_signal sy) (-2.0) 2.0;
    Sim.Signal.range (Dsp.Nco.mu (Dsp.Synchronizer.nco sy)) 0.0 1.0;
    Sim.Signal.range (Sim.Env.find_exn env "lf_lferr") (-0.25) 0.25;
    Sim.Signal.range (Sim.Env.find_exn env "mlted_err") (-4.0) 4.0;
    Sim.Signal.range (Sim.Env.find_exn env "ip_out") (-2.0) 2.0;
    Sim.Signal.range (Sim.Env.find_exn env "ip_dout") (-4.0) 4.0;
    Sim.Signal.range (Sim.Env.find_exn env "out") (-2.0) 2.0;
    let design =
      {
        Refine.Flow.env;
        reset =
          (fun () ->
            Sim.Env.reset env;
            Sim.Channel.clear input;
            Sim.Channel.clear output;
            regen ());
        run = (fun () -> Dsp.Synchronizer.run sy ~samples:n_samples);
      }
    in
    let baseline = Sim.Env.snapshot env in
    { env; design; baseline; set_seed = (fun s -> cur_seed := s); compiled = None }
  in
  { name = "sync"; probe = "out"; specs = sync_specs; make_instance }

let all () = [ fir (); sync () ]

let find name = List.find_opt (fun w -> w.name = name) (all ())
