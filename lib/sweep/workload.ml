(** Sweep workloads — self-contained designs a sweep explores.

    A workload bundles everything the pool needs to evaluate candidates
    against a design: a factory for fresh simulation instances (each
    worker domain owns a private one), the probe signal to score, and
    the signal specs the generators assign wordlengths to.

    An {!instance} carries a baseline {!Sim.Env.snapshot} taken at
    construction; the pool restores it before every candidate so each
    evaluation starts from the identical untyped state — the foundation
    of the sweep's determinism guarantee. *)

type instance = {
  env : Sim.Env.t;
  design : Refine.Flow.design;
  baseline : Sim.Env.snapshot;  (** configuration right after build *)
  set_seed : int -> unit;
      (** stimulus seed for the next [design.reset]/[design.run] *)
  compiled : Refine.Eval.compiled_eval option;
      (** compiled-executor support ({!Refine.Eval.evaluate_compiled});
          [None] keeps every evaluation on the clock-true interpreter —
          the fault wrapper strips it, since its injector arms around
          [design.run] only *)
}

type t = {
  name : string;
  probe : string;  (** the signal SQNR/error metrics are read from *)
  specs : Candidate.spec list;  (** the signals the sweep retypes *)
  make_instance : unit -> instance;
      (** fresh private instance; must not share mutable state with any
          other instance (each worker domain owns exactly one) *)
}

(* --- the FIR workload ----------------------------------------------------- *)

let fir_coefs = [| 0.1; 0.25; 0.3; 0.25; 0.1 |]

(* int_bits budgets: x ∈ ±1.2 needs 2 bits (sign + one integer bit);
   the accumulator chain peaks at Σ|c|·max|x| = 1.0·1.2 so 3 bits keep
   saturation marginal rather than catastrophic. *)
let fir_specs =
  ({ Candidate.signal = "x"; int_bits = 2 }
   :: List.init 5 (fun i ->
          { Candidate.signal = Printf.sprintf "d[%d]" i; int_bits = 2 }))
  @ List.init 5 (fun i ->
        { Candidate.signal = Printf.sprintf "v[%d]" (i + 1); int_bits = 3 })
  @ [ { Candidate.signal = "out"; int_bits = 3 } ]

let fir ?(n = 512) () =
  let make_instance () =
    let env = Sim.Env.create ~seed:3 () in
    let rng = Stats.Rng.create ~seed:12 in
    (* consumed by [design.reset]: each candidate's stimulus stream is a
       pure function of its stim_seed *)
    let cur_seed = ref 0 in
    let x = Sim.Signal.create env "x" in
    Sim.Signal.range x (-1.2) 1.2;
    let f = Dsp.Fir.create env ~coefs:fir_coefs () in
    let out = Sim.Signal.create env "out" in
    let design =
      {
        Refine.Flow.env;
        reset =
          (fun () ->
            Sim.Env.reset env;
            Stats.Rng.reseed rng ~seed:(12 + (7919 * !cur_seed)));
        run =
          (fun () ->
            Sim.Engine.run env ~cycles:n (fun _ ->
                let open Sim.Ops in
                x <-- Sim.Value.of_float (Stats.Rng.uniform_sym rng 1.0);
                out <-- Dsp.Fir.step f !!x));
      }
    in
    let baseline = Sim.Env.snapshot env in
    let compiled =
      Some
        {
          Refine.Eval.extract =
            (fun () ->
              Sim.Extract.graph env ~outputs:[ "out" ]
                ~step:(fun () ->
                  let open Sim.Ops in
                  x <-- Sim.Value.of_float (Stats.Rng.uniform_sym rng 1.0);
                  out <-- Dsp.Fir.step f !!x)
                ());
          cycles = n;
          stimulus =
            (fun ~seed ->
              (* the same create/reseed protocol as [design.reset], so
                 sample [step] is bit-identical to what the clock-true
                 run would feed [x] *)
              let srng = Stats.Rng.create ~seed:12 in
              Stats.Rng.reseed srng ~seed:(12 + (7919 * seed));
              let buf =
                Array.init n (fun _ -> Stats.Rng.uniform_sym srng 1.0)
              in
              fun name step ->
                if String.equal name "x_in" then buf.(step) else 0.0);
        }
    in
    { env; design; baseline; set_seed = (fun s -> cur_seed := s); compiled }
  in
  { name = "fir"; probe = "out"; specs = fir_specs; make_instance }

let all () = [ fir () ]

let find name = List.find_opt (fun w -> w.name = name) (all ())
