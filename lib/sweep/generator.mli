(** Pluggable candidate generators — the search strategies of the sweep
    engine.

    A generator is a wave protocol: {!next} receives the evaluated
    results of the wave it produced last time (initially [[]]) and
    returns the next batch of candidates, or [[]] when the search is
    finished.  All candidates within one wave are independent, so the
    pool evaluates a whole wave in parallel; adaptive strategies place
    their data dependency {e between} waves.

    Generators are deterministic: candidate ids come from a private
    counter in generation order and every decision is a pure function
    of the (deterministic) evaluation results, so the candidate stream
    is identical however many workers evaluate it. *)

(** One evaluated candidate, as fed back into {!next}. *)
type result = Candidate.t * Refine.Eval.metrics

type t = {
  name : string;  (** strategy name, echoed in the report *)
  next : result list -> Candidate.t list;
      (** feed the previous wave's results, get the next wave; [[]]
          terminates the sweep *)
  conclusion : unit -> (string * string) list;
      (** strategy verdict (key/value pairs) once the search is done,
          e.g. the bisection's selected [f] *)
}

(** The strategy name. *)
val name : t -> string

(** Feed results of the previous wave, get the next. *)
val next : t -> result list -> Candidate.t list

(** The strategy's verdict after the final wave. *)
val conclusion : t -> (string * string) list

(** Minimum probe SQNR over a result set ([-∞] for a sample-less
    probe); adaptive strategies judge an [f] by its worst seed. *)
val worst_sqnr : result list -> float

(** Exhaustive single-wave scan: every uniform [f] in
    [[f_min, f_max]] × every stimulus seed, [f]-major.
    Raises [Invalid_argument] on an empty range or seed list. *)
val grid :
  specs:Candidate.spec list -> f_min:int -> f_max:int -> seeds:int list -> t

(** Binary search for the minimal uniform [f] whose worst-seed SQNR
    meets [target_db] (assumes SQNR monotone in [f]).  One midpoint ×
    all seeds per wave; the converged [f] is confirmed by evaluation
    before the verdict.  Conclusion keys: [selected_f],
    [meets_target], [target_db]. *)
val bisect :
  specs:Candidate.spec list ->
  f_min:int ->
  f_max:int ->
  target_db:float ->
  seeds:int list ->
  t

(** [a] dominates [b] on (total-bits, SQNR): cheaper-or-equal,
    no-less-accurate, strictly better on one axis. *)
val dominates : int * float -> int * float -> bool

(** Probe SQNR of a metrics record, [-∞] when sample-less. *)
val sqnr_of : Refine.Eval.metrics -> float

(** The Pareto-optimal subset of results on (total-bits, SQNR),
    preserving input order.  Shared with {!Report} so the frontier the
    adaptive generator refines and the one the report marks agree. *)
val pareto_front : result list -> result list

(** Two-wave frontier mapping: a coarse scan of [coarse] evenly spaced
    uniform [f] values (default 4), then the unevaluated [f±1]
    neighbours of the coarse frontier.  Raises [Invalid_argument] on an
    empty range/seed list or [coarse < 2]. *)
val pareto :
  ?coarse:int ->
  specs:Candidate.spec list ->
  f_min:int ->
  f_max:int ->
  seeds:int list ->
  unit ->
  t
