(** Sweep reports — the deterministic output contract of the engine.

    Built from the evaluated candidates sorted by id; every aggregate
    folds in that order with the commutative monitor merges
    ({!Stats.Running.merge}, {!Stats.Err_stats.merge},
    {!Interval.join}), so the rendered report — JSON and human — is
    byte-identical whatever worker count produced the entries.  The
    oracle's sweep-determinism gate compares {!to_json} output at
    [jobs=1] and [jobs=N] for exact equality, which is why no timing
    information appears here. *)

type entry = {
  candidate : Candidate.t;
  metrics : Refine.Eval.metrics;
  pareto : bool;  (** on the evaluated set's (bits, SQNR) frontier *)
}

(** A quarantined candidate: evaluation failed persistently (retried
    once on a fresh instance) and the sweep degraded to a partial
    report instead of aborting.  [error] is the printed exception — a
    pure function of (baseline, candidate), so the quarantine list
    renders identically for any worker count. *)
type failure = {
  candidate : Candidate.t;
  error : string;  (** printed exception of the last attempt *)
  attempts : int;  (** evaluation attempts before quarantine *)
}

type t = {
  workload : string;
  strategy : string;
  probe : string;
  entries : entry list;  (** ascending candidate id *)
  conclusion : (string * string) list;  (** the generator's verdict *)
  agg_values : Stats.Running.t;
      (** probe value monitors of every candidate, merged in id order *)
  agg_err : Stats.Err_stats.t;
      (** probe error monitors of every candidate, merged in id order *)
  agg_range : Interval.t;  (** join of observed probe ranges *)
  agg_overflows : int;  (** Σ overflow events across candidates *)
  agg_counters : Trace.Counters.t option;
      (** event counters of every candidate, merged in id order (only
          when the pool ran with [~counters:true]) *)
  failures : failure list;
      (** quarantined candidates, sorted by the total candidate key
          (id, then stimulus seed, then assignment list) — a total
          order even when a stitched or multi-seed report presents
          duplicate ids, so the canonical JSON never depends on the
          scheduling-dependent arrival order *)
}

(** Sort results by candidate id, mark the Pareto frontier, fold the
    aggregates.  [failures] (default none) are the quarantined
    candidates, sorted by the total candidate key (id, stim_seed,
    assigns). *)
val make :
  workload:string ->
  strategy:string ->
  probe:string ->
  conclusion:(string * string) list ->
  ?failures:failure list ->
  (Candidate.t * Refine.Eval.metrics) list ->
  t

(** Canonical JSON rendering — stable float formatting (shortest exact
    decimal; infinities as quoted strings, via {!Trace.Json}), no
    timing fields; the determinism gate compares these strings
    byte-for-byte. *)
val to_json : t -> string

(** Flat counters JSON of [agg_counters] (empty signal list when the
    sweep ran without [~counters:true]) with the same canonical
    formatting and no job-count/timing fields — byte-identical for any
    [--jobs], which the oracle's trace gate enforces. *)
val counters_json : t -> string

(** Human-readable table plus aggregates and conclusion. *)
val pp : Format.formatter -> t -> unit
