(** Fixrefine — fixed-point refinement for DSP hardware design.

    An OCaml reproduction of the methodology and design environment of
    R. Cmar, L. Rijnders, P. Schaumont, S. Vernalde and I. Bolsens,
    "A Methodology and Design Environment for DSP ASIC Fixed-Point
    Refinement", DATE 1999.

    This umbrella module re-exports the public API:

    - {!Fixpt}: fixed-point formats, types and quantization semantics;
    - {!Interval}: the interval arithmetic behind range propagation;
    - {!Stats}: running statistics, error statistics, SQNR, RNG;
    - {!Sim}: the simulation environment — dual fixed/float signals,
      overloaded operators, monitors, clocking, channels, VCD;
    - {!Trace}: the observability layer — event sinks (counters, ring
      buffer), wall-clock spans, Chrome trace_event/counters exporters
      behind [fxrefine trace] and the [--trace]/[--counters] flags;
    - {!Sfg}: signal-flow graphs and the pure analytical analyses;
    - {!Compile}: the flat-schedule batched executor — extracted graphs
      lowered to preallocated-array programs with fused quantizers,
      behind [fxrefine compile], [fxrefine check --compiled] and the
      sweep's compiled candidate evaluation;
    - {!Verify}: the sound bit-level verification oracle — exhaustive
      or bounded explicit-state search over the compiled executor that
      proves or refutes no-overflow and no-limit-cycle on refined
      designs, behind [fxrefine verify] and [fxrefine check --verify];
    - {!Refine}: the refinement rules, the design flow driver, and the
      two literature baselines;
    - {!Dsp}: the paper's example designs (LMS equalizer, PAM timing
      recovery) and a block library;
    - {!Sweep}: the parallel (multicore) wordlength/stimuli exploration
      engine behind [fxrefine sweep];
    - {!Fault}: seeded deterministic fault injection (stimulus
      corruption, SEU bitflips, forced overflows, stream starvation)
      and the graceful-degradation plumbing behind [fxrefine faultsim]
      and [fxrefine check --faults];
    - {!Serve}: refinement-as-a-service — the content-addressed
      evaluation cache (persistent memoization of candidate
      evaluations) and the [fxrefine serve] daemon executing sweep
      jobs over a Unix socket, behind [fxrefine sweep --cache-dir],
      [fxrefine serve]/[fxrefine submit] and [fxrefine check --serve];
    - {!Vhdl}: VHDL generation for refined datapaths;
    - {!Oracle}: the conformance oracle — executable quantization spec,
      differential testing, metamorphic workload invariants, golden
      traces and the bench regression guard behind [fxrefine check].

    Quickstart: see [examples/quickstart.ml]. *)

module Fixpt = Fixpt
module Interval = Interval
module Stats = Stats
module Sim = Sim
module Trace = Trace
module Sfg = Sfg
module Compile = Compile
module Verify = Verify
module Refine = Refine
module Dsp = Dsp
module Sweep = Sweep
module Fault = Fault
module Serve = Serve
module Vhdl = Vhdl
module Oracle = Oracle
