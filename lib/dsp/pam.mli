(** Pulse-amplitude modulation utilities: symbol streams, Nyquist
    pulses, decision scoring — the signalling of both paper examples. *)

(** Deterministic ±1 symbol stream. *)
val symbols : Stats.Rng.t -> int -> float array

(** Deterministic PAM-M symbol stream on levels [±1/(m−1) … ±1]. *)
val symbols_m : Stats.Rng.t -> m:int -> int -> float array

(** The normalized PAM-M constellation, ascending ([m] even, ≥ 2). *)
val levels : m:int -> float array

(** Raised-cosine pulse at [t] (symbol periods), roll-off [beta] in
    [[0, 1]]; [p 0 = 1], zero at nonzero integers.  Evaluated by an
    exact cancellation-free rewrite inside a guard band around the
    removable singularity at [t = ±1/(2β)]. *)
val raised_cosine : beta:float -> float -> float

(** Transmit waveform sample [s(t) = Σ_k a_k·p(t − k)], pulse truncated
    to ±[span] symbols. *)
val waveform_sample : ?beta:float -> ?span:int -> float array -> float -> float

(** Hard ±1 decision. *)
val slice : float -> float

(** Symbol error count at a given integer [lag], ignoring the first
    [skip] decisions; returns [(errors, counted)].  [m] (default 2) is
    the PAM constellation size the decisions are re-sliced onto. *)
val symbol_errors :
  ?skip:int -> ?lag:int -> ?m:int -> sent:float array ->
  decided:float array -> unit -> int * int

(** Best symbol error rate over a ±[max_lag] window. *)
val best_ser :
  ?skip:int -> ?max_lag:int -> ?m:int -> sent:float array ->
  decided:float array -> unit -> float

(** Best-lag modulation error ratio of soft symbol-rate samples against
    the sent constellation points; [(mer_db, lag)]. *)
val best_mer :
  ?skip:int -> ?max_lag:int -> sent:float array -> received:float array ->
  unit -> float * int
