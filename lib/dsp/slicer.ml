(** PAM decision slicer.

    The motivational example's output stage: a hard ±1 decision on the
    equalized sample ([y = w > 0 ? 1 : -1], §3).  The decision is steered
    by the fixed-point value (§4.2), so the floating-point reference
    follows the same symbol decisions.

    A multi-level variant is provided for PAM-M extensions. *)

type t = { out : Sim.Signal.t }

(** [create env name] — the decision output signal.  PAM-2 decisions are
    exactly representable in 2 integer bits; the signal is typically left
    floating (its LSB analysis yields "no error": Table 2's [y] row). *)
let create env ?dtype name = { out = Sim.Signal.create env ?dtype name }

let output t = t.out

(** Binary decision: drive the output signal from the input value. *)
let step t (w : Sim.Value.t) : Sim.Value.t =
  let open Sim.Ops in
  t.out <-- sign w;
  !!(t.out)

(** Multi-level PAM-M slicer on normalized levels
    [±1/(m−1), ±3/(m−1), …, ±1]: snaps the fixed-point input to the
    nearest level (decision on the fixed value, as always).  The level
    index is rounded {e after} the whole affine map — rounding the
    numerator alone yields half-integer indices off the constellation
    for boundary inputs. *)
let decide_pam ~m v =
  if m < 2 || m mod 2 <> 0 then invalid_arg "Slicer.decide_pam: bad m";
  let span = Float.of_int (m - 1) in
  let k = Float.round (((v *. span) +. span) /. 2.0) in
  let k = Float.max 0.0 (Float.min span k) in
  ((2.0 *. k) -. span) /. span

let step_pam t ~m (w : Sim.Value.t) : Sim.Value.t =
  let open Sim.Ops in
  let decision = decide_pam ~m (Sim.Value.fx w) in
  t.out <-- Sim.Value.with_range (cst decision) (Interval.make (-1.0) 1.0);
  !!(t.out)
