(** Pulse-amplitude modulation utilities.

    Both paper examples work on binary PAM (±1) signalling: the LMS
    equalizer slices ±1 decisions, and the timing-recovery loop of Fig. 5
    recovers the symbol clock of a PAM stream.  This module generates
    symbol streams, maps them through transmit pulses, and scores
    receiver decisions. *)

(** Deterministic ±1 symbol stream. *)
let symbols rng n = Array.init n (fun _ -> Stats.Rng.pam2 rng)

(** Deterministic PAM-M symbol stream on the normalized levels
    [±1/(m−1) … ±1]. *)
let symbols_m rng ~m n = Array.init n (fun _ -> Stats.Rng.pam rng ~m)

(** The normalized PAM-M constellation, ascending:
    [(2k − (m−1))/(m−1)] for [k = 0 … m−1]. *)
let levels ~m =
  if m < 2 || m mod 2 <> 0 then invalid_arg "Pam.levels: bad m";
  let span = Float.of_int (m - 1) in
  Array.init m (fun k -> ((2.0 *. Float.of_int k) -. span) /. span)

let sinc x =
  if Float.abs x < 1e-12 then 1.0
  else sin (Float.pi *. x) /. (Float.pi *. x)

(** Raised-cosine pulse with roll-off [beta], evaluated at [t] in symbol
    periods.  The classic Nyquist pulse used by the timing-recovery
    stimulus; [p 0 = 1], zero at nonzero integers.

    Near the removable singularity at [t = ±1/(2β)] the textbook form
    [sinc(t)·cos(πβt)/(1 − (2βt)²)] cancels catastrophically (both
    numerator and denominator vanish linearly), so inside a guard band
    around it we evaluate the exact stable rewrite in [u = |t| − 1/(2β)]:
    [cos(πβt) = −sin(πβu)] and [1 − (2βt)² = −4βu(1 + βu)] give

    [p(t) = (π/4) · sinc(t) · sinc(βu) / (1 + βu)],

    which has no cancellation (the [u → 0] limit is the classic
    [(π/4)·sinc(1/(2β))]). *)
let raised_cosine ~beta t =
  if beta < 0.0 || beta > 1.0 then invalid_arg "Pam.raised_cosine: beta";
  let abs_t = Float.abs t in
  if abs_t < 1e-9 then 1.0
  else
    let u = if beta > 0.0 then abs_t -. (1.0 /. (2.0 *. beta)) else 1.0 in
    if beta > 0.0 && Float.abs u < 1e-3 then
      Float.pi /. 4.0 *. sinc abs_t *. sinc (beta *. u)
      /. (1.0 +. (beta *. u))
    else
      let denom = 1.0 -. (2.0 *. beta *. abs_t) ** 2.0 in
      sinc abs_t *. cos (Float.pi *. beta *. abs_t) /. denom

(** Transmit waveform sample: [s(t) = Σ_k a_k · p(t − k)], [t] in symbol
    periods, pulse truncated to ±[span] symbols. *)
let waveform_sample ?(beta = 0.35) ?(span = 4) (syms : float array) t =
  let n = Array.length syms in
  let k0 = Float.to_int (Float.floor t) in
  let acc = ref 0.0 in
  for k = k0 - span to k0 + span do
    if k >= 0 && k < n then
      acc := !acc +. (syms.(k) *. raised_cosine ~beta (t -. Float.of_int k))
  done;
  !acc

(** Hard ±1 decision. *)
let slice v = if v >= 0.0 then 1.0 else -1.0

(** Symbol error count between a decision array and the transmitted
    symbols, ignoring the first [skip] decisions (filter/loop
    transients) and allowing a constant integer [lag].  [m] (default 2)
    selects the constellation the decisions are re-sliced onto —
    comparing an M-PAM stream with the hard ±1 {!slice} would count
    every inner level as an error. *)
let symbol_errors ?(skip = 0) ?(lag = 0) ?(m = 2) ~sent ~decided () =
  let n = min (Array.length decided - skip) (Array.length sent - skip - lag) in
  let errors = ref 0 and total = ref 0 in
  for i = skip to skip + n - 1 do
    if i + lag >= 0 && i + lag < Array.length sent then begin
      incr total;
      if Slicer.decide_pam ~m decided.(i) <> sent.(i + lag) then incr errors
    end
  done;
  (!errors, !total)

(** Best-lag symbol error rate over a small lag window (receivers have an
    a-priori-unknown integer delay). *)
let best_ser ?(skip = 0) ?(max_lag = 8) ?(m = 2) ~sent ~decided () =
  let best = ref 1.0 in
  for lag = -max_lag to max_lag do
    let e, t = symbol_errors ~skip ~lag ~m ~sent ~decided () in
    if t > 0 then best := Float.min !best (Float.of_int e /. Float.of_int t)
  done;
  !best

(** Best-lag MER of soft symbol-rate samples against the transmitted
    constellation points (same lag-window rationale as {!best_ser}).
    Returns [(mer, lag)] for the alignment with the highest modulation
    error ratio; [(neg_infinity, 0)] when no lag yields any overlap. *)
let best_mer ?(skip = 0) ?(max_lag = 8) ~sent ~received () =
  let best = ref Float.neg_infinity and best_lag = ref 0 in
  for lag = -max_lag to max_lag do
    let mer = Stats.Mer.create () in
    Array.iteri
      (fun i y ->
        if i >= skip && i + lag >= 0 && i + lag < Array.length sent then
          Stats.Mer.add mer ~reference:sent.(i + lag) ~actual:y)
      received;
    if Stats.Mer.count mer > 0 then begin
      let db = Stats.Mer.db mer in
      if db > !best then begin
        best := db;
        best_lag := lag
      end
    end
  done;
  (!best, !best_lag)
