(** Decision-directed maximum-likelihood timing-error detector.

    The ML-TED of the Rice symbol-timing loop (SNIPPETS.md's
    [symTimingLoop.m]): at every symbol strobe the detector multiplies
    the {e symbol decision} by the {e derivative matched filter} sample,

    [err = â_k · y'(k·T + τ̂)],

    where [â_k] is the sliced decision on the interpolant [y] and [y']
    is the μ-derivative of the same interpolator (matched-filter
    derivative form — the derivative of the log-likelihood with respect
    to timing phase, evaluated at the decision).  Unlike Gardner's
    detector it needs only one sample per symbol and extends directly to
    M-PAM (the decision ranges over the whole constellation), at the
    price of being decision-directed: before lock, wrong decisions
    shrink the S-curve but leave its sign intact for moderate timing
    error.

    The decision is made on the fixed-point value and drives both
    simulation tracks (control steering, §4.2), so float and fixed
    recover the same symbol stream until the fixed track degrades. *)

type t = {
  m : int;  (** constellation size (PAM-M, even) *)
  decision : Sim.Signal.t;  (** â_k — the sliced symbol decision *)
  err : Sim.Signal.t;  (** detector output *)
}

let create env ?(prefix = "mlted_") ?(m = 2) () =
  if m < 2 || m mod 2 <> 0 then invalid_arg "Ml_ted.create: bad m";
  {
    m;
    decision = Sim.Signal.create env (prefix ^ "dec");
    err = Sim.Signal.create env (prefix ^ "err");
  }

let constellation t = t.m
let decision t = t.decision
let error t = t.err
let signals t = [ t.decision; t.err ]

(** Compute the timing error at a symbol strobe from the interpolant
    [y] and its μ-derivative [ydot]; drives and returns [err].  The
    decision signal carries the exact constellation point (range ±1 by
    construction).  The output is [−â·y'] — sign matched to this
    library's modulo-1 {e decrementing} NCO ([W = 1/sps + lferr]:
    positive error ⇒ larger W ⇒ earlier strobe, which is what a late
    strobe needs), the negative of Rice's convention, exactly as
    {!Gardner_ted} is. *)
let detect t ~(y : Sim.Value.t) ~(ydot : Sim.Value.t) : Sim.Value.t =
  let open Sim.Ops in
  let d = Slicer.decide_pam ~m:t.m (Sim.Value.fx y) in
  t.decision <-- Sim.Value.with_range (cst d) (Interval.make (-1.0) 1.0);
  t.err <-- cst 0.0 -: (!!(t.decision) *: ydot);
  !!(t.err)

(** Float reference for tests: [−decide_pam y · ydot]. *)
let reference ~m ~y ~ydot = -.(Slicer.decide_pam ~m y *. ydot)
