(** Numerically-controlled oscillator (interpolation control) — the
    "NCO" block of Fig. 5: a modulo-1 phase decrementer ([W = 1/sps +
    lferr], clamped to [[W/2, 3W/2]]); an underflow marks a strobe with
    fractional offset [mu = eta/W].  The phase register is the paper's
    "D signal inside of NCO" — the divergence-prone feedback state. *)

type t

val create : Sim.Env.t -> ?prefix:string -> sps:int -> unit -> t
val phase : t -> Sim.Signal.t
val mu : t -> Sim.Signal.t

(** The decremented phase before wrap (fresh after {!step}; with the
    registered [phase] still reading pre-update, the pair exposes the
    half-crossing a [sps = 2]-style Gardner mid-sample needs). *)
val next_phase : t -> Sim.Signal.t

(** The clamped control word W driven by the last {!step}. *)
val control : t -> Sim.Signal.t

(** 1/sps — the nominal per-sample phase decrement. *)
val nominal : t -> float

val signals : t -> Sim.Signal.t list

(** Advance one input sample; [(strobed, mu)].  The strobe decision is
    steered by fixed-point values (§4.2). *)
val step : t -> Sim.Value.t -> bool * Sim.Value.t

(** Float reference over an lferr array: per-sample [(strobe, mu)]. *)
val reference : sps:int -> float array -> (bool * float) array
