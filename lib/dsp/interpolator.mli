(** Cubic Lagrange (Farrow-structure) interpolator — the "Interpolator"
    block of the Fig. 5 timing-recovery loop.  For stored samples
    x[0] (newest) … x[3], evaluates the cubic interpolant between x[2]
    and x[1] at fraction [mu], with the Farrow coefficients and Horner
    chain as individually monitored signals.  [~deriv:true] adds the
    μ-derivative chain (the ML-TED's derivative matched filter). *)

type t

val create : Sim.Env.t -> ?prefix:string -> ?deriv:bool -> unit -> t
val taps : t -> Sim.Sig_array.t
val coeffs : t -> Sim.Sig_array.t
val horner : t -> Sim.Sig_array.t
val output : t -> Sim.Signal.t

(** The derivative output signal ([Invalid_argument] unless built with
    [~deriv:true]). *)
val derivative_output : t -> Sim.Signal.t

val signals : t -> Sim.Signal.t list

(** Shift one input sample in (once per input sample, before
    {!interpolate}). *)
val shift : t -> Sim.Value.t -> unit

(** Evaluate at [mu]; drives and returns [out]. *)
val interpolate : t -> Sim.Value.t -> Sim.Value.t

(** Evaluate the μ-derivative at [mu]; call after {!interpolate} (the
    [a] coefficients are shared).  [Invalid_argument] unless built with
    [~deriv:true]. *)
val differentiate : t -> Sim.Value.t -> Sim.Value.t

(** Float reference on a 4-element array (newest first). *)
val reference : float array -> float -> float

(** Float reference of the μ-derivative. *)
val derivative_reference : float array -> float -> float
