(** Numerically-controlled oscillator (interpolation control).

    The "NCO" block of Fig. 5: a modulo-1 phase decrementer that converts
    the loop-filter output into interpolation commands.  Every input
    sample the phase register [eta] decreases by the control word
    [W = 1/sps + lferr]; an underflow (wrap) marks a {e strobe} — an
    output instant — and the fractional interpolation offset is
    [mu = eta / W] at that instant.

    The phase register [eta] is the paper's "D signal inside of NCO": its
    float/fixed error integrates control-word errors forever, so the
    error monitoring on it diverges and must be overruled with [error()]
    (§6.1) — this module is where that phenomenon lives. *)

type t = {
  w_nominal : float;  (** 1/sps: nominal phase decrement per sample *)
  w_min : float;  (** control-word clamp (a real NCO bounds its rate) *)
  w_max : float;
  eta : Sim.Signal.t;  (** phase register, modulo-1, registered *)
  w : Sim.Signal.t;  (** control word W *)
  eta_next : Sim.Signal.t;  (** decremented phase before wrap *)
  mu : Sim.Signal.t;  (** fractional offset at strobes (held) *)
  strobe : Sim.Signal.t;  (** 1.0 at output instants, else 0.0 *)
}

let create env ?(prefix = "nco_") ~sps () =
  if sps < 1 then invalid_arg "Nco.create: sps";
  let w_nominal = 1.0 /. Float.of_int sps in
  {
    w_nominal;
    w_min = w_nominal /. 2.0;
    w_max = 1.5 *. w_nominal;
    eta = Sim.Signal.create_reg env (prefix ^ "eta");
    w = Sim.Signal.create env (prefix ^ "w");
    eta_next = Sim.Signal.create env (prefix ^ "eta_next");
    (* combinational with assign-on-strobe: holds between strobes, but
       the strobe cycle's interpolation sees the fresh value *)
    mu = Sim.Signal.create env (prefix ^ "mu");
    strobe = Sim.Signal.create env (prefix ^ "strobe");
  }

let phase t = t.eta
let mu t = t.mu
let next_phase t = t.eta_next
let control t = t.w
let nominal t = t.w_nominal
let signals t = [ t.eta; t.w; t.eta_next; t.mu; t.strobe ]

(** Advance one input sample with loop correction [lferr].  Returns
    [(strobed, mu)] — whether this sample is an output instant, and the
    fractional offset value.  The strobe decision is made on fixed-point
    values (control steering, §4.2), so the float phase wraps at exactly
    the same instants. *)
let step t (lferr : Sim.Value.t) =
  let open Sim.Ops in
  t.w
  <-- max_ (cst t.w_min) (min_ (cst t.w_max) (cst t.w_nominal +: lferr));
  t.eta_next <-- !!(t.eta) -: !!(t.w);
  let strobed = !!(t.eta_next) <: cst 0.0 in
  if strobed then begin
    t.strobe <-- cst 1.0;
    (* mu = eta / W: position of the wrap instant inside the sample *)
    t.mu <-- !!(t.eta) /: !!(t.w);
    t.eta <-- !!(t.eta_next) +: cst 1.0
  end
  else begin
    t.strobe <-- cst 0.0;
    t.eta <-- !!(t.eta_next)
  end;
  (strobed, !!(t.mu))

(** Float reference model for tests: fold over lferr samples, returning
    the strobe/mu sequence. *)
let reference ~sps lferrs =
  let w_nom = 1.0 /. Float.of_int sps in
  let eta = ref 0.0 in
  let mu = ref 0.0 in
  Array.map
    (fun lferr ->
      let w = Float.max (w_nom /. 2.0) (Float.min (1.5 *. w_nom) (w_nom +. lferr)) in
      let next = !eta -. w in
      if next < 0.0 then begin
        mu := !eta /. w;
        eta := next +. 1.0;
        (true, !mu)
      end
      else begin
        eta := next;
        (false, !mu)
      end)
    lferrs
