(** The closed symbol-timing synchronizer (ROADMAP item 4): selectable
    Gardner / decision-directed ML-TED detector, M-PAM constellations,
    oversampling [sps ≥ 2].  Interpolator (matched filter + derivative
    matched filter for ML), PI loop filter, modulo-1 NCO; soft
    decision-instant samples go to [output] (MER/EVM scoring), sliced
    symbols optionally to [decisions] (SER).  The §6.1 phenomena live
    in the loop-filter integrator (MSB explosion → saturation) and the
    NCO phase (LSB divergence → [error()] overrule). *)

type ted = Gardner | Ml

val ted_name : ted -> string

type t

(** Loop gains [(kp, ki)] a {!create} without explicit gains uses for
    this detector/oversampling pair. *)
val default_gains : ted:ted -> sps:int -> float * float

val create :
  Sim.Env.t ->
  ?kp:float ->
  ?ki:float ->
  ?ted:ted ->
  ?m:int ->
  ?sps:int ->
  ?x_dtype:Fixpt.Dtype.t ->
  input:Sim.Channel.t ->
  output:Sim.Channel.t ->
  ?decisions:Sim.Channel.t ->
  unit ->
  t

val env : t -> Sim.Env.t
val detector : t -> ted
val constellation : t -> int
val sps : t -> int
val input_signal : t -> Sim.Signal.t
val output_signal : t -> Sim.Signal.t
val interpolator : t -> Interpolator.t
val loop_filter : t -> Loop_filter.t
val nco : t -> Nco.t

(** The active detector's error signal. *)
val error_signal : t -> Sim.Signal.t

(** Every signal of the design, declaration order. *)
val all_signals : t -> Sim.Signal.t list

(** One input-sample clock cycle. *)
val step : t -> unit

val run : t -> samples:int -> unit

(** Symbol strobes seen since reset. *)
val strobes : t -> int

(** Input samples seen since reset. *)
val samples_seen : t -> int

(** |strobes/(samples/sps) − 1| since reset; a locked loop keeps this
    within ~1%. *)
val strobe_rate_error : t -> float
