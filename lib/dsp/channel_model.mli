(** Transmission-channel models producing receiver input streams — the
    deterministic synthetic substitutes for the paper's unavailable
    stimuli (see DESIGN.md §2). *)

(** ISI + AWGN at symbol rate: [x_n = Σ_j taps_j·a_{n-j} + w_n].
    Returns the stimulus function (precomputed; consistent on repeated
    reads) and the transmitted symbols.  Indices outside
    [[0, n_symbols)] read as [0.0] (zero fill, finite support). *)
val isi_awgn :
  ?taps:float array ->
  ?noise_sigma:float ->
  rng:Stats.Rng.t ->
  n_symbols:int ->
  unit ->
  (int -> float) * float array

(** Pulse-shaped PAM at [sps] samples/symbol with a static fractional
    timing offset [tau] and AWGN — the Fig. 5 workload.  Returns
    [(stimulus, symbols, n_samples)]. *)
val timing_offset_pam :
  ?beta:float ->
  ?sps:int ->
  ?noise_sigma:float ->
  ?tau:float ->
  rng:Stats.Rng.t ->
  n_symbols:int ->
  unit ->
  (int -> float) * float array * int

(** Pulse-shaped M-PAM with a drifting timing offset
    [tau(n) = tau0 + tau_drift·n/sps] and a carrier-phase amplitude
    factor [cos phase] — the closed synchronizer's
    acquisition-and-tracking stimulus.  Returns
    [(stimulus, symbols, n_samples)]; out-of-range indices read 0.0. *)
val drifting_tau_pam :
  ?beta:float ->
  ?sps:int ->
  ?m:int ->
  ?noise_sigma:float ->
  ?tau0:float ->
  ?tau_drift:float ->
  ?phase:float ->
  rng:Stats.Rng.t ->
  n_symbols:int ->
  unit ->
  (int -> float) * float array * int

(** Peak magnitude over the first [n] samples. *)
val peak : (int -> float) -> n:int -> float
