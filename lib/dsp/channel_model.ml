(** Transmission-channel models producing receiver input streams.

    The paper evaluates on "relevant input stimuli" from its cable-modem
    context; we substitute deterministic synthetic equivalents (see
    DESIGN.md): binary PAM through a short ISI channel with additive
    white Gaussian noise for the equalizer, and a pulse-shaped PAM
    waveform with a static timing offset for the timing-recovery loop. *)

(** ISI + AWGN channel at symbol rate:
    [x_n = Σ_j taps_j · a_{n-j} + w_n], [w ~ N(0, noise_sigma²)].

    Returns a stimulus function suitable for {!Sim.Channel.of_fun}
    together with the transmitted symbol array (for SER scoring).
    Indices outside [[0, n_symbols)] read as [0.0] (zero fill): the
    stimulus has finite support and callers reading past the end get
    silence, not a repeated tail. *)
let isi_awgn ?(taps = [| 0.15; 0.8; 0.12 |]) ?(noise_sigma = 0.02) ~rng
    ~n_symbols () =
  let syms = Pam.symbols rng n_symbols in
  let gauss = Stats.Rng.gauss_state (Stats.Rng.split rng) in
  let nt = Array.length taps in
  let sample n =
    if n < 0 || n >= n_symbols then 0.0
    else begin
      let acc = ref 0.0 in
      for j = 0 to nt - 1 do
        if n - j >= 0 then acc := !acc +. (taps.(j) *. syms.(n - j))
      done;
      !acc +. Stats.Rng.gauss_ms gauss ~mean:0.0 ~sigma:noise_sigma
    end
  in
  (* precompute so repeated reads of the same index are consistent *)
  let table = Array.init n_symbols sample in
  let stimulus n = if n < 0 || n >= n_symbols then 0.0 else table.(n) in
  (stimulus, syms)

(** Pulse-shaped PAM waveform sampled at [sps] samples per symbol with a
    static fractional timing offset [tau] (in symbol periods) and AWGN —
    the Fig. 5 timing-recovery workload.  Sample [n] is
    [s(n/sps − tau) + w_n]. *)
let timing_offset_pam ?(beta = 0.35) ?(sps = 2) ?(noise_sigma = 0.01)
    ?(tau = 0.3) ~rng ~n_symbols () =
  let syms = Pam.symbols rng n_symbols in
  let gauss = Stats.Rng.gauss_state (Stats.Rng.split rng) in
  let n_samples = n_symbols * sps in
  let table =
    Array.init n_samples (fun n ->
        let t = (Float.of_int n /. Float.of_int sps) -. tau in
        Pam.waveform_sample ~beta syms t
        +. Stats.Rng.gauss_ms gauss ~mean:0.0 ~sigma:noise_sigma)
  in
  let stimulus n = if n >= 0 && n < n_samples then table.(n) else 0.0 in
  (stimulus, syms, n_samples)

(** Pulse-shaped M-PAM waveform with a slowly {e drifting} fractional
    timing offset and a static carrier-phase mismatch — the closed
    synchronizer's acquisition-and-tracking stimulus.  Sample [n] is

    [cos(phase) · s(n/sps − tau(n)) + w_n],  [tau(n) = tau0 + tau_drift·n/sps]

    so the loop must first acquire [tau0] and then track a timing ramp
    (a small sample-clock frequency offset between transmitter and
    receiver); the [cos(phase)] factor models the amplitude loss of a
    carrier-phase offset on a PAM (real-valued) detector.  Indices
    outside [[0, n_samples)] read as [0.0], like every stimulus here.
    Returns [(stimulus, symbols, n_samples)]. *)
let drifting_tau_pam ?(beta = 0.35) ?(sps = 2) ?(m = 2)
    ?(noise_sigma = 0.01) ?(tau0 = 0.3) ?(tau_drift = 0.0) ?(phase = 0.0)
    ~rng ~n_symbols () =
  let syms =
    if m = 2 then Pam.symbols rng n_symbols
    else Pam.symbols_m rng ~m n_symbols
  in
  let gauss = Stats.Rng.gauss_state (Stats.Rng.split rng) in
  let gain = cos phase in
  let n_samples = n_symbols * sps in
  let table =
    Array.init n_samples (fun n ->
        let sym_time = Float.of_int n /. Float.of_int sps in
        let tau = tau0 +. (tau_drift *. sym_time) in
        (gain *. Pam.waveform_sample ~beta syms (sym_time -. tau))
        +. Stats.Rng.gauss_ms gauss ~mean:0.0 ~sigma:noise_sigma)
  in
  let stimulus n = if n >= 0 && n < n_samples then table.(n) else 0.0 in
  (stimulus, syms, n_samples)

(** Peak magnitude of a stimulus over its support — used to choose input
    signal [range()] annotations the way a designer reads a datasheet. *)
let peak stimulus ~n =
  let m = ref 0.0 in
  for i = 0 to n - 1 do
    m := Float.max !m (Float.abs (stimulus i))
  done;
  !m
