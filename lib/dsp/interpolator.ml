(** Cubic Lagrange (Farrow-structure) interpolator.

    The "Interpolator" block of the Fig. 5 timing-recovery loop: produces
    the receive sample at fractional position [mu] between the stored
    input samples.  The Farrow structure exposes the polynomial
    coefficients [a0..a3] and the Horner chain as individual signals, so
    each hardware node gets its own fixed-point refinement — the level of
    granularity that gives the paper its 61-signal count.

    For the four stored samples x[0] (newest) … x[3] (oldest), the
    interpolant between x[2] and x[1] at fraction [mu] is

    [y(μ) = ((a3·μ + a2)·μ + a1)·μ + a0] with

    a0 = x[2]
    a1 = −x[3]/3 − x[2]/2 + x[1] − x[0]/6
    a2 =  x[3]/2 − x[2]   + x[1]/2
    a3 = −x[3]/6 + x[2]/2 − x[1]/2 + x[0]/6.

    With [~deriv:true] the block also exposes the polynomial's
    μ-derivative [y'(μ) = (3·a3·μ + 2·a2)·μ + a1] as its own Horner
    chain — the "derivative matched filter" sample the decision-directed
    ML timing-error detector multiplies against the symbol decision
    (Rice §8.4); sharing the [a] coefficients costs two extra multiplies,
    not a second filter bank. *)

type t = {
  taps : Sim.Sig_array.t;  (** x[0..3], registered delay line *)
  a : Sim.Sig_array.t;  (** Farrow coefficients a[0..3] *)
  h : Sim.Sig_array.t;  (** Horner chain h[0..2] *)
  out : Sim.Signal.t;
  dh : Sim.Sig_array.t option;  (** derivative Horner chain d[0..1] *)
  dout : Sim.Signal.t option;  (** y'(μ), when built with [~deriv] *)
}

let create env ?(prefix = "ip_") ?(deriv = false) () =
  {
    taps = Sim.Sig_array.create_reg env (prefix ^ "x") 4;
    a = Sim.Sig_array.create env (prefix ^ "a") 4;
    h = Sim.Sig_array.create env (prefix ^ "h") 3;
    out = Sim.Signal.create env (prefix ^ "out");
    dh =
      (if deriv then Some (Sim.Sig_array.create env (prefix ^ "d") 2)
       else None);
    dout =
      (if deriv then Some (Sim.Signal.create env (prefix ^ "dout"))
       else None);
  }

let taps t = t.taps
let coeffs t = t.a
let horner t = t.h
let output t = t.out

let derivative_output t =
  match t.dout with
  | Some s -> s
  | None -> invalid_arg "Interpolator.derivative_output: built without deriv"

(** All signals of the block, declaration order. *)
let signals t =
  Sim.Sig_array.to_list t.taps @ Sim.Sig_array.to_list t.a
  @ Sim.Sig_array.to_list t.h @ [ t.out ]
  @ (match t.dh with Some d -> Sim.Sig_array.to_list d | None -> [])
  @ match t.dout with Some s -> [ s ] | None -> []

(** Shift one new input sample into the delay line (call once per input
    sample, before {!interpolate}). *)
let shift t (input : Sim.Value.t) =
  let open Sim.Ops in
  Sim.Sig_array.get t.taps 0 <-- input;
  for i = 3 downto 1 do
    Sim.Sig_array.get t.taps i <-- !!(Sim.Sig_array.get t.taps (i - 1))
  done

(** Evaluate the interpolant at [mu]; drives and returns [out]. *)
let interpolate t (mu : Sim.Value.t) : Sim.Value.t =
  let open Sim.Ops in
  let x i = !!(Sim.Sig_array.get t.taps i) in
  let a i = Sim.Sig_array.get t.a i in
  let h i = Sim.Sig_array.get t.h i in
  a 0 <-- x 2;
  a 1
  <-- x 1
      -: (x 3 /: cst 3.0)
      -: (x 2 /: cst 2.0)
      -: (x 0 /: cst 6.0);
  a 2 <-- (x 3 /: cst 2.0) -: x 2 +: (x 1 /: cst 2.0);
  a 3
  <-- (x 2 /: cst 2.0)
      -: (x 3 /: cst 6.0)
      -: (x 1 /: cst 2.0)
      +: (x 0 /: cst 6.0);
  h 0 <-- (!!(a 3) *: mu) +: !!(a 2);
  h 1 <-- (!!(h 0) *: mu) +: !!(a 1);
  h 2 <-- (!!(h 1) *: mu) +: !!(a 0);
  t.out <-- !!(h 2);
  !!(t.out)

(** Evaluate the interpolant's μ-derivative at the same [mu] — call
    {e after} {!interpolate}, which drives the shared [a] coefficients;
    drives and returns the derivative output. *)
let differentiate t (mu : Sim.Value.t) : Sim.Value.t =
  match (t.dh, t.dout) with
  | Some dh, Some dout ->
      let open Sim.Ops in
      let a i = Sim.Sig_array.get t.a i in
      let d i = Sim.Sig_array.get dh i in
      d 0 <-- (cst 3.0 *: !!(a 3) *: mu) +: (cst 2.0 *: !!(a 2));
      d 1 <-- (!!(d 0) *: mu) +: !!(a 1);
      dout <-- !!(d 1);
      !!dout
  | _ -> invalid_arg "Interpolator.differentiate: built without deriv"

(** Pure float reference for tests: interpolate the array [x] (newest
    first, length 4) at [mu]. *)
let reference x mu =
  if Array.length x <> 4 then invalid_arg "Interpolator.reference";
  let a0 = x.(2) in
  let a1 =
    x.(1) -. (x.(3) /. 3.0) -. (x.(2) /. 2.0) -. (x.(0) /. 6.0)
  in
  let a2 = (x.(3) /. 2.0) -. x.(2) +. (x.(1) /. 2.0) in
  let a3 =
    (x.(2) /. 2.0) -. (x.(3) /. 6.0) -. (x.(1) /. 2.0) +. (x.(0) /. 6.0)
  in
  ((((a3 *. mu) +. a2) *. mu) +. a1) *. mu +. a0

(** Float reference of the μ-derivative (same layout as
    {!reference}). *)
let derivative_reference x mu =
  if Array.length x <> 4 then
    invalid_arg "Interpolator.derivative_reference";
  let a1 =
    x.(1) -. (x.(3) /. 3.0) -. (x.(2) /. 2.0) -. (x.(0) /. 6.0)
  in
  let a2 = (x.(3) /. 2.0) -. x.(2) +. (x.(1) /. 2.0) in
  let a3 =
    (x.(2) /. 2.0) -. (x.(3) /. 6.0) -. (x.(1) /. 2.0) +. (x.(0) /. 6.0)
  in
  (((3.0 *. a3 *. mu) +. (2.0 *. a2)) *. mu) +. a1
