(** The closed symbol-timing synchronizer — ROADMAP item 4's flagship
    workload.

    {v
       in ──▶ Interpolator (MF + dMF) ──▶ out (symbol rate)
                 │        ▲ mu                │
                 ▼        │                   ▼
        Timing error detector            decisions
         (Gardner | ML-TED)
                 │ err
                 ▼
            Loop filter ──lferr──▶ NCO ──strobe/mu──▶ (loop)
    v}

    A generalization of {!Timing_recovery} (kept as the paper's §6.1
    golden example, byte-stable): selectable detector (Gardner or the
    decision-directed ML-TED of {!Ml_ted}), M-PAM constellations, and
    any oversampling factor [sps ≥ 2].  Every input sample is shifted
    into the Farrow interpolator; the modulo-1 NCO wraps once per
    symbol, marking the symbol strobe where the interpolant is the
    decision-instant sample.  The Gardner variant additionally watches
    the NCO phase for its half-symbol crossing ([eta] passing ½) and
    interpolates the true mid-symbol sample there, which is what lets it
    run at [sps > 2]; the ML variant instead evaluates the
    interpolator's μ-derivative at the strobe (derivative matched
    filter) and needs no mid sample at all.

    The fixed-point phenomena of the paper live in the same two places
    as in {!Timing_recovery}: the loop-filter integrator's propagated
    range explodes (§5.1 case (b) — refined with [range()] saturation)
    and the NCO phase register's error monitoring diverges (§6.1's
    "D signal inside of NCO" — overruled with [error()]). *)

type ted = Gardner | Ml

let ted_name = function Gardner -> "gardner" | Ml -> "ml"

type t = {
  env : Sim.Env.t;
  ted : ted;
  m : int;  (** PAM-M constellation size *)
  sps : int;
  x : Sim.Signal.t;  (** receiver input sample *)
  interp : Interpolator.t;
  gardner : Gardner_ted.t option;
  mlted : Ml_ted.t option;
  slicer : Slicer.t;  (** output decisions (ML reuses its own) *)
  lf : Loop_filter.t;
  nco : Nco.t;
  mid_mu : Sim.Signal.t;  (** fractional offset of the ½-crossing *)
  out : Sim.Signal.t;  (** symbol-rate soft output *)
  input : Sim.Channel.t;
  output : Sim.Channel.t;  (** soft decision-instant samples (MER) *)
  decisions : Sim.Channel.t option;  (** sliced symbols (SER) *)
  mutable n_strobes : int;
  mutable n_samples : int;
}

(* Loop bandwidth ~0.7% of the symbol rate, damping 1/√2.  Detector
   gains on β = 0.35 raised-cosine PAM are ≈2.5 for Gardner at sps = 2
   and of the same order for the ML-TED's Farrow-derivative form (the
   derivative is taken per sample period, which scales Kd by sps). *)
let default_gains ~ted ~sps =
  let kd =
    match ted with
    | Gardner -> 2.5
    | Ml -> 1.7 *. Float.of_int sps
  in
  Loop_filter.design ~bn:0.007 ~kd ()

let create env ?kp ?ki ?(ted = Ml) ?(m = 2) ?(sps = 2) ?x_dtype ~input
    ~output ?decisions () =
  if sps < 2 then invalid_arg "Synchronizer.create: sps";
  if m < 2 || m mod 2 <> 0 then invalid_arg "Synchronizer.create: bad m";
  let dkp, dki = default_gains ~ted ~sps in
  let kp = Option.value kp ~default:dkp
  and ki = Option.value ki ~default:dki in
  let t =
    {
      env;
      ted;
      m;
      sps;
      x = Sim.Signal.create env ?dtype:x_dtype "in";
      interp = Interpolator.create env ~deriv:(ted = Ml) ();
      gardner =
        (if ted = Gardner then Some (Gardner_ted.create env ()) else None);
      mlted = (if ted = Ml then Some (Ml_ted.create env ~m ()) else None);
      slicer = Slicer.create env "dec";
      lf = Loop_filter.create env ~kp ~ki ();
      nco = Nco.create env ~sps ();
      mid_mu = Sim.Signal.create env "mid_mu";
      out = Sim.Signal.create env "out";
      input;
      output;
      decisions;
      n_strobes = 0;
      n_samples = 0;
    }
  in
  Sim.Env.at_reset env (fun () ->
      t.n_strobes <- 0;
      t.n_samples <- 0);
  t

let env t = t.env
let detector t = t.ted
let constellation t = t.m
let sps t = t.sps
let input_signal t = t.x
let output_signal t = t.out
let interpolator t = t.interp
let loop_filter t = t.lf
let nco t = t.nco

(** The detector's error signal (Gardner's or the ML-TED's). *)
let error_signal t =
  match (t.gardner, t.mlted) with
  | Some g, _ -> Gardner_ted.error g
  | _, Some m -> Ml_ted.error m
  | None, None -> assert false

let all_signals t = Sim.Env.signals t.env

(** One input-sample clock cycle. *)
let step t =
  let open Sim.Ops in
  t.n_samples <- t.n_samples + 1;
  t.x <-- Sim.Value.of_float (Sim.Channel.get t.input);
  Interpolator.shift t.interp !!(t.x);
  let strobed, mu = Nco.step t.nco !!(Loop_filter.output t.lf) in
  (* the registered phase still reads pre-decrement; eta_next is the
     fresh decremented value — together they expose this sample's
     crossings *)
  let eta = !!(Nco.phase t.nco) and eta_next = !!(Nco.next_phase t.nco) in
  (match t.gardner with
  | Some g ->
      (* Gardner's mid-symbol sample: interpolate at the ½-crossing of
         the NCO phase (at sps = 2 this alternates with the strobe; at
         higher sps it picks the right half-symbol instant).  Evaluated
         before the decision-instant interpolant so a same-sample
         ½-then-0 double crossing (W > ½) keeps time order. *)
      let crossed_half = eta >=: cst 0.5 && eta_next <: cst 0.5 in
      if crossed_half then begin
        t.mid_mu <-- (eta -: cst 0.5) /: !!(Nco.control t.nco);
        let y_mid = Interpolator.interpolate t.interp !!(t.mid_mu) in
        Gardner_ted.capture_mid g y_mid
      end
  | None -> ());
  let y = Interpolator.interpolate t.interp mu in
  if strobed then begin
    t.n_strobes <- t.n_strobes + 1;
    t.out <-- y;
    Sim.Channel.put t.output (Sim.Value.fx !!(t.out));
    let err =
      match (t.gardner, t.mlted) with
      | Some g, _ ->
          (match t.decisions with
          | Some dc ->
              let d = Slicer.step_pam t.slicer ~m:t.m !!(t.out) in
              Sim.Channel.put dc (Sim.Value.fx d)
          | None -> ());
          Gardner_ted.detect g y
      | _, Some ml ->
          let ydot = Interpolator.differentiate t.interp mu in
          let e = Ml_ted.detect ml ~y ~ydot in
          (match t.decisions with
          | Some dc ->
              Sim.Channel.put dc (Sim.Value.fx !!(Ml_ted.decision ml))
          | None -> ());
          e
      | None, None -> assert false
    in
    ignore (Loop_filter.step t.lf err)
  end
  else ignore (Loop_filter.hold t.lf)

(** Run [samples] input samples. *)
let run t ~samples = Sim.Engine.run t.env ~cycles:samples (fun _ -> step t)

let strobes t = t.n_strobes
let samples_seen t = t.n_samples

(** Strobe-rate lock metric: |strobes/(samples/sps) − 1| — the relative
    deviation of the recovered symbol rate from 1/sps over the samples
    seen since reset.  A locked loop keeps this within ~1% (to isolate
    the steady state, snapshot {!strobes}/{!samples_seen} before and
    after the window of interest and difference them). *)
let strobe_rate_error t =
  if t.n_samples <= 0 then Float.infinity
  else
    let expected = Float.of_int t.n_samples /. Float.of_int t.sps in
    Float.abs ((Float.of_int t.n_strobes /. expected) -. 1.0)
