(** Decision-directed maximum-likelihood timing-error detector
    (matched-filter derivative form): [err = â_k · y'(μ)] at symbol
    strobes, with the decision sliced on the fixed-point value (§4.2)
    over a PAM-M constellation.  One sample per symbol; extends to
    M-PAM where Gardner does not need to. *)

type t

val create : Sim.Env.t -> ?prefix:string -> ?m:int -> unit -> t

(** The constellation size [m] the detector slices against. *)
val constellation : t -> int

val decision : t -> Sim.Signal.t
val error : t -> Sim.Signal.t
val signals : t -> Sim.Signal.t list

(** Timing error at a symbol strobe from the interpolant [y] and its
    μ-derivative [ydot]; drives and returns [err]. *)
val detect : t -> y:Sim.Value.t -> ydot:Sim.Value.t -> Sim.Value.t

(** Float reference: [−decide_pam ~m y · ydot] (sign matched to the
    decrementing NCO, like {!Gardner_ted}). *)
val reference : m:int -> y:float -> ydot:float -> float
