(** Modulation error ratio / error vector magnitude.

    Constellation-quality metrics for the symbol-synchronizer workload:
    where SQNR compares a fixed-point sequence against its own float
    shadow, MER compares receiver decisions-instant samples against the
    {e ideal transmitted constellation points},

    [MER = 10 log10 (Σ |ref|² / Σ |ref − rx|²)],

    so it folds in residual timing error, ISI, and channel noise besides
    quantization.  EVM is the same ratio the other way up, as an RMS
    fraction of the reference power: [EVM_rms = sqrt(Σ|ref − rx|²/Σ|ref|²)]
    (often quoted in percent). *)

type t = {
  mutable ref_energy : float;
  mutable err_energy : float;
  mutable count : int;
}

let create () = { ref_energy = 0.0; err_energy = 0.0; count = 0 }

let reset t =
  t.ref_energy <- 0.0;
  t.err_energy <- 0.0;
  t.count <- 0

(** Accumulate one (ideal constellation point, received sample) pair.
    Pairs with a non-finite member are skipped, mirroring {!Sqnr.add}:
    a faulted stream must not poison the energy sums. *)
let add t ~reference ~actual =
  if Float.is_finite reference && Float.is_finite actual then begin
    t.ref_energy <- t.ref_energy +. (reference *. reference);
    let e = reference -. actual in
    t.err_energy <- t.err_energy +. (e *. e);
    t.count <- t.count + 1
  end

let count t = t.count
let reference_energy t = t.ref_energy
let error_energy t = t.err_energy

(** MER in dB; [+∞] with zero error energy, [-∞] with error but no
    reference energy. *)
let db t =
  if t.err_energy = 0.0 then Float.infinity
  else if t.ref_energy = 0.0 then Float.neg_infinity
  else 10.0 *. Float.log10 (t.ref_energy /. t.err_energy)

(** RMS error-vector magnitude as a fraction of the reference RMS
    ([nan] with no reference energy).  [evm = 10^(−mer/20)]. *)
let evm_rms t =
  if t.ref_energy = 0.0 then Float.nan
  else sqrt (t.err_energy /. t.ref_energy)

(** MER of two equal-length sequences. *)
let of_arrays ~reference ~actual =
  if Array.length reference <> Array.length actual then
    invalid_arg "Mer.of_arrays: length mismatch";
  let t = create () in
  Array.iteri (fun i r -> add t ~reference:r ~actual:actual.(i)) reference;
  db t

let pp ppf t =
  Format.fprintf ppf "%.1f dB (evm %.2f%%, n=%d)" (db t)
    (100.0 *. evm_rms t) t.count
