(** Consumed/produced difference-error statistics for one signal
    (§4.2, Fig. 3): at every assignment, the error the expression
    inherited from its operands (ε_c) and the error after the
    destination's quantization (ε_p).  The LSB rules read σ(ε_p); the
    consumed-vs-produced comparison flags precision loss. *)

type t

val create : unit -> t
val reset : t -> unit

(** Log one assignment's errors. *)
val record : t -> consumed:float -> produced:float -> unit

(** The consumed-error (ε_c) population. *)
val consumed : t -> Running.t

(** The produced-error (ε_p) population. *)
val produced : t -> Running.t

(** Number of recorded assignments. *)
val count : t -> int

(** Independent duplicate of the current summaries. *)
val copy : t -> t

(** Raw state as a 12-element array — the consumed population's
    {!Running.raw} followed by the produced one's; the exact internal
    fields, so the pair serializes and rebuilds bit-identically. *)
val raw : t -> float array

(** Rebuild from {!raw}'s output, verbatim.  Raises [Invalid_argument]
    on a wrong-length array. *)
val of_raw : float array -> t

(** Combine the summaries of two disjoint sample streams; equals a
    single accumulator over the concatenation up to float rounding.
    Commutative/associative up to rounding — how per-worker monitors of
    a parallel sweep combine deterministically. *)
val merge : t -> t -> t

(** LSB position matching [k·σ] of an error population; [None] when the
    error is identically zero (infinite precision).  When σ = 0 but
    [max_abs > 0] (constant error), the magnitude stands in for σ.  The
    position is clamped to the float exponent range [[-1074, 1023]].

    @raise Invalid_argument when [k] is non-positive, nan or infinite. *)
val precision_of : ?k:float -> Running.t -> int option

val consumed_precision : ?k:float -> t -> int option
val produced_precision : ?k:float -> t -> int option

(** Verdict of the §5.2 consumed-vs-produced comparison. *)
type loss =
  | No_loss
  | Quantization_loss  (** ε_p > ε_c: precision dropped here *)
  | Feedback_gain
      (** ε_p < ε_c — on an [error()]-overruled loop this means the
          injected model under-estimates the real loop error *)

val loss_verdict : ?tolerance:float -> t -> loss
val loss_to_string : loss -> string
val pp : Format.formatter -> t -> unit
