(** Deterministic pseudo-random number generation.

    All stimuli in the library (PAM symbols, AWGN, timing offsets, the
    [error()] overruling noise) come from explicit generator states so
    experiments are exactly reproducible run-to-run — the reproduction
    tables in EXPERIMENTS.md depend on it.

    The core generator is SplitMix64 (Steele, Lea & Flood 2014): a tiny,
    well-distributed 64-bit mixer that needs no warm-up and splits
    cleanly into independent streams. *)

type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create ~seed = { state = Int64.of_int seed }

let copy t = { state = t.state }

(** Rewind the generator to the stream of [create ~seed] — what
    [Sim.Env.reset] uses so every simulation run replays identical
    stimuli/noise. *)
let reseed t ~seed = t.state <- Int64.of_int seed

(* SplitMix64 next: advance by the golden gamma, then mix. *)
let next_int64 t =
  t.state <- Int64.add t.state golden_gamma;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

(** Independent child stream (SplitMix64 split). *)
let split t = { state = next_int64 t }

(** Uniform float in [[0, 1)] using the top 53 bits. *)
let float t =
  let bits = Int64.shift_right_logical (next_int64 t) 11 in
  Int64.to_float bits *. (1.0 /. 9007199254740992.0)

(** Uniform float in [[lo, hi)]. *)
let uniform t ~lo ~hi = lo +. ((hi -. lo) *. float t)

(** Uniform in [[-h, h]] — the paper's [error(h)] injection model. *)
let uniform_sym t h = uniform t ~lo:(-.h) ~hi:h

(** [int t n] — uniform integer in [[0, n)]. *)
let int t n =
  if n <= 0 then invalid_arg "Rng.int: bound must be positive";
  Stdlib.abs (Int64.to_int (next_int64 t)) mod n

let bool t = Int64.logand (next_int64 t) 1L = 1L

(** Standard normal via Box–Muller (polar form avoided for determinism —
    the basic form consumes exactly two uniforms per pair). *)
type gauss_state = { rng : t; mutable spare : float option }

let gauss_state rng = { rng; spare = None }

let gauss g =
  match g.spare with
  | Some z ->
      g.spare <- None;
      z
  | None ->
      let u1 =
        (* avoid log 0 *)
        let u = float g.rng in
        if u <= 0.0 then Float.min_float else u
      in
      let u2 = float g.rng in
      let r = sqrt (-2.0 *. log u1) in
      let theta = 2.0 *. Float.pi *. u2 in
      g.spare <- Some (r *. sin theta);
      r *. cos theta

(** Gaussian with explicit mean and standard deviation. *)
let gauss_ms g ~mean ~sigma = mean +. (sigma *. gauss g)

(** Random PAM-2 symbol (±1) — the binary PAM signalling of both paper
    examples. *)
let pam2 t = if bool t then 1.0 else -1.0

(** Random PAM-M symbol from the alphabet [±1, ±3, … ±(m-1)], normalized
    to peak ±1. *)
let pam t ~m =
  if m < 2 || m mod 2 <> 0 then invalid_arg "Rng.pam: m must be even >= 2";
  let k = int t m in
  let level = Float.of_int ((2 * k) - (m - 1)) in
  level /. Float.of_int (m - 1)
