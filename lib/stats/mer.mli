(** Modulation error ratio / error vector magnitude —
    [MER = 10·log10 (Σ ref² / Σ (ref − rx)²)] between ideal
    constellation points and received decision-instant samples;
    [EVM_rms] is the inverse ratio as an RMS fraction. *)

type t

val create : unit -> t
val reset : t -> unit

(** Accumulate one (ideal point, received sample) pair; non-finite
    pairs are skipped. *)
val add : t -> reference:float -> actual:float -> unit

val count : t -> int
val reference_energy : t -> float
val error_energy : t -> float

(** MER in dB; [+∞] with no error, [-∞] with error but no reference. *)
val db : t -> float

(** RMS error-vector magnitude, as a fraction of the reference RMS. *)
val evm_rms : t -> float

(** MER of two equal-length arrays ([Invalid_argument] otherwise). *)
val of_arrays : reference:float array -> actual:float array -> float

val pp : Format.formatter -> t -> unit
