(** Running (streaming) statistics.

    Welford's online algorithm for mean/variance plus min/max and maximum
    absolute value, in O(1) memory per monitored signal.  This is what
    makes the paper's single-run monitoring practical: "the error
    difference statistics are effectively gathered for each signal in the
    system (no need for huge signal databases)" (§4.2). *)

(* The sample count is stored as a float so the record is all-float:
   OCaml then uses the flat (unboxed) representation and [add] — which
   runs three times per signal assignment in the simulation hot path —
   mutates fields without allocating a box per store.  Counts are exact
   as floats far beyond any realistic run length (< 2^53). *)
type t = {
  mutable count : float;
  mutable mean : float;
  mutable m2 : float;  (** sum of squared deviations from the mean *)
  mutable min : float;
  mutable max : float;
  mutable max_abs : float;
}

let create () =
  {
    count = 0.0;
    mean = 0.0;
    m2 = 0.0;
    min = Float.infinity;
    max = Float.neg_infinity;
    max_abs = 0.0;
  }

let reset t =
  t.count <- 0.0;
  t.mean <- 0.0;
  t.m2 <- 0.0;
  t.min <- Float.infinity;
  t.max <- Float.neg_infinity;
  t.max_abs <- 0.0

let copy t =
  { count = t.count; mean = t.mean; m2 = t.m2; min = t.min; max = t.max;
    max_abs = t.max_abs }

(* Non-finite samples are skipped entirely: a NaN would poison every
   accumulator and a single ±∞ (an injected fault or exploded range)
   would pin min/max and destroy the mean — the monitors must keep
   reporting on the finite part of a faulted stream. *)
let add t v =
  if Float.is_finite v then begin
    t.count <- t.count +. 1.0;
    let delta = v -. t.mean in
    t.mean <- t.mean +. (delta /. t.count);
    t.m2 <- t.m2 +. (delta *. (v -. t.mean));
    if v < t.min then t.min <- v;
    if v > t.max then t.max <- v;
    let a = Float.abs v in
    if a > t.max_abs then t.max_abs <- a
  end

let count t = Float.to_int t.count
let is_empty t = t.count = 0.0
let mean t = if t.count = 0.0 then 0.0 else t.mean
let min_value t = t.min
let max_value t = t.max
let max_abs t = t.max_abs

(** Population variance (the quantization-noise convention: the observed
    samples *are* the population of errors produced by this run). *)
let variance t = if t.count = 0.0 then 0.0 else t.m2 /. t.count

let stddev t = sqrt (variance t)

(** Sample variance (n-1 denominator) for confidence-style uses. *)
let sample_variance t =
  if t.count < 2.0 then 0.0 else t.m2 /. (t.count -. 1.0)

(** Merge two summaries (Chan's parallel update). *)
let merge a b =
  if a.count = 0.0 then copy b
  else if b.count = 0.0 then copy a
  else begin
    let nf = a.count +. b.count in
    let delta = b.mean -. a.mean in
    let mean = a.mean +. (delta *. b.count /. nf) in
    let m2 =
      a.m2 +. b.m2 +. (delta *. delta *. a.count *. b.count /. nf)
    in
    {
      count = nf;
      mean;
      m2;
      min = Float.min a.min b.min;
      max = Float.max a.max b.max;
      max_abs = Float.max a.max_abs b.max_abs;
    }
  end

(** Observed range as an interval-style pair; [None] when nothing was
    recorded. *)
let range t = if t.count = 0.0 then None else Some (t.min, t.max)

(* Raw-state round-trip: the exact internal fields, in a fixed order,
   so an evaluation cache can persist a summary and rebuild it
   bit-identically (merges over rebuilt summaries then reproduce the
   original folds byte-for-byte). *)
let raw t = [| t.count; t.mean; t.m2; t.min; t.max; t.max_abs |]

let of_raw a =
  if Array.length a <> 6 then
    invalid_arg "Stats.Running.of_raw: expected 6 fields";
  {
    count = a.(0);
    mean = a.(1);
    m2 = a.(2);
    min = a.(3);
    max = a.(4);
    max_abs = a.(5);
  }

let pp ppf t =
  if t.count = 0.0 then Format.fprintf ppf "(no samples)"
  else
    Format.fprintf ppf "n=%d min=%.4g max=%.4g mu=%.4g sigma=%.4g m^=%.4g"
      (count t) t.min t.max (mean t) (stddev t) t.max_abs
