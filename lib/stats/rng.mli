(** Deterministic pseudo-random number generation (SplitMix64).

    All stimuli in the library come from explicit generator states so
    experiments are exactly reproducible run-to-run. *)

type t

val create : seed:int -> t
val copy : t -> t

(** Rewind the generator to the stream of [create ~seed] — what
    [Sim.Env.reset] uses so every simulation run replays identical
    stimuli/noise. *)
val reseed : t -> seed:int -> unit

val next_int64 : t -> int64

(** Independent child stream. *)
val split : t -> t

(** Uniform in [[0, 1)] (top 53 bits). *)
val float : t -> float

(** Uniform in [[lo, hi)]. *)
val uniform : t -> lo:float -> hi:float -> float

(** Uniform in [[-h, h]] — the paper's [error(h)] injection model
    (σ = h/√3). *)
val uniform_sym : t -> float -> float

(** Uniform integer in [[0, n)]; raises [Invalid_argument] if [n <= 0]. *)
val int : t -> int -> int

val bool : t -> bool

(** Box–Muller standard-normal generator state. *)
type gauss_state

val gauss_state : t -> gauss_state
val gauss : gauss_state -> float
val gauss_ms : gauss_state -> mean:float -> sigma:float -> float

(** ±1 symbol (binary PAM). *)
val pam2 : t -> float

(** PAM-M symbol from [±1/(m-1) … ±1]; [m] even, [>= 2]. *)
val pam : t -> m:int -> float
