(** Running (streaming) statistics — Welford's online mean/variance plus
    min/max and max-|·|, in O(1) memory per monitored signal.  This is
    what makes the paper's single-run monitoring practical (§4.2: "no
    need for huge signal databases"). *)

type t

val create : unit -> t
val reset : t -> unit
val copy : t -> t

(** Non-finite samples (NaN, ±∞) are ignored — injected faults must
    not poison the accumulators. *)
val add : t -> float -> unit

val count : t -> int
val is_empty : t -> bool
val mean : t -> float

(** [+∞] when empty. *)
val min_value : t -> float

(** [-∞] when empty. *)
val max_value : t -> float

val max_abs : t -> float

(** Population variance (the quantization-noise convention). *)
val variance : t -> float

val stddev : t -> float

(** Sample variance (n−1 denominator). *)
val sample_variance : t -> float

(** Chan's parallel combination. *)
val merge : t -> t -> t

(** Observed [(min, max)]; [None] when empty. *)
val range : t -> (float * float) option

(** The accumulator's raw state as a 6-element array
    [|count; mean; m2; min; max; max_abs|] — the exact internal fields,
    so a summary can be serialized and rebuilt {e bit-identically}
    (the evaluation cache's round-trip contract). *)
val raw : t -> float array

(** Rebuild a summary from {!raw}'s output.  The fields are restored
    verbatim — [of_raw (raw t)] is indistinguishable from [t].  Raises
    [Invalid_argument] on a wrong-length array. *)
val of_raw : float array -> t

val pp : Format.formatter -> t -> unit
