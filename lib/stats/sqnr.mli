(** Signal-to-quantization-noise ratio:
    [10·log10 (Σ ref² / Σ (ref − actual)²)] — the paper's performance
    check on refined outputs (§6). *)

type t

val create : unit -> t
val reset : t -> unit

(** Accumulate one sample pair (pairs with a non-finite member are
    ignored — injected faults must not poison the energy sums). *)
val add : t -> reference:float -> actual:float -> unit

val count : t -> int
val signal_energy : t -> float
val noise_energy : t -> float

(** SQNR in dB; [+∞] with no noise, [-∞] with noise but no signal. *)
val db : t -> float

(** SQNR of two equal-length arrays ([Invalid_argument] otherwise). *)
val of_arrays : reference:float array -> actual:float array -> float

(** Theoretical SQNR of quantizing a full-scale uniform signal: signal
    power [A²/3] vs noise power [q²/12]. *)
val theoretical_uniform_db : amplitude:float -> step:float -> float

val pp : Format.formatter -> t -> unit
