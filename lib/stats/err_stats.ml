(** Consumed/produced difference-error statistics for one signal.

    The paper's error monitoring (§4.2, Fig. 3) runs fixed-point and
    floating-point computations side by side and, at every assignment to
    a signal, records two errors:

    - the {e consumed} error ε_c: difference between the float reference
      and the fixed operand value arriving at the assignment (the error
      the expression inherited from its inputs);
    - the {e produced} error ε_p: difference after the destination type's
      quantization was applied (what downstream consumers will see).

    For each, the mean μ, standard deviation σ and maximum absolute error
    m̂ are kept.  The LSB refinement rules (§5.2) read σ(ε_p) to place the
    LSB, and compare consumed vs produced precision to flag precision
    loss ([p_p > p_c] is expected at a quantizer; [p_p < p_c] on an
    [error()]-overruled feedback signal flags loop instability). *)

type t = { consumed : Running.t; produced : Running.t }

let create () = { consumed = Running.create (); produced = Running.create () }

let reset t =
  Running.reset t.consumed;
  Running.reset t.produced

(** [record t ~consumed ~produced] logs one assignment's errors. *)
let record t ~consumed ~produced =
  Running.add t.consumed consumed;
  Running.add t.produced produced

let consumed t = t.consumed
let produced t = t.produced
let count t = Running.count t.produced

let copy t =
  { consumed = Running.copy t.consumed; produced = Running.copy t.produced }

let raw t = Array.append (Running.raw t.consumed) (Running.raw t.produced)

let of_raw a =
  if Array.length a <> 12 then
    invalid_arg "Stats.Err_stats.of_raw: expected 12 fields";
  {
    consumed = Running.of_raw (Array.sub a 0 6);
    produced = Running.of_raw (Array.sub a 6 6);
  }

(** Combine the summaries of two disjoint sample streams (both sides via
    {!Running.merge}, so the result is what a single accumulator over the
    concatenated streams would hold, up to float rounding).  Commutative
    and associative up to rounding — per-worker error monitors of a
    parallel sweep merge into one deterministic report when folded in a
    fixed order. *)
let merge a b =
  {
    consumed = Running.merge a.consumed b.consumed;
    produced = Running.merge a.produced b.produced;
  }

(** Precision of an error population, expressed as the LSB position [p]
    such that the step [2^p] matches [k * sigma]; [None] when the error
    is identically zero (floating-point signal: infinite precision).

    Edge cases (the §5.2 σ-rule contract):

    - [k <= 0], [k] nan or infinite → [Invalid_argument].  Before this
      guard, [log2] of a non-positive product returned nan, which
      [Float.to_int] silently truncated to 0 — a plausible-looking LSB;
    - σ = 0 with [max_abs > 0] — a {e constant} non-zero error (every
      sample identical, e.g. a pure DC offset from a floor quantizer on
      a constant signal).  The magnitude itself stands in for σ so the
      constant error is still representable at the returned step;
    - the result is clamped to the float exponent range before
      truncation, so denormal-small or overflowing [k·s] products yield
      the extreme finite positions instead of truncating ±infinity. *)
let precision_of ?(k = 1.0) run =
  if not (Float.is_finite k) || k <= 0.0 then
    invalid_arg "Err_stats.precision_of: k must be positive and finite";
  let sigma = Running.stddev run in
  let m = Running.max_abs run in
  if sigma = 0.0 && m = 0.0 then None
  else
    let s = if sigma > 0.0 then sigma else m in
    let p = Float.floor (Float.log2 (k *. s)) in
    (* 2^-1074 (smallest denormal) .. 2^1023 (largest exponent) *)
    Some (Float.to_int (Float.max (-1074.0) (Float.min 1023.0 p)))

let consumed_precision ?k t = precision_of ?k t.consumed
let produced_precision ?k t = precision_of ?k t.produced

(** Verdict of the consumed-vs-produced comparison (§5.2). *)
type loss =
  | No_loss  (** ε_p ≈ ε_c: the assignment adds no quantization noise *)
  | Quantization_loss  (** ε_p > ε_c: precision intentionally dropped here *)
  | Feedback_gain  (** ε_p < ε_c: error shrank — on an [error()]-overruled
                       loop this means the injected model under-estimates
                       the real loop error (instability risk) *)

let loss_verdict ?(tolerance = 1.25) t =
  let sc = Running.stddev t.consumed and sp = Running.stddev t.produced in
  if sp > sc *. tolerance then Quantization_loss
  else if sc > sp *. tolerance then Feedback_gain
  else No_loss

let loss_to_string = function
  | No_loss -> "none"
  | Quantization_loss -> "quantization"
  | Feedback_gain -> "feedback-gain"

let pp ppf t =
  Format.fprintf ppf "consumed: %a@ produced: %a" Running.pp t.consumed
    Running.pp t.produced
