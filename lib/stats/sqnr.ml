(** Signal-to-quantization-noise ratio measurement.

    The paper verifies a refinement's quality with SQNR on selected
    outputs (§6: 39.8 dB with only the input quantized, 39.1 dB after all
    signals were refined — i.e. the full refinement costs well under one
    dB).  SQNR is measured between a reference (float) sequence and a
    quantized (fixed) sequence:

    [SQNR = 10 log10 (Σ ref² / Σ (ref − fix)²)]. *)

type t = {
  mutable signal_energy : float;
  mutable noise_energy : float;
  mutable count : int;
}

let create () = { signal_energy = 0.0; noise_energy = 0.0; count = 0 }

let reset t =
  t.signal_energy <- 0.0;
  t.noise_energy <- 0.0;
  t.count <- 0

(** [add t ~reference ~actual] accumulates one sample pair.  Pairs with
    a non-finite member are skipped: a NaN or injected ±∞ would poison
    both energy sums for good, and SQNR must keep scoring the finite
    part of a faulted stream. *)
let add t ~reference ~actual =
  if Float.is_finite reference && Float.is_finite actual then begin
    t.signal_energy <- t.signal_energy +. (reference *. reference);
    let e = reference -. actual in
    t.noise_energy <- t.noise_energy +. (e *. e);
    t.count <- t.count + 1
  end

let count t = t.count
let signal_energy t = t.signal_energy
let noise_energy t = t.noise_energy

(** SQNR in dB.  [infinity] when no noise was observed; [neg_infinity]
    when there is noise but no signal. *)
let db t =
  if t.noise_energy = 0.0 then Float.infinity
  else if t.signal_energy = 0.0 then Float.neg_infinity
  else 10.0 *. Float.log10 (t.signal_energy /. t.noise_energy)

(** SQNR of two equal-length sequences. *)
let of_arrays ~reference ~actual =
  if Array.length reference <> Array.length actual then
    invalid_arg "Sqnr.of_arrays: length mismatch";
  let t = create () in
  Array.iteri (fun i r -> add t ~reference:r ~actual:actual.(i)) reference;
  db t

(** Theoretical SQNR of quantizing a full-scale uniform signal with [b]
    effective fractional bits relative to unit amplitude:
    ≈ 6.02·b + 4.77 − PAR dB; exposed mostly for tests/benches to
    cross-check measured values. *)
let theoretical_uniform_db ~amplitude ~step =
  if step <= 0.0 || amplitude <= 0.0 then
    invalid_arg "Sqnr.theoretical_uniform_db";
  (* signal power A²/3 (uniform over ±A), noise power q²/12 *)
  10.0 *. Float.log10 (amplitude *. amplitude /. 3.0 /. (step *. step /. 12.0))

let pp ppf t = Format.fprintf ppf "%.1f dB (n=%d)" (db t) t.count
