(* The complex evaluation example (§6.1, Fig. 5): fixed-point refinement
   of a PAM timing-recovery loop (interpolator + Gardner timing-error
   detector + PI loop filter + NCO).

   The §6.1 phenomena to look for in the output:
   - the loop-filter integrator and the NCO phase are the feedback
     signals whose range propagation explodes (the paper's "2 feedback
     signals required saturation due to the MSB explosion");
   - the NCO phase is the signal whose error monitoring diverges and
     needs the error() overruling (the paper's "D signal inside of
     NCO");
   - MSB resolves in 2 iterations, LSB in 1 after the overruling;
   - the non-saturated signals carry a small MSB overhead (bits/signal)
     over the statistic-based estimate (paper: 0.22).

   Run with:  dune exec examples/timing_recovery.exe *)

open Fixrefine

let n_symbols = 4000
let tau = 0.3 (* static timing offset, symbol periods *)

let make_design () =
  let env = Sim.Env.create ~seed:5 () in
  let rng = Stats.Rng.create ~seed:99 in
  let stimulus, sent, n_samples =
    Dsp.Channel_model.timing_offset_pam ~rng ~n_symbols ~tau ()
  in
  let input = Sim.Channel.of_fun "rx" stimulus in
  let output = Sim.Channel.create ~record:true "symbols" in
  let x_dtype = Fixpt.Dtype.make "T_input" ~n:10 ~f:8 () in
  let tr = Dsp.Timing_recovery.create env ~x_dtype ~input ~output () in
  Sim.Signal.range (Dsp.Timing_recovery.input_signal tr) (-1.6) 1.6;
  let design =
    {
      Refine.Flow.env;
      reset =
        (fun () ->
          Sim.Env.reset env;
          Sim.Channel.clear input;
          Sim.Channel.clear output);
      run = (fun () -> Dsp.Timing_recovery.run tr ~samples:n_samples);
    }
  in
  (tr, design, sent, output)

let () =
  let tr, design, sent, output = make_design () in
  let env = design.Refine.Flow.env in
  Format.printf "design declares %d signals subject to refinement@.@."
    (List.length (Sim.Env.signals env));

  (* first monitored run: who explodes? *)
  design.Refine.Flow.reset ();
  design.Refine.Flow.run ();
  Format.printf "=== 1st iteration: MSB explosions ===@.";
  List.iter
    (fun s -> Format.printf "  exploded: %s@." (Sim.Signal.name s))
    (Refine.Msb_rules.exploded_signals env);
  Format.printf "=== 1st iteration: LSB divergences ===@.";
  List.iter
    (fun s -> Format.printf "  diverged: %s@." (Sim.Signal.name s))
    (Refine.Lsb_rules.diverged_signals env);

  (* knowledge-based saturation choices (the paper put 5 signals in
     saturation mode beyond the 2 forced ones): bound the loop's control
     signals at their physical ranges *)
  Sim.Signal.range (Dsp.Nco.mu (Dsp.Timing_recovery.nco tr)) 0.0 1.0;
  Sim.Signal.range (Sim.Env.find_exn env "lf_lferr") (-0.25) 0.25;
  Sim.Signal.range (Sim.Env.find_exn env "ted_err") (-4.0) 4.0;
  Sim.Signal.range (Sim.Env.find_exn env "ip_out") (-2.0) 2.0;
  Sim.Signal.range (Sim.Env.find_exn env "out") (-2.0) 2.0;

  let config =
    {
      Refine.Flow.default_config with
      (* the paper ties the error() overruling of the NCO phase to the
         input precision: LSB −8 here *)
      Refine.Flow.auto_error_lsb = -8;
    }
  in
  let result = Refine.Flow.refine ~config ~sqnr_signal:"out" design in

  Format.printf "@.=== MSB analysis (final) ===@.";
  Refine.Report.print_msb env;
  Format.printf "@.=== LSB analysis (final) ===@.";
  Refine.Report.print_lsb env;

  Format.printf "@.=== flow log ===@.";
  List.iter
    (fun it -> Format.printf "%a@." Refine.Flow.pp_iteration it)
    result.Refine.Flow.iterations;

  (* §6.1 summary numbers *)
  let msbs = result.Refine.Flow.msb_decisions in
  let saturated =
    List.filter
      (fun (d : Refine.Decision.msb) ->
        Fixpt.Overflow_mode.is_saturating d.Refine.Decision.mode)
      msbs
  in
  Format.printf "@.=== Section 6.1 summary ===@.";
  Format.printf "signals: %d, saturated: %d (%s)@." (List.length msbs)
    (List.length saturated)
    (String.concat ", "
       (List.map (fun (d : Refine.Decision.msb) -> d.Refine.Decision.signal)
          saturated));
  Format.printf "MSB overhead of propagation vs statistic: %.2f bits/signal@."
    (Refine.Msb_rules.overhead_bits_per_signal
       (List.filter
          (fun (d : Refine.Decision.msb) ->
            not (Fixpt.Overflow_mode.is_saturating d.Refine.Decision.mode))
          msbs));
  Format.printf "MSB iterations: %d, LSB iterations: %d, runs: %d@."
    result.Refine.Flow.msb_iterations result.Refine.Flow.lsb_iterations
    result.Refine.Flow.simulation_runs;
  (match
     (result.Refine.Flow.sqnr_before_db, result.Refine.Flow.sqnr_after_db)
   with
  | Some b, Some a -> Format.printf "SQNR at out: %.1f dB -> %.1f dB@." b a
  | _ -> ());

  (* does the refined loop still recover timing? *)
  let decided = Array.of_list (Sim.Channel.recorded output) in
  let ser = Dsp.Pam.best_ser ~skip:500 ~sent ~decided () in
  Format.printf "strobes: %d, decisions: %d, SER after lock: %.4f@."
    (Dsp.Timing_recovery.strobes tr)
    (Array.length decided) ser;
  let nco_mu = Sim.Env.find_exn env "nco_mu" in
  Format.printf "NCO mu settled at %.3f (timing offset tau = %.2f)@."
    (Sim.Signal.peek_fx nco_mu) tau
