(* Quickstart: refine a small FIR low-pass from floating point to fixed
   point in one call.

   The program builds a monitored design (a 5-tap FIR fed by noisy PAM
   samples), quantizes only the input — the "partial type definition" —
   and lets the refinement flow derive every other signal type.  It then
   prints the paper-style MSB/LSB analysis tables and the derived types.

   Run with:  dune exec examples/quickstart.exe *)

open Fixrefine

let () =
  (* 1. A simulation environment and a stimulus: ±1 PAM through a short
     ISI channel with noise, 4000 symbols, fully deterministic. *)
  let env = Sim.Env.create ~seed:42 () in
  let rng = Stats.Rng.create ~seed:7 in
  let stimulus, _sent =
    Dsp.Channel_model.isi_awgn ~rng ~n_symbols:4000 ()
  in
  let input = Sim.Channel.of_fun "input" stimulus in

  (* 2. The design: input signal quantized to <8,6,tc> (say, an A/D
     converter), a 5-tap symmetric low-pass, everything else floating. *)
  let x_dtype = Fixpt.Dtype.make "T_in" ~n:8 ~f:6 () in
  let x = Sim.Signal.create env ~dtype:x_dtype "x" in
  Sim.Signal.range x (-1.2) 1.2;
  let fir =
    Dsp.Fir.create env ~coefs:[| 0.1; 0.25; 0.3; 0.25; 0.1 |] ()
  in
  let out = Sim.Signal.create env "out" in
  let step () =
    let open Sim.Ops in
    x <-- Sim.Value.of_float (Sim.Channel.get input);
    out <-- Dsp.Fir.step fir !!x
  in

  (* 3. Hand the design to the refinement flow. *)
  let design =
    {
      Refine.Flow.env;
      reset =
        (fun () ->
          Sim.Env.reset env;
          Sim.Channel.clear input);
      run = (fun () -> Sim.Engine.run env ~cycles:4000 (fun _ -> step ()));
    }
  in
  let result = Refine.Flow.refine ~sqnr_signal:"out" design in

  (* 4. Reports. *)
  Format.printf "=== MSB analysis (Table 1 layout) ===@.";
  Refine.Report.print_msb env;
  Format.printf "@.=== LSB analysis (Table 2 layout) ===@.";
  Refine.Report.print_lsb env;
  Format.printf "@.=== derived types ===@.";
  List.iter
    (fun (name, dt) ->
      Format.printf "  %-8s %s@." name (Fixpt.Dtype.to_string dt))
    result.Refine.Flow.types;
  Format.printf "@.iterations: %d MSB + %d LSB, %d monitored runs@."
    result.Refine.Flow.msb_iterations result.Refine.Flow.lsb_iterations
    result.Refine.Flow.simulation_runs;
  (match
     (result.Refine.Flow.sqnr_before_db, result.Refine.Flow.sqnr_after_db)
   with
  | Some b, Some a ->
      Format.printf "SQNR at out: %.1f dB (input quantized) -> %.1f dB (all signals)@."
        b a
  | _ -> ());
  List.iter
    (fun it -> Format.printf "%a@." Refine.Flow.pp_iteration it)
    result.Refine.Flow.iterations
