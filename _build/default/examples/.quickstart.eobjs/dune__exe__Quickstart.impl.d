examples/quickstart.ml: Dsp Fixpt Fixrefine Format List Refine Sim Stats
