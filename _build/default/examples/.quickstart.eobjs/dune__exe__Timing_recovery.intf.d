examples/timing_recovery.mli:
