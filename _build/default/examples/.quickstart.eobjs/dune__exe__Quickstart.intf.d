examples/quickstart.mli:
