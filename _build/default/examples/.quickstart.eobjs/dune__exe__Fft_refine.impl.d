examples/fft_refine.ml: Array Dsp Fixpt Fixrefine Format List Printf Refine Sim Stats String
