examples/fir_to_vhdl.ml: Dsp Fixpt Fixrefine Format List Refine Sfg Sim Stats String Vhdl
