examples/cordic_refine.ml: Array Dsp Fixpt Fixrefine Float Format Printf Refine Sim Stats
