examples/ddc_frontend.ml: Array Dsp Fixpt Fixrefine Float Format List Refine Sim Stats String
