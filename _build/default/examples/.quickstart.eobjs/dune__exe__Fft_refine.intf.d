examples/fft_refine.mli:
