examples/lms_equalizer.ml: Array Dsp Fixpt Fixrefine Format List Refine Sim Stats String
