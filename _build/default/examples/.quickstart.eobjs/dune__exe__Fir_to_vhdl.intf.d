examples/fir_to_vhdl.mli:
