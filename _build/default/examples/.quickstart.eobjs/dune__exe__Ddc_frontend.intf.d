examples/ddc_frontend.mli:
