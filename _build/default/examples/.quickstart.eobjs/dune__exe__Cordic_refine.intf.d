examples/cordic_refine.mli:
