examples/lms_equalizer.mli:
