examples/timing_recovery.ml: Array Dsp Fixpt Fixrefine Format List Refine Sim Stats String
