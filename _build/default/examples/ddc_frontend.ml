(* Refining a cable-modem-style digital down-converter front end — the
   application class the paper's introduction motivates.

   CORDIC quadrature mixer + two order-2 CIC decimators (R = 4), driven
   by a noisy IF tone.  The refinement flow meets all three §5.1
   archetypes in one design: bounded feed-forward CORDIC stages, the
   modulo-1 NCO phase, and the wrap-by-design CIC integrators.

   Run with:  dune exec examples/ddc_frontend.exe *)

open Fixrefine

let fcw = 0.15625 (* 5/32 cycles/sample *)
let rate = 4
let order = 2
let n_samples = 4096

let () =
  let env = Sim.Env.create ~seed:7 () in
  let rng = Stats.Rng.create ~seed:31 in
  let stim =
    Array.init n_samples (fun n ->
        (0.7 *. cos (2.0 *. Float.pi *. fcw *. Float.of_int n))
        +. (0.05 *. Stats.Rng.uniform rng ~lo:(-1.0) ~hi:1.0))
  in
  let x_dtype = Fixpt.Dtype.make "T_if" ~n:10 ~f:8 () in
  let x = Sim.Signal.create env ~dtype:x_dtype "x" in
  Sim.Signal.range x (-1.0) 1.0;
  let ddc = Dsp.Ddc.create env ~fcw ~rate ~order () in
  (* knowledge-based bounds on the control states *)
  Sim.Signal.range (Dsp.Ddc.phase ddc) 0.0 1.0;
  (* CIC integrators are the one place where no statistical rule gives
     the right answer: their true values ramp without bound, and the
     correct designer type is wrap-around at the Hogenauer width
     (N·log2 R + B_in bits) — modular arithmetic makes the decimated
     comb output exact anyway.  Pre-type them (the "partial type
     definition" includes architecture knowledge, not just inputs). *)
  let mixer_frac = 8 in
  let hog_bits = (order * 2 (* log2 rate *)) + 10 in
  let cic_reg_dt =
    Fixpt.Dtype.make "T_cic" ~n:hog_bits ~f:mixer_frac
      ~overflow:Fixpt.Overflow_mode.Wrap ~round:Fixpt.Round_mode.Floor ()
  in
  let type_cic prefix =
    List.iter
      (fun s -> Sim.Signal.set_dtype s cic_reg_dt)
      (List.filter
         (fun s ->
           let n = Sim.Signal.name s in
           String.length n > String.length prefix
           && String.sub n 0 (String.length prefix) = prefix)
         (Sim.Env.signals env))
  in
  type_cic "ddc_ci_";
  type_cic "ddc_cq_";
  let design =
    {
      Refine.Flow.env;
      reset = (fun () -> Sim.Env.reset env);
      run =
        (fun () ->
          Sim.Engine.run env ~cycles:n_samples (fun c ->
              let open Sim.Ops in
              x <-- Sim.Value.of_float stim.(c);
              ignore (Dsp.Ddc.step ddc !!x)));
    }
  in
  let result = Refine.Flow.refine ~sqnr_signal:"ddc_i" design in

  Format.printf "=== DDC refinement summary ===@.";
  Format.printf "%s@."
    (Refine.Report.summary env result.Refine.Flow.msb_decisions
       result.Refine.Flow.lsb_decisions);
  List.iter
    (fun it -> Format.printf "%a@." Refine.Flow.pp_iteration it)
    result.Refine.Flow.iterations;
  (match
     (result.Refine.Flow.sqnr_before_db, result.Refine.Flow.sqnr_after_db)
   with
  | Some b, Some a -> Format.printf "SQNR at I: %.1f dB -> %.1f dB@." b a
  | _ -> ());

  (* the three §5.1 archetypes, as decided by the rules *)
  Format.printf "@.=== archetype check ===@.";
  let show name =
    let s = Sim.Env.find_exn env name in
    let d = Refine.Msb_rules.decide s in
    Format.printf "  %-14s case=%-16s msb=%d mode=%s@." name
      (Refine.Decision.msb_case_to_string d.Refine.Decision.case)
      d.Refine.Decision.msb_pos
      (Fixpt.Overflow_mode.to_string d.Refine.Decision.mode)
  in
  show "ddc_rot_x[7]" (* bounded feed-forward CORDIC stage *);
  show "ddc_phase" (* modulo-1 NCO phase, knowledge-bounded *);
  show "ddc_ci_i[1]" (* CIC integrator: the wrap-by-design accumulator *);
  Format.printf
    "(the CIC integrator is the one §5.1 case where the right designer@.";
  Format.printf
    " answer is wrap-around at the Hogenauer width — %d bits here)@."
    (Dsp.Cic.hogenauer_bits
       (Dsp.Cic.create (Sim.Env.create ()) ~order ~rate ())
       ~input_bits:10);

  (* does the refined front end still down-convert? *)
  let i_sig = Sim.Env.find_exn env "ddc_i" in
  Format.printf "@.I output settled near %.2f (expected ~%.2f = A/2 * R^N)@."
    (Sim.Signal.peek_fx i_sig)
    (0.7 /. 2.0 *. (Float.of_int rate ** Float.of_int order))
