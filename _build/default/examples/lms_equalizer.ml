(* The paper's motivational example (§3, Fig. 1; Tables 1 and 2): the
   simplified symbol-spaced adaptive LMS equalizer.

   Reproduces the evaluation narrative:
   - iteration 1: range propagation explodes on the feedback signals
     (b, w) — exactly the §4.1 failure the statistic-based monitor is
     blind to;
   - iteration 2: after b.range(-0.2, 0.2), every MSB resolves; the
     range()-annotated signals are decided saturated "(st)";
   - LSB: with the input quantized <7,5,tc>, one pass of error
     monitoring places every LSB; the final all-quantized run confirms
     stability, with the SQNR cost of the refinement printed last.

   Run with:  dune exec examples/lms_equalizer.exe *)

open Fixrefine

let n_symbols = 4000

let make_design () =
  let env = Sim.Env.create ~seed:11 () in
  let rng = Stats.Rng.create ~seed:2024 in
  let stimulus, sent = Dsp.Channel_model.isi_awgn ~rng ~n_symbols () in
  let input = Sim.Channel.of_fun "rx" stimulus in
  let output = Sim.Channel.create ~record:true "decisions" in
  (* partial type definition: only the input is quantized, as an A/D
     converter would be — the paper's <7,5,tc> *)
  let x_dtype = Fixpt.Dtype.make "T_input" ~n:7 ~f:5 () in
  let eq = Dsp.Lms_equalizer.create env ~x_dtype ~input ~output () in
  (* the input range is known from the channel: the paper's
     x.range(-1.5, 1.5) *)
  Sim.Signal.range (Dsp.Lms_equalizer.x eq) (-1.5) 1.5;
  let design =
    {
      Refine.Flow.env;
      reset =
        (fun () ->
          Sim.Env.reset env;
          Sim.Channel.clear input;
          Sim.Channel.clear output);
      run = (fun () -> Dsp.Lms_equalizer.run eq ~cycles:n_symbols);
    }
  in
  (eq, design, sent, output)

let () =
  let eq, design, sent, output = make_design () in
  let env = design.Refine.Flow.env in

  (* --- iteration 1 by hand, to show the explosion (Table 1, top) ---- *)
  design.Refine.Flow.reset ();
  design.Refine.Flow.run ();
  Format.printf "=== Table 1 — MSB analysis, 1st iteration ===@.";
  Refine.Report.print_msb env;
  let exploded = Refine.Msb_rules.exploded_signals env in
  Format.printf "@.exploded by range propagation: %s@.@."
    (String.concat ", " (List.map Sim.Signal.name exploded));

  (* --- the flow drives the rest: annotation, re-run, LSB, types ----- *)
  let result = Refine.Flow.refine ~sqnr_signal:"v[3]" design in

  Format.printf "=== Table 1 — MSB analysis, final iteration ===@.";
  Refine.Report.print_msb env;
  Format.printf "@.=== Table 2 — LSB analysis ===@.";
  Refine.Report.print_lsb env;

  Format.printf "@.=== derived types ===@.";
  List.iter
    (fun (name, dt) ->
      Format.printf "  %-6s %s@." name (Fixpt.Dtype.to_string dt))
    result.Refine.Flow.types;

  Format.printf "@.=== flow log (Fig. 4) ===@.";
  List.iter
    (fun it -> Format.printf "%a@." Refine.Flow.pp_iteration it)
    result.Refine.Flow.iterations;
  Format.printf
    "MSB resolved in %d iterations, LSB in %d; %d monitored runs total@."
    result.Refine.Flow.msb_iterations result.Refine.Flow.lsb_iterations
    result.Refine.Flow.simulation_runs;
  (match
     (result.Refine.Flow.sqnr_before_db, result.Refine.Flow.sqnr_after_db)
   with
  | Some b, Some a ->
      Format.printf
        "SQNR at v[3]: %.1f dB (input quantized only) -> %.1f dB (all quantized)@."
        b a
  | _ -> ());

  (* --- does the refined equalizer still equalize? ------------------- *)
  let decided = Array.of_list (Sim.Channel.recorded output) in
  let ser = Dsp.Pam.best_ser ~skip:100 ~sent ~decided () in
  Format.printf "symbol error rate after refinement: %.4f (%d decisions)@."
    ser (Array.length decided);
  ignore eq
