(* Refining a 16-point radix-2 FFT — the classic bit-growth workload.

   Shows the per-stage MSB profile the refinement derives for the two
   architectures (unscaled butterflies vs 1/2-per-stage scaling) and
   checks the refined transform against the exact DFT.

   Run with:  dune exec examples/fft_refine.exe *)

open Fixrefine

let n = 16
let transforms = 200

let build ~scale =
  let env = Sim.Env.create ~seed:17 () in
  let rng = Stats.Rng.create ~seed:23 in
  let stim =
    Array.init (transforms * n) (fun _ -> Stats.Rng.uniform rng ~lo:(-1.0) ~hi:1.0)
  in
  let in_dtype = Fixpt.Dtype.make "T_in" ~n:10 ~f:8 () in
  let xr = Sim.Sig_array.create env ~dtype:in_dtype "xr" n in
  Sim.Sig_array.range xr (-1.0) 1.0;
  let fft = Dsp.Fft.create env ~scale ~n () in
  let design =
    {
      Refine.Flow.env;
      reset = (fun () -> Sim.Env.reset env);
      run =
        (fun () ->
          Sim.Engine.run env ~cycles:transforms (fun c ->
              let open Sim.Ops in
              let input =
                Array.init n (fun i ->
                    let s = Sim.Sig_array.get xr i in
                    s <-- Sim.Value.of_float stim.((c * n) + i);
                    (!!s, cst 0.0))
              in
              ignore (Dsp.Fft.transform fft input)));
    }
  in
  (env, fft, design, stim)

let stage_profile env fft =
  List.init
    (Dsp.Fft.stage_count fft + 1)
    (fun s ->
      List.fold_left
        (fun acc sg ->
          match Refine.Msb_rules.msb_of_range (Sim.Signal.stat_range sg) with
          | Some m -> max acc m
          | None -> acc)
        min_int
        (Dsp.Fft.stage_signals fft s))
  |> fun l ->
  ignore env;
  l

let () =
  List.iter
    (fun scale ->
      let env, fft, design, stim = build ~scale in
      let probe = Printf.sprintf "fft_re%d[0]" (Dsp.Fft.stage_count fft) in
      let result = Refine.Flow.refine ~sqnr_signal:probe design in
      Format.printf "=== %s ===@."
        (if scale then "1/2-per-stage scaling" else "unscaled butterflies");
      Format.printf "stage MSB profile: %s@."
        (String.concat " -> "
           (List.map string_of_int (stage_profile env fft)));
      let bits =
        List.fold_left (fun a (_, dt) -> a + Fixpt.Dtype.n dt) 0
          result.Refine.Flow.types
      in
      Format.printf "total bits: %d;  monitored runs: %d@." bits
        result.Refine.Flow.simulation_runs;
      (match result.Refine.Flow.sqnr_after_db with
      | Some v -> Format.printf "SQNR at %s: %.1f dB@." probe v
      | None -> ());
      (* accuracy of one refined transform against the exact DFT *)
      let open Sim.Ops in
      let input = Array.init n (fun i -> (cst stim.(i), cst 0.0)) in
      let out = Dsp.Fft.transform fft input in
      let reference =
        Dsp.Fft.reference ~scale (Array.init n (fun i -> (stim.(i), 0.0)))
      in
      let sq = Stats.Sqnr.create () in
      Array.iteri
        (fun k (r, _) ->
          Stats.Sqnr.add sq ~reference:(fst reference.(k))
            ~actual:(Sim.Value.fx r))
        out;
      Format.printf "one refined transform vs exact DFT: %.1f dB@.@."
        (Stats.Sqnr.db sq))
    [ false; true ]
