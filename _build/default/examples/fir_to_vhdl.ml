(* End-to-end back end demo: refine a FIR, then generate synthesizable
   VHDL from the refined signal-flow graph — the design environment's
   "code generator enables translation ... to synthesizable VHDL" (§2).

   The generated entity lands in ./fir_refined.vhd; the program also
   prints it so the structure is visible: one signed vector per signal
   (annotated with its <n,f,tc> format), shifts for binary-point
   alignment, a clocked process for the delay line, and the sat()
   function where the refinement decided saturation mode. *)

open Fixrefine

let coefs = [| 0.0625; 0.25; 0.375; 0.25; 0.0625 |]
let n_samples = 2000

let () =
  (* 1. refine the simulated FIR, input quantized <8,6,tc> *)
  let env = Sim.Env.create ~seed:3 () in
  let rng = Stats.Rng.create ~seed:12 in
  let stimulus, _ = Dsp.Channel_model.isi_awgn ~rng ~n_symbols:n_samples () in
  let input = Sim.Channel.of_fun "input" stimulus in
  let x_dtype = Fixpt.Dtype.make "T_in" ~n:8 ~f:6 () in
  let x = Sim.Signal.create env ~dtype:x_dtype "x" in
  Sim.Signal.range x (-1.2) 1.2;
  let fir = Dsp.Fir.create env ~coefs () in
  let out = Sim.Signal.create env "y" in
  let design =
    {
      Refine.Flow.env;
      reset =
        (fun () ->
          Sim.Env.reset env;
          Sim.Channel.clear input);
      run =
        (fun () ->
          Sim.Engine.run env ~cycles:n_samples (fun _ ->
              let open Sim.Ops in
              x <-- Sim.Value.of_float (Sim.Channel.get input);
              out <-- Dsp.Fir.step fir !!x));
    }
  in
  let result = Refine.Flow.refine ~sqnr_signal:"y" design in
  Format.printf "refined %d signals in %d runs@."
    (List.length result.Refine.Flow.types)
    result.Refine.Flow.simulation_runs;

  (* 2. the same FIR as a flowgraph, formats taken from the refinement *)
  let g = Sfg.Graph.create () in
  let _x_node, y_node = Dsp.Fir.to_sfg g ~coefs ~input_range:(-1.2, 1.2) in
  Sfg.Graph.mark_output g "y" y_node;
  (* graph node names match the simulation's signal names (d[i], c[i],
     v[i]); map the flow's types onto them, defaulting to the input
     format *)
  let formats =
    Vhdl.Of_sfg.formats_of_types
      ~default:(Fixpt.Dtype.fmt x_dtype)
      (result.Refine.Flow.types
      @ List.map (fun n -> (n, x_dtype)) [ "x" ])
  in
  let saturating name =
    List.exists
      (fun (d : Refine.Decision.msb) ->
        String.equal d.Refine.Decision.signal name
        && Fixpt.Overflow_mode.is_saturating d.Refine.Decision.mode)
      result.Refine.Flow.msb_decisions
  in
  let entity =
    Vhdl.Of_sfg.entity ~saturating ~name:"fir_refined" ~formats g
  in
  let text = Vhdl.Emit.entity entity in
  Vhdl.Emit.write_file entity "fir_refined.vhd";
  print_string text;
  Format.printf "@.wrote fir_refined.vhd (%d bytes)@." (String.length text);

  (* 2b. self-checking testbench with golden vectors from the refined
     simulation — run it under GHDL/ModelSim against fir_refined.vhd *)
  let x_sig = Sim.Env.find_exn env "x" in
  let vectors =
    Vhdl.Testbench.capture ~formats
      ~inputs:[ ("x", fun () -> Sim.Signal.peek_fx x_sig) ]
      ~outputs:[ ("y", fun () -> Sim.Signal.peek_fx out) ]
      32
      (fun i ->
        let open Sim.Ops in
        x <-- Sim.Value.of_float (stimulus i);
        out <-- Dsp.Fir.step fir !!x;
        Sim.Env.tick env)
  in
  let tb = Vhdl.Testbench.emit ~latency:0 ~dut:entity ~formats vectors in
  let oc = open_out "fir_refined_tb.vhd" in
  output_string oc tb;
  close_out oc;
  Format.printf "wrote fir_refined_tb.vhd (%d bytes, %d golden vectors)@."
    (String.length tb) (List.length vectors);

  (* 3. quick structural self-check *)
  let contains needle hay =
    let nl = String.length needle and hl = String.length hay in
    let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
    go 0
  in
  assert (String.length text > 500);
  assert
    (List.for_all
       (fun needle -> contains needle text)
       [ "entity fir_refined"; "architecture rtl"; "rising_edge" ])
