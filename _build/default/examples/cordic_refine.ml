(* Refining a CORDIC rotator — a deep feed-forward workload, structurally
   unlike the paper's two feedback examples.

   Interesting refinement behaviour to observe:
   - the z (angle) chain shrinks stage by stage (each iteration halves
     the residual angle), so the MSB analysis awards decreasing integer
     weights down the pipeline;
   - the x/y chains grow by the CORDIC gain (~1.647) and need one extra
     integer bit mid-pipeline;
   - the quantization noise of early stages is amplified by later
     stages, so the σ-rule gives the early stages finer LSBs.

   The example cross-checks the refined rotator against the exact
   rotation and reports the angle-domain accuracy. *)

open Fixrefine

let iters = 12
let n_vectors = 2000

let () =
  let env = Sim.Env.create ~seed:31 () in
  let rng = Stats.Rng.create ~seed:4 in
  let cordic = Dsp.Cordic.create env ~iters () in
  (* inputs: unit-circle vectors with |z| <= pi/2, quantized as if from
     a 12-bit front end *)
  let in_dtype = Fixpt.Dtype.make "T_in" ~n:12 ~f:10 () in
  let xin = Sim.Signal.create env ~dtype:in_dtype "xin" in
  let yin = Sim.Signal.create env ~dtype:in_dtype "yin" in
  let zin = Sim.Signal.create env ~dtype:in_dtype "zin" in
  Sim.Signal.range xin (-1.0) 1.0;
  Sim.Signal.range yin (-1.0) 1.0;
  Sim.Signal.range zin (-1.6) 1.6;
  let stim = Array.init n_vectors (fun _ ->
      let phi = Stats.Rng.uniform rng ~lo:0.0 ~hi:(2.0 *. Float.pi) in
      let z = Stats.Rng.uniform rng ~lo:(-1.5) ~hi:1.5 in
      (cos phi, sin phi, z))
  in
  let step i =
    let open Sim.Ops in
    let x, y, z = stim.(i mod n_vectors) in
    xin <-- Sim.Value.of_float x;
    yin <-- Sim.Value.of_float y;
    zin <-- Sim.Value.of_float z;
    ignore (Dsp.Cordic.rotate cordic ~x:!!xin ~y:!!yin ~z:!!zin)
  in
  let design =
    {
      Refine.Flow.env;
      reset = (fun () -> Sim.Env.reset env);
      run = (fun () -> Sim.Engine.run env ~cycles:n_vectors step);
    }
  in
  let last_x = Printf.sprintf "cor_x[%d]" iters in
  let result = Refine.Flow.refine ~sqnr_signal:last_x design in

  Format.printf "=== CORDIC MSB analysis ===@.";
  Refine.Report.print_msb env;
  Format.printf "@.=== CORDIC LSB analysis ===@.";
  Refine.Report.print_lsb env;
  Format.printf "@.MSB iterations %d, LSB iterations %d, runs %d@."
    result.Refine.Flow.msb_iterations result.Refine.Flow.lsb_iterations
    result.Refine.Flow.simulation_runs;
  (match
     (result.Refine.Flow.sqnr_before_db, result.Refine.Flow.sqnr_after_db)
   with
  | Some b, Some a ->
      Format.printf "SQNR at %s: %.1f dB -> %.1f dB@." last_x b a
  | _ -> ());

  (* accuracy of the refined rotator against the exact rotation *)
  let sq = Stats.Sqnr.create () in
  let max_err = ref 0.0 in
  Array.iteri
    (fun i (x, y, z) ->
      if i < 500 then begin
        let open Sim.Ops in
        xin <-- Sim.Value.of_float x;
        yin <-- Sim.Value.of_float y;
        zin <-- Sim.Value.of_float z;
        let xo, _yo =
          Dsp.Cordic.rotate cordic ~x:!!xin ~y:!!yin ~z:!!zin
        in
        let xr, _yr = Dsp.Cordic.reference ~iters ~x ~y ~z in
        Stats.Sqnr.add sq ~reference:xr ~actual:(Sim.Value.fx xo);
        max_err := Float.max !max_err (Float.abs (xr -. Sim.Value.fx xo))
      end)
    stim;
  Format.printf
    "refined rotator vs exact rotation: %.1f dB, max |err| = %.2e@."
    (Stats.Sqnr.db sq) !max_err
