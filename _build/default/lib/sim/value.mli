(** Simulation values — the central trick of the design environment
    (§4, Fig. 2): every expression carries the fixed-point value [fx]
    (quantization happens on assignment), the float reference [fl]
    (error monitoring), and the propagated range [iv] (quasi-analytical
    MSB estimation).  A fourth, normally dormant component, [node],
    carries graph provenance during {!Record} sessions. *)

type t = { fx : float; fl : float; iv : Interval.t; node : int }

(** Sentinel [node] value (-1): no provenance. *)
val no_node : int

(** A constant known at design time: all components agree. *)
val const : float -> t

(** An external stimulus sample (alias of {!const}). *)
val of_float : float -> t

(** Override the propagated-range component. *)
val with_range : t -> Interval.t -> t

(** Attach graph provenance (recording sessions). *)
val with_node : t -> int -> t

val fx : t -> float
val fl : t -> float
val iv : t -> Interval.t
val node : t -> int

(** Consumed error ε_c = [fl - fx] (§4.2). *)
val error : t -> float

val zero : t
val one : t
val is_finite : t -> bool
val pp : Format.formatter -> t -> unit
