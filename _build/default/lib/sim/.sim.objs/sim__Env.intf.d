lib/sim/env.mli: Fixpt Interval Logs Stats
