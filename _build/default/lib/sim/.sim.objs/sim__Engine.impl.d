lib/sim/engine.ml: Env List
