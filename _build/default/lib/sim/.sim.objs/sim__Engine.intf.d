lib/sim/engine.mli: Env
