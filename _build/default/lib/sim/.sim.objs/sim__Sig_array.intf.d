lib/sim/sig_array.mli: Env Fixpt Signal
