lib/sim/ops.mli: Fixpt Signal Value
