lib/sim/signal.mli: Env Fixpt Format Interval Stats Value
