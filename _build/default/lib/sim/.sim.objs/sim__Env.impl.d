lib/sim/env.ml: Fixpt Interval List Logs Printf Stats String
