lib/sim/signal.ml: Env Fixpt Float Format Hashtbl Int64 Interval Record Sfg Stats Value
