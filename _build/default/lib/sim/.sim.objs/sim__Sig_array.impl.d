lib/sim/sig_array.ml: Array Env Printf Signal
