lib/sim/extract.ml: Env Fun Hashtbl List Record Sfg
