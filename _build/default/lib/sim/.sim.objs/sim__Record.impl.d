lib/sim/record.ml: Hashtbl List Printf Sfg Value
