lib/sim/record.mli: Hashtbl Sfg Value
