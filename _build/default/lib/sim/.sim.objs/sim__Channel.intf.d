lib/sim/channel.mli:
