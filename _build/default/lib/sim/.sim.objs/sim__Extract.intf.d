lib/sim/extract.mli: Env Sfg
