lib/sim/ops.ml: Fixpt Float Interval Record Sfg Signal Value
