lib/sim/value.mli: Format Interval
