lib/sim/vcd.ml: Buffer Char Fun List Printf Signal String
