lib/sim/channel.ml: List Queue
