lib/sim/vcd.mli: Signal
