lib/sim/value.ml: Float Format Interval
