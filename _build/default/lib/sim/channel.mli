(** Communication channels — the paper's [get]/[put] primitives: FIFOs
    of samples between processors, optionally backed by a stimulus
    generator (source) or recording every write (sink). *)

type t

exception Empty of string

val create : ?record:bool -> string -> t

(** Source channel: [get] returns [f 0], [f 1], … *)
val of_fun : string -> (int -> float) -> t

val name : t -> string

(** Consume the next sample (pulls from the producer if the FIFO is
    empty); raises {!Empty} on an unbacked empty channel. *)
val get : t -> float

val put : t -> float -> unit
val length : t -> int
val is_empty : t -> bool

(** All recorded samples in emission order (needs [~record:true]). *)
val recorded : t -> float list

(** Drop queued samples, recorded history, and producer position. *)
val clear : t -> unit
