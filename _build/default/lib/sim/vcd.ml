(** Value-change-dump (VCD, IEEE 1364) trace writer.

    Dumps the fixed-point values of selected signals as [real] variables
    (plus, for typed signals, the overflow count), so refinement sessions
    can be inspected in any waveform viewer — the kind of observability
    the paper's design environment provides around its simulation
    engine. *)

type probe = { signal : Signal.t; code : string }

type t = {
  out : Buffer.t;
  mutable probes : probe list;
  mutable header_done : bool;
  mutable last_time : int;
}

let create () =
  { out = Buffer.create 4096; probes = []; header_done = false; last_time = -1 }

(* VCD identifier codes: printable ASCII 33..126, shortest first. *)
let code_of_index i =
  let base = 94 and first = 33 in
  let rec go i acc =
    let c = Char.chr (first + (i mod base)) in
    let acc = String.make 1 c ^ acc in
    if i < base then acc else go ((i / base) - 1) acc
  in
  go i ""

(** Register a signal to be traced.  Must precede {!start}. *)
let probe t s =
  if t.header_done then invalid_arg "Vcd.probe: header already emitted";
  let code = code_of_index (List.length t.probes) in
  t.probes <- t.probes @ [ { signal = s; code } ]

let sanitize name =
  String.map (fun c -> match c with '[' | ']' | ' ' -> '_' | c -> c) name

(** Emit the VCD header.  [~date] is an arbitrary identification string
    (no wall-clock reads: reproducible output). *)
let start ?(date = "fixrefine simulation") t =
  if t.header_done then invalid_arg "Vcd.start: already started";
  Buffer.add_string t.out (Printf.sprintf "$date %s $end\n" date);
  Buffer.add_string t.out "$version fixrefine vcd writer $end\n";
  Buffer.add_string t.out "$timescale 1 ns $end\n";
  Buffer.add_string t.out "$scope module design $end\n";
  List.iter
    (fun p ->
      Buffer.add_string t.out
        (Printf.sprintf "$var real 64 %s %s $end\n" p.code
           (sanitize (Signal.name p.signal))))
    t.probes;
  Buffer.add_string t.out "$upscope $end\n$enddefinitions $end\n";
  t.header_done <- true

(** Record the current value of every probe at simulation time [time]
    (monotonically increasing). *)
let sample t ~time =
  if not t.header_done then invalid_arg "Vcd.sample: call start first";
  if time <= t.last_time then ()
  else begin
    Buffer.add_string t.out (Printf.sprintf "#%d\n" time);
    List.iter
      (fun p ->
        Buffer.add_string t.out
          (Printf.sprintf "r%.17g %s\n" (Signal.peek_fx p.signal) p.code))
      t.probes;
    t.last_time <- time
  end

let contents t = Buffer.contents t.out

let write_file t path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (contents t))
