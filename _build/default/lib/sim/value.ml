(** Simulation values.

    The central trick of the design environment (§4, Fig. 2): every
    expression carries {e three} parallel computations at once —

    - [fx]: the fixed-point value (held as a float; quantization happens
      on signal assignment, §2.2);
    - [fl]: the reference floating-point value, used for error
      monitoring;
    - [iv]: the propagated range, used for quasi-analytical MSB
      estimation.

    The overloaded operators in {!Ops} combine all three components, so
    one simulation run simultaneously produces the fixed-point behaviour,
    the float reference, range statistics and error statistics.

    A fourth, normally dormant component is [node]: when a {!Record}
    session is active (the §4.1 "Analytical" technique — automatic
    signal-flowgraph extraction), it carries the id of the graph node
    that produced this value; [no_node] (-1) otherwise. *)

type t = { fx : float; fl : float; iv : Interval.t; node : int }

let no_node = -1

(** A constant known at "design time": all three components agree. *)
let const c = { fx = c; fl = c; iv = Interval.of_point c; node = no_node }

(** An external stimulus sample: fixed and float agree (the error enters
    only at the first quantizing assignment); the propagated range is the
    single point unless the receiving signal declares a wider range. *)
let of_float = const

(** [with_range v iv] overrides the propagated-range component — how a
    signal's [range()] annotation enters expressions. *)
let with_range v iv = { v with iv }

(** [with_node v id] attaches graph provenance (recording sessions). *)
let with_node v node = { v with node }

let fx t = t.fx
let fl t = t.fl
let iv t = t.iv
let node t = t.node

(** Consumed error ε_c = float reference − fixed value (§4.2). *)
let error t = t.fl -. t.fx

let zero = const 0.0
let one = const 1.0

let is_finite t = Float.is_finite t.fx && Float.is_finite t.fl

let pp ppf t =
  Format.fprintf ppf "{fx=%g; fl=%g; iv=%s}" t.fx t.fl (Interval.to_string t.iv)
