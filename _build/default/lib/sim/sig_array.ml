(** Signal arrays — the paper's [sigarray] and [regarray] (§2.3).

    An array of independently monitored signals sharing a base name and
    (optionally) a common dtype; elements are reported as [name[i]].
    The delay lines and FIR accumulator chains of the examples are
    declared with these. *)

type t = { base : string; elems : Signal.t array }

let make_named env ~kind ?dtype base n =
  if n < 1 then invalid_arg "Sig_array: length must be >= 1";
  let mk i =
    let name = Printf.sprintf "%s[%d]" base i in
    match kind with
    | Env.Comb -> Signal.create env ?dtype name
    | Env.Registered -> Signal.create_reg env ?dtype name
  in
  { base; elems = Array.init n mk }

(** [create env name n] — array of combinational signals ([sigarray]). *)
let create env ?dtype name n = make_named env ~kind:Env.Comb ?dtype name n

(** [create_reg env name n] — array of registered signals ([regarray]). *)
let create_reg env ?dtype name n =
  make_named env ~kind:Env.Registered ?dtype name n

let base_name t = t.base
let length t = Array.length t.elems

(** [get t i] — the element signal (monitored operations go through
    {!Signal} / {!Ops} as usual). *)
let get t i =
  if i < 0 || i >= Array.length t.elems then
    invalid_arg (Printf.sprintf "Sig_array.get: %s[%d] out of bounds" t.base i);
  t.elems.(i)

(** Infix-friendly alias: [arr.%(i)]. *)
let ( .%() ) = get

let iter f t = Array.iter f t.elems
let iteri f t = Array.iteri f t.elems
let to_list t = Array.to_list t.elems

(** Apply a dtype to every element. *)
let set_dtype t dt = Array.iter (fun s -> Signal.set_dtype s dt) t.elems

(** Annotate every element with the same explicit range. *)
let range t lo hi = Array.iter (fun s -> Signal.range s lo hi) t.elems

(** Initialize elements from a float array (coefficient loading). *)
let init_values t values =
  if Array.length values <> Array.length t.elems then
    invalid_arg "Sig_array.init_values: length mismatch";
  Array.iteri (fun i v -> Signal.init t.elems.(i) v) values
