(** Simulation environment: the signal registry and the clock.

    An [Env.t] plays the role of the paper's simulation engine (§2): it
    owns every signal object of a design, the deterministic noise source
    used by [error()] overruling, the clock that commits registered
    signals, and the design-wide overflow policy.

    The full mutable state of a signal lives here (type {!entry});
    {!Signal} provides the user-facing operations over entries.  Keeping
    the state in the registry module avoids a dependency cycle and lets
    the refinement flow iterate over "all signals of the design" — the
    unit the paper's tables are reports over. *)

type kind =
  | Comb  (** the paper's [sig]: assignment takes effect immediately *)
  | Registered
      (** the paper's [reg]: assignment is staged and committed by the
          next clock tick; reads see the pre-tick value *)

(** What simulation does when an [Error]-mode type overflows (§2.1: "The
    latter produces an error message during simulation in case of
    overflow"). *)
type overflow_policy =
  | Count  (** record silently; reports show the count *)
  | Warn  (** log a warning (first few per signal) and record *)
  | Raise  (** abort simulation with {!Overflow} *)

exception Overflow of { signal : string; value : float; time : int }

type entry = {
  env : t;  (** owning environment (for clocking, RNG, overflow policy) *)
  name : string;
  id : int;
  kind : kind;
  mutable dtype : Fixpt.Dtype.t option;  (** [None] = floating-point *)
  (* current committed values *)
  mutable fx : float;
  mutable fl : float;
  (* staged values for registered signals *)
  mutable next_fx : float;
  mutable next_fl : float;
  mutable staged : bool;
  (* monitoring state *)
  range_stat : Stats.Running.t;  (** observed ideal values (stat-based) *)
  mutable range_prop : Interval.t;  (** accumulated propagated range *)
  mutable explicit_range : Interval.t option;  (** [range()] annotation *)
  mutable error_inject : float option;
      (** [error(h)] annotation: produced error overruled by U(−h, h) *)
  err : Stats.Err_stats.t;
  mutable grid_lsb : int option;
      (** finest LSB position needed to represent the assigned ideal
          values exactly ([None] until a nonzero value is seen) *)
  mutable n_assign : int;
  mutable n_access : int;
  mutable n_overflow : int;
  mutable last_overflow : float option;  (** raw value of last overflow *)
}

and t = {
  mutable entries : entry list;  (** newest first *)
  mutable n_entries : int;
  mutable time : int;
  rng : Stats.Rng.t;
  mutable policy : overflow_policy;
  mutable warned : int;  (** warnings already emitted under [Warn] *)
  mutable reset_hooks : (unit -> unit) list;
      (** re-run after every [reset], in registration order: the
          "constructor initialization" of the paper's listings
          (coefficient loading etc.) that every fresh simulation
          re-executes *)
}

let src = Logs.Src.create "fixrefine.sim" ~doc:"fixed-point simulation engine"

module Log = (val Logs.src_log src)

let create ?(seed = 0x51CA5) ?(policy = Count) () =
  {
    entries = [];
    n_entries = 0;
    time = 0;
    rng = Stats.Rng.create ~seed;
    policy;
    warned = 0;
    reset_hooks = [];
  }

(** Register an initialization action re-run after every {!reset}
    (and immediately, if [now], the default). *)
let at_reset ?(now = true) t f =
  t.reset_hooks <- t.reset_hooks @ [ f ];
  if now then f ()

let time t = t.time
let rng t = t.rng
let set_policy t p = t.policy <- p

let register t ~name ~kind ~dtype =
  let e =
    {
      env = t;
      name;
      id = t.n_entries;
      kind;
      dtype;
      fx = 0.0;
      fl = 0.0;
      next_fx = 0.0;
      next_fl = 0.0;
      staged = false;
      range_stat = Stats.Running.create ();
      range_prop = Interval.empty;
      explicit_range = None;
      error_inject = None;
      err = Stats.Err_stats.create ();
      grid_lsb = None;
      n_assign = 0;
      n_access = 0;
      n_overflow = 0;
      last_overflow = None;
    }
  in
  t.entries <- e :: t.entries;
  t.n_entries <- t.n_entries + 1;
  e

(** Signals in declaration order — the order the paper's tables use. *)
let signals t = List.rev t.entries

let find t name = List.find_opt (fun e -> String.equal e.name name) t.entries

let find_exn t name =
  match find t name with
  | Some e -> e
  | None -> invalid_arg (Printf.sprintf "Env.find_exn: no signal %S" name)

let record_overflow t e raw =
  e.n_overflow <- e.n_overflow + 1;
  e.last_overflow <- Some raw;
  match t.policy with
  | Count -> ()
  | Warn ->
      if t.warned < 20 then begin
        t.warned <- t.warned + 1;
        Log.warn (fun m ->
            m "overflow on %s at t=%d: %g exceeds %s" e.name t.time raw
              (match e.dtype with
              | Some dt -> Fixpt.Dtype.to_string dt
              | None -> "<float>"))
      end
  | Raise -> raise (Overflow { signal = e.name; value = raw; time = t.time })

(** Commit all staged register writes — one clock tick.  Registered
    signals without a staged write hold their value. *)
let tick t =
  List.iter
    (fun e ->
      if e.staged then begin
        e.fx <- e.next_fx;
        e.fl <- e.next_fl;
        e.staged <- false
      end)
    t.entries;
  t.time <- t.time + 1

(** Reset dynamic state (values, staging, time) but keep declarations and
    annotations; [keep_monitors:false] (default) also clears the
    monitoring statistics.  Used between refinement iterations. *)
let reset ?(keep_monitors = false) t =
  List.iter
    (fun e ->
      e.fx <- 0.0;
      e.fl <- 0.0;
      e.next_fx <- 0.0;
      e.next_fl <- 0.0;
      e.staged <- false;
      if not keep_monitors then begin
        Stats.Running.reset e.range_stat;
        e.range_prop <- Interval.empty;
        Stats.Err_stats.reset e.err;
        e.grid_lsb <- None;
        e.n_assign <- 0;
        e.n_access <- 0;
        e.n_overflow <- 0;
        e.last_overflow <- None
      end)
    t.entries;
  t.time <- 0;
  t.warned <- 0;
  List.iter (fun f -> f ()) t.reset_hooks
