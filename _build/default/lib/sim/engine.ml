(** Clock-true execution of processor behaviours (§2).

    A design is a set of processors, each a step function executed once
    per clock cycle; after all processors of a cycle have run, the clock
    commits the registered signals ([Env.tick]).  This mirrors the
    paper's "simulation engine performs processor execution and their
    communication".

    The single-processor case — both paper examples — is just
    {!run}. *)

type processor = { name : string; step : int -> unit }

let processor name step = { name; step }

type t = { env : Env.t; mutable processors : processor list }

let create env = { env; processors = [] }

let add t p = t.processors <- t.processors @ [ p ]

let env t = t.env

(** Execute [cycles] clock cycles: every processor's [step t] in
    registration order, then one clock tick. *)
let run_processors t ~cycles =
  for cycle = 0 to cycles - 1 do
    List.iter (fun p -> p.step cycle) t.processors;
    Env.tick t.env
  done

(** [run env ~cycles step] — single-processor shorthand: [step cycle]
    then a clock tick, [cycles] times. *)
let run env ~cycles step =
  for cycle = 0 to cycles - 1 do
    step cycle;
    Env.tick env
  done

(** [run_until env step] — run until [step] returns [false] (checked
    after the tick); returns the number of executed cycles.  [~max]
    bounds runaway loops. *)
let run_until ?(max = 1_000_000) env step =
  let rec go cycle =
    if cycle >= max then cycle
    else begin
      let continue = step cycle in
      Env.tick env;
      if continue then go (cycle + 1) else cycle + 1
    end
  in
  go 0
