(** Signal-flow-graph node operations — the IR of the paper's analytical
    MSB technique (§4.1): a small dataflow language covering the
    operators the design environment overloads.  [Delay] is the unit
    register that creates feedback loops (and range explosions). *)

type op =
  | Input of Interval.t  (** external input with its declared range *)
  | Const of float
  | Add
  | Sub
  | Mul
  | Div
  | Neg
  | Abs
  | Min
  | Max
  | Shift of int  (** multiply by [2^k] *)
  | Delay of float  (** unit delay (register) with initial value *)
  | Quantize of Fixpt.Dtype.t
      (** explicit quantization point: clamps the range if the type
          saturates; adds quantization noise *)
  | Saturate of Interval.t  (** explicit clamp (a [range()] annotation) *)
  | Select  (** (cond, a, b): data-dependent choice — range join *)
  | Alias
      (** identity; names an existing expression node after the signal
          it drives (used by the automatic graph extraction) *)

val arity : op -> int
val op_name : op -> string

(** Output at cycle [t] depends on cycle [t-1] (loop-breaking point). *)
val is_stateful : op -> bool

type t = {
  id : int;
  name : string;  (** the signal this node drives *)
  op : op;
  inputs : int list;  (** node ids, length = arity *)
}

(** Interval transfer function — the same propagation table as the
    simulation's operators (§4.1).  Raises [Invalid_argument] on an
    arity mismatch. *)
val eval_range : op -> Interval.t list -> Interval.t

(** Numeric transfer function (used by the graph interpreter).  [state]
    is the register content for [Delay]; [Input] has no intrinsic value
    and raises. *)
val eval_value : op -> float list -> state:float -> float
