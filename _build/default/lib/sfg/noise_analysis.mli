(** Analytical quantization-noise propagation — the static counterpart
    of error monitoring and the engine of the interpolative-style
    baseline (paper reference [3]).  [Quantize] nodes inject uniform-
    model noise; moments propagate under independence assumptions with
    range-based magnitude bounds at multiplications; loops iterate to a
    fixpoint (noise gain ≥ 1 diverges and is reported — the analytical
    mirror of §4.2's divergence). *)

type moments = { mean : float; var : float }

val zero_m : moments

type result = {
  noise : (string * moments) array;  (** per node, node order *)
  diverged : string list;
  iterations : int;
}

(** Single-node transfer (exposed for {!Wordlength}'s gain probing). *)
val transfer :
  (string * Interval.t) array ->
  Node.t ->
  moments list ->
  input_noise:(string -> moments) ->
  moments

val default_max_iter : int

(** [ranges] — a completed {!Range_analysis.result} (multiplication
    bounds); [input_noise] — source error moments per input node
    (default: noiseless). *)
val run :
  ?max_iter:int ->
  ?input_noise:(string -> moments) ->
  Graph.t ->
  ranges:Range_analysis.result ->
  result

val moments_of : result -> string -> moments option
val sigma_of : result -> string -> float option
val pp : Format.formatter -> result -> unit
