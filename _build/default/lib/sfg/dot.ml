(** Graphviz export of signal-flow graphs.

    Renders the flowgraph (optionally annotated with analysis results)
    for documentation and debugging — the visual the paper draws by hand
    in Figs. 1 and 5. *)

(* quote-escape only: labels legitimately contain \n line breaks added
   by the composers below *)
let escape s =
  String.concat ""
    (List.map
       (fun c -> match c with '"' -> "\\\"" | c -> String.make 1 c)
       (List.init (String.length s) (String.get s)))

let node_label ?ranges ?noise (n : Node.t) =
  let base = Printf.sprintf "%s\\n%s" n.Node.name (Node.op_name n.Node.op) in
  let with_range =
    match ranges with
    | None -> base
    | Some r -> (
        match Range_analysis.range_of r n.Node.name with
        | Some iv -> Printf.sprintf "%s\\n%s" base (Interval.to_string iv)
        | None -> base)
  in
  match noise with
  | None -> with_range
  | Some nz -> (
      match Noise_analysis.sigma_of nz n.Node.name with
      | Some s when s > 0.0 -> Printf.sprintf "%s\\nσ=%.2g" with_range s
      | _ -> with_range)

let node_shape (n : Node.t) =
  match n.Node.op with
  | Node.Input _ -> "invtrapezium"
  | Node.Const _ -> "plaintext"
  | Node.Delay _ -> "box"
  | Node.Quantize _ | Node.Saturate _ -> "diamond"
  | _ -> "ellipse"

(** [render g] — the graph in DOT syntax.  [?ranges]/[?noise] annotate
    nodes with analysis results. *)
let render ?ranges ?noise g =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "digraph sfg {\n  rankdir=LR;\n";
  List.iter
    (fun (n : Node.t) ->
      Buffer.add_string buf
        (Printf.sprintf "  n%d [label=\"%s\", shape=%s];\n" n.Node.id
           (escape (node_label ?ranges ?noise n))
           (node_shape n)))
    (Graph.nodes g);
  List.iter
    (fun (n : Node.t) ->
      List.iter
        (fun src ->
          let style =
            match n.Node.op with
            | Node.Delay _ -> " [style=dashed]"
            | _ -> ""
          in
          Buffer.add_string buf
            (Printf.sprintf "  n%d -> n%d%s;\n" src n.Node.id style))
        n.Node.inputs)
    (Graph.nodes g);
  List.iter
    (fun (name, id) ->
      Buffer.add_string buf
        (Printf.sprintf
           "  out_%s [label=\"%s\", shape=trapezium];\n  n%d -> out_%s;\n"
           (escape name) (escape name) id (escape name)))
    (Graph.outputs g);
  Buffer.add_string buf "}\n";
  Buffer.contents buf

let write_file g path ?ranges ?noise () =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (render ?ranges ?noise g))
