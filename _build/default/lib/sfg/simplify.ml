(** Flowgraph simplification: constant folding, common-subexpression
    elimination and dead-node removal.

    Automatically extracted graphs ({!Sim.Record}) carry one literal
    node per operator use and an [Alias] per signal assignment; this
    pass cleans them up before analysis display or VHDL emission.

    Passes (all semantics-preserving for execution {e and} for the range
    analysis):
    - {e constant folding}: a pure operator over [Const] inputs becomes
      a [Const] (including [Quantize] — a cast of a constant).
      [Select] is {e not} folded even under a constant condition: its
      range semantics is the join of both branches and folding would
      narrow the analysis unsoundly;
    - {e CSE}: structurally identical pure nodes (same operation, same
      inputs) are merged — duplicated literals collapse first;
    - {e dead-node elimination} (only when the graph has marked
      outputs): nodes that reach no output are dropped.  [Delay] nodes
      are kept alive by reachability through their feedback arcs.

    [keep] protects named nodes (signal names used by reports) from
    elimination and from being folded away. *)

type stats = {
  before : int;
  after : int;
  folded : int;
  merged : int;
  dropped : int;
}

let foldable (op : Node.op) =
  match op with
  | Node.Add | Node.Sub | Node.Mul | Node.Div | Node.Neg | Node.Abs
  | Node.Min | Node.Max | Node.Shift _ | Node.Quantize _ | Node.Saturate _
  | Node.Alias ->
      true
  | Node.Input _ | Node.Const _ | Node.Delay _ | Node.Select -> false

(* pure nodes are CSE candidates; delays and inputs are not *)
let pure (op : Node.op) =
  match op with Node.Delay _ | Node.Input _ -> false | _ -> true

let run_once ?(keep = fun (_ : string) -> false) (g : Graph.t) =
  Graph.validate_exn g;
  let nodes = Array.of_list (Graph.nodes g) in
  let n = Array.length nodes in
  let before = n in
  (* --- liveness (backwards from outputs; everything live if none) --- *)
  let outputs = Graph.outputs g in
  let live = Array.make n (outputs = []) in
  let rec mark i =
    if not live.(i) then begin
      live.(i) <- true;
      List.iter mark nodes.(i).Node.inputs
    end
  in
  List.iter (fun (_, id) -> mark id) outputs;
  Array.iteri
    (fun i (nd : Node.t) -> if keep nd.Node.name && not live.(i) then mark i)
    nodes;
  (* delays reachable from live nodes keep their sources alive *)
  let changed = ref true in
  while !changed do
    changed := false;
    Array.iteri
      (fun i (nd : Node.t) ->
        if live.(i) then
          List.iter
            (fun j ->
              if not live.(j) then begin
                mark j;
                changed := true
              end)
            nd.Node.inputs)
      nodes
  done;
  let dropped = Array.fold_left (fun a l -> if l then a else a + 1) 0 live in
  (* --- rebuild with folding + CSE ----------------------------------- *)
  let out = Graph.create () in
  let remap = Array.make n (-1) in
  let const_value = Hashtbl.create 32 in
  (* new id -> const value *)
  let const_cache = Hashtbl.create 32 in
  (* float -> new id *)
  let cse : (string, int) Hashtbl.t = Hashtbl.create 64 in
  let folded = ref 0 and merged = ref 0 in
  let delay_fixups = ref [] in
  let key op inputs =
    Printf.sprintf "%s|%s" (Node.op_name op)
      (String.concat "," (List.map string_of_int inputs))
  in
  let intern_const name c =
    match Hashtbl.find_opt const_cache c with
    | Some id ->
        incr merged;
        id
    | None ->
        let id = Graph.const out ~name c in
        Hashtbl.replace const_cache c id;
        Hashtbl.replace const_value id c;
        id
  in
  Array.iteri
    (fun i (nd : Node.t) ->
      if live.(i) then begin
        let name = nd.Node.name in
        match nd.Node.op with
        | Node.Const c -> remap.(i) <- intern_const name c
        | Node.Input _ ->
            remap.(i) <-
              Graph.fresh out ~name ~op:nd.Node.op ~inputs:[]
        | Node.Delay init ->
            (* create as pending; connect after all nodes exist *)
            let d = Graph.delay out ~init name in
            remap.(i) <- d;
            delay_fixups := (d, List.hd nd.Node.inputs) :: !delay_fixups
        | op ->
            let inputs = List.map (fun j -> remap.(j)) nd.Node.inputs in
            if List.exists (fun j -> j < 0) inputs then
              (* an input precedes its producer only through a delay
                 back-arc, which non-delay nodes never have *)
              invalid_arg "Simplify.run: malformed graph order"
            else
              let all_const =
                List.for_all (fun j -> Hashtbl.mem const_value j) inputs
              in
              if foldable op && all_const && not (keep name) then begin
                let args =
                  List.map (fun j -> Hashtbl.find const_value j) inputs
                in
                let v = Node.eval_value op args ~state:0.0 in
                incr folded;
                remap.(i) <- intern_const name v
              end
              else begin
                let k = key op inputs in
                match (if pure op then Hashtbl.find_opt cse k else None) with
                | Some id when not (keep name) ->
                    incr merged;
                    remap.(i) <- id
                | _ ->
                    let id = Graph.fresh out ~name ~op ~inputs in
                    if pure op then Hashtbl.replace cse k id;
                    remap.(i) <- id
              end
      end)
    nodes;
  List.iter
    (fun (d, old_src) -> Graph.connect_delay out d remap.(old_src))
    !delay_fixups;
  List.iter
    (fun (oname, oid) -> Graph.mark_output out oname remap.(oid))
    outputs;
  ( out,
    {
      before;
      after = Graph.node_count out;
      folded = !folded;
      merged = !merged;
      dropped;
    } )

(** Iterate {!run_once} to a fixpoint: folding creates newly-dead
    constants that the next sweep's liveness removes. *)
let run ?keep (g : Graph.t) =
  let rec go g acc n =
    let g', st = run_once ?keep g in
    let acc =
      {
        before = acc.before;
        after = st.after;
        folded = acc.folded + st.folded;
        merged = acc.merged + st.merged;
        dropped = acc.dropped + st.dropped;
      }
    in
    if st.after < st.before && n < 4 then go g' acc (n + 1) else (g', acc)
  in
  let g1, st1 = run_once ?keep g in
  go g1
    { before = st1.before; after = st1.after; folded = st1.folded;
      merged = st1.merged; dropped = st1.dropped }
    0
