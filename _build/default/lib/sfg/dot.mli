(** Graphviz export of signal-flow graphs, optionally annotated with
    analysis results. *)

val render :
  ?ranges:Range_analysis.result -> ?noise:Noise_analysis.result -> Graph.t ->
  string

val write_file :
  Graph.t ->
  string ->
  ?ranges:Range_analysis.result ->
  ?noise:Noise_analysis.result ->
  unit ->
  unit
