(** Signal-flow-graph node operations.

    The analytical MSB technique (§4.1 "Analytical") constructs a signal
    flowgraph out of the source description and analyzes the data flow
    with the same range-propagation mechanism the simulation uses.  This
    IR is that flowgraph: a small dataflow language covering the
    operators the design environment overloads.

    Arity is fixed per operation; [Delay] is the unit-delay register that
    creates feedback loops (and therefore range explosions). *)

type op =
  | Input of Interval.t  (** external input with its declared range *)
  | Const of float
  | Add
  | Sub
  | Mul
  | Div
  | Neg
  | Abs
  | Min
  | Max
  | Shift of int  (** multiply by [2^k] *)
  | Delay of float  (** unit delay (register) with initial value *)
  | Quantize of Fixpt.Dtype.t
      (** explicit quantization point: range clamps if the type
          saturates; adds quantization noise *)
  | Saturate of Interval.t  (** explicit clamp (a [range()] annotation) *)
  | Select  (** (cond, a, b): data-dependent choice — range join *)
  | Alias
      (** identity; names an existing expression node after the signal
          it drives (used by the automatic graph extraction) *)

let arity = function
  | Input _ | Const _ -> 0
  | Neg | Abs | Shift _ | Delay _ | Quantize _ | Saturate _ | Alias -> 1
  | Add | Sub | Mul | Div | Min | Max -> 2
  | Select -> 3

let op_name = function
  | Input _ -> "input"
  | Const c -> Printf.sprintf "const(%g)" c
  | Add -> "add"
  | Sub -> "sub"
  | Mul -> "mul"
  | Div -> "div"
  | Neg -> "neg"
  | Abs -> "abs"
  | Min -> "min"
  | Max -> "max"
  | Shift k -> Printf.sprintf "shl(%d)" k
  | Delay _ -> "delay"
  | Quantize dt -> Printf.sprintf "quant%s" (Fixpt.Dtype.to_string dt)
  | Saturate i -> Printf.sprintf "sat%s" (Interval.to_string i)
  | Select -> "select"
  | Alias -> "alias"

(** [is_stateful op] — true for operations whose output at cycle [t]
    depends on cycle [t-1] (loop-breaking points of the analysis). *)
let is_stateful = function Delay _ -> true | _ -> false

type t = {
  id : int;
  name : string;  (** the signal this node drives *)
  op : op;
  inputs : int list;  (** node ids, length = arity *)
}

(** Interval transfer function of an operation — the same propagation
    table as the simulation's {!Sim.Ops} (§4.1). *)
let eval_range op (args : Interval.t list) : Interval.t =
  match (op, args) with
  | Input r, [] -> r
  | Const c, [] -> Interval.of_point c
  | Add, [ a; b ] -> Interval.add a b
  | Sub, [ a; b ] -> Interval.sub a b
  | Mul, [ a; b ] -> Interval.mul a b
  | Div, [ a; b ] -> Interval.div a b
  | Neg, [ a ] -> Interval.neg a
  | Abs, [ a ] -> Interval.abs a
  | Min, [ a; b ] -> Interval.min_ a b
  | Max, [ a; b ] -> Interval.max_ a b
  | Shift k, [ a ] -> Interval.shift_left a k
  | Delay init, [ a ] -> Interval.join (Interval.of_point init) a
  | Quantize dt, [ a ] ->
      if Fixpt.Overflow_mode.is_saturating (Fixpt.Dtype.overflow dt) then
        let lo, hi = Fixpt.Dtype.range dt in
        Interval.clamp ~into:(Interval.make lo hi) a
      else a
  | Saturate lim, [ a ] -> Interval.clamp ~into:lim a
  | Select, [ _cond; a; b ] -> Interval.join a b
  | Alias, [ a ] -> a
  | op, args ->
      invalid_arg
        (Printf.sprintf "Node.eval_range: %s applied to %d arguments"
           (op_name op) (List.length args))

(** Numeric transfer function (used by the graph interpreter that
    cross-checks the analysis against execution). *)
let eval_value op (args : float list) ~(state : float) : float =
  match (op, args) with
  | Input _, [] -> invalid_arg "Node.eval_value: input has no intrinsic value"
  | Const c, [] -> c
  | Add, [ a; b ] -> a +. b
  | Sub, [ a; b ] -> a -. b
  | Mul, [ a; b ] -> a *. b
  | Div, [ a; b ] -> a /. b
  | Neg, [ a ] -> -.a
  | Abs, [ a ] -> Float.abs a
  | Min, [ a; b ] -> Float.min a b
  | Max, [ a; b ] -> Float.max a b
  | Shift k, [ a ] -> a *. (2.0 ** Float.of_int k)
  | Delay _, [ _ ] -> state  (* output is last cycle's input *)
  | Quantize dt, [ a ] -> Fixpt.Quantize.cast dt a
  | Saturate lim, [ a ] ->
      Float.max (Interval.lo lim) (Float.min (Interval.hi lim) a)
  | Select, [ cond; a; b ] -> if cond >= 0.5 then a else b
  | Alias, [ a ] -> a
  | op, args ->
      invalid_arg
        (Printf.sprintf "Node.eval_value: %s applied to %d arguments"
           (op_name op) (List.length args))
