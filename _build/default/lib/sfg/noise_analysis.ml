(** Analytical quantization-noise propagation.

    The analytical counterpart of the simulation's error monitoring, and
    the engine behind the interpolative-style baseline ([3] in the
    paper): every [Quantize] node injects noise with the uniform model
    (mean = rounding bias, variance = q²/12); [Input] nodes may carry
    source noise (A/D converter, channel SNR).  Noise moments propagate
    under the standard independence assumptions:

    - add/sub: means add/subtract, variances add;
    - mul: for [z = x·y] with independent errors and signal power bounded
      by the (statically known) ranges: [var(ε_z) ≤ ŷ²·var(ε_x) +
      x̂²·var(ε_y)] where [x̂] is the magnitude bound of [x] — the
      conservative bound a pure analysis must take;
    - delay: moments pass through one cycle; loops iterate to a fixpoint
      (a loop with noise gain ≥ 1 diverges — detected and reported, the
      analytical mirror of the §4.2 divergence on feedback signals).

    The per-node result is (mean, variance) of the difference error; a
    derived LSB position via the paper's σ-rule is in {!Wordlength}. *)

type moments = { mean : float; var : float }

let zero_m = { mean = 0.0; var = 0.0 }

type result = {
  noise : (string * moments) array;  (** per node, node order *)
  diverged : string list;  (** loop noise did not converge *)
  iterations : int;
}

(* Magnitude bound of a node from a prior range analysis. *)
let mag_of ranges id =
  let _, iv = ranges.(id) in
  Interval.mag iv

(* inf · 0 must read as 0 here: an unbounded signal contributes no noise
   through a noiseless operand *)
let gmul a b = if a = 0.0 || b = 0.0 then 0.0 else a *. b

let transfer ranges (n : Node.t) (args : moments list) ~(input_noise : string -> moments) : moments =
  match (n.Node.op, args) with
  | Node.Input _, [] -> input_noise n.Node.name
  | Node.Const _, [] -> zero_m
  | Node.Add, [ a; b ] -> { mean = a.mean +. b.mean; var = a.var +. b.var }
  | Node.Sub, [ a; b ] -> { mean = a.mean -. b.mean; var = a.var +. b.var }
  | Node.Mul, [ a; b ] ->
      let xa = mag_of ranges (List.nth n.Node.inputs 0)
      and xb = mag_of ranges (List.nth n.Node.inputs 1) in
      {
        mean = gmul xb (Float.abs a.mean) +. gmul xa (Float.abs b.mean);
        var = gmul (xb *. xb) a.var +. gmul (xa *. xa) b.var;
      }
  | Node.Div, [ a; b ] ->
      (* bound via 1/y magnitude when the divisor range excludes 0 *)
      let _, ivb = ranges.(List.nth n.Node.inputs 1) in
      let inv_mag =
        match Interval.bounds ivb with
        | Some (lo, hi) when lo > 0.0 || hi < 0.0 ->
            1.0 /. Float.min (Float.abs lo) (Float.abs hi)
        | _ -> Float.infinity
      in
      let xa = mag_of ranges (List.nth n.Node.inputs 0) in
      {
        mean =
          gmul inv_mag (Float.abs a.mean)
          +. gmul (gmul xa (inv_mag *. inv_mag)) (Float.abs b.mean);
        var =
          gmul (inv_mag *. inv_mag) a.var
          +. gmul (gmul (xa *. xa) (inv_mag ** 4.0)) b.var;
      }
  | Node.Neg, [ a ] -> { mean = -.a.mean; var = a.var }
  | Node.Abs, [ a ] -> { mean = Float.abs a.mean; var = a.var }
  | Node.Min, [ a; b ] | Node.Max, [ a; b ] ->
      (* conservative: whichever operand wins, its error passes *)
      {
        mean = Float.max (Float.abs a.mean) (Float.abs b.mean);
        var = Float.max a.var b.var;
      }
  | Node.Shift k, [ a ] ->
      let s = 2.0 ** Float.of_int k in
      { mean = a.mean *. s; var = a.var *. s *. s }
  | Node.Delay _, [ a ] -> a
  | Node.Quantize dt, [ a ] ->
      let _, bias, qvar = Fixpt.Quantize.noise_model dt in
      { mean = a.mean +. bias; var = a.var +. qvar }
  | Node.Saturate _, [ a ] -> a
  | Node.Alias, [ a ] -> a
  | Node.Select, [ _c; a; b ] ->
      {
        mean = Float.max (Float.abs a.mean) (Float.abs b.mean);
        var = Float.max a.var b.var;
      }
  | op, args ->
      invalid_arg
        (Printf.sprintf "Noise_analysis: %s applied to %d args"
           (Node.op_name (fst (op, args)))
           (List.length args))

let default_max_iter = 64
let divergence_threshold = 1.0e12

(** [run graph ~ranges ?input_noise ()] — [ranges] is a completed
    {!Range_analysis.result} (needed for multiplication bounds);
    [input_noise] gives the source error moments per input node
    (default: noiseless inputs). *)
let run ?(max_iter = default_max_iter)
    ?(input_noise = fun (_ : string) -> zero_m) graph
    ~(ranges : Range_analysis.result) =
  Graph.validate_exn graph;
  let ns = Array.of_list (Graph.nodes graph) in
  let cur = Array.make (Array.length ns) zero_m in
  let changed = ref true in
  let iter = ref 0 in
  let close a b =
    Float.abs (a.mean -. b.mean) <= 1e-15 +. (1e-9 *. Float.abs b.mean)
    && Float.abs (a.var -. b.var) <= 1e-24 +. (1e-9 *. Float.abs b.var)
  in
  while !changed && !iter < max_iter do
    changed := false;
    incr iter;
    Array.iteri
      (fun i (n : Node.t) ->
        let args = List.map (fun j -> cur.(j)) n.Node.inputs in
        let next = transfer ranges.Range_analysis.ranges n args ~input_noise in
        (* moments only grow along the iteration (monotone system) *)
        let next =
          {
            mean = Float.max next.mean cur.(i).mean;
            var = Float.max next.var cur.(i).var;
          }
        in
        if not (close next cur.(i)) then begin
          cur.(i) <- next;
          changed := true
        end)
      ns
  done;
  let noise = Array.mapi (fun i (n : Node.t) -> (n.Node.name, cur.(i))) ns in
  let diverged =
    Array.to_list ns
    |> List.filter_map (fun (n : Node.t) ->
           let m = cur.(n.Node.id) in
           if
             (!changed && not (Float.is_finite m.var))
             || m.var > divergence_threshold
             || Float.is_nan m.var
           then Some n.Node.name
           else None)
  in
  { noise; diverged; iterations = !iter }

let moments_of result name =
  Array.to_list result.noise
  |> List.find_opt (fun (n, _) -> String.equal n name)
  |> Option.map snd

let sigma_of result name =
  Option.map (fun m -> sqrt m.var) (moments_of result name)

let pp ppf result =
  Format.fprintf ppf "@[<v>";
  Array.iter
    (fun (name, m) ->
      Format.fprintf ppf "%-12s mu=%.3g sigma=%.3g@," name m.mean
        (sqrt m.var))
    result.noise;
  if result.diverged <> [] then
    Format.fprintf ppf "diverged: %s@," (String.concat ", " result.diverged);
  Format.fprintf ppf "@]"
