lib/sfg/wordlength.ml: Array Float Format Graph List Node Noise_analysis Printf Range_analysis String
