lib/sfg/noise_analysis.ml: Array Fixpt Float Format Graph Interval List Node Option Printf Range_analysis String
