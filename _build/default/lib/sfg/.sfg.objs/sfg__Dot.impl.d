lib/sfg/dot.ml: Buffer Fun Graph Interval List Node Noise_analysis Printf Range_analysis String
