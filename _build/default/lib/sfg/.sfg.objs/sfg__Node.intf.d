lib/sfg/node.mli: Fixpt Interval
