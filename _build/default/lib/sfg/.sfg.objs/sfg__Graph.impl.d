lib/sfg/graph.ml: Array Interval List Node Option Printf String
