lib/sfg/simplify.mli: Graph
