lib/sfg/graph.mli: Fixpt Node
