lib/sfg/range_analysis.mli: Format Graph Interval
