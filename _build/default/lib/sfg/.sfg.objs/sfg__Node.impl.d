lib/sfg/node.ml: Fixpt Float Interval List Printf
