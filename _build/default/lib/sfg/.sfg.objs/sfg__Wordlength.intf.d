lib/sfg/wordlength.mli: Format Graph Range_analysis
