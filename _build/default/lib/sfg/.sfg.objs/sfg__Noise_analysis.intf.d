lib/sfg/noise_analysis.mli: Format Graph Interval Node Range_analysis
