lib/sfg/range_analysis.ml: Array Fixpt Float Format Graph Interval List Node Option String
