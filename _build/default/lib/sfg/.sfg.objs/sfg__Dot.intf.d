lib/sfg/dot.mli: Graph Noise_analysis Range_analysis
