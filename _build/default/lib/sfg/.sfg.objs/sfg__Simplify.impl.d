lib/sfg/simplify.ml: Array Graph Hashtbl List Node Printf String
