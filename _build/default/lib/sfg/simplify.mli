(** Flowgraph simplification: constant folding, common-subexpression
    elimination, dead-node removal — all semantics-preserving for
    execution and for the range analysis ([Select] is never folded, its
    range is the branch join by design).  Cleans up automatically
    extracted graphs before display or VHDL emission.

    [keep name] protects named nodes from being merged or folded away
    (use it for the signal names reports will query). *)

type stats = {
  before : int;
  after : int;
  folded : int;
  merged : int;
  dropped : int;
}

(** Returns the simplified graph (fresh ids) and pass statistics.
    Dead-node elimination applies only when the graph has marked
    outputs. *)
val run : ?keep:(string -> bool) -> Graph.t -> Graph.t * stats
