(** Pulse-amplitude modulation utilities.

    Both paper examples work on binary PAM (±1) signalling: the LMS
    equalizer slices ±1 decisions, and the timing-recovery loop of Fig. 5
    recovers the symbol clock of a PAM stream.  This module generates
    symbol streams, maps them through transmit pulses, and scores
    receiver decisions. *)

(** Deterministic ±1 symbol stream. *)
let symbols rng n = Array.init n (fun _ -> Stats.Rng.pam2 rng)

(** Raised-cosine pulse with roll-off [beta], evaluated at [t] in symbol
    periods.  The classic Nyquist pulse used by the timing-recovery
    stimulus; [p 0 = 1], zero at nonzero integers. *)
let raised_cosine ~beta t =
  if beta < 0.0 || beta > 1.0 then invalid_arg "Pam.raised_cosine: beta";
  let abs_t = Float.abs t in
  if abs_t < 1e-9 then 1.0
  else if
    beta > 0.0 && Float.abs (abs_t -. (1.0 /. (2.0 *. beta))) < 1e-9
  then
    (* the removable singularity at t = ±1/(2β) *)
    Float.pi /. 4.0 *. (sin (Float.pi /. (2.0 *. beta)) /. (Float.pi /. (2.0 *. beta)))
  else
    let sinc x = if Float.abs x < 1e-12 then 1.0 else sin (Float.pi *. x) /. (Float.pi *. x) in
    let denom = 1.0 -. (2.0 *. beta *. abs_t) ** 2.0 in
    sinc abs_t *. cos (Float.pi *. beta *. abs_t) /. denom

(** Transmit waveform sample: [s(t) = Σ_k a_k · p(t − k)], [t] in symbol
    periods, pulse truncated to ±[span] symbols. *)
let waveform_sample ?(beta = 0.35) ?(span = 4) (syms : float array) t =
  let n = Array.length syms in
  let k0 = Float.to_int (Float.floor t) in
  let acc = ref 0.0 in
  for k = k0 - span to k0 + span do
    if k >= 0 && k < n then
      acc := !acc +. (syms.(k) *. raised_cosine ~beta (t -. Float.of_int k))
  done;
  !acc

(** Hard ±1 decision. *)
let slice v = if v >= 0.0 then 1.0 else -1.0

(** Symbol error count between a decision array and the transmitted
    symbols, ignoring the first [skip] decisions (filter/loop
    transients) and allowing a constant integer [lag]. *)
let symbol_errors ?(skip = 0) ?(lag = 0) ~sent ~decided () =
  let n = min (Array.length decided - skip) (Array.length sent - skip - lag) in
  let errors = ref 0 and total = ref 0 in
  for i = skip to skip + n - 1 do
    if i + lag >= 0 && i + lag < Array.length sent then begin
      incr total;
      if slice decided.(i) <> sent.(i + lag) then incr errors
    end
  done;
  (!errors, !total)

(** Best-lag symbol error rate over a small lag window (receivers have an
    a-priori-unknown integer delay). *)
let best_ser ?(skip = 0) ?(max_lag = 8) ~sent ~decided () =
  let best = ref 1.0 in
  for lag = -max_lag to max_lag do
    let e, t = symbol_errors ~skip ~lag ~sent ~decided () in
    if t > 0 then best := Float.min !best (Float.of_int e /. Float.of_int t)
  done;
  !best
