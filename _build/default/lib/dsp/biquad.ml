(** Second-order IIR section (biquad), direct form I.

    A recursive filter is the sharpest test of the refinement machinery:
    its feedback taps make the quasi-analytical range propagation grow
    (exploding when the section is marginally stable), and quantization
    noise recirculates — the "limit cycle" caveat of §4.2.  Used by tests
    and the ablation benches as a controllable feedback workload:
    pole radius directly sets how fast ranges and errors grow.

    [y_n = b0·x_n + b1·x_{n-1} + b2·x_{n-2} − a1·y_{n-1} − a2·y_{n-2}] *)

type coeffs = { b0 : float; b1 : float; b2 : float; a1 : float; a2 : float }

type t = {
  coeffs : coeffs;
  x1 : Sim.Signal.t;  (** x_{n-1}, reg *)
  x2 : Sim.Signal.t;  (** x_{n-2}, reg *)
  y1 : Sim.Signal.t;  (** y_{n-1}, reg *)
  y2 : Sim.Signal.t;  (** y_{n-2}, reg *)
  ff : Sim.Signal.t;  (** feed-forward sum *)
  fb : Sim.Signal.t;  (** feedback sum *)
  out : Sim.Signal.t;
}

let create env ?(prefix = "bq_") coeffs =
  {
    coeffs;
    x1 = Sim.Signal.create_reg env (prefix ^ "x1");
    x2 = Sim.Signal.create_reg env (prefix ^ "x2");
    y1 = Sim.Signal.create_reg env (prefix ^ "y1");
    y2 = Sim.Signal.create_reg env (prefix ^ "y2");
    ff = Sim.Signal.create env (prefix ^ "ff");
    fb = Sim.Signal.create env (prefix ^ "fb");
    out = Sim.Signal.create env (prefix ^ "y");
  }

let output t = t.out
let feedback_signals t = [ t.y1; t.y2 ]
let signals t = [ t.x1; t.x2; t.y1; t.y2; t.ff; t.fb; t.out ]

let step t (x : Sim.Value.t) : Sim.Value.t =
  let open Sim.Ops in
  let c = t.coeffs in
  t.ff
  <-- (cst c.b0 *: x)
      +: (cst c.b1 *: !!(t.x1))
      +: (cst c.b2 *: !!(t.x2));
  t.fb <-- (cst c.a1 *: !!(t.y1)) +: (cst c.a2 *: !!(t.y2));
  t.out <-- !!(t.ff) -: !!(t.fb);
  t.x2 <-- !!(t.x1);
  t.x1 <-- x;
  t.y2 <-- !!(t.y1);
  t.y1 <-- !!(t.out);
  !!(t.out)

(** Float reference. *)
let reference coeffs input =
  let x1 = ref 0.0 and x2 = ref 0.0 and y1 = ref 0.0 and y2 = ref 0.0 in
  Array.map
    (fun x ->
      let y =
        (coeffs.b0 *. x) +. (coeffs.b1 *. !x1) +. (coeffs.b2 *. !x2)
        -. (coeffs.a1 *. !y1) -. (coeffs.a2 *. !y2)
      in
      x2 := !x1;
      x1 := x;
      y2 := !y1;
      y1 := y;
      y)
    input

(** Coefficients of a unity-gain resonator with pole radius [r] and
    angle [theta] (radians): the workload knob for feedback studies. *)
let resonator ~r ~theta =
  if r < 0.0 || r >= 1.0 then invalid_arg "Biquad.resonator: r must be in [0,1)";
  let a1 = -2.0 *. r *. cos theta and a2 = r *. r in
  (* normalize DC gain to 1 *)
  let dc = (1.0 +. a1 +. a2) in
  { b0 = dc; b1 = 0.0; b2 = 0.0; a1; a2 }

(** Worst-case output bound (sum of |impulse response|), truncated at
    [horizon] taps — what sound range propagation may not undershoot. *)
let l1_gain ?(horizon = 4096) coeffs =
  let x1 = ref 0.0 and x2 = ref 0.0 and y1 = ref 0.0 and y2 = ref 0.0 in
  let acc = ref 0.0 in
  for n = 0 to horizon - 1 do
    let x = if n = 0 then 1.0 else 0.0 in
    let y =
      (coeffs.b0 *. x) +. (coeffs.b1 *. !x1) +. (coeffs.b2 *. !x2)
      -. (coeffs.a1 *. !y1) -. (coeffs.a2 *. !y2)
    in
    x2 := !x1;
    x1 := x;
    y2 := !y1;
    y1 := y;
    acc := !acc +. Float.abs y
  done;
  !acc

(** The biquad as an analytical flowgraph. *)
let to_sfg ?(prefix = "bq_") ?y_range ~input_range:(lo, hi) coeffs g =
  let x = Sfg.Graph.input g (prefix ^ "x") ~lo ~hi in
  let x1 = Sfg.Graph.delay_of g (prefix ^ "x1") x in
  let x2 = Sfg.Graph.delay_of g (prefix ^ "x2") x1 in
  let y1 = Sfg.Graph.delay g (prefix ^ "y1") in
  let y1r =
    match y_range with
    | None -> y1
    | Some (ylo, yhi) ->
        Sfg.Graph.saturate g ~name:(prefix ^ "y1.range") y1 ~lo:ylo ~hi:yhi
  in
  let y2 = Sfg.Graph.delay_of g (prefix ^ "y2") y1r in
  let term c n v = Sfg.Graph.mul g ~name:(prefix ^ n) (Sfg.Graph.const g c) v in
  let ff0 = term coeffs.b0 "b0x" x in
  let ff1 = term coeffs.b1 "b1x1" x1 in
  let ff2 = term coeffs.b2 "b2x2" x2 in
  let ff =
    Sfg.Graph.add g ~name:(prefix ^ "ff")
      (Sfg.Graph.add g ~name:(prefix ^ "ff01") ff0 ff1)
      ff2
  in
  let fb1 = term coeffs.a1 "a1y1" y1r in
  let fb2 = term coeffs.a2 "a2y2" y2 in
  let fb = Sfg.Graph.add g ~name:(prefix ^ "fb") fb1 fb2 in
  let y = Sfg.Graph.sub g ~name:(prefix ^ "y") ff fb in
  Sfg.Graph.connect_delay g y1 y;
  Sfg.Graph.mark_output g (prefix ^ "y") y;
  (x, y)
