(** Proportional-integral loop filter — the "Loop filter" block of
    Fig. 5: [lferr = Kp·err + ∫Ki·err].  Its integrator register is the
    classic §5.1 case-(b) accumulator. *)

type t

val create : Sim.Env.t -> ?prefix:string -> kp:float -> ki:float -> unit -> t
val output : t -> Sim.Signal.t
val integrator : t -> Sim.Signal.t
val signals : t -> Sim.Signal.t list

(** Advance with one error sample; drives and returns [lferr]
    (including the fresh increment). *)
val step : t -> Sim.Value.t -> Sim.Value.t

(** No new sample this cycle: state holds, output re-driven. *)
val hold : t -> Sim.Value.t

val reference : kp:float -> ki:float -> float array -> float array

(** Second-order loop design: [(kp, ki)] from damping [zeta], detector
    gain [kd], and normalized bandwidth [bn ∈ (0, 0.5)]. *)
val design : ?zeta:float -> ?kd:float -> bn:float -> unit -> float * float
