(** CORDIC (circular): rotation mode — [(x·cos z − y·sin z, x·sin z +
    y·cos z)] scaled by the gain [K ≈ 1.6468] — and vectoring mode —
    [(K·magnitude, atan2 y x)].  A deep feed-forward refinement
    scenario: the z chain shrinks per stage, the x/y chains grow by
    [K]. *)

type t

val gain : int -> float
val angle : int -> float

(** [iters] in [[1, 48]]. *)
val create : Sim.Env.t -> ?prefix:string -> iters:int -> unit -> t

val signals : t -> Sim.Signal.t list

(** [(x, y, z)] stage signals at index [i] (0 = input). *)
val stage_signals : t -> int -> Sim.Signal.t * Sim.Signal.t * Sim.Signal.t

(** Rotation mode, [z ∈ [-π/2, π/2]]; returns [(x_out, y_out)]. *)
val rotate :
  t -> x:Sim.Value.t -> y:Sim.Value.t -> z:Sim.Value.t ->
  Sim.Value.t * Sim.Value.t

val reference : iters:int -> x:float -> y:float -> z:float -> float * float

(** Vectoring mode, [x > 0]; returns [(K·magnitude, angle)]. *)
val vectorize : t -> x:Sim.Value.t -> y:Sim.Value.t -> Sim.Value.t * Sim.Value.t

val vectorize_reference : iters:int -> x:float -> y:float -> float * float

(** Residual-angle bound after [iters] iterations. *)
val angle_error_bound : int -> float
