(** The paper's motivational example (§3, Fig. 1): a simplified
    symbol-spaced adaptive LMS equalizer for binary PAM, matching the
    paper's listing line by line — FIR with constant coefficients [c],
    delay line [d], accumulator chain [v], feedback correction
    [w = v[N] − b·s], slicer [y], adaptation [b ← b + μ·s·(w − y)].
    Reconstructed constants are documented in DESIGN.md §2. *)

type t

val default_coefs : float array
val default_mu : float

(** [steered:false] is the §4.2 ablation knob (float side takes its own
    slicer decisions); [x_dtype] quantizes the input (the partial type
    definition). *)
val create :
  Sim.Env.t ->
  ?coefs:float array ->
  ?mu:float ->
  ?steered:bool ->
  ?x_dtype:Fixpt.Dtype.t ->
  input:Sim.Channel.t ->
  output:Sim.Channel.t ->
  unit ->
  t

val x : t -> Sim.Signal.t
val w : t -> Sim.Signal.t
val b : t -> Sim.Signal.t
val s : t -> Sim.Signal.t
val y : t -> Sim.Signal.t
val fir : t -> Fir.t
val env : t -> Sim.Env.t

(** The signals of the paper's Tables 1 and 2, in table order. *)
val table_signals : t -> Sim.Signal.t list

(** One symbol period (the paper's [while(1)] body). *)
val step : t -> unit

val run : t -> cycles:int -> unit

(** The equalizer as an analytical flowgraph; [b_range] adds the
    second-iteration [b.range(-0.2, 0.2)]. *)
val to_sfg :
  ?coefs:float array ->
  ?mu:float ->
  ?input_range:float * float ->
  ?b_range:float * float ->
  unit ->
  Sfg.Graph.t
