(** Automatic gain control loop.

    Normalizes the input amplitude to a target level:

    [y_n = g_n·x_n],
    [p_n = (1−α)·p_{n-1} + α·|y_n|]   (one-pole level estimate),
    [g_{n+1} = g_n + μ·(target − p_n)]

    Two coupled feedback states, both refinement-interesting: the gain
    register [g] has no intrinsic bound (weak input → large gain), so
    its range propagation explodes and a designer [range()] (the
    hardware's gain clamp) is mandatory; the level estimator [p] is a
    damped accumulator that converges under propagation once [g] is
    bounded. *)

type t = {
  target : float;
  alpha : float;
  mu : float;
  g : Sim.Signal.t;  (** gain register *)
  p : Sim.Signal.t;  (** level estimate register *)
  y : Sim.Signal.t;  (** normalized output *)
  dev : Sim.Signal.t;  (** target − p *)
}

let create env ?(prefix = "agc_") ?(target = 1.0) ?(alpha = 0.05) ?(mu = 0.05)
    () =
  let t =
    {
      target;
      alpha;
      mu;
      g = Sim.Signal.create_reg env (prefix ^ "g");
      p = Sim.Signal.create_reg env (prefix ^ "p");
      y = Sim.Signal.create env (prefix ^ "y");
      dev = Sim.Signal.create env (prefix ^ "dev");
    }
  in
  (* the gain register starts at unity (and restarts there on reset) *)
  Sim.Env.at_reset env (fun () -> Sim.Signal.init t.g 1.0);
  t

let gain t = t.g
let level t = t.p
let output t = t.y
let signals t = [ t.g; t.p; t.y; t.dev ]

(** One sample; drives and returns the normalized output. *)
let step t (x : Sim.Value.t) : Sim.Value.t =
  let open Sim.Ops in
  t.y <-- !!(t.g) *: x;
  (* the deviation uses the fresh level estimate (the register read
     would be one sample stale) *)
  let p_new =
    (cst (1.0 -. t.alpha) *: !!(t.p)) +: (cst t.alpha *: abs !!(t.y))
  in
  t.p <-- p_new;
  t.dev <-- cst t.target -: p_new;
  t.g <-- !!(t.g) +: (cst t.mu *: !!(t.dev));
  !!(t.y)

(** Float reference with the same register timing. *)
let reference ?(target = 1.0) ?(alpha = 0.05) ?(mu = 0.05) input =
  let g = ref 1.0 and p = ref 0.0 in
  Array.map
    (fun x ->
      let y = !g *. x in
      let p' = ((1.0 -. alpha) *. !p) +. (alpha *. Float.abs y) in
      let g' = !g +. (mu *. (target -. p')) in
      p := p';
      g := g';
      y)
    input

(** Steady-state level estimate: for a ±A input, |y| averages g·A, so
    the loop settles at g ≈ target/E[|x|]. *)
let expected_gain t ~mean_abs_input = t.target /. mean_abs_input
