(** The complex evaluation example (§6.1, Fig. 5): a timing-recovery
    loop for PAM signals.

    {v
       in ──▶ Interpolator ──▶ out
                 │  ▲ mu,ctr
                 ▼  │
        Timing error detector
                 │ err
                 ▼
            Loop filter ──lferr──▶ NCO
    v}

    The receiver runs at two samples per symbol.  Every input sample is
    shifted into the interpolator, which produces an interpolant at the
    NCO's held fractional offset [mu]; the modulo-1 NCO (decrement
    [W ≈ 1/2] per sample) wraps once per symbol, marking the {e symbol
    strobe}.  At a strobe the fresh interpolant is the symbol-instant
    sample and the previous sample's interpolant — half a symbol earlier
    — is Gardner's mid sample; the resulting timing error drives the PI
    loop filter and closes the loop on the NCO control word.

    The fixed-point phenomena the paper reports on this design live
    exactly where it says: the loop-filter integrator and the NCO phase
    are feedback signals whose range propagation explodes, and the NCO
    phase is the signal whose error monitoring diverges (§6.1's
    "D signal inside of NCO"). *)

type t = {
  env : Sim.Env.t;
  x : Sim.Signal.t;  (** receiver input sample *)
  interp : Interpolator.t;
  ted : Gardner_ted.t;
  lf : Loop_filter.t;
  nco : Nco.t;
  out : Sim.Signal.t;  (** symbol-rate output *)
  input : Sim.Channel.t;
  output : Sim.Channel.t;
  mutable n_strobes : int;
}

let sps = 2

(* PI gains: loop bandwidth ~1% of the symbol rate, damping 1/√2, for a
   Gardner detector gain ≈ 2.5 on β = 0.35 raised-cosine binary PAM. *)
let default_kp = 0.0105
let default_ki = 1.4e-4

let create env ?(kp = default_kp) ?(ki = default_ki) ?x_dtype ~input ~output
    () =
  let t =
    {
      env;
      x = Sim.Signal.create env ?dtype:x_dtype "in";
      interp = Interpolator.create env ();
      ted = Gardner_ted.create env ();
      lf = Loop_filter.create env ~kp ~ki ();
      nco = Nco.create env ~sps ();
      out = Sim.Signal.create env "out";
      input;
      output;
      n_strobes = 0;
    }
  in
  Sim.Env.at_reset env (fun () -> t.n_strobes <- 0);
  t

let env t = t.env
let input_signal t = t.x
let output_signal t = t.out
let interpolator t = t.interp
let ted t = t.ted
let loop_filter t = t.lf
let nco t = t.nco

(** Every signal of the design, declaration order — the signal set
    subject to fixed-point refinement (the paper's hand-written version
    counted 61; granularity differs, structure does not). *)
let all_signals t = Sim.Env.signals t.env

(** One input-sample clock cycle. *)
let step t =
  let open Sim.Ops in
  t.x <-- Sim.Value.of_float (Sim.Channel.get t.input);
  Interpolator.shift t.interp !!(t.x);
  let strobed, mu = Nco.step t.nco !!(Loop_filter.output t.lf) in
  let y = Interpolator.interpolate t.interp mu in
  if strobed then begin
    t.n_strobes <- t.n_strobes + 1;
    t.out <-- y;
    Sim.Channel.put t.output (Sim.Value.fx !!(t.out));
    (* ted.mid (a register) still holds the previous sample's
       interpolant: Gardner's half-symbol sample *)
    let err = Gardner_ted.detect t.ted y in
    ignore (Loop_filter.step t.lf err)
  end
  else ignore (Loop_filter.hold t.lf);
  (* record this sample's interpolant: the mid sample candidate for the
     next strobe *)
  Gardner_ted.capture_mid t.ted y

(** Run [samples] input samples. *)
let run t ~samples = Sim.Engine.run t.env ~cycles:samples (fun _ -> step t)

let strobes t = t.n_strobes
