(** Transmission-channel models producing receiver input streams — the
    deterministic synthetic substitutes for the paper's unavailable
    stimuli (see DESIGN.md §2). *)

(** ISI + AWGN at symbol rate: [x_n = Σ_j taps_j·a_{n-j} + w_n].
    Returns the stimulus function (precomputed; consistent on repeated
    reads) and the transmitted symbols. *)
val isi_awgn :
  ?taps:float array ->
  ?noise_sigma:float ->
  rng:Stats.Rng.t ->
  n_symbols:int ->
  unit ->
  (int -> float) * float array

(** Pulse-shaped PAM at [sps] samples/symbol with a static fractional
    timing offset [tau] and AWGN — the Fig. 5 workload.  Returns
    [(stimulus, symbols, n_samples)]. *)
val timing_offset_pam :
  ?beta:float ->
  ?sps:int ->
  ?noise_sigma:float ->
  ?tau:float ->
  rng:Stats.Rng.t ->
  n_symbols:int ->
  unit ->
  (int -> float) * float array * int

(** Peak magnitude over the first [n] samples. *)
val peak : (int -> float) -> n:int -> float
