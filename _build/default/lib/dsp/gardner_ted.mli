(** Gardner timing-error detector — the "Timing error detector" block of
    Fig. 5: [err = (y_k − y_{k−1})·y_{k−½}], decision-independent, two
    samples per symbol. *)

type t

val create : Sim.Env.t -> ?prefix:string -> unit -> t
val error : t -> Sim.Signal.t
val signals : t -> Sim.Signal.t list

(** Record a mid-symbol sample (a register: at the next strobe it holds
    the previous sample's interpolant). *)
val capture_mid : t -> Sim.Value.t -> unit

(** Compute the timing error at a symbol strobe; drives and returns
    [err]. *)
val detect : t -> Sim.Value.t -> Sim.Value.t

val reference : current:float -> previous:float -> mid:float -> float
