(** Full N-tap adaptive LMS FIR filter.

    The paper's motivational example adapts a single feedback
    coefficient; this block is the general case — an N-tap transversal
    filter whose {e every} coefficient adapts:

    [y_n = Σ w_i·x_{n-i}],  [e_n = d_n − y_n],  [w_i ← w_i + μ·e_n·x_{n-i}]

    Fixed-point adaptation has its own refinement phenomenon beyond the
    paper's two: {e gradient stalling}.  When the coefficient registers
    are quantized, updates smaller than half an LSB round to zero and
    adaptation stops at a misadjustment floor set by the coefficient
    wordlength — so the coefficient LSB is dictated by the adaptation
    dynamics, not by the σ-rule on the data path.  The
    [ablate-adaptive-lsb] bench quantifies it.

    Signals: coefficient registers [w[i]], data delay line [x[i]], the
    accumulator chain [acc[i]], output [y], error [e], and the per-tap
    update terms [upd[i]]. *)

type t = {
  n : int;
  mu : float;
  w : Sim.Sig_array.t;  (** adapted coefficients (regs) *)
  x : Sim.Sig_array.t;  (** data delay line (regs) *)
  acc : Sim.Sig_array.t;  (** accumulator chain *)
  y : Sim.Signal.t;
  e : Sim.Signal.t;
  upd : Sim.Sig_array.t;  (** μ·e·x_{n-i} update terms *)
}

let create env ?(prefix = "lf_") ~taps ~mu () =
  if taps < 1 then invalid_arg "Lms_fir.create: taps";
  {
    n = taps;
    mu;
    w = Sim.Sig_array.create_reg env (prefix ^ "w") taps;
    x = Sim.Sig_array.create_reg env (prefix ^ "x") taps;
    acc = Sim.Sig_array.create env (prefix ^ "acc") (taps + 1);
    y = Sim.Signal.create env (prefix ^ "y");
    e = Sim.Signal.create env (prefix ^ "e");
    upd = Sim.Sig_array.create env (prefix ^ "upd") taps;
  }

let taps t = t.n
let coefficients t = t.w
let output t = t.y
let error_signal t = t.e

(** Apply a dtype to the coefficient registers only (the stalling
    knob). *)
let set_coef_dtype t dt = Sim.Sig_array.set_dtype t.w dt

(** Current coefficient values. *)
let coefs t =
  Array.init t.n (fun i -> Sim.Signal.peek_fx (Sim.Sig_array.get t.w i))

(** One sample: filter [input], compare with [desired], adapt.
    Returns [(y, e)]. *)
let step t ~(input : Sim.Value.t) ~(desired : Sim.Value.t) =
  let open Sim.Ops in
  (* shift the delay line *)
  for i = t.n - 1 downto 1 do
    Sim.Sig_array.get t.x i <-- !!(Sim.Sig_array.get t.x (i - 1))
  done;
  Sim.Sig_array.get t.x 0 <-- input;
  (* filter over the pre-shift line values (registers read old values,
     so tap i sees x_{n-1-i}; the input contributes next cycle) *)
  Sim.Sig_array.get t.acc 0 <-- cst 0.0;
  for i = 1 to t.n do
    Sim.Sig_array.get t.acc i
    <-- !!(Sim.Sig_array.get t.acc (i - 1))
        +: (!!(Sim.Sig_array.get t.x (i - 1))
            *: !!(Sim.Sig_array.get t.w (i - 1)));
  done;
  t.y <-- !!(Sim.Sig_array.get t.acc t.n);
  t.e <-- desired -: !!(t.y);
  (* adaptation *)
  for i = 0 to t.n - 1 do
    let u = Sim.Sig_array.get t.upd i in
    u <-- cst t.mu *: !!(t.e) *: !!(Sim.Sig_array.get t.x i);
    Sim.Sig_array.get t.w i <-- !!(Sim.Sig_array.get t.w i) +: !!u
  done;
  (!!(t.y), !!(t.e))

(** Float reference (same register timing as {!step}). *)
let reference ~taps ~mu ~input ~desired =
  let len = Array.length input in
  if Array.length desired <> len then invalid_arg "Lms_fir.reference";
  let w = Array.make taps 0.0 in
  let x = Array.make taps 0.0 in
  let ys = Array.make len 0.0 and es = Array.make len 0.0 in
  for nsample = 0 to len - 1 do
    let y = ref 0.0 in
    for i = 0 to taps - 1 do
      y := !y +. (x.(i) *. w.(i))
    done;
    let e = desired.(nsample) -. !y in
    ys.(nsample) <- !y;
    es.(nsample) <- e;
    for i = 0 to taps - 1 do
      w.(i) <- w.(i) +. (mu *. e *. x.(i))
    done;
    (* registers commit: shift the line *)
    for i = taps - 1 downto 1 do
      x.(i) <- x.(i - 1)
    done;
    x.(0) <- input.(nsample)
  done;
  (ys, es, w)

(** Steady-state mean-square error over the last [tail] samples of a
    run — the misadjustment probe used by the stalling bench. *)
let tail_mse errors ~tail =
  let len = Array.length errors in
  let tail = min tail len in
  let acc = ref 0.0 in
  for i = len - tail to len - 1 do
    acc := !acc +. (errors.(i) *. errors.(i))
  done;
  !acc /. Float.of_int tail
