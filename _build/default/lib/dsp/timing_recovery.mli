(** The complex evaluation example (§6.1, Fig. 5): a PAM timing-recovery
    loop at two samples per symbol — interpolator, Gardner TED, PI loop
    filter, NCO.  The fixed-point phenomena the paper reports live where
    it says: the loop-filter integrator and the NCO phase are the
    feedback signals whose range propagation explodes, and the NCO phase
    is the divergence-prone one. *)

type t

val sps : int
val default_kp : float
val default_ki : float

val create :
  Sim.Env.t ->
  ?kp:float ->
  ?ki:float ->
  ?x_dtype:Fixpt.Dtype.t ->
  input:Sim.Channel.t ->
  output:Sim.Channel.t ->
  unit ->
  t

val env : t -> Sim.Env.t
val input_signal : t -> Sim.Signal.t
val output_signal : t -> Sim.Signal.t
val interpolator : t -> Interpolator.t
val ted : t -> Gardner_ted.t
val loop_filter : t -> Loop_filter.t
val nco : t -> Nco.t

(** Every signal of the design, declaration order. *)
val all_signals : t -> Sim.Signal.t list

(** One input-sample clock cycle. *)
val step : t -> unit

val run : t -> samples:int -> unit

(** Symbol strobes seen (reset with the environment). *)
val strobes : t -> int
