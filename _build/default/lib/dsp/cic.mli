(** Cascaded integrator-comb (CIC) decimator — the block that motivates
    the wrap-around MSB mode: its integrators are {e designed} to
    overflow, and modular two's-complement arithmetic keeps the comb
    differences exact at the Hogenauer register width.  The sharpest
    test of §5.1: neither saturation nor error-typing is the right
    answer for the integrators. *)

type t

(** Order in [[1, 8]], decimation [rate >= 2], differential delay 1. *)
val create : Sim.Env.t -> ?prefix:string -> order:int -> rate:int -> unit -> t

val order : t -> int
val rate : t -> int
val output : t -> Sim.Signal.t
val integrators : t -> Sim.Signal.t list

(** DC gain [(R·M)^N]. *)
val gain : t -> float

(** Hogenauer register width: [N·log2 R + input_bits]. *)
val hogenauer_bits : t -> input_bits:int -> int

(** Advance one input sample; [Some output] every [rate] samples. *)
val step : t -> Sim.Value.t -> Sim.Value.t option

(** Float reference: integrate [order] times, decimate by [rate],
    difference [order] times. *)
val reference : order:int -> rate:int -> float array -> float array
