(** Full N-tap adaptive LMS FIR — the general case of the paper's
    single-coefficient adaptation, exhibiting {e gradient stalling}:
    quantized coefficient registers stop adapting once updates fall
    below half an LSB, so the coefficient LSB is set by the loop
    dynamics, not the data-path σ-rule. *)

type t

val create : Sim.Env.t -> ?prefix:string -> taps:int -> mu:float -> unit -> t
val taps : t -> int
val coefficients : t -> Sim.Sig_array.t
val output : t -> Sim.Signal.t
val error_signal : t -> Sim.Signal.t

(** Quantize the coefficient registers only (the stalling knob). *)
val set_coef_dtype : t -> Fixpt.Dtype.t -> unit

val coefs : t -> float array

(** One sample: filter, compare, adapt; returns [(y, e)]. *)
val step : t -> input:Sim.Value.t -> desired:Sim.Value.t ->
  Sim.Value.t * Sim.Value.t

(** Float reference with the same register timing;
    [(outputs, errors, final coefficients)]. *)
val reference :
  taps:int -> mu:float -> input:float array -> desired:float array ->
  float array * float array * float array

(** Mean-square error over the last [tail] samples (misadjustment
    probe). *)
val tail_mse : float array -> tail:int -> float
