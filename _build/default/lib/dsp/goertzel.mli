(** Goertzel single-bin DFT detector — the tone-detection kernel of
    modem signalling.  Its resonator pole sits on the unit circle, so
    the state registers grow with the block length: their MSB is set by
    [N], not by the input range. *)

type t

(** Detect DFT bin [bin] of an [n]-sample block. *)
val create : Sim.Env.t -> ?prefix:string -> bin:int -> n:int -> unit -> t

val state_signals : t -> Sim.Signal.t list
val power_signal : t -> Sim.Signal.t

(** Advance one sample; [Some power] at block ends (state resets). *)
val step : t -> Sim.Value.t -> Sim.Value.t option

(** |DFT bin|² of one [n]-sample block. *)
val reference : bin:int -> n:int -> float array -> float
