(** Digital down-converter — the cable-modem front end the paper's
    introduction motivates: free-running modulo-1 NCO, CORDIC quadrature
    mixer (with quadrant pre-rotation), and two CIC decimators. *)

type t

val cordic_iters : int

(** [fcw ∈ (0, 0.5)] cycles per input sample. *)
val create :
  Sim.Env.t -> ?prefix:string -> fcw:float -> rate:int -> order:int -> unit ->
  t

val phase : t -> Sim.Signal.t

(** [(i_out, q_out)] signals. *)
val outputs : t -> Sim.Signal.t * Sim.Signal.t

(** Advance one input sample; [Some (i, q)] on decimated instants. *)
val step : t -> Sim.Value.t -> (Sim.Value.t * Sim.Value.t) option

(** Float reference: exact mix with [e^{-2πi·fcw·n}] + CIC reference on
    both rails; returns [(i_ref, q_ref)]. *)
val reference :
  fcw:float -> rate:int -> order:int -> float array ->
  float array * float array
