(** Gardner timing-error detector.

    The "Timing error detector" block of Fig. 5.  Gardner's detector
    works at two samples per symbol and is decision-independent:

    [err = (y_k − y_{k−1}) · y_{k−½}]

    where [y_k] is the current symbol-instant (strobe) sample, [y_{k−1}]
    the previous one and [y_{k−½}] the mid-symbol sample between them.
    Registers hold the two delayed samples; the error signal feeds the
    loop filter only at symbol strobes (and holds otherwise). *)

type t = {
  prev_sym : Sim.Signal.t;  (** y_{k−1}, registered *)
  mid : Sim.Signal.t;  (** y_{k−½}, registered *)
  diff : Sim.Signal.t;  (** y_k − y_{k−1} *)
  err : Sim.Signal.t;  (** detector output *)
}

let create env ?(prefix = "ted_") () =
  {
    prev_sym = Sim.Signal.create_reg env (prefix ^ "prev");
    mid = Sim.Signal.create_reg env (prefix ^ "mid");
    diff = Sim.Signal.create env (prefix ^ "diff");
    err = Sim.Signal.create env (prefix ^ "err");
  }

let error t = t.err
let signals t = [ t.prev_sym; t.mid; t.diff; t.err ]

(** Record the mid-symbol sample (call at mid strobes). *)
let capture_mid t (sample : Sim.Value.t) =
  let open Sim.Ops in
  t.mid <-- sample

(** Compute the timing error from the symbol-instant sample (call at
    symbol strobes); drives and returns [err]. *)
let detect t (sample : Sim.Value.t) : Sim.Value.t =
  let open Sim.Ops in
  t.diff <-- sample -: !!(t.prev_sym);
  t.err <-- !!(t.diff) *: !!(t.mid);
  t.prev_sym <-- sample;
  !!(t.err)

(** Float reference: S-curve slope check for tests — for input
    [y(t) = sin(2π·(t−τ)/2)] sampled at strobes, the detector output
    averages to a value whose sign follows [τ]. *)
let reference ~current ~previous ~mid = (current -. previous) *. mid
