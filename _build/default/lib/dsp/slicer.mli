(** PAM decision slicer — the motivational example's output stage
    ([y = w > 0 ? 1 : -1], §3), steered by the fixed-point value
    (§4.2). *)

type t

val create : Sim.Env.t -> ?dtype:Fixpt.Dtype.t -> string -> t
val output : t -> Sim.Signal.t

(** Binary ±1 decision; drives and returns the output signal. *)
val step : t -> Sim.Value.t -> Sim.Value.t

(** Nearest normalized PAM-M level of a fixed-point value. *)
val decide_pam : m:int -> float -> float

(** Multi-level slicer on normalized levels [±1/(m−1) … ±1]. *)
val step_pam : t -> m:int -> Sim.Value.t -> Sim.Value.t
