(** Recursive moving-average (boxcar) filter.

    [y_n = y_{n-1} + (x_n − x_{n−N})/N] — implemented with a running
    accumulator, the canonical "accumulation variable" of the paper's
    §5.1 case (b): its statistic range is small but pure range
    propagation keeps adding the error of the recursive form, so the
    accumulator is exactly the signal the refinement rules recommend
    switching to saturation mode. *)

type t = {
  n : int;
  line : Sim.Sig_array.t;  (** x delay line, regs *)
  diff : Sim.Signal.t;  (** x_n − x_{n−N} *)
  acc : Sim.Signal.t;  (** running sum, reg *)
  out : Sim.Signal.t;  (** acc / N *)
}

let create env ?(prefix = "ma_") ~n () =
  if n < 1 then invalid_arg "Moving_average.create";
  {
    n;
    line = Sim.Sig_array.create_reg env (prefix ^ "z") n;
    diff = Sim.Signal.create env (prefix ^ "diff");
    acc = Sim.Signal.create_reg env (prefix ^ "acc");
    out = Sim.Signal.create env (prefix ^ "y");
  }

let output t = t.out
let accumulator t = t.acc
let signals t = Sim.Sig_array.to_list t.line @ [ t.diff; t.acc; t.out ]

let step t (x : Sim.Value.t) : Sim.Value.t =
  let open Sim.Ops in
  t.diff <-- x -: !!(Sim.Sig_array.get t.line (t.n - 1));
  for i = t.n - 1 downto 1 do
    Sim.Sig_array.get t.line i <-- !!(Sim.Sig_array.get t.line (i - 1))
  done;
  Sim.Sig_array.get t.line 0 <-- x;
  t.acc <-- !!(t.acc) +: !!(t.diff);
  (* the register read sees the pre-update sum; add the fresh increment
     so the output includes the current sample *)
  t.out <-- (!!(t.acc) +: !!(t.diff)) /: cst (Float.of_int t.n);
  !!(t.out)

(** Float reference. *)
let reference ~n input =
  let len = Array.length input in
  Array.init len (fun i ->
      let acc = ref 0.0 in
      for j = max 0 (i - n + 1) to i do
        acc := !acc +. input.(j)
      done;
      !acc /. Float.of_int n)
