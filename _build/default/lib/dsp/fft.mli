(** Radix-2 decimation-in-time FFT as a monitored block — the canonical
    bit-growth workload: every butterfly stage can double the magnitude
    (one MSB per stage) unless the architecture scales by ½ per stage,
    which moves the question to the LSB side instead. *)

type t

(** [n] a power of two in [[2, 4096]]; [scale] selects ½-per-stage. *)
val create : Sim.Env.t -> ?prefix:string -> ?scale:bool -> n:int -> unit -> t

val size : t -> int
val stage_count : t -> int

(** Signals of stage [s] (0 = bit-reversed input, [stages] = output). *)
val stage_signals : t -> int -> Sim.Signal.t list

val bit_reverse : bits:int -> int -> int

(** One transform over [n] complex pairs. *)
val transform :
  t -> (Sim.Value.t * Sim.Value.t) array -> (Sim.Value.t * Sim.Value.t) array

(** Direct-evaluation DFT, optionally with the scaled architecture's
    [1/n] gain. *)
val reference : ?scale:bool -> (float * float) array -> (float * float) array

(** Worst-case magnitude growth per stage: 2 unscaled, 1 scaled. *)
val stage_growth : t -> float

(** Apply a dtype to every stage signal. *)
val set_dtype : t -> Fixpt.Dtype.t -> unit
