(** Proportional-integral loop filter.

    The "Loop filter" block of Fig. 5: smooths the raw timing-error
    samples into the NCO control word,

    [lferr = Kp·err + ∫ Ki·err].

    The integrator register is the classic range-propagation
    {e accumulator}: its propagated range grows without bound (paper
    §5.1 case (b)), making it one of the two feedback signals the
    evaluation reports as needing saturation mode. *)

type t = {
  kp : float;
  ki : float;
  pterm : Sim.Signal.t;  (** Kp·err *)
  integ : Sim.Signal.t;  (** integrator state, registered *)
  out : Sim.Signal.t;  (** lferr *)
}

let create env ?(prefix = "lf_") ~kp ~ki () =
  {
    kp;
    ki;
    pterm = Sim.Signal.create env (prefix ^ "p");
    integ = Sim.Signal.create_reg env (prefix ^ "integ");
    out = Sim.Signal.create env (prefix ^ "lferr");
  }

let output t = t.out
let integrator t = t.integ
let signals t = [ t.pterm; t.integ; t.out ]

(** Advance the filter with one error sample; drives and returns
    [lferr]. *)
let step t (err : Sim.Value.t) : Sim.Value.t =
  let open Sim.Ops in
  let inc = cst t.ki *: err in
  t.pterm <-- cst t.kp *: err;
  t.integ <-- !!(t.integ) +: inc;
  (* the register read sees the pre-update integral; add the fresh
     increment so lferr includes the current error sample *)
  t.out <-- !!(t.pterm) +: !!(t.integ) +: inc;
  !!(t.out)

(** Hold the filter (no new error sample this cycle): state keeps its
    value, output re-driven from state. *)
let hold t : Sim.Value.t =
  let open Sim.Ops in
  t.out <-- !!(t.pterm) +: !!(t.integ);
  !!(t.out)

(** Float reference for tests. *)
let reference ~kp ~ki errs =
  let integ = ref 0.0 in
  Array.map
    (fun e ->
      integ := !integ +. (ki *. e);
      (kp *. e) +. !integ)
    errs

(** Standard second-order loop-gain design: pick Kp, Ki from damping
    [zeta] and normalized loop bandwidth [bn] (per symbol), for a
    detector gain [kd] and an NCO gain of 1. *)
let design ?(zeta = 0.7071) ?(kd = 1.0) ~bn () =
  if bn <= 0.0 || bn >= 0.5 then invalid_arg "Loop_filter.design: bn";
  let theta = bn /. (zeta +. (1.0 /. (4.0 *. zeta))) in
  let d = 1.0 +. (2.0 *. zeta *. theta) +. (theta *. theta) in
  let kp = 4.0 *. zeta *. theta /. d /. kd in
  let ki = 4.0 *. theta *. theta /. d /. kd in
  (kp, ki)
