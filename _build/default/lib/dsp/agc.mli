(** Automatic gain control loop: [y = g·x] with a one-pole level
    estimate driving the gain register toward [target].  The gain has no
    intrinsic bound (weak input → large gain): its range propagation is
    rule-(b) pessimistic and the designer's gain clamp ([range()]) is
    mandatory. *)

type t

val create :
  Sim.Env.t -> ?prefix:string -> ?target:float -> ?alpha:float -> ?mu:float ->
  unit -> t

val gain : t -> Sim.Signal.t
val level : t -> Sim.Signal.t
val output : t -> Sim.Signal.t
val signals : t -> Sim.Signal.t list

(** One sample; drives and returns the normalized output. *)
val step : t -> Sim.Value.t -> Sim.Value.t

val reference : ?target:float -> ?alpha:float -> ?mu:float -> float array ->
  float array

(** The loop's settling point [target / E|x|]. *)
val expected_gain : t -> mean_abs_input:float -> float
