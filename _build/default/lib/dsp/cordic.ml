(** CORDIC rotator (circular, rotation mode).

    A classic shift-and-add DSP kernel, included as a third refinement
    scenario: its per-iteration signals have predictable shrinking
    ranges and its quantization error grows with iteration count, so it
    exercises the MSB and LSB rules on a structure very different from
    the two paper examples (deep feed-forward, no feedback).

    Computes [(x·cos z − y·sin z, x·sin z + y·cos z)] for [z] in
    [[-π/2, π/2]] with [iters] iterations and the usual gain
    [K = Π √(1+2^{-2i}) ≈ 1.6468]. *)

type t = {
  iters : int;
  xs : Sim.Sig_array.t;
  ys : Sim.Sig_array.t;
  zs : Sim.Sig_array.t;
}

let gain iters =
  let k = ref 1.0 in
  for i = 0 to iters - 1 do
    k := !k *. sqrt (1.0 +. (2.0 ** Float.of_int (-2 * i)))
  done;
  !k

let angle i = Float.atan (2.0 ** Float.of_int (-i))

let create env ?(prefix = "cor_") ~iters () =
  if iters < 1 || iters > 48 then invalid_arg "Cordic.create: iters";
  {
    iters;
    xs = Sim.Sig_array.create env (prefix ^ "x") (iters + 1);
    ys = Sim.Sig_array.create env (prefix ^ "y") (iters + 1);
    zs = Sim.Sig_array.create env (prefix ^ "z") (iters + 1);
  }

let signals t =
  Sim.Sig_array.to_list t.xs @ Sim.Sig_array.to_list t.ys
  @ Sim.Sig_array.to_list t.zs

let stage_signals t i =
  (Sim.Sig_array.get t.xs i, Sim.Sig_array.get t.ys i, Sim.Sig_array.get t.zs i)

(** One full rotation (combinational cascade): drives every stage signal
    and returns [(x_out, y_out)] (scaled by the CORDIC gain). *)
let rotate t ~(x : Sim.Value.t) ~(y : Sim.Value.t) ~(z : Sim.Value.t) =
  let open Sim.Ops in
  Sim.Sig_array.get t.xs 0 <-- x;
  Sim.Sig_array.get t.ys 0 <-- y;
  Sim.Sig_array.get t.zs 0 <-- z;
  for i = 0 to t.iters - 1 do
    let xi = !!(Sim.Sig_array.get t.xs i)
    and yi = !!(Sim.Sig_array.get t.ys i)
    and zi = !!(Sim.Sig_array.get t.zs i) in
    let positive = zi >=: cst 0.0 in
    let xshift = shift_right xi i and yshift = shift_right yi i in
    let alpha = cst (angle i) in
    if positive then begin
      Sim.Sig_array.get t.xs (i + 1) <-- xi -: yshift;
      Sim.Sig_array.get t.ys (i + 1) <-- yi +: xshift;
      Sim.Sig_array.get t.zs (i + 1) <-- zi -: alpha
    end
    else begin
      Sim.Sig_array.get t.xs (i + 1) <-- xi +: yshift;
      Sim.Sig_array.get t.ys (i + 1) <-- yi -: xshift;
      Sim.Sig_array.get t.zs (i + 1) <-- zi +: alpha
    end
  done;
  (!!(Sim.Sig_array.get t.xs t.iters), !!(Sim.Sig_array.get t.ys t.iters))

(** Float reference: exact rotation scaled by the CORDIC gain. *)
let reference ~iters ~x ~y ~z =
  let k = gain iters in
  let c = cos z and s = sin z in
  (k *. ((x *. c) -. (y *. s)), k *. ((x *. s) +. (y *. c)))

(** Vectoring mode: rotate [(x, y)] onto the positive x-axis, driving
    [y → 0] and accumulating the applied angle into the z chain.
    Returns [(K·magnitude, atan2 y x)] for [x > 0] — the AGC /
    carrier-phase kernel.  Drives the same stage signals as
    {!rotate}. *)
let vectorize t ~(x : Sim.Value.t) ~(y : Sim.Value.t) =
  let open Sim.Ops in
  Sim.Sig_array.get t.xs 0 <-- x;
  Sim.Sig_array.get t.ys 0 <-- y;
  Sim.Sig_array.get t.zs 0 <-- cst 0.0;
  for i = 0 to t.iters - 1 do
    let xi = !!(Sim.Sig_array.get t.xs i)
    and yi = !!(Sim.Sig_array.get t.ys i)
    and zi = !!(Sim.Sig_array.get t.zs i) in
    (* drive y toward 0: rotate by -sign(y)·angle(i) *)
    let y_negative = yi <: cst 0.0 in
    let xshift = shift_right xi i and yshift = shift_right yi i in
    let alpha = cst (angle i) in
    if y_negative then begin
      Sim.Sig_array.get t.xs (i + 1) <-- xi -: yshift;
      Sim.Sig_array.get t.ys (i + 1) <-- yi +: xshift;
      Sim.Sig_array.get t.zs (i + 1) <-- zi -: alpha
    end
    else begin
      Sim.Sig_array.get t.xs (i + 1) <-- xi +: yshift;
      Sim.Sig_array.get t.ys (i + 1) <-- yi -: xshift;
      Sim.Sig_array.get t.zs (i + 1) <-- zi +: alpha
    end
  done;
  (!!(Sim.Sig_array.get t.xs t.iters), !!(Sim.Sig_array.get t.zs t.iters))

(** Float reference for vectoring: [(K·√(x²+y²), atan2 y x)], valid for
    [x > 0]. *)
let vectorize_reference ~iters ~x ~y =
  (gain iters *. sqrt ((x *. x) +. (y *. y)), Float.atan2 y x)

(** Residual-angle bound after [iters] iterations (convergence test). *)
let angle_error_bound iters = angle (iters - 1)
