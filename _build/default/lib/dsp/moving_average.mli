(** Recursive moving-average (boxcar) filter — its running accumulator
    is the canonical §5.1 case-(b) signal (small statistic range,
    unbounded propagated range). *)

type t

val create : Sim.Env.t -> ?prefix:string -> n:int -> unit -> t
val output : t -> Sim.Signal.t
val accumulator : t -> Sim.Signal.t
val signals : t -> Sim.Signal.t list
val step : t -> Sim.Value.t -> Sim.Value.t
val reference : n:int -> float array -> float array
