(** Goertzel single-bin DFT detector.

    Computes the energy of one DFT bin with a second-order recursion —
    the tone-detection kernel of modem signalling (DTMF, pilot tones):

    [s_n = x_n + 2cos(ω)·s_{n-1} − s_{n-2}],
    [power = s²_{N-1} + s²_{N-2} − 2cos(ω)·s_{N-1}·s_{N-2}]

    The resonator pole sits {e on} the unit circle, so the state
    registers grow linearly with the block length on an in-bin tone:
    their MSB is set by [N], not by the input range — a refinement
    scenario between the bounded FIR and the unbounded CIC integrator
    (the statistic range is bounded per block, the propagated range
    explodes). *)

type t = {
  omega : float;  (** bin frequency, radians per sample *)
  block : int;  (** samples per detection block *)
  s1 : Sim.Signal.t;  (** s_{n-1}, reg *)
  s2 : Sim.Signal.t;  (** s_{n-2}, reg *)
  s0 : Sim.Signal.t;  (** current recursion value *)
  power : Sim.Signal.t;  (** energy output, updated at block ends *)
  mutable count : int;
}

(** [create env ~bin ~n ()] — detect DFT bin [bin] of an [n]-sample
    block. *)
let create env ?(prefix = "gz_") ~bin ~n () =
  if n < 2 then invalid_arg "Goertzel.create: block length";
  if bin < 0 || bin >= n then invalid_arg "Goertzel.create: bin";
  {
    omega = 2.0 *. Float.pi *. Float.of_int bin /. Float.of_int n;
    block = n;
    s1 = Sim.Signal.create_reg env (prefix ^ "s1");
    s2 = Sim.Signal.create_reg env (prefix ^ "s2");
    s0 = Sim.Signal.create env (prefix ^ "s0");
    power = Sim.Signal.create env (prefix ^ "power");
    count = 0;
  }

let state_signals t = [ t.s1; t.s2; t.s0 ]
let power_signal t = t.power

(** Advance one sample; [Some power] at block ends (state resets for the
    next block). *)
let step t (x : Sim.Value.t) =
  let open Sim.Ops in
  let coeff = cst (2.0 *. cos t.omega) in
  t.s0 <-- x +: (coeff *: !!(t.s1)) -: !!(t.s2);
  t.count <- t.count + 1;
  if t.count < t.block then begin
    t.s2 <-- !!(t.s1);
    t.s1 <-- !!(t.s0);
    None
  end
  else begin
    t.count <- 0;
    (* energy from the final state pair (s0 is s_{N-1}, s1 holds
       s_{N-2}) *)
    t.power
    <-- (!!(t.s0) *: !!(t.s0))
        +: (!!(t.s1) *: !!(t.s1))
        -: (coeff *: !!(t.s0) *: !!(t.s1));
    (* reset the recursion for the next block *)
    t.s1 <-- cst 0.0;
    t.s2 <-- cst 0.0;
    Some !!(t.power)
  end

(** Float reference: |DFT bin|² of one block. *)
let reference ~bin ~n (x : float array) =
  if Array.length x <> n then invalid_arg "Goertzel.reference";
  let re = ref 0.0 and im = ref 0.0 in
  for j = 0 to n - 1 do
    let a = -2.0 *. Float.pi *. Float.of_int (bin * j) /. Float.of_int n in
    re := !re +. (x.(j) *. cos a);
    im := !im +. (x.(j) *. sin a)
  done;
  (!re *. !re) +. (!im *. !im)
