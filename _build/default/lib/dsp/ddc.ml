(** Digital down-converter: the cable-modem front end the paper's
    introduction motivates (§1: "integrated cable modems").

    Composition of the block library into a third complex system:

    {v
      IF input ──▶ CORDIC mixer ──▶ I ──▶ CIC ↓R ──▶ I out
                      ▲ phase  └──▶ Q ──▶ CIC ↓R ──▶ Q out
                 free-running NCO
    v}

    - a free-running phase accumulator (modulo-1 register — wrap-around
      by design, like the CIC integrators);
    - a CORDIC rotator as the quadrature mixer (with the quadrant
      pre-rotation needed to keep the rotation angle inside CORDIC's
      ±π/2 convergence range);
    - two order-[n] CIC decimators for the rate change.

    Everything is built from monitored signals, so the whole subsystem
    refines with the standard flow. *)

type t = {
  fcw : float;  (** frequency control word: cycles per input sample *)
  phase : Sim.Signal.t;  (** modulo-1 phase register *)
  pre_x : Sim.Signal.t;  (** quadrant-corrected mixer input *)
  pre_a : Sim.Signal.t;  (** quadrant-corrected rotation angle *)
  cordic : Cordic.t;
  cic_i : Cic.t;
  cic_q : Cic.t;
  i_out : Sim.Signal.t;
  q_out : Sim.Signal.t;
}

let cordic_iters = 14

let create env ?(prefix = "ddc_") ~fcw ~rate ~order () =
  if fcw <= 0.0 || fcw >= 0.5 then invalid_arg "Ddc.create: fcw in (0, 0.5)";
  {
    fcw;
    phase = Sim.Signal.create_reg env (prefix ^ "phase");
    pre_x = Sim.Signal.create env (prefix ^ "pre_x");
    pre_a = Sim.Signal.create env (prefix ^ "pre_a");
    cordic = Cordic.create env ~prefix:(prefix ^ "rot_") ~iters:cordic_iters ();
    cic_i = Cic.create env ~prefix:(prefix ^ "ci_") ~order ~rate ();
    cic_q = Cic.create env ~prefix:(prefix ^ "cq_") ~order ~rate ();
    i_out = Sim.Signal.create env (prefix ^ "i");
    q_out = Sim.Signal.create env (prefix ^ "q");
  }

let phase t = t.phase
let outputs t = (t.i_out, t.q_out)

(** Advance one input sample; [Some (i, q)] on decimated output
    instants. *)
let step t (x : Sim.Value.t) =
  let open Sim.Ops in
  (* free-running modulo-1 phase: the wrap is explicit arithmetic here
     (in hardware it is the register's natural wrap-around overflow) *)
  let nxt = !!(t.phase) +: cst t.fcw in
  t.phase <-- select (nxt >=: cst 1.0) (nxt -: cst 1.0) nxt;
  (* rotation angle -2π·phase mapped into (-π, π] *)
  let ph = !!(t.phase) in
  let angle =
    select (ph <: cst 0.5)
      (cst (-2.0 *. Float.pi) *: ph)
      (cst (-2.0 *. Float.pi) *: (ph -: cst 1.0))
  in
  (* quadrant pre-rotation: fold into ±π/2, negating the input *)
  let halfpi = Float.pi /. 2.0 in
  let too_pos = angle >: cst halfpi and too_neg = angle <: cst (-.halfpi) in
  let scale = cst (1.0 /. Cordic.gain cordic_iters) in
  let x_scaled = x *: scale in
  t.pre_x <-- select (too_pos || too_neg) (~-:x_scaled) x_scaled;
  t.pre_a
  <-- select too_pos (angle -: cst Float.pi)
        (select too_neg (angle +: cst Float.pi) angle);
  let i_mix, q_mix =
    Cordic.rotate t.cordic ~x:!!(t.pre_x) ~y:(cst 0.0) ~z:!!(t.pre_a)
  in
  match (Cic.step t.cic_i i_mix, Cic.step t.cic_q q_mix) with
  | Some i, Some q ->
      t.i_out <-- i;
      t.q_out <-- q;
      Some (!!(t.i_out), !!(t.q_out))
  | None, None -> None
  | _ -> assert false (* both CICs share the decimation phase *)

(** Float reference: mix [input] with [e^{-2πi·fcw·n}] and run the CIC
    reference on both rails. *)
let reference ~fcw ~rate ~order input =
  let mix k (x : float) =
    let a = -2.0 *. Float.pi *. fcw *. Float.of_int k in
    (x *. cos a, x *. sin a)
  in
  let mixed = Array.mapi mix input in
  let i_ref = Cic.reference ~order ~rate (Array.map fst mixed) in
  let q_ref = Cic.reference ~order ~rate (Array.map snd mixed) in
  (i_ref, q_ref)
