(** Radix-2 decimation-in-time FFT as a monitored hardware block.

    The canonical wordlength-refinement workload beyond the paper's two
    examples: every butterfly stage grows the signal magnitude by up to
    a factor of two (the √2 average / 2 worst-case bit-growth problem),
    so the MSB rules award one extra integer bit per stage — unless the
    architecture scales by ½ per stage, which instead pushes the
    quantization-noise question to the LSB side.  Both variants are
    built here; the bench's scaling ablation quantifies the trade-off.

    Every stage's real/imaginary intermediate is an individually
    monitored signal, so the refinement tables show the growth profile
    directly.  Twiddle factors are design-time constants. *)

type t = {
  n : int;
  stages : int;
  scale : bool;  (** divide by 2 after each stage (total 1/N gain) *)
  re : Sim.Sig_array.t array;  (** stage s values, s = 0 .. stages *)
  im : Sim.Sig_array.t array;
}

let is_pow2 n = n > 0 && n land (n - 1) = 0

let ilog2 n =
  let rec go acc n = if n <= 1 then acc else go (acc + 1) (n lsr 1) in
  go 0 n

(** [create env ~n ()] — an [n]-point (power of two) transform.
    [~scale:true] selects the ½-per-stage architecture. *)
let create env ?(prefix = "fft_") ?(scale = false) ~n () =
  if not (is_pow2 n) then invalid_arg "Fft.create: size must be a power of 2";
  if n < 2 || n > 4096 then invalid_arg "Fft.create: size out of range";
  let stages = ilog2 n in
  let mk part s =
    Sim.Sig_array.create env (Printf.sprintf "%s%s%d" prefix part s) n
  in
  {
    n;
    stages;
    scale;
    re = Array.init (stages + 1) (mk "re");
    im = Array.init (stages + 1) (mk "im");
  }

let size t = t.n
let stage_count t = t.stages

(** Signals of stage [s] (0 = bit-reversed input, [stages] = output). *)
let stage_signals t s =
  Sim.Sig_array.to_list t.re.(s) @ Sim.Sig_array.to_list t.im.(s)

let bit_reverse ~bits i =
  let r = ref 0 in
  for b = 0 to bits - 1 do
    if i land (1 lsl b) <> 0 then r := !r lor (1 lsl (bits - 1 - b))
  done;
  !r

let twiddle ~m j =
  let angle = -2.0 *. Float.pi *. Float.of_int j /. Float.of_int m in
  (cos angle, sin angle)

(** Run one transform over simulation values.  [input] is an array of
    [n] complex pairs; returns the [n] output pairs (values of the last
    stage's signals). *)
let transform t (input : (Sim.Value.t * Sim.Value.t) array) =
  if Array.length input <> t.n then invalid_arg "Fft.transform: size mismatch";
  let open Sim.Ops in
  (* load stage 0 in bit-reversed order *)
  for i = 0 to t.n - 1 do
    let src = bit_reverse ~bits:t.stages i in
    let vr, vi = input.(src) in
    Sim.Sig_array.get t.re.(0) i <-- vr;
    Sim.Sig_array.get t.im.(0) i <-- vi
  done;
  for s = 0 to t.stages - 1 do
    let m = 1 lsl (s + 1) in
    let half = 1 lsl s in
    let rin = t.re.(s) and iin = t.im.(s) in
    let rout = t.re.(s + 1) and iout = t.im.(s + 1) in
    let k = ref 0 in
    while !k < t.n do
      for j = 0 to half - 1 do
        let wr, wi = twiddle ~m j in
        let ar = !!(Sim.Sig_array.get rin (!k + j))
        and ai = !!(Sim.Sig_array.get iin (!k + j))
        and br = !!(Sim.Sig_array.get rin (!k + j + half))
        and bi = !!(Sim.Sig_array.get iin (!k + j + half)) in
        (* complex product t = w * b *)
        let tr = (cst wr *: br) -: (cst wi *: bi) in
        let ti = (cst wr *: bi) +: (cst wi *: br) in
        let post v = if t.scale then shift_right v 1 else v in
        Sim.Sig_array.get rout (!k + j) <-- post (ar +: tr);
        Sim.Sig_array.get iout (!k + j) <-- post (ai +: ti);
        Sim.Sig_array.get rout (!k + j + half) <-- post (ar -: tr);
        Sim.Sig_array.get iout (!k + j + half) <-- post (ai -: ti)
      done;
      k := !k + m
    done
  done;
  Array.init t.n (fun i ->
      ( !!(Sim.Sig_array.get t.re.(t.stages) i),
        !!(Sim.Sig_array.get t.im.(t.stages) i) ))

(** Direct-evaluation DFT reference, [X_k = Σ_j x_j e^{-2πi jk/n}],
    optionally with the same 1/n gain as the scaled architecture. *)
let reference ?(scale = false) (x : (float * float) array) =
  let n = Array.length x in
  let g = if scale then 1.0 /. Float.of_int n else 1.0 in
  Array.init n (fun k ->
      let acc_r = ref 0.0 and acc_i = ref 0.0 in
      for j = 0 to n - 1 do
        let xr, xi = x.(j) in
        let a = -2.0 *. Float.pi *. Float.of_int (j * k) /. Float.of_int n in
        let c = cos a and s = sin a in
        acc_r := !acc_r +. ((xr *. c) -. (xi *. s));
        acc_i := !acc_i +. ((xr *. s) +. (xi *. c))
      done;
      (g *. !acc_r, g *. !acc_i))

(** Worst-case magnitude growth per stage: 2 for unscaled butterflies
    (|a| + |w·b| ≤ 2·max), 1 for the ½-scaled architecture. *)
let stage_growth t = if t.scale then 1.0 else 2.0

(** Apply a dtype to every signal of every stage (for uniform-format
    baseline experiments). *)
let set_dtype t dt =
  Array.iter (fun a -> Sim.Sig_array.set_dtype a dt) t.re;
  Array.iter (fun a -> Sim.Sig_array.set_dtype a dt) t.im
