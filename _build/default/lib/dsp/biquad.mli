(** Second-order IIR section (direct form I) — the controllable feedback
    workload: pole radius sets how fast ranges and errors grow, and the
    §4.2 "limit cycle" caveat lives here. *)

type coeffs = { b0 : float; b1 : float; b2 : float; a1 : float; a2 : float }

type t

val create : Sim.Env.t -> ?prefix:string -> coeffs -> t
val output : t -> Sim.Signal.t
val feedback_signals : t -> Sim.Signal.t list
val signals : t -> Sim.Signal.t list
val step : t -> Sim.Value.t -> Sim.Value.t
val reference : coeffs -> float array -> float array

(** Unity-DC-gain resonator with pole radius [r ∈ [0, 1)] and angle
    [theta]. *)
val resonator : r:float -> theta:float -> coeffs

(** Sum of |impulse response| truncated at [horizon] — the worst-case
    output bound sound range propagation may not undershoot. *)
val l1_gain : ?horizon:int -> coeffs -> float

(** The biquad as an analytical flowgraph; [y_range] bounds the feedback
    tap (a [range()] annotation).  Returns [(input, output)] nodes. *)
val to_sfg :
  ?prefix:string ->
  ?y_range:float * float ->
  input_range:float * float ->
  coeffs ->
  Sfg.Graph.t ->
  Sfg.Graph.id * Sfg.Graph.id
