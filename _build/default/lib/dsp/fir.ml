(** Direct-form FIR filter as a monitored hardware block.

    Declares the paper-style signal structure — a coefficient [sigarray],
    a delay-line [regarray] and an accumulator-chain [sigarray]
    ([v[i] = v[i-1] + d[i-1]*c[i-1]], §3) — so every internal node is
    individually range- and error-monitored, exactly like the FIR inside
    the motivational example.

    A pure float reference implementation is provided for tests and SQNR
    scoring. *)

type t = {
  env : Sim.Env.t;
  coefs : Sim.Sig_array.t;  (** c[0..n-1], constants *)
  delay : Sim.Sig_array.t;  (** d[0..n-1], registered *)
  acc : Sim.Sig_array.t;  (** v[0..n], combinational accumulator chain *)
  n : int;
}

(** [create env ~prefix ~coefs ()] declares the block's signals with
    names [<prefix>c], [<prefix>d], [<prefix>v].  Optional dtypes type
    the delay line and accumulators from the start. *)
let create env ?(prefix = "") ?coef_dtype ?delay_dtype ?acc_dtype ~coefs () =
  let n = Array.length coefs in
  if n = 0 then invalid_arg "Fir.create: empty coefficients";
  let c = Sim.Sig_array.create env ?dtype:coef_dtype (prefix ^ "c") n in
  let d = Sim.Sig_array.create_reg env ?dtype:delay_dtype (prefix ^ "d") n in
  let v = Sim.Sig_array.create env ?dtype:acc_dtype (prefix ^ "v") (n + 1) in
  (* coefficient loading is constructor initialization: re-executed by
     every fresh simulation run (Env reset hook) *)
  Sim.Env.at_reset env (fun () -> Sim.Sig_array.init_values c coefs);
  { env; coefs = c; delay = d; acc = v; n }

let length t = t.n
let coefs t = t.coefs
let delay_line t = t.delay
let accumulators t = t.acc

(** One clock cycle: shift the input into the delay line and fold the
    accumulator chain; returns the filter output value [v[n]]. *)
let step t (input : Sim.Value.t) : Sim.Value.t =
  let open Sim.Ops in
  Sim.Sig_array.get t.delay 0 <-- input;
  for i = t.n - 1 downto 1 do
    Sim.Sig_array.get t.delay i <-- !!(Sim.Sig_array.get t.delay (i - 1))
  done;
  Sim.Sig_array.get t.acc 0 <-- cst 0.0;
  for i = 1 to t.n do
    Sim.Sig_array.get t.acc i
    <-- !!(Sim.Sig_array.get t.acc (i - 1))
        +: (!!(Sim.Sig_array.get t.delay (i - 1))
            *: !!(Sim.Sig_array.get t.coefs (i - 1)));
  done;
  !!(Sim.Sig_array.get t.acc t.n)

(** Pure float reference: [output.(i) = Σ_j coefs.(j)·input.(i-j)]. *)
let reference ~coefs input =
  let n = Array.length input and k = Array.length coefs in
  Array.init n (fun i ->
      let acc = ref 0.0 in
      for j = 0 to k - 1 do
        if i - j >= 0 then acc := !acc +. (coefs.(j) *. input.(i - j))
      done;
      !acc)

(** Worst-case output bound for inputs within ±[peak]:
    [peak · Σ|c|] — what the analytical range propagation must find. *)
let worst_case_gain coefs =
  Array.fold_left (fun acc c -> acc +. Float.abs c) 0.0 coefs

(** The same filter as an analytical flowgraph (§4.1 "Analytical"),
    for cross-checking simulation-based propagation against pure static
    analysis. *)
let to_sfg ?(prefix = "") ~coefs ~input_range:(lo, hi) g =
  let n = Array.length coefs in
  let x = Sfg.Graph.input g (prefix ^ "x") ~lo ~hi in
  let d = Array.make n x in
  d.(0) <- Sfg.Graph.delay_of g (prefix ^ "d[0]") x;
  for i = 1 to n - 1 do
    d.(i) <-
      Sfg.Graph.delay_of g (Printf.sprintf "%sd[%d]" prefix i) d.(i - 1)
  done;
  let acc = ref (Sfg.Graph.const g ~name:(prefix ^ "v[0]") 0.0) in
  Array.iteri
    (fun i c ->
      let ci = Sfg.Graph.const g ~name:(Printf.sprintf "%sc[%d]" prefix i) c in
      let p =
        Sfg.Graph.mul g ~name:(Printf.sprintf "%sp[%d]" prefix i) d.(i) ci
      in
      acc :=
        Sfg.Graph.add g ~name:(Printf.sprintf "%sv[%d]" prefix (i + 1)) !acc p)
    coefs;
  (x, !acc)
