(** Cascaded integrator-comb (CIC) decimator.

    The block that motivates the {e wrap-around} MSB mode: a CIC's
    integrator registers grow without bound on any non-zero-mean input,
    and the architecture is {e designed} to let them overflow — two's
    complement modular arithmetic guarantees the comb differences are
    exact as long as every register holds at least
    [N·log2(R·M) + B_in] bits (Hogenauer's theorem).

    For the refinement methodology this is the sharpest test of §5.1:
    - the statistic range of the integrators grows with the simulation
      length, and range propagation explodes immediately — yet neither
      saturation nor an error-type is the right answer: the correct
      decision is {e wrap-around at the Hogenauer width};
    - everything after the combs is bounded and refines normally.

    Order [n], decimation [r], differential delay 1. *)

type t = {
  order : int;
  rate : int;
  integ : Sim.Sig_array.t;  (** integrator registers, input rate *)
  comb_state : Sim.Sig_array.t;  (** comb delay registers, output rate *)
  comb_out : Sim.Sig_array.t;  (** comb stage outputs *)
  out : Sim.Signal.t;
  mutable phase : int;  (** decimation phase counter *)
}

let create env ?(prefix = "cic_") ~order ~rate () =
  if order < 1 || order > 8 then invalid_arg "Cic.create: order";
  if rate < 2 then invalid_arg "Cic.create: rate";
  {
    order;
    rate;
    integ = Sim.Sig_array.create_reg env (prefix ^ "i") order;
    comb_state = Sim.Sig_array.create_reg env (prefix ^ "cs") order;
    comb_out = Sim.Sig_array.create env (prefix ^ "c") order;
    out = Sim.Signal.create env (prefix ^ "y");
    phase = 0;
  }

let order t = t.order
let rate t = t.rate
let output t = t.out
let integrators t = Sim.Sig_array.to_list t.integ

(** DC gain [(R·M)^N] of the structure. *)
let gain t = Float.of_int t.rate ** Float.of_int t.order

(** Hogenauer register width for an input of [input_bits] bits: every
    internal register must hold [N·log2(R) + input_bits] bits for the
    modular arithmetic to be exact. *)
let hogenauer_bits t ~input_bits =
  input_bits
  + Float.to_int
      (Float.ceil
         (Float.of_int t.order *. Float.log2 (Float.of_int t.rate)))

(** Advance one input sample; returns [Some output] on decimation
    instants (every [rate] samples), [None] otherwise. *)
let step t (x : Sim.Value.t) =
  let open Sim.Ops in
  (* integrator chain at input rate: thread the fresh (this-cycle)
     integrator values downstream so the cascade has no extra delays *)
  let acc = ref x in
  for i = 0 to t.order - 1 do
    let s = Sim.Sig_array.get t.integ i in
    let fresh = !!s +: !acc in
    s <-- fresh;
    (* downstream sees the register's quantized (e.g. wrapped) value,
       bit-accurate with the unpipelined RTL *)
    acc :=
      (match Sim.Signal.dtype s with
      | Some dt -> cast dt fresh
      | None -> fresh)
  done;
  t.phase <- (t.phase + 1) mod t.rate;
  if t.phase <> 0 then None
  else begin
    (* comb chain at output rate, fed with the fresh integrator value *)
    let v = ref !acc in
    for i = 0 to t.order - 1 do
      let state = Sim.Sig_array.get t.comb_state i in
      let outs = Sim.Sig_array.get t.comb_out i in
      outs <-- !v -: !!state;
      state <-- !v;
      v := !!outs
    done;
    t.out <-- !v;
    Some !!(t.out)
  end

(** Float reference: order-[n] boxcar cascade — decimated output [k] is
    the [n]-fold iterated sum over the last [r] samples.  Computed
    directly from the definition (integrate n times, decimate,
    difference n times). *)
let reference ~order ~rate input =
  let len = Array.length input in
  (* n cascaded integrators *)
  let stage = Array.copy input in
  for _ = 1 to order do
    let acc = ref 0.0 in
    for i = 0 to len - 1 do
      acc := !acc +. stage.(i);
      stage.(i) <- !acc
    done
  done;
  (* decimate: take every rate-th sample (1-indexed instants) *)
  let n_out = len / rate in
  let dec = Array.init n_out (fun k -> stage.(((k + 1) * rate) - 1)) in
  (* n cascaded combs at the output rate *)
  let combed = Array.copy dec in
  for _ = 1 to order do
    let prev = ref 0.0 in
    for i = 0 to n_out - 1 do
      let v = combed.(i) in
      combed.(i) <- v -. !prev;
      prev := v
    done
  done;
  combed
