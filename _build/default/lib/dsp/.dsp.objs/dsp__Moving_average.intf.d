lib/dsp/moving_average.mli: Sim
