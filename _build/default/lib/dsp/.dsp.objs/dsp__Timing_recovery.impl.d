lib/dsp/timing_recovery.ml: Gardner_ted Interpolator Loop_filter Nco Sim
