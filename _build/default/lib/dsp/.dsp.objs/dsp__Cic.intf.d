lib/dsp/cic.mli: Sim
