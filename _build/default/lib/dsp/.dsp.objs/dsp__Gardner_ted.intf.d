lib/dsp/gardner_ted.mli: Sim
