lib/dsp/gardner_ted.ml: Sim
