lib/dsp/slicer.ml: Float Interval Sim
