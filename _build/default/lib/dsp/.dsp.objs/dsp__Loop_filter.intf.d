lib/dsp/loop_filter.mli: Sim
