lib/dsp/pam.mli: Stats
