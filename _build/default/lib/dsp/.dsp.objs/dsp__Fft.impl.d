lib/dsp/fft.ml: Array Float Printf Sim
