lib/dsp/biquad.mli: Sfg Sim
