lib/dsp/interpolator.ml: Array Sim
