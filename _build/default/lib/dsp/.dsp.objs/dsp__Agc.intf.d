lib/dsp/agc.mli: Sim
