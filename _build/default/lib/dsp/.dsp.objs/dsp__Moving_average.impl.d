lib/dsp/moving_average.ml: Array Float Sim
