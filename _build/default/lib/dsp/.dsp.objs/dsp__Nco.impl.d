lib/dsp/nco.ml: Array Float Sim
