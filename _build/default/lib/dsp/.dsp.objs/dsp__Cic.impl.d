lib/dsp/cic.ml: Array Float Sim
