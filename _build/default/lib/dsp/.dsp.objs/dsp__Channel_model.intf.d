lib/dsp/channel_model.mli: Stats
