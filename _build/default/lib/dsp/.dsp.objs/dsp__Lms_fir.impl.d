lib/dsp/lms_fir.ml: Array Float Sim
