lib/dsp/lms_fir.mli: Fixpt Sim
