lib/dsp/goertzel.ml: Array Float Sim
