lib/dsp/cordic.ml: Float Sim
