lib/dsp/ddc.ml: Array Cic Cordic Float Sim
