lib/dsp/cordic.mli: Sim
