lib/dsp/fir.mli: Fixpt Sfg Sim
