lib/dsp/slicer.mli: Fixpt Sim
