lib/dsp/fir.ml: Array Float Printf Sfg Sim
