lib/dsp/pam.ml: Array Float Stats
