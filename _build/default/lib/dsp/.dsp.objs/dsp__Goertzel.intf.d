lib/dsp/goertzel.mli: Sim
