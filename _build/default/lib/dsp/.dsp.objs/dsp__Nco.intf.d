lib/dsp/nco.mli: Sim
