lib/dsp/fft.mli: Fixpt Sim
