lib/dsp/interpolator.mli: Sim
