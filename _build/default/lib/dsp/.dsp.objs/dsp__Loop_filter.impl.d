lib/dsp/loop_filter.ml: Array Sim
