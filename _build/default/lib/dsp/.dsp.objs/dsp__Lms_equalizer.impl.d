lib/dsp/lms_equalizer.ml: Fir List Sfg Sim Slicer
