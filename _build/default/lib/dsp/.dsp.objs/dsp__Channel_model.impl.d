lib/dsp/channel_model.ml: Array Float Pam Stats
