lib/dsp/timing_recovery.mli: Fixpt Gardner_ted Interpolator Loop_filter Nco Sim
