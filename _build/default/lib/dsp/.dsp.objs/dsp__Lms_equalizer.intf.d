lib/dsp/lms_equalizer.mli: Fir Fixpt Sfg Sim
