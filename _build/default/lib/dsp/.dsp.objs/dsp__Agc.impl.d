lib/dsp/agc.ml: Array Float Sim
