lib/dsp/biquad.ml: Array Float Sfg Sim
