lib/dsp/ddc.mli: Sim
