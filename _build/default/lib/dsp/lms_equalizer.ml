(** The paper's motivational example (§3, Fig. 1): a simplified
    symbol-spaced adaptive LMS equalizer for binary PAM.

    Structure, signal names and the execution loop follow the paper's
    behavioural C listing line by line:

    {v
      d[0] = get(x);  d[i] = d[i-1]                -- delay line
      v[0] = 0;  v[i] = v[i-1] + d[i-1]*c[i-1]     -- FIR with constant c
      w = v[N] - b*s                               -- feedback correction
      y = w > 0 ? 1 : -1                           -- slicer
      b = b + mu*s*(w - y)                         -- adaptation (LMS)
      s = y                                        -- previous decision
    v}

    The third FIR coefficient and the adaptation constant are garbled in
    the available scan; we use −0.14 and μ = 2⁻⁵ (see DESIGN.md,
    substitutions).  The fixed-point refinement questions the example
    poses — the range-propagation explosion of [b] and [w] through the
    decision feedback loop, and the LSB placement of the [v] chain — are
    structural and do not depend on those constants. *)

let default_coefs = [| -0.11; 1.2; -0.14 |]
let default_mu = 0.03125 (* 2^-5 *)

type t = {
  env : Sim.Env.t;
  x : Sim.Signal.t;  (** received input sample *)
  fir : Fir.t;  (** c, d, v — names match the paper *)
  w : Sim.Signal.t;  (** slicer input *)
  slicer : Slicer.t;  (** output y *)
  b : Sim.Signal.t;  (** adapted feedback coefficient (reg) *)
  s : Sim.Signal.t;  (** previous decision (reg) *)
  mu : float;
  steered : bool;
      (** [true] (the paper's §4.2 rule): the float execution follows the
          fixed-point slicer decisions.  [false] is the ablation knob. *)
  input : Sim.Channel.t;
  output : Sim.Channel.t;
}

(** Declare the equalizer in [env], reading stimuli from [input] and
    writing decisions to [output].  [x_dtype] quantizes the input signal
    (the paper's "partial type definition" starting point). *)
let create env ?(coefs = default_coefs) ?(mu = default_mu) ?(steered = true)
    ?x_dtype ~input ~output () =
  let x = Sim.Signal.create env ?dtype:x_dtype "x" in
  let fir = Fir.create env ~coefs () in
  let w = Sim.Signal.create env "w" in
  let slicer = Slicer.create env "y" in
  let b = Sim.Signal.create_reg env "b" in
  let s = Sim.Signal.create_reg env "s" in
  { env; x; fir; w; slicer; b; s; mu; steered; input; output }

let x t = t.x
let w t = t.w
let b t = t.b
let s t = t.s
let y t = Slicer.output t.slicer
let fir t = t.fir
let env t = t.env

(** The signals of the paper's Tables 1 and 2, in table order. *)
let table_signals t =
  Sim.Sig_array.to_list (Fir.coefs t.fir)
  @ [ t.x ]
  @ Sim.Sig_array.to_list (Fir.delay_line t.fir)
  @ List.tl (Sim.Sig_array.to_list (Fir.accumulators t.fir))
  @ [ t.w; t.b; y t ]

(** One symbol period (one clock cycle), as in the paper's [while(1)]
    loop body. *)
let step t =
  let open Sim.Ops in
  t.x <-- Sim.Value.of_float (Sim.Channel.get t.input);
  let v_n = Fir.step t.fir !!(t.x) in
  t.w <-- v_n -: (!!(t.b) *: !!(t.s));
  let y =
    if t.steered then Slicer.step t.slicer !!(t.w)
    else begin
      Slicer.output t.slicer <-- sign_unsteered !!(t.w);
      !!(Slicer.output t.slicer)
    end
  in
  (* with w = v3 − b·s, the LMS gradient step on e = w − y is
     b ← b + μ·s·e (∂e/∂b = −s) *)
  t.b <-- !!(t.b) +: (cst t.mu *: !!(t.s) *: (!!(t.w) -: y));
  t.s <-- y;
  Sim.Channel.put t.output (Sim.Value.fx y)

(** Run [cycles] symbols through the equalizer. *)
let run t ~cycles = Sim.Engine.run t.env ~cycles (fun _ -> step t)

(** The equalizer as an analytical flowgraph (for the §4.1 "Analytical"
    technique and the baseline comparison).  The feedback signals [b] and
    [s] close loops through delays; without explicit saturation the range
    analysis must report them (and [w]) as exploding — the same diagnosis
    the quasi-analytical simulation gives in Table 1, iteration 1.
    [b_range] adds the paper's second-iteration [b.range(-0.2, 0.2)]. *)
let to_sfg ?(coefs = default_coefs) ?(mu = default_mu)
    ?(input_range = (-1.5, 1.5)) ?b_range () =
  let g = Sfg.Graph.create () in
  let _x, v_n = Fir.to_sfg g ~coefs ~input_range in
  let b_d = Sfg.Graph.delay g "b" in
  let s_d = Sfg.Graph.delay g "s" in
  let b_read =
    match b_range with
    | None -> b_d
    | Some (lo, hi) -> Sfg.Graph.saturate g ~name:"b.range" b_d ~lo ~hi
  in
  (* s holds slicer decisions: its range is structurally ±1 *)
  let s_read = Sfg.Graph.saturate g ~name:"s.range" s_d ~lo:(-1.0) ~hi:1.0 in
  let bs = Sfg.Graph.mul g ~name:"b*s" b_read s_read in
  let w = Sfg.Graph.sub g ~name:"w" v_n bs in
  let one = Sfg.Graph.const g ~name:"one" 1.0 in
  let minus_one = Sfg.Graph.const g ~name:"minus_one" (-1.0) in
  let y = Sfg.Graph.select g ~name:"y" w one minus_one in
  let err = Sfg.Graph.sub g ~name:"w-y" w y in
  let mu_c = Sfg.Graph.const g ~name:"mu" mu in
  let upd0 = Sfg.Graph.mul g ~name:"mu*s" mu_c s_read in
  let upd = Sfg.Graph.mul g ~name:"mu*s*(w-y)" upd0 err in
  let b_next = Sfg.Graph.add g ~name:"b_next" b_read upd in
  Sfg.Graph.connect_delay g b_d b_next;
  Sfg.Graph.connect_delay g s_d y;
  Sfg.Graph.mark_output g "y" y;
  Sfg.Graph.mark_output g "w" w;
  g
