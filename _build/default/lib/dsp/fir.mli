(** Direct-form FIR filter as a monitored hardware block, with the
    paper-style signal structure: coefficient array [c], registered
    delay line [d], accumulator chain [v] ([v[i] = v[i-1] +
    d[i-1]·c[i-1]], §3).  The registered line gives the block one cycle
    of latency. *)

type t

(** Declares signals [<prefix>c], [<prefix>d], [<prefix>v]; coefficient
    loading is registered as an [Env] reset hook. *)
val create :
  Sim.Env.t ->
  ?prefix:string ->
  ?coef_dtype:Fixpt.Dtype.t ->
  ?delay_dtype:Fixpt.Dtype.t ->
  ?acc_dtype:Fixpt.Dtype.t ->
  coefs:float array ->
  unit ->
  t

val length : t -> int
val coefs : t -> Sim.Sig_array.t
val delay_line : t -> Sim.Sig_array.t
val accumulators : t -> Sim.Sig_array.t

(** One clock cycle: shift the input in, fold the accumulator chain,
    return [v[n]]. *)
val step : t -> Sim.Value.t -> Sim.Value.t

(** Pure float reference (zero-latency convolution). *)
val reference : coefs:float array -> float array -> float array

(** Worst-case gain [Σ|c|]. *)
val worst_case_gain : float array -> float

(** The same filter as an analytical flowgraph; returns
    [(input node, output node)]. *)
val to_sfg :
  ?prefix:string ->
  coefs:float array ->
  input_range:float * float ->
  Sfg.Graph.t ->
  Sfg.Graph.id * Sfg.Graph.id
