(** Transmission-channel models producing receiver input streams.

    The paper evaluates on "relevant input stimuli" from its cable-modem
    context; we substitute deterministic synthetic equivalents (see
    DESIGN.md): binary PAM through a short ISI channel with additive
    white Gaussian noise for the equalizer, and a pulse-shaped PAM
    waveform with a static timing offset for the timing-recovery loop. *)

(** ISI + AWGN channel at symbol rate:
    [x_n = Σ_j taps_j · a_{n-j} + w_n], [w ~ N(0, noise_sigma²)].

    Returns a stimulus function suitable for {!Sim.Channel.of_fun}
    together with the transmitted symbol array (for SER scoring).
    Samples beyond [n_symbols] repeat the tail symbol pattern of zeros —
    callers should not read past the end. *)
let isi_awgn ?(taps = [| 0.15; 0.8; 0.12 |]) ?(noise_sigma = 0.02) ~rng
    ~n_symbols () =
  let syms = Pam.symbols rng n_symbols in
  let gauss = Stats.Rng.gauss_state (Stats.Rng.split rng) in
  let nt = Array.length taps in
  let sample n =
    if n < 0 || n >= n_symbols then 0.0
    else begin
      let acc = ref 0.0 in
      for j = 0 to nt - 1 do
        if n - j >= 0 then acc := !acc +. (taps.(j) *. syms.(n - j))
      done;
      !acc +. Stats.Rng.gauss_ms gauss ~mean:0.0 ~sigma:noise_sigma
    end
  in
  (* precompute so repeated reads of the same index are consistent *)
  let table = Array.init n_symbols sample in
  let stimulus n = if n < n_symbols then table.(n) else 0.0 in
  (stimulus, syms)

(** Pulse-shaped PAM waveform sampled at [sps] samples per symbol with a
    static fractional timing offset [tau] (in symbol periods) and AWGN —
    the Fig. 5 timing-recovery workload.  Sample [n] is
    [s(n/sps − tau) + w_n]. *)
let timing_offset_pam ?(beta = 0.35) ?(sps = 2) ?(noise_sigma = 0.01)
    ?(tau = 0.3) ~rng ~n_symbols () =
  let syms = Pam.symbols rng n_symbols in
  let gauss = Stats.Rng.gauss_state (Stats.Rng.split rng) in
  let n_samples = n_symbols * sps in
  let table =
    Array.init n_samples (fun n ->
        let t = (Float.of_int n /. Float.of_int sps) -. tau in
        Pam.waveform_sample ~beta syms t
        +. Stats.Rng.gauss_ms gauss ~mean:0.0 ~sigma:noise_sigma)
  in
  let stimulus n = if n >= 0 && n < n_samples then table.(n) else 0.0 in
  (stimulus, syms, n_samples)

(** Peak magnitude of a stimulus over its support — used to choose input
    signal [range()] annotations the way a designer reads a datasheet. *)
let peak stimulus ~n =
  let m = ref 0.0 in
  for i = 0 to n - 1 do
    m := Float.max !m (Float.abs (stimulus i))
  done;
  !m
