(** Pure simulation-based wordlength optimization — the comparison
    baseline after Sung & Kum (reference [1] of the paper).

    The method knows nothing about ranges or error propagation; it only
    ever observes an output quality figure (SQNR at a probe signal) from
    complete simulations:

    1. MSBs are taken from an initial monitored run (stimulus min/max —
       the only option a pure simulation approach has);
    2. for each signal, the {e minimum wordlength} is found by searching
       the smallest fractional wordlength that alone keeps the output
       SQNR above the target (all other signals left floating) — one
       full simulation per probe;
    3. all signals are set to their minima simultaneously; because the
       noise sources now add up, the combined configuration usually
       misses the target, so all fractional wordlengths are increased in
       lock-step until it is met.

    The point of the reproduction: the iteration count scales with
    (signals × search steps), versus the hybrid flow's 2–3 monitored
    runs — the trade-off that motivates the paper (§1). *)

type result = {
  lsb_positions : (string * int) list;
  msb_positions : (string * int) list;
  simulation_runs : int;
  achieved_sqnr_db : float;
  uniform_extra_bits : int;  (** lock-step increments needed in step 3 *)
  total_bits : int;
}

let sqnr_at env probe =
  match Sim.Env.find env probe with
  | None -> invalid_arg ("Baseline_sim: no probe signal " ^ probe)
  | Some s -> (
      match Flow.sqnr_db s with Some v -> v | None -> Float.neg_infinity)

(* Set signal [s] to <msb, lsb> two's complement, saturating (the safe
   choice a pure-simulation method must make, §1: overflow for untested
   stimuli cannot be excluded). *)
let set_format s ~msb ~lsb =
  let fmt = Fixpt.Qformat.of_positions ~msb ~lsb:(min lsb msb) Fixpt.Sign_mode.Tc in
  Sim.Signal.set_dtype s
    (Fixpt.Dtype.of_format ~overflow:Fixpt.Overflow_mode.Saturate
       (Sim.Signal.name s) fmt)

(** Optimize the fractional wordlengths of [signals] (names) so the SQNR
    at [probe] exceeds [target_db].  [lsb_search] bounds the per-signal
    search range of LSB positions (coarsest, finest). *)
let optimize ?(lsb_search = (0, -20)) ~(design : Flow.design) ~signals ~probe
    ~target_db () =
  let env = design.env in
  let runs = ref 0 in
  let simulate () =
    design.reset ();
    design.run ();
    incr runs
  in
  (* step 1: stimulus-observed MSBs from one float run *)
  List.iter
    (fun name ->
      match Sim.Env.find env name with
      | Some s -> Sim.Signal.clear_dtype s
      | None -> invalid_arg ("Baseline_sim: no signal " ^ name))
    signals;
  simulate ();
  let msb_of name =
    let s = Sim.Env.find_exn env name in
    match Msb_rules.msb_of_range (Sim.Signal.stat_range s) with
    | Some m -> m
    | None -> 0
  in
  let msbs = List.map (fun n -> (n, msb_of n)) signals in
  (* step 2: per-signal minimum wordlength, linear search coarse→fine *)
  let coarsest, finest = lsb_search in
  let min_lsb_for name =
    let s = Sim.Env.find_exn env name in
    let msb = List.assoc name msbs in
    let rec search lsb =
      if lsb < finest then finest
      else begin
        set_format s ~msb ~lsb;
        simulate ();
        let q = sqnr_at env probe in
        if q >= target_db then lsb else search (lsb - 1)
      end
    in
    let found = search coarsest in
    Sim.Signal.clear_dtype s;
    found
  in
  let lsbs = List.map (fun n -> (n, min_lsb_for n)) signals in
  (* step 3: combine and pad uniformly until the target is met *)
  let apply extra =
    List.iter
      (fun (name, lsb) ->
        let s = Sim.Env.find_exn env name in
        set_format s ~msb:(List.assoc name msbs) ~lsb:(lsb - extra))
      lsbs
  in
  let rec pad extra =
    apply extra;
    simulate ();
    let q = sqnr_at env probe in
    if q >= target_db || extra >= 8 then (extra, q) else pad (extra + 1)
  in
  let extra, achieved = pad 0 in
  let lsb_positions = List.map (fun (n, l) -> (n, l - extra)) lsbs in
  let total_bits =
    List.fold_left
      (fun acc (n, l) -> acc + (List.assoc n msbs - l + 1))
      0 lsb_positions
  in
  {
    lsb_positions;
    msb_positions = msbs;
    simulation_runs = !runs;
    achieved_sqnr_db = achieved;
    uniform_extra_bits = extra;
    total_bits;
  }
