(** LSB-side refinement rules (§5.2).

    After an error-monitored simulation each signal carries the (μ, σ,
    m̂) statistics of its produced difference error ε_p.  The placement
    rule is the paper's

    {v 2^p_LSB ≤ k_LSB · σ(ε_p) v}

    with the empirical constant [k_LSB ∈ [1,4]]: finer fractional bits
    would be drowned in the quantization/external noise already carried
    by the signal.  Special cases:

    - a signal with {e no} observed error (the slicer output, constants)
      is exact: its LSB comes from the value grid actually used;
    - a signal whose error statistics diverged (sensitive feedback, §4.2)
      has meaningless σ — it must be overruled with [error()] and
      re-simulated, which is what {!Flow} automates;
    - round vs floor: floor is cheaper but shifts μ by −q/2; it is
      recommended only when that bias stays small against the noise. *)

type config = {
  k_lsb : float;  (** the σ-rule constant, optimal in [1, 4] *)
  divergence_ratio : float;
      (** declare divergence when m̂(ε_p) exceeds this fraction of the
          signal's own observed magnitude *)
  floor_bias_ratio : float;
      (** recommend floor only if q/2 ≤ this · k·σ (bias kept below the
          noise the rule already accepts) *)
  min_lsb : int;  (** floor on positions, guards σ = 0 pathologies *)
  exact_grid_floor : int;
      (** coarsest-allowed position for exact-grid signals: a constant
          like 0.1 has no finite binary representation, and how finely
          to quantize coefficients is a transfer-function choice, not a
          noise question — cap it here *)
}

let default_config =
  {
    (* k = 1 reproduces the paper's Table 2 (σ = 2.5e-3 ⇒ LSB 9);
       larger k is coarser, the useful range is [1, 4] (§5.2) *)
    k_lsb = 1.0;
    divergence_ratio = 0.5;
    floor_bias_ratio = 0.5;
    min_lsb = -62;
    exact_grid_floor = -24;
  }

(** The σ-rule: largest (coarsest) LSB position [p] with
    [2^p ≤ k·σ]. *)
let sigma_rule ~k_lsb sigma =
  if sigma <= 0.0 then None
  else Some (Float.to_int (Float.floor (Float.log2 (k_lsb *. sigma))))

(** Has the error monitoring on this signal diverged?  The float/fixed
    difference is no longer a small quantization error but comparable to
    the signal itself (strongly correlated feedback, §4.2). *)
let diverged ?(config = default_config) (s : Sim.Signal.t) =
  let err = Stats.Err_stats.produced (Sim.Signal.err_stats s) in
  let m_err = Stats.Running.max_abs err in
  let m_sig =
    match Sim.Signal.stat_range s with
    | Some (lo, hi) -> Float.max (Float.abs lo) (Float.abs hi)
    | None -> 0.0
  in
  m_sig > 0.0 && m_err > config.divergence_ratio *. m_sig

(** Decide one signal from its monitors. *)
let decide ?(config = default_config) (s : Sim.Signal.t) : Decision.lsb =
  let name = Sim.Signal.name s in
  let err = Sim.Signal.err_stats s in
  let prod = Stats.Err_stats.produced err in
  let sigma = Stats.Running.stddev prod in
  let mean = Stats.Running.mean prod in
  let max_abs = Stats.Running.max_abs prod in
  let is_diverged = diverged ~config s in
  let overruled = Sim.Signal.error_injected s <> None in
  let lsb_pos, origin =
    match Sim.Signal.dtype s with
    | Some dt ->
        (* already quantized: report the type's LSB; the [loss] verdict
           below carries the §5.2 consumed-vs-produced check *)
        (Some (Fixpt.Dtype.lsb_pos dt), Decision.Already_typed)
    | None ->
    if is_diverged && not overruled then (None, Decision.No_information)
    else
      match sigma_rule ~k_lsb:config.k_lsb sigma with
      | Some p ->
          ( Some (max p config.min_lsb),
            if overruled then Decision.Overruled else Decision.Sigma_rule )
      | None -> (
          (* no noise at all: exact signal — use the value grid *)
          match Sim.Signal.grid_lsb s with
          | Some p -> (Some (max p config.exact_grid_floor), Decision.Exact_grid)
          | None ->
              if max_abs > 0.0 then
                (* deterministic constant error: place below it *)
                ( Some
                    (max config.min_lsb
                       (Float.to_int (Float.floor (Float.log2 max_abs)))),
                  Decision.Sigma_rule )
              else (None, Decision.No_information))
  in
  let round =
    match lsb_pos with
    | None -> Fixpt.Round_mode.Round
    | Some p ->
        let q = 2.0 ** Float.of_int p in
        if q /. 2.0 <= config.floor_bias_ratio *. config.k_lsb *. sigma then
          Fixpt.Round_mode.Floor
        else Fixpt.Round_mode.Round
  in
  {
    Decision.signal = name;
    lsb_pos;
    round;
    origin;
    sigma;
    mean;
    max_abs;
    diverged = is_diverged;
    loss = Stats.Err_stats.loss_verdict err;
  }

(** Decide every signal of an environment (declaration order). *)
let decide_all ?config env =
  List.map (fun s -> decide ?config s) (Sim.Env.signals env)

(** Signals whose error monitoring diverged and that are not yet
    overruled — the candidates for an [error()] annotation before the
    next iteration (Fig. 4's "LSB divergence for signal x").

    Designer-typed signals are excluded: per §5.2 the LSB refinement
    only targets floating (or large-LSB) signals — a typed signal is
    checked, not re-derived, and a wrap-typed accumulator (CIC) shows a
    huge float/fixed difference {e by design} (the float reference does
    not wrap; the modular differences cancel downstream). *)
let diverged_signals ?config env =
  List.filter
    (fun s ->
      Sim.Signal.dtype s = None
      && diverged ?config s
      && Sim.Signal.error_injected s = None)
    (Sim.Env.signals env)

(** Checks on already-quantized signals (§5.2 end): consumed vs produced
    precision.  Returns the signals showing unexpected precision
    {e gain} across the assignment (ε_p < ε_c on an overruled feedback
    signal: the injected error model underestimates the loop error —
    instability risk). *)
let instability_suspects env =
  List.filter
    (fun s ->
      Sim.Signal.error_injected s <> None
      && Stats.Err_stats.loss_verdict (Sim.Signal.err_stats s)
         = Stats.Err_stats.Feedback_gain)
    (Sim.Env.signals env)

(** Half-step of the LSB position [p] — the [error()] half-width that
    models quantization at [p] (the paper's example: LSB −5 ↔
    [error(0.0156)] = 2⁻⁶). *)
let error_halfwidth_of_lsb p = 2.0 ** Float.of_int (p - 1)
