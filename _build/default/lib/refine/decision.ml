(** Decision records produced by the refinement rules.

    The MSB and LSB sides are decided independently (the paper's central
    design point): an {!msb} decision fixes the integer weight and the
    overflow mode, an {!lsb} decision fixes the fractional weight and the
    rounding mode; {!to_dtype} fuses them into a concrete type. *)

(** Which §5.1 comparison case produced the MSB decision. *)
type msb_case =
  | Agree  (** (a) F(stat) = F(prop): safe, non-saturated *)
  | Prop_pessimistic
      (** (b) F(prop) ≫ F(stat) or exploded: accumulator-like; use
          saturation (or an explicit [range()]) at the statistic MSB *)
  | Trade_off
      (** (c) F(prop) moderately above F(stat): either trust propagation
          (safe MSB) or saturate at the statistic MSB *)

let msb_case_to_string = function
  | Agree -> "agree"
  | Prop_pessimistic -> "prop-pessimistic"
  | Trade_off -> "trade-off"

type msb = {
  signal : string;
  msb_pos : int;  (** decided MSB weight *)
  mode : Fixpt.Overflow_mode.t;
  case : msb_case;
  stat_msb : int option;  (** F of the observed range; None: no samples *)
  prop_msb : int option;  (** F of the propagated range; None: exploded *)
  guard : (float * float) option;
      (** for saturated signals: the observed boundaries the hardware
          saturation must cover (§5.1's guard range) *)
}

(** Why the LSB position landed where it did. *)
type lsb_origin =
  | Sigma_rule  (** [2^p ≤ k_LSB·σ(ε)] — the §5.2 rule *)
  | Exact_grid  (** no error observed; position from the value grid *)
  | Overruled  (** an [error()] annotation fixed the error model *)
  | Already_typed
      (** signal carries a designer type: its LSB is reported and only
          checked (consumed vs produced precision), not re-derived *)
  | No_information  (** no samples and no errors: left at full precision *)

let lsb_origin_to_string = function
  | Sigma_rule -> "sigma-rule"
  | Exact_grid -> "exact"
  | Overruled -> "error()"
  | Already_typed -> "typed"
  | No_information -> "none"

type lsb = {
  signal : string;
  lsb_pos : int option;  (** decided LSB weight; None if undecidable *)
  round : Fixpt.Round_mode.t;
  origin : lsb_origin;
  sigma : float;  (** σ of the produced error the rule used *)
  mean : float;  (** μ of the produced error *)
  max_abs : float;  (** m̂ of the produced error *)
  diverged : bool;  (** error monitoring was unstable on this signal *)
  loss : Stats.Err_stats.loss;  (** consumed-vs-produced verdict *)
}

(** Fuse MSB and LSB decisions into a signal type.  [None] when either
    side is missing a finite position. *)
let to_dtype ?(sign = Fixpt.Sign_mode.Tc) ~(msb : msb) ~(lsb : lsb) () =
  match lsb.lsb_pos with
  | None -> None
  | Some p when p > msb.msb_pos -> None
  | Some p ->
      Some
        (Fixpt.Dtype.of_format ~overflow:msb.mode ~round:lsb.round msb.signal
           (Fixpt.Qformat.of_positions ~msb:msb.msb_pos ~lsb:p sign))

let pp_msb ppf (d : msb) =
  Format.fprintf ppf "%s: msb=%d mode=%s case=%s" d.signal d.msb_pos
    (Fixpt.Overflow_mode.to_string d.mode)
    (msb_case_to_string d.case)

let pp_lsb ppf (d : lsb) =
  Format.fprintf ppf "%s: lsb=%s round=%s origin=%s" d.signal
    (match d.lsb_pos with Some p -> string_of_int p | None -> "?")
    (Fixpt.Round_mode.to_string d.round)
    (lsb_origin_to_string d.origin)
