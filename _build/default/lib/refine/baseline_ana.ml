(** Pure analytical wordlength derivation — the comparison baseline
    after Willems et al.'s interpolative approach (reference [3] of the
    paper).

    Thin orchestration over {!Sfg.Range_analysis} / {!Sfg.Wordlength}:
    a design that can describe itself as a signal-flow graph gets a
    complete wordlength assignment from static analysis alone — very
    fast (no simulation), but worst-case conservative: ranges are
    hull-of-all-executions, multiplications use magnitude bounds, and
    feedback either saturates by annotation or explodes.  The paper's
    §1 critique ("overestimation of signal wordlengths") is exactly the
    [overhead_bits] this module reports against a reference
    assignment. *)

type result = {
  wordlength : Sfg.Wordlength.result;
  range_iterations : int;
  exploded : string list;
}

(** Run the analytical assignment on a flowgraph: output noise budget
    [sigma_budget] at node [output]. *)
let analyze ?widen_after graph ~output ~sigma_budget =
  let wl = Sfg.Wordlength.assign ?widen_after graph ~output ~sigma_budget in
  let ranges = Sfg.Range_analysis.run ?widen_after graph in
  {
    wordlength = wl;
    range_iterations = ranges.Sfg.Range_analysis.iterations;
    exploded = wl.Sfg.Wordlength.exploded;
  }

(** MSB positions per signal from the analytical ranges ([None] =
    exploded). *)
let msb_positions result =
  List.map
    (fun (a : Sfg.Wordlength.assignment) ->
      (a.Sfg.Wordlength.name, a.Sfg.Wordlength.msb))
    result.wordlength.Sfg.Wordlength.assignments

(** Average MSB overestimation (in bits/signal) of the analytical
    assignment against reference positions (e.g. the hybrid flow's
    decisions), over signals present in both. *)
let overhead_bits result ~reference =
  let deltas =
    List.filter_map
      (fun (name, msb) ->
        match (msb, List.assoc_opt name reference) with
        | Some m, Some r -> Some (Float.of_int (m - r))
        | _ -> None)
      (msb_positions result)
  in
  match deltas with
  | [] -> None
  | _ ->
      Some (List.fold_left ( +. ) 0.0 deltas /. Float.of_int (List.length deltas))

(** Total datapath bits of the assignment ([None] when any range
    exploded — the honest analytical answer for an unannotated feedback
    design). *)
let total_bits result = result.wordlength.Sfg.Wordlength.total_bits
