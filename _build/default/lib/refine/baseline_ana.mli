(** Pure analytical wordlength derivation — the comparison baseline
    after Willems et al.'s interpolative approach (paper reference [3]):
    static analysis over a signal-flow graph, no simulation, worst-case
    conservative. *)

type result = {
  wordlength : Sfg.Wordlength.result;
  range_iterations : int;
  exploded : string list;
}

val analyze :
  ?widen_after:int -> Sfg.Graph.t -> output:string -> sigma_budget:float ->
  result

val msb_positions : result -> (string * int option) list

(** Average MSB overestimation (bits/signal) against reference positions
    (e.g. the hybrid flow's), over signals present in both. *)
val overhead_bits : result -> reference:(string * int) list -> float option

val total_bits : result -> int option
