(** MSB-side refinement rules (§5.1).

    After a monitored simulation each signal carries two range estimates:
    the statistic-based observed range and the quasi-analytically
    propagated range.  [F(vmin, vmax)] ({!Fixpt.Qformat.required_msb})
    turns each into a required MSB position, and the comparison decides
    position and overflow mode:

    - (a) [F(stat) = F(prop)]: both techniques agree the signal cannot
      overflow beyond that weight → non-saturated mode (error-typed
      during refinement, wrap-around in the final hardware);
    - (b) [F(prop)] much larger (or the propagation exploded): the
      propagation is hopelessly pessimistic — an accumulator/feedback
      pattern → saturation mode at the statistic MSB, with guard-range
      boundaries reported for the hardware saturation logic;
    - (c) [F(prop)] moderately larger: genuine trade-off; the default
      takes the propagation MSB (simulation may simply not have
      triggered the worst case), a saturating designer choice takes the
      statistic MSB. *)

type config = {
  saturation_gap : int;
      (** bits of [F(prop) − F(stat)] at which case (b) is declared
          (the paper's "very pessimistic"); explosion always is *)
  guard_bits : int;
      (** extra bits on top of F(stat) when saturating — safety margin
          for stimuli the simulation did not cover *)
  prefer_saturation_on_tradeoff : bool;
      (** case (c): take saturation at F(stat) instead of F(prop) *)
}

let default_config =
  { saturation_gap = 4; guard_bits = 0; prefer_saturation_on_tradeoff = false }

let msb_of_range = function
  | None -> None
  | Some (lo, hi) -> Fixpt.Qformat.required_msb Fixpt.Sign_mode.Tc ~vmin:lo ~vmax:hi

(** Decide one signal from its monitors. *)
let decide ?(config = default_config) (s : Sim.Signal.t) : Decision.msb =
  let name = Sim.Signal.name s in
  let stat = Sim.Signal.stat_range s in
  let prop = Sim.Signal.prop_range s in
  let stat_msb = msb_of_range stat in
  let prop_msb = if Sim.Signal.exploded s then None else msb_of_range prop in
  let guard () = stat in
  match Sim.Signal.explicit_range s with
  | Some r ->
      (* a [range()] annotation is a designer assertion, not a guarantee:
         the hardware saturates at it (Table 1 marks these rows "(st)") *)
      let lo = Interval.lo r and hi = Interval.hi r in
      let m =
        match Fixpt.Qformat.required_msb Fixpt.Sign_mode.Tc ~vmin:lo ~vmax:hi with
        | Some m -> m
        | None -> 0
      in
      {
        Decision.signal = name;
        msb_pos = m + config.guard_bits;
        mode = Fixpt.Overflow_mode.Saturate;
        case = Decision.Prop_pessimistic;
        stat_msb;
        prop_msb;
        guard = guard ();
      }
  | None -> (
  match (stat_msb, prop_msb) with
  | None, None ->
      (* never assigned: nothing to decide; keep a unit-weight default *)
      {
        Decision.signal = name;
        msb_pos = 0;
        mode = Fixpt.Overflow_mode.Error;
        case = Decision.Agree;
        stat_msb;
        prop_msb;
        guard = None;
      }
  | None, Some p ->
      (* analyzed but never exercised: only propagation speaks *)
      {
        Decision.signal = name;
        msb_pos = p;
        mode = Fixpt.Overflow_mode.Error;
        case = Decision.Agree;
        stat_msb;
        prop_msb;
        guard = None;
      }
  | Some ms, None ->
      (* propagation exploded: case (b) *)
      {
        Decision.signal = name;
        msb_pos = ms + config.guard_bits;
        mode = Fixpt.Overflow_mode.Saturate;
        case = Decision.Prop_pessimistic;
        stat_msb;
        prop_msb;
        guard = guard ();
      }
  | Some ms, Some mp ->
      if mp <= ms then
        (* case (a): agreement (propagation can even be tighter when an
           explicit range shrank it) *)
        {
          Decision.signal = name;
          msb_pos = max ms mp;
          mode = Fixpt.Overflow_mode.Error;
          case = Decision.Agree;
          stat_msb;
          prop_msb;
          guard = None;
        }
      else if mp - ms >= config.saturation_gap then
        {
          Decision.signal = name;
          msb_pos = ms + config.guard_bits;
          mode = Fixpt.Overflow_mode.Saturate;
          case = Decision.Prop_pessimistic;
          stat_msb;
          prop_msb;
          guard = guard ();
        }
      else if config.prefer_saturation_on_tradeoff then
        {
          Decision.signal = name;
          msb_pos = ms;
          mode = Fixpt.Overflow_mode.Saturate;
          case = Decision.Trade_off;
          stat_msb;
          prop_msb;
          guard = guard ();
        }
      else
        {
          Decision.signal = name;
          msb_pos = mp;
          mode = Fixpt.Overflow_mode.Error;
          case = Decision.Trade_off;
          stat_msb;
          prop_msb;
          guard = None;
        })

(** Decide every signal of an environment (declaration order). *)
let decide_all ?config env =
  List.map (fun s -> decide ?config s) (Sim.Env.signals env)

(** Signals whose propagated range exploded this run — the candidates
    for a [range()] annotation or saturation before the next iteration
    (the Fig. 4 feedback arc "MSB explosion for signal x"). *)
let exploded_signals env =
  List.filter Sim.Signal.exploded (Sim.Env.signals env)

(** Aggregate MSB overhead of propagation-based decisions over
    statistic-based ones, in bits per signal — the §6.1 "0.22 bits per
    signal" comparison.  Only counts signals where both estimates
    exist. *)
let overhead_bits_per_signal (decisions : Decision.msb list) =
  let deltas =
    List.filter_map
      (fun (d : Decision.msb) ->
        match (d.Decision.stat_msb, d.Decision.prop_msb) with
        | Some s, Some p -> Some (Float.of_int (max 0 (p - s)))
        | _ -> None)
      decisions
  in
  match deltas with
  | [] -> 0.0
  | _ -> List.fold_left ( +. ) 0.0 deltas /. Float.of_int (List.length deltas)
