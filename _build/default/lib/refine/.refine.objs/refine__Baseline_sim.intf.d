lib/refine/baseline_sim.mli: Flow
