lib/refine/flow.ml: Decision Fixpt Float Format List Logs Lsb_rules Msb_rules Option Sim Stats String
