lib/refine/msb_rules.mli: Decision Sim
