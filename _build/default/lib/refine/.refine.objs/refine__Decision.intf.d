lib/refine/decision.mli: Fixpt Format Stats
