lib/refine/decision.ml: Fixpt Format Stats
