lib/refine/flow.mli: Decision Fixpt Format Lsb_rules Msb_rules Sim
