lib/refine/baseline_sim.ml: Fixpt Float Flow List Msb_rules Sim
