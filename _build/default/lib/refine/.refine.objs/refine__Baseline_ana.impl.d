lib/refine/baseline_ana.ml: Float List Sfg
