lib/refine/lsb_rules.mli: Decision Sim
