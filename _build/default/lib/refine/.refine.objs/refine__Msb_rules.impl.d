lib/refine/msb_rules.ml: Decision Fixpt Float Interval List Sim
