lib/refine/baseline_ana.mli: Sfg
