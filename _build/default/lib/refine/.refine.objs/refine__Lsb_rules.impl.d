lib/refine/lsb_rules.ml: Decision Fixpt Float List Sim Stats
