lib/refine/report.ml: Decision Fixpt Float Format List Lsb_rules Msb_rules Printf Sim String
