lib/refine/report.mli: Decision Format Lsb_rules Msb_rules Sim
