(** Table-formatted refinement reports, in the layout of the paper's
    Tables 1 (MSB analysis) and 2 (LSB analysis). *)

type msb_row

val msb_row : Sim.Signal.t -> Decision.msb -> msb_row
val pp_msb_table : Format.formatter -> msb_row list -> unit

type lsb_row

val lsb_row : Sim.Signal.t -> Decision.lsb -> lsb_row
val pp_lsb_table : Format.formatter -> lsb_row list -> unit

val msb_table : ?config:Msb_rules.config -> Sim.Env.t -> msb_row list
val lsb_table : ?config:Lsb_rules.config -> Sim.Env.t -> lsb_row list
val print_msb : ?config:Msb_rules.config -> Sim.Env.t -> unit
val print_lsb : ?config:Lsb_rules.config -> Sim.Env.t -> unit

(** One-line summary: signal/saturated/exploded counts, total bits. *)
val summary : Sim.Env.t -> Decision.msb list -> Decision.lsb list -> string
