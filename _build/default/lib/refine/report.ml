(** Table-formatted refinement reports, in the layout of the paper's
    Tables 1 and 2.

    Table 1 (MSB analysis): per signal — access count, observed
    min/max/msb (statistic-based), propagated min/max/msb
    (range-propagation), decided MSB and mode.

    Table 2 (LSB analysis): per signal — assignment count, m̂, μ, σ of
    the produced error, and the inferred LSB position (printed as the
    fractional wordlength, as the paper does). *)

let fnum v =
  if Float.abs v = Float.infinity then (if v > 0.0 then "+inf" else "-inf")
  else if v = 0.0 then "0"
  else if Float.abs v >= 1000.0 || Float.abs v < 0.01 then
    Printf.sprintf "%.2e" v
  else Printf.sprintf "%.4f" v

let opt_int = function Some i -> string_of_int i | None -> "!!"

(* --- MSB table (Table 1 layout) --------------------------------------- *)

type msb_row = {
  name : string;
  accesses : int;
  stat_min : string;
  stat_max : string;
  stat_msb : string;
  prop_min : string;
  prop_max : string;
  prop_msb : string;
  decided : string;
}

let msb_row (s : Sim.Signal.t) (d : Decision.msb) =
  let stat = Sim.Signal.stat_range s in
  let prop = Sim.Signal.prop_range s in
  let pair = function
    | Some (lo, hi) -> (fnum lo, fnum hi)
    | None -> ("-", "-")
  in
  let smin, smax = pair stat and pmin, pmax = pair prop in
  let mode_suffix =
    match d.Decision.mode with
    | Fixpt.Overflow_mode.Saturate -> " (st)"
    | Fixpt.Overflow_mode.Wrap | Fixpt.Overflow_mode.Error -> ""
  in
  {
    name = Sim.Signal.name s;
    accesses = Sim.Signal.assignments s;
    stat_min = smin;
    stat_max = smax;
    stat_msb = opt_int d.Decision.stat_msb;
    prop_min = pmin;
    prop_max = pmax;
    prop_msb = opt_int d.Decision.prop_msb;
    decided = string_of_int d.Decision.msb_pos ^ mode_suffix;
  }

let columns widths cells =
  String.concat "  "
    (List.map2 (fun w c -> Printf.sprintf "%*s" w c) widths cells)

let msb_widths = [ 8; 6; 9; 9; 4; 9; 9; 4; 8 ]

let pp_msb_table ppf rows =
  Format.fprintf ppf "%s@."
    (columns msb_widths
       [ "name"; "#n"; "min"; "max"; "msb"; "min"; "max"; "msb"; "MSB" ]);
  Format.fprintf ppf "%s@."
    (columns msb_widths
       [ ""; ""; "(stat)"; "(stat)"; ""; "(prop)"; "(prop)"; ""; "" ]);
  List.iter
    (fun r ->
      Format.fprintf ppf "%s@."
        (columns msb_widths
           [
             r.name;
             string_of_int r.accesses;
             r.stat_min;
             r.stat_max;
             r.stat_msb;
             r.prop_min;
             r.prop_max;
             r.prop_msb;
             r.decided;
           ]))
    rows

(* --- LSB table (Table 2 layout) --------------------------------------- *)

type lsb_row = {
  name : string;
  assigns : int;
  max_abs : string;
  mean : string;
  sigma : string;
  lsb : string;  (** printed as fractional wordlength f = −p, per paper *)
}

let lsb_row (s : Sim.Signal.t) (d : Decision.lsb) =
  {
    name = Sim.Signal.name s;
    assigns = Sim.Signal.assignments s;
    max_abs = fnum d.Decision.max_abs;
    mean = fnum d.Decision.mean;
    sigma = fnum d.Decision.sigma;
    lsb =
      (match d.Decision.lsb_pos with
      | Some p -> string_of_int (-p)
      | None -> if d.Decision.diverged then "div!" else "-");
  }

let lsb_widths = [ 8; 6; 10; 10; 10; 5 ]

let pp_lsb_table ppf rows =
  Format.fprintf ppf "%s@."
    (columns lsb_widths [ "name"; "#n"; "m^"; "mu"; "sigma"; "LSB" ]);
  List.iter
    (fun r ->
      Format.fprintf ppf "%s@."
        (columns lsb_widths
           [
             r.name;
             string_of_int r.assigns;
             r.max_abs;
             r.mean;
             r.sigma;
             r.lsb;
           ]))
    rows

(* --- whole-environment helpers ---------------------------------------- *)

let msb_table ?config env =
  List.map
    (fun s -> msb_row s (Msb_rules.decide ?config s))
    (Sim.Env.signals env)

let lsb_table ?config env =
  List.map
    (fun s -> lsb_row s (Lsb_rules.decide ?config s))
    (Sim.Env.signals env)

let print_msb ?config env =
  Format.printf "%a" pp_msb_table (msb_table ?config env)

let print_lsb ?config env =
  Format.printf "%a" pp_lsb_table (lsb_table ?config env)

(** One-line summary of a final refinement: signal count, saturated
    count, exploded count, total bits. *)
let summary env (msbs : Decision.msb list) (lsbs : Decision.lsb list) =
  let saturated =
    List.length
      (List.filter
         (fun (d : Decision.msb) ->
           Fixpt.Overflow_mode.is_saturating d.Decision.mode)
         msbs)
  in
  let exploded = List.length (Msb_rules.exploded_signals env) in
  let bits =
    List.fold_left2
      (fun acc (m : Decision.msb) (l : Decision.lsb) ->
        match (acc, l.Decision.lsb_pos) with
        | Some a, Some p when p <= m.Decision.msb_pos ->
            Some (a + (m.Decision.msb_pos - p + 1))
        | _ -> acc)
      (Some 0) msbs lsbs
  in
  Printf.sprintf "%d signals, %d saturated, %d exploded, total bits: %s"
    (List.length msbs) saturated exploded
    (match bits with Some b -> string_of_int b | None -> "n/a")
