(** Pure simulation-based wordlength optimization — the comparison
    baseline after Sung & Kum (paper reference [1]): per-signal minimum
    wordlength search under an output-SQNR constraint, then lock-step
    padding — one full simulation per probe.  Reproduces the iteration-
    count trade-off that motivates the paper. *)

type result = {
  lsb_positions : (string * int) list;
  msb_positions : (string * int) list;
  simulation_runs : int;
  achieved_sqnr_db : float;
  uniform_extra_bits : int;  (** lock-step increments needed in step 3 *)
  total_bits : int;
}

(** Optimize the named signals so the SQNR at [probe] exceeds
    [target_db].  [lsb_search] is the (coarsest, finest) LSB-position
    search window. *)
val optimize :
  ?lsb_search:int * int ->
  design:Flow.design ->
  signals:string list ->
  probe:string ->
  target_db:float ->
  unit ->
  result
