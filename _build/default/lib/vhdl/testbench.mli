(** Self-checking VHDL testbench generation with golden vectors: drives
    the generated entity with the refinement's own stimulus and asserts
    the bit-true expected outputs (as integer mantissa codes), for any
    VHDL simulator. *)

type vector = { inputs : (string * int) list; expected : (string * int) list }

(** Mantissa code of a representable value. *)
val code_of : Fixpt.Qformat.t -> float -> int

(** Run [step i] for [i = 0..n-1], sampling the named inputs/outputs
    (current fixed-point values) into golden vectors after each step. *)
val capture :
  formats:(string -> Fixpt.Qformat.t) ->
  inputs:(string * (unit -> float)) list ->
  outputs:(string * (unit -> float)) list ->
  int ->
  (int -> unit) ->
  vector list

(** Emit the testbench for [dut], checking [vectors]; [latency] — cycles
    between driving a vector and checking its outputs. *)
val emit :
  ?latency:int ->
  dut:Ast.entity ->
  formats:Of_sfg.format_map ->
  vector list ->
  string

val write_file :
  ?latency:int ->
  dut:Ast.entity ->
  formats:Of_sfg.format_map ->
  vector list ->
  string ->
  unit
