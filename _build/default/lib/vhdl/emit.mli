(** VHDL-93 pretty printer: one self-contained design file per entity
    (IEEE numeric_std, entity/architecture, format-annotated signal
    declarations, concurrent datapath, clocked register process, and the
    [sat] helper function). *)

val expr : Ast.expr -> string
val entity : Ast.entity -> string
val write_file : Ast.entity -> string -> unit
