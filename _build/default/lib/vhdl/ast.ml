(** A small VHDL abstract syntax, sufficient for the fixed-point
    datapaths this library generates.

    The design environment's back end (§2: "a code generator enables
    translation of the cycle true C description to synthesizable VHDL")
    is reproduced for the refined designs: every signal becomes a
    [signed] vector of its decided wordlength, combinational nodes
    become concurrent assignments, delays become a clocked process, and
    the MSB/LSB modes become saturation/rounding logic. *)

type expr =
  | Id of string
  | Int_lit of int
  | Slv_lit of string  (** bit-string literal, e.g. ["0101"] *)
  | Binop of string * expr * expr  (** infix: [+], [-], [*], [&] … *)
  | Unop of string * expr
  | Call of string * expr list  (** function call: [resize(x, 8)] *)
  | Index of expr * int
  | Slice of expr * int * int  (** [x(hi downto lo)] *)
  | Paren of expr
  | When of expr * expr * expr  (** conditional expression: a when c else b *)

type signal_decl = {
  sig_name : string;
  width : int;
  comment : string option;  (** e.g. the fixed-point format *)
}

type stmt =
  | Assign of string * expr  (** concurrent [<=] *)
  | Comment of string

type port_dir = In | Out

type port = { port_name : string; dir : port_dir; port_width : int }

type clocked_process = {
  label : string;
  clock : string;
  reset : string option;
  assigns : (string * expr) list;  (** registered target <= expr *)
}

type entity = {
  entity_name : string;
  ports : port list;
  signals : signal_decl list;
  body : stmt list;
  processes : clocked_process list;
}

(* --- convenience constructors ----------------------------------------- *)

let id s = Id s
let ( +^ ) a b = Binop ("+", a, b)
let ( -^ ) a b = Binop ("-", a, b)
let ( *^ ) a b = Binop ("*", a, b)
let resize e w = Call ("resize", [ e; Int_lit w ])
let shift_left_e e k = Call ("shift_left", [ e; Int_lit k ])
let shift_right_e e k = Call ("shift_right", [ e; Int_lit k ])
let abs_e e = Call ("abs", [ e ])
