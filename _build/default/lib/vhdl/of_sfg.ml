(** VHDL generation from a refined signal-flow graph.

    Input: a {!Sfg.Graph} plus a fixed-point format per node (normally
    the product of the refinement flow).  Every node becomes a [signed]
    vector holding its value's mantissa (value = mantissa · 2^lsb);
    binary-point alignment becomes explicit shifts, LSB modes become
    shift/round logic and MSB modes become wrap ([resize]) or saturate
    ([sat]) — the hardware the paper's §5 rules are choosing between.

    Unsupported in hardware generation: [Div] (no combinational divider
    in scope; interpolator-style designs quantize reciprocals instead —
    raises {!Unsupported}). *)

exception Unsupported of string

type format_map = string -> Fixpt.Qformat.t

(* Working width for intermediate arithmetic before the final resize. *)
let work_width = 48

let vhdl_name =
  String.map (function
    | '[' | ']' | ' ' | '-' | '*' | '(' | ')' | '.' | '\'' | '/' -> '_'
    | c -> c)

(* Mantissa expression of node [name] aligned from its own LSB to
   [to_lsb], in the working width. *)
let align e ~from_lsb ~to_lsb =
  let e = Ast.resize e work_width in
  if from_lsb = to_lsb then e
  else if from_lsb > to_lsb then Ast.shift_left_e e (from_lsb - to_lsb)
  else Ast.shift_right_e e (to_lsb - from_lsb)

let const_mant c fmt =
  let step = Fixpt.Qformat.step fmt in
  Float.to_int (Float.round (c /. step))

(* Final write into a node's format: optional saturation. *)
let finalize ~saturating e width =
  if saturating then Ast.Call ("sat", [ e; Ast.Int_lit width ])
  else Ast.resize e width

(** Generate an entity from the graph.  [formats] assigns a
    {!Fixpt.Qformat} to every node name; [saturating] names the nodes
    whose MSB mode is saturation (from the refinement decisions). *)
let entity ?(saturating = fun (_ : string) -> false) ~name
    ~(formats : format_map) graph =
  Sfg.Graph.validate_exn graph;
  let nodes = Sfg.Graph.nodes graph in
  let fmt_of (n : Sfg.Node.t) = formats n.Sfg.Node.name in
  let lsb_of n = Fixpt.Qformat.lsb_pos (fmt_of n) in
  let node_by_id i = Sfg.Graph.node graph i in
  let sig_of (n : Sfg.Node.t) = "s_" ^ vhdl_name n.Sfg.Node.name in
  let ports = ref [] and signals = ref [] and body = ref [] in
  let regs = ref [] in
  let read (n : Sfg.Node.t) ~to_lsb =
    align (Ast.id (sig_of n)) ~from_lsb:(lsb_of n) ~to_lsb
  in
  List.iter
    (fun (n : Sfg.Node.t) ->
      let fmt = fmt_of n in
      let width = Fixpt.Qformat.n fmt in
      let lsb = Fixpt.Qformat.lsb_pos fmt in
      let me = sig_of n in
      let arg i = node_by_id (List.nth n.Sfg.Node.inputs i) in
      let sat = saturating n.Sfg.Node.name in
      let comb e = body := Ast.Assign (me, finalize ~saturating:sat e width) :: !body in
      (match n.Sfg.Node.op with
      | Sfg.Node.Input _ ->
          ports :=
            { Ast.port_name = "i_" ^ vhdl_name n.Sfg.Node.name;
              dir = Ast.In; port_width = width }
            :: !ports;
          body :=
            Ast.Assign
              (me, Ast.id ("i_" ^ vhdl_name n.Sfg.Node.name))
            :: !body
      | Sfg.Node.Const c ->
          body :=
            Ast.Assign
              (me, Ast.Call ("to_signed", [ Ast.Int_lit (const_mant c fmt); Ast.Int_lit width ]))
            :: !body
      | Sfg.Node.Add -> comb Ast.(read (arg 0) ~to_lsb:lsb +^ read (arg 1) ~to_lsb:lsb)
      | Sfg.Node.Sub -> comb Ast.(read (arg 0) ~to_lsb:lsb -^ read (arg 1) ~to_lsb:lsb)
      | Sfg.Node.Mul ->
          (* product mantissa: m_a·m_b at lsb_a+lsb_b, then align *)
          let a = arg 0 and b = arg 1 in
          let product = Ast.(Paren (Id (sig_of a) *^ Id (sig_of b))) in
          comb
            (align product
               ~from_lsb:(lsb_of a + lsb_of b)
               ~to_lsb:lsb)
      | Sfg.Node.Div ->
          raise (Unsupported (Printf.sprintf "division at node %s" n.Sfg.Node.name))
      | Sfg.Node.Neg -> comb (Ast.Unop ("-", Ast.Paren (read (arg 0) ~to_lsb:lsb)))
      | Sfg.Node.Abs -> comb (Ast.abs_e (read (arg 0) ~to_lsb:lsb))
      | Sfg.Node.Min ->
          let a = read (arg 0) ~to_lsb:lsb and b = read (arg 1) ~to_lsb:lsb in
          comb (Ast.When (Ast.Binop ("<", Ast.Paren a, Ast.Paren b), Ast.Paren a, Ast.Paren b))
      | Sfg.Node.Max ->
          let a = read (arg 0) ~to_lsb:lsb and b = read (arg 1) ~to_lsb:lsb in
          comb (Ast.When (Ast.Binop (">", Ast.Paren a, Ast.Paren b), Ast.Paren a, Ast.Paren b))
      | Sfg.Node.Shift k -> comb (align (Ast.id (sig_of (arg 0))) ~from_lsb:(lsb_of (arg 0) + k) ~to_lsb:lsb)
      | Sfg.Node.Delay _ ->
          regs := (me, read (arg 0) ~to_lsb:lsb, width, sat) :: !regs
      | Sfg.Node.Quantize dt ->
          let src = arg 0 in
          let rounded =
            match Fixpt.Dtype.round dt with
            | Fixpt.Round_mode.Floor -> read src ~to_lsb:lsb
            | Fixpt.Round_mode.Round ->
                (* align to one bit below the target, add half an LSB,
                   then truncate that bit *)
                if lsb_of src < lsb then
                  let wide = align (Ast.id (sig_of src)) ~from_lsb:(lsb_of src) ~to_lsb:(lsb - 1) in
                  Ast.shift_right_e (Ast.Paren Ast.(wide +^ Int_lit 1)) 1
                else read src ~to_lsb:lsb
          in
          let saturates =
            Fixpt.Overflow_mode.is_saturating (Fixpt.Dtype.overflow dt)
          in
          body :=
            Ast.Assign (me, finalize ~saturating:saturates rounded width)
            :: !body
      | Sfg.Node.Alias ->
          body :=
            Ast.Assign (me, finalize ~saturating:sat (read (arg 0) ~to_lsb:lsb) width)
            :: !body
      | Sfg.Node.Saturate _ ->
          body :=
            Ast.Assign
              (me, finalize ~saturating:true (read (arg 0) ~to_lsb:lsb) width)
            :: !body
      | Sfg.Node.Select ->
          let c = arg 0 in
          let a = read (arg 1) ~to_lsb:lsb and b = read (arg 2) ~to_lsb:lsb in
          comb
            (Ast.When
               ( Ast.Binop (">=", Ast.Id (sig_of c), Ast.Call ("to_signed", [ Ast.Int_lit 0; Ast.Int_lit (Fixpt.Qformat.n (fmt_of c)) ])),
                 Ast.Paren a,
                 Ast.Paren b )));
      signals :=
        { Ast.sig_name = me; width;
          comment = Some (Fixpt.Qformat.to_string fmt) }
        :: !signals)
    nodes;
  (* outputs: drive ports from marked output nodes *)
  List.iter
    (fun (oname, oid) ->
      let n = node_by_id oid in
      let width = Fixpt.Qformat.n (fmt_of n) in
      ports :=
        { Ast.port_name = "o_" ^ vhdl_name oname; dir = Ast.Out;
          port_width = width }
        :: !ports;
      body := Ast.Assign ("o_" ^ vhdl_name oname, Ast.id (sig_of n)) :: !body)
    (Sfg.Graph.outputs graph);
  let processes =
    match !regs with
    | [] -> []
    | rs ->
        [
          {
            Ast.label = "registers";
            clock = "clk";
            reset = None;
            assigns =
              List.rev_map
                (fun (t, e, w, sat) ->
                  (t, finalize ~saturating:sat e w))
                rs;
          };
        ]
  in
  {
    Ast.entity_name = vhdl_name name;
    ports = List.rev !ports;
    signals = List.rev !signals;
    body = List.rev !body;
    processes;
  }

(** Uniform format map for quick tests: every node [<n, f, tc>]. *)
let uniform_formats ~n ~f : format_map =
 fun _ -> Fixpt.Qformat.make ~n ~f Fixpt.Sign_mode.Tc

(** Format map from refinement-flow types, with a default for nodes the
    flow did not type. *)
let formats_of_types ?(default = Fixpt.Qformat.make ~n:16 ~f:12 Fixpt.Sign_mode.Tc)
    types : format_map =
 fun name ->
  match List.assoc_opt name types with
  | Some dt -> Fixpt.Dtype.fmt dt
  | None -> default
