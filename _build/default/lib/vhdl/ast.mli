(** A small VHDL abstract syntax, sufficient for the fixed-point
    datapaths this library generates (§2's back end: signals become
    [signed] vectors, delays a clocked process, MSB/LSB modes become
    saturation/rounding logic). *)

type expr =
  | Id of string
  | Int_lit of int
  | Slv_lit of string  (** bit-string literal *)
  | Binop of string * expr * expr
  | Unop of string * expr
  | Call of string * expr list
  | Index of expr * int
  | Slice of expr * int * int  (** [x(hi downto lo)] *)
  | Paren of expr
  | When of expr * expr * expr  (** [a when c else b] *)

type signal_decl = {
  sig_name : string;
  width : int;
  comment : string option;  (** e.g. the fixed-point format *)
}

type stmt = Assign of string * expr  (** concurrent [<=] *) | Comment of string

type port_dir = In | Out

type port = { port_name : string; dir : port_dir; port_width : int }

type clocked_process = {
  label : string;
  clock : string;
  reset : string option;
  assigns : (string * expr) list;
}

type entity = {
  entity_name : string;
  ports : port list;
  signals : signal_decl list;
  body : stmt list;
  processes : clocked_process list;
}

(* convenience constructors *)

val id : string -> expr
val ( +^ ) : expr -> expr -> expr
val ( -^ ) : expr -> expr -> expr
val ( *^ ) : expr -> expr -> expr
val resize : expr -> int -> expr
val shift_left_e : expr -> int -> expr
val shift_right_e : expr -> int -> expr
val abs_e : expr -> expr
