(** VHDL generation from a refined signal-flow graph: every node becomes
    a [signed] mantissa vector, binary-point alignment becomes explicit
    shifts, LSB modes become shift/round logic and MSB modes wrap
    ([resize]) or saturate ([sat]).  [Div] is unsupported in hardware
    generation and raises {!Unsupported}. *)

exception Unsupported of string

type format_map = string -> Fixpt.Qformat.t

(** [entity ~name ~formats g] — [formats] assigns a format per node
    name; [saturating] names nodes whose MSB mode is saturation. *)
val entity :
  ?saturating:(string -> bool) ->
  name:string ->
  formats:format_map ->
  Sfg.Graph.t ->
  Ast.entity

(** Every node [<n, f, tc>] (quick tests). *)
val uniform_formats : n:int -> f:int -> format_map

(** Format map from refinement-flow types, with a default for untyped
    nodes. *)
val formats_of_types :
  ?default:Fixpt.Qformat.t -> (string * Fixpt.Dtype.t) list -> format_map
