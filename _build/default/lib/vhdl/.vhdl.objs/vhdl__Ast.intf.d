lib/vhdl/ast.mli:
