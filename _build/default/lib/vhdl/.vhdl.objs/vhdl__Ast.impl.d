lib/vhdl/ast.ml:
