lib/vhdl/testbench.ml: Ast Buffer Fixpt Float Fun List Of_sfg Printf String
