lib/vhdl/emit.ml: Ast Buffer Fun List Printf String
