lib/vhdl/of_sfg.mli: Ast Fixpt Sfg
