lib/vhdl/of_sfg.ml: Ast Fixpt Float List Printf Sfg String
