lib/vhdl/testbench.mli: Ast Fixpt Of_sfg
