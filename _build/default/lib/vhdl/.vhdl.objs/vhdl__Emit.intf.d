lib/vhdl/emit.mli: Ast
