(** Fixed-bin histogram over a float range.

    Used by the refinement reports to show how much of a signal's
    dynamic range is actually exercised (the "guard range" question for
    saturated signals, §5.1) and by tests to check error distributions
    against the uniform quantization-noise model. *)

type t = {
  lo : float;
  hi : float;
  bins : int array;
  mutable below : int;  (** samples under [lo] *)
  mutable above : int;  (** samples over [hi] *)
  mutable total : int;
}

let create ~lo ~hi ~bins =
  if bins < 1 then invalid_arg "Histogram.create: bins must be >= 1";
  if not (lo < hi) then invalid_arg "Histogram.create: lo must be < hi";
  { lo; hi; bins = Array.make bins 0; below = 0; above = 0; total = 0 }

let n_bins t = Array.length t.bins

let bin_index t v =
  let w = (t.hi -. t.lo) /. Float.of_int (n_bins t) in
  let i = Float.to_int (Float.floor ((v -. t.lo) /. w)) in
  if i < 0 then -1 else if i >= n_bins t then n_bins t else i

let add t v =
  if not (Float.is_nan v) then begin
    t.total <- t.total + 1;
    if v < t.lo then t.below <- t.below + 1
    else if v >= t.hi then
      if v = t.hi then t.bins.(n_bins t - 1) <- t.bins.(n_bins t - 1) + 1
      else t.above <- t.above + 1
    else
      let i = bin_index t v in
      t.bins.(i) <- t.bins.(i) + 1
  end

let total t = t.total
let below t = t.below
let above t = t.above
let counts t = Array.copy t.bins

(** Fraction of samples that fell outside [[lo, hi)]. *)
let outlier_fraction t =
  if t.total = 0 then 0.0
  else Float.of_int (t.below + t.above) /. Float.of_int t.total

(** Smallest central sub-range [[a, b]] (aligned to bin edges) containing
    at least [coverage] of the in-range samples — an empirical guard
    range for a saturating implementation. *)
let coverage_range t ~coverage =
  if coverage <= 0.0 || coverage > 1.0 then
    invalid_arg "Histogram.coverage_range: coverage must be in (0, 1]";
  let inside = t.total - t.below - t.above in
  if inside = 0 then None
  else begin
    let needed = Float.to_int (Float.ceil (coverage *. Float.of_int inside)) in
    let n = n_bins t in
    let w = (t.hi -. t.lo) /. Float.of_int n in
    (* shrink symmetrically from the outside in *)
    let lo_i = ref 0 and hi_i = ref (n - 1) in
    let current = ref inside in
    let continue = ref true in
    while !continue && !lo_i < !hi_i do
      let drop_lo = t.bins.(!lo_i) and drop_hi = t.bins.(!hi_i) in
      let candidate = !current - min drop_lo drop_hi in
      if candidate < needed then continue := false
      else if drop_lo <= drop_hi then begin
        current := !current - drop_lo;
        incr lo_i
      end
      else begin
        current := !current - drop_hi;
        decr hi_i
      end
    done;
    Some (t.lo +. (Float.of_int !lo_i *. w), t.lo +. (Float.of_int (!hi_i + 1) *. w))
  end

(** Chi-square statistic against a uniform distribution over the bins —
    property tests use this to sanity-check rounding-error flatness. *)
let chi_square_uniform t =
  let inside = t.total - t.below - t.above in
  if inside = 0 then 0.0
  else
    let expected = Float.of_int inside /. Float.of_int (n_bins t) in
    Array.fold_left
      (fun acc c ->
        let d = Float.of_int c -. expected in
        acc +. (d *. d /. expected))
      0.0 t.bins

let pp ppf t =
  Format.fprintf ppf "hist[%g,%g) n=%d below=%d above=%d" t.lo t.hi t.total
    t.below t.above
