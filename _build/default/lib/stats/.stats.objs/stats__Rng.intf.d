lib/stats/rng.mli:
