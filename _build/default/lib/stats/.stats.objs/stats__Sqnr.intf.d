lib/stats/sqnr.mli: Format
