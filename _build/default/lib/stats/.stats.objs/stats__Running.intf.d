lib/stats/running.mli: Format
