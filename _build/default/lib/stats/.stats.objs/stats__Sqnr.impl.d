lib/stats/sqnr.ml: Array Float Format
