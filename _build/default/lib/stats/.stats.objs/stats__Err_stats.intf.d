lib/stats/err_stats.mli: Format Running
