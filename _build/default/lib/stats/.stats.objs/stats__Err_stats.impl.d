lib/stats/err_stats.ml: Float Format Running
