lib/stats/running.ml: Float Format
