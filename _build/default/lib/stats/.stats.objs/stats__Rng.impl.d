lib/stats/rng.ml: Float Int64 Stdlib
