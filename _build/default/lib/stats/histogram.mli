(** Fixed-bin histogram over a float range — used for guard-range
    questions on saturated signals (§5.1) and distribution checks in
    tests. *)

type t

(** Raises [Invalid_argument] unless [bins >= 1] and [lo < hi]. *)
val create : lo:float -> hi:float -> bins:int -> t

val n_bins : t -> int

(** NaN ignored; values below [lo] / at-or-above [hi] are counted as
    outliers (exactly [hi] lands in the last bin). *)
val add : t -> float -> unit

val total : t -> int
val below : t -> int
val above : t -> int
val counts : t -> int array

(** Fraction of samples outside [[lo, hi)]. *)
val outlier_fraction : t -> float

(** Smallest central bin-aligned sub-range holding at least [coverage]
    of the in-range samples — an empirical guard range.  [None] when no
    in-range samples; raises [Invalid_argument] for
    [coverage ∉ (0, 1]]. *)
val coverage_range : t -> coverage:float -> (float * float) option

(** Chi-square statistic against a uniform bin distribution. *)
val chi_square_uniform : t -> float

val pp : Format.formatter -> t -> unit
