(** Positional bookkeeping for fixed-point formats.

    A format is [n] total bits of which [f] are fractional, with a
    signedness.  Following the paper (§2.1), bit positions are absolute
    weights with respect to the binary point:

    - LSB position [lsb_pos = -f]; the quantization step is [2^lsb_pos];
    - MSB position [msb_pos = n - f - 1]: the weight of the top bit
      (the sign bit for two's complement).

    Two's complement [n,f] represents [[-2^m, 2^m - 2^lsb]] and unsigned
    represents [[0, 2^(m+1) - 2^lsb]], where [m = msb_pos].  All format
    arithmetic in the library goes through this module so the
    position/width conversions are written (and tested) exactly once. *)

type t = { n : int; f : int; sign : Sign_mode.t }

let equal a b = a.n = b.n && a.f = b.f && Sign_mode.equal a.sign b.sign

(** [make ~n ~f sign] — [n] total bits ([>= 1]), [f] fractional bits
    (any integer: negative [f] scales by powers of two upward, [f > n]
    gives a pure fraction with leading zero weights). *)
let make ~n ~f sign =
  if n < 1 then invalid_arg "Qformat.make: wordlength must be >= 1";
  { n; f; sign }

let n t = t.n
let f t = t.f
let sign t = t.sign
let lsb_pos t = -t.f
let msb_pos t = t.n - t.f - 1

(** [of_positions ~msb ~lsb sign] builds the format spanning bit weights
    [msb] down to [lsb] inclusive. *)
let of_positions ~msb ~lsb sign =
  if msb < lsb then
    invalid_arg
      (Printf.sprintf "Qformat.of_positions: msb (%d) < lsb (%d)" msb lsb);
  make ~n:(msb - lsb + 1) ~f:(-lsb) sign

let step t = 2.0 ** Float.of_int (lsb_pos t)

let max_value t =
  let m = Float.of_int (msb_pos t) in
  match t.sign with
  | Sign_mode.Tc -> (2.0 ** m) -. step t
  | Sign_mode.Us -> (2.0 ** (m +. 1.0)) -. step t

let min_value t =
  match t.sign with
  | Sign_mode.Tc -> -.(2.0 ** Float.of_int (msb_pos t))
  | Sign_mode.Us -> 0.0

(** Number of representable codes, as a float ([2^n] can exceed
    [max_int] for wide accumulator formats). *)
let cardinal t = 2.0 ** Float.of_int t.n

let contains t v = v >= min_value t && v <= max_value t

(** [is_exact t v] — [v] is exactly representable in [t] (lies on the
    grid and inside the range). *)
let is_exact t v =
  contains t v
  &&
  let scaled = v /. step t in
  Float.is_integer scaled

(** Smallest MSB position [m] such that a two's-complement (resp.
    unsigned) format with that MSB covers the value [v]:
    [-2^m <= v < 2^m] for tc, [0 <= v < 2^(m+1)] for us.

    Computed exactly via [frexp]; no float logarithms.  The paper's
    [F(vmin, vmax)] (§5.1) is [required_msb] of the whole range. *)
let required_msb_of_value sign v =
  if Float.is_nan v then invalid_arg "Qformat.required_msb_of_value: nan";
  if v = 0.0 then min_int (* no integer bits needed; caller joins with max *)
  else
    let mant, e = Float.frexp (Float.abs v) in
    match sign with
    | Sign_mode.Tc ->
        if v > 0.0 then e (* v in [2^(e-1), 2^e) => need m = e *)
        else if mant = 0.5 then e - 1 (* v = -2^(e-1), representable at m = e-1 *)
        else e
    | Sign_mode.Us ->
        if v < 0.0 then
          invalid_arg "Qformat.required_msb_of_value: negative value, unsigned"
        else e - 1 (* v in [2^(e-1), 2^e) => top bit weight e-1 *)

(** [required_msb sign ~vmin ~vmax] is the paper's [F(vmin, vmax)]:
    the minimum MSB position whose range covers [[vmin, vmax]].
    Raises [Invalid_argument] on NaN, an empty range, or a negative
    [vmin] with an unsigned format.  Infinite bounds yield no finite
    answer: [None]. *)
let required_msb sign ~vmin ~vmax =
  if Float.is_nan vmin || Float.is_nan vmax then
    invalid_arg "Qformat.required_msb: nan bound";
  if vmin > vmax then invalid_arg "Qformat.required_msb: vmin > vmax";
  if Float.abs vmin = Float.infinity || Float.abs vmax = Float.infinity then
    None
  else if vmin = 0.0 && vmax = 0.0 then Some 0
  else
    let m1 = required_msb_of_value sign vmin
    and m2 = required_msb_of_value sign vmax in
    Some (max m1 m2)

(** [widen_for_range t ~vmin ~vmax] grows the integer part of [t] (keeping
    the LSB position) until the range fits; used when refinement decides
    a larger MSB.  [None] if the range is unbounded. *)
let widen_for_range t ~vmin ~vmax =
  match required_msb t.sign ~vmin ~vmax with
  | None -> None
  | Some m ->
      let m = max m (msb_pos t) in
      Some (of_positions ~msb:m ~lsb:(lsb_pos t) t.sign)

let to_string t =
  Printf.sprintf "<%d,%d,%s>" t.n t.f (Sign_mode.to_string t.sign)

let pp ppf t = Format.pp_print_string ppf (to_string t)
