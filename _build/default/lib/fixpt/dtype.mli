(** Fixed-point data types — the paper's
    [dtype(name, n, f, vtype, msbspec, lsbspec)] object (§2.1): a
    {!Qformat.t} plus MSB overflow mode and LSB rounding mode, under a
    name used in reports. *)

type t

(** Defaults: two's complement, wrap-around, round-off. *)
val make :
  string ->
  n:int ->
  f:int ->
  ?sign:Sign_mode.t ->
  ?overflow:Overflow_mode.t ->
  ?round:Round_mode.t ->
  unit ->
  t

val of_format :
  ?overflow:Overflow_mode.t -> ?round:Round_mode.t -> string -> Qformat.t -> t

val name : t -> string
val fmt : t -> Qformat.t
val overflow : t -> Overflow_mode.t
val round : t -> Round_mode.t
val n : t -> int
val f : t -> int
val sign : t -> Sign_mode.t
val msb_pos : t -> int
val lsb_pos : t -> int
val step : t -> float
val min_value : t -> float
val max_value : t -> float

(** Representable range [(min, max)] — what seeds range propagation for
    declared signals (§4.1). *)
val range : t -> float * float

val with_overflow : t -> Overflow_mode.t -> t
val with_round : t -> Round_mode.t -> t
val with_fmt : t -> Qformat.t -> t

(** Move the MSB position, keeping LSB and modes. *)
val with_msb : t -> int -> t

(** Move the LSB position, keeping MSB and modes. *)
val with_lsb : t -> int -> t

val equal : t -> t -> bool

(** Same representation and behaviour, ignoring the name. *)
val same_behaviour : t -> t -> bool

(** ["name<n,f,sign,msbspec,lsbspec>"]. *)
val to_string : t -> string

val pp : Format.formatter -> t -> unit

(** Parse ["name<n,f[,sign[,msbspec[,lsbspec]]]>"] (name and trailing
    fields optional, defaulting as in {!make}); inverse of
    {!to_string}.  [None] on malformed input. *)
val of_string : string -> t option
