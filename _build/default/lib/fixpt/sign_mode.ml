(** Signedness of a fixed-point representation.

    The paper's [vtype] constructor argument: two's complement ([Tc]) or
    unsigned ([Us]).  Two's complement reserves the top bit as a sign bit
    at weight [-2^msb]; unsigned uses all bits as magnitude. *)

type t =
  | Tc  (** two's complement *)
  | Us  (** unsigned *)

let equal a b =
  match (a, b) with Tc, Tc | Us, Us -> true | (Tc | Us), _ -> false

let to_string = function Tc -> "tc" | Us -> "us"

let of_string = function
  | "tc" -> Some Tc
  | "us" -> Some Us
  | _ -> None

let pp ppf t = Format.pp_print_string ppf (to_string t)

(** [is_signed t] is [true] for two's complement. *)
let is_signed = function Tc -> true | Us -> false
