(** MSB-side overflow behaviour of a fixed-point type.

    The paper's [msbspec] argument selects what happens when a value
    exceeds the representable range of the type:

    - [Wrap]: drop the bits above the MSB (modular two's-complement
      wrap-around), the cheapest hardware;
    - [Saturate]: clamp to the largest/smallest representable value,
      requires a saturation circuit but bounds the error;
    - [Error]: report an overflow event during simulation.  This is a
      *refinement-time* mode: it tells the designer the wordlength is too
      small or another MSB mode must be chosen.  The value itself is
      wrapped so simulation can continue deterministically. *)

type t =
  | Wrap
  | Saturate
  | Error

let equal a b =
  match (a, b) with
  | Wrap, Wrap | Saturate, Saturate | Error, Error -> true
  | (Wrap | Saturate | Error), _ -> false

let to_string = function
  | Wrap -> "wrap"
  | Saturate -> "sat"
  | Error -> "err"

let of_string = function
  | "wrap" | "wr" -> Some Wrap
  | "sat" | "saturate" -> Some Saturate
  | "err" | "error" -> Some Error
  | _ -> None

let pp ppf t = Format.pp_print_string ppf (to_string t)

(** [is_saturating t] — [true] only for [Saturate].  Used by the MSB
    refinement rules: saturated signals additionally report guard-range
    boundaries for a safe hardware implementation (paper §5.1). *)
let is_saturating = function Saturate -> true | Wrap | Error -> false
