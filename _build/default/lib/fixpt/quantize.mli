(** Quantization of ideal (float) values through a {!Dtype.t} — the cast
    the design environment performs on every signal assignment (§2.2):
    LSB rounding first, then MSB overflow handling.

    Performed on an exact [int64] integer grid whenever the scaled value
    fits; astronomically large values (range-propagation explosions)
    take a float fallback with the same wrap/saturate behaviour. *)

type overflow_event = {
  raw : float;  (** value after rounding, before overflow handling *)
  direction : [ `Above | `Below ];
}

type outcome = {
  value : float;  (** the representable result *)
  rounding_error : float;  (** [value_after_rounding - input] *)
  overflow : overflow_event option;
}

(** Integer code range [(lo, hi)] of a format. *)
val code_bounds : Qformat.t -> int64 * int64

(** Full quantization outcome.  NaN raises [Invalid_argument];
    infinities saturate/wrap and report an overflow event. *)
val quantize : Dtype.t -> float -> outcome

(** Just the representable value (the paper's explicit [cast]). *)
val cast : Dtype.t -> float -> float

(** Total quantization error [cast dt v -. v]. *)
val error : Dtype.t -> float -> float

(** Uniform-model error parameters [(step, mean_bias, variance)]:
    step [q], bias of the rounding mode, variance [q²/12].  Used by the
    analytical noise propagation. *)
val noise_model : Dtype.t -> float * float * float
