(** Quantization of ideal (float) values through a {!Dtype.t}.

    This is the operation the design environment performs on every signal
    assignment (§2.2): arithmetic runs in floating point, and the result
    is cast through the destination type's quantization scheme — LSB
    rounding first, then MSB overflow handling.

    Quantization is performed on an integer grid held in [int64] whenever
    the scaled value fits (exact semantics); values beyond the [int64]
    range — which occur during range-propagation explosions — fall back
    to a float path with the same wrap/saturate behaviour. *)

type overflow_event = {
  raw : float;  (** value after rounding, before overflow handling *)
  direction : [ `Above | `Below ];
}

type outcome = {
  value : float;  (** the representable result *)
  rounding_error : float;  (** [value_after_rounding - input] *)
  overflow : overflow_event option;
}

let round_scaled (mode : Round_mode.t) scaled =
  match mode with
  | Round_mode.Floor -> Float.floor scaled
  | Round_mode.Round ->
      (* round half away from zero, like C's round(3) *)
      Float.round scaled

(* Integer code range of a format. *)
let code_bounds (fmt : Qformat.t) =
  let n = Qformat.n fmt in
  match Qformat.sign fmt with
  | Sign_mode.Tc ->
      let hi = Int64.sub (Int64.shift_left 1L (n - 1)) 1L in
      let lo = Int64.neg (Int64.shift_left 1L (n - 1)) in
      (lo, hi)
  | Sign_mode.Us ->
      let hi = Int64.sub (Int64.shift_left 1L n) 1L in
      (0L, hi)

let wrap_code fmt code =
  let n = Qformat.n fmt in
  if n >= 63 then code
  else
    let span = Int64.shift_left 1L n in
    let lo, _ = code_bounds fmt in
    let off = Int64.rem (Int64.sub code lo) span in
    let off = if Int64.compare off 0L < 0 then Int64.add off span else off in
    Int64.add lo off

(* Largest float magnitude we trust to round-trip through int64. *)
let int64_safe = 4.0e18

let apply fmt (overflow_mode : Overflow_mode.t) rounded_scaled =
  let lo, hi = code_bounds fmt in
  let step = Qformat.step fmt in
  if Float.abs rounded_scaled <= int64_safe && Qformat.n fmt <= 62 then begin
    let code = Int64.of_float rounded_scaled in
    let below = Int64.compare code lo < 0 and above = Int64.compare code hi > 0 in
    if not (below || above) then (Int64.to_float code *. step, None)
    else
      let event =
        {
          raw = rounded_scaled *. step;
          direction = (if above then `Above else `Below);
        }
      in
      let code' =
        match overflow_mode with
        | Overflow_mode.Saturate -> if above then hi else lo
        | Overflow_mode.Wrap | Overflow_mode.Error -> wrap_code fmt code
      in
      (Int64.to_float code' *. step, Some event)
  end
  else begin
    (* Float fallback for astronomically large values (range explosion):
       saturate clamps; wrap reduces modulo the span, which is
       meaningless at this magnitude but keeps simulation total. *)
    let flo = Int64.to_float lo and fhi = Int64.to_float hi in
    let above = rounded_scaled > fhi and below = rounded_scaled < flo in
    if not (above || below) then (rounded_scaled *. step, None)
    else
      let event =
        {
          raw = rounded_scaled *. step;
          direction = (if above then `Above else `Below);
        }
      in
      let code' =
        match overflow_mode with
        | Overflow_mode.Saturate -> if above then fhi else flo
        | Overflow_mode.Wrap | Overflow_mode.Error ->
            let span = Int64.to_float hi -. Int64.to_float lo +. 1.0 in
            let off = Float.rem (rounded_scaled -. flo) span in
            let off = if off < 0.0 then off +. span else off in
            flo +. Float.round off
      in
      (code' *. step, Some event)
  end

(** [quantize dtype v] casts [v] through [dtype]'s quantization scheme.
    NaN input raises [Invalid_argument]; infinities saturate (or wrap to
    an unspecified in-range code) and report an overflow event. *)
let quantize (dt : Dtype.t) v : outcome =
  if Float.is_nan v then invalid_arg "Quantize.quantize: nan";
  let fmt = Dtype.fmt dt in
  let step = Qformat.step fmt in
  let v_clamped =
    (* keep the scaled value finite for the float fallback *)
    if v = Float.infinity then Float.max_float
    else if v = Float.neg_infinity then -.Float.max_float
    else v
  in
  let scaled = v_clamped /. step in
  let rounded = round_scaled (Dtype.round dt) scaled in
  let value, overflow = apply fmt (Dtype.overflow dt) rounded in
  { value; rounding_error = (rounded *. step) -. v_clamped; overflow }

(** [cast dtype v] — just the representable value (the paper's [cast]
    operator for intermediate results). *)
let cast dt v = (quantize dt v).value

(** [error dt v] — total quantization error [cast dt v -. v]. *)
let error dt v = cast dt v -. v

(** Theoretical error-model parameters for a type (used by the analytical
    noise propagation and by tests): the quantization step [q], the error
    variance [q^2/12] of the uniform model, and the mean bias of the
    rounding mode. *)
let noise_model dt =
  let q = Dtype.step dt in
  let variance = q *. q /. 12.0 in
  let mean = Round_mode.expected_bias (Dtype.round dt) ~step:q in
  (q, mean, variance)
