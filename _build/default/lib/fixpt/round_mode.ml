(** LSB-side rounding behaviour of a fixed-point type.

    The paper's [lsbspec] argument: round-off ([Round], round to nearest,
    ties away from zero as in C's [round]) or [Floor] (truncate towards
    minus infinity — a plain bit-drop in two's complement and therefore
    the cheapest hardware).

    Retyping a signal from round to floor shifts the mean error [mu] by
    half a quantization step (paper §5.2); the LSB refinement rules check
    whether that bias is acceptable before recommending floor. *)

type t =
  | Round
  | Floor

let equal a b =
  match (a, b) with
  | Round, Round | Floor, Floor -> true
  | (Round | Floor), _ -> false

let to_string = function Round -> "rd" | Floor -> "fl"

let of_string = function
  | "rd" | "round" -> Some Round
  | "fl" | "floor" -> Some Floor
  | _ -> None

let pp ppf t = Format.pp_print_string ppf (to_string t)

(** Expected mean of the quantization error for a quantization step [q],
    under the usual uniform-input model: 0 for round, [-q/2] for floor. *)
let expected_bias t ~step =
  match t with Round -> 0.0 | Floor -> -.step /. 2.0

(** Hardware-cost ordering: floor is cheaper than round (no adder on the
    rounding path). *)
let is_cheaper_than a b =
  match (a, b) with Floor, Round -> true | _, _ -> false
