(** Fixed-point data types — the paper's
    [dtype(name, n, f, vtype, msbspec, lsbspec)] object (§2.1).

    A dtype bundles a {!Qformat.t} with the MSB overflow mode and the LSB
    rounding mode, under a name used in reports.  Declaring a signal with
    a dtype automatically seeds the quasi-analytical range propagation
    with the type's representable range (§4.1). *)

type t = {
  name : string;
  fmt : Qformat.t;
  overflow : Overflow_mode.t;
  round : Round_mode.t;
}

(** [make name ~n ~f ?sign ?overflow ?round ()] — defaults are the
    paper's common case: two's complement, saturating MSB check disabled
    (wrap-around), round-off LSB. *)
let make name ~n ~f ?(sign = Sign_mode.Tc) ?(overflow = Overflow_mode.Wrap)
    ?(round = Round_mode.Round) () =
  { name; fmt = Qformat.make ~n ~f sign; overflow; round }

(** [of_format name fmt] with wrap/round defaults. *)
let of_format ?(overflow = Overflow_mode.Wrap) ?(round = Round_mode.Round)
    name fmt =
  { name; fmt; overflow; round }

let name t = t.name
let fmt t = t.fmt
let overflow t = t.overflow
let round t = t.round
let n t = Qformat.n t.fmt
let f t = Qformat.f t.fmt
let sign t = Qformat.sign t.fmt
let msb_pos t = Qformat.msb_pos t.fmt
let lsb_pos t = Qformat.lsb_pos t.fmt
let step t = Qformat.step t.fmt
let min_value t = Qformat.min_value t.fmt
let max_value t = Qformat.max_value t.fmt

(** Representable range, used to seed range propagation. *)
let range t = (min_value t, max_value t)

let with_overflow t overflow = { t with overflow }
let with_round t round = { t with round }
let with_fmt t fmt = { t with fmt }

(** [with_msb t m] moves the MSB position, keeping LSB and modes. *)
let with_msb t m =
  let lsb = lsb_pos t in
  { t with fmt = Qformat.of_positions ~msb:(max m lsb) ~lsb (sign t) }

(** [with_lsb t p] moves the LSB position, keeping MSB and modes. *)
let with_lsb t p =
  let msb = msb_pos t in
  { t with fmt = Qformat.of_positions ~msb:(max msb p) ~lsb:p (sign t) }

let equal a b =
  String.equal a.name b.name
  && Qformat.equal a.fmt b.fmt
  && Overflow_mode.equal a.overflow b.overflow
  && Round_mode.equal a.round b.round

(** Same representation and behaviour, ignoring the name. *)
let same_behaviour a b =
  Qformat.equal a.fmt b.fmt
  && Overflow_mode.equal a.overflow b.overflow
  && Round_mode.equal a.round b.round

let to_string t =
  Printf.sprintf "%s<%d,%d,%s,%s,%s>" t.name (n t) (f t)
    (Sign_mode.to_string (sign t))
    (Overflow_mode.to_string t.overflow)
    (Round_mode.to_string t.round)

let pp ppf t = Format.pp_print_string ppf (to_string t)

(** Parse ["name<n,f[,sign[,msbspec[,lsbspec]]]>"] (name optional,
    omitted fields default as in {!make}): inverse of {!to_string}.
    [None] on any malformed input. *)
let of_string s =
  let open_b = String.index_opt s '<' in
  match open_b with
  | None -> None
  | Some i when String.length s = 0 || s.[String.length s - 1] <> '>' ->
      ignore i; None
  | Some i ->
      let name = String.sub s 0 i in
      let inner = String.sub s (i + 1) (String.length s - i - 2) in
      let fields = String.split_on_char ',' inner |> List.map String.trim in
      let int_of x = int_of_string_opt x in
      (match fields with
      | n_s :: f_s :: rest -> (
          match (int_of n_s, int_of f_s) with
          | Some n, Some f when n >= 1 -> (
              let sign, rest =
                match rest with
                | x :: tl when Sign_mode.of_string x <> None ->
                    (Option.get (Sign_mode.of_string x), tl)
                | _ -> (Sign_mode.Tc, rest)
              in
              let overflow, rest =
                match rest with
                | x :: tl when Overflow_mode.of_string x <> None ->
                    (Option.get (Overflow_mode.of_string x), tl)
                | _ -> (Overflow_mode.Wrap, rest)
              in
              let round, rest =
                match rest with
                | x :: tl when Round_mode.of_string x <> None ->
                    (Option.get (Round_mode.of_string x), tl)
                | _ -> (Round_mode.Round, rest)
              in
              match rest with
              | [] ->
                  Some
                    (make
                       (if name = "" then "t" else name)
                       ~n ~f ~sign ~overflow ~round ())
              | _ -> None)
          | _ -> None)
      | _ -> None)
