(** Bit-true fixed-point values.

    The design environment simulates fixed-point behaviour on floats
    (quantize-on-assign, §2.2) because it is fast and — for wordlengths
    below the double-precision mantissa — exact.  This module is the
    ground truth that claim is tested against, and the value
    representation the VHDL back end reasons with: a value is an integer
    mantissa [mant] (held in [int64]) with an interpretation format, so
    [real value = mant * 2^lsb_pos fmt].

    Arithmetic here follows hardware semantics: results get the full-
    precision derived format (no information loss); [resize] performs the
    explicit rounding/overflow step. *)

type t = { mant : int64; fmt : Qformat.t }

let fmt t = t.fmt
let mant t = t.mant

let create ~mant ~fmt =
  let lo, hi = Quantize.code_bounds fmt in
  if Int64.compare mant lo < 0 || Int64.compare mant hi > 0 then
    invalid_arg
      (Printf.sprintf "Fixed.create: mantissa %Ld out of range for %s" mant
         (Qformat.to_string fmt));
  { mant; fmt }

let zero fmt = { mant = 0L; fmt }

let to_float t = Int64.to_float t.mant *. Qformat.step t.fmt

(** [of_float dt v] quantizes [v] through [dt] and returns the bit-true
    value together with the quantization outcome. *)
let of_float (dt : Dtype.t) v =
  let outcome = Quantize.quantize dt v in
  let fmt = Dtype.fmt dt in
  let mant =
    Int64.of_float (Float.round (outcome.Quantize.value /. Qformat.step fmt))
  in
  ({ mant; fmt }, outcome)

let equal a b = Qformat.equal a.fmt b.fmt && Int64.equal a.mant b.mant

(* Shift a mantissa from lsb position [from_p] to a finer position
   [to_p] (to_p <= from_p): exact left shift. *)
let align_down mant ~from_p ~to_p =
  assert (to_p <= from_p);
  Int64.shift_left mant (from_p - to_p)

let common_lsb a b = min (Qformat.lsb_pos a.fmt) (Qformat.lsb_pos b.fmt)

let result_sign a b =
  match (Qformat.sign a.fmt, Qformat.sign b.fmt) with
  | Sign_mode.Us, Sign_mode.Us -> Sign_mode.Us
  | _ -> Sign_mode.Tc

(* Full-precision format for a sum/difference: one growth bit over the
   wider operand, at the finer LSB. *)
let addsub_fmt a b =
  let lsb = common_lsb a b in
  let msb = 1 + max (Qformat.msb_pos a.fmt) (Qformat.msb_pos b.fmt) in
  (* a tc +/- us operand may need an extra bit for the sign *)
  let msb =
    match (Qformat.sign a.fmt, Qformat.sign b.fmt) with
    | Sign_mode.Tc, Sign_mode.Us | Sign_mode.Us, Sign_mode.Tc -> msb + 1
    | _ -> msb
  in
  Qformat.of_positions ~msb ~lsb (result_sign a b)

(** Exact addition in the full-precision derived format.  Raises
    [Invalid_argument] if the derived format exceeds 62 bits (the library
    keeps bit-true values within [int64]). *)
let check_width fmt op =
  if Qformat.n fmt > 62 then
    invalid_arg
      (Printf.sprintf "Fixed.%s: derived format %s exceeds 62 bits" op
         (Qformat.to_string fmt))

let add a b =
  let fmt = addsub_fmt a b in
  check_width fmt "add";
  let lsb = Qformat.lsb_pos fmt in
  let ma = align_down a.mant ~from_p:(Qformat.lsb_pos a.fmt) ~to_p:lsb in
  let mb = align_down b.mant ~from_p:(Qformat.lsb_pos b.fmt) ~to_p:lsb in
  { mant = Int64.add ma mb; fmt }

let sub a b =
  let fmt = addsub_fmt a b in
  let fmt =
    (* a difference of unsigned values can be negative *)
    match Qformat.sign fmt with
    | Sign_mode.Us ->
        Qformat.of_positions
          ~msb:(Qformat.msb_pos fmt + 1)
          ~lsb:(Qformat.lsb_pos fmt) Sign_mode.Tc
    | Sign_mode.Tc -> fmt
  in
  check_width fmt "sub";
  let lsb = Qformat.lsb_pos fmt in
  let ma = align_down a.mant ~from_p:(Qformat.lsb_pos a.fmt) ~to_p:lsb in
  let mb = align_down b.mant ~from_p:(Qformat.lsb_pos b.fmt) ~to_p:lsb in
  { mant = Int64.sub ma mb; fmt }

let neg a =
  let fmt =
    Qformat.of_positions
      ~msb:(Qformat.msb_pos a.fmt + 1)
      ~lsb:(Qformat.lsb_pos a.fmt) Sign_mode.Tc
  in
  check_width fmt "neg";
  { mant = Int64.neg a.mant; fmt }

(* Full-precision product format: widths add; LSB positions add. *)
let mul_fmt a b =
  let lsb = Qformat.lsb_pos a.fmt + Qformat.lsb_pos b.fmt in
  let n = Qformat.n a.fmt + Qformat.n b.fmt in
  Qformat.make ~n ~f:(-lsb) (result_sign a b)

let mul a b =
  let fmt = mul_fmt a b in
  check_width fmt "mul";
  { mant = Int64.mul a.mant b.mant; fmt }

(** [resize dt t] re-quantizes a bit-true value into [dt], applying the
    type's rounding and overflow modes — the hardware register-write
    step. *)
let resize (dt : Dtype.t) t =
  let v = to_float t in
  of_float dt v

let compare_value a b = Float.compare (to_float a) (to_float b)

(** Two's-complement bit pattern of the mantissa, LSB first, as booleans
    (used by the VHDL back end and bit-level tests). *)
let bits t =
  let n = Qformat.n t.fmt in
  List.init n (fun i -> Int64.logand (Int64.shift_right t.mant i) 1L = 1L)

let of_bits fmt bit_list =
  let n = Qformat.n fmt in
  if List.length bit_list <> n then
    invalid_arg "Fixed.of_bits: wrong number of bits";
  let raw =
    List.fold_left
      (fun (acc, i) b ->
        ((if b then Int64.logor acc (Int64.shift_left 1L i) else acc), i + 1))
      (0L, 0) bit_list
    |> fst
  in
  (* sign-extend for two's complement *)
  let mant =
    match Qformat.sign fmt with
    | Sign_mode.Us -> raw
    | Sign_mode.Tc ->
        if Int64.logand (Int64.shift_right raw (n - 1)) 1L = 1L then
          Int64.logor raw (Int64.shift_left (-1L) n)
        else raw
  in
  { mant; fmt }

let to_string t =
  Printf.sprintf "%g%s" (to_float t) (Qformat.to_string t.fmt)

let pp ppf t = Format.pp_print_string ppf (to_string t)
