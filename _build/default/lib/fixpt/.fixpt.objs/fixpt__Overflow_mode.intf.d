lib/fixpt/overflow_mode.mli: Format
