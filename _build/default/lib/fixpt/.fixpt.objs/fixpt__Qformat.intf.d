lib/fixpt/qformat.mli: Format Sign_mode
