lib/fixpt/dtype.ml: Format List Option Overflow_mode Printf Qformat Round_mode Sign_mode String
