lib/fixpt/overflow_mode.ml: Format
