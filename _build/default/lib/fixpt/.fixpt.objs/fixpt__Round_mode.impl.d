lib/fixpt/round_mode.ml: Format
