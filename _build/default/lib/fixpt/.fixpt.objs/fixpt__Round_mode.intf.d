lib/fixpt/round_mode.mli: Format
