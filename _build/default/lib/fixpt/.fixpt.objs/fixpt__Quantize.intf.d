lib/fixpt/quantize.mli: Dtype Qformat
