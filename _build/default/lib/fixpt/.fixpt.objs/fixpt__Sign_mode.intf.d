lib/fixpt/sign_mode.mli: Format
