lib/fixpt/fixed.ml: Dtype Float Format Int64 List Printf Qformat Quantize Sign_mode
