lib/fixpt/dtype.mli: Format Overflow_mode Qformat Round_mode Sign_mode
