lib/fixpt/quantize.ml: Dtype Float Int64 Overflow_mode Qformat Round_mode Sign_mode
