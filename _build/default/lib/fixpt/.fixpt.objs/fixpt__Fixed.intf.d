lib/fixpt/fixed.mli: Dtype Format Qformat Quantize
