lib/fixpt/qformat.ml: Float Format Printf Sign_mode
