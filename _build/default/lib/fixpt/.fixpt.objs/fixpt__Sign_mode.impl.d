lib/fixpt/sign_mode.ml: Format
