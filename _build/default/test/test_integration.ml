(* End-to-end integration tests: complete refinement journeys through
   the public API, asserting the paper-level outcomes (not just module
   contracts). *)

open Fixrefine
open Sim.Ops

let check = Alcotest.check
let bool_t = Alcotest.bool
let int_t = Alcotest.int

let contains needle hay =
  let nl = String.length needle and hl = String.length hay in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  go 0

(* --- journey 1: equalizer — float spec to working fixed-point design -- *)

let test_equalizer_full_journey () =
  let n = 4000 in
  let env = Sim.Env.create ~seed:11 () in
  let rng = Stats.Rng.create ~seed:2024 in
  let stimulus, sent = Dsp.Channel_model.isi_awgn ~rng ~n_symbols:n () in
  let input = Sim.Channel.of_fun "rx" stimulus in
  let output = Sim.Channel.create ~record:true "y" in
  let x_dtype = Fixpt.Dtype.make "T_input" ~n:7 ~f:5 () in
  let eq = Dsp.Lms_equalizer.create env ~x_dtype ~input ~output () in
  Sim.Signal.range (Dsp.Lms_equalizer.x eq) (-1.5) 1.5;
  let design =
    {
      Refine.Flow.env;
      reset =
        (fun () ->
          Sim.Env.reset env;
          Sim.Channel.clear input;
          Sim.Channel.clear output);
      run = (fun () -> Dsp.Lms_equalizer.run eq ~cycles:n);
    }
  in
  let r = Refine.Flow.refine ~sqnr_signal:"v[3]" design in
  (* paper's headline numbers *)
  check int_t "2 MSB iterations" 2 r.Refine.Flow.msb_iterations;
  check int_t "1 LSB iteration" 1 r.Refine.Flow.lsb_iterations;
  check int_t "3 monitored runs" 3 r.Refine.Flow.simulation_runs;
  (* all datapath signals typed, formats sane *)
  List.iter
    (fun (name, dt) ->
      check bool_t (name ^ " wordlength sane") true
        (Fixpt.Dtype.n dt >= 2 && Fixpt.Dtype.n dt <= 32))
    (List.filter (fun (n, _) -> String.length n < 3) r.Refine.Flow.types);
  (* the refined design still works *)
  let decided = Array.of_list (Sim.Channel.recorded output) in
  check (Alcotest.float 0.005) "SER" 0.0
    (Dsp.Pam.best_ser ~skip:200 ~sent ~decided ());
  (* no unexpected overflows on error-typed signals in verification *)
  List.iter
    (fun s ->
      match Sim.Signal.dtype s with
      | Some dt
        when Fixpt.Overflow_mode.equal (Fixpt.Dtype.overflow dt)
               Fixpt.Overflow_mode.Error ->
          check int_t
            (Sim.Signal.name s ^ " no overflow")
            0 (Sim.Signal.overflows s)
      | _ -> ())
    (Sim.Env.signals env)

(* --- journey 2: refine, auto-extract, generate VHDL ------------------- *)

let test_refine_extract_vhdl_journey () =
  let n = 1500 in
  let env = Sim.Env.create ~seed:3 () in
  let rng = Stats.Rng.create ~seed:12 in
  let stimulus, _ = Dsp.Channel_model.isi_awgn ~rng ~n_symbols:n () in
  let input = Sim.Channel.of_fun "in" stimulus in
  let x_dtype = Fixpt.Dtype.make "T" ~n:8 ~f:6 () in
  let x = Sim.Signal.create env ~dtype:x_dtype "x" in
  Sim.Signal.range x (-1.2) 1.2;
  let fir = Dsp.Fir.create env ~coefs:[| 0.25; 0.5; 0.25 |] () in
  let out = Sim.Signal.create env "out" in
  let step () =
    x <-- Sim.Value.of_float (Sim.Channel.get input);
    out <-- Dsp.Fir.step fir !!x
  in
  let design =
    {
      Refine.Flow.env;
      reset =
        (fun () ->
          Sim.Env.reset env;
          Sim.Channel.clear input);
      run = (fun () -> Sim.Engine.run env ~cycles:n (fun _ -> step ()));
    }
  in
  let r = Refine.Flow.refine ~sqnr_signal:"out" design in
  (* auto-extract the (now fully typed) design and emit VHDL *)
  let g = Sim.Extract.graph env ~outputs:[ "out" ] ~step () in
  let formats =
    Vhdl.Of_sfg.formats_of_types ~default:(Fixpt.Dtype.fmt x_dtype)
      r.Refine.Flow.types
  in
  let text =
    Vhdl.Emit.entity (Vhdl.Of_sfg.entity ~name:"fir_auto" ~formats g)
  in
  check bool_t "entity" true (contains "entity fir_auto" text);
  check bool_t "registers" true (contains "rising_edge" text);
  check bool_t "quantizers from types" true (contains "resize" text);
  check bool_t "output port" true (contains "o_out" text)

(* --- journey 3: feedback design through extraction + VHDL -------------- *)

let test_equalizer_extract_vhdl () =
  let env = Sim.Env.create ~seed:11 () in
  let rng = Stats.Rng.create ~seed:7 in
  let stimulus, _ = Dsp.Channel_model.isi_awgn ~rng ~n_symbols:300 () in
  let input = Sim.Channel.of_fun "rx" stimulus in
  let output = Sim.Channel.create "y" in
  let eq = Dsp.Lms_equalizer.create env ~input ~output () in
  Sim.Signal.range (Dsp.Lms_equalizer.x eq) (-1.5) 1.5;
  Sim.Signal.range (Dsp.Lms_equalizer.b eq) (-0.2) 0.2;
  Dsp.Lms_equalizer.run eq ~cycles:100;
  let g =
    Sim.Extract.graph env ~outputs:[ "y" ]
      ~step:(fun () -> Dsp.Lms_equalizer.step eq)
      ()
  in
  (* select + delays + saturation survive the VHDL mapping *)
  let text =
    Vhdl.Emit.entity
      (Vhdl.Of_sfg.entity ~name:"equalizer"
         ~formats:(Vhdl.Of_sfg.uniform_formats ~n:12 ~f:8)
         g)
  in
  check bool_t "conditional (slicer)" true (contains "when" text);
  check bool_t "saturation (range)" true (contains "sat(" text);
  check bool_t "feedback registers" true (contains "rising_edge" text)

(* --- journey 4: limit cycles (§4.2's caveat) --------------------------- *)

let test_limit_cycle_detected_by_final_verification () =
  (* a resonant biquad quantized with round-off sustains a limit cycle
     after the input stops: the fixed-point output keeps moving while
     the float reference decays — the §4.2 effect ("limit cycles") that
     makes final verification of feedback paths mandatory.  Floor
     (magnitude-truncating here) suppresses it. *)
  let run round =
    let dt =
      Fixpt.Dtype.make "T" ~n:8 ~f:6 ~round
        ~overflow:Fixpt.Overflow_mode.Saturate ()
    in
    let env = Sim.Env.create () in
    let bq = Dsp.Biquad.create env (Dsp.Biquad.resonator ~r:0.99 ~theta:0.3) in
    List.iter (fun s -> Sim.Signal.set_dtype s dt) (Dsp.Biquad.signals bq);
    let late_err = Stats.Running.create () in
    Sim.Engine.run env ~cycles:600 (fun c ->
        let x = if c < 50 then (if c mod 2 = 0 then 0.9 else -0.9) else 0.0 in
        let out = Dsp.Biquad.step bq (cst x) in
        if c > 400 then
          Stats.Running.add late_err
            (Float.abs (Sim.Value.fx out -. Sim.Value.fl out)));
    (Stats.Running.max_abs late_err, Fixpt.Dtype.step dt)
  in
  let round_err, step = run Fixpt.Round_mode.Round in
  let floor_err, _ = run Fixpt.Round_mode.Floor in
  check bool_t "round-off sustains a limit cycle" true (round_err > 2.0 *. step);
  check bool_t "floor decays below one step" true (floor_err < step)

(* --- journey 5: multi-processor system through channels ---------------- *)

let test_two_processor_pipeline () =
  (* producer processor drives a FIR processor through a channel — the
     §2 "several communicating processors" structure *)
  let env = Sim.Env.create () in
  let link = Sim.Channel.create "link" in
  let sink = Sim.Channel.create ~record:true "sink" in
  let rng = Stats.Rng.create ~seed:41 in
  let src = Sim.Signal.create env "src" in
  let fir = Dsp.Fir.create env ~coefs:[| 0.5; 0.5 |] () in
  let eng = Sim.Engine.create env in
  Sim.Engine.add eng
    (Sim.Engine.processor "source" (fun _ ->
         src <-- Sim.Value.of_float (Stats.Rng.pam2 rng);
         Sim.Channel.put link (Sim.Signal.peek_fx src)));
  Sim.Engine.add eng
    (Sim.Engine.processor "filter" (fun _ ->
         let v = Sim.Value.of_float (Sim.Channel.get link) in
         let out = Dsp.Fir.step fir v in
         Sim.Channel.put sink (Sim.Value.fx out)));
  Sim.Engine.run_processors eng ~cycles:100;
  let outs = Array.of_list (Sim.Channel.recorded sink) in
  check int_t "100 outputs" 100 (Array.length outs);
  (* after the 2-cycle pipeline fill, outputs of a ±1 stream through
     [0.5; 0.5] live in {-1, 0, 1} *)
  Array.iteri
    (fun i v ->
      if i >= 2 then
        check bool_t "levels" true (v = 0.0 || v = 1.0 || v = -1.0))
    outs

(* --- journey 6: VCD trace of a refinement session ---------------------- *)

let test_vcd_session () =
  let env = Sim.Env.create () in
  let x = Sim.Signal.create env "x" in
  let ma = Dsp.Moving_average.create env ~n:4 () in
  let vcd = Sim.Vcd.create () in
  Sim.Vcd.probe vcd x;
  Sim.Vcd.probe vcd (Dsp.Moving_average.output ma);
  Sim.Vcd.start vcd;
  Sim.Engine.run env ~cycles:20 (fun c ->
      x <-- Sim.Value.of_float (sin (Float.of_int c /. 3.0));
      ignore (Dsp.Moving_average.step ma !!x);
      Sim.Vcd.sample vcd ~time:c);
  let text = Sim.Vcd.contents vcd in
  check bool_t "all timestamps present" true
    (contains "#0" text && contains "#19" text);
  check bool_t "both probes declared" true
    (contains "x" text && contains "ma_y" text)

let suite =
  ( "integration",
    [
      Alcotest.test_case "equalizer full journey" `Slow
        test_equalizer_full_journey;
      Alcotest.test_case "refine→extract→VHDL" `Quick
        test_refine_extract_vhdl_journey;
      Alcotest.test_case "equalizer extract→VHDL" `Quick
        test_equalizer_extract_vhdl;
      Alcotest.test_case "limit cycle verification" `Quick
        test_limit_cycle_detected_by_final_verification;
      Alcotest.test_case "two-processor pipeline" `Quick
        test_two_processor_pipeline;
      Alcotest.test_case "vcd session" `Quick test_vcd_session;
    ] )
