(* Tests: Dsp.Lms_fir — N-tap adaptation, identification, and the
   gradient-stalling phenomenon. *)

open Fixrefine
open Sim.Ops

let check = Alcotest.check
let bool_t = Alcotest.bool
let float_t eps = Alcotest.float eps

(* system identification setup: unknown 4-tap channel, white input *)
let unknown = [| 0.4; -0.2; 0.1; 0.3 |]

let make_stimulus n =
  let rng = Stats.Rng.create ~seed:77 in
  let input = Array.init n (fun _ -> Stats.Rng.uniform rng ~lo:(-1.0) ~hi:1.0) in
  (* desired = unknown channel applied to the same delayed line the
     filter sees (pre-shift registers) *)
  let desired =
    Array.init n (fun k ->
        let acc = ref 0.0 in
        Array.iteri
          (fun j h -> if k - 1 - j >= 0 then acc := !acc +. (h *. input.(k - 1 - j)))
          unknown;
        !acc)
  in
  (input, desired)

let run_sim ?coef_dtype n =
  let env = Sim.Env.create () in
  let f = Dsp.Lms_fir.create env ~taps:4 ~mu:0.05 () in
  (match coef_dtype with Some dt -> Dsp.Lms_fir.set_coef_dtype f dt | None -> ());
  let input, desired = make_stimulus n in
  let errs = Array.make n 0.0 in
  let i = ref 0 in
  Sim.Engine.run env ~cycles:n (fun _ ->
      let _, e =
        Dsp.Lms_fir.step f ~input:(cst input.(!i)) ~desired:(cst desired.(!i))
      in
      errs.(!i) <- Sim.Value.fx e;
      incr i);
  (env, f, errs)

let test_sim_matches_reference () =
  let n = 300 in
  let input, desired = make_stimulus n in
  let _, es_ref, w_ref = Dsp.Lms_fir.reference ~taps:4 ~mu:0.05 ~input ~desired in
  let _, f, errs = run_sim n in
  Array.iteri
    (fun i e -> check (float_t 1e-9) (Printf.sprintf "e %d" i) es_ref.(i) e)
    errs;
  Array.iteri
    (fun i w -> check (float_t 1e-9) (Printf.sprintf "w %d" i) w_ref.(i) w)
    (Dsp.Lms_fir.coefs f)

let test_identifies_unknown_system () =
  let _, f, errs = run_sim 3000 in
  Array.iteri
    (fun i w ->
      check (float_t 0.01) (Printf.sprintf "w[%d] converged" i) unknown.(i) w)
    (Dsp.Lms_fir.coefs f);
  check bool_t "error floor" true
    (Dsp.Lms_fir.tail_mse errs ~tail:500 < 1e-4)

let test_gradient_stalling () =
  (* coarse coefficient registers stall adaptation: updates below half
     an LSB vanish and the misadjustment floor rises by orders of
     magnitude vs fine registers *)
  let mse_at f_bits =
    let dt =
      Fixpt.Dtype.make "W" ~n:(f_bits + 2) ~f:f_bits
        ~overflow:Fixpt.Overflow_mode.Saturate ()
    in
    let _, _, errs = run_sim ~coef_dtype:dt 3000 in
    Dsp.Lms_fir.tail_mse errs ~tail:500
  in
  let coarse = mse_at 4 and mid = mse_at 8 and fine = mse_at 14 in
  check bool_t "monotone floors" true (coarse > mid && mid > fine);
  check bool_t "coarse floor much higher" true (coarse > 1000.0 *. fine);
  check bool_t "fine floor effectively converged" true (fine < 1e-6)

let test_stalled_coefficients_freeze () =
  let dt =
    Fixpt.Dtype.make "W" ~n:6 ~f:4 ~overflow:Fixpt.Overflow_mode.Saturate ()
  in
  let _, f, _ = run_sim ~coef_dtype:dt 3000 in
  (* the coefficients sit on the coarse grid *)
  Array.iter
    (fun w ->
      check (float_t 1e-12) "on grid" 0.0 (Float.rem w (2.0 ** -4.0)))
    (Dsp.Lms_fir.coefs f)

let suite =
  ( "lms-fir",
    [
      Alcotest.test_case "sim vs reference" `Quick test_sim_matches_reference;
      Alcotest.test_case "identifies system" `Quick
        test_identifies_unknown_system;
      Alcotest.test_case "gradient stalling" `Quick test_gradient_stalling;
      Alcotest.test_case "stalled coefficients on grid" `Quick
        test_stalled_coefficients_freeze;
    ] )
