(* Tests: Vhdl.Testbench — golden-vector testbench generation. *)

open Fixrefine
open Sim.Ops

let check = Alcotest.check
let bool_t = Alcotest.bool
let int_t = Alcotest.int

let contains needle hay =
  let nl = String.length needle and hl = String.length hay in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  go 0

let count needle hay =
  let nl = String.length needle and hl = String.length hay in
  let c = ref 0 in
  for i = 0 to hl - nl do
    if String.sub hay i nl = needle then incr c
  done;
  !c

let fir_setup () =
  let env = Sim.Env.create () in
  let dt = Fixpt.Dtype.make "T" ~n:10 ~f:8 () in
  let x = Sim.Signal.create env ~dtype:dt "x" in
  Sim.Signal.range x (-1.0) 1.0;
  let fir =
    Dsp.Fir.create env ~coef_dtype:dt ~delay_dtype:dt ~acc_dtype:dt
      ~coefs:[| 0.25; 0.5; 0.25 |] ()
  in
  let out = Sim.Signal.create env ~dtype:dt "out" in
  let rng = Stats.Rng.create ~seed:51 in
  let step () =
    x <-- Sim.Value.of_float (Stats.Rng.uniform rng ~lo:(-0.9) ~hi:0.9);
    out <-- Dsp.Fir.step fir !!x;
    Sim.Env.tick env
  in
  (env, dt, x, out, step)

let test_capture_codes () =
  let _, dt, x, out, step = fir_setup () in
  let fmt = Fixpt.Dtype.fmt dt in
  let vectors =
    Vhdl.Testbench.capture
      ~formats:(fun _ -> fmt)
      ~inputs:[ ("x", fun () -> Sim.Signal.peek_fx x) ]
      ~outputs:[ ("out", fun () -> Sim.Signal.peek_fx out) ]
      16
      (fun _ -> step ())
  in
  check int_t "16 vectors" 16 (List.length vectors);
  List.iter
    (fun v ->
      let xc = List.assoc "x" v.Vhdl.Testbench.inputs in
      check bool_t "code in 10-bit range" true (xc >= -512 && xc < 512))
    vectors

let test_emit_structure () =
  let env, dt, x, out, step = fir_setup () in
  ignore env;
  let fmt = Fixpt.Dtype.fmt dt in
  let vectors =
    Vhdl.Testbench.capture
      ~formats:(fun _ -> fmt)
      ~inputs:[ ("x", fun () -> Sim.Signal.peek_fx x) ]
      ~outputs:[ ("out", fun () -> Sim.Signal.peek_fx out) ]
      8
      (fun _ -> step ())
  in
  let dut =
    {
      Vhdl.Ast.entity_name = "fir";
      ports =
        [
          { Vhdl.Ast.port_name = "i_x"; dir = Vhdl.Ast.In; port_width = 10 };
          { Vhdl.Ast.port_name = "o_out"; dir = Vhdl.Ast.Out; port_width = 10 };
        ];
      signals = [];
      body = [];
      processes = [];
    }
  in
  let text =
    Vhdl.Testbench.emit ~latency:1 ~dut ~formats:(fun _ -> fmt) vectors
  in
  check bool_t "tb entity" true (contains "entity fir_tb" text);
  check bool_t "instantiates dut" true (contains "entity work.fir" text);
  check bool_t "stimulus rom" true (contains "constant stim_i_x" text);
  check bool_t "golden rom" true (contains "constant gold_o_out" text);
  check bool_t "assertion" true (contains "assert o_out = gold_o_out" text);
  check bool_t "clock" true (contains "rising_edge(clk)" text);
  check int_t "8 stimulus entries" 8 (count "=> to_signed" text / 2);
  check bool_t "finish report" true (contains "8 vectors checked" text)

let test_golden_vectors_match_bit_true () =
  (* the captured expected codes must agree with bit-true recomputation *)
  let _, dt, x, out, step = fir_setup () in
  let fmt = Fixpt.Dtype.fmt dt in
  let vectors =
    Vhdl.Testbench.capture
      ~formats:(fun _ -> fmt)
      ~inputs:[ ("x", fun () -> Sim.Signal.peek_fx x) ]
      ~outputs:[ ("out", fun () -> Sim.Signal.peek_fx out) ]
      40
      (fun _ -> step ())
  in
  let step_q = Fixpt.Qformat.step fmt in
  (* recompute the quantized FIR from the input codes *)
  let xs =
    List.map
      (fun v -> Float.of_int (List.assoc "x" v.Vhdl.Testbench.inputs) *. step_q)
      vectors
    |> Array.of_list
  in
  let quant v = Fixpt.Quantize.cast dt v in
  let line = Array.make 3 0.0 in
  List.iteri
    (fun i v ->
      (* Fir.step semantics: v-chain over the pre-shift line, then shift *)
      (* products stay in full precision; each v-chain assignment
         quantizes the running sum (Fir.step's semantics) *)
      let acc = ref 0.0 in
      Array.iteri
        (fun j c -> acc := quant (!acc +. (line.(j) *. c)))
        [| 0.25; 0.5; 0.25 |];
      let expected_code =
        Float.to_int (Float.round (!acc /. step_q))
      in
      check int_t
        (Printf.sprintf "golden %d" i)
        expected_code
        (List.assoc "out" v.Vhdl.Testbench.expected);
      for j = 2 downto 1 do
        line.(j) <- line.(j - 1)
      done;
      line.(0) <- xs.(i))
    vectors

let suite =
  ( "testbench",
    [
      Alcotest.test_case "capture codes" `Quick test_capture_codes;
      Alcotest.test_case "emit structure" `Quick test_emit_structure;
      Alcotest.test_case "golden vectors bit-true" `Quick
        test_golden_vectors_match_bit_true;
    ] )
