(* Unit tests: Sign_mode, Overflow_mode, Round_mode. *)

open Fixrefine.Fixpt

let check = Alcotest.check
let bool_t = Alcotest.bool
let string_t = Alcotest.string

let test_sign_roundtrip () =
  List.iter
    (fun m ->
      match Sign_mode.of_string (Sign_mode.to_string m) with
      | Some m' -> check bool_t "roundtrip" true (Sign_mode.equal m m')
      | None -> Alcotest.fail "of_string failed")
    [ Sign_mode.Tc; Sign_mode.Us ]

let test_sign_is_signed () =
  check bool_t "tc signed" true (Sign_mode.is_signed Sign_mode.Tc);
  check bool_t "us unsigned" false (Sign_mode.is_signed Sign_mode.Us)

let test_sign_bad_string () =
  check bool_t "garbage" true (Sign_mode.of_string "xx" = None)

let test_overflow_roundtrip () =
  List.iter
    (fun m ->
      match Overflow_mode.of_string (Overflow_mode.to_string m) with
      | Some m' -> check bool_t "roundtrip" true (Overflow_mode.equal m m')
      | None -> Alcotest.fail "of_string failed")
    [ Overflow_mode.Wrap; Overflow_mode.Saturate; Overflow_mode.Error ]

let test_overflow_aliases () =
  check bool_t "saturate alias" true
    (Overflow_mode.of_string "saturate" = Some Overflow_mode.Saturate);
  check bool_t "error alias" true
    (Overflow_mode.of_string "error" = Some Overflow_mode.Error)

let test_overflow_saturating () =
  check bool_t "sat" true (Overflow_mode.is_saturating Overflow_mode.Saturate);
  check bool_t "wrap" false (Overflow_mode.is_saturating Overflow_mode.Wrap);
  check bool_t "err" false (Overflow_mode.is_saturating Overflow_mode.Error)

let test_round_roundtrip () =
  List.iter
    (fun m ->
      match Round_mode.of_string (Round_mode.to_string m) with
      | Some m' -> check bool_t "roundtrip" true (Round_mode.equal m m')
      | None -> Alcotest.fail "of_string failed")
    [ Round_mode.Round; Round_mode.Floor ]

let test_round_bias () =
  check (Alcotest.float 1e-12) "round unbiased" 0.0
    (Round_mode.expected_bias Round_mode.Round ~step:0.25);
  check (Alcotest.float 1e-12) "floor biased -q/2" (-0.125)
    (Round_mode.expected_bias Round_mode.Floor ~step:0.25)

let test_round_cost () =
  check bool_t "floor cheaper" true
    (Round_mode.is_cheaper_than Round_mode.Floor Round_mode.Round);
  check bool_t "round not cheaper" false
    (Round_mode.is_cheaper_than Round_mode.Round Round_mode.Floor)

let test_pp () =
  check string_t "tc" "tc" (Format.asprintf "%a" Sign_mode.pp Sign_mode.Tc);
  check string_t "sat" "sat"
    (Format.asprintf "%a" Overflow_mode.pp Overflow_mode.Saturate);
  check string_t "rd" "rd" (Format.asprintf "%a" Round_mode.pp Round_mode.Round)

let suite =
  ( "modes",
    [
      Alcotest.test_case "sign roundtrip" `Quick test_sign_roundtrip;
      Alcotest.test_case "sign is_signed" `Quick test_sign_is_signed;
      Alcotest.test_case "sign bad string" `Quick test_sign_bad_string;
      Alcotest.test_case "overflow roundtrip" `Quick test_overflow_roundtrip;
      Alcotest.test_case "overflow aliases" `Quick test_overflow_aliases;
      Alcotest.test_case "overflow saturating" `Quick test_overflow_saturating;
      Alcotest.test_case "round roundtrip" `Quick test_round_roundtrip;
      Alcotest.test_case "round bias" `Quick test_round_bias;
      Alcotest.test_case "round cost" `Quick test_round_cost;
      Alcotest.test_case "pp" `Quick test_pp;
    ] )
