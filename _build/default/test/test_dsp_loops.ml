(* Unit tests: the timing-recovery components (Interpolator,
   Gardner_ted, Loop_filter, Nco) and the assembled loops
   (Lms_equalizer, Timing_recovery). *)

open Fixrefine
open Sim.Ops

let check = Alcotest.check
let bool_t = Alcotest.bool
let int_t = Alcotest.int
let float_t eps = Alcotest.float eps

(* --- Interpolator ------------------------------------------------------ *)

let test_interpolator_at_grid_points () =
  (* mu = 0 reproduces x[2]; mu = 1 reproduces x[1] *)
  let x = [| 4.0; 3.0; 2.0; 1.0 |] in
  check (float_t 1e-12) "mu=0" 2.0 (Dsp.Interpolator.reference x 0.0);
  check (float_t 1e-12) "mu=1" 3.0 (Dsp.Interpolator.reference x 1.0)

let test_interpolator_cubic_exact () =
  (* cubic Lagrange is exact on cubics: f(t) = t^3 - t sampled at
     t = -1, 0, 1, 2 (x[3]..x[0]) *)
  let f t = (t ** 3.0) -. t in
  let x = [| f 2.0; f 1.0; f 0.0; f (-1.0) |] in
  List.iter
    (fun mu ->
      check (float_t 1e-9)
        (Printf.sprintf "mu=%g" mu)
        (f mu)
        (Dsp.Interpolator.reference x mu))
    [ 0.1; 0.25; 0.5; 0.75; 0.9 ]

let test_interpolator_sim_matches_reference () =
  let env = Sim.Env.create () in
  let ip = Dsp.Interpolator.create env () in
  (* shift in 1, 2, 3, 4: delay line x[0]=4 newest .. x[3]=1 oldest *)
  List.iter
    (fun v ->
      Dsp.Interpolator.shift ip (cst v);
      Sim.Env.tick env)
    [ 1.0; 2.0; 3.0; 4.0 ];
  let out = Dsp.Interpolator.interpolate ip (cst 0.5) in
  check (float_t 1e-12) "matches reference"
    (Dsp.Interpolator.reference [| 4.0; 3.0; 2.0; 1.0 |] 0.5)
    (Sim.Value.fx out)

let test_interpolator_signal_count () =
  let env = Sim.Env.create () in
  let ip = Dsp.Interpolator.create env () in
  check int_t "12 signals" 12 (List.length (Dsp.Interpolator.signals ip))

(* --- Gardner_ted -------------------------------------------------------- *)

let test_ted_reference_sign () =
  (* sampling late on a +1/-1 transition: mid sample nonzero with the
     sign of the timing error *)
  let late = Dsp.Gardner_ted.reference ~current:(-1.0) ~previous:1.0 ~mid:0.2 in
  let early = Dsp.Gardner_ted.reference ~current:(-1.0) ~previous:1.0 ~mid:(-0.2) in
  check bool_t "opposite signs" true (late *. early < 0.0)

let test_ted_no_transition_no_error () =
  check (float_t 1e-12) "flat" 0.0
    (Dsp.Gardner_ted.reference ~current:1.0 ~previous:1.0 ~mid:0.3)

let test_ted_sim_pipeline () =
  let env = Sim.Env.create () in
  let ted = Dsp.Gardner_ted.create env () in
  (* strobe 1 *)
  Dsp.Gardner_ted.capture_mid ted (cst 0.1);
  Sim.Env.tick env;
  let e = Dsp.Gardner_ted.detect ted (cst 1.0) in
  Sim.Env.tick env;
  (* prev was 0 (init), mid = 0.1: err = (1 - 0)·0.1 *)
  check (float_t 1e-12) "first err" 0.1 (Sim.Value.fx e);
  Dsp.Gardner_ted.capture_mid ted (cst (-0.2));
  Sim.Env.tick env;
  let e2 = Dsp.Gardner_ted.detect ted (cst (-1.0)) in
  check (float_t 1e-12) "second err" ((-1.0 -. 1.0) *. -0.2) (Sim.Value.fx e2)

(* --- Loop_filter -------------------------------------------------------- *)

let test_loop_filter_reference () =
  let errs = [| 1.0; 1.0; -1.0 |] in
  let out = Dsp.Loop_filter.reference ~kp:0.5 ~ki:0.1 errs in
  check (float_t 1e-12) "t0" 0.6 out.(0);
  check (float_t 1e-12) "t1" 0.7 out.(1);
  check (float_t 1e-12) "t2" (-0.4) out.(2)

let test_loop_filter_sim_matches () =
  let env = Sim.Env.create () in
  let lf = Dsp.Loop_filter.create env ~kp:0.5 ~ki:0.1 () in
  let errs = [| 1.0; 1.0; -1.0; 0.5 |] in
  let expected = Dsp.Loop_filter.reference ~kp:0.5 ~ki:0.1 errs in
  Array.iteri
    (fun i e ->
      let out = Dsp.Loop_filter.step lf (cst e) in
      Sim.Env.tick env;
      check (float_t 1e-12) (Printf.sprintf "t%d" i) expected.(i)
        (Sim.Value.fx out))
    errs

let test_loop_filter_hold () =
  let env = Sim.Env.create () in
  let lf = Dsp.Loop_filter.create env ~kp:0.5 ~ki:0.1 () in
  ignore (Dsp.Loop_filter.step lf (cst 1.0));
  Sim.Env.tick env;
  let held = Dsp.Loop_filter.hold lf in
  check (float_t 1e-12) "held output" 0.6 (Sim.Value.fx held)

let test_loop_filter_design () =
  let kp, ki = Dsp.Loop_filter.design ~bn:0.01 () in
  check bool_t "kp positive" true (kp > 0.0);
  check bool_t "ki << kp" true (ki < kp /. 10.0);
  let kp2, _ = Dsp.Loop_filter.design ~bn:0.05 () in
  check bool_t "wider bn -> larger gain" true (kp2 > kp)

let test_loop_filter_integrator_is_accumulator () =
  (* §5.1 case (b): the integrator's propagated range dwarfs its
     statistic range *)
  let env = Sim.Env.create () in
  let lf = Dsp.Loop_filter.create env ~kp:0.1 ~ki:0.05 () in
  let rng = Stats.Rng.create ~seed:3 in
  Sim.Engine.run env ~cycles:3000 (fun _ ->
      ignore
        (Dsp.Loop_filter.step lf
           (Sim.Value.with_range
              (cst (Stats.Rng.uniform rng ~lo:(-1.0) ~hi:1.0))
              (Interval.make (-1.0) 1.0))));
  let d = Refine.Msb_rules.decide (Dsp.Loop_filter.integrator lf) in
  check bool_t "case (b)" true
    (d.Refine.Decision.case = Refine.Decision.Prop_pessimistic)

(* --- Nco ----------------------------------------------------------------- *)

let test_nco_reference_strobe_rate () =
  let lferrs = Array.make 1000 0.0 in
  let out = Dsp.Nco.reference ~sps:2 lferrs in
  let strobes = Array.fold_left (fun n (s, _) -> if s then n + 1 else n) 0 out in
  check int_t "one strobe per 2 samples" 500 strobes

let test_nco_reference_mu_constant_offset () =
  (* with lferr = 0, mu is constant cycle to cycle *)
  let out = Dsp.Nco.reference ~sps:2 (Array.make 100 0.0) in
  let mus =
    Array.to_list out |> List.filter_map (fun (s, m) -> if s then Some m else None)
  in
  match mus with
  | m0 :: rest ->
      List.iter (fun m -> check (float_t 1e-9) "constant mu" m0 m) rest
  | [] -> Alcotest.fail "no strobes"

let test_nco_control_word_clamped () =
  (* a huge lferr cannot stall or run away the NCO *)
  let out = Dsp.Nco.reference ~sps:2 (Array.make 100 (-10.0)) in
  let strobes = Array.fold_left (fun n (s, _) -> if s then n + 1 else n) 0 out in
  check bool_t "still strobing" true (strobes >= 20);
  let out2 = Dsp.Nco.reference ~sps:2 (Array.make 100 10.0) in
  let strobes2 = Array.fold_left (fun n (s, _) -> if s then n + 1 else n) 0 out2 in
  check bool_t "not every sample x2" true (strobes2 <= 80)

let test_nco_sim_matches_reference () =
  let env = Sim.Env.create () in
  let nco = Dsp.Nco.create env ~sps:2 () in
  let lferrs = [| 0.0; 0.05; -0.03; 0.0; 0.02; 0.0; 0.0; -0.01 |] in
  let expected = Dsp.Nco.reference ~sps:2 lferrs in
  Array.iteri
    (fun i lferr ->
      let strobed, mu = Dsp.Nco.step nco (cst lferr) in
      Sim.Env.tick env;
      let es, em = expected.(i) in
      check bool_t (Printf.sprintf "strobe %d" i) es strobed;
      check (float_t 1e-12) (Printf.sprintf "mu %d" i) em (Sim.Value.fx mu))
    lferrs

let test_nco_mu_in_unit_interval () =
  let env = Sim.Env.create ~seed:2 () in
  let nco = Dsp.Nco.create env ~sps:2 () in
  let rng = Stats.Rng.create ~seed:71 in
  Sim.Engine.run env ~cycles:2000 (fun _ ->
      let _, mu = Dsp.Nco.step nco (cst (Stats.Rng.uniform rng ~lo:(-0.1) ~hi:0.1)) in
      let m = Sim.Value.fx mu in
      check bool_t "mu in [0,1]" true (m >= 0.0 && m <= 1.0))

(* --- Lms_equalizer ------------------------------------------------------ *)

let run_equalizer ?(n = 3000) ?(x_dtype : Fixpt.Dtype.t option) () =
  let env = Sim.Env.create ~seed:11 () in
  let rng = Stats.Rng.create ~seed:2024 in
  let stimulus, sent = Dsp.Channel_model.isi_awgn ~rng ~n_symbols:n () in
  let input = Sim.Channel.of_fun "rx" stimulus in
  let output = Sim.Channel.create ~record:true "y" in
  let eq = Dsp.Lms_equalizer.create env ?x_dtype ~input ~output () in
  Sim.Signal.range (Dsp.Lms_equalizer.x eq) (-1.5) 1.5;
  Dsp.Lms_equalizer.run eq ~cycles:n;
  (env, eq, sent, output)

let test_equalizer_float_converges () =
  let _, eq, sent, output = run_equalizer () in
  let decided = Array.of_list (Sim.Channel.recorded output) in
  check (float_t 0.01) "SER ~ 0" 0.0
    (Dsp.Pam.best_ser ~skip:200 ~sent ~decided ());
  (* the adapted feedback coefficient stays small *)
  check bool_t "b bounded" true
    (Float.abs (Sim.Signal.peek_fx (Dsp.Lms_equalizer.b eq)) < 0.5)

let test_equalizer_feedback_explodes () =
  let env, _, _, _ = run_equalizer () in
  let exploded =
    List.map Sim.Signal.name (Refine.Msb_rules.exploded_signals env)
  in
  check bool_t "w and b explode" true
    (List.mem "w" exploded && List.mem "b" exploded);
  check bool_t "fir does not" true (not (List.mem "v[3]" exploded))

let test_equalizer_table_signals () =
  let _, eq, _, _ = run_equalizer ~n:10 () in
  let names = List.map Sim.Signal.name (Dsp.Lms_equalizer.table_signals eq) in
  check bool_t "paper's table order" true
    (names
    = [ "c[0]"; "c[1]"; "c[2]"; "x"; "d[0]"; "d[1]"; "d[2]"; "v[1]"; "v[2]";
        "v[3]"; "w"; "b"; "y" ])

let test_equalizer_quantized_input_errors_propagate () =
  let x_dtype = Fixpt.Dtype.make "T" ~n:7 ~f:5 () in
  let env, _, _, _ = run_equalizer ~x_dtype () in
  let v3 = Sim.Env.find_exn env "v[3]" in
  let e = Stats.Err_stats.produced (Sim.Signal.err_stats v3) in
  check bool_t "errors reached the FIR output" true
    (Stats.Running.stddev e > 1e-4)

let test_equalizer_sfg_structure () =
  let g = Dsp.Lms_equalizer.to_sfg () in
  check bool_t "valid" true (Result.is_ok (Sfg.Graph.validate g));
  let r = Sfg.Range_analysis.run g in
  check bool_t "unannotated b explodes analytically" true
    (List.mem "b" r.Sfg.Range_analysis.exploded);
  let g2 = Dsp.Lms_equalizer.to_sfg ~b_range:(-0.2, 0.2) () in
  let r2 = Sfg.Range_analysis.run g2 in
  check bool_t "b.range fixes it" true (r2.Sfg.Range_analysis.exploded = [])

(* --- Timing_recovery ---------------------------------------------------- *)

let run_timing ?(n_symbols = 2000) ?(tau = 0.3) ?x_dtype () =
  let env = Sim.Env.create ~seed:5 () in
  let rng = Stats.Rng.create ~seed:99 in
  let stimulus, sent, n_samples =
    Dsp.Channel_model.timing_offset_pam ~rng ~n_symbols ~tau ()
  in
  let input = Sim.Channel.of_fun "rx" stimulus in
  let output = Sim.Channel.create ~record:true "sym" in
  let tr = Dsp.Timing_recovery.create env ?x_dtype ~input ~output () in
  Dsp.Timing_recovery.run tr ~samples:n_samples;
  (env, tr, sent, output)

let test_timing_loop_locks () =
  let _, tr, sent, output = run_timing () in
  let decided = Array.of_list (Sim.Channel.recorded output) in
  check bool_t "symbol-rate output" true
    (Array.length decided > 1900 && Array.length decided < 2100);
  check (float_t 0.02) "SER after lock" 0.0
    (Dsp.Pam.best_ser ~skip:500 ~sent ~decided ());
  check int_t "one strobe per symbol (±1%)" 1
    (if
       Dsp.Timing_recovery.strobes tr > 1980
       && Dsp.Timing_recovery.strobes tr < 2020
     then 1
     else 0)

let test_timing_locks_across_offsets () =
  List.iter
    (fun tau ->
      let _, _, sent, output = run_timing ~tau () in
      let decided = Array.of_list (Sim.Channel.recorded output) in
      check (float_t 0.02)
        (Printf.sprintf "SER at tau=%g" tau)
        0.0
        (Dsp.Pam.best_ser ~skip:500 ~sent ~decided ()))
    [ 0.0; 0.15; 0.45 ]

let test_timing_accumulators_flagged () =
  let env, tr, _, _ = run_timing () in
  ignore env;
  let integ = Dsp.Loop_filter.integrator (Dsp.Timing_recovery.loop_filter tr) in
  let eta = Dsp.Nco.phase (Dsp.Timing_recovery.nco tr) in
  let d_integ = Refine.Msb_rules.decide integ in
  let d_eta = Refine.Msb_rules.decide eta in
  check bool_t "integrator saturated" true
    (d_integ.Refine.Decision.case = Refine.Decision.Prop_pessimistic);
  check bool_t "phase saturated" true
    (d_eta.Refine.Decision.case = Refine.Decision.Prop_pessimistic)

let test_timing_quantized_still_locks () =
  let x_dtype = Fixpt.Dtype.make "T" ~n:10 ~f:8 () in
  let _, _, sent, output = run_timing ~x_dtype () in
  let decided = Array.of_list (Sim.Channel.recorded output) in
  check (float_t 0.02) "SER with quantized input" 0.0
    (Dsp.Pam.best_ser ~skip:500 ~sent ~decided ())

let suite =
  ( "dsp-loops",
    [
      Alcotest.test_case "interp grid points" `Quick
        test_interpolator_at_grid_points;
      Alcotest.test_case "interp cubic exact" `Quick
        test_interpolator_cubic_exact;
      Alcotest.test_case "interp sim vs reference" `Quick
        test_interpolator_sim_matches_reference;
      Alcotest.test_case "interp signal count" `Quick
        test_interpolator_signal_count;
      Alcotest.test_case "ted sign" `Quick test_ted_reference_sign;
      Alcotest.test_case "ted flat" `Quick test_ted_no_transition_no_error;
      Alcotest.test_case "ted pipeline" `Quick test_ted_sim_pipeline;
      Alcotest.test_case "loop filter reference" `Quick
        test_loop_filter_reference;
      Alcotest.test_case "loop filter sim" `Quick test_loop_filter_sim_matches;
      Alcotest.test_case "loop filter hold" `Quick test_loop_filter_hold;
      Alcotest.test_case "loop filter design" `Quick test_loop_filter_design;
      Alcotest.test_case "loop integrator case (b)" `Quick
        test_loop_filter_integrator_is_accumulator;
      Alcotest.test_case "nco strobe rate" `Quick
        test_nco_reference_strobe_rate;
      Alcotest.test_case "nco constant mu" `Quick
        test_nco_reference_mu_constant_offset;
      Alcotest.test_case "nco clamp" `Quick test_nco_control_word_clamped;
      Alcotest.test_case "nco sim vs reference" `Quick
        test_nco_sim_matches_reference;
      Alcotest.test_case "nco mu in [0,1]" `Quick test_nco_mu_in_unit_interval;
      Alcotest.test_case "equalizer converges" `Quick
        test_equalizer_float_converges;
      Alcotest.test_case "equalizer feedback explodes" `Quick
        test_equalizer_feedback_explodes;
      Alcotest.test_case "equalizer table signals" `Quick
        test_equalizer_table_signals;
      Alcotest.test_case "equalizer error propagation" `Quick
        test_equalizer_quantized_input_errors_propagate;
      Alcotest.test_case "equalizer sfg" `Quick test_equalizer_sfg_structure;
      Alcotest.test_case "timing loop locks" `Quick test_timing_loop_locks;
      Alcotest.test_case "timing locks across offsets" `Quick
        test_timing_locks_across_offsets;
      Alcotest.test_case "timing accumulators flagged" `Quick
        test_timing_accumulators_flagged;
      Alcotest.test_case "timing quantized locks" `Quick
        test_timing_quantized_still_locks;
    ] )
